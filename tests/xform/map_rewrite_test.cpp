#include "xform/map_rewrite.hpp"

#include <gtest/gtest.h>

#include "codegen/pretty.hpp"
#include "uclang/frontend.hpp"
#include "ucvm/interp.hpp"

namespace uc::xform {
namespace {

// A shifted-access program safe under the +1 rewrite: b's used elements
// are 1..N-1, which land on 0..N-2 after the shift.  `rounds` repeats the
// shifted access — the mapping trades one remote init write for local
// steady-state reads, so its benefit shows at rounds > 1 (exactly the
// paper's argument for separating mapping from logic).
std::string shifted_program(bool with_map, int rounds = 1) {
  std::string src =
      "#define N 16\n"
      "index_set I:i = {0..N-1};\n"
      "index_set T:t = {1.." +
      std::to_string(rounds) +
      "};\n"
      "int a[N], b[N];\n";
  if (with_map) src += "map (I) { permute (I) b[i+1] :- a[i]; }\n";
  src +=
      "void main() {\n"
      "  par (I) a[i] = i;\n"
      "  par (I) st (i > 0) b[i] = 2 * i;\n"
      "  seq (T)\n"
      "    par (I) st (i < N-1) a[i] = a[i] + b[i+1];\n"
      "}";
  return src;
}

TEST(MapRewrite, RewritesSubscriptsAndDropsMapping) {
  auto unit = lang::compile("t.uc", shifted_program(true));
  ASSERT_TRUE(unit->ok()) << unit->diags.render_all();
  auto rw = rewrite_affine_permutes(*unit->program);
  EXPECT_EQ(rw.rewritten_mappings, 1u);
  EXPECT_EQ(rw.rewritten_subscripts, 2u);  // b[i] and b[i+1]
  auto text = codegen::print_program(*unit->program);
  EXPECT_NE(text.find("b[i + 1 - 1]"), std::string::npos) << text;
  EXPECT_NE(text.find("b[i - 1]"), std::string::npos) << text;
  EXPECT_EQ(text.find("permute"), std::string::npos) << text;
}

TEST(MapRewrite, RewrittenProgramComputesSameValues) {
  // Reference: the program without any mapping.
  auto plain = vm::run_uc(shifted_program(false));

  auto unit = lang::compile("t.uc", shifted_program(true));
  ASSERT_TRUE(unit->ok());
  rewrite_affine_permutes(*unit->program);
  lang::reanalyze(*unit);
  ASSERT_TRUE(unit->ok()) << unit->diags.render_all();
  cm::Machine machine;
  vm::Interp interp(*unit, machine);
  auto rewritten = interp.run();
  for (int k = 0; k < 16; ++k) {
    EXPECT_EQ(rewritten.global_element("a", {k}).as_int(),
              plain.global_element("a", {k}).as_int())
        << k;
  }
}

TEST(MapRewrite, RewrittenProgramCutsSteadyStateComm) {
  const int kRounds = 8;
  auto unmapped = vm::run_uc(shifted_program(false, kRounds));

  auto unit = lang::compile("t.uc", shifted_program(true, kRounds));
  ASSERT_TRUE(unit->ok());
  rewrite_affine_permutes(*unit->program);
  lang::reanalyze(*unit);
  cm::Machine machine;
  vm::Interp interp(*unit, machine);
  auto r = interp.run();
  // Unmapped: every round fetches b[i+1] over the NEWS grid (kRounds news
  // instructions).  Rewritten: only the one-time init write b[i-1] is a
  // hop; the repeated access is local.
  EXPECT_GE(unmapped.stats().news_ops, static_cast<std::uint64_t>(kRounds));
  EXPECT_LE(r.stats().news_ops, 1u);
  EXPECT_EQ(r.stats().router_messages, 0u);
}

TEST(MapRewrite, MatchesRuntimeMappingEngineSpeedup) {
  // Source rewrite and runtime owner tables are two implementations of the
  // same optimisation: both must eliminate the repeated remote accesses
  // that the unmapped program performs.
  const int kRounds = 8;
  auto unmapped = vm::run_uc(shifted_program(false, kRounds));
  EXPECT_GE(unmapped.stats().news_ops, static_cast<std::uint64_t>(kRounds));

  auto runtime_mapped = vm::run_uc(shifted_program(true, kRounds));
  EXPECT_LE(runtime_mapped.stats().news_ops, 1u);
}

TEST(MapRewrite, NegativeOffset) {
  auto unit = lang::compile(
      "t.uc",
      "#define N 8\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], b[N];\n"
      "map (I) { permute (I) b[i-2] :- a[i]; }\n"
      "void main() { par (I) st (i >= 2) a[i] = b[i-2]; }");
  ASSERT_TRUE(unit->ok());
  auto rw = rewrite_affine_permutes(*unit->program);
  EXPECT_EQ(rw.rewritten_mappings, 1u);
  auto text = codegen::print_program(*unit->program);
  EXPECT_NE(text.find("b[i - 2 - -2]"), std::string::npos) << text;
}

TEST(MapRewrite, NonAffineMappingLeftForRuntime) {
  auto unit = lang::compile(
      "t.uc",
      "#define N 8\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], b[N];\n"
      "map (I) { permute (I) b[N-1-i] :- a[i]; }\n"
      "void main() { par (I) a[i] = b[N-1-i]; }");
  ASSERT_TRUE(unit->ok());
  auto rw = rewrite_affine_permutes(*unit->program);
  EXPECT_EQ(rw.rewritten_mappings, 0u);
  auto text = codegen::print_program(*unit->program);
  EXPECT_NE(text.find("permute"), std::string::npos) << text;
}

TEST(MapRewrite, FoldAndCopyUntouched) {
  auto unit = lang::compile(
      "t.uc",
      "#define N 8\n"
      "index_set I:i = {0..N-1}, H:h = {0..3};\n"
      "int a[N];\n"
      "map (H) { fold (H) a[N-1-h] :- a[h]; copy (I) a; }\n"
      "void main() { }");
  ASSERT_TRUE(unit->ok());
  auto rw = rewrite_affine_permutes(*unit->program);
  EXPECT_EQ(rw.rewritten_mappings, 0u);
}

TEST(MapRewrite, ZeroOffsetPermuteRemovedWithoutRewrites) {
  auto unit = lang::compile(
      "t.uc",
      "#define N 8\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], b[N];\n"
      "map (I) { permute (I) b[i] :- a[i]; }\n"
      "void main() { par (I) a[i] = b[i]; }");
  ASSERT_TRUE(unit->ok());
  auto rw = rewrite_affine_permutes(*unit->program);
  EXPECT_EQ(rw.rewritten_mappings, 1u);
  EXPECT_EQ(rw.rewritten_subscripts, 0u);  // shift of 0 changes nothing
}

}  // namespace
}  // namespace uc::xform
