#include "xform/const_fold.hpp"

#include <gtest/gtest.h>

#include "codegen/pretty.hpp"
#include "uclang/frontend.hpp"
#include "ucvm/interp.hpp"

namespace uc::xform {
namespace {

// Folds the program and returns the printed main body.
std::string folded(const std::string& src) {
  auto unit = lang::compile("t.uc", src);
  EXPECT_TRUE(unit->ok()) << unit->diags.render_all();
  fold_constants(*unit->program);
  auto* fn = unit->program->find_function("main");
  return codegen::print_stmt(*fn->body);
}

TEST(ConstFold, ArithmeticFolds) {
  auto out = folded("int x;\nvoid main() { x = 2 + 3 * 4; }");
  EXPECT_NE(out.find("x = 14;"), std::string::npos) << out;
}

TEST(ConstFold, ConstIdentifiersFold) {
  auto out = folded("const int N = 8;\nint x;\nvoid main() { x = N * N; }");
  EXPECT_NE(out.find("x = 64;"), std::string::npos) << out;
}

TEST(ConstFold, ComparisonAndLogicFold) {
  auto out = folded("int x;\nvoid main() { x = (3 < 5) && (2 == 2); }");
  EXPECT_NE(out.find("x = 1;"), std::string::npos) << out;
}

TEST(ConstFold, TernaryPrunesToTakenBranch) {
  auto out = folded("int x, y;\nvoid main() { x = 1 ? y : 99; }");
  EXPECT_NE(out.find("x = y;"), std::string::npos) << out;
}

TEST(ConstFold, FloatFolds) {
  auto out = folded("float f;\nvoid main() { f = 1.5 * 2.0; }");
  EXPECT_NE(out.find("f = 3.0;"), std::string::npos) << out;
}

TEST(ConstFold, DivisionByZeroNotFolded) {
  auto out = folded("int x, z;\nvoid main() { x = 7 / (z * 0); }");
  EXPECT_NE(out.find("/"), std::string::npos) << out;  // left in place
}

TEST(ConstFold, NonConstSubexpressionsSurvive) {
  auto out = folded("int x, y;\nvoid main() { x = y + (2 * 3); }");
  EXPECT_NE(out.find("y + 6"), std::string::npos) << out;
}

TEST(ConstFold, FoldsInsideParPredicatesAndReductions) {
  auto unit = lang::compile(
      "t.uc",
      "index_set I:i = {0..7};\nint a[8], s;\n"
      "void main() {\n"
      "  par (I) st (i % (2 + 2) == 0) a[i] = 3 * 3;\n"
      "  s = $+(I st (a[i] > 2 + 2) a[i]);\n"
      "}");
  ASSERT_TRUE(unit->ok());
  auto n = fold_constants(*unit->program);
  EXPECT_GE(n, 3u);
  auto out = codegen::print_stmt(
      *unit->program->find_function("main")->body);
  EXPECT_NE(out.find("i % 4 == 0"), std::string::npos) << out;
  EXPECT_NE(out.find("= 9;"), std::string::npos) << out;
  EXPECT_NE(out.find("> 4"), std::string::npos) << out;
}

TEST(ConstFold, InfFoldsToItsValue) {
  auto unit = lang::compile("t.uc", "int x;\nvoid main() { x = INF; }");
  ASSERT_TRUE(unit->ok());
  EXPECT_GE(fold_constants(*unit->program), 1u);
}

TEST(ConstFold, ReturnsFoldCount) {
  auto unit = lang::compile("t.uc", "int x;\nvoid main() { x = 1 + 1; }");
  ASSERT_TRUE(unit->ok());
  EXPECT_EQ(fold_constants(*unit->program), 1u);
  EXPECT_EQ(fold_constants(*unit->program), 0u);  // idempotent
}

TEST(ConstFold, FoldedProgramStillRunsIdentically) {
  const char* src =
      "const int N = 6;\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], s;\n"
      "void main() {\n"
      "  par (I) a[i] = i * (2 + 1);\n"
      "  s = $+(I; a[i]);\n"
      "}";
  auto unit = lang::compile("t.uc", src);
  ASSERT_TRUE(unit->ok());
  fold_constants(*unit->program);
  lang::reanalyze(*unit);
  ASSERT_TRUE(unit->ok()) << unit->diags.render_all();
  cm::Machine machine;
  vm::Interp interp(*unit, machine);
  auto r = interp.run();
  EXPECT_EQ(r.global_scalar("s").as_int(), 3 * (0 + 1 + 2 + 3 + 4 + 5));
}

}  // namespace
}  // namespace uc::xform
