// The solve -> *par lowering must produce ordinary UC that computes the
// same results as the VM's built-in solve.
#include "xform/solve_lower.hpp"

#include <gtest/gtest.h>

#include "codegen/pretty.hpp"
#include "seqref/seqref.hpp"
#include "uclang/frontend.hpp"
#include "ucvm/interp.hpp"

namespace uc::xform {
namespace {

// Compiles, lowers every solve, re-analyses and runs; returns the result.
vm::RunResult lower_and_run(const std::string& src,
                            std::size_t expect_lowered = 1) {
  auto unit = lang::compile("t.uc", src);
  EXPECT_TRUE(unit->ok()) << unit->diags.render_all();
  auto lowering = lower_solves(*unit->program);
  EXPECT_EQ(lowering.lowered, expect_lowered)
      << codegen::print_program(*unit->program);
  EXPECT_EQ(lowering.skipped, 0u);
  lang::reanalyze(*unit);
  EXPECT_TRUE(unit->ok()) << unit->diags.render_all() << "\n"
                          << codegen::print_program(*unit->program);
  cm::Machine machine;
  vm::Interp interp(*unit, machine);
  return interp.run();
}

TEST(SolveLower, WavefrontMatchesBuiltinSolve) {
  const char* src =
      "#define N 6\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N][N];\n"
      "void main() {\n"
      "  solve (I, J)\n"
      "    a[i][j] = (i==0 || j==0) ? 1\n"
      "      : a[i-1][j] + a[i-1][j-1] + a[i][j-1];\n"
      "}";
  auto r = lower_and_run(src);
  auto expect = seqref::wavefront(6);
  auto got = r.global_array("a");
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].as_int(), expect[k]) << k;
  }
}

TEST(SolveLower, LoweredTreeContainsStarParAndDoneFlags) {
  auto unit = lang::compile(
      "t.uc",
      "index_set I:i = {0..3};\nint a[4];\n"
      "void main() { a[0] = 1; solve (I) st (i > 0) a[i] = a[i-1] + 1; }");
  ASSERT_TRUE(unit->ok());
  auto lowering = lower_solves(*unit->program);
  EXPECT_EQ(lowering.lowered, 1u);
  auto text = codegen::print_program(*unit->program);
  EXPECT_NE(text.find("*par"), std::string::npos) << text;
  EXPECT_NE(text.find("__uc_done_a_"), std::string::npos) << text;
  EXPECT_EQ(text.find("solve"), std::string::npos) << text;
}

TEST(SolveLower, ChainWithBoundaryFromOutsideSolve) {
  auto r = lower_and_run(
      "index_set I:i = {1..7};\nint a[8];\n"
      "void main() {\n"
      "  a[0] = 5;\n"
      "  solve (I) a[i] = a[i-1] + 2;\n"
      "}");
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(r.global_element("a", {k}).as_int(), 5 + 2 * k);
  }
}

TEST(SolveLower, TwoTargetArrays) {
  auto r = lower_and_run(
      "index_set I:i = {0..5};\n"
      "int u[6], v[6];\n"
      "void main() {\n"
      "  solve (I) {\n"
      "    u[i] = (i==0) ? 1 : v[i-1] * 2;\n"
      "    v[i] = u[i] + 1;\n"
      "  }\n"
      "}");
  EXPECT_EQ(r.global_element("u", {3}).as_int(), 22);
  EXPECT_EQ(r.global_element("v", {5}).as_int(), 95);
}

TEST(SolveLower, PredicatedBlocks) {
  auto r = lower_and_run(
      "index_set I:i = {0..7};\nint a[8];\n"
      "void main() {\n"
      "  solve (I)\n"
      "    st (i == 0) a[i] = 100;\n"
      "    st (i > 0) a[i] = a[i-1] + 1;\n"
      "}");
  EXPECT_EQ(r.global_element("a", {7}).as_int(), 107);
}

TEST(SolveLower, DifferentDimsAcrossTargets) {
  auto r = lower_and_run(
      "index_set I:i = {0..3};\n"
      "int small[4], big[8];\n"
      "void main() {\n"
      "  solve (I) {\n"
      "    small[i] = (i==0) ? 2 : big[i-1] + 1;\n"
      "    big[i] = small[i] * 10;\n"
      "  }\n"
      "}");
  // small0=2 big0=20 small1=21 big1=210 small2=211 big2=2110 small3=2111.
  EXPECT_EQ(r.global_element("small", {2}).as_int(), 211);
  EXPECT_EQ(r.global_element("big", {3}).as_int(), 21110);
}

TEST(SolveLower, StarSolveIsLeftAlone) {
  auto unit = lang::compile(
      "t.uc",
      "index_set I:i = {0..3};\nint a[4];\n"
      "void main() { *solve (I) a[i] = min(a[i], 3); }");
  ASSERT_TRUE(unit->ok());
  auto lowering = lower_solves(*unit->program);
  EXPECT_EQ(lowering.lowered, 0u);
  EXPECT_EQ(lowering.skipped, 0u);
  auto text = codegen::print_program(*unit->program);
  EXPECT_NE(text.find("*solve"), std::string::npos);
}

TEST(SolveLower, ReductionOverTargetIsSkipped) {
  auto unit = lang::compile(
      "t.uc",
      "index_set I:i = {0..3}, J:j = I;\nint a[4];\n"
      "void main() { solve (I) a[i] = (i==0) ? 1 : $+(J st (j<i) a[j]); }");
  ASSERT_TRUE(unit->ok());
  auto lowering = lower_solves(*unit->program);
  EXPECT_EQ(lowering.lowered, 0u);
  EXPECT_EQ(lowering.skipped, 1u);
  ASSERT_FALSE(lowering.skip_reasons.empty());
  EXPECT_NE(lowering.skip_reasons[0].find("reduction"), std::string::npos);
}

TEST(SolveLower, CostResemblesBuiltinGeneralMethod) {
  // The lowered *par should be in the same cost regime as the VM's
  // built-in general method (both iterate wavefront-depth rounds).
  const char* src =
      "#define N 8\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N][N];\n"
      "void main() {\n"
      "  solve (I, J)\n"
      "    a[i][j] = (i==0 || j==0) ? 1\n"
      "      : a[i-1][j] + a[i-1][j-1] + a[i][j-1];\n"
      "}";
  auto builtin = vm::run_uc(src);
  auto lowered = lower_and_run(src);
  EXPECT_GT(lowered.stats().cycles, 0u);
  // Same order of magnitude (within 8x either way).
  EXPECT_LT(lowered.stats().cycles, builtin.stats().cycles * 8);
  EXPECT_GT(lowered.stats().cycles * 8, builtin.stats().cycles);
}

}  // namespace
}  // namespace uc::xform
