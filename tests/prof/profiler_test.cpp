// The profiling subsystem (docs/PROFILING.md): the per-site attribution
// invariant (site self-cost sums to the aggregate CostStats), cross-engine
// parity, the static-analysis join, and the rendered outputs.
#include "prof/profile.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "prof/report.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

namespace uc {
namespace {

// A program that exercises every scope kind the VM attributes: par with an
// st/others split, seq nesting, a reduction, a solve, and front-end code.
const char* kMixedProgram =
    "#define N 8\n"
    "index_set I:i = {0..N-1}, J:j = I;\n"
    "int a[N], b[N], s;\n"
    "void main() {\n"
    "  par (I) st (i % 2 == 0) a[i] = i;\n"
    "    others a[i] = -i;\n"
    "  seq (J) par (I) b[i] = a[i] + j;\n"
    "  solve (I) { a[i] = b[i] + 1; }\n"
    "  s = $+(I; a[i]);\n"
    "  print(\"s =\", s);\n"
    "}\n";

ProfileResult profile_with(vm::ExecEngine engine, const char* source,
                           bool capture_trace = false) {
  auto program = Program::compile("prof.uc", source);
  ProfileOptions opts;
  opts.exec.engine = engine;
  opts.capture_trace = capture_trace;
  return program.profile(opts);
}

ProfileResult profile_unfused(vm::ExecEngine engine, const char* source) {
  auto program = Program::compile("prof.uc", source);
  ProfileOptions opts;
  opts.exec.engine = engine;
  opts.exec.fuse = false;
  return program.profile(opts);
}

cm::CostStats sum_sites(const std::vector<prof::Site>& sites) {
  cm::CostStats sum;
  for (const auto& s : sites) sum += s.self;
  return sum;
}

TEST(Profiler, SiteSelfCostSumsToAggregateBytecode) {
  auto prof = profile_with(vm::ExecEngine::kBytecode, kMixedProgram);
  EXPECT_FALSE(prof.sites.empty());
  // Every counter, not just cycles: no charge may escape attribution.
  EXPECT_EQ(sum_sites(prof.sites), prof.run.stats());
}

TEST(Profiler, SiteSelfCostSumsToAggregateWalk) {
  auto prof = profile_with(vm::ExecEngine::kWalk, kMixedProgram);
  EXPECT_EQ(sum_sites(prof.sites), prof.run.stats());
}

TEST(Profiler, PerSiteCyclesIdenticalAcrossEngines) {
  // Fusion/plan caching deliberately lowers bytecode front-end cost, so
  // the exact per-site comparison runs the bytecode engine with fuse off.
  auto walk = profile_unfused(vm::ExecEngine::kWalk, kMixedProgram);
  auto bc = profile_unfused(vm::ExecEngine::kBytecode, kMixedProgram);
  EXPECT_EQ(walk.run.output(), bc.run.output());
  EXPECT_EQ(walk.run.stats(), bc.run.stats());

  // Same sites in the same interning order with the same self cost; only
  // host wall time and the engine counters may differ.
  ASSERT_EQ(walk.sites.size(), bc.sites.size());
  for (std::size_t k = 0; k < walk.sites.size(); ++k) {
    EXPECT_EQ(walk.sites[k].kind, bc.sites[k].kind);
    EXPECT_EQ(walk.sites[k].line, bc.sites[k].line);
    EXPECT_EQ(walk.sites[k].entries, bc.sites[k].entries);
    EXPECT_EQ(walk.sites[k].self, bc.sites[k].self)
        << walk.sites[k].kind << " at line " << walk.sites[k].line;
  }
}

// Fused kernel groups: each member statement keeps its own site, the
// per-site self costs still sum exactly to the aggregate CostStats, the
// members are tagged as fused, and the fused run never costs more
// modeled cycles than the unfused one (docs/VM.md "Fusion").
TEST(Profiler, FusedGroupsAttributeEveryMemberSite) {
  const char* fusable =
      "index_set I:i = {0..15};\n"
      "int a[16], b[16], c[16];\n"
      "void main() {\n"
      "  par (I) {\n"
      "    a[i] = i * 2;\n"
      "    b[i] = a[i] + 1;\n"
      "    c[i] = a[i] + b[i];\n"
      "  }\n"
      "}\n";
  auto fused = profile_with(vm::ExecEngine::kBytecode, fusable);
  auto plain = profile_unfused(vm::ExecEngine::kBytecode, fusable);
  EXPECT_EQ(sum_sites(fused.sites), fused.run.stats());
  EXPECT_LE(fused.run.stats().cycles, plain.run.stats().cycles);

  std::uint64_t fused_stmts = 0, fused_sites = 0;
  for (const auto& s : fused.sites) {
    fused_stmts += s.fused_stmts;
    fused_sites += s.fused_stmts > 0 ? 1 : 0;
  }
  EXPECT_EQ(fused_sites, 3u);  // every member statement is attributed
  EXPECT_GT(fused_stmts, 0u);
  for (const auto& s : plain.sites) EXPECT_EQ(s.fused_stmts, 0u);
}

TEST(Profiler, EngineCountersReflectTheEngine) {
  auto walk = profile_with(vm::ExecEngine::kWalk, kMixedProgram);
  auto bc = profile_with(vm::ExecEngine::kBytecode, kMixedProgram);
  std::uint64_t walk_bc = 0, walk_walk = 0, bc_bc = 0;
  for (const auto& s : walk.sites) {
    walk_bc += s.bytecode_stmts;
    walk_walk += s.walk_stmts;
  }
  for (const auto& s : bc.sites) bc_bc += s.bytecode_stmts;
  EXPECT_EQ(walk_bc, 0u);
  EXPECT_GT(walk_walk, 0u);
  EXPECT_GT(bc_bc, 0u);
}

TEST(Profiler, ProfilingDoesNotChangeOutputOrCycles) {
  auto program = Program::compile("prof.uc", kMixedProgram);
  auto plain = program.run();
  auto prof = program.profile();
  EXPECT_EQ(plain.output(), prof.run.output());
  EXPECT_EQ(plain.stats(), prof.run.stats());
}

TEST(Profiler, SumHoldsOnThePaperShortestPath) {
  const auto source = papers::shortest_path_on2(8, 11);
  for (auto engine : {vm::ExecEngine::kWalk, vm::ExecEngine::kBytecode}) {
    auto prof = profile_with(engine, source.c_str());
    EXPECT_EQ(sum_sites(prof.sites), prof.run.stats());
    EXPECT_GT(prof.run.stats().cycles, 0u);
  }
}

TEST(Profiler, StaticJoinAnnotatesParallelSites) {
  auto prof = profile_with(vm::ExecEngine::kBytecode, kMixedProgram);
  bool any_static = false;
  for (const auto& s : prof.sites) any_static |= !s.static_classes.empty();
  EXPECT_TRUE(any_static);
}

TEST(Profiler, StaticJoinCanBeDisabled) {
  auto program = Program::compile("prof.uc", kMixedProgram);
  ProfileOptions opts;
  opts.join_static = false;
  auto prof = program.profile(opts);
  for (const auto& s : prof.sites) EXPECT_TRUE(s.static_classes.empty());
}

TEST(Profiler, PoolUtilizationIsPopulated) {
  auto prof = profile_with(vm::ExecEngine::kBytecode, kMixedProgram);
  EXPECT_GE(prof.pool.threads, 1u);
  EXPECT_EQ(prof.pool.chunks.size(), prof.pool.threads);
  EXPECT_GT(prof.pool.jobs, 0u);
}

TEST(Profiler, TraceEventsOnlyWhenRequested) {
  auto off = profile_with(vm::ExecEngine::kBytecode, kMixedProgram, false);
  EXPECT_TRUE(off.events.empty());

  auto on = profile_with(vm::ExecEngine::kBytecode, kMixedProgram, true);
  ASSERT_FALSE(on.events.empty());
  for (const auto& ev : on.events) {
    ASSERT_GE(ev.site, 0);
    ASSERT_LT(static_cast<std::size_t>(ev.site), on.sites.size());
    EXPECT_GE(ev.depth, 0);
  }
  // The root scope event covers the whole run's cycles.
  bool found_root = false;
  for (const auto& ev : on.events) {
    if (on.sites[static_cast<std::size_t>(ev.site)].kind == "program") {
      EXPECT_EQ(ev.cycles, on.run.stats().cycles);
      found_root = true;
    }
  }
  EXPECT_TRUE(found_root);
}

TEST(Profiler, TableReportsMatchingTotals) {
  auto prof = profile_with(vm::ExecEngine::kBytecode, kMixedProgram);
  auto table = prof.table();
  EXPECT_NE(table.find("self-cycles"), std::string::npos);
  EXPECT_NE(table.find("sum of sites"), std::string::npos);
  EXPECT_EQ(table.find("MISMATCH"), std::string::npos) << table;
  EXPECT_NE(table.find("host pool:"), std::string::npos);
}

TEST(Profiler, JsonCarriesEverySite) {
  auto prof = profile_with(vm::ExecEngine::kBytecode, kMixedProgram);
  auto json = prof.json();
  EXPECT_NE(json.find("\"total_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"sites\""), std::string::npos);
  EXPECT_NE(json.find("\"pool\""), std::string::npos);
  EXPECT_NE(json.find("\"static\""), std::string::npos);
}

TEST(Profiler, TraceJsonIsChromeShaped) {
  auto prof = profile_with(vm::ExecEngine::kBytecode, kMixedProgram, true);
  auto json = prof.trace();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
}

// Direct unit coverage of the scope stack: nested enters attribute the
// parent's cost up to the child entry, and exits restore the parent.
TEST(Profiler, ScopeStackAttributesExclusively) {
  prof::Profiler p;
  auto outer = p.intern("par", "t.uc", 1, 1, 0, 100, "outer");
  auto inner = p.intern("stmt", "t.uc", 2, 1, 10, 20, "inner");

  cm::CostStats now;
  p.enter(outer, now, 0);
  now.cycles = 10;  // 10 cycles while outer is on top
  p.enter(inner, now, 0);
  now.cycles = 25;  // 15 cycles while inner is on top
  p.exit(now, 0);
  now.cycles = 30;  // 5 more for outer after the child
  p.exit(now, 0);

  ASSERT_EQ(p.sites().size(), 2u);
  EXPECT_EQ(p.sites()[0].self.cycles, 15u);  // outer: 10 + 5
  EXPECT_EQ(p.sites()[1].self.cycles, 15u);  // inner: 15
  EXPECT_EQ(p.sites()[0].entries, 1u);
  EXPECT_EQ(p.depth(), 0u);
}

}  // namespace
}  // namespace uc
