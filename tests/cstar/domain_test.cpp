#include "cstar/domain.hpp"

#include <gtest/gtest.h>

namespace uc::cstar {
namespace {

struct DomainFixture : ::testing::Test {
  cm::Machine machine;
  Domain dom{machine, "D", {4, 4}};
  FieldHandle v = dom.add_field("v");
};

TEST_F(DomainFixture, ParallelSetAndCoordinates) {
  dom.parallel(2, [&](Elem& e) { e.set(v, 10 * e.at(0) + e.at(1)); });
  EXPECT_EQ(dom.read(v, {2, 3}), 23);
  EXPECT_EQ(dom.read(v, {0, 0}), 0);
}

TEST_F(DomainFixture, ReadsSeePreStatementState) {
  dom.parallel(1, [&](Elem& e) { e.set(v, e.at(0) * 4 + e.at(1)); });
  // Shift: v(i,j) = old v(i, j+1) for j<3.
  dom.parallel(2, [&](Elem& e) {
    if (e.at(1) < 3) e.set(v, e.get(v, {e.at(0), e.at(1) + 1}));
  });
  EXPECT_EQ(dom.read(v, {1, 0}), 5);  // old v(1,1)
  EXPECT_EQ(dom.read(v, {1, 2}), 7);  // old v(1,3)
  EXPECT_EQ(dom.read(v, {1, 3}), 7);  // untouched
}

TEST_F(DomainFixture, MinMaxAssign) {
  dom.parallel(1, [&](Elem& e) { e.set(v, 10); });
  dom.parallel(1, [&](Elem& e) {
    e.min_assign(v, e.at(0) == 0 ? 3 : 15);
    e.max_assign(v, e.at(0) == 3 ? 99 : 0);
  });
  EXPECT_EQ(dom.read(v, {0, 0}), 3);
  EXPECT_EQ(dom.read(v, {1, 1}), 10);
  EXPECT_EQ(dom.read(v, {3, 2}), 99);
}

TEST_F(DomainFixture, SendAddCombines) {
  dom.parallel(1, [&](Elem& e) { e.set(v, 0); });
  // Every instance sends +1 to (0,0): a router combine.
  dom.parallel(1, [&](Elem& e) { e.send_add(v, {0, 0}, 1); });
  EXPECT_EQ(dom.read(v, {0, 0}), 16);
}

TEST_F(DomainFixture, WhereNarrowsContext) {
  dom.parallel(1, [&](Elem& e) { e.set(v, e.at(0)); });
  dom.where([&](Elem& e) { return e.self(v) >= 2; },
            [&] { dom.parallel(1, [&](Elem& e) { e.set(v, 100); }); });
  EXPECT_EQ(dom.read(v, {0, 0}), 0);
  EXPECT_EQ(dom.read(v, {1, 0}), 1);
  EXPECT_EQ(dom.read(v, {2, 0}), 100);
  EXPECT_EQ(dom.read(v, {3, 3}), 100);
}

TEST_F(DomainFixture, ReduceOverActiveInstances) {
  dom.parallel(1, [&](Elem& e) { e.set(v, 1); });
  EXPECT_EQ(dom.reduce(v, cm::ReduceOp::kAdd), 16);
}

TEST_F(DomainFixture, LocalAccessChargesNoRouter) {
  machine.reset_stats();
  dom.parallel(1, [&](Elem& e) { e.set(v, e.self(v) + 1); });
  EXPECT_EQ(machine.stats().router_ops, 0u);
  EXPECT_EQ(machine.stats().news_ops, 0u);
}

TEST_F(DomainFixture, NeighborAccessChargesNews) {
  machine.reset_stats();
  dom.parallel(1, [&](Elem& e) {
    if (e.at(1) < 3) e.set(v, e.get(v, {e.at(0), e.at(1) + 1}));
  });
  EXPECT_GT(machine.stats().news_ops, 0u);
  EXPECT_EQ(machine.stats().router_ops, 0u);
}

TEST_F(DomainFixture, TransposeAccessChargesRouter) {
  machine.reset_stats();
  dom.parallel(1, [&](Elem& e) {
    e.set(v, e.get(v, {e.at(1), e.at(0)}) + 1);
  });
  EXPECT_GT(machine.stats().router_messages, 0u);
}

TEST_F(DomainFixture, NestedParallelRejected) {
  EXPECT_THROW(dom.parallel(1,
                            [&](Elem&) {
                              dom.parallel(1, [&](Elem&) {});
                            }),
               support::ApiError);
}

TEST_F(DomainFixture, OutOfRangeGetThrows) {
  EXPECT_THROW(
      dom.parallel(1, [&](Elem& e) { e.set(v, e.get(v, {9, 9})); }),
      support::ApiError);
}

TEST(CstarCrossDomain, GetFromAndSendMinTo) {
  cm::Machine machine;
  Domain a(machine, "A", {4});
  Domain b(machine, "B", {4, 4});
  auto av = a.add_field("v");
  auto bv = b.add_field("v");
  a.parallel(1, [&](Elem& e) { e.set(av, 100); });
  b.parallel(1, [&](Elem& e) { e.set(bv, e.at(0) * 4 + e.at(1)); });
  // Each B(i,j) sends min of its value into A(i).
  b.parallel(2, [&](Elem& e) {
    e.send_min_to(a, av, {e.at(0)}, e.self(bv));
  });
  EXPECT_EQ(a.read(av, {0}), 0);
  EXPECT_EQ(a.read(av, {2}), 8);
  // And A can be read from B's sweep.
  b.parallel(2, [&](Elem& e) {
    e.set(bv, e.get_from(a, av, {e.at(0)}));
  });
  EXPECT_EQ(b.read(bv, {3, 1}), 12);
}

}  // namespace
}  // namespace uc::cstar
