#include "cstar/paths.hpp"

#include <gtest/gtest.h>

#include "seqref/seqref.hpp"
#include "support/rng.hpp"

namespace uc::cstar {
namespace {

class CstarPathsP : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CstarPathsP, On2MatchesFloydWarshall) {
  const auto n = GetParam();
  support::SplitMix64 rng(5);
  auto graph = seqref::random_digraph(n, rng);
  auto expect = graph;
  seqref::floyd_warshall(expect, n);
  cm::Machine machine;
  EXPECT_EQ(shortest_path_on2(machine, n, graph), expect);
  EXPECT_GT(machine.stats().cycles, 0u);
}

TEST_P(CstarPathsP, On3MatchesFloydWarshall) {
  const auto n = GetParam();
  support::SplitMix64 rng(5);
  auto graph = seqref::random_digraph(n, rng);
  auto expect = graph;
  seqref::floyd_warshall(expect, n);
  cm::Machine machine;
  EXPECT_EQ(shortest_path_on3(machine, n, graph), expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CstarPathsP,
                         ::testing::Values(2, 3, 5, 8, 13));

TEST(CstarPaths, On3UsesMoreVpsThanOn2) {
  // The C* O(N^3) program declares an N^3 domain, so beyond 16K physical
  // processors its VP ratio (and with it the per-instruction time) grows
  // much faster than the O(N^2) program's.
  const std::int64_t n = 32;  // 32^3 = 32768 VPs > 16384 physical
  support::SplitMix64 rng(5);
  auto graph = seqref::random_digraph(n, rng);
  cm::Machine m2, m3;
  (void)shortest_path_on2(m2, n, graph);
  (void)shortest_path_on3(m3, n, graph);
  EXPECT_GT(m3.stats().router_messages, m2.stats().router_messages);
}

}  // namespace
}  // namespace uc::cstar
