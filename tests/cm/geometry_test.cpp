#include "cm/geometry.hpp"

#include <gtest/gtest.h>

namespace uc::cm {
namespace {

TEST(Geometry, SizeAndRank) {
  Geometry g({4, 8});
  EXPECT_EQ(g.rank(), 2u);
  EXPECT_EQ(g.size(), 32);
  EXPECT_EQ(g.dim(0), 4);
  EXPECT_EQ(g.dim(1), 8);
}

TEST(Geometry, FlattenUnflattenRoundTrip2D) {
  Geometry g({3, 5});
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      auto vp = g.flatten({i, j});
      auto coords = g.unflatten(vp);
      EXPECT_EQ(coords[0], i);
      EXPECT_EQ(coords[1], j);
    }
  }
}

TEST(Geometry, RowMajorOrder) {
  Geometry g({2, 3});
  EXPECT_EQ(g.flatten({0, 0}), 0);
  EXPECT_EQ(g.flatten({0, 2}), 2);
  EXPECT_EQ(g.flatten({1, 0}), 3);
  EXPECT_EQ(g.flatten({1, 2}), 5);
}

TEST(Geometry, FlattenUnflattenRoundTrip3D) {
  Geometry g({2, 3, 4});
  EXPECT_EQ(g.size(), 24);
  for (std::int64_t vp = 0; vp < g.size(); ++vp) {
    EXPECT_EQ(g.flatten(g.unflatten(vp)), vp);
  }
}

TEST(Geometry, InvalidConstruction) {
  EXPECT_THROW(Geometry({}), support::ApiError);
  EXPECT_THROW(Geometry({0}), support::ApiError);
  EXPECT_THROW(Geometry({4, -1}), support::ApiError);
}

TEST(Geometry, FlattenRejectsOutOfRange) {
  Geometry g({4});
  EXPECT_THROW(g.flatten({4}), support::ApiError);
  EXPECT_THROW(g.flatten({-1}), support::ApiError);
  EXPECT_THROW(g.flatten({1, 1}), support::ApiError);
}

TEST(Geometry, Contains) {
  Geometry g({4, 4});
  EXPECT_TRUE(g.contains({0, 0}));
  EXPECT_TRUE(g.contains({3, 3}));
  EXPECT_FALSE(g.contains({4, 0}));
  EXPECT_FALSE(g.contains({0, -1}));
  EXPECT_FALSE(g.contains({1}));
}

TEST(Geometry, Neighbor1D) {
  Geometry g({10});
  EXPECT_EQ(g.neighbor(3, 0, 1).value(), 4);
  EXPECT_EQ(g.neighbor(3, 0, -1).value(), 2);
  EXPECT_EQ(g.neighbor(3, 0, 4).value(), 7);
  EXPECT_FALSE(g.neighbor(9, 0, 1).has_value());
  EXPECT_FALSE(g.neighbor(0, 0, -1).has_value());
}

TEST(Geometry, Neighbor2D) {
  Geometry g({4, 4});
  auto vp = g.flatten({1, 2});
  EXPECT_EQ(g.neighbor(vp, 0, 1).value(), g.flatten({2, 2}));
  EXPECT_EQ(g.neighbor(vp, 1, -1).value(), g.flatten({1, 1}));
  EXPECT_FALSE(g.neighbor(g.flatten({0, 0}), 0, -1).has_value());
  EXPECT_THROW((void)g.neighbor(vp, 2, 1), support::ApiError);
}

TEST(Geometry, NewsNeighborClassification) {
  Geometry g({4, 4});
  auto a = g.flatten({1, 1});
  EXPECT_TRUE(g.is_news_neighbor(a, g.flatten({1, 2})));
  EXPECT_TRUE(g.is_news_neighbor(a, g.flatten({0, 1})));
  EXPECT_FALSE(g.is_news_neighbor(a, a));                      // self
  EXPECT_FALSE(g.is_news_neighbor(a, g.flatten({2, 2})));      // diagonal
  EXPECT_FALSE(g.is_news_neighbor(a, g.flatten({1, 3})));      // 2 apart
  EXPECT_FALSE(g.is_news_neighbor(a, -1));                     // out of range
}

TEST(Geometry, NewsNeighborWrapsAreNotNeighbors) {
  // Row-major adjacency across a row boundary is NOT a NEWS hop.
  Geometry g({2, 4});
  EXPECT_FALSE(g.is_news_neighbor(g.flatten({0, 3}), g.flatten({1, 0})));
}

TEST(Geometry, ToString) {
  EXPECT_EQ(Geometry({16}).to_string(), "Geometry(16)");
  EXPECT_EQ(Geometry({4, 8}).to_string(), "Geometry(4x8)");
}

TEST(Geometry, Equality) {
  EXPECT_EQ(Geometry({2, 2}), Geometry({2, 2}));
  EXPECT_FALSE(Geometry({2, 2}) == Geometry({4}));
}

}  // namespace
}  // namespace uc::cm
