#include "cm/context.hpp"

#include <gtest/gtest.h>

namespace uc::cm {
namespace {

TEST(Context, StartsFullyActive) {
  Geometry g({8});
  ContextStack ctx(&g);
  EXPECT_EQ(ctx.active_count(), 8);
  EXPECT_TRUE(ctx.any_active());
  EXPECT_EQ(ctx.depth(), 1u);
}

TEST(Context, WhereNarrows) {
  Geometry g({8});
  ContextStack ctx(&g);
  ctx.where([](VpIndex vp) { return vp % 2 == 0; });
  EXPECT_EQ(ctx.active_count(), 4);
  EXPECT_TRUE(ctx.is_active(0));
  EXPECT_FALSE(ctx.is_active(1));
  ctx.end();
  EXPECT_EQ(ctx.active_count(), 8);
}

TEST(Context, NestedWhereIntersects) {
  Geometry g({16});
  ContextStack ctx(&g);
  ctx.where([](VpIndex vp) { return vp < 8; });
  ctx.where([](VpIndex vp) { return vp % 2 == 0; });
  EXPECT_EQ(ctx.active_count(), 4);  // {0,2,4,6}
  EXPECT_FALSE(ctx.is_active(8));    // excluded by outer where
}

TEST(Context, WhereElseComplements) {
  Geometry g({8});
  ContextStack ctx(&g);
  ctx.where([](VpIndex vp) { return vp < 3; });
  ctx.where_else();
  EXPECT_EQ(ctx.active_count(), 5);
  EXPECT_FALSE(ctx.is_active(0));
  EXPECT_TRUE(ctx.is_active(3));
  ctx.end();
  EXPECT_EQ(ctx.depth(), 1u);
}

TEST(Context, WhereElseRespectsOuterMask) {
  Geometry g({8});
  ContextStack ctx(&g);
  ctx.where([](VpIndex vp) { return vp < 6; });      // {0..5}
  ctx.where([](VpIndex vp) { return vp % 2 == 0; }); // {0,2,4}
  ctx.where_else();                                  // {1,3,5} — not 6,7
  EXPECT_EQ(ctx.active_count(), 3);
  EXPECT_TRUE(ctx.is_active(1));
  EXPECT_FALSE(ctx.is_active(7));
}

TEST(Context, EmptyContextGlobalOr) {
  Geometry g({4});
  ContextStack ctx(&g);
  ctx.where([](VpIndex) { return false; });
  EXPECT_FALSE(ctx.any_active());
}

TEST(Context, UnderflowAndMisuseThrow) {
  Geometry g({4});
  ContextStack ctx(&g);
  EXPECT_THROW(ctx.end(), support::ApiError);
  EXPECT_THROW(ctx.where_else(), support::ApiError);
  EXPECT_THROW(ContextStack(nullptr), support::ApiError);
}

}  // namespace
}  // namespace uc::cm
