#include "cm/ops.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace uc::cm {
namespace {

struct OpsFixture : ::testing::Test {
  Machine m;
  GeomId g = m.create_geometry({8});
  ContextStack ctx{&m.geometry(g)};

  Field& make_int_field(const char* name) {
    return m.field(m.allocate_field(g, name, ElemType::kInt));
  }
  Field& make_float_field(const char* name) {
    return m.field(m.allocate_field(g, name, ElemType::kFloat));
  }
};

TEST_F(OpsFixture, ElementwiseWritesActiveOnly) {
  auto& a = make_int_field("a");
  a.fill(from_int(-1));
  ctx.where([](VpIndex vp) { return vp % 2 == 0; });
  elementwise(m, ctx, a, [](VpIndex vp) { return from_int(vp * 10); });
  ctx.end();
  EXPECT_EQ(as_int(a.get(0)), 0);
  EXPECT_EQ(as_int(a.get(1)), -1);  // inactive: untouched
  EXPECT_EQ(as_int(a.get(2)), 20);
  EXPECT_EQ(m.stats().vector_ops, 1u);
}

TEST_F(OpsFixture, NewsShiftPositiveDelta) {
  auto& a = make_int_field("a");
  auto& b = make_int_field("b");
  for (VpIndex vp = 0; vp < 8; ++vp) b.set(vp, from_int(vp));
  a.fill(from_int(99));
  news_shift(m, ctx, a, b, 0, 1);  // a[i] = b[i+1]
  for (VpIndex vp = 0; vp < 7; ++vp) EXPECT_EQ(as_int(a.get(vp)), vp + 1);
  EXPECT_EQ(as_int(a.get(7)), 99);  // edge keeps old value
  EXPECT_EQ(m.stats().news_ops, 1u);
}

TEST_F(OpsFixture, NewsShiftInPlaceAliasesSafely) {
  auto& a = make_int_field("a");
  for (VpIndex vp = 0; vp < 8; ++vp) a.set(vp, from_int(vp));
  news_shift(m, ctx, a, a, 0, -1);  // a[i] = a[i-1]
  for (VpIndex vp = 1; vp < 8; ++vp) EXPECT_EQ(as_int(a.get(vp)), vp - 1);
  EXPECT_EQ(as_int(a.get(0)), 0);
}

TEST_F(OpsFixture, RouterGetGathersArbitraryPattern) {
  auto& a = make_int_field("a");
  auto& b = make_int_field("b");
  for (VpIndex vp = 0; vp < 8; ++vp) b.set(vp, from_int(100 + vp));
  router_get(m, ctx, a, b, [](VpIndex vp) -> std::optional<VpIndex> {
    return 7 - vp;  // reversal: not a NEWS pattern
  });
  for (VpIndex vp = 0; vp < 8; ++vp) {
    EXPECT_EQ(as_int(a.get(vp)), 100 + (7 - vp));
  }
  EXPECT_EQ(m.stats().router_ops, 1u);
  EXPECT_EQ(m.stats().router_messages, 8u);
}

TEST_F(OpsFixture, RouterGetSkipsNullopt) {
  auto& a = make_int_field("a");
  auto& b = make_int_field("b");
  b.fill(from_int(5));
  a.fill(from_int(-1));
  router_get(m, ctx, a, b, [](VpIndex vp) -> std::optional<VpIndex> {
    if (vp < 4) return vp;
    return std::nullopt;
  });
  EXPECT_EQ(as_int(a.get(0)), 5);
  EXPECT_EQ(as_int(a.get(6)), -1);
  EXPECT_EQ(m.stats().router_messages, 4u);
}

TEST_F(OpsFixture, RouterGetRejectsBadAddress) {
  auto& a = make_int_field("a");
  auto& b = make_int_field("b");
  EXPECT_THROW(router_get(m, ctx, a, b,
                          [](VpIndex) -> std::optional<VpIndex> { return 42; }),
               support::UcRuntimeError);
}

TEST_F(OpsFixture, ReduceAddInt) {
  auto& a = make_int_field("a");
  for (VpIndex vp = 0; vp < 8; ++vp) a.set(vp, from_int(vp));
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kAdd)), 28);
  EXPECT_EQ(m.stats().reductions, 1u);
}

TEST_F(OpsFixture, ReduceRespectsContext) {
  auto& a = make_int_field("a");
  for (VpIndex vp = 0; vp < 8; ++vp) a.set(vp, from_int(vp));
  ctx.where([](VpIndex vp) { return vp >= 4; });
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kAdd)), 4 + 5 + 6 + 7);
  ctx.end();
}

TEST_F(OpsFixture, ReduceEmptySetGivesIdentity) {
  auto& a = make_int_field("a");
  a.fill(from_int(9));
  ctx.where([](VpIndex) { return false; });
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kAdd)), 0);
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kMul)), 1);
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kMax)),
            -std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kMin)),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kAnd)), 1);
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kOr)), 0);
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kXor)), 0);
  ctx.end();
}

TEST_F(OpsFixture, ReduceMinMaxFloat) {
  auto& a = make_float_field("a");
  for (VpIndex vp = 0; vp < 8; ++vp) {
    a.set(vp, from_float(1.5 * static_cast<double>(vp) - 3.0));
  }
  EXPECT_DOUBLE_EQ(as_float(reduce(m, ctx, a, ReduceOp::kMin)), -3.0);
  EXPECT_DOUBLE_EQ(as_float(reduce(m, ctx, a, ReduceOp::kMax)), 7.5);
}

TEST_F(OpsFixture, ReduceLogicalOps) {
  auto& a = make_int_field("a");
  a.fill(from_int(1));
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kAnd)), 1);
  a.set(3, from_int(0));
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kAnd)), 0);
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kOr)), 1);
}

TEST_F(OpsFixture, ReduceXorInt) {
  auto& a = make_int_field("a");
  for (VpIndex vp = 0; vp < 8; ++vp) a.set(vp, from_int(vp));
  EXPECT_EQ(as_int(reduce(m, ctx, a, ReduceOp::kXor)),
            0 ^ 1 ^ 2 ^ 3 ^ 4 ^ 5 ^ 6 ^ 7);
}

TEST_F(OpsFixture, ScanInclusivePrefixSums) {
  auto& a = make_int_field("a");
  auto& out = make_int_field("out");
  for (VpIndex vp = 0; vp < 8; ++vp) a.set(vp, from_int(vp + 1));
  scan(m, ctx, out, a, ReduceOp::kAdd);
  std::int64_t expect = 0;
  for (VpIndex vp = 0; vp < 8; ++vp) {
    expect += vp + 1;
    EXPECT_EQ(as_int(out.get(vp)), expect);
  }
}

TEST_F(OpsFixture, ScanSkipsInactive) {
  auto& a = make_int_field("a");
  auto& out = make_int_field("out");
  a.fill(from_int(1));
  out.fill(from_int(-7));
  ctx.where([](VpIndex vp) { return vp % 2 == 0; });
  scan(m, ctx, out, a, ReduceOp::kAdd);
  ctx.end();
  EXPECT_EQ(as_int(out.get(0)), 1);
  EXPECT_EQ(as_int(out.get(1)), -7);  // inactive untouched
  EXPECT_EQ(as_int(out.get(2)), 2);
  EXPECT_EQ(as_int(out.get(6)), 4);
}

TEST_F(OpsFixture, GlobalOrAndBroadcast) {
  auto& a = make_int_field("a");
  EXPECT_TRUE(global_or(m, ctx));
  broadcast(m, ctx, a, from_int(11));
  EXPECT_EQ(as_int(a.get(5)), 11);
  ctx.where([](VpIndex) { return false; });
  EXPECT_FALSE(global_or(m, ctx));
  broadcast(m, ctx, a, from_int(22));
  ctx.end();
  EXPECT_EQ(as_int(a.get(5)), 11);  // inactive broadcast changed nothing
  EXPECT_EQ(m.stats().global_ors, 2u);
  EXPECT_EQ(m.stats().broadcasts, 2u);
}

TEST_F(OpsFixture, GeometryMismatchThrows) {
  auto g2 = m.create_geometry({4});
  auto& small = m.field(m.allocate_field(g2, "s", ElemType::kInt));
  auto& a = make_int_field("a");
  EXPECT_THROW(elementwise(m, ctx, small, [](VpIndex) { return Bits{0}; }),
               support::ApiError);
  EXPECT_THROW(news_shift(m, ctx, a, small, 0, 1), support::ApiError);
  EXPECT_THROW(scan(m, ctx, a, small, ReduceOp::kAdd), support::ApiError);
}

TEST(OpsBitcast, RoundTrips) {
  EXPECT_EQ(as_int(from_int(-12345)), -12345);
  EXPECT_DOUBLE_EQ(as_float(from_float(3.25)), 3.25);
}

// Property-style sweep: reduce(op) over random data must agree with a serial
// fold, for every operator, on int fields.
class ReducePropertyP : public ::testing::TestWithParam<ReduceOp> {};

TEST_P(ReducePropertyP, AgreesWithSerialFold) {
  Machine m;
  auto g = m.create_geometry({64});
  ContextStack ctx(&m.geometry(g));
  auto& a = m.field(m.allocate_field(g, "a", ElemType::kInt));
  support::SplitMix64 rng(2026);
  const auto op = GetParam();
  for (int trial = 0; trial < 20; ++trial) {
    for (VpIndex vp = 0; vp < 64; ++vp) {
      // Small values so kMul does not overflow.
      a.set(vp, from_int(static_cast<std::int64_t>(rng.next_below(3))));
    }
    Bits expect = reduce_identity(op, ElemType::kInt);
    for (VpIndex vp = 0; vp < 64; ++vp) {
      expect = apply_reduce_op(op, ElemType::kInt, expect, a.get(vp));
    }
    EXPECT_EQ(as_int(reduce(m, ctx, a, op)), as_int(expect));
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, ReducePropertyP,
                         ::testing::Values(ReduceOp::kAdd, ReduceOp::kMul,
                                           ReduceOp::kMax, ReduceOp::kMin,
                                           ReduceOp::kAnd, ReduceOp::kOr,
                                           ReduceOp::kXor));

}  // namespace
}  // namespace uc::cm
