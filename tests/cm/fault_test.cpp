// The fault-injection layer (docs/ROBUSTNESS.md): spec parsing, schedule
// determinism, retry/backoff charging, escalation to TransientFault, the
// field-memory cap, and machine snapshot/restore.
#include <gtest/gtest.h>

#include "cm/fault.hpp"
#include "cm/machine.hpp"
#include "support/error.hpp"

namespace uc::cm {
namespace {

// ---- spec grammar ----

TEST(FaultSpec, ParsesKindsAndGlobals) {
  const FaultSpec s =
      parse_fault_spec("router:p=1e-4;news:p=1e-5,seed=42;reduce:p=0.25");
  EXPECT_DOUBLE_EQ(s.router_p, 1e-4);
  EXPECT_DOUBLE_EQ(s.news_p, 1e-5);
  EXPECT_DOUBLE_EQ(s.reduce_p, 0.25);
  EXPECT_DOUBLE_EQ(s.memory_p, 0.0);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_TRUE(s.enabled());
}

TEST(FaultSpec, KindAliasesAndProtocolKnobs) {
  const FaultSpec s = parse_fault_spec(
      "scan:p=0.5;field:p=0.125,retries=3,backoff=16,detect=0");
  EXPECT_DOUBLE_EQ(s.reduce_p, 0.5);   // scan == reduce
  EXPECT_DOUBLE_EQ(s.memory_p, 0.125);  // field == memory
  EXPECT_EQ(s.max_retries, 3u);
  EXPECT_EQ(s.backoff_cycles, 16u);
  EXPECT_EQ(s.detect_cycles, 0u);
}

TEST(FaultSpec, RoundTripsThroughToString) {
  const char* spec = "router:p=0.001;memory:p=0.5,seed=7,retries=2";
  const FaultSpec a = parse_fault_spec(spec);
  const FaultSpec b = parse_fault_spec(a.to_string());
  EXPECT_DOUBLE_EQ(b.router_p, a.router_p);
  EXPECT_DOUBLE_EQ(b.memory_p, a.memory_p);
  EXPECT_EQ(b.seed, a.seed);
  EXPECT_EQ(b.max_retries, a.max_retries);
}

// Bad specs throw ApiError whose message names the offense, so the CLI can
// print it verbatim.
void expect_bad(const std::string& spec, const std::string& needle) {
  try {
    parse_fault_spec(spec);
    FAIL() << "spec '" << spec << "' should have been rejected";
  } catch (const support::ApiError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message for '" << spec << "' was: " << e.what();
  }
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  expect_bad("", "empty spec");
  expect_bad("router:p=0.1;;news:p=0.1", "empty clause");
  expect_bad("teleport:p=0.1", "unknown fault kind 'teleport'");
  expect_bad("router:p=2", "outside [0,1]");
  expect_bad("router:p=-0.5", "outside [0,1]");
  expect_bad("router:p=banana", "not a probability");
  expect_bad("p=0.5", "outside a kind clause");
  expect_bad("router:p", "not key=value");
  expect_bad("router:p=0.1,colour=red", "unknown key 'colour'");
  expect_bad("seed=-3", "non-negative integer");
  expect_bad("router:p=0.1,", "empty parameter");
}

TEST(FaultSpec, RejectsOutOfRangeNumbers) {
  // Probabilities outside [0,1] in every representation, including values
  // that overflow a double (strtod sets ERANGE).
  expect_bad("router:p=1.0000001", "outside [0,1]");
  expect_bad("router:p=100e100", "outside [0,1]");
  expect_bad("router:p=1e999", "not a probability");   // ERANGE overflow
  expect_bad("router:p=1e-999", "not a probability");  // ERANGE underflow
  expect_bad("router:p=nan", "not a probability");
  // ±inf parse cleanly and fall outside [0,1], so the range check trips.
  expect_bad("router:p=inf", "outside [0,1]");
  expect_bad("router:p=-inf", "outside [0,1]");
  // Counts that overflow uint64 (strtoull sets ERANGE) or go negative.
  expect_bad("seed=99999999999999999999", "non-negative integer");
  expect_bad("retries=-1", "non-negative integer");
  expect_bad("backoff=18446744073709551616", "non-negative integer");
  expect_bad("detect=1e3", "non-negative integer");
}

TEST(FaultSpec, RejectsDuplicateEntries) {
  // Duplicates are rejected rather than last-writer-wins: a spec with two
  // clauses for one kind almost certainly means the user edited one and
  // forgot the other, and silently keeping either changes the schedule.
  expect_bad("router:p=0.1;router:p=0", "duplicate clause");
  expect_bad("scan:p=0.1;reduce:p=0.2", "duplicate clause");   // aliases
  expect_bad("memory:p=0.1;field:p=0.2", "duplicate clause");  // aliases
  expect_bad("router:p=0.1,p=0.2", "duplicate p=");
  expect_bad("router:p=0.1,seed=1;news:p=0.2,seed=2", "duplicate key 'seed'");
  expect_bad("router:retries=1,retries=2", "duplicate key 'retries'");
  expect_bad("news:p=0.5,backoff=4,backoff=8", "duplicate key 'backoff'");
  expect_bad("router:p=1,detect=1;detect=2", "duplicate key 'detect'");
  // Distinct kinds and one of each global stay legal.
  const FaultSpec ok = parse_fault_spec(
      "router:p=0.1;news:p=0.2;scan:p=0.3;field:p=0.4,seed=9,retries=1");
  EXPECT_DOUBLE_EQ(ok.reduce_p, 0.3);
  EXPECT_DOUBLE_EQ(ok.memory_p, 0.4);
}

// ---- injector determinism ----

TEST(FaultInjector, SameSeedSameSchedule) {
  const FaultSpec spec = parse_fault_spec("router:p=0.3,seed=99");
  FaultInjector a(spec), b(spec);
  for (int k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.draw_failure(FaultKind::kRouter, 5),
              b.draw_failure(FaultKind::kRouter, 5));
  }
}

TEST(FaultInjector, EdgeProbabilitiesConsumeNoRandomness) {
  FaultInjector inj(parse_fault_spec("router:p=1;news:p=0.5,seed=1"));
  // p >= 1 always fails, p <= 0 and units == 0 never fail — and none of
  // these draw from the RNG, so the schedule for other kinds is unchanged.
  EXPECT_TRUE(inj.draw_failure(FaultKind::kRouter, 1));
  EXPECT_FALSE(inj.draw_failure(FaultKind::kMemory, 1));  // p == 0
  EXPECT_FALSE(inj.draw_failure(FaultKind::kNews, 0));    // units == 0
  FaultInjector fresh(parse_fault_spec("router:p=1;news:p=0.5,seed=1"));
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(inj.draw_failure(FaultKind::kNews, 3),
              fresh.draw_failure(FaultKind::kNews, 3));
  }
}

TEST(FaultInjector, MoreUnitsFailMoreOften) {
  const FaultSpec spec = parse_fault_spec("router:p=0.001,seed=5");
  auto failure_rate = [&](std::uint64_t units) {
    FaultInjector inj(spec);
    int fails = 0;
    for (int k = 0; k < 4000; ++k) {
      fails += inj.draw_failure(FaultKind::kRouter, units);
    }
    return fails;
  };
  EXPECT_LT(failure_rate(1), failure_rate(1000));
}

TEST(FaultInjector, BackoffDoublesAndCaps) {
  FaultInjector inj(parse_fault_spec("router:p=0.5,backoff=8"));
  EXPECT_EQ(inj.backoff(1), 8u);
  EXPECT_EQ(inj.backoff(2), 16u);
  EXPECT_EQ(inj.backoff(3), 32u);
  EXPECT_EQ(inj.backoff(11), 8u << 10);
  EXPECT_EQ(inj.backoff(50), 8u << 10);  // capped at 10 doublings
}

// ---- machine integration ----

TEST(MachineFaults, FaultsOffChargesExactlyBaseline) {
  MachineOptions plain;
  Machine base(plain);
  MachineOptions off = plain;
  off.faults = parse_fault_spec("router:p=0;news:p=0");
  ASSERT_FALSE(off.faults.enabled());
  Machine gated(off);
  base.charge_router(1024, 1024);
  gated.charge_router(1024, 1024);
  EXPECT_EQ(base.stats(), gated.stats());
  EXPECT_EQ(gated.stats().faults, 0u);
}

TEST(MachineFaults, RetriesChargeCyclesButKeepCounts) {
  MachineOptions plain;
  Machine base(plain);
  for (int k = 0; k < 20; ++k) base.charge_router(64, 64);

  MachineOptions faulty = plain;
  // 64 messages at p=1e-2: each attempt fails with probability
  // 1 - 0.99^64 ≈ 0.47, so over 20 instructions this seed draws several
  // faults but never 9 consecutive failures (which would escalate).
  faulty.faults = parse_fault_spec("router:p=0.01,seed=3");
  Machine m(faulty);
  for (int k = 0; k < 20; ++k) m.charge_router(64, 64);
  EXPECT_GT(m.stats().faults, 0u);
  EXPECT_EQ(m.stats().retries, m.stats().faults);
  EXPECT_GT(m.stats().cycles, base.stats().cycles);
  // Retries re-issue the same instruction: logical op counts are those of
  // a single issue.
  EXPECT_EQ(m.stats().router_ops, base.stats().router_ops);
  EXPECT_EQ(m.stats().router_messages, base.stats().router_messages);
}

TEST(MachineFaults, DeterministicScheduleAcrossMachines) {
  MachineOptions opts;
  opts.faults = parse_fault_spec("router:p=0.001;news:p=0.002,seed=17");
  auto run = [&] {
    Machine m(opts);
    for (int k = 0; k < 50; ++k) {
      m.charge_router(256, 256);
      m.charge_news(256, 2);
    }
    return m.stats();
  };
  EXPECT_EQ(run(), run());
}

TEST(MachineFaults, CertainFaultEscalatesToTransientFault) {
  MachineOptions opts;
  opts.faults = parse_fault_spec("router:p=1,retries=4");
  Machine m(opts);
  try {
    m.charge_router(64, 64);
    FAIL() << "p=1 must exhaust retries";
  } catch (const support::TransientFault& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("router"), std::string::npos) << msg;
    EXPECT_NE(msg.find("retries=4"), std::string::npos) << msg;
  }
  // The failed attempts were still charged.
  EXPECT_EQ(m.stats().faults, 5u);  // initial attempt + 4 retries
  EXPECT_GT(m.stats().cycles, 0u);
}

TEST(MachineFaults, UnprotectedOpsNeverFault) {
  MachineOptions opts;
  opts.faults = parse_fault_spec("router:p=1;news:p=1;reduce:p=1;memory:p=1");
  Machine m(opts);
  // global-OR, broadcast, and front-end work are outside the fault domains.
  m.charge_global_or();
  m.charge_broadcast(4096);
  m.charge_frontend(10);
  EXPECT_EQ(m.stats().faults, 0u);
}

// ---- field memory cap ----

TEST(MachineFaults, FieldMemoryCapThrows) {
  MachineOptions opts;
  opts.max_field_bytes = 1 << 16;  // 64 KiB
  Machine m(opts);
  GeomId g = m.create_geometry({1 << 14});  // 16384 VPs => 144 KiB per field
  try {
    m.allocate_field(g, "big", ElemType::kInt);
    FAIL() << "allocation should exceed the cap";
  } catch (const support::UcRuntimeError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("big"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--max-field-mb"), std::string::npos) << msg;
  }
}

TEST(MachineFaults, FreeingFieldsReleasesBudget) {
  MachineOptions opts;
  opts.max_field_bytes = 200 * 1024;
  Machine m(opts);
  GeomId g = m.create_geometry({1 << 14});
  FieldId f = m.allocate_field(g, "a", ElemType::kInt);
  EXPECT_GT(m.field_bytes(), 0u);
  m.free_field(f);
  EXPECT_EQ(m.field_bytes(), 0u);
  // Fits again after the free.
  m.allocate_field(g, "b", ElemType::kInt);
}

// ---- snapshot / restore ----

TEST(MachineFaults, SnapshotRestoreRoundTrip) {
  Machine m;
  GeomId g = m.create_geometry({8});
  FieldId f = m.allocate_field(g, "x", ElemType::kInt);
  Field& fld = m.field(f);
  for (std::int64_t vp = 0; vp < 8; ++vp) {
    fld.set(vp, static_cast<Bits>(vp * 10));
  }

  const MachineImage img = m.snapshot_state();
  EXPECT_GT(img.words(), 0);
  const std::uint64_t rng_probe = m.rng().next();

  for (std::int64_t vp = 0; vp < 8; ++vp) fld.set(vp, ~Bits{0});
  m.restore_state(img);
  for (std::int64_t vp = 0; vp < 8; ++vp) {
    EXPECT_EQ(m.field(f).get(vp), static_cast<Bits>(vp * 10));
  }
  // The machine RNG rewinds with the image, so the replayed draw matches.
  EXPECT_EQ(m.rng().next(), rng_probe);
}

}  // namespace
}  // namespace uc::cm
