#include "cm/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace uc::cm {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> v(100, 0);
  pool.parallel_for(0, 100, [&](std::int64_t b, std::int64_t e) {
    for (auto i = b; i < e; ++i) v[static_cast<std::size_t>(i)] = 1;
  });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 100);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { called = true; });
  pool.parallel_for(7, 3, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

class ThreadPoolP : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadPoolP, CoversRangeExactlyOnce) {
  ThreadPool pool(GetParam());
  constexpr std::int64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(
      0, kN,
      [&](std::int64_t b, std::int64_t e) {
        for (auto i = b; i < e; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                      std::memory_order_relaxed);
        }
      },
      /*min_grain=*/64);
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST_P(ThreadPoolP, SumIsCorrect) {
  ThreadPool pool(GetParam());
  constexpr std::int64_t kN = 50000;
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(
      1, kN + 1,
      [&](std::int64_t b, std::int64_t e) {
        std::int64_t local = 0;
        for (auto i = b; i < e; ++i) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      },
      /*min_grain=*/128);
  EXPECT_EQ(sum.load(), kN * (kN + 1) / 2);
}

TEST_P(ThreadPoolP, ReusableAcrossManyCalls) {
  ThreadPool pool(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> count{0};
    pool.parallel_for(
        0, 2000,
        [&](std::int64_t b, std::int64_t e) {
          count.fetch_add(e - b, std::memory_order_relaxed);
        },
        /*min_grain=*/16);
    ASSERT_EQ(count.load(), 2000);
  }
}

TEST_P(ThreadPoolP, PropagatesException) {
  ThreadPool pool(GetParam());
  EXPECT_THROW(
      pool.parallel_for(
          0, 10000,
          [&](std::int64_t b, std::int64_t) {
            if (b == 0) throw std::runtime_error("boom");
          },
          /*min_grain=*/8),
      std::runtime_error);
  // Pool still usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(
      0, 100, [&](std::int64_t b, std::int64_t e) { ok += int(e - b); },
      /*min_grain=*/8);
  EXPECT_EQ(ok.load(), 100);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolP,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ThreadPool, SmallJobsRunInlineOnCallingThread) {
  ThreadPool pool(4);
  const std::uint64_t jobs0 = pool.jobs_executed();
  std::atomic<int> count{0};
  pool.parallel_for(
      0, ThreadPool::kInlineCutoff,
      [&](std::int64_t b, std::int64_t e) { count += int(e - b); },
      /*min_grain=*/1);
  EXPECT_EQ(count.load(), ThreadPool::kInlineCutoff);
  EXPECT_EQ(pool.jobs_executed(), jobs0 + 1);
  EXPECT_EQ(pool.inline_jobs(), 1u);
  // The whole range ran as a single chunk on the calling thread.
  EXPECT_EQ(pool.chunks_per_worker()[0], 1u);
  for (std::size_t w = 1; w < pool.chunks_per_worker().size(); ++w) {
    EXPECT_EQ(pool.chunks_per_worker()[w], 0u);
  }

  // One past the cutoff dispatches to the workers again.
  pool.parallel_for(
      0, ThreadPool::kInlineCutoff + 1,
      [&](std::int64_t b, std::int64_t e) { count += int(e - b); },
      /*min_grain=*/1);
  EXPECT_EQ(pool.inline_jobs(), 1u);
}

TEST(ThreadPool, ThreadCountReported) {
  EXPECT_EQ(ThreadPool(1).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(4).thread_count(), 4u);
}

}  // namespace
}  // namespace uc::cm
