#include "cm/machine.hpp"

#include <gtest/gtest.h>

namespace uc::cm {
namespace {

MachineOptions small_machine() {
  MachineOptions opt;
  opt.cost.physical_processors = 16;  // tiny machine: VP ratios kick in fast
  return opt;
}

TEST(Machine, GeometryAndFieldLifecycle) {
  Machine m;
  auto g = m.create_geometry({8});
  EXPECT_EQ(m.geometry(g).size(), 8);
  auto f = m.allocate_field(g, "a", ElemType::kInt);
  EXPECT_EQ(m.field(f).size(), 8);
  EXPECT_EQ(m.field(f).name(), "a");
  m.free_field(f);
  EXPECT_THROW(m.field(f), support::ApiError);
  // Slot is reused.
  auto f2 = m.allocate_field(g, "b", ElemType::kFloat);
  EXPECT_EQ(f2.index, f.index);
}

TEST(Machine, BadIdsThrow) {
  Machine m;
  EXPECT_THROW(m.geometry(GeomId{0}), support::ApiError);
  EXPECT_THROW(m.field(FieldId{3}), support::ApiError);
  EXPECT_THROW(m.field(FieldId{-1}), support::ApiError);
}

TEST(Machine, FieldDefinedFlags) {
  Machine m;
  auto g = m.create_geometry({4});
  auto& f = m.field(m.allocate_field(g, "a", ElemType::kInt));
  EXPECT_FALSE(f.is_defined(0));
  f.set(0, 7);
  EXPECT_TRUE(f.is_defined(0));
  EXPECT_FALSE(f.is_defined(1));
  f.clear_defined();
  EXPECT_FALSE(f.is_defined(0));
  EXPECT_EQ(f.get(0), 7u);  // value survives clearing definedness
  f.fill(3);
  EXPECT_TRUE(f.is_defined(2));
  EXPECT_EQ(f.get(2), 3u);
}

TEST(Machine, FieldRangeChecked) {
  Machine m;
  auto g = m.create_geometry({4});
  auto& f = m.field(m.allocate_field(g, "a", ElemType::kInt));
  EXPECT_THROW(f.get(4), support::ApiError);
  EXPECT_THROW(f.set(-1, 0), support::ApiError);
}

TEST(CostCharging, VectorOpScalesWithVpRatio) {
  Machine m(small_machine());
  m.charge_vector_op(16);  // vp ratio 1
  auto c1 = m.stats().cycles;
  m.reset_stats();
  m.charge_vector_op(64);  // vp ratio 4
  auto c4 = m.stats().cycles;
  const auto& cm = m.cost_model();
  EXPECT_EQ(c1, cm.issue_overhead + cm.alu_op * 1);
  EXPECT_EQ(c4, cm.issue_overhead + cm.alu_op * 4);
}

TEST(CostCharging, VpRatioRounding) {
  CostModel cm;
  cm.physical_processors = 16;
  EXPECT_EQ(cm.vp_ratio(0), 1u);
  EXPECT_EQ(cm.vp_ratio(1), 1u);
  EXPECT_EQ(cm.vp_ratio(16), 1u);
  EXPECT_EQ(cm.vp_ratio(17), 2u);
  EXPECT_EQ(cm.vp_ratio(32), 2u);
}

TEST(CostCharging, RouterWaves) {
  Machine m(small_machine());
  m.charge_router(16, 16);  // one wave
  auto one_wave = m.stats().cycles;
  m.reset_stats();
  m.charge_router(16, 17);  // two waves
  auto two_waves = m.stats().cycles;
  EXPECT_EQ(two_waves, 2 * one_wave);
  EXPECT_EQ(m.stats().router_messages, 17u);
}

TEST(CostCharging, ReduceIsLogDepth) {
  Machine m(small_machine());
  m.charge_reduce(16, 16);  // depth 4
  auto c16 = m.stats().cycles;
  m.reset_stats();
  m.charge_reduce(16, 2);  // depth 1
  auto c2 = m.stats().cycles;
  const auto& cm = m.cost_model();
  EXPECT_EQ(c16, cm.issue_overhead + cm.scan_step * 4);
  EXPECT_EQ(c2, cm.issue_overhead + cm.scan_step * 1);
}

TEST(CostCharging, ReduceEmptyAndSingleton) {
  Machine m(small_machine());
  m.charge_reduce(16, 0);
  m.charge_reduce(16, 1);
  EXPECT_EQ(m.stats().reductions, 2u);  // still costs one instruction each
}

TEST(CostCharging, FrontendOps) {
  Machine m;
  m.charge_frontend(10);
  EXPECT_EQ(m.stats().frontend_ops, 10u);
  EXPECT_EQ(m.stats().cycles, 10 * m.cost_model().frontend_op);
}

TEST(CostCharging, NewsHopsMultiply) {
  Machine m(small_machine());
  m.charge_news(16, 1);
  auto h1 = m.stats().cycles;
  m.reset_stats();
  m.charge_news(16, 3);
  EXPECT_EQ(m.stats().cycles, 3 * h1);
}

TEST(CostCharging, StatsAccumulateAndReset) {
  Machine m;
  m.charge_global_or();
  m.charge_broadcast(4);
  EXPECT_EQ(m.stats().global_ors, 1u);
  EXPECT_EQ(m.stats().broadcasts, 1u);
  EXPECT_GT(m.stats().cycles, 0u);
  m.reset_stats();
  EXPECT_EQ(m.stats().cycles, 0u);
}

TEST(CostStats, PlusEqualsAndToString) {
  CostStats a, b;
  a.cycles = 10;
  a.vector_ops = 1;
  b.cycles = 5;
  b.router_messages = 3;
  a += b;
  EXPECT_EQ(a.cycles, 15u);
  EXPECT_EQ(a.router_messages, 3u);
  auto s = a.to_string(CostModel{});
  EXPECT_NE(s.find("cycles=15"), std::string::npos);
}

TEST(Machine, RngDeterministicForSeed) {
  MachineOptions o;
  o.seed = 99;
  Machine a(o), b(o);
  EXPECT_EQ(a.rng().next(), b.rng().next());
}

TEST(CostModel, CyclesToSeconds) {
  CostModel cm;
  cm.clock_hz = 1e6;
  EXPECT_DOUBLE_EQ(cm.cycles_to_seconds(2000000), 2.0);
}

}  // namespace
}  // namespace uc::cm
