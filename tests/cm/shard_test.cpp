// Shard decomposition (docs/SHARDING.md): block layout arithmetic, the
// NEWS exchange-schedule builder, the machine-level shard knobs, and the
// ThreadPool's sharded/nested dispatch paths the decompositions rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "cm/machine.hpp"
#include "cm/ops.hpp"
#include "cm/plan_cache.hpp"
#include "cm/shard.hpp"
#include "cm/thread_pool.hpp"
#include "support/error.hpp"

namespace uc::cm {
namespace {

// ---- ShardLayout ----

TEST(ShardLayout, BlocksAreCeilDivision) {
  const ShardLayout l(10, 4);  // block = ceil(10/4) = 3
  EXPECT_EQ(l.block(), 3);
  EXPECT_EQ(l.begin(0), 0);
  EXPECT_EQ(l.end(0), 3);
  EXPECT_EQ(l.begin(3), 9);
  EXPECT_EQ(l.end(3), 10);  // clamped: last block holds only one VP
}

TEST(ShardLayout, BlocksPartitionTheRange) {
  for (const std::int64_t size : {0, 1, 5, 7, 16, 100, 101}) {
    for (const unsigned shards : {1u, 2u, 3u, 4u, 7u, 128u}) {
      const ShardLayout l(size, shards);
      std::int64_t covered = 0;
      for (unsigned s = 0; s < shards; ++s) {
        ASSERT_LE(l.begin(s), l.end(s));
        if (s > 0) {
          ASSERT_EQ(l.begin(s), l.end(s - 1));  // gap-free
        }
        covered += l.end(s) - l.begin(s);
        for (auto vp = l.begin(s); vp < l.end(s); ++vp) {
          ASSERT_EQ(l.owner(vp), s) << "size=" << size << " shards=" << shards;
        }
      }
      ASSERT_EQ(covered, size) << "size=" << size << " shards=" << shards;
    }
  }
}

TEST(ShardLayout, TrailingShardsMayBeEmpty) {
  const ShardLayout l(3, 8);  // block = 1; shards 3..7 own nothing
  for (unsigned s = 3; s < 8; ++s) {
    EXPECT_EQ(l.begin(s), l.end(s)) << "shard " << s;
  }
}

TEST(ShardLayout, SameShardMatchesOwner) {
  const ShardLayout l(100, 7);
  EXPECT_TRUE(l.same_shard(0, l.block() - 1));
  EXPECT_FALSE(l.same_shard(l.block() - 1, l.block()));
  for (VpIndex a : {0, 14, 15, 42, 99}) {
    for (VpIndex b : {0, 14, 15, 42, 99}) {
      EXPECT_EQ(l.same_shard(a, b), l.owner(a) == l.owner(b));
    }
  }
}

TEST(ShardLayout, RejectsNegativeSize) {
  EXPECT_THROW(ShardLayout(-1, 2), support::ApiError);
}

// ---- build_shift_exchange ----

TEST(ShiftExchange, OneDimShiftCrossesEachBoundaryOnce) {
  const Geometry geom({16});
  const ShardLayout layout(16, 4);  // blocks of 4
  // dst[vp] = src[vp + 1]: lanes 3, 7, 11 read across a boundary (lane 15
  // has no in-grid source).
  const ExchangeSchedule sched = build_shift_exchange(geom, layout, 0, 1);
  EXPECT_EQ(sched.remote_lanes(), 3u);
  ASSERT_EQ(sched.per_shard.size(), 4u);
  for (unsigned s = 0; s < 3; ++s) {
    ASSERT_EQ(sched.per_shard[s].size(), 1u) << "shard " << s;
    const auto lane = sched.per_shard[s][0];
    EXPECT_EQ(lane.dst, static_cast<VpIndex>(4 * s + 3));
    EXPECT_EQ(lane.src, lane.dst + 1);
    EXPECT_EQ(layout.owner(lane.dst), s);
    EXPECT_FALSE(layout.same_shard(lane.dst, lane.src));
  }
  EXPECT_TRUE(sched.per_shard[3].empty());
}

TEST(ShiftExchange, LanesAreAscendingPerShard) {
  // 2-D shift along the column axis: every row's lane crosses, so each
  // shard gets several lanes and their recorded order must be ascending —
  // the execution commit loop relies on it for deterministic replay.
  const Geometry geom({8, 8});
  const ShardLayout layout(64, 4);
  const ExchangeSchedule sched = build_shift_exchange(geom, layout, 0, -1);
  EXPECT_GT(sched.remote_lanes(), 0u);
  for (unsigned s = 0; s < 4; ++s) {
    const auto& lanes = sched.per_shard[s];
    for (std::size_t i = 0; i + 1 < lanes.size(); ++i) {
      ASSERT_LT(lanes[i].dst, lanes[i + 1].dst);
    }
    for (const auto& lane : lanes) {
      ASSERT_EQ(layout.owner(lane.dst), s);
      ASSERT_FALSE(layout.same_shard(lane.dst, lane.src));
      const auto back = geom.neighbor(lane.dst, 0, -1);
      ASSERT_TRUE(back.has_value());
      ASSERT_EQ(*back, lane.src);
    }
  }
}

TEST(ShiftExchange, SingleShardNeedsNoExchange) {
  const Geometry geom({32});
  const ExchangeSchedule sched =
      build_shift_exchange(geom, ShardLayout(32, 1), 0, 1);
  EXPECT_EQ(sched.remote_lanes(), 0u);
}

// ---- machine-level knobs ----

TEST(MachineShards, ShardCountClampsAndDefaults) {
  EXPECT_EQ(Machine().shard_count(), 1u);
  MachineOptions opts;
  opts.shards = 4;
  EXPECT_EQ(Machine(opts).shard_count(), 4u);
  // 0 = one shard per host thread.
  opts.host_threads = 3;
  opts.shards = 0;
  EXPECT_EQ(Machine(opts).shard_count(), 3u);
}

TEST(MachineShards, LayoutEpochAdvancesExchangeKeys) {
  MachineOptions opts;
  opts.shards = 2;
  Machine m(opts);
  const auto e0 = m.layout_epoch();
  m.note_layout_change();
  EXPECT_EQ(m.layout_epoch(), e0 + 1);
}

TEST(MachineShards, ExchangeCacheHitsAndEviction) {
  MachineOptions opts;
  opts.shards = 2;
  Machine m(opts);
  PlanCache& cache = m.exchange_cache();
  EXPECT_EQ(cache.find_exchange(42), nullptr);

  ExchangeSchedule sched;
  sched.per_shard.resize(2);
  sched.per_shard[1].push_back({8, 7});
  const ExchangeSchedule& stored = cache.insert_exchange(42, std::move(sched));
  EXPECT_EQ(stored.remote_lanes(), 1u);
  ASSERT_NE(cache.find_exchange(42), nullptr);
  EXPECT_EQ(cache.find_exchange(42), &stored);  // stable across rehash
  EXPECT_EQ(cache.exchange_hits(), 2u);
  EXPECT_EQ(cache.exchange_size(), 1u);

  cache.clear();
  EXPECT_EQ(cache.find_exchange(42), nullptr);
  EXPECT_EQ(cache.exchange_size(), 0u);
}

TEST(MachineShards, ShardStatsResetAndSize) {
  MachineOptions opts;
  opts.shards = 3;
  Machine m(opts);
  ASSERT_EQ(m.shard_stats().size(), 3u);
  m.shard_stats()[1].ops = 5;
  m.reset_shard_stats();
  EXPECT_EQ(m.shard_stats()[1].ops, 0u);
}

// ---- ThreadPool sharded dispatch ----

TEST(PoolShards, ForShardsRunsEachShardExactlyOnce) {
  ThreadPool pool(4);
  constexpr unsigned kShards = 7;
  std::vector<std::atomic<int>> hits(kShards);
  pool.for_shards(kShards, [&](unsigned worker, unsigned shard) {
    ASSERT_LT(worker, pool.thread_count());
    hits[shard].fetch_add(1, std::memory_order_relaxed);
  });
  for (unsigned s = 0; s < kShards; ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
  }
}

TEST(PoolShards, ForShardsPostsOneChunkPerShard) {
  // Each shard must be its own pool chunk — for_shards deliberately
  // bypasses the inline cutoff so a shard's whole block can land on its
  // own worker.  (Which worker picks up which chunk is OS scheduling and
  // not asserted; on a single-core host the caller may drain them all.)
  ThreadPool pool(4);
  const std::uint64_t jobs0 = pool.jobs_executed();
  const std::uint64_t inline0 = pool.inline_jobs();
  const std::uint64_t chunks0 = pool.total_chunks();
  pool.for_shards(4, [](unsigned, unsigned) {});
  EXPECT_EQ(pool.jobs_executed(), jobs0 + 1);
  EXPECT_EQ(pool.inline_jobs(), inline0);  // posted, not inline
  EXPECT_EQ(pool.total_chunks(), chunks0 + 4);
}

TEST(PoolShards, NestedParallelForRunsInline) {
  // Ops sharded via for_shards may internally call helpers that use
  // parallel_for; the pool holds a single job slot, so the nested region
  // must run inline on the calling worker instead of re-entering the pool.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4 * 1000);
  pool.for_shards(4, [&](unsigned, unsigned shard) {
    pool.parallel_for(
        shard * 1000, (shard + 1) * 1000,
        [&](std::int64_t b, std::int64_t e) {
          for (auto i = b; i < e; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(
                1, std::memory_order_relaxed);
          }
        },
        /*min_grain=*/8);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(PoolShards, ForShardsPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_shards(4,
                               [&](unsigned, unsigned shard) {
                                 if (shard == 2) throw std::runtime_error("x");
                               }),
               std::runtime_error);
  // Pool is still usable afterwards.
  std::atomic<int> ok{0};
  pool.for_shards(3, [&](unsigned, unsigned) { ok++; });
  EXPECT_EQ(ok.load(), 3);
}

TEST(PoolShards, ErrorFromLowestRangeWins) {
  // When several chunks throw, the rethrown error must be the one the
  // serial left-to-right execution would have hit first — not whichever
  // worker finished first (scheduling-dependent).
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallel_for_indexed(
          0, 4000,
          [&](unsigned, std::int64_t b, std::int64_t) {
            throw std::runtime_error("chunk@" + std::to_string(b));
          },
          /*min_grain=*/100);
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk@0");
    }
  }
}

// ---- sharded cm::ops differential ----
//
// The vector primitives in src/cm/ops.cpp take the sharded decomposition
// whenever the machine has more than one shard.  Run one mixed scenario —
// masked/aliased NEWS shifts, router gathers, every shard-exact reduction
// and scan, broadcasts — on machines differing only in shard count, and
// require every field word, every front-end scalar, and every cost counter
// to match the unsharded machine bitwise.

struct OpsScenarioResult {
  std::vector<Bits> words;    // all field contents, concatenated
  std::vector<Bits> scalars;  // reduce results + global_or
  CostStats stats;
};

OpsScenarioResult run_ops_scenario(unsigned shards) {
  MachineOptions opts;
  opts.host_threads = 4;
  opts.shards = shards;
  Machine m(opts);
  const GeomId g = m.create_geometry({18, 17});  // 306 VPs, odd blocks
  const Geometry& geom = m.geometry(g);
  const std::int64_t n = geom.size();
  ContextStack ctx(&geom);
  Field& a = m.field(m.allocate_field(g, "a", ElemType::kInt));
  Field& b = m.field(m.allocate_field(g, "b", ElemType::kInt));
  Field& x = m.field(m.allocate_field(g, "x", ElemType::kFloat));
  Field& y = m.field(m.allocate_field(g, "y", ElemType::kFloat));

  elementwise(m, ctx, b, [](VpIndex vp) { return from_int(vp * 7 - 3); });
  elementwise(m, ctx, x,
              [](VpIndex vp) { return from_float(vp * 0.5 - 3.25); });
  a.fill(from_int(-1));
  y.fill(from_float(0.0));

  OpsScenarioResult r;
  // NEWS shifts along both axes, masked, aliased in place, |delta| > 1;
  // two rounds so the second replays the cached exchange schedules.
  for (int round = 0; round < 2; ++round) {
    news_shift(m, ctx, a, b, 0, 1);
    ctx.where([](VpIndex vp) { return vp % 3 != 0; });
    news_shift(m, ctx, a, b, 1, -1);
    ctx.end();
    news_shift(m, ctx, a, a, 1, 2);   // dst aliases src
    news_shift(m, ctx, y, x, 0, -3);  // float payloads, multi-hop
  }
  // Router gathers: full reversal (every lane crosses a boundary at
  // shards>1) and a masked sparse pattern with skipped lanes.
  router_get(m, ctx, a, b,
             [n](VpIndex vp) -> std::optional<VpIndex> { return n - 1 - vp; });
  ctx.where([](VpIndex vp) { return vp % 5 == 1; });
  router_get(m, ctx, y, x, [n](VpIndex vp) -> std::optional<VpIndex> {
    if (vp % 2 == 0) return std::nullopt;
    return (vp * 13) % n;
  });
  ctx.end();
  // Every shard-exact reduction, the non-exact float add (which must take
  // the serial path and still match), a masked subset, and an empty set.
  for (const ReduceOp op : {ReduceOp::kAdd, ReduceOp::kMul, ReduceOp::kMin,
                            ReduceOp::kMax, ReduceOp::kAnd, ReduceOp::kOr,
                            ReduceOp::kXor}) {
    r.scalars.push_back(reduce(m, ctx, b, op));
  }
  for (const ReduceOp op : {ReduceOp::kAdd, ReduceOp::kMin, ReduceOp::kMax}) {
    r.scalars.push_back(reduce(m, ctx, x, op));
  }
  ctx.where([](VpIndex vp) { return vp % 4 == 2; });
  r.scalars.push_back(reduce(m, ctx, b, ReduceOp::kAdd));
  ctx.end();
  ctx.where([](VpIndex) { return false; });
  r.scalars.push_back(reduce(m, ctx, b, ReduceOp::kMin));  // identity
  ctx.end();
  // Scans: full and masked, int and float, including the 3-phase sharded
  // decomposition's apply step on trailing shards.
  scan(m, ctx, a, b, ReduceOp::kAdd);
  scan(m, ctx, y, x, ReduceOp::kMax);
  ctx.where([](VpIndex vp) { return vp % 2 == 1; });
  scan(m, ctx, a, b, ReduceOp::kMin);
  ctx.end();
  // Broadcast + global-OR under a mask.
  ctx.where([](VpIndex vp) { return vp % 7 == 3; });
  broadcast(m, ctx, a, from_int(4242));
  r.scalars.push_back(from_int(global_or(m, ctx) ? 1 : 0));
  ctx.end();

  for (const Field* f : {&a, &b, &x, &y}) {
    for (VpIndex vp = 0; vp < n; ++vp) r.words.push_back(f->get(vp));
  }
  r.stats = m.stats();
  return r;
}

TEST(ShardedOps, BitIdenticalAcrossShardCounts) {
  const OpsScenarioResult base = run_ops_scenario(1);
  for (const unsigned shards : {2u, 4u, 7u}) {
    const OpsScenarioResult got = run_ops_scenario(shards);
    ASSERT_EQ(base.words.size(), got.words.size());
    for (std::size_t i = 0; i < base.words.size(); ++i) {
      ASSERT_EQ(base.words[i], got.words[i])
          << "field word " << i << " at shards=" << shards;
    }
    ASSERT_EQ(base.scalars.size(), got.scalars.size());
    for (std::size_t i = 0; i < base.scalars.size(); ++i) {
      ASSERT_EQ(base.scalars[i], got.scalars[i])
          << "scalar " << i << " at shards=" << shards;
    }
    EXPECT_TRUE(base.stats == got.stats) << "stats at shards=" << shards;
  }
}

TEST(ShardedOps, RepeatedShiftHitsExchangeCache) {
  MachineOptions opts;
  opts.host_threads = 2;
  opts.shards = 4;
  Machine m(opts);
  const GeomId g = m.create_geometry({64});
  ContextStack ctx(&m.geometry(g));
  Field& a = m.field(m.allocate_field(g, "a", ElemType::kInt));
  Field& b = m.field(m.allocate_field(g, "b", ElemType::kInt));
  b.fill(from_int(9));
  news_shift(m, ctx, a, b, 0, 1);  // builds + caches the schedule
  EXPECT_EQ(m.exchange_cache().exchange_size(), 1u);
  const auto hits0 = m.exchange_cache().exchange_hits();
  news_shift(m, ctx, a, b, 0, 1);  // replays it
  EXPECT_EQ(m.exchange_cache().exchange_size(), 1u);
  EXPECT_GT(m.exchange_cache().exchange_hits(), hits0);
  // A layout change retires the old key; the next shift rebuilds.
  m.note_layout_change();
  news_shift(m, ctx, a, b, 0, 1);
  EXPECT_EQ(m.exchange_cache().exchange_size(), 2u);
}

TEST(ShardedOps, ShardStatsSeeExchangeTraffic) {
  MachineOptions opts;
  opts.host_threads = 2;
  opts.shards = 4;
  Machine m(opts);
  const GeomId g = m.create_geometry({64});
  ContextStack ctx(&m.geometry(g));
  Field& a = m.field(m.allocate_field(g, "a", ElemType::kInt));
  Field& b = m.field(m.allocate_field(g, "b", ElemType::kInt));
  b.fill(from_int(1));
  news_shift(m, ctx, a, b, 0, 1);
  std::uint64_t intra = 0, exchange = 0;
  for (const auto& s : m.shard_stats()) {
    intra += s.intra_lanes;
    exchange += s.exchange_lanes;
  }
  EXPECT_GT(intra, 0u);
  EXPECT_GT(exchange, 0u);  // shard-boundary lanes went through gather
}

TEST(PoolShards, ZeroThreadCountFallsBackToHardware) {
  // thread_count==0 means "ask the OS"; even when hardware_concurrency()
  // itself returns 0 the pool must come up with at least one thread.
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<int> n{0};
  pool.for_shards(2, [&](unsigned, unsigned) { n++; });
  EXPECT_EQ(n.load(), 2);
}

}  // namespace
}  // namespace uc::cm
