// Tests for the mapping optimiser (docs/MAPPING.md): the dependence pass
// and its legality proofs, candidate generation + beam search, the
// UC-A301/UC-A302 advice pass, and the uc::optimize_map emit + replay
// validation contract.  Illegal candidates must be rejected fail-closed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/depend.hpp"
#include "analysis/optmap.hpp"
#include "analysis/pass.hpp"
#include "uc/uc.hpp"
#include "uclang/frontend.hpp"

namespace {

using uc::analysis::DependSummary;
using uc::analysis::Legality;
using uc::analysis::MapChoiceKind;
using uc::analysis::OptimizeOptions;
using uc::analysis::OptimizePlan;
using uc::analysis::ProgramModel;

struct Modeled {
  std::unique_ptr<uc::lang::CompilationUnit> unit;
  ProgramModel model;
};

Modeled model_of(const std::string& source) {
  Modeled m;
  m.unit = uc::lang::compile("test.uc", source);
  EXPECT_TRUE(m.unit->ok()) << m.unit->diags.render_all();
  if (m.unit->ok()) m.model = uc::analysis::build_model(*m.unit);
  return m;
}

const uc::analysis::ArrayDep* dep_of(const DependSummary& dep,
                                     const Modeled& m, const char* name) {
  for (const auto& [sym, d] : dep.arrays) {
    if (sym->name == name) return &d;
  }
  return nullptr;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string program_path(const char* name) {
  return std::string(PROGRAMS_DIR) + "/" + name;
}

// --- dependence pass and legality proofs ---------------------------------

TEST(Depend, ReversalPermuteIsBijectiveAndLegal) {
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) a[i] = i;
    }
  )");
  auto dep = uc::analysis::summarize_dependences(m.model);
  const auto* d = dep_of(dep, m, "a");
  ASSERT_NE(d, nullptr);
  Legality r = uc::analysis::prove_permute(*d, 8, -1, 7);
  EXPECT_TRUE(r.legal);
  EXPECT_NE(r.proof.find("bijection"), std::string::npos);
}

TEST(Depend, ShiftPermuteWithFullRangeWriteIsRejectedFailClosed) {
  // The canonical illegal candidate: pos(v) = v - 1 leaves two elements
  // sharing processor 6 (out of range targets keep their owner), and the
  // full-range parallel write then co-writes that pair.
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) a[i] = i;
    }
  )");
  auto dep = uc::analysis::summarize_dependences(m.model);
  const auto* d = dep_of(dep, m, "a");
  ASSERT_NE(d, nullptr);
  Legality r = uc::analysis::prove_permute(*d, 8, 1, -1);
  EXPECT_FALSE(r.legal);
  EXPECT_NE(r.blocker.find("write-write interference"), std::string::npos)
      << r.blocker;
}

TEST(Depend, ShiftPermuteWithoutCoWritesIsLegal) {
  // Only single (uniform) writes: no parallel step can write two
  // co-located elements, so the colliding shift placement is safe.
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N], b[N];
    void main() {
      a[0] = 1;
      par (I) b[i] = a[i] + 1;
    }
  )");
  auto dep = uc::analysis::summarize_dependences(m.model);
  const auto* d = dep_of(dep, m, "a");
  ASSERT_NE(d, nullptr);
  Legality r = uc::analysis::prove_permute(*d, 8, 1, -1);
  EXPECT_TRUE(r.legal) << r.blocker;
  EXPECT_NE(r.proof.find("collides"), std::string::npos);
}

TEST(Depend, FoldLegalWhenAccessesStayInOneHalf) {
  auto m = model_of(R"(
    const int N = 8;
    index_set H:h = {0..N/2-1};
    int a[N], out[N/2];
    void main() {
      par (H) out[h] = a[h] + a[N-1-h];
    }
  )");
  auto dep = uc::analysis::summarize_dependences(m.model);
  const auto* d = dep_of(dep, m, "a");
  ASSERT_NE(d, nullptr);
  Legality r = uc::analysis::prove_fold(*d, 8);
  EXPECT_TRUE(r.legal) << r.blocker;
}

TEST(Depend, FoldRejectedWhenParallelStepWritesBothHalves) {
  auto m = model_of(R"(
    const int N = 8;
    index_set H:h = {0..N/2-1};
    int a[N];
    void main() {
      par (H) { a[h] = h; a[N-1-h] = h + 1; }
    }
  )");
  auto dep = uc::analysis::summarize_dependences(m.model);
  const auto* d = dep_of(dep, m, "a");
  ASSERT_NE(d, nullptr);
  Legality r = uc::analysis::prove_fold(*d, 8);
  EXPECT_FALSE(r.legal);
  EXPECT_NE(r.blocker.find("interference across the fold"),
            std::string::npos)
      << r.blocker;
}

TEST(Depend, FoldRejectedWhenAccessCrossesTheFold) {
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) a[i] = i;
    }
  )");
  auto dep = uc::analysis::summarize_dependences(m.model);
  const auto* d = dep_of(dep, m, "a");
  ASSERT_NE(d, nullptr);
  Legality r = uc::analysis::prove_fold(*d, 8);
  EXPECT_FALSE(r.legal);
  EXPECT_NE(r.blocker.find("crossing the fold"), std::string::npos)
      << r.blocker;
}

TEST(Depend, CopyRejectedOnDataDependentWrite) {
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N], p[N];
    void main() {
      par (I) a[p[i]] = i;
    }
  )");
  auto dep = uc::analysis::summarize_dependences(m.model);
  const auto* d = dep_of(dep, m, "a");
  ASSERT_NE(d, nullptr);
  Legality r = uc::analysis::prove_copy(*d);
  EXPECT_FALSE(r.legal);
  EXPECT_NE(r.blocker.find("data-dependent"), std::string::npos)
      << r.blocker;
}

TEST(Depend, CopyLegalWithAffineWrites) {
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) a[i] = i;
    }
  )");
  auto dep = uc::analysis::summarize_dependences(m.model);
  const auto* d = dep_of(dep, m, "a");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(uc::analysis::prove_copy(*d).legal);
}

// --- execution-count weighting -------------------------------------------

TEST(Model, SeqLoopMultipliesSiteRepeat) {
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1}, T:t = {0..15};
    int a[N];
    void main() {
      par (I) a[i] = i;
      seq (T) {
        par (I) a[i] = a[i] + 1;
      }
    }
  )");
  bool saw_once = false, saw_repeated = false;
  for (const auto& site : m.model.sites) {
    if (site.repeat == 1) saw_once = true;
    if (site.repeat == 16) saw_repeated = true;
  }
  EXPECT_TRUE(saw_once);
  EXPECT_TRUE(saw_repeated);
}

// --- candidate generation + beam search ----------------------------------

TEST(Plan, Fig6StyleProgramPrefersReplication) {
  // Floyd-Warshall shape: uniform (spread) reads of d inside seq (K);
  // replication turns them local and amortises over the K sweeps.
  auto m = model_of(slurp(program_path("fig6_shortest_path_on2.uc")));
  OptimizePlan plan =
      uc::analysis::plan_mappings(*m.unit, m.model, OptimizeOptions{});
  ASSERT_FALSE(plan.ranked.empty());
  const auto& best = plan.ranked.front();
  ASSERT_EQ(best.choices.size(), 1u);
  EXPECT_EQ(best.choices[0].kind, MapChoiceKind::kCopy);
  EXPECT_LT(best.predicted_cycles, plan.baseline_cycles);
}

TEST(Plan, IllegalCandidatesAreCountedAndNeverRanked) {
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1}, H:h = {0..N/2-1}, T:t = {0..31};
    int a[N], out[N/2];
    void main() {
      par (H) { a[h] = h; a[N-1-h] = h + 1; }
      seq (T) {
        par (H) out[h] = out[h] + a[N-1-h];
      }
      print("out[0] = %d\n", out[0]);
    }
  )");
  OptimizePlan plan =
      uc::analysis::plan_mappings(*m.unit, m.model, OptimizeOptions{});
  EXPECT_GT(plan.candidates_blocked, 0u);
  for (const auto& a : plan.ranked) {
    for (const auto& c : a.choices) {
      EXPECT_NE(c.kind, MapChoiceKind::kFold)
          << "blocked fold escaped into a ranked assignment";
    }
  }
}

TEST(Plan, SmallProgramKeepsCurrentMappings) {
  // One-shot program: every candidate's relocation sweep costs more than
  // it saves, so the beam must keep the current (default) mapping.
  auto m = model_of(R"(
    const int N = 4;
    index_set I:i = {0..N-1};
    int a[N], b[N];
    void main() {
      par (I) a[i] = i;
      par (I) b[i] = a[i] + 1;
    }
  )");
  OptimizePlan plan =
      uc::analysis::plan_mappings(*m.unit, m.model, OptimizeOptions{});
  ASSERT_FALSE(plan.ranked.empty());
  EXPECT_TRUE(plan.ranked.front().choices.empty());
}

// --- advice pass (UC-A301 / UC-A302) -------------------------------------

bool has_finding(const uc::analysis::Report& r, const char* code) {
  for (const auto& f : r.findings) {
    if (std::string(f.code) == code) return true;
  }
  return false;
}

TEST(Advice, Fig6GetsA301Note) {
  auto m = model_of(slurp(program_path("fig6_shortest_path_on2.uc")));
  auto report = uc::analysis::run_default_analysis(*m.unit);
  EXPECT_TRUE(has_finding(report, "UC-A301"));
  EXPECT_EQ(report.warning_count(), 0u);  // advice is a note, never louder
}

TEST(Advice, BlockedFoldGetsA302Note) {
  // The fold would make the router-class a[N-1-h] reads local — cheaper
  // than every legal candidate — but the parallel step that writes both
  // halves blocks it.
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1}, H:h = {0..N/2-1}, T:t = {0..31};
    int a[N], out[N/2];
    void main() {
      par (H) { a[h] = h; a[N-1-h] = h + 1; }
      seq (T) {
        par (H) out[h] = out[h] + a[N-1-h];
      }
      print("out[0] = %d\n", out[0]);
    }
  )");
  auto report = uc::analysis::run_default_analysis(*m.unit);
  EXPECT_TRUE(has_finding(report, "UC-A302"));
  bool saw_blocker = false;
  for (const auto& f : report.findings) {
    if (std::string(f.code) == "UC-A302" &&
        f.message.find("blocked by a dependence") != std::string::npos) {
      saw_blocker = true;
    }
  }
  EXPECT_TRUE(saw_blocker);
  EXPECT_EQ(report.warning_count(), 0u);
}

TEST(Advice, NoNotesOnProgramsWithNothingToGain) {
  auto m = model_of(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) a[i] = i;
    }
  )");
  auto report = uc::analysis::run_default_analysis(*m.unit);
  EXPECT_FALSE(has_finding(report, "UC-A301"));
  EXPECT_FALSE(has_finding(report, "UC-A302"));
}

// --- uc::optimize_map (emit + replay validation) -------------------------

TEST(OptimizeMap, Fig6ValidatesWithFewerCyclesAndIdenticalOutput) {
  auto result = uc::optimize_map("fig6.uc",
                                 slurp(program_path(
                                     "fig6_shortest_path_on2.uc")));
  ASSERT_TRUE(result.compiled);
  EXPECT_TRUE(result.improved);
  EXPECT_TRUE(result.validated);
  EXPECT_LT(result.optimized_cycles, result.baseline_cycles);
  EXPECT_LT(result.predicted_optimized, result.predicted_baseline);
  EXPECT_NE(result.map_section.find("copy"), std::string::npos);
  ASSERT_FALSE(result.optimized_source.empty());

  // The rewritten program must itself compile and reproduce the output.
  auto again = uc::Program::compile("opt.uc", result.optimized_source);
  auto run = again.run();
  auto base = uc::Program::compile("base.uc",
                                   slurp(program_path(
                                       "fig6_shortest_path_on2.uc")))
                  .run();
  EXPECT_EQ(run.output(), base.output());
  EXPECT_LT(run.stats().cycles, base.stats().cycles);
}

TEST(OptimizeMap, NoImprovementLeavesProgramUntouched) {
  auto result = uc::optimize_map("tiny.uc", R"(
    const int N = 4;
    index_set I:i = {0..N-1};
    int a[N], b[N];
    void main() {
      par (I) a[i] = i;
      par (I) b[i] = a[i] + 1;
    }
  )");
  ASSERT_TRUE(result.compiled);
  EXPECT_FALSE(result.improved);
  EXPECT_TRUE(result.optimized_source.empty());
  EXPECT_TRUE(result.map_section.empty());
  EXPECT_NE(result.text.find("keep current mappings"), std::string::npos);
}

TEST(OptimizeMap, FrontEndErrorsReported) {
  auto result = uc::optimize_map("bad.uc", "void main() { goto x; }");
  EXPECT_FALSE(result.compiled);
  EXPECT_FALSE(result.text.empty());
}

TEST(OptimizeMap, JsonCarriesDecisionAndCycles) {
  auto result = uc::optimize_map("fig6.uc",
                                 slurp(program_path(
                                     "fig6_shortest_path_on2.uc")));
  ASSERT_TRUE(result.improved);
  const std::string json = result.json();
  EXPECT_NE(json.find("\"improved\": true"), std::string::npos);
  EXPECT_NE(json.find("\"validated\": true"), std::string::npos);
  EXPECT_NE(json.find("\"choices\""), std::string::npos);
  EXPECT_NE(json.find("copy (I) d"), std::string::npos);
}

TEST(OptimizeMap, ReplacesExistingMappingWhenBetter) {
  // mapping_demo ships a router-forcing permute; the optimiser must be
  // able to replace it (dropping the old map section for that array).
  auto result = uc::optimize_map("mapping_demo.uc",
                                 slurp(program_path("mapping_demo.uc")));
  ASSERT_TRUE(result.compiled);
  EXPECT_TRUE(result.improved);
  EXPECT_TRUE(result.validated);
  EXPECT_LT(result.optimized_cycles, result.baseline_cycles);
}

}  // namespace
