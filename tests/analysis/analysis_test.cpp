// Tests for the static-analysis passes: par-block interference detection
// and communication-pattern classification (docs/ANALYSIS.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/pass.hpp"
#include "uc/paper_programs.hpp"
#include "uclang/frontend.hpp"

namespace {

using uc::analysis::CommClass;
using uc::analysis::Report;

struct Analyzed {
  std::unique_ptr<uc::lang::CompilationUnit> unit;
  Report report;
};

Analyzed analyze(const std::string& source) {
  Analyzed a;
  a.unit = uc::lang::compile("test.uc", source);
  EXPECT_TRUE(a.unit->ok()) << a.unit->diags.render_all();
  if (a.unit->ok()) {
    a.report = uc::analysis::run_default_analysis(*a.unit);
  }
  return a;
}

bool has_finding(const Report& r, const char* code) {
  for (const auto& f : r.findings) {
    if (std::string(f.code) == code) return true;
  }
  return false;
}

std::size_t class_count(const Report& r, CommClass c) {
  std::size_t n = 0;
  for (const auto& fn : r.functions) n += fn.count(c);
  return n;
}

// --- interference: write-write conflicts ---------------------------------

TEST(Interference, OffsetWritesRace) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) {
        a[i] = 1;
        a[i+1] = 2;
      }
    }
  )");
  EXPECT_TRUE(has_finding(a.report, "UC-A101"));
  EXPECT_EQ(a.report.warning_count(), 1u);
}

TEST(Interference, ScalarWriteRaces) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int s;
    void main() {
      par (I) s = i;
    }
  )");
  EXPECT_TRUE(has_finding(a.report, "UC-A101"));
}

TEST(Interference, UniformSubscriptWriteRaces) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) a[0] = i;
    }
  )");
  EXPECT_TRUE(has_finding(a.report, "UC-A101"));
}

TEST(Interference, DisjointWritesDoNotRace) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) a[i] = i;
    }
  )");
  EXPECT_FALSE(has_finding(a.report, "UC-A101"));
  EXPECT_FALSE(has_finding(a.report, "UC-A102"));
}

TEST(Interference, CongruenceGuardSeparatesOffsetWrite) {
  // st (i % 2 == 0) selects even lanes; a[i] and a[i+1] then touch
  // disjoint elements (even vs odd), so no conflict.
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) st (i % 2 == 0) { a[i] = 1; a[i+1] = 2; }
    }
  )");
  EXPECT_FALSE(has_finding(a.report, "UC-A101"));
  EXPECT_FALSE(has_finding(a.report, "UC-A102"));
}

TEST(Interference, TransposedWritePairRaces) {
  // a[i][j] and a[j][i] collide for (i,j) vs (j,i) lanes.
  auto a = analyze(R"(
    const int N = 4;
    index_set I:i = {0..N-1};
    index_set J:j = {0..N-1};
    int a[N][N];
    void main() {
      par (I, J) {
        a[i][j] = 1;
        a[j][i] = 2;
      }
    }
  )");
  EXPECT_TRUE(has_finding(a.report, "UC-A101") ||
              has_finding(a.report, "UC-A102"));
}

TEST(Interference, DataDependentSubscriptIsPossibleNotDefinite) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N], p[N];
    void main() {
      par (I) a[p[i]] = i;
    }
  )");
  EXPECT_FALSE(has_finding(a.report, "UC-A101"));
  EXPECT_TRUE(has_finding(a.report, "UC-A102"));
}

TEST(Interference, OneofIsExemptFromRaceChecks) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      oneof (I) a[0] = i;
    }
  )");
  EXPECT_FALSE(has_finding(a.report, "UC-A101"));
  EXPECT_FALSE(has_finding(a.report, "UC-A102"));
}

// --- interference: old-value reads and st escapes ------------------------

TEST(Interference, OldValueReadGetsNote) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {1..N-1};
    int a[N];
    void main() {
      par (I) a[i] = a[i-1];
    }
  )");
  EXPECT_TRUE(has_finding(a.report, "UC-A103"));
  EXPECT_EQ(a.report.warning_count(), 0u);
}

TEST(Interference, StEscapeGetsNote) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) st (i % 2 == 0) a[i+1] = 3;
    }
  )");
  EXPECT_TRUE(has_finding(a.report, "UC-A104"));
}

TEST(Interference, UserCallLimitsAnalysis) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    int f(int x) { return x + 1; }
    void main() {
      par (I) a[i] = f(i);
    }
  )");
  EXPECT_TRUE(has_finding(a.report, "UC-A105"));
}

// --- communication classification ----------------------------------------

TEST(Comm, StencilIsNewsNotRouter) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {1..N-2};
    int a[N], b[N];
    void main() {
      par (I) b[i] = a[i-1] + a[i+1];
    }
  )");
  EXPECT_EQ(class_count(a.report, CommClass::kNews), 2u);
  EXPECT_EQ(class_count(a.report, CommClass::kRouter), 0u);
  EXPECT_EQ(a.report.warning_count(), 0u);
}

TEST(Comm, IndirectSubscriptIsRouter) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N], b[N], p[N];
    void main() {
      par (I) b[i] = a[p[i]];
    }
  )");
  EXPECT_GE(class_count(a.report, CommClass::kRouter), 1u);
}

TEST(Comm, ReduceBoundSubscriptIsScan) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    index_set J:j = {0..N-1};
    int a[N], s[N];
    void main() {
      par (I) s[i] = $+(J; a[j]);
    }
  )");
  EXPECT_GE(class_count(a.report, CommClass::kScan), 1u);
}

TEST(Comm, AlignedAccessIsLocal) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N], b[N];
    void main() {
      par (I) b[i] = a[i];
    }
  )");
  EXPECT_EQ(class_count(a.report, CommClass::kLocal), 2u);
  EXPECT_EQ(class_count(a.report, CommClass::kRouter), 0u);
}

// --- mapping diagnostics --------------------------------------------------

TEST(Mapping, RouterForcingPermuteWarns) {
  // The reversal permute makes the perfectly aligned access a[i] strided
  // in physical positions, forcing the router for no benefit.
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N], b[N];
    map (I) { permute (I) a[N-1-i] :- a[i]; }
    void main() {
      par (I) b[i] = a[i];
    }
  )");
  EXPECT_TRUE(has_finding(a.report, "UC-A201"));
}

TEST(Mapping, UsefulPermuteDoesNotWarn) {
  // Here the permute aligns the reversed access; dropping it would NOT
  // make every access cheap, so no UC-A201.
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N], b[N];
    map (I) { permute (I) a[N-1-i] :- a[i]; }
    void main() {
      par (I) b[i] = a[N-1-i];
    }
  )");
  EXPECT_FALSE(has_finding(a.report, "UC-A201"));
}

TEST(Mapping, UnusedMappingGetsNote) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N], b[N];
    map (I) { permute (I) a[N-1-i] :- a[i]; }
    void main() {
      par (I) b[i] = i;
    }
  )");
  EXPECT_TRUE(has_finding(a.report, "UC-A202"));
}

// --- report rendering -----------------------------------------------------

TEST(Report, RenderContainsCodesAndSummary) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {0..N-1};
    int a[N];
    void main() {
      par (I) {
        a[i] = 1;
        a[i+1] = 2;
      }
    }
  )");
  std::string text = a.report.render(a.unit->file.get());
  EXPECT_NE(text.find("[UC-A101]"), std::string::npos) << text;
  EXPECT_NE(text.find("communication summary:"), std::string::npos) << text;
  EXPECT_NE(text.find("-> news"), std::string::npos) << text;
}

TEST(Report, NoNotesOptionDropsNotes) {
  auto a = analyze(R"(
    const int N = 8;
    index_set I:i = {1..N-1};
    int a[N];
    void main() {
      par (I) a[i] = a[i-1];
    }
  )");
  uc::analysis::RenderOptions opts;
  opts.include_notes = false;
  opts.include_summary = false;
  std::string text = a.report.render(a.unit->file.get(), opts);
  EXPECT_EQ(text.find("UC-A103"), std::string::npos) << text;
}

// --- corpus regression ----------------------------------------------------

TEST(Corpus, EveryShippedProgramAnalyzesClean) {
  // The paper's example programs are all correct UC: the analysis must
  // produce no errors and no warnings on any of them (notes are fine).
  std::size_t seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(PROGRAMS_DIR)) {
    if (entry.path().extension() != ".uc") continue;
    ++seen;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    auto unit = uc::lang::compile(entry.path().string(), buf.str());
    ASSERT_TRUE(unit->ok())
        << entry.path() << ":\n" << unit->diags.render_all();
    auto report = uc::analysis::run_default_analysis(*unit);
    EXPECT_EQ(report.error_count(), 0u) << entry.path();
    EXPECT_EQ(report.warning_count(), 0u)
        << entry.path() << ":\n" << report.render(unit->file.get());
  }
  EXPECT_GE(seen, 9u);  // the shipped corpus
}

TEST(Corpus, ShortestPathHasZeroWarnings) {
  std::ifstream in(std::string(PROGRAMS_DIR) + "/shortest_path.uc");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto unit = uc::lang::compile("shortest_path.uc", buf.str());
  ASSERT_TRUE(unit->ok());
  auto report = uc::analysis::run_default_analysis(*unit);
  EXPECT_EQ(report.warning_count(), 0u)
      << report.render(unit->file.get());
}

TEST(Corpus, PaperShortestPathVariantsHaveZeroWarnings) {
  const std::vector<std::pair<const char*, std::string>> variants = {
      {"on2", uc::papers::shortest_path_on2(16)},
      {"on3", uc::papers::shortest_path_on3(16)},
      {"star_solve", uc::papers::shortest_path_star_solve(16)},
  };
  for (const auto& [label, source] : variants) {
    auto unit = uc::lang::compile(label, source);
    ASSERT_TRUE(unit->ok()) << label << ":\n" << unit->diags.render_all();
    auto report = uc::analysis::run_default_analysis(*unit);
    EXPECT_EQ(report.error_count(), 0u) << label;
    EXPECT_EQ(report.warning_count(), 0u)
        << label << ":\n" << report.render(unit->file.get());
  }
}

}  // namespace
