#include "codegen/cstar_emit.hpp"

#include <gtest/gtest.h>

#include "uc/paper_programs.hpp"
#include "uclang/frontend.hpp"

namespace uc::codegen {
namespace {

std::string emit(const std::string& src) {
  auto unit = lang::compile("t.uc", src);
  EXPECT_TRUE(unit->ok()) << unit->diags.render_all();
  return emit_cstar(*unit);
}

TEST(CstarEmit, EmitsDomainPerArrayShape) {
  auto out = emit(
      "int a[8], b[8], m[4][4];\n"
      "index_set I:i = {0..7};\n"
      "void main() { par (I) a[i] = b[i]; }");
  // One domain for the two 1-D arrays, one for the matrix.
  EXPECT_NE(out.find("domain UC_DOM"), std::string::npos) << out;
  EXPECT_NE(out.find("int a;"), std::string::npos) << out;
  EXPECT_NE(out.find("int b;"), std::string::npos) << out;
  EXPECT_NE(out.find("int m;"), std::string::npos) << out;
  // Appendix-style offset-decoding init.
  EXPECT_NE(out.find("::init()"), std::string::npos) << out;
  EXPECT_NE(out.find("this - &"), std::string::npos) << out;
}

TEST(CstarEmit, ParBecomesDomainParallelBlock) {
  auto out = emit(
      "int a[8];\nindex_set I:i = {0..7};\n"
      "void main() { par (I) st (i > 2) a[i] = 1; }");
  EXPECT_NE(out.find("[domain UC_DOM"), std::string::npos) << out;
  EXPECT_NE(out.find("where (i > 2)"), std::string::npos) << out;
}

TEST(CstarEmit, SeqBecomesFrontEndLoop) {
  auto out = emit(papers::shortest_path_on2(8));
  EXPECT_NE(out.find("for (k = 0; k <= 7; k++)"), std::string::npos) << out;
}

TEST(CstarEmit, MinReductionBecomesCombineOperator) {
  // The Fig 5 pattern must come out with C*'s <?= operator, as in Fig 10.
  auto out = emit(papers::shortest_path_on3(8));
  EXPECT_NE(out.find("<?="), std::string::npos) << out;
}

TEST(CstarEmit, StarParBecomesDoWhile) {
  auto out = emit(papers::prefix_sums_star_par(8));
  EXPECT_NE(out.find("do {"), std::string::npos) << out;
  EXPECT_NE(out.find("} while"), std::string::npos) << out;
}

TEST(CstarEmit, OthersBecomesElse) {
  auto out = emit(
      "int a[8];\nindex_set I:i = {0..7};\n"
      "void main() { par (I) st (i%2==0) a[i] = 0; others a[i] = 1; }");
  EXPECT_NE(out.find("else {  /* others */"), std::string::npos) << out;
}

TEST(CstarEmit, MapSectionBecomesComment) {
  auto out = emit(papers::shifted_sum(8, 1, true));
  EXPECT_NE(out.find("no C* equivalent"), std::string::npos) << out;
}

TEST(CstarEmit, EmitsForAllPaperPrograms) {
  // Smoke: emission never crashes and always yields a domain for programs
  // with arrays.
  for (const auto& src :
       {papers::shortest_path_on2(8), papers::shortest_path_on3(8),
        papers::grid_shortest_path(6, 6, true), papers::ranksort(8),
        papers::odd_even_sort(8), papers::wavefront(6),
        papers::histogram(16)}) {
    auto out = emit(src);
    EXPECT_NE(out.find("domain"), std::string::npos);
  }
}

}  // namespace
}  // namespace uc::codegen
