#include "codegen/pretty.hpp"

#include <gtest/gtest.h>

#include "uc/paper_programs.hpp"
#include "uclang/frontend.hpp"

namespace uc::codegen {
namespace {

// Round-trip property: parse -> print -> parse -> print must be a fixed
// point (print is a canonical form).
void round_trip(const std::string& src) {
  auto unit1 = lang::parse_only("a.uc", src);
  ASSERT_FALSE(unit1->diags.has_errors()) << unit1->diags.render_all();
  auto printed1 = print_program(*unit1->program);
  auto unit2 = lang::parse_only("b.uc", printed1);
  ASSERT_FALSE(unit2->diags.has_errors())
      << unit2->diags.render_all() << "\nprinted was:\n"
      << printed1;
  auto printed2 = print_program(*unit2->program);
  EXPECT_EQ(printed1, printed2);
}

TEST(Pretty, RoundTripSimpleProgram) {
  round_trip(
      "int a[8], x;\n"
      "index_set I:i = {0..7};\n"
      "void main() { par (I) a[i] = i; x = $+(I; a[i]); }");
}

TEST(Pretty, RoundTripPaperPrograms) {
  round_trip(papers::shortest_path_on2(8));
  round_trip(papers::shortest_path_on3(8));
  round_trip(papers::grid_shortest_path(8, 8, true));
  round_trip(papers::prefix_sums_star_par(8));
  round_trip(papers::prefix_sums_seq_par(8));
  round_trip(papers::ranksort(8));
  round_trip(papers::odd_even_sort(8));
  round_trip(papers::wavefront(8));
  round_trip(papers::histogram(8));
  round_trip(papers::shifted_sum(8, 2, true));
  round_trip(papers::fold_combine(8, 2, true));
  round_trip(papers::copy_broadcast(8, 2, true));
}

TEST(Pretty, MinimalParenthesisation) {
  auto unit = lang::parse_only("t.uc", "void main() { x = (a + b) * c; }");
  auto out = print_program(*unit->program);
  EXPECT_NE(out.find("(a + b) * c"), std::string::npos) << out;
  auto unit2 = lang::parse_only("t.uc", "void main() { x = a + b * c; }");
  auto out2 = print_program(*unit2->program);
  EXPECT_NE(out2.find("a + b * c"), std::string::npos) << out2;
  EXPECT_EQ(out2.find("(a"), std::string::npos) << out2;  // no extra parens
}

TEST(Pretty, ReductionForms) {
  auto unit = lang::parse_only(
      "t.uc",
      "void main() { s = $+(I; i); t = $<(I st (a[i] > 0) a[i] others 0); }");
  auto out = print_program(*unit->program);
  EXPECT_NE(out.find("$+(I; i)"), std::string::npos) << out;
  EXPECT_NE(out.find("$<(I st (a[i] > 0) a[i] others 0)"),
            std::string::npos)
      << out;
}

TEST(Pretty, StarredConstructAndOthers) {
  auto unit = lang::parse_only(
      "t.uc",
      "void main() { *par (I) st (a[i] < 3) a[i] = 1; others a[i] = 2; }");
  auto out = print_program(*unit->program);
  EXPECT_NE(out.find("*par (I)"), std::string::npos) << out;
  EXPECT_NE(out.find("others"), std::string::npos) << out;
}

TEST(Pretty, MapSection) {
  auto unit = lang::parse_only(
      "t.uc",
      "int a[8], b[8];\nindex_set I:i = {0..7};\n"
      "map (I) { permute (I) b[i+1] :- a[i]; copy (I) a; }\n"
      "void main() { }");
  auto out = print_program(*unit->program);
  EXPECT_NE(out.find("permute (I) b[i + 1] :- a[i];"), std::string::npos)
      << out;
  EXPECT_NE(out.find("copy (I) a;"), std::string::npos) << out;
}

TEST(Pretty, StringEscapes) {
  auto unit = lang::parse_only(
      "t.uc", "void main() { print(\"a\\tb\\n\"); }");
  auto out = print_program(*unit->program);
  EXPECT_NE(out.find("\"a\\tb\\n\""), std::string::npos) << out;
}

}  // namespace
}  // namespace uc::codegen
