// The public facade: compile / run / transform toggles / emission.
#include "uc/uc.hpp"

#include <gtest/gtest.h>

#include "seqref/seqref.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "uc/paper_programs.hpp"

namespace uc {
namespace {

const char* kSumProgram =
    "index_set I:i = {0..9};\n"
    "int a[10], s;\n"
    "void main() { par (I) a[i] = i; s = $+(I; a[i]); }";

TEST(Api, CompileAndRun) {
  auto program = Program::compile("sum.uc", kSumProgram);
  auto result = program.run();
  EXPECT_EQ(result.global_scalar("s").as_int(), 45);
}

TEST(Api, CompileErrorThrowsWithDiagnostics) {
  try {
    Program::compile("bad.uc", "void main() { goto x; }");
    FAIL() << "expected UcCompileError";
  } catch (const support::UcCompileError& e) {
    EXPECT_NE(std::string(e.what()).find("goto"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad.uc:1:"), std::string::npos);
  }
}

TEST(Api, CheckReturnsDiagnosticsWithoutThrowing) {
  EXPECT_EQ(Program::check("ok.uc", kSumProgram), "");
  auto msg = Program::check("bad.uc", "void main() { x = 1; }");
  EXPECT_NE(msg.find("unknown identifier"), std::string::npos);
}

TEST(Api, RunOnSharedMachineAccumulatesStats) {
  auto program = Program::compile("sum.uc", kSumProgram);
  cm::Machine machine;
  auto r1 = program.run_on(machine);
  const auto after_one = machine.stats().cycles;
  auto r2 = program.run_on(machine);
  EXPECT_EQ(r1.global_scalar("s").as_int(), r2.global_scalar("s").as_int());
  EXPECT_GT(machine.stats().cycles, after_one);
}

TEST(Api, FoldConstantsToggle) {
  CompileOptions fold;
  CompileOptions no_fold;
  no_fold.fold_constants = false;
  auto folded = Program::compile("f.uc", "int x;\nvoid main() { x = 2+3; }",
                                 fold);
  auto plain = Program::compile("p.uc", "int x;\nvoid main() { x = 2+3; }",
                                no_fold);
  EXPECT_NE(folded.to_uc_source().find("x = 5;"), std::string::npos);
  EXPECT_NE(plain.to_uc_source().find("x = 2 + 3;"), std::string::npos);
  EXPECT_EQ(folded.run().global_scalar("x").as_int(), 5);
  EXPECT_EQ(plain.run().global_scalar("x").as_int(), 5);
}

TEST(Api, SolveLoweringToggleProducesSameAnswers) {
  CompileOptions lower;
  lower.lower_solve = true;
  auto lowered = Program::compile("w.uc", papers::wavefront(6), lower);
  auto builtin = Program::compile("w.uc", papers::wavefront(6));
  EXPECT_NE(lowered.to_uc_source().find("*par"), std::string::npos);
  EXPECT_NE(builtin.to_uc_source().find("solve"), std::string::npos);
  auto expect = seqref::wavefront(6);
  auto rl = lowered.run();
  auto rb = builtin.run();
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_EQ(rl.global_element("a", {i, j}).as_int(),
                expect[static_cast<std::size_t>(i * 6 + j)]);
      EXPECT_EQ(rb.global_element("a", {i, j}).as_int(),
                expect[static_cast<std::size_t>(i * 6 + j)]);
    }
  }
}

TEST(Api, PermuteRewriteToggle) {
  CompileOptions rewrite;
  rewrite.rewrite_permutes = true;
  auto program = Program::compile(
      "m.uc", papers::shifted_sum(16, 2, /*with_map=*/true), rewrite);
  EXPECT_EQ(program.to_uc_source().find("permute"), std::string::npos);
}

TEST(Api, CstarEmission) {
  auto program = Program::compile("sp.uc", papers::shortest_path_on2(8));
  auto cstar = program.to_cstar_source();
  EXPECT_NE(cstar.find("domain"), std::string::npos);
  EXPECT_NE(cstar.find("[domain"), std::string::npos);
}

TEST(Api, UcSourceRoundTripsThroughCompile) {
  auto program = Program::compile("sum.uc", kSumProgram);
  auto printed = program.to_uc_source();
  auto again = Program::compile("sum2.uc", printed);
  EXPECT_EQ(again.run().global_scalar("s").as_int(), 45);
}

TEST(Api, MachineOptionsControlSeedAndSize) {
  cm::MachineOptions small;
  small.cost.physical_processors = 16;
  cm::MachineOptions big;
  big.cost.physical_processors = 16384;
  auto program = Program::compile(
      "p.uc",
      "index_set I:i = {0..255};\nint a[256];\n"
      "void main() { par (I) a[i] = i * 2; }");
  auto rs = program.run(small);
  auto rb = program.run(big);
  // Same values, different simulated time (VP ratio 16 vs 1).
  EXPECT_EQ(rs.global_element("a", {7}).as_int(), 14);
  EXPECT_GT(rs.stats().cycles, rb.stats().cycles);
}

TEST(Api, ProgramIsMovable) {
  auto program = Program::compile("sum.uc", kSumProgram);
  Program moved = std::move(program);
  EXPECT_EQ(moved.run().global_scalar("s").as_int(), 45);
}

TEST(Api, ConcisenessClaimUcSmallerThanCstar) {
  // §5/E9: UC programs are more concise than the C* equivalents.
  for (auto& src : {papers::shortest_path_on2(16),
                    papers::shortest_path_on3(16)}) {
    auto program = Program::compile("p.uc", src);
    auto uc_lines = support::count_code_lines(src);
    auto cstar_lines = support::count_code_lines(program.to_cstar_source());
    EXPECT_LT(uc_lines, cstar_lines);
  }
}

}  // namespace
}  // namespace uc
