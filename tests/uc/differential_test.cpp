// Differential property testing: random integer expression trees are
// pretty-printed into a UC program, compiled, executed on the VM and
// compared against a direct host-side evaluation of the same tree.  This
// exercises the printer/parser round trip and the evaluator's C semantics
// (short-circuiting, truncation, precedence) on inputs nobody hand-wrote.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "codegen/pretty.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"
#include "uc/uc.hpp"
#include "uclang/ast.hpp"

namespace uc {
namespace {

using lang::BinaryOp;
using lang::Expr;
using lang::ExprPtr;
using lang::UnaryOp;

struct Env {
  std::int64_t x, y, z;
};

// ---- random expression generation -----------------------------------------

ExprPtr make_int(std::int64_t v) {
  if (v < 0) {
    // The printer would render a negative literal anyway, but UC sources
    // spell negatives as unary minus; keep the tree canonical.
    auto u = std::make_unique<lang::UnaryExpr>();
    u->op = UnaryOp::kNeg;
    auto lit = std::make_unique<lang::IntLitExpr>();
    lit->value = -v;
    u->operand = std::move(lit);
    return u;
  }
  auto lit = std::make_unique<lang::IntLitExpr>();
  lit->value = v;
  return lit;
}

ExprPtr make_var(int which) {
  auto id = std::make_unique<lang::IdentExpr>();
  id->name = which == 0 ? "x" : which == 1 ? "y" : "z";
  return id;
}

ExprPtr gen_expr(support::SplitMix64& rng, int depth) {
  if (depth <= 0 || rng.next_below(5) == 0) {
    if (rng.next_below(2) == 0) {
      return make_int(static_cast<std::int64_t>(rng.next_below(21)) - 10);
    }
    return make_var(static_cast<int>(rng.next_below(3)));
  }
  switch (rng.next_below(4)) {
    case 0: {  // unary
      auto u = std::make_unique<lang::UnaryExpr>();
      const auto pick = rng.next_below(3);
      u->op = pick == 0 ? UnaryOp::kNeg
                        : pick == 1 ? UnaryOp::kNot : UnaryOp::kBitNot;
      u->operand = gen_expr(rng, depth - 1);
      return u;
    }
    case 1: {  // ternary
      auto t = std::make_unique<lang::TernaryExpr>();
      t->cond = gen_expr(rng, depth - 1);
      t->then_expr = gen_expr(rng, depth - 1);
      t->else_expr = gen_expr(rng, depth - 1);
      return t;
    }
    default: {  // binary (no / or % — domain errors are their own tests)
      static const BinaryOp kOps[] = {
          BinaryOp::kAdd,    BinaryOp::kSub,   BinaryOp::kMul,
          BinaryOp::kEq,     BinaryOp::kNe,    BinaryOp::kLt,
          BinaryOp::kGt,     BinaryOp::kLe,    BinaryOp::kGe,
          BinaryOp::kLogAnd, BinaryOp::kLogOr, BinaryOp::kBitAnd,
          BinaryOp::kBitOr,  BinaryOp::kBitXor};
      auto b = std::make_unique<lang::BinaryExpr>();
      b->op = kOps[rng.next_below(std::size(kOps))];
      b->lhs = gen_expr(rng, depth - 1);
      b->rhs = gen_expr(rng, depth - 1);
      return b;
    }
  }
}

// ---- reference evaluation ---------------------------------------------------

std::int64_t eval_ref(const Expr& e, const Env& env) {
  switch (e.kind) {
    case lang::ExprKind::kIntLit:
      return static_cast<const lang::IntLitExpr&>(e).value;
    case lang::ExprKind::kIdent: {
      const auto& name = static_cast<const lang::IdentExpr&>(e).name;
      return name == "x" ? env.x : name == "y" ? env.y : env.z;
    }
    case lang::ExprKind::kUnary: {
      const auto& u = static_cast<const lang::UnaryExpr&>(e);
      const auto v = eval_ref(*u.operand, env);
      switch (u.op) {
        case UnaryOp::kNeg: return -v;
        case UnaryOp::kNot: return v == 0 ? 1 : 0;
        case UnaryOp::kBitNot: return ~v;
        case UnaryOp::kPlus: return v;
      }
      return v;
    }
    case lang::ExprKind::kBinary: {
      const auto& b = static_cast<const lang::BinaryExpr&>(e);
      if (b.op == BinaryOp::kLogAnd) {
        return eval_ref(*b.lhs, env) != 0 && eval_ref(*b.rhs, env) != 0 ? 1
                                                                        : 0;
      }
      if (b.op == BinaryOp::kLogOr) {
        return eval_ref(*b.lhs, env) != 0 || eval_ref(*b.rhs, env) != 0 ? 1
                                                                        : 0;
      }
      const auto l = eval_ref(*b.lhs, env);
      const auto r = eval_ref(*b.rhs, env);
      switch (b.op) {
        case BinaryOp::kAdd: return l + r;
        case BinaryOp::kSub: return l - r;
        case BinaryOp::kMul: return l * r;
        case BinaryOp::kEq: return l == r ? 1 : 0;
        case BinaryOp::kNe: return l != r ? 1 : 0;
        case BinaryOp::kLt: return l < r ? 1 : 0;
        case BinaryOp::kGt: return l > r ? 1 : 0;
        case BinaryOp::kLe: return l <= r ? 1 : 0;
        case BinaryOp::kGe: return l >= r ? 1 : 0;
        case BinaryOp::kBitAnd: return l & r;
        case BinaryOp::kBitOr: return l | r;
        case BinaryOp::kBitXor: return l ^ r;
        default: return 0;
      }
    }
    case lang::ExprKind::kTernary: {
      const auto& t = static_cast<const lang::TernaryExpr&>(e);
      return eval_ref(*t.cond, env) != 0 ? eval_ref(*t.then_expr, env)
                                         : eval_ref(*t.else_expr, env);
    }
    default:
      return 0;
  }
}

class DifferentialP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialP, RandomExpressionsAgreeWithReference) {
  support::SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    auto expr = gen_expr(rng, 5);
    Env env{static_cast<std::int64_t>(rng.next_below(41)) - 20,
            static_cast<std::int64_t>(rng.next_below(41)) - 20,
            static_cast<std::int64_t>(rng.next_below(41)) - 20};
    const auto printed = codegen::print_expr(*expr);
    const auto source = support::format(
        "int x = %lld;\nint y = %lld;\nint z = %lld;\nint r;\n"
        "void main() { r = %s; }",
        static_cast<long long>(env.x), static_cast<long long>(env.y),
        static_cast<long long>(env.z), printed.c_str());
    SCOPED_TRACE("expr: " + printed);
    auto program = Program::compile("fuzz.uc", source);
    auto result = program.run();
    EXPECT_EQ(result.global_scalar("r").as_int(), eval_ref(*expr, env));
  }
}

// 8 seeds x 25 trials = 200 random programs through the whole pipeline.
INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialP,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

// Same trees, but round-tripped through the printer twice and evaluated
// under both CSE settings — printer canonicalisation must not change
// values.
TEST(Differential, PrinterRoundTripAndCseStable) {
  support::SplitMix64 rng(999);
  for (int trial = 0; trial < 20; ++trial) {
    auto expr = gen_expr(rng, 4);
    const auto printed = codegen::print_expr(*expr);
    const auto source =
        "int x = 3;\nint y = -5;\nint z = 7;\nint r;\n"
        "void main() { r = " + printed + "; }";
    SCOPED_TRACE("expr: " + printed);
    auto program = Program::compile("fuzz.uc", source);
    const auto reprinted = program.to_uc_source();
    auto again = Program::compile("fuzz2.uc", reprinted);
    vm::ExecOptions no_cse;
    no_cse.common_subexpression_elimination = false;
    auto v1 = program.run().global_scalar("r").as_int();
    auto v2 = again.run().global_scalar("r").as_int();
    auto v3 = program.run({}, no_cse).global_scalar("r").as_int();
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(v1, v3);
  }
}

}  // namespace
}  // namespace uc
