// Diagnostic-quality matrix: every class of user error must produce a
// located, actionable message, and analysis must keep going to report
// multiple independent problems in one pass.
#include <gtest/gtest.h>

#include "uclang/frontend.hpp"

namespace uc::lang {
namespace {

std::string diags_for(const std::string& src) {
  auto unit = compile("err.uc", src);
  return unit->diags.render_all();
}

std::size_t error_count(const std::string& src) {
  auto unit = compile("err.uc", src);
  return unit->diags.error_count();
}

TEST(Diagnostics, MessagesCarryFileLineColumn) {
  auto out = diags_for("int a;\nvoid main() {\n  b = 1;\n}");
  EXPECT_NE(out.find("err.uc:3:3"), std::string::npos) << out;
  EXPECT_NE(out.find("unknown identifier 'b'"), std::string::npos);
}

TEST(Diagnostics, CaretPointsAtOffendingToken) {
  auto out = diags_for("void main() { goto x; }");
  // The caret line must sit under `goto`.
  EXPECT_NE(out.find("^~~~"), std::string::npos) << out;
}

TEST(Diagnostics, MultipleIndependentErrorsReportedTogether) {
  EXPECT_GE(error_count("void main() {\n"
                        "  x = 1;\n"       // unknown x
                        "  y = 2;\n"       // unknown y
                        "  int a; a = z;\n"  // unknown z
                        "}"),
            3u);
}

TEST(Diagnostics, ParserRecoversAcrossStatements) {
  EXPECT_GE(error_count("void main() {\n"
                        "  int @;\n"        // lexical garbage
                        "  goto l;\n"       // forbidden statement
                        "}"),
            2u);
}

TEST(Diagnostics, RedeclarationNamesPreviousKind) {
  auto out = diags_for("index_set I:i = {0..3};\nint I;\nvoid main() { }");
  EXPECT_NE(out.find("redeclaration of 'I'"), std::string::npos) << out;
  EXPECT_NE(out.find("index set"), std::string::npos) << out;
}

TEST(Diagnostics, ElementCollisionBetweenSets) {
  auto out = diags_for(
      "index_set I:i = {0..3}, J:i = {0..3};\nvoid main() { }");
  EXPECT_NE(out.find("redeclaration of 'i'"), std::string::npos) << out;
}

TEST(Diagnostics, SubscriptRankMessageGivesBothRanks) {
  auto out = diags_for(
      "int d[4][4];\nindex_set I:i = {0..3};\n"
      "void main() { par (I) d[i][i][i] = 0; }");
  EXPECT_NE(out.find("rank 2"), std::string::npos) << out;
  EXPECT_NE(out.find("3 subscripts"), std::string::npos) << out;
}

TEST(Diagnostics, CallArityMessageGivesBothCounts) {
  auto out = diags_for(
      "int f(int a, int b) { return a + b; }\n"
      "void main() { f(1); }");
  EXPECT_NE(out.find("expects 2 argument(s), got 1"), std::string::npos)
      << out;
}

TEST(Diagnostics, ReductionAfterIndexSetsNeedsSemiOrSt) {
  auto out = diags_for("int s;\nvoid main() { s = $+(I 1); }");
  EXPECT_NE(out.find("';' or 'st'"), std::string::npos) << out;
}

TEST(Diagnostics, MapSectionOutsideArrays) {
  auto out = diags_for(
      "index_set I:i = {0..3};\nint x;\n"
      "map (I) { permute (I) x[i] :- x[i]; }\nvoid main() { }");
  EXPECT_NE(out.find("not an array"), std::string::npos) << out;
}

TEST(Diagnostics, SolveTargetScalarExplained) {
  auto out = diags_for(
      "index_set I:i = {0..3};\nint s;\n"
      "void main() { solve (I) s = i; }");
  EXPECT_NE(out.find("array elements"), std::string::npos) << out;
}

TEST(Diagnostics, VoidVariableRejected) {
  auto out = diags_for("void main() { void v; }");
  EXPECT_NE(out.find("void"), std::string::npos) << out;
}

TEST(Diagnostics, WarningDoesNotFailCompilation) {
  auto unit = compile("warn.uc",
                      "index_set E:e = {3..1};\nvoid main() { }");
  EXPECT_TRUE(unit->ok());
  EXPECT_FALSE(unit->diags.diagnostics().empty());
}

TEST(Diagnostics, UnterminatedCommentLocated) {
  auto out = diags_for("void main() { } /* dangling");
  EXPECT_NE(out.find("unterminated block comment"), std::string::npos)
      << out;
}

TEST(Diagnostics, FunctionLikeMacroExplained) {
  auto out = diags_for("#define SQ(x) ((x)*(x))\nvoid main() { }");
  EXPECT_NE(out.find("function-like macros are not supported"),
            std::string::npos)
      << out;
}

TEST(Diagnostics, ConstViolationNamesVariable) {
  auto out = diags_for("const int N = 2;\nvoid main() { N = 3; }");
  EXPECT_NE(out.find("cannot assign to const 'N'"), std::string::npos)
      << out;
}

}  // namespace
}  // namespace uc::lang
