// Negative corpus: hostile and malformed inputs must come back as located
// diagnostics — never a crash, hang, or host stack overflow.  Each case
// runs the full front end (lex, parse, sema) on one adversarial source.
#include <gtest/gtest.h>

#include <string>

#include "uclang/frontend.hpp"

namespace uc::lang {
namespace {

// Compiles hostile input; the front end must survive and report >= 1 error.
std::string expect_errors(const std::string& src) {
  auto unit = compile("hostile.uc", src);
  EXPECT_GT(unit->diags.error_count(), 0u);
  return unit->diags.render_all();
}

TEST(NegativeCorpus, EmptyAndTruncatedInputs) {
  // An empty file is a valid (empty) translation unit; it must simply not
  // crash the front end.  Everything truncated mid-construct must error.
  EXPECT_EQ(compile("hostile.uc", "")->diags.error_count(), 0u);
  expect_errors("void");
  expect_errors("void main(");
  expect_errors("void main() {");
  expect_errors("void main() { int a; a =");
  expect_errors("index_set I:i = {0..");
  expect_errors("#define");
}

TEST(NegativeCorpus, UnterminatedLiteralsAndComments) {
  auto s = expect_errors("void main() { print(\"oops); }");
  EXPECT_NE(s.find("unterminated string literal"), std::string::npos) << s;
  auto c = expect_errors("void main() { } /* never closed");
  EXPECT_NE(c.find("unterminated block comment"), std::string::npos) << c;
  expect_errors("void main() { int a; a = 'x; }");
}

TEST(NegativeCorpus, DeepParenNestingHitsDepthLimitCleanly) {
  // 5000 nested parens would blow the host stack in a naive recursive
  // descent; the parser's depth guard must turn it into a diagnostic.
  const int depth = 5000;
  std::string src = "void main() { int a; a = ";
  src.append(static_cast<std::size_t>(depth), '(');
  src += "1";
  src.append(static_cast<std::size_t>(depth), ')');
  src += "; }";
  auto out = expect_errors(src);
  EXPECT_NE(out.find("parser depth limit"), std::string::npos) << out;
}

TEST(NegativeCorpus, DeepBraceNestingHitsDepthLimitCleanly) {
  const int depth = 5000;
  std::string src = "void main() ";
  src.append(static_cast<std::size_t>(depth), '{');
  src.append(static_cast<std::size_t>(depth), '}');
  auto out = expect_errors(src);
  EXPECT_NE(out.find("parser depth limit"), std::string::npos) << out;
}

TEST(NegativeCorpus, DeepUnaryChainHitsDepthLimitCleanly) {
  std::string src = "void main() { int a; a = ";
  src.append(5000, '-');
  src += "1; }";
  auto out = expect_errors(src);
  EXPECT_NE(out.find("parser depth limit"), std::string::npos) << out;
}

TEST(NegativeCorpus, ModeratelyNestedExpressionsStillParse) {
  // The guard must not reject reasonable programs: 100 levels is fine.
  std::string src = "void main() { int a; a = ";
  src.append(100, '(');
  src += "1";
  src.append(100, ')');
  src += "; }";
  auto unit = compile("ok.uc", src);
  EXPECT_EQ(unit->diags.error_count(), 0u) << unit->diags.render_all();
}

TEST(NegativeCorpus, OverflowingNumericLiterals) {
  expect_errors("void main() { int a; a = 99999999999999999999999999999; }");
  expect_errors("void main() { float f; f = 1e99999; }");
}

TEST(NegativeCorpus, PathologicalIdentifiersAndGarbageBytes) {
  // A 64 KiB identifier must lex without quadratic blowup or crash.
  std::string long_ident(65536, 'x');
  std::string src = "void main() { " + long_ident + " = 1; }";
  expect_errors(src);  // unknown identifier, not a crash

  // Raw control characters and stray bytes inside a function body.
  expect_errors("void main() { \x01\x02\x7f\xfe int a; }");
  expect_errors("void main() { int a; a = 1 @ 2; }");
  expect_errors("void main() { $ }");
}

TEST(NegativeCorpus, MalformedConstructsReportNotCrash) {
  expect_errors("void main() { par () { } }");            // empty set list
  expect_errors("void main() { par (NoSuchSet) { } }");   // unknown set
  expect_errors("void main() { *seq { } }");              // missing sets
  expect_errors("void main() { solve { } }");             // missing sets
  // A reversed range is deliberately a warning, not an error: the set is
  // legal but empty, and the message must say so.
  auto unit = compile("hostile.uc", "index_set I:i = {3..0};\nvoid main() { }");
  EXPECT_EQ(unit->diags.error_count(), 0u);
  EXPECT_NE(unit->diags.render_all().find("is empty"), std::string::npos)
      << unit->diags.render_all();
}

TEST(NegativeCorpus, ManyErrorsDoNotCascadeForever) {
  // 2000 bad statements: the engine must report a bounded, per-statement
  // diagnostic stream and terminate (no error-recovery livelock).
  std::string src = "void main() {\n";
  for (int k = 0; k < 2000; ++k) src += "  @!;\n";
  src += "}\n";
  auto unit = compile("hostile.uc", src);
  EXPECT_GT(unit->diags.error_count(), 0u);
}

}  // namespace
}  // namespace uc::lang
