#include "uclang/lexer.hpp"

#include <gtest/gtest.h>

namespace uc::lang {
namespace {

std::vector<Token> lex(const std::string& src,
                       support::DiagnosticEngine* out_diags = nullptr) {
  support::SourceFile file("test.uc", src);
  support::DiagnosticEngine diags(&file);
  Lexer lexer(file, diags);
  auto tokens = lexer.lex_all();
  if (out_diags != nullptr) *out_diags = diags;
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token>& toks) {
  std::vector<TokenKind> out;
  for (const auto& t : toks) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputGivesEof) {
  auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEof);
}

TEST(Lexer, Identifiers) {
  auto toks = lex("foo _bar baz9");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "_bar");
  EXPECT_EQ(toks[2].text, "baz9");
}

TEST(Lexer, Keywords) {
  auto toks = lex("par seq solve oneof st others map permute fold copy");
  auto k = kinds(toks);
  EXPECT_EQ(k[0], TokenKind::kKwPar);
  EXPECT_EQ(k[1], TokenKind::kKwSeq);
  EXPECT_EQ(k[2], TokenKind::kKwSolve);
  EXPECT_EQ(k[3], TokenKind::kKwOneof);
  EXPECT_EQ(k[4], TokenKind::kKwSt);
  EXPECT_EQ(k[5], TokenKind::kKwOthers);
  EXPECT_EQ(k[6], TokenKind::kKwMap);
  EXPECT_EQ(k[7], TokenKind::kKwPermute);
  EXPECT_EQ(k[8], TokenKind::kKwFold);
  EXPECT_EQ(k[9], TokenKind::kKwCopy);
}

TEST(Lexer, IndexSetBothSpellings) {
  auto toks = lex("index_set index-set");
  EXPECT_EQ(toks[0].kind, TokenKind::kKwIndexSet);
  EXPECT_EQ(toks[1].kind, TokenKind::kKwIndexSet);
}

TEST(Lexer, IndexMinusSetWithSpacesIsNotKeyword) {
  // `index - set` (spaced) is subtraction of identifiers.
  auto toks = lex("index - set");
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].kind, TokenKind::kMinus);
  EXPECT_EQ(toks[2].kind, TokenKind::kIdent);
}

TEST(Lexer, IndexMinusSetterIsNotKeyword) {
  // `index-setter` must lex as index - setter.
  auto toks = lex("index-setter");
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].kind, TokenKind::kMinus);
  EXPECT_EQ(toks[2].text, "setter");
}

TEST(Lexer, ReductionOperators) {
  auto toks = lex("$+ $* $&& $|| $^ $> $< $, $& $|");
  auto k = kinds(toks);
  EXPECT_EQ(k[0], TokenKind::kRedAdd);
  EXPECT_EQ(k[1], TokenKind::kRedMul);
  EXPECT_EQ(k[2], TokenKind::kRedAnd);
  EXPECT_EQ(k[3], TokenKind::kRedOr);
  EXPECT_EQ(k[4], TokenKind::kRedXor);
  EXPECT_EQ(k[5], TokenKind::kRedMax);
  EXPECT_EQ(k[6], TokenKind::kRedMin);
  EXPECT_EQ(k[7], TokenKind::kRedArb);
  EXPECT_EQ(k[8], TokenKind::kRedAnd);  // $& short form
  EXPECT_EQ(k[9], TokenKind::kRedOr);   // $| short form
}

TEST(Lexer, RangeAndMapsToTokens) {
  auto toks = lex("{0..9} b[i+1] :- a[i];");
  auto k = kinds(toks);
  EXPECT_EQ(k[0], TokenKind::kLBrace);
  EXPECT_EQ(k[1], TokenKind::kIntLit);
  EXPECT_EQ(k[2], TokenKind::kDotDot);
  EXPECT_EQ(k[3], TokenKind::kIntLit);
  // find the :- token
  bool found = false;
  for (auto kk : k) found = found || kk == TokenKind::kMapsTo;
  EXPECT_TRUE(found);
}

TEST(Lexer, IntAndFloatLiterals) {
  auto toks = lex("42 3.5 1.0 2e3 7");
  EXPECT_EQ(toks[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.5);
  EXPECT_EQ(toks[2].kind, TokenKind::kFloatLit);
  EXPECT_EQ(toks[3].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 2000.0);
  EXPECT_EQ(toks[4].kind, TokenKind::kIntLit);
}

TEST(Lexer, Int64MaxLexesExactly) {
  auto toks = lex("9223372036854775807");
  ASSERT_EQ(toks[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(toks[0].int_value, 9223372036854775807LL);
}

TEST(Lexer, IntLiteralOverflowIsAnError) {
  // strtoll would silently saturate to LLONG_MAX; the lexer must reject.
  support::SourceFile file("test.uc", "99999999999999999999");
  support::DiagnosticEngine diags(&file);
  Lexer lexer(file, diags);
  auto toks = lexer.lex_all();
  ASSERT_EQ(toks[0].kind, TokenKind::kIntLit);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.render_all().find("does not fit in a 64-bit int"),
            std::string::npos)
      << diags.render_all();
}

TEST(Lexer, IntJustPastMaxIsAnError) {
  support::SourceFile file("test.uc", "9223372036854775808");
  support::DiagnosticEngine diags(&file);
  Lexer lexer(file, diags);
  (void)lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, IntFollowedByRangeIsNotFloat) {
  // `0..N` must lex as 0 .. N, not 0. . N.
  auto toks = lex("0..9");
  EXPECT_EQ(toks[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(toks[1].kind, TokenKind::kDotDot);
  EXPECT_EQ(toks[2].kind, TokenKind::kIntLit);
}

TEST(Lexer, OperatorsMaximalMunch) {
  auto toks = lex("<= >= == != && || << >> ++ -- += -=");
  auto k = kinds(toks);
  EXPECT_EQ(k[0], TokenKind::kLe);
  EXPECT_EQ(k[1], TokenKind::kGe);
  EXPECT_EQ(k[2], TokenKind::kEq);
  EXPECT_EQ(k[3], TokenKind::kNe);
  EXPECT_EQ(k[4], TokenKind::kAmpAmp);
  EXPECT_EQ(k[5], TokenKind::kPipePipe);
  EXPECT_EQ(k[6], TokenKind::kShl);
  EXPECT_EQ(k[7], TokenKind::kShr);
  EXPECT_EQ(k[8], TokenKind::kPlusPlus);
  EXPECT_EQ(k[9], TokenKind::kMinusMinus);
  EXPECT_EQ(k[10], TokenKind::kPlusAssign);
  EXPECT_EQ(k[11], TokenKind::kMinusAssign);
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = lex("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, DefineMacroSubstitutes) {
  auto toks = lex("#define N 32\nint a[N];");
  // int a [ 32 ] ;
  EXPECT_EQ(toks[0].kind, TokenKind::kKwInt);
  EXPECT_EQ(toks[3].kind, TokenKind::kIntLit);
  EXPECT_EQ(toks[3].int_value, 32);
}

TEST(Lexer, DefineMacroMultiToken) {
  auto toks = lex("#define NN (N*N)\n#define N 4\nNN");
  // NN -> ( N * N ) -> ( 4 * 4 )
  auto k = kinds(toks);
  EXPECT_EQ(k[0], TokenKind::kLParen);
  EXPECT_EQ(toks[1].int_value, 4);
  EXPECT_EQ(k[2], TokenKind::kStar);
  EXPECT_EQ(toks[3].int_value, 4);
  EXPECT_EQ(k[4], TokenKind::kRParen);
}

TEST(Lexer, ConsecutiveDefines) {
  auto toks = lex("#define A 1\n#define B 2\nA B");
  EXPECT_EQ(toks[0].int_value, 1);
  EXPECT_EQ(toks[1].int_value, 2);
}

TEST(Lexer, SelfReferentialMacroDoesNotLoop) {
  auto toks = lex("#define X X+1\nX");
  // X -> X + 1 with inner X left alone.
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "X");
  EXPECT_EQ(toks[1].kind, TokenKind::kPlus);
  EXPECT_EQ(toks[2].int_value, 1);
}

TEST(Lexer, CharAndStringLiterals) {
  auto toks = lex("'a' '\\n' \"hi\\tthere\"");
  EXPECT_EQ(toks[0].kind, TokenKind::kCharLit);
  EXPECT_EQ(toks[0].int_value, 'a');
  EXPECT_EQ(toks[1].int_value, '\n');
  EXPECT_EQ(toks[2].kind, TokenKind::kStringLit);
  EXPECT_EQ(toks[2].text, "hi\tthere");
}

TEST(Lexer, GotoIsLexedAsKeyword) {
  auto toks = lex("goto");
  EXPECT_EQ(toks[0].kind, TokenKind::kKwGoto);
}

TEST(Lexer, ErrorsReported) {
  support::SourceFile file("t.uc", "int a @ b;");
  support::DiagnosticEngine diags(&file);
  Lexer lexer(file, diags);
  auto toks = lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
  // Lexing continues past the error.
  EXPECT_GE(toks.size(), 4u);
}

TEST(Lexer, BadDollarReported) {
  support::SourceFile file("t.uc", "$=");
  support::DiagnosticEngine diags(&file);
  Lexer lexer(file, diags);
  (void)lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnsupportedDirectiveReported) {
  support::SourceFile file("t.uc", "#include <stdio.h>\nint a;");
  support::DiagnosticEngine diags(&file);
  Lexer lexer(file, diags);
  auto toks = lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(toks[0].kind, TokenKind::kKwInt);  // recovery continues
}

TEST(Lexer, FunctionLikeMacroRejected) {
  support::SourceFile file("t.uc", "#define F(x) x\n");
  support::DiagnosticEngine diags(&file);
  Lexer lexer(file, diags);
  (void)lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, SourceRangesPointAtSpelling) {
  auto toks = lex("ab + cd");
  EXPECT_EQ(toks[0].range.begin.offset, 0u);
  EXPECT_EQ(toks[0].range.end.offset, 2u);
  EXPECT_EQ(toks[2].range.begin.offset, 5u);
}

TEST(Lexer, InfKeyword) {
  auto toks = lex("INF");
  EXPECT_EQ(toks[0].kind, TokenKind::kKwInf);
}

}  // namespace
}  // namespace uc::lang
