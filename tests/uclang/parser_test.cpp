#include "uclang/parser.hpp"

#include <gtest/gtest.h>

#include "uclang/frontend.hpp"

namespace uc::lang {
namespace {

std::unique_ptr<CompilationUnit> parse_ok(const std::string& src) {
  auto unit = parse_only("test.uc", src);
  EXPECT_FALSE(unit->diags.has_errors()) << unit->diags.render_all();
  return unit;
}

void parse_err(const std::string& src, const std::string& needle) {
  auto unit = parse_only("test.uc", src);
  ASSERT_TRUE(unit->diags.has_errors()) << "expected a parse error";
  EXPECT_NE(unit->diags.render_all().find(needle), std::string::npos)
      << unit->diags.render_all();
}

// Wraps a statement in `void main() { ... }` and returns the first stmt.
const Stmt* first_stmt(const CompilationUnit& unit) {
  auto* fn = unit.program->find_function("main");
  if (fn == nullptr || fn->body == nullptr || fn->body->body.empty()) {
    return nullptr;
  }
  return fn->body->body[0].get();
}

std::unique_ptr<CompilationUnit> parse_main(const std::string& body) {
  return parse_ok("void main() {\n" + body + "\n}\n");
}

TEST(Parser, GlobalVariableDecls) {
  auto unit = parse_ok("int a, b[10], c[4][4];\nfloat avg;\nconst int N = 3;");
  ASSERT_EQ(unit->program->items.size(), 3u);
  auto* decl = static_cast<VarDeclStmt*>(unit->program->items[0].decl.get());
  ASSERT_EQ(decl->declarators.size(), 3u);
  EXPECT_EQ(decl->declarators[0].name, "a");
  EXPECT_EQ(decl->declarators[1].dim_exprs.size(), 1u);
  EXPECT_EQ(decl->declarators[2].dim_exprs.size(), 2u);
  auto* cdecl = static_cast<VarDeclStmt*>(unit->program->items[2].decl.get());
  EXPECT_TRUE(cdecl->is_const);
  EXPECT_NE(cdecl->declarators[0].init, nullptr);
}

TEST(Parser, IndexSetRangeListAlias) {
  auto unit = parse_ok(
      "index_set I:i = {0..9}, J:j = I, K:k = {4, 2, 9};");
  auto* decl =
      static_cast<IndexSetDeclStmt*>(unit->program->items[0].decl.get());
  ASSERT_EQ(decl->defs.size(), 3u);
  EXPECT_EQ(decl->defs[0].set_name, "I");
  EXPECT_EQ(decl->defs[0].elem_name, "i");
  EXPECT_NE(decl->defs[0].range_lo, nullptr);
  EXPECT_EQ(decl->defs[1].alias, "J" == decl->defs[1].set_name ? "I" : "I");
  EXPECT_EQ(decl->defs[2].listed.size(), 3u);
}

TEST(Parser, PaperSpellingIndexSet) {
  // The paper writes `index-set` with a hyphen.
  parse_ok("index-set I:i = {0..9};");
}

TEST(Parser, FunctionWithParams) {
  auto unit = parse_ok(
      "int add(int x, int y) { return x + y; }\n"
      "void touch(int a[], float m[][]) { }\n");
  auto* fn = unit->program->find_function("add");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->params.size(), 2u);
  auto* fn2 = unit->program->find_function("touch");
  ASSERT_NE(fn2, nullptr);
  EXPECT_TRUE(fn2->params[0].is_array);
  EXPECT_EQ(fn2->params[0].array_rank, 1u);
  EXPECT_EQ(fn2->params[1].array_rank, 2u);
}

TEST(Parser, SimpleParStatement) {
  auto unit = parse_main("par (I) a[i] = 0;");
  auto* s = first_stmt(*unit);
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->kind, StmtKind::kUcConstruct);
  auto* p = static_cast<const UcConstructStmt*>(s);
  EXPECT_EQ(p->op, UcOp::kPar);
  EXPECT_FALSE(p->starred);
  ASSERT_EQ(p->index_sets.size(), 1u);
  EXPECT_EQ(p->index_sets[0], "I");
  ASSERT_EQ(p->blocks.size(), 1u);
  EXPECT_EQ(p->blocks[0].pred, nullptr);
}

TEST(Parser, ParWithStBlocksAndOthers) {
  auto unit = parse_main(
      "par (I)\n"
      "  st (i%2==1) a[i] = 0;\n"
      "  others a[i] = 1;");
  auto* p = static_cast<const UcConstructStmt*>(first_stmt(*unit));
  ASSERT_EQ(p->blocks.size(), 1u);
  EXPECT_NE(p->blocks[0].pred, nullptr);
  EXPECT_NE(p->others, nullptr);
}

TEST(Parser, ParMultipleStBlocks) {
  auto unit = parse_main(
      "*oneof (I)\n"
      "  st (i%2==0 && x[i]>x[i+1]) swap(x[i], x[i+1]);\n"
      "  st (i%2!=0 && x[i]>x[i+1]) swap(x[i], x[i+1]);");
  auto* p = static_cast<const UcConstructStmt*>(first_stmt(*unit));
  EXPECT_EQ(p->op, UcOp::kOneof);
  EXPECT_TRUE(p->starred);
  EXPECT_EQ(p->blocks.size(), 2u);
}

TEST(Parser, StarredConstructs) {
  for (const char* kw : {"par", "seq", "oneof", "solve"}) {
    auto unit = parse_main(std::string("*") + kw + " (I) a[i] = a[i];");
    auto* p = static_cast<const UcConstructStmt*>(first_stmt(*unit));
    ASSERT_NE(p, nullptr) << kw;
    EXPECT_TRUE(p->starred) << kw;
  }
}

TEST(Parser, MultiIndexSetConstruct) {
  auto unit = parse_main("par (I, J) st (i==j) d[i][j] = 0;");
  auto* p = static_cast<const UcConstructStmt*>(first_stmt(*unit));
  EXPECT_EQ(p->index_sets.size(), 2u);
}

TEST(Parser, NestedConstructsBindStToInnermost) {
  auto unit = parse_main(
      "par (I)\n"
      "  par (J) st (i < j) a[i] = j;\n");
  auto* outer = static_cast<const UcConstructStmt*>(first_stmt(*unit));
  ASSERT_EQ(outer->blocks.size(), 1u);
  EXPECT_EQ(outer->blocks[0].pred, nullptr);  // st went to the inner par
  auto* inner =
      static_cast<const UcConstructStmt*>(outer->blocks[0].body.get());
  ASSERT_EQ(inner->kind, StmtKind::kUcConstruct);
  EXPECT_NE(inner->blocks[0].pred, nullptr);
}

TEST(Parser, BracesForceOuterBinding) {
  auto unit = parse_main(
      "par (I)\n"
      "  st (i > 0) { par (J) a[j] = i; }\n"
      "  others a[i] = 0;");
  auto* outer = static_cast<const UcConstructStmt*>(first_stmt(*unit));
  EXPECT_NE(outer->blocks[0].pred, nullptr);
  EXPECT_NE(outer->others, nullptr);
}

TEST(Parser, SimpleReduction) {
  auto unit = parse_main("s = $+(I; i);");
  auto* es = static_cast<const ExprStmt*>(first_stmt(*unit));
  auto* assign = static_cast<const AssignExpr*>(es->expr.get());
  ASSERT_EQ(assign->rhs->kind, ExprKind::kReduce);
  auto* red = static_cast<const ReduceExpr*>(assign->rhs.get());
  EXPECT_EQ(red->op, ReduceKind::kAdd);
  ASSERT_EQ(red->arms.size(), 1u);
  EXPECT_EQ(red->arms[0].pred, nullptr);
}

TEST(Parser, ReductionWithPredicateAndOthers) {
  auto unit = parse_main(
      "abs_sum = $+(I st (a[i]>0) a[i] others -a[i]);");
  auto* es = static_cast<const ExprStmt*>(first_stmt(*unit));
  auto* red = static_cast<const ReduceExpr*>(
      static_cast<const AssignExpr*>(es->expr.get())->rhs.get());
  ASSERT_EQ(red->arms.size(), 1u);
  EXPECT_NE(red->arms[0].pred, nullptr);
  EXPECT_NE(red->others, nullptr);
}

TEST(Parser, AllReductionOperators) {
  for (auto [src, kind] :
       std::initializer_list<std::pair<const char*, ReduceKind>>{
           {"$+(I; i)", ReduceKind::kAdd},
           {"$*(I; i)", ReduceKind::kMul},
           {"$&&(I; i)", ReduceKind::kAnd},
           {"$||(I; i)", ReduceKind::kOr},
           {"$^(I; i)", ReduceKind::kXor},
           {"$>(I; i)", ReduceKind::kMax},
           {"$<(I; i)", ReduceKind::kMin},
           {"$,(I; i)", ReduceKind::kArb}}) {
    auto unit = parse_main(std::string("s = ") + src + ";");
    auto* es = static_cast<const ExprStmt*>(first_stmt(*unit));
    auto* red = static_cast<const ReduceExpr*>(
        static_cast<const AssignExpr*>(es->expr.get())->rhs.get());
    EXPECT_EQ(red->op, kind) << src;
  }
}

TEST(Parser, NestedReduction) {
  // last = $>(I st (a[i]==$>(J; a[j])) i);
  auto unit = parse_main("last = $>(I st (a[i] == $>(J; a[j])) i);");
  auto* es = static_cast<const ExprStmt*>(first_stmt(*unit));
  auto* red = static_cast<const ReduceExpr*>(
      static_cast<const AssignExpr*>(es->expr.get())->rhs.get());
  ASSERT_EQ(red->arms.size(), 1u);
  EXPECT_NE(red->arms[0].pred, nullptr);
}

TEST(Parser, CartesianReduction) {
  auto unit = parse_main("s = $+(I, J; a[i] * b[j]);");
  auto* es = static_cast<const ExprStmt*>(first_stmt(*unit));
  auto* red = static_cast<const ReduceExpr*>(
      static_cast<const AssignExpr*>(es->expr.get())->rhs.get());
  EXPECT_EQ(red->index_sets.size(), 2u);
}

TEST(Parser, MapSectionPermute) {
  auto unit = parse_ok(
      "int a[8], b[8];\n"
      "index_set I:i = {0..7};\n"
      "map (I) { permute (I) b[i+1] :- a[i]; }");
  auto* section =
      static_cast<MapSectionStmt*>(unit->program->items[2].decl.get());
  ASSERT_EQ(section->mappings.size(), 1u);
  EXPECT_EQ(section->mappings[0].kind, MapKind::kPermute);
  EXPECT_EQ(section->mappings[0].target_array, "b");
  EXPECT_EQ(section->mappings[0].source_array, "a");
}

TEST(Parser, MapSectionFoldAndCopy) {
  auto unit = parse_ok(
      "int a[8];\n"
      "index_set I:i = {0..7}, J:j = I;\n"
      "map (I) {\n"
      "  fold (I) a[7-i] :- a[i];\n"
      "  copy (J) a;\n"
      "}");
  auto* section =
      static_cast<MapSectionStmt*>(unit->program->items[2].decl.get());
  ASSERT_EQ(section->mappings.size(), 2u);
  EXPECT_EQ(section->mappings[0].kind, MapKind::kFold);
  EXPECT_EQ(section->mappings[1].kind, MapKind::kCopy);
  EXPECT_TRUE(section->mappings[1].source_array.empty());
}

TEST(Parser, ControlFlowStatements) {
  auto unit = parse_main(
      "if (x > 0) y = 1; else y = 2;\n"
      "while (y < 10) y = y + 1;\n"
      "for (k = 0; k < 4; k++) s += k;\n"
      "for (int q = 0; q < 4; q++) s += q;\n");
  auto* fn = unit->program->find_function("main");
  ASSERT_EQ(fn->body->body.size(), 4u);
  EXPECT_EQ(fn->body->body[0]->kind, StmtKind::kIf);
  EXPECT_EQ(fn->body->body[1]->kind, StmtKind::kWhile);
  EXPECT_EQ(fn->body->body[2]->kind, StmtKind::kFor);
  EXPECT_EQ(fn->body->body[3]->kind, StmtKind::kFor);
}

TEST(Parser, TernaryAndPrecedence) {
  auto unit = parse_main("x = a + b * c == d ? 1 : 2;");
  auto* es = static_cast<const ExprStmt*>(first_stmt(*unit));
  auto* assign = static_cast<const AssignExpr*>(es->expr.get());
  EXPECT_EQ(assign->rhs->kind, ExprKind::kTernary);
}

TEST(Parser, GotoRejected) {
  parse_err("void main() { goto done; }", "goto is not allowed");
}

TEST(Parser, PointerDeclRejected) {
  parse_err("void main() { int *p; }", "pointer");
}

TEST(Parser, PointerParamRejected) {
  parse_err("void f(int *p) { }", "pointer");
}

TEST(Parser, DerefRejected) {
  parse_err("void main() { x = *p + 1; }", "dereference is not allowed");
}

TEST(Parser, AddressOfRejected) {
  parse_err("void main() { y = &x; }", "address-of");
}

TEST(Parser, StarStatementRequiresConstruct) {
  parse_err("void main() { *x = 1; }", "par, seq, oneof or solve");
}

TEST(Parser, RecoversAfterErrorAndFindsNext) {
  auto unit = parse_only("test.uc",
                         "void main() { int @; x = 1; goto l; y = 2; }");
  EXPECT_TRUE(unit->diags.has_errors());
  EXPECT_GE(unit->diags.error_count(), 2u);  // both errors found
}

TEST(Parser, SolveStatement) {
  auto unit = parse_main(
      "solve (I, J)\n"
      "  a[i][j] = (i==0 || j==0) ? 1 : a[i-1][j]+a[i-1][j-1]+a[i][j-1];");
  auto* p = static_cast<const UcConstructStmt*>(first_stmt(*unit));
  EXPECT_EQ(p->op, UcOp::kSolve);
  EXPECT_EQ(p->index_sets.size(), 2u);
}

TEST(Parser, EmptyStatement) {
  auto unit = parse_main(";");
  EXPECT_EQ(first_stmt(*unit)->kind, StmtKind::kEmpty);
}

TEST(Parser, IndexSetDeclInsideFunction) {
  auto unit = parse_main("index_set L:l = {0..4};");
  EXPECT_EQ(first_stmt(*unit)->kind, StmtKind::kIndexSetDecl);
}

TEST(Parser, PostfixIncrementInPar) {
  auto unit = parse_main("par (I) cnt[i] = cnt[i] + 1;");
  EXPECT_EQ(first_stmt(*unit)->kind, StmtKind::kUcConstruct);
}

}  // namespace
}  // namespace uc::lang
