#include "uclang/sema.hpp"

#include <gtest/gtest.h>

#include "uclang/frontend.hpp"

namespace uc::lang {
namespace {

std::unique_ptr<CompilationUnit> sema_ok(const std::string& src) {
  auto unit = compile("test.uc", src);
  EXPECT_TRUE(unit->ok()) << unit->diags.render_all();
  return unit;
}

void sema_err(const std::string& src, const std::string& needle) {
  auto unit = compile("test.uc", src);
  ASSERT_FALSE(unit->ok()) << "expected a sema error for:\n" << src;
  EXPECT_NE(unit->diags.render_all().find(needle), std::string::npos)
      << unit->diags.render_all();
}

TEST(Sema, ResolvesIndexSetValues) {
  auto unit = sema_ok(
      "#define N 8\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = {4, 2, 9};\n"
      "void main() { }");
  auto* decl =
      static_cast<IndexSetDeclStmt*>(unit->program->items[0].decl.get());
  ASSERT_NE(decl->defs[0].symbol, nullptr);
  const auto& I = *decl->defs[0].symbol->index_set;
  ASSERT_EQ(I.values.size(), 8u);
  EXPECT_EQ(I.values.front(), 0);
  EXPECT_EQ(I.values.back(), 7);
  const auto& J = *decl->defs[1].symbol->index_set;
  EXPECT_EQ(J.values, I.values);
  const auto& K = *decl->defs[2].symbol->index_set;
  EXPECT_EQ(K.values, (std::vector<std::int64_t>{4, 2, 9}));
}

TEST(Sema, ConstIntDrivesDimensions) {
  auto unit = sema_ok(
      "const int N = 4;\n"
      "int a[N][N*2];\n"
      "void main() { }");
  auto* decl = static_cast<VarDeclStmt*>(unit->program->items[1].decl.get());
  EXPECT_EQ(decl->declarators[0].symbol->type.dims,
            (std::vector<std::int64_t>{4, 8}));
}

TEST(Sema, NonConstantIndexSetBoundRejected) {
  sema_err("int n;\nindex_set I:i = {0..n};\nvoid main() { }",
           "constant expression");
}

TEST(Sema, NonPositiveDimensionRejected) {
  sema_err("int a[0];\nvoid main() { }", "positive constant");
}

TEST(Sema, UnknownIdentifier) {
  sema_err("void main() { x = 1; }", "unknown identifier 'x'");
}

TEST(Sema, RedeclarationInSameScope) {
  sema_err("void main() { int a; float a; }", "redeclaration of 'a'");
}

TEST(Sema, ShadowingInNestedScopeOk) {
  sema_ok("int a;\nvoid main() { int a; { int a; a = 1; } }");
}

TEST(Sema, IndexElemOutsideConstructRejected) {
  sema_err(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "void main() { a[i] = 0; }",
      "outside a construct");
}

TEST(Sema, IndexElemInsideConstructOk) {
  sema_ok(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "void main() { par (I) a[i] = i; }");
}

TEST(Sema, IndexElemInsideReductionOk) {
  sema_ok(
      "index_set I:i = {0..3};\n"
      "int s;\n"
      "void main() { s = $+(I; i); }");
}

TEST(Sema, ConstructOverNonSetRejected) {
  sema_err("int a[4];\nvoid main() { par (a) a[0] = 1; }",
           "does not name an index set");
}

TEST(Sema, AssignToIndexElemRejected) {
  sema_err(
      "index_set I:i = {0..3};\n"
      "void main() { par (I) i = 0; }",
      "cannot assign to index element");
}

TEST(Sema, AssignToConstRejected) {
  sema_err("const int N = 2;\nvoid main() { N = 3; }", "const");
}

TEST(Sema, AssignToArrayWholeRejected) {
  sema_err("int a[4], b[4];\nvoid main() { a = b; }",
           "array as a whole");
}

TEST(Sema, SubscriptRankChecked) {
  sema_err("int d[4][4];\nindex_set I:i = {0..3};\n"
           "void main() { par (I) d[i] = 0; }",
           "rank 2 but 1 subscripts");
}

TEST(Sema, SubscriptNonArrayRejected) {
  sema_err("int x;\nvoid main() { x[0] = 1; }", "not an array");
}

TEST(Sema, CallArgCountChecked) {
  sema_err("int f(int x) { return x; }\nvoid main() { f(1, 2); }",
           "expects 1 argument");
}

TEST(Sema, ArrayArgumentByName) {
  sema_ok(
      "int total(int v[]) { return v[0]; }\n"
      "int a[4];\n"
      "int s;\n"
      "void main() { s = total(a); }");
}

TEST(Sema, ArrayArgumentRankMismatch) {
  sema_err(
      "int total(int v[][]) { return v[0][0]; }\n"
      "int a[4];\n"
      "void main() { total(a); }",
      "rank 2");
}

TEST(Sema, BuiltinArgChecks) {
  sema_ok("void main() { int x; x = power2(3) + abs(-2) + rand() % 5; }");
  sema_err("void main() { power2(); }", "expects 1 argument");
  sema_err("void main() { rand(7); }", "expects 0 argument");
}

TEST(Sema, SwapRequiresLvalues) {
  sema_ok("int a[4];\nvoid main() { swap(a[0], a[1]); }");
  sema_err("void main() { int x; swap(x, 3); }", "not assignable");
}

TEST(Sema, VoidFunctionReturnValueRejected) {
  sema_err("void f() { return 1; }\nvoid main() { }",
           "cannot return a value");
}

TEST(Sema, NonVoidFunctionBareReturnRejected) {
  sema_err("int f() { return; }\nvoid main() { }", "must return a value");
}

TEST(Sema, BreakOutsideLoopRejected) {
  sema_err("void main() { break; }", "outside a loop");
}

TEST(Sema, ModuloOnFloatRejected) {
  sema_err("void main() { float x; x = 1.5 % 2; }", "integer operands");
}

TEST(Sema, TypePromotionIntFloat) {
  auto unit = sema_ok("float f;\nvoid main() { f = 1 + 2.5; }");
  (void)unit;
}

TEST(Sema, ParallelFunctionCalledFromParRejected) {
  sema_err(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "void helper() { par (I) a[i] = 0; }\n"
      "void main() { par (I) st (i == 0) helper(); }",
      "cannot be called from inside a parallel context");
}

TEST(Sema, ScalarFunctionCalledFromParOk) {
  sema_ok(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "int twice(int x) { return 2 * x; }\n"
      "void main() { par (I) a[i] = twice(i); }");
}

TEST(Sema, FunctionsCallableBeforeDefinition) {
  sema_ok(
      "int s;\n"
      "void main() { s = later(3); }\n"
      "int later(int x) { return x + 1; }");
}

TEST(Sema, SolveBodyMustBeAssignments) {
  sema_err(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "void main() { solve (I) if (i > 0) a[i] = 1; }",
      "only assignment statements");
}

TEST(Sema, SolveCompoundAssignRejected) {
  sema_err(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "void main() { solve (I) a[i] += 1; }",
      "plain '='");
}

TEST(Sema, SolveDoubleAssignmentRejected) {
  sema_err(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "void main() { solve (I) { a[i] = 1; a[i] = 2; } }",
      "more than one statement");
}

TEST(Sema, StarSolveMayReassign) {
  sema_ok(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "void main() { *solve (I) { a[i] = 1; a[i] = 1; } }");
}

TEST(Sema, ArrayDeclInsideParRejected) {
  sema_err(
      "index_set I:i = {0..3};\n"
      "void main() { par (I) { int tmp[4]; tmp[0] = 1; } }",
      "inside parallel constructs");
}

TEST(Sema, PerLaneScalarDeclOk) {
  sema_ok(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "void main() { par (I) { int rank; rank = i; a[rank] = i; } }");
}

TEST(Sema, MapSectionResolvesArrays) {
  sema_ok(
      "int a[8], b[8];\n"
      "index_set I:i = {0..7};\n"
      "map (I) { permute (I) b[i+1] :- a[i]; }\n"
      "void main() { }");
}

TEST(Sema, MapSectionUnknownArray) {
  sema_err(
      "index_set I:i = {0..7};\n"
      "map (I) { permute (I) b[i] :- b[i]; }\n"
      "void main() { }",
      "unknown array 'b'");
}

TEST(Sema, FoldRequiresSameArray) {
  sema_err(
      "int a[8], b[8];\n"
      "index_set I:i = {0..7};\n"
      "map (I) { fold (I) b[7-i] :- a[i]; }\n"
      "void main() { }",
      "relative to itself");
}

TEST(Sema, CopyTakesBareArray) {
  sema_ok(
      "int a[8];\n"
      "index_set I:i = {0..7}, J:j = I;\n"
      "map (I) { copy (J) a; }\n"
      "void main() { }");
}

TEST(Sema, ReductionOverUnknownSet) {
  sema_err("int s;\nvoid main() { s = $+(Q; 1); }",
           "does not name an index set");
}

TEST(Sema, XorReductionOnFloatRejected) {
  sema_err(
      "index_set I:i = {0..3};\n"
      "float f[4];\n"
      "int s;\n"
      "void main() { s = $^(I; f[i]); }",
      "integer operands");
}

TEST(Sema, InfIsKnownConstant) {
  sema_ok("int x;\nvoid main() { x = INF; if (x == INF) x = 0; }");
}

TEST(Sema, EmptyIndexSetWarns) {
  auto unit = compile("t.uc", "index_set I:i = {5..2};\nvoid main() { }");
  EXPECT_TRUE(unit->ok());
  bool warned = false;
  for (const auto& d : unit->diags.diagnostics()) {
    warned = warned || d.severity == support::Severity::kWarning;
  }
  EXPECT_TRUE(warned);
}

TEST(Sema, IndexSetShadowingAcrossScopes) {
  // Paper §3.4: reuse of an index set in a nested construct rebinds the
  // element; redeclaration in an inner scope hides the outer set.
  sema_ok(
      "index_set I:i = {0..9};\n"
      "int a[10];\n"
      "void main() {\n"
      "  par (I) st (i%2==0) a[i] = $+(I; i);\n"
      "}");
}

TEST(Sema, PaperFigure1Compiles) {
  sema_ok(
      "#define N 10\n"
      "index_set I:i = {0..9}, J:j = I;\n"
      "int s, mn, first, arb, last, a[N];\n"
      "float avg;\n"
      "void main() {\n"
      "  s = $+(I; i);\n"
      "  avg = s / 10.0;\n"
      "  mn = $<(I; a[i]);\n"
      "  first = $<(I st (a[i]==mn) i);\n"
      "  arb = $,(I st (a[i]==mn) i);\n"
      "  last = $>(I st (a[i] == $>(J; a[j])) i);\n"
      "}");
}

TEST(Sema, PaperRanksortCompiles) {
  sema_ok(
      "#define N 16\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N];\n"
      "void main() {\n"
      "  par (I)\n"
      "  { int rank;\n"
      "    rank = $+(J st (a[j]<a[i]) 1);\n"
      "    a[rank] = a[i];\n"
      "  }\n"
      "}");
}

TEST(Sema, PaperPrefixSumCompiles) {
  sema_ok(
      "#define N 16\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], cnt[N];\n"
      "void main() {\n"
      "  par (I) { a[i] = i; cnt[i] = 0; }\n"
      "  *par (I) st (i >= power2(cnt[i]))\n"
      "  { a[i] = a[i] + a[i-power2(cnt[i])];\n"
      "    cnt[i] = cnt[i] + 1;\n"
      "  }\n"
      "}");
}

TEST(Sema, PaperShortestPathOn2Compiles) {
  sema_ok(
      "#define N 8\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "int d[N][N];\n"
      "void main() {\n"
      "  par (I, J) st (i==j) d[i][j] = 0;\n"
      "    others d[i][j] = rand()%N + 1;\n"
      "  seq (K)\n"
      "    par (I, J)\n"
      "      st (d[i][k]+d[k][j] < d[i][j]) d[i][j] = d[i][k]+d[k][j];\n"
      "}");
}

TEST(Sema, PaperShortestPathOn3Compiles) {
  sema_ok(
      "#define N 8\n"
      "#define LOGN 3\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "index_set L:l = {0..LOGN-1};\n"
      "int d[N][N];\n"
      "void main() {\n"
      "  seq (L)\n"
      "    par (I, J)\n"
      "      d[i][j] = $<(K; d[i][k]+d[k][j]);\n"
      "}");
}

TEST(Sema, PaperWavefrontSolveCompiles) {
  sema_ok(
      "#define N 8\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N][N];\n"
      "void main() {\n"
      "  solve (I, J)\n"
      "    a[i][j] = (i==0 || j==0) ? 1\n"
      "      : a[i-1][j]+a[i-1][j-1]+a[i][j-1];\n"
      "}");
}

TEST(Sema, PaperOddEvenSortCompiles) {
  sema_ok(
      "#define N 16\n"
      "int x[N];\n"
      "index_set I:i = {0..N-2};\n"
      "void main() {\n"
      "  *oneof (I)\n"
      "    st (i%2==0 && x[i]>x[i+1]) swap(x[i], x[i+1]);\n"
      "    st (i%2!=0 && x[i]>x[i+1]) swap(x[i], x[i+1]);\n"
      "}");
}

TEST(Sema, PaperHistogramCompiles) {
  sema_ok(
      "#define N 32\n"
      "int samples[N];\n"
      "int count[10];\n"
      "index_set I:i = {0..N-1}, J:j = {0..9};\n"
      "void main() {\n"
      "  par (J)\n"
      "    count[j] = $+(I st (samples[i]==j) 1);\n"
      "}");
}

}  // namespace
}  // namespace uc::lang
