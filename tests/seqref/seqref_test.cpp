// The sequential references must be trustworthy oracles: cross-check the
// two shortest-path algorithms against each other, BFS against the
// relaxation baseline, and the small utilities against hand results.
#include "seqref/seqref.hpp"

#include <gtest/gtest.h>

namespace uc::seqref {
namespace {

constexpr std::int64_t kInf = std::int64_t{1} << 40;

TEST(Seqref, FloydWarshallTinyHandCase) {
  // 0 ->(1) 1 ->(1) 2, direct 0->2 costs 5.
  std::vector<std::int64_t> d = {0, 1, 5,
                                 9, 0, 1,
                                 9, 9, 0};
  floyd_warshall(d, 3);
  EXPECT_EQ(d[2], 2);  // via node 1
  EXPECT_EQ(d[3 * 1 + 2], 1);
  EXPECT_EQ(d[0], 0);
}

class ClosureAgreeP : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ClosureAgreeP, FloydAndMinPlusAgree) {
  support::SplitMix64 rng(GetParam());
  const std::int64_t n = 3 + static_cast<std::int64_t>(rng.next_below(14));
  auto graph = random_digraph(n, rng);
  auto a = graph;
  auto b = graph;
  floyd_warshall(a, n);
  min_plus_closure(b, n);
  EXPECT_EQ(a, b) << "n=" << n << " seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureAgreeP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Seqref, RandomDigraphShape) {
  support::SplitMix64 rng(9);
  auto g = random_digraph(6, rng);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(g[static_cast<std::size_t>(i * 6 + i)], 0);
    for (int j = 0; j < 6; ++j) {
      if (i == j) continue;
      auto w = g[static_cast<std::size_t>(i * 6 + j)];
      EXPECT_GE(w, 1);
      EXPECT_LE(w, 6);
    }
  }
}

TEST(Seqref, GridBfsOpenGrid) {
  std::vector<std::uint8_t> wall(16, 0);
  auto d = grid_bfs(4, 4, wall, kInf, nullptr);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[15], 6);  // manhattan distance
  EXPECT_EQ(d[5], 2);
}

TEST(Seqref, GridBfsWalledOffCellIsInf) {
  // Wall seals the bottom-right corner cell.
  std::vector<std::uint8_t> wall(16, 0);
  wall[11] = 1;  // (2,3)
  wall[14] = 1;  // (3,2)
  auto d = grid_bfs(4, 4, wall, kInf, nullptr);
  EXPECT_EQ(d[15], kInf);
}

TEST(Seqref, GridRelaxMatchesBfsOnRandomWalls) {
  support::SplitMix64 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t rows = 9, cols = 7;
    std::vector<std::uint8_t> wall(static_cast<std::size_t>(rows * cols), 0);
    for (auto& w : wall) w = rng.next_below(5) == 0 ? 1 : 0;
    wall[0] = 0;  // keep the goal open
    auto bfs = grid_bfs(rows, cols, wall, kInf, nullptr);
    auto relax = grid_relax_sequential(rows, cols, wall, kInf, nullptr);
    for (std::size_t k = 0; k < bfs.size(); ++k) {
      if (wall[k] != 0) continue;
      EXPECT_EQ(relax[k], bfs[k]) << "trial " << trial << " cell " << k;
    }
  }
}

TEST(Seqref, OpsCountersPopulated) {
  std::vector<std::uint8_t> wall(64, 0);
  std::uint64_t bfs_ops = 0, relax_ops = 0;
  grid_bfs(8, 8, wall, kInf, &bfs_ops);
  grid_relax_sequential(8, 8, wall, kInf, &relax_ops);
  EXPECT_GT(bfs_ops, 0u);
  // The relaxation does asymptotically more elementary work than BFS.
  EXPECT_GT(relax_ops, bfs_ops);
}

TEST(Seqref, PrefixSumsAndSorted) {
  EXPECT_EQ(prefix_sums({1, 2, 3, 4}), (std::vector<std::int64_t>{1, 3, 6, 10}));
  EXPECT_EQ(prefix_sums({}), (std::vector<std::int64_t>{}));
  EXPECT_EQ(sorted({3, 1, 2}), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(Seqref, WavefrontBoundaryAndInterior) {
  auto a = wavefront(4);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[3], 1);             // first row all 1
  EXPECT_EQ(a[4 * 1 + 1], 3);     // 1+1+1
  EXPECT_EQ(a[4 * 2 + 2], 13);    // known wavefront value
}

TEST(Seqref, PaperObstacleLeavesColumnZeroOpen) {
  for (std::int64_t rows : {8, 12, 16}) {
    auto wall = paper_obstacle(rows, rows);
    for (std::int64_t i = 0; i < rows; ++i) {
      EXPECT_EQ(wall[static_cast<std::size_t>(i * rows)], 0);
    }
    // And the band really blocks something.
    std::int64_t blocked = 0;
    for (auto w : wall) blocked += w;
    EXPECT_GT(blocked, 0);
  }
}

}  // namespace
}  // namespace uc::seqref
