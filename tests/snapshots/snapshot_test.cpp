// Golden snapshot tests for the ucc static-analysis CLI: `ucc analyze`
// and `ucc optimize-map` output is captured over the full programs/
// corpus and compared byte-for-byte against checked-in goldens.
//
// The commands run with the programs directory as the working directory,
// so diagnostics carry relative paths and the goldens are stable across
// checkouts.  Regenerate after an intentional output change with:
//
//   UC_UPDATE_GOLDENS=1 ./build/tests/snapshots/test_snapshots
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CommandResult run_command(const std::string& cmd) {
  CommandResult result;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string ucc() { return UCC_BINARY; }

// Runs ucc from inside programs/, so file names in the output stay
// relative.
CommandResult run_in_programs(const std::string& args) {
  return run_command("cd " + std::string(PROGRAMS_DIR) + " && " + ucc() +
                     " " + args);
}

bool updating() { return std::getenv("UC_UPDATE_GOLDENS") != nullptr; }

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void check_snapshot(const std::string& snapshot_name,
                    const std::string& actual) {
  const fs::path golden = fs::path(SNAPSHOT_GOLDEN_DIR) / snapshot_name;
  if (updating()) {
    std::ofstream out(golden, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(out)) << "cannot write " << golden;
    out << actual;
    return;
  }
  ASSERT_TRUE(fs::exists(golden))
      << golden << " missing; run with UC_UPDATE_GOLDENS=1 to create it";
  EXPECT_EQ(actual, slurp(golden))
      << "snapshot drift in " << snapshot_name
      << "; rerun with UC_UPDATE_GOLDENS=1 if the change is intentional";
}

std::vector<std::string> corpus() {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(PROGRAMS_DIR)) {
    if (entry.path().extension() == ".uc") {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

class SnapshotP : public ::testing::TestWithParam<std::string> {};

TEST_P(SnapshotP, AnalyzeOutputMatchesGolden) {
  const std::string name = GetParam();
  auto r = run_in_programs("analyze " + name);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  check_snapshot(fs::path(name).stem().string() + ".analyze.txt", r.output);
}

TEST_P(SnapshotP, OptimizeMapOutputMatchesGolden) {
  const std::string name = GetParam();
  auto r = run_in_programs("optimize-map " + name);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  check_snapshot(fs::path(name).stem().string() + ".optmap.txt", r.output);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SnapshotP, ::testing::ValuesIn(corpus()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      auto name = fs::path(info.param).stem().string();
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Snapshot, CorpusIsNonEmpty) { EXPECT_GE(corpus().size(), 8u); }

// --- fail-closed negatives -----------------------------------------------

// A shift permute would collide two elements on one processor while a
// parallel step writes both: the dependence pass must reject it, and
// optimize-map must never emit an illegal mapping — here nothing legal
// improves the program either, so it keeps the current mappings.
TEST(Snapshot, IllegalShiftPermuteIsRejectedFailClosed) {
  const std::string path = "/tmp/uc_snapshot_illegal_shift.uc";
  {
    std::ofstream out(path);
    out << "const int N = 8;\n"
           "index_set I:i = {0..N-1};\n"
           "int a[N], b[N];\n"
           "void main() {\n"
           "  par (I) a[i] = i;\n"
           "  par (I) st (i < N-1) b[i] = a[i+1];\n"
           "  print(\"b[0] = %d\\n\", b[0]);\n"
           "}\n";
  }
  auto r = run_command(ucc() + " optimize-map " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("chosen: permute"), std::string::npos)
      << "illegal shift permute escaped fail-closed rejection:\n"
      << r.output;
  EXPECT_NE(r.output.find("keep current mappings"), std::string::npos)
      << r.output;
  std::remove(path.c_str());
}

// Write-write interference across a fold: the candidate predicts best but
// must surface as a blocked UC-A302 note, never as a chosen mapping.
TEST(Snapshot, BlockedFoldSurfacesAsA302NotAsAMapping) {
  const std::string path = "/tmp/uc_snapshot_blocked_fold.uc";
  {
    std::ofstream out(path);
    out << "const int N = 8;\n"
           "index_set I:i = {0..N-1}, H:h = {0..N/2-1}, T:t = {0..31};\n"
           "int a[N], out[N/2];\n"
           "void main() {\n"
           "  par (H) { a[h] = h; a[N-1-h] = h + 1; }\n"
           "  seq (T) {\n"
           "    par (H) out[h] = out[h] + a[N-1-h];\n"
           "  }\n"
           "  print(\"out[0] = %d\\n\", out[0]);\n"
           "}\n";
  }
  auto analyze = run_command(ucc() + " analyze " + path);
  EXPECT_EQ(analyze.exit_code, 0) << analyze.output;
  EXPECT_NE(analyze.output.find("UC-A302"), std::string::npos)
      << analyze.output;
  EXPECT_NE(analyze.output.find("blocked by a dependence"),
            std::string::npos)
      << analyze.output;

  auto opt = run_command(ucc() + " optimize-map " + path);
  EXPECT_EQ(opt.exit_code, 0) << opt.output;
  EXPECT_EQ(opt.output.find("chosen: fold"), std::string::npos)
      << "blocked fold escaped fail-closed rejection:\n"
      << opt.output;
  std::remove(path.c_str());
}

// --emit on a program with no improving mapping must fail loudly instead
// of writing a file that silently equals the input.
TEST(Snapshot, EmitWithoutImprovementFails) {
  const std::string path = "/tmp/uc_snapshot_tiny.uc";
  {
    std::ofstream out(path);
    out << "const int N = 4;\n"
           "index_set I:i = {0..N-1};\n"
           "int a[N];\n"
           "void main() {\n"
           "  par (I) a[i] = i;\n"
           "}\n";
  }
  auto r = run_command(ucc() + " optimize-map " + path +
                       " --emit=/tmp/uc_snapshot_tiny_opt.uc");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("nothing to emit"), std::string::npos)
      << r.output;
  std::remove(path.c_str());
}

// The emitted rewrite of fig6 must run standalone, reproduce the golden
// output, and beat the original program's modeled cycles.
TEST(Snapshot, EmittedFig6RunsFasterWithIdenticalOutput) {
  const std::string opt_path = "/tmp/uc_snapshot_fig6_opt.uc";
  auto emit = run_in_programs("optimize-map fig6_shortest_path_on2.uc "
                              "--emit=" +
                              opt_path);
  ASSERT_EQ(emit.exit_code, 0) << emit.output;

  auto base = run_in_programs("run fig6_shortest_path_on2.uc --stats");
  auto opt = run_command(ucc() + " run " + opt_path + " --stats");
  ASSERT_EQ(base.exit_code, 0) << base.output;
  ASSERT_EQ(opt.exit_code, 0) << opt.output;

  // Same program output (the --stats line differs by design).
  EXPECT_NE(base.output.find("d[0][N-1] = 4"), std::string::npos);
  EXPECT_NE(opt.output.find("d[0][N-1] = 4"), std::string::npos);

  auto cycles_of = [](const std::string& out) -> long long {
    auto pos = out.find("cycles=");
    if (pos == std::string::npos) return -1;
    return std::atoll(out.c_str() + pos + 7);
  };
  const long long base_cycles = cycles_of(base.output);
  const long long opt_cycles = cycles_of(opt.output);
  ASSERT_GT(base_cycles, 0);
  ASSERT_GT(opt_cycles, 0);
  EXPECT_LT(opt_cycles, base_cycles);
}

}  // namespace
