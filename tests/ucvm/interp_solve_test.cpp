// The solve / *solve constructs (paper §3.6).
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

RunResult run(const std::string& src) { return run_uc(src); }

TEST(InterpSolve, WavefrontFromPaper) {
  // a[0][j] = a[i][0] = 1; a[i][j] = a[i-1][j] + a[i-1][j-1] + a[i][j-1].
  auto r = run(
      "#define N 6\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N][N];\n"
      "void main() {\n"
      "  solve (I, J)\n"
      "    a[i][j] = (i==0 || j==0) ? 1\n"
      "      : a[i-1][j] + a[i-1][j-1] + a[i][j-1];\n"
      "}");
  // Reference computation.
  std::int64_t ref[6][6];
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      ref[i][j] = (i == 0 || j == 0)
                      ? 1
                      : ref[i - 1][j] + ref[i - 1][j - 1] + ref[i][j - 1];
    }
  }
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_EQ(r.global_element("a", {i, j}).as_int(), ref[i][j])
          << i << "," << j;
    }
  }
}

TEST(InterpSolve, OrderIndependentOfStatementOrder) {
  // A chain a[k] = a[k-1]+1 expressed backwards still resolves.
  auto r = run(
      "index_set I:i = {1..7};\n"
      "int a[8];\n"
      "void main() {\n"
      "  a[0] = 10;\n"
      "  solve (I) a[i] = a[i-1] + 1;\n"
      "}");
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(r.global_element("a", {k}).as_int(), 10 + k);
  }
}

TEST(InterpSolve, ReadsNonTargetArraysFreely) {
  auto r = run(
      "index_set I:i = {0..4};\n"
      "int src[5], dst[5];\n"
      "void main() {\n"
      "  par (I) src[i] = i * 2;\n"
      "  solve (I) dst[i] = (i==0) ? src[0] : dst[i-1] + src[i];\n"
      "}");
  EXPECT_EQ(r.global_element("dst", {4}).as_int(), 0 + 2 + 4 + 6 + 8);
}

TEST(InterpSolve, CircularDependencyReported) {
  EXPECT_THROW(run("index_set I:i = {0..3};\n"
                   "int a[4];\n"
                   "void main() { solve (I) a[i] = a[(i+1) % 4] + 1; }"),
               support::UcRuntimeError);
}

TEST(InterpSolve, TwoArraysInterleavedDependencies) {
  // Proper set across two arrays: u depends on v and vice versa, acyclic
  // by index.
  auto r = run(
      "index_set I:i = {0..5};\n"
      "int u[6], v[6];\n"
      "void main() {\n"
      "  solve (I) {\n"
      "    u[i] = (i==0) ? 1 : v[i-1] * 2;\n"
      "    v[i] = u[i] + 1;\n"
      "  }\n"
      "}");
  // u0=1 v0=2 u1=4 v1=5 u2=10 v2=11 u3=22 ...
  EXPECT_EQ(r.global_element("u", {0}).as_int(), 1);
  EXPECT_EQ(r.global_element("v", {0}).as_int(), 2);
  EXPECT_EQ(r.global_element("u", {3}).as_int(), 22);
  EXPECT_EQ(r.global_element("v", {5}).as_int(), 95);
}

TEST(InterpSolve, StarSolveShortestPathFromPaper) {
  auto r = run(
      "#define N 6\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "int dist[N][N];\n"
      "void main() {\n"
      "  par (I, J) st (i==j) dist[i][j] = 0;\n"
      "    others dist[i][j] = (j == (i+1) % N) ? 1 : N + 2;\n"
      "  *solve (I, J)\n"
      "    dist[i][j] = $<(K; dist[i][k] + dist[k][j]);\n"
      "}");
  // Ring graph: dist(i,j) = min((j-i) mod N hops·1, direct N+2, ...) —
  // going around the ring costs (j-i) mod N.
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      const std::int64_t hops = (j - i + 6) % 6;
      EXPECT_EQ(r.global_element("dist", {i, j}).as_int(), hops)
          << i << "," << j;
    }
  }
}

TEST(InterpSolve, StarSolveReachesFixedPointOnce) {
  // Already-stable state: body runs, nothing changes, loop ends after one
  // verification round.
  auto r = run(
      "index_set I:i = {0..3};\n"
      "int a[4];\n"
      "void main() {\n"
      "  par (I) a[i] = 5;\n"
      "  *solve (I) a[i] = 5;\n"
      "}");
  EXPECT_EQ(r.global_element("a", {2}).as_int(), 5);
}

TEST(InterpSolve, StarSolveCostsMoreThanHandCodedLoop) {
  // E6: *solve pays for saving/comparing state each round.
  const char* star_solve =
      "#define N 8\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "int d[N][N];\n"
      "void main() {\n"
      "  par (I, J) st (i==j) d[i][j] = 0;\n"
      "    others d[i][j] = (j == (i+1) % N) ? 1 : 99;\n"
      "  *solve (I, J) d[i][j] = $<(K; d[i][k] + d[k][j]);\n"
      "}";
  const char* seq_par =
      "#define N 8\n"
      "#define LOGN 3\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I, L:l = {0..LOGN-1};\n"
      "int d[N][N];\n"
      "void main() {\n"
      "  par (I, J) st (i==j) d[i][j] = 0;\n"
      "    others d[i][j] = (j == (i+1) % N) ? 1 : 99;\n"
      "  seq (L) par (I, J) d[i][j] = $<(K; d[i][k] + d[k][j]);\n"
      "}";
  auto rs = run(star_solve);
  auto rp = run(seq_par);
  // Same answer...
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(rs.global_element("d", {i, j}).as_int(),
                rp.global_element("d", {i, j}).as_int());
    }
  }
  // ...but *solve costs more (it cannot know when to stop without state
  // saving + an extra verification sweep).
  EXPECT_GT(rs.stats().cycles, rp.stats().cycles);
}

TEST(InterpSolve, SolveWithPredicatedBlocks) {
  auto r = run(
      "index_set I:i = {0..7};\n"
      "int a[8];\n"
      "void main() {\n"
      "  solve (I)\n"
      "    st (i == 0) a[i] = 100;\n"
      "    st (i > 0) a[i] = a[i-1] + 1;\n"
      "}");
  EXPECT_EQ(r.global_element("a", {7}).as_int(), 107);
}

TEST(InterpSolve, IterationLimitGuards) {
  ExecOptions opts;
  opts.max_iterations = 4;
  EXPECT_THROW(
      run_uc("index_set I:i = {0..3};\nint a[4];\n"
             "void main() { *solve (I) a[i] = a[i] + 1; }",
             {}, opts),
      support::UcRuntimeError);
}

}  // namespace
}  // namespace uc::vm
