// Sharded-execution differential suite (docs/SHARDING.md): splitting the
// VP set across shards is a host-only knob, so for every shard count the
// output text, every named global array, and every cost-model counter —
// including modeled cycles — must be bit-identical to the unsharded
// (--shards=1) machine, in every execution engine (walk, bytecode, native
// compiled kernels), fused or not, and with fault injection +
// checkpointing enabled.  On a host without a working C++ toolchain the
// native configurations transparently degrade to bytecode and the
// assertions still hold.
//
// Shard counts cover the interesting partitions: 2 (one boundary), 4
// (typical), and 7 (odd count that leaves a short trailing block and, on
// small geometries, empty trailing shards).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cm/fault.hpp"
#include "uc/paper_programs.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

constexpr unsigned kShardCounts[] = {2, 4, 7};

struct Config {
  ExecEngine engine = ExecEngine::kWalk;
  bool fuse = false;
  const char* faults = nullptr;      // fault spec, nullptr = off
  std::uint64_t checkpoint_every = 0;
};

RunResult run_sharded(const std::string& src, unsigned shards,
                      const Config& cfg) {
  cm::MachineOptions mopts;
  mopts.host_threads = 4;
  mopts.shards = shards;
  if (cfg.faults != nullptr) mopts.faults = cm::parse_fault_spec(cfg.faults);
  ExecOptions eopts;
  eopts.engine = cfg.engine;
  eopts.fuse = cfg.fuse;
  eopts.checkpoint_every = cfg.checkpoint_every;
  return run_uc(src, mopts, eopts);
}

// Field-by-field so a divergence pinpoints which counter broke; covers the
// robustness and plan-cache counters too — a sharded run that drew a
// different fault schedule or missed a cached plan is a real bug even when
// the output happens to match.
void expect_stats_equal(const cm::CostStats& a, const cm::CostStats& b,
                        const std::string& label) {
  EXPECT_EQ(a.cycles, b.cycles) << label;
  EXPECT_EQ(a.vector_ops, b.vector_ops) << label;
  EXPECT_EQ(a.news_ops, b.news_ops) << label;
  EXPECT_EQ(a.router_ops, b.router_ops) << label;
  EXPECT_EQ(a.router_messages, b.router_messages) << label;
  EXPECT_EQ(a.reductions, b.reductions) << label;
  EXPECT_EQ(a.global_ors, b.global_ors) << label;
  EXPECT_EQ(a.broadcasts, b.broadcasts) << label;
  EXPECT_EQ(a.frontend_ops, b.frontend_ops) << label;
  EXPECT_EQ(a.faults, b.faults) << label;
  EXPECT_EQ(a.retries, b.retries) << label;
  EXPECT_EQ(a.rollbacks, b.rollbacks) << label;
  EXPECT_EQ(a.checkpoints, b.checkpoints) << label;
  EXPECT_EQ(a.plan_hits, b.plan_hits) << label;
}

void expect_shard_parity(const std::string& src, const Config& cfg,
                         const std::vector<std::string>& globals = {}) {
  const RunResult base = run_sharded(src, 1, cfg);
  for (const unsigned shards : kShardCounts) {
    const std::string label = "shards=" + std::to_string(shards);
    const RunResult sharded = run_sharded(src, shards, cfg);
    EXPECT_EQ(base.output(), sharded.output()) << label;
    expect_stats_equal(base.stats(), sharded.stats(), label);
    for (const auto& name : globals) {
      const auto want = base.global_array(name);
      const auto got = sharded.global_array(name);
      ASSERT_EQ(want.size(), got.size()) << label << " " << name;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_TRUE(want[i] == got[i])
            << label << " " << name << "[" << i << "]";
      }
    }
  }
}

// Every engine configuration a user can select.
const Config kWalk{ExecEngine::kWalk, false, nullptr, 0};
const Config kBytecode{ExecEngine::kBytecode, false, nullptr, 0};
const Config kFused{ExecEngine::kBytecode, true, nullptr, 0};
const Config kNative{ExecEngine::kNative, true, nullptr, 0};

// ---- clean runs, full paper corpus ----

TEST(ShardParity, Fig6ShortestPathOn2) {
  const auto src = papers::shortest_path_on2(12);
  expect_shard_parity(src, kWalk, {"d"});
  expect_shard_parity(src, kBytecode, {"d"});
  expect_shard_parity(src, kFused, {"d"});
  expect_shard_parity(src, kNative, {"d"});
}

TEST(ShardParity, Fig7ShortestPathOn3) {
  const auto src = papers::shortest_path_on3(10);
  expect_shard_parity(src, kWalk, {"d"});
  expect_shard_parity(src, kFused, {"d"});
  expect_shard_parity(src, kNative, {"d"});
}

TEST(ShardParity, Fig8GridObstacle) {
  const auto src = papers::grid_shortest_path(10, 10, true);
  expect_shard_parity(src, kWalk, {"d"});
  expect_shard_parity(src, kBytecode, {"d"});
  expect_shard_parity(src, kFused, {"d"});
  expect_shard_parity(src, kNative, {"d"});
}

TEST(ShardParity, StarSolveShortestPath) {
  // *solve runs through the walk fallback inside the bytecode engine.
  const auto src = papers::shortest_path_star_solve(10);
  expect_shard_parity(src, kWalk, {"d"});
  expect_shard_parity(src, kFused, {"d"});
}

TEST(ShardParity, PrefixSums) {
  // Scans: the 3-phase sharded scan must match the serial scan bitwise.
  expect_shard_parity(papers::prefix_sums_star_par(300), kWalk, {"a"});
  expect_shard_parity(papers::prefix_sums_star_par(300), kFused, {"a"});
  expect_shard_parity(papers::prefix_sums_seq_par(64), kFused, {"a"});
}

TEST(ShardParity, Ranksort) {
  // Router-heavy: data-dependent addresses build transient exchange
  // schedules every instruction.
  const auto src = papers::ranksort(48);
  expect_shard_parity(src, kWalk);
  expect_shard_parity(src, kFused);
}

TEST(ShardParity, OddEvenSort) {
  const auto src = papers::odd_even_sort(40);
  expect_shard_parity(src, kWalk);
  expect_shard_parity(src, kFused);
}

TEST(ShardParity, Wavefront) {
  const auto src = papers::wavefront(10);
  expect_shard_parity(src, kWalk);
  expect_shard_parity(src, kFused);
}

TEST(ShardParity, Histogram) {
  const auto src = papers::histogram(400);
  expect_shard_parity(src, kWalk);
  expect_shard_parity(src, kFused);
}

TEST(ShardParity, ShiftedSumWithMapSection) {
  // The map section remaps the layout mid-run, bumping the layout epoch;
  // cached exchange schedules from the old layout must not replay.
  expect_shard_parity(papers::shifted_sum(320, 3, true), kWalk, {"a"});
  expect_shard_parity(papers::shifted_sum(320, 3, true), kFused, {"a"});
  expect_shard_parity(papers::shifted_sum(320, 3, false), kFused, {"a"});
}

TEST(ShardParity, ReversalWithMapSection) {
  expect_shard_parity(papers::reversal(300, 2, true), kFused, {"a"});
}

// ---- under fault injection and checkpointing ----

// Hits every protected instruction class; figure-sized workloads draw a
// healthy number of faults at these rates (see fault_recovery_test.cpp).
constexpr const char* kFaultSpec =
    "router:p=2e-4;news:p=2e-4;reduce:p=2e-4;memory:p=1e-3,"
    "seed=7,retries=2,backoff=32,detect=16";

TEST(ShardParity, Fig6UnderFaultsAndCheckpoints) {
  const auto src = papers::shortest_path_on2(8);
  for (const auto engine : {ExecEngine::kWalk, ExecEngine::kBytecode,
                            ExecEngine::kNative}) {
    const Config cfg{engine, engine != ExecEngine::kWalk, kFaultSpec, 8};
    const RunResult base = run_sharded(src, 1, cfg);
    ASSERT_GT(base.stats().faults, 0u)
        << "workload drew no faults; raise p so the test means something";
    ASSERT_GT(base.stats().checkpoints, 0u);
    expect_shard_parity(src, cfg, {"d"});
  }
}

TEST(ShardParity, Fig8UnderFaultsAndCheckpoints) {
  const auto src = papers::grid_shortest_path(8, 8, true);
  for (const auto engine : {ExecEngine::kBytecode, ExecEngine::kNative}) {
    const Config cfg{engine, true, kFaultSpec, 8};
    const RunResult base = run_sharded(src, 1, cfg);
    ASSERT_GT(base.stats().faults, 0u);
    expect_shard_parity(src, cfg, {"d"});
  }
}

TEST(ShardParity, RanksortUnderFaults) {
  // Router retries re-issue the transient exchange build; the replay must
  // stay deterministic across shard counts.
  const auto src = papers::ranksort(32);
  expect_shard_parity(src, Config{ExecEngine::kWalk, false, kFaultSpec, 8});
  expect_shard_parity(src,
                      Config{ExecEngine::kBytecode, true, kFaultSpec, 8});
}

// ---- faults + checkpoint + plan cache differential ----

// Locks in the checkpoint/epoch ordering fix: a rollback restores VM state
// recorded *before* a map-section remap, so any plan or exchange schedule
// recorded under the later layout epoch must not replay after the restore.
// Before the fix, restore rewound the plan epoch to the captured value,
// colliding with recipes recorded pre-capture under the same epoch number.
TEST(ShardParity, MapRemapUnderFaultsMatchesCleanRun) {
  const auto src = papers::shifted_sum(256, 4, true);
  for (const unsigned shards : {1u, 2u, 4u}) {
    const std::string label = "shards=" + std::to_string(shards);
    const RunResult clean =
        run_sharded(src, shards, Config{ExecEngine::kBytecode, true, nullptr, 0});
    const Config faulty{ExecEngine::kBytecode, true,
                        "memory:p=2e-3;news:p=5e-4,seed=11,retries=1", 4};
    const RunResult faulted = run_sharded(src, shards, faulty);
    EXPECT_GT(faulted.stats().checkpoints, 0u) << label;
    EXPECT_EQ(clean.output(), faulted.output()) << label;
    const auto want = clean.global_array("a");
    const auto got = faulted.global_array("a");
    ASSERT_EQ(want.size(), got.size()) << label;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_TRUE(want[i] == got[i]) << label << " a[" << i << "]";
    }
    // Deterministic: the same faulted run replays bit-identically.
    const RunResult again = run_sharded(src, shards, faulty);
    EXPECT_EQ(faulted.output(), again.output()) << label;
    expect_stats_equal(faulted.stats(), again.stats(), label + " replay");
  }
}

}  // namespace
}  // namespace uc::vm
