// Unit tests for the lane-kernel compiler (src/ucvm/kernel/compile.cpp):
// which statements it accepts, and structural invariants of the lowered
// bytecode (fused array ops, direct index lowering, constant pooling,
// reduction loop wiring).  End-to-end equivalence with the walk engine is
// covered by engine_parity_test.cpp.
#include <gtest/gtest.h>

#include <string>

#include "uclang/frontend.hpp"
#include "ucvm/kernel/bytecode.hpp"

namespace uc::vm::detail::kernel {
namespace {

using lang::Stmt;
using lang::StmtKind;

// First statement expression of the first par/seq construct in the unit
// (the construct's first sc-block body must be a single expression
// statement in these tests).
const lang::Expr* first_construct_expr(const lang::CompilationUnit& unit) {
  for (const auto& top : unit.program->items) {
    if (top.func == nullptr) continue;
    for (const auto& s : top.func->body->body) {
      if (s->kind != StmtKind::kUcConstruct) continue;
      const auto& uc = static_cast<const lang::UcConstructStmt&>(*s);
      const Stmt* body = uc.blocks.front().body.get();
      if (body->kind != StmtKind::kExpr) return nullptr;
      return static_cast<const lang::ExprStmt*>(body)->expr.get();
    }
  }
  return nullptr;
}

std::unique_ptr<lang::CompilationUnit> analyse(const std::string& body) {
  auto unit = lang::compile("kernel_test.uc", body);
  EXPECT_TRUE(unit->ok()) << body;
  return unit;
}

int count_ops(const Kernel& k, Op op) {
  int n = 0;
  for (const auto& inst : k.code) n += inst.op == op ? 1 : 0;
  return n;
}

TEST(KernelCompiler, CompilesSimpleParAssignment) {
  auto unit = analyse(
      "index_set I:i = {0..7};\n"
      "int a[8];\n"
      "void main() { par (I) a[i] = i + 1; }\n");
  const auto* e = first_construct_expr(*unit);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(can_compile_expr(*e));
  auto k = compile_expr(*e);
  ASSERT_NE(k, nullptr);
  EXPECT_GT(k->num_regs, 0u);
  ASSERT_FALSE(k->code.empty());
  EXPECT_EQ(k->code.back().op, Op::kRet);
  // Store side lowers to the fused classify+broadcast+store.
  EXPECT_EQ(count_ops(*k, Op::kArrPut), 1);
  EXPECT_EQ(count_ops(*k, Op::kArrStore), 0);
  EXPECT_EQ(count_ops(*k, Op::kBroadcastCheck), 0);
}

TEST(KernelCompiler, RvalueReadsUseFusedArrGet) {
  auto unit = analyse(
      "index_set I:i = {0..7};\n"
      "int a[8]; int b[8];\n"
      "void main() { par (I) a[i] = b[i] + b[0]; }\n");
  const auto* e = first_construct_expr(*unit);
  ASSERT_NE(e, nullptr);
  auto k = compile_expr(*e);
  ASSERT_NE(k, nullptr);
  // Two rvalue reads fuse; only the lvalue address uses kArrIndex.
  EXPECT_EQ(count_ops(*k, Op::kArrGet), 2);
  EXPECT_EQ(count_ops(*k, Op::kArrIndex), 1);
  EXPECT_EQ(count_ops(*k, Op::kArrLoad), 0);
  // Leaf indices (elements, constants) lower directly into the subscript
  // block — no register-to-register moves in straight-line code.
  EXPECT_EQ(count_ops(*k, Op::kMove), 0);
}

TEST(KernelCompiler, ConstantsArePooled) {
  auto unit = analyse(
      "index_set I:i = {0..7};\n"
      "int a[8];\n"
      "void main() { par (I) a[i] = 7 + i * 7 + 7; }\n");
  const auto* e = first_construct_expr(*unit);
  ASSERT_NE(e, nullptr);
  auto k = compile_expr(*e);
  ASSERT_NE(k, nullptr);
  // One pooled entry for the repeated 7 (int and float constants never
  // merge, but these are all the same int).
  EXPECT_EQ(k->pool.size(), 1u);
}

TEST(KernelCompiler, ReductionLoopIsWired) {
  auto unit = analyse(
      "index_set I:i = {0..7}, K:k = I;\n"
      "int d[8]; int r[8];\n"
      "void main() { par (I) r[i] = $<(K; d[k] + i); }\n");
  const auto* e = first_construct_expr(*unit);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(can_compile_expr(*e));
  auto k = compile_expr(*e);
  ASSERT_NE(k, nullptr);
  ASSERT_EQ(k->reduces.size(), 1u);
  EXPECT_EQ(count_ops(*k, Op::kReduceBegin), 1);
  EXPECT_EQ(count_ops(*k, Op::kReduceFold), 1);
  EXPECT_EQ(count_ops(*k, Op::kReduceNext), 1);
  EXPECT_EQ(count_ops(*k, Op::kReduceEnd), 1);
  // kReduceNext jumps back to the loop start (just after kReduceBegin);
  // kReduceBegin's empty-product exit jumps past kReduceNext.
  std::size_t begin = 0, next = 0;
  for (std::size_t ip = 0; ip < k->code.size(); ++ip) {
    if (k->code[ip].op == Op::kReduceBegin) begin = ip;
    if (k->code[ip].op == Op::kReduceNext) next = ip;
  }
  EXPECT_EQ(k->code[next].jump, static_cast<std::int32_t>(begin) + 1);
  EXPECT_EQ(k->code[begin].jump, static_cast<std::int32_t>(next) + 1);
  // The set element inside the arm reads the live tuple, not an outer
  // binding.
  EXPECT_EQ(count_ops(*k, Op::kLoadReduceElem), 1);
}

TEST(KernelCompiler, RejectsPrint) {
  auto unit = analyse(
      "index_set I:i = {0..7};\n"
      "int a[8];\n"
      "void main() { par (I) print(\"lane\", i); }\n");
  const auto* e = first_construct_expr(*unit);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(can_compile_expr(*e));
  EXPECT_EQ(compile_expr(*e), nullptr);
}

TEST(KernelCompiler, RejectsUserFunctionCalls) {
  auto unit = analyse(
      "index_set I:i = {0..7};\n"
      "int a[8];\n"
      "int f(int x) { return x + 1; }\n"
      "void main() { par (I) a[i] = f(i); }\n");
  const auto* e = first_construct_expr(*unit);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(can_compile_expr(*e));
}

TEST(KernelCompiler, RejectsSwapAndSrand) {
  auto unit = analyse(
      "index_set I:i = {0..7};\n"
      "int a[8]; int b[8];\n"
      "void main() { par (I) swap(a[i], b[i]); }\n");
  const auto* e = first_construct_expr(*unit);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(can_compile_expr(*e));
}

TEST(KernelCompiler, RejectsNestedReductions) {
  auto unit = analyse(
      "index_set I:i = {0..7}, J:j = I, K:k = I;\n"
      "int d[8][8]; int r[8];\n"
      "void main() { par (I) r[i] = $+(J; $<(K; d[j][k])); }\n");
  const auto* e = first_construct_expr(*unit);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(can_compile_expr(*e));
}

TEST(KernelCompiler, RandMarksKernel) {
  auto unit = analyse(
      "index_set I:i = {0..7};\n"
      "int a[8];\n"
      "void main() { par (I) a[i] = rand(); }\n");
  const auto* e = first_construct_expr(*unit);
  ASSERT_NE(e, nullptr);
  auto with_rand = compile_expr(*e);
  ASSERT_NE(with_rand, nullptr);
  EXPECT_TRUE(with_rand->uses_rand);

  auto unit2 = analyse(
      "index_set I:i = {0..7};\n"
      "int a[8];\n"
      "void main() { par (I) a[i] = i; }\n");
  const auto* e2 = first_construct_expr(*unit2);
  ASSERT_NE(e2, nullptr);
  auto without = compile_expr(*e2);
  ASSERT_NE(without, nullptr);
  EXPECT_FALSE(without->uses_rand);
}

}  // namespace
}  // namespace uc::vm::detail::kernel
