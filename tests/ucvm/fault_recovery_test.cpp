// Differential fault-recovery suite (docs/ROBUSTNESS.md): the paper's
// figure programs must produce bit-identical results under injected
// transient faults with checkpointing enabled, in both execution engines.
// Detection is modeled as perfect, so faults may only cost cycles.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cm/fault.hpp"
#include "support/error.hpp"
#include "uc/paper_programs.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

std::vector<std::int64_t> ints(const std::vector<Value>& vs) {
  std::vector<std::int64_t> out;
  for (const auto& v : vs) out.push_back(v.as_int());
  return out;
}

cm::MachineOptions with_faults(const std::string& spec) {
  cm::MachineOptions m;
  m.faults = cm::parse_fault_spec(spec);
  return m;
}

ExecOptions with_engine(ExecEngine engine, std::uint64_t checkpoint_every) {
  ExecOptions e;
  e.engine = engine;
  e.checkpoint_every = checkpoint_every;
  return e;
}

// Memory faults fire on every vector op (units = VP-set size), so even the
// small figure-sized workloads draw a healthy number of faults at p=1e-3.
constexpr const char* kFaultSpec =
    "memory:p=1e-3;router:p=1e-3;news:p=1e-3;reduce:p=1e-3,seed=7";

class FaultRecoveryP : public ::testing::TestWithParam<ExecEngine> {};

void expect_bit_identical_under_faults(const std::string& src,
                                       ExecEngine engine) {
  const RunResult clean = run_uc(src, {}, with_engine(engine, 0));
  const RunResult faulted =
      run_uc(src, with_faults(kFaultSpec), with_engine(engine, 8));
  EXPECT_GT(faulted.stats().faults, 0u) << "workload drew no faults; the "
                                           "differential is vacuous";
  EXPECT_GT(faulted.stats().checkpoints, 0u);
  EXPECT_EQ(clean.output(), faulted.output());
  EXPECT_EQ(ints(clean.global_array("d")), ints(faulted.global_array("d")));
  // Recovery costs cycles but never changes the logical instruction mix.
  EXPECT_EQ(clean.stats().vector_ops, faulted.stats().vector_ops);
  EXPECT_EQ(clean.stats().router_messages, faulted.stats().router_messages);
  EXPECT_GT(faulted.stats().cycles, clean.stats().cycles);
}

TEST_P(FaultRecoveryP, Fig6ShortestPathOn2BitIdentical) {
  expect_bit_identical_under_faults(papers::shortest_path_on2(8, 11),
                                    GetParam());
}

TEST_P(FaultRecoveryP, Fig7ShortestPathOn3BitIdentical) {
  expect_bit_identical_under_faults(papers::shortest_path_on3(8, 11),
                                    GetParam());
}

TEST_P(FaultRecoveryP, Fig8GridObstacleBitIdentical) {
  expect_bit_identical_under_faults(papers::grid_shortest_path(8, 8, true),
                                    GetParam());
}

TEST_P(FaultRecoveryP, StarSolveRecoversUnderFaults) {
  expect_bit_identical_under_faults(papers::shortest_path_star_solve(8, 11),
                                    GetParam());
}

// retries=0 escalates every detected fault straight to TransientFault, so
// recovery must go through the VM replay path (statement retry or
// checkpoint restore) rather than instruction re-issue.
TEST_P(FaultRecoveryP, RollbackPathRecoversWithZeroRetries) {
  const std::string src = papers::shortest_path_on3(8, 11);
  const RunResult clean = run_uc(src, {}, with_engine(GetParam(), 0));
  const RunResult faulted =
      run_uc(src, with_faults("memory:p=2e-3,retries=0,seed=5"),
             with_engine(GetParam(), 4));
  EXPECT_GT(faulted.stats().faults, 0u);
  EXPECT_EQ(faulted.stats().retries, 0u);
  EXPECT_GT(faulted.stats().rollbacks, 0u);
  EXPECT_EQ(clean.output(), faulted.output());
  EXPECT_EQ(ints(clean.global_array("d")), ints(faulted.global_array("d")));
}

TEST_P(FaultRecoveryP, SameSeedSameScheduleAndStats) {
  const std::string src = papers::shortest_path_on2(6, 11);
  const RunResult a =
      run_uc(src, with_faults(kFaultSpec), with_engine(GetParam(), 8));
  const RunResult b =
      run_uc(src, with_faults(kFaultSpec), with_engine(GetParam(), 8));
  EXPECT_EQ(a.stats(), b.stats());
  EXPECT_EQ(a.output(), b.output());
}

TEST_P(FaultRecoveryP, CheckpointingAloneChangesNothingButCycles) {
  const std::string src = papers::shortest_path_on3(6, 11);
  const RunResult plain = run_uc(src, {}, with_engine(GetParam(), 0));
  const RunResult ckpt = run_uc(src, {}, with_engine(GetParam(), 4));
  EXPECT_GT(ckpt.stats().checkpoints, 0u);
  EXPECT_EQ(ckpt.stats().faults, 0u);
  EXPECT_EQ(plain.output(), ckpt.output());
  EXPECT_EQ(ints(plain.global_array("d")), ints(ckpt.global_array("d")));
  EXPECT_GT(ckpt.stats().cycles, plain.stats().cycles);
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultRecoveryP,
                         ::testing::Values(ExecEngine::kWalk,
                                           ExecEngine::kBytecode),
                         [](const auto& info) {
                           return info.param == ExecEngine::kWalk
                                      ? "walk"
                                      : "bytecode";
                         });

// ---- unrecoverable faults ----

TEST(FaultRecovery, CertainFaultWithoutCheckpointingIsFatal) {
  try {
    run_uc(papers::shortest_path_on2(6, 11),
           with_faults("memory:p=1,retries=2"), with_engine(ExecEngine::kWalk, 0));
    FAIL() << "p=1 without checkpointing must be fatal";
  } catch (const support::UcRuntimeError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("checkpointing is off"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--checkpoint-every"), std::string::npos) << msg;
  }
}

TEST(FaultRecovery, CertainFaultExhaustsReplayBudget) {
  ExecOptions e = with_engine(ExecEngine::kWalk, 4);
  e.max_replays = 5;
  try {
    run_uc(papers::shortest_path_on2(6, 11),
           with_faults("memory:p=1,retries=2"), e);
    FAIL() << "p=1 must exhaust the replay budget";
  } catch (const support::UcRuntimeError& e2) {
    const std::string msg = e2.what();
    EXPECT_NE(msg.find("replay budget exhausted"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--max-replays"), std::string::npos) << msg;
  }
}

// ---- resource guards ----

TEST(FaultRecovery, TimeoutWatchdogStopsRunawayLoops) {
  const std::string src =
      "void main() {\n"
      "  int i;\n"
      "  i = 0;\n"
      "  while (i < 2000000000) {\n"
      "    i = i + 1;\n"
      "  }\n"
      "}\n";
  ExecOptions e;
  e.timeout_seconds = 0.05;
  try {
    run_uc(src, {}, e);
    FAIL() << "watchdog should have fired";
  } catch (const support::UcRuntimeError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("--timeout"), std::string::npos) << msg;
  }
}

TEST(FaultRecovery, FieldMemoryCapNamesTheField) {
  const std::string src =
      "#define N 16384\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N];\n"
      "void main() {\n"
      "  par (I) {\n"
      "    a[i] = i;\n"
      "  }\n"
      "}\n";
  cm::MachineOptions m;
  m.max_field_bytes = 1 << 12;  // 4 KiB: far below one 16K-VP field
  try {
    run_uc(src, m, {});
    FAIL() << "allocation should exceed the cap";
  } catch (const support::UcRuntimeError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("--max-field-mb"), std::string::npos) << msg;
  }
}

TEST(FaultRecovery, IterationLimitMessageNamesTheKnob) {
  const std::string src =
      "#define N 4\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N];\n"
      "void main() {\n"
      "  *par (I) st (1) {\n"
      "    a[i] = a[i] + 1;\n"
      "  }\n"
      "}\n";
  ExecOptions e;
  e.max_iterations = 10;
  try {
    run_uc(src, {}, e);
    FAIL() << "the always-active *par must hit the iteration limit";
  } catch (const support::UcRuntimeError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("10"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--max-iterations"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace uc::vm
