// Reduction expressions (paper §3.2): all eight operators, predicates,
// multiple arms, others, Cartesian sets, nesting, identity values.
#include <gtest/gtest.h>

#include "ucvm/interp.hpp"
#include "uclang/symbols.hpp"

namespace uc::vm {
namespace {

RunResult run(const std::string& src) { return run_uc(src); }

// Shared prologue: a[0..9] = {3,1,4,1,5,9,2,6,5,3}
const char* kArray =
    "index_set I:i = {0..9}, J:j = I;\n"
    "int a[10];\n"
    "void fill() {\n"
    "  a[0]=3; a[1]=1; a[2]=4; a[3]=1; a[4]=5;\n"
    "  a[5]=9; a[6]=2; a[7]=6; a[8]=5; a[9]=3;\n"
    "}\n";

TEST(InterpReduce, SumOfIndexElements) {
  auto r = run("index_set I:i = {0..9};\nint s;\nvoid main() { s = $+(I; i); }");
  EXPECT_EQ(r.global_scalar("s").as_int(), 45);
}

TEST(InterpReduce, SumOfArray) {
  auto r = run(std::string(kArray) +
               "int s;\nvoid main() { fill(); s = $+(I; a[i]); }");
  EXPECT_EQ(r.global_scalar("s").as_int(), 39);
}

TEST(InterpReduce, Product) {
  auto r = run("index_set I:i = {1..5};\nint p;\nvoid main() { p = $*(I; i); }");
  EXPECT_EQ(r.global_scalar("p").as_int(), 120);
}

TEST(InterpReduce, MinMax) {
  auto r = run(std::string(kArray) +
               "int mn, mx;\nvoid main() { fill(); mn = $<(I; a[i]); "
               "mx = $>(I; a[i]); }");
  EXPECT_EQ(r.global_scalar("mn").as_int(), 1);
  EXPECT_EQ(r.global_scalar("mx").as_int(), 9);
}

TEST(InterpReduce, LogicalAndOrXor) {
  auto r = run(std::string(kArray) +
               "int all_pos, any_big, x;\n"
               "void main() { fill();\n"
               "  all_pos = $&&(I; a[i] > 0);\n"
               "  any_big = $||(I; a[i] > 8);\n"
               "  x = $^(I; a[i]);\n"
               "}");
  EXPECT_EQ(r.global_scalar("all_pos").as_int(), 1);
  EXPECT_EQ(r.global_scalar("any_big").as_int(), 1);
  EXPECT_EQ(r.global_scalar("x").as_int(),
            3 ^ 1 ^ 4 ^ 1 ^ 5 ^ 9 ^ 2 ^ 6 ^ 5 ^ 3);
}

TEST(InterpReduce, PredicateFiltersOperands) {
  auto r = run(std::string(kArray) +
               "int s;\nvoid main() { fill(); s = $+(I st (a[i] > 4) a[i]); }");
  EXPECT_EQ(r.global_scalar("s").as_int(), 5 + 9 + 6 + 5);
}

TEST(InterpReduce, FirstOccurrenceOfMinimum) {
  // Paper Fig 1: first = $<(I st (a[i]==min) i)
  auto r = run(std::string(kArray) +
               "int mn, first;\nvoid main() { fill(); mn = $<(I; a[i]); "
               "first = $<(I st (a[i]==mn) i); }");
  EXPECT_EQ(r.global_scalar("first").as_int(), 1);
}

TEST(InterpReduce, ArbitraryPicksAnEnabledOperand) {
  auto r = run(std::string(kArray) +
               "int mn, arb;\nvoid main() { fill(); mn = $<(I; a[i]); "
               "arb = $,(I st (a[i]==mn) i); }");
  auto v = r.global_scalar("arb").as_int();
  EXPECT_TRUE(v == 1 || v == 3) << v;
}

TEST(InterpReduce, NestedReductionLastOccurrenceOfMax) {
  // Paper Fig 1: last = $>(I st (a[i]==$>(J; a[j])) i)
  auto r = run(std::string(kArray) +
               "int last;\nvoid main() { fill(); "
               "last = $>(I st (a[i] == $>(J; a[j])) i); }");
  EXPECT_EQ(r.global_scalar("last").as_int(), 5);
}

TEST(InterpReduce, MultipleArmsWithOthersAbsSum) {
  // Paper §3.2: abs_sum = $+(I st (a[i]>0) a[i] others -a[i]);
  auto r = run(
      "index_set I:i = {0..4};\nint a[5], s;\n"
      "void main() {\n"
      "  a[0]=3; a[1]=-4; a[2]=0; a[3]=-1; a[4]=2;\n"
      "  s = $+(I st (a[i] > 0) a[i] others -a[i]);\n"
      "}");
  EXPECT_EQ(r.global_scalar("s").as_int(), 3 + 4 + 0 + 1 + 2);
}

TEST(InterpReduce, ElementEnabledForMultipleArmsCountsTwice) {
  // Paper §3.2: if an index element is enabled for more than one se-exp,
  // each corresponding expression joins the reduction.
  auto r = run(
      "index_set I:i = {0..3};\nint s;\n"
      "void main() { s = $+(I st (i >= 0) 1 st (i >= 2) 10); }");
  EXPECT_EQ(r.global_scalar("s").as_int(), 4 + 20);
}

TEST(InterpReduce, EmptyReductionYieldsIdentity) {
  auto r = run(
      "index_set I:i = {0..9};\nint s, p, mx, mn, o, an;\n"
      "void main() {\n"
      "  s = $+(I st (0) 1);\n"
      "  p = $*(I st (0) 7);\n"
      "  mx = $>(I st (0) 7);\n"
      "  mn = $<(I st (0) 7);\n"
      "  o = $||(I st (0) 1);\n"
      "  an = $&&(I st (0) 0);\n"
      "}");
  EXPECT_EQ(r.global_scalar("s").as_int(), 0);
  EXPECT_EQ(r.global_scalar("p").as_int(), 1);
  EXPECT_EQ(r.global_scalar("mx").as_int(), -lang::kUcInf);
  EXPECT_EQ(r.global_scalar("mn").as_int(), lang::kUcInf);
  EXPECT_EQ(r.global_scalar("o").as_int(), 0);
  EXPECT_EQ(r.global_scalar("an").as_int(), 1);
}

TEST(InterpReduce, CartesianProductReduction) {
  auto r = run(
      "index_set I:i = {1..3}, J:j = {1..4};\nint s;\n"
      "void main() { s = $+(I, J; i * j); }");
  EXPECT_EQ(r.global_scalar("s").as_int(), (1 + 2 + 3) * (1 + 2 + 3 + 4));
}

TEST(InterpReduce, MatrixMultiplyFromPaper) {
  auto r = run(
      "#define N 4\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "int a[N][N], b[N][N], c[N][N];\n"
      "void main() {\n"
      "  par (I, J) { a[i][j] = i + j; b[i][j] = i * N + j; }\n"
      "  par (I, J) c[i][j] = $+(K; a[i][k] * b[k][j]);\n"
      "}");
  // Check one element against a hand computation.
  // c[1][2] = sum_k a[1][k]*b[k][2] = sum_k (1+k)*(4k+2)
  std::int64_t expect = 0;
  for (int k = 0; k < 4; ++k) expect += (1 + k) * (4 * k + 2);
  EXPECT_EQ(r.global_element("c", {1, 2}).as_int(), expect);
}

TEST(InterpReduce, FloatReduction) {
  auto r = run(
      "index_set I:i = {0..3};\nfloat f[4], s;\n"
      "void main() {\n"
      "  par (I) f[i] = i + 0.5;\n"
      "  s = $+(I; f[i]);\n"
      "}");
  EXPECT_DOUBLE_EQ(r.global_scalar("s").as_float(), 0.5 + 1.5 + 2.5 + 3.5);
}

TEST(InterpReduce, AverageFromPaperFig1) {
  auto r = run(
      "index_set I:i = {0..9};\nint s;\nfloat avg;\n"
      "void main() { s = $+(I; i); avg = s / 10.0; }");
  EXPECT_DOUBLE_EQ(r.global_scalar("avg").as_float(), 4.5);
}

TEST(InterpReduce, HistogramFromPaper) {
  auto r = run(
      "#define N 20\n"
      "int samples[N];\n"
      "int count[10];\n"
      "index_set I:i = {0..N-1}, J:j = {0..9};\n"
      "void main() {\n"
      "  par (I) samples[i] = (i * 3) % 10;\n"
      "  par (J) count[j] = $+(I st (samples[i]==j) 1);\n"
      "}");
  // i*3 % 10 for i=0..19 hits each digit exactly twice.
  for (int d = 0; d < 10; ++d) {
    EXPECT_EQ(r.global_element("count", {d}).as_int(), 2) << d;
  }
}

TEST(InterpReduce, ReductionChargesScanCost) {
  auto r = run(
      "index_set I:i = {0..63};\nint s;\nvoid main() { s = $+(I; i); }");
  EXPECT_GT(r.stats().reductions, 0u);
}

TEST(InterpReduce, ReductionInsideParChargesExpandedGeometry) {
  // O(N^3) pattern: reduction inside par(I,J) must be charged over N^3.
  auto small = run(
      "#define N 4\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "int d[N][N];\n"
      "void main() { par (I, J) d[i][j] = $<(K; d[i][k]+d[k][j]); }");
  auto big = run(
      "#define N 8\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "int d[N][N];\n"
      "void main() { par (I, J) d[i][j] = $<(K; d[i][k]+d[k][j]); }");
  EXPECT_GT(big.stats().cycles, small.stats().cycles);
}

}  // namespace
}  // namespace uc::vm
