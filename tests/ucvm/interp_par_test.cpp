// The par / *par / seq / oneof constructs: synchronous semantics, masks,
// nesting, per-lane locals, iteration.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

RunResult run(const std::string& src) { return run_uc(src); }

std::vector<std::int64_t> ints(const std::vector<Value>& vs) {
  std::vector<std::int64_t> out;
  for (const auto& v : vs) out.push_back(v.as_int());
  return out;
}

TEST(InterpPar, SimpleParallelAssignment) {
  auto r = run(
      "index_set I:i = {0..7};\nint a[8];\n"
      "void main() { par (I) a[i] = i * i; }");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{0, 1, 4, 9, 16, 25, 36, 49}));
}

TEST(InterpPar, PredicateSelectsSubset) {
  auto r = run(
      "index_set I:i = {0..7};\nint a[8];\n"
      "void main() { par (I) st (i % 2 == 0) a[i] = 1; }");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{1, 0, 1, 0, 1, 0, 1, 0}));
}

TEST(InterpPar, OthersClause) {
  auto r = run(
      "index_set I:i = {0..5};\nint a[6];\n"
      "void main() { par (I) st (i%2==1) a[i] = 0; others a[i] = 1; }");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{1, 0, 1, 0, 1, 0}));
}

TEST(InterpPar, SynchronousSemanticsReadThenWrite) {
  // Parallel shift: every a[i] = a[i+1] must read the OLD neighbour value.
  auto r = run(
      "index_set I:i = {0..6};\nint a[8];\n"
      "void main() {\n"
      "  par (I) a[i] = i;\n"
      "  a[7] = 7;\n"
      "  par (I) a[i] = a[i+1];\n"
      "}");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 7}));
}

TEST(InterpPar, ParallelSwapIsSynchronous) {
  auto r = run(
      "index_set I:i = {0..7};\nint a[8], b[8];\n"
      "void main() {\n"
      "  par (I) { a[i] = i; b[i] = 10 + i; }\n"
      "  par (I) { int t; t = a[i]; a[i] = b[i]; b[i] = t; }\n"
      "}");
  EXPECT_EQ(r.global_element("a", {3}).as_int(), 13);
  EXPECT_EQ(r.global_element("b", {3}).as_int(), 3);
}

TEST(InterpPar, CartesianProductTwoSets) {
  auto r = run(
      "index_set I:i = {0..3}, J:j = I;\nint d[4][4];\n"
      "void main() { par (I, J) d[i][j] = 10*i + j; }");
  EXPECT_EQ(r.global_element("d", {2, 3}).as_int(), 23);
  EXPECT_EQ(r.global_element("d", {0, 0}).as_int(), 0);
}

TEST(InterpPar, MultipleScBlocksEachRun) {
  auto r = run(
      "index_set I:i = {0..5};\nint a[6];\n"
      "void main() {\n"
      "  par (I)\n"
      "    st (i < 2) a[i] = 1;\n"
      "    st (i >= 4) a[i] = 2;\n"
      "    others a[i] = 3;\n"
      "}");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{1, 1, 3, 3, 2, 2}));
}

TEST(InterpPar, ExplicitListIndexSet) {
  auto r = run(
      "index_set K:k = {4, 2, 9};\nint a[10];\n"
      "void main() { par (K) a[k] = 1; }");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{0, 0, 1, 0, 1, 0, 0, 0, 0, 1}));
}

TEST(InterpPar, SameValueDoubleWriteIsLegal) {
  // Paper §3.4: multiple assignments must be identical — identical is OK.
  auto r = run(
      "index_set I:i = {0..7};\nint x[1];\n"
      "void main() { par (I) x[0] = 5; }");
  EXPECT_EQ(r.global_element("x", {0}).as_int(), 5);
}

TEST(InterpPar, ConflictingWritesAreAnError) {
  EXPECT_THROW(run("index_set I:i = {0..7};\nint x[1];\n"
                   "void main() { par (I) x[0] = i; }"),
               support::UcRuntimeError);
}

TEST(InterpPar, PaperIllegalBroadcastExampleRejected) {
  // Fig in §3.4: par (I,J) a[i] = b[j]; assigns N values to each a[i].
  EXPECT_THROW(
      run("index_set I:i = {0..3}, J:j = I;\n"
          "int a[4], b[4];\n"
          "void main() { par (I) b[i] = i; par (I, J) a[i] = b[j]; }"),
      support::UcRuntimeError);
}

TEST(InterpPar, PerLaneLocalsAreIndependent) {
  auto r = run(
      "index_set I:i = {0..7};\nint a[8];\n"
      "void main() { par (I) { int t; t = i * 2; a[i] = t + 1; } }");
  EXPECT_EQ(r.global_element("a", {5}).as_int(), 11);
}

TEST(InterpPar, NestedParOverSecondSet) {
  auto r = run(
      "index_set I:i = {0..2}, J:j = {0..3};\nint d[3][4];\n"
      "void main() { par (I) par (J) d[i][j] = i + j; }");
  EXPECT_EQ(r.global_element("d", {2, 3}).as_int(), 5);
}

TEST(InterpPar, SeqIteratesInOrder) {
  // Running sum via seq proves ordering: a[k] = a[k-1] + 1 works only when
  // k goes 1,2,3,... in order.
  auto r = run(
      "index_set K:k = {1..7};\nint a[8];\n"
      "void main() {\n"
      "  a[0] = 1;\n"
      "  seq (K) a[k] = a[k-1] + 1;\n"
      "}");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(InterpPar, SeqRespectsDeclarationOrderOfListedSet) {
  auto r = run(
      "index_set K:k = {2, 0, 1};\nint a[3], pos;\n"
      "void main() {\n"
      "  pos = 0;\n"
      "  seq (K) { a[k] = pos; pos = pos + 1; }\n"
      "}");
  // visit order 2,0,1
  EXPECT_EQ(ints(r.global_array("a")), (std::vector<std::int64_t>{1, 2, 0}));
}

TEST(InterpPar, SeqNestedInParPartialSums) {
  // Paper Fig 3: partial sums with seq inside par.
  auto r = run(
      "#define N 8\n#define LOGN 3\n"
      "index_set I:i = {0..N-1}, J:j = {0..LOGN-1};\n"
      "int a[N];\n"
      "void main() {\n"
      "  par (I)\n"
      "  { a[i] = i;\n"
      "    seq (J) st (i - power2(j) >= 0)\n"
      "      a[i] = a[i] + a[i - power2(j)];\n"
      "  }\n"
      "}");
  // psum[i] = 0+1+...+i
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{0, 1, 3, 6, 10, 15, 21, 28}));
}

TEST(InterpPar, StarParPrefixSums) {
  // Paper Fig 2: iterative *par prefix sums.
  auto r = run(
      "#define N 16\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], cnt[N];\n"
      "void main() {\n"
      "  par (I) { a[i] = i; cnt[i] = 0; }\n"
      "  *par (I) st (i >= power2(cnt[i]) && cnt[i] < 4)\n"
      "  { a[i] = a[i] + a[i - power2(cnt[i])];\n"
      "    cnt[i] = cnt[i] + 1;\n"
      "  }\n"
      "}");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(r.global_element("a", {i}).as_int(), i * (i + 1) / 2) << i;
  }
}

TEST(InterpPar, StarParTerminatesWhenNoLaneEnabled) {
  auto r = run(
      "index_set I:i = {0..7};\nint a[8];\n"
      "void main() {\n"
      "  par (I) a[i] = i;\n"
      "  *par (I) st (a[i] < 5) a[i] = a[i] + 1;\n"
      "}");
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(r.global_element("a", {i}).as_int(), std::max<std::int64_t>(i, 5));
  }
}

TEST(InterpPar, RanksortFromPaper) {
  auto r = run(
      "#define N 8\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N];\n"
      "void main() {\n"
      "  a[0]=5; a[1]=3; a[2]=9; a[3]=1; a[4]=7; a[5]=2; a[6]=8; a[7]=4;\n"
      "  par (I)\n"
      "  { int rank;\n"
      "    rank = $+(J st (a[j] < a[i]) 1);\n"
      "    a[rank] = a[i];\n"
      "  }\n"
      "}");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{1, 2, 3, 4, 5, 7, 8, 9}));
}

TEST(InterpPar, OddEvenTranspositionSortFromPaper) {
  auto r = run(
      "#define N 8\n"
      "int x[N];\n"
      "index_set I:i = {0..N-2};\n"
      "void main() {\n"
      "  x[0]=8; x[1]=6; x[2]=7; x[3]=5; x[4]=3; x[5]=0; x[6]=9; x[7]=1;\n"
      "  *oneof (I)\n"
      "    st (i%2==0 && x[i]>x[i+1]) swap(x[i], x[i+1]);\n"
      "    st (i%2!=0 && x[i]>x[i+1]) swap(x[i], x[i+1]);\n"
      "}");
  EXPECT_EQ(ints(r.global_array("x")),
            (std::vector<std::int64_t>{0, 1, 3, 5, 6, 7, 8, 9}));
}

TEST(InterpPar, OneofExecutesExactlyOneEnabledBlock) {
  auto r = run(
      "index_set I:i = {0..3};\nint a[4], b[4];\n"
      "void main() {\n"
      "  oneof (I)\n"
      "    st (1) a[i] = 1;\n"
      "    st (1) b[i] = 1;\n"
      "}");
  auto a = ints(r.global_array("a"));
  auto b = ints(r.global_array("b"));
  const bool a_ran = a == std::vector<std::int64_t>{1, 1, 1, 1};
  const bool b_ran = b == std::vector<std::int64_t>{1, 1, 1, 1};
  EXPECT_NE(a_ran, b_ran) << "exactly one block must run";
}

TEST(InterpPar, OneofWithNoEnabledBlockDoesNothing) {
  auto r = run(
      "index_set I:i = {0..3};\nint a[4];\n"
      "void main() { oneof (I) st (0) a[i] = 1; }");
  EXPECT_EQ(ints(r.global_array("a")), (std::vector<std::int64_t>{0, 0, 0, 0}));
}

TEST(InterpPar, IfDivergenceInsideParBody) {
  auto r = run(
      "index_set I:i = {0..7};\nint a[8];\n"
      "void main() {\n"
      "  par (I) {\n"
      "    if (i < 4) a[i] = 1; else a[i] = 2;\n"
      "  }\n"
      "}");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{1, 1, 1, 1, 2, 2, 2, 2}));
}

TEST(InterpPar, WhileDivergenceInsideParBody) {
  auto r = run(
      "index_set I:i = {0..5};\nint a[6];\n"
      "void main() {\n"
      "  par (I) {\n"
      "    int c; c = 0;\n"
      "    while (c < i) c = c + 1;\n"
      "    a[i] = c;\n"
      "  }\n"
      "}");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(InterpPar, FunctionCalledPerLane) {
  auto r = run(
      "int sq(int v) { return v * v; }\n"
      "index_set I:i = {0..4};\nint a[5];\n"
      "void main() { par (I) a[i] = sq(i); }");
  EXPECT_EQ(ints(r.global_array("a")),
            (std::vector<std::int64_t>{0, 1, 4, 9, 16}));
}

TEST(InterpPar, IndexSetShadowingInReduction) {
  // Paper §3.4 example: the reduction over I rebinds i, unaffected by the
  // par predicate.
  auto r = run(
      "index_set I:i = {0..9};\nint a[10];\n"
      "void main() { par (I) st (i%2==0) a[i] = $+(I; i); }");
  EXPECT_EQ(r.global_element("a", {0}).as_int(), 45);
  EXPECT_EQ(r.global_element("a", {1}).as_int(), 0);
  EXPECT_EQ(r.global_element("a", {4}).as_int(), 45);
}

TEST(InterpPar, VectorOpsAreCharged) {
  auto r = run(
      "index_set I:i = {0..63};\nint a[64];\n"
      "void main() { par (I) a[i] = i; }");
  EXPECT_GT(r.stats().vector_ops, 0u);
  EXPECT_GT(r.stats().cycles, 0u);
}

TEST(InterpPar, StarParChargesGlobalOr) {
  auto r = run(
      "index_set I:i = {0..7};\nint a[8];\n"
      "void main() { *par (I) st (a[i] < 3) a[i] = a[i] + 1; }");
  EXPECT_GT(r.stats().global_ors, 0u);
}

TEST(InterpPar, ParallelRandIsDeterministicAcrossThreadCounts) {
  const char* src =
      "index_set I:i = {0..31};\nint a[32];\n"
      "void main() { par (I) a[i] = rand() % 1000; }";
  cm::MachineOptions one;
  one.host_threads = 1;
  cm::MachineOptions four;
  four.host_threads = 4;
  auto r1 = run_uc(src, one);
  auto r4 = run_uc(src, four);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(r1.global_element("a", {i}).as_int(),
              r4.global_element("a", {i}).as_int())
        << i;
  }
}

TEST(InterpPar, ResultsIdenticalAcrossThreadCounts) {
  const char* src =
      "#define N 32\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N];\n"
      "void main() {\n"
      "  par (I) a[i] = (i * 37) % N;\n"
      "  par (I) { int rank; rank = $+(J st (a[j] < a[i]) 1); a[rank] = a[i]; }\n"
      "}";
  cm::MachineOptions one;
  one.host_threads = 1;
  cm::MachineOptions eight;
  eight.host_threads = 8;
  auto r1 = run_uc(src, one);
  auto r8 = run_uc(src, eight);
  EXPECT_EQ(ints(r1.global_array("a")), ints(r8.global_array("a")));
  EXPECT_EQ(r1.stats().cycles, r8.stats().cycles)
      << "cost charges must not depend on host threading";
}

TEST(InterpPar, EmptyIndexSetParIsNoop) {
  auto r = run(
      "index_set E:e = {5..2};\nint a[4];\n"
      "void main() { a[0] = 9; par (E) a[e] = 1; }");
  EXPECT_EQ(r.global_element("a", {0}).as_int(), 9);
}

}  // namespace
}  // namespace uc::vm
