// Scalar (front-end) execution: expressions, control flow, functions,
// builtins, globals.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

RunResult run(const std::string& src) { return run_uc(src); }

TEST(InterpBasic, GlobalScalarAssignment) {
  auto r = run("int x;\nvoid main() { x = 40 + 2; }");
  EXPECT_EQ(r.global_scalar("x").as_int(), 42);
}

TEST(InterpBasic, ArithmeticAndPrecedence) {
  auto r = run("int x;\nvoid main() { x = 2 + 3 * 4 - 10 / 2; }");
  EXPECT_EQ(r.global_scalar("x").as_int(), 9);
}

TEST(InterpBasic, FloatArithmetic) {
  auto r = run("float f;\nvoid main() { f = 1 / 2.0 + 0.25; }");
  EXPECT_DOUBLE_EQ(r.global_scalar("f").as_float(), 0.75);
}

TEST(InterpBasic, IntDivisionTruncates) {
  auto r = run("int x;\nvoid main() { x = 7 / 2; }");
  EXPECT_EQ(r.global_scalar("x").as_int(), 3);
}

TEST(InterpBasic, FloatToIntAssignmentTruncates) {
  auto r = run("int x;\nvoid main() { x = 3.9; }");
  EXPECT_EQ(r.global_scalar("x").as_int(), 3);
}

TEST(InterpBasic, CompoundAssignments) {
  auto r = run(
      "int x;\nvoid main() { x = 10; x += 5; x -= 3; x *= 2; x /= 4; "
      "x %= 4; }");
  EXPECT_EQ(r.global_scalar("x").as_int(), 2);  // ((10+5-3)*2/4)%4 = 6%4
}

TEST(InterpBasic, IncrementDecrement) {
  auto r = run(
      "int a, b, c, d, x;\n"
      "void main() { x = 5; a = x++; b = x; c = --x; d = x; }");
  EXPECT_EQ(r.global_scalar("a").as_int(), 5);
  EXPECT_EQ(r.global_scalar("b").as_int(), 6);
  EXPECT_EQ(r.global_scalar("c").as_int(), 5);
  EXPECT_EQ(r.global_scalar("d").as_int(), 5);
}

TEST(InterpBasic, TernaryAndLogicShortCircuit) {
  auto r = run(
      "int a[1], x, y;\n"
      "void main() {\n"
      "  x = 1 ? 10 : a[5];\n"           // a[5] must not be evaluated
      "  y = (0 && a[9]) + (1 || a[9]);\n"
      "}");
  EXPECT_EQ(r.global_scalar("x").as_int(), 10);
  EXPECT_EQ(r.global_scalar("y").as_int(), 1);
}

TEST(InterpBasic, WhileAndFor) {
  auto r = run(
      "int s, t;\n"
      "void main() {\n"
      "  int k;\n"
      "  s = 0; k = 1;\n"
      "  while (k <= 10) { s += k; k++; }\n"
      "  t = 0;\n"
      "  for (int q = 0; q < 5; q++) t += q * q;\n"
      "}");
  EXPECT_EQ(r.global_scalar("s").as_int(), 55);
  EXPECT_EQ(r.global_scalar("t").as_int(), 30);
}

TEST(InterpBasic, BreakAndContinue) {
  auto r = run(
      "int s;\n"
      "void main() {\n"
      "  s = 0;\n"
      "  for (int k = 0; k < 100; k++) {\n"
      "    if (k % 2 == 0) continue;\n"
      "    if (k > 10) break;\n"
      "    s += k;\n"  // 1+3+5+7+9
      "  }\n"
      "}");
  EXPECT_EQ(r.global_scalar("s").as_int(), 25);
}

TEST(InterpBasic, FunctionsAndRecursion) {
  auto r = run(
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
      "int x;\n"
      "void main() { x = fib(10); }");
  EXPECT_EQ(r.global_scalar("x").as_int(), 55);
}

TEST(InterpBasic, ArrayParameterSharesStorage) {
  auto r = run(
      "void fill(int v[], int n) { for (int k = 0; k < n; k++) v[k] = k*k; }\n"
      "int a[5], s;\n"
      "void main() { fill(a, 5); s = a[4]; }");
  EXPECT_EQ(r.global_scalar("s").as_int(), 16);
  EXPECT_EQ(r.global_element("a", {3}).as_int(), 9);
}

TEST(InterpBasic, LocalArrays) {
  auto r = run(
      "int s;\n"
      "void main() {\n"
      "  int t[4];\n"
      "  for (int k = 0; k < 4; k++) t[k] = k + 1;\n"
      "  s = t[0] + t[1] + t[2] + t[3];\n"
      "}");
  EXPECT_EQ(r.global_scalar("s").as_int(), 10);
}

TEST(InterpBasic, BuiltinPower2AbsMinMax) {
  auto r = run(
      "int a, b, c, d;\n"
      "void main() { a = power2(10); b = abs(-7); c = min(3, -2); "
      "d = max(3, -2); }");
  EXPECT_EQ(r.global_scalar("a").as_int(), 1024);
  EXPECT_EQ(r.global_scalar("b").as_int(), 7);
  EXPECT_EQ(r.global_scalar("c").as_int(), -2);
  EXPECT_EQ(r.global_scalar("d").as_int(), 3);
}

TEST(InterpBasic, SwapBuiltin) {
  auto r = run(
      "int a[2];\nvoid main() { a[0] = 1; a[1] = 2; swap(a[0], a[1]); }");
  EXPECT_EQ(r.global_element("a", {0}).as_int(), 2);
  EXPECT_EQ(r.global_element("a", {1}).as_int(), 1);
}

TEST(InterpBasic, RandDeterministicPerSeed) {
  const char* src =
      "int a, b;\nvoid main() { a = rand() % 100; b = rand() % 100; }";
  cm::MachineOptions m1;
  m1.seed = 7;
  auto r1 = run_uc(src, m1);
  auto r2 = run_uc(src, m1);
  EXPECT_EQ(r1.global_scalar("a").as_int(), r2.global_scalar("a").as_int());
  EXPECT_EQ(r1.global_scalar("b").as_int(), r2.global_scalar("b").as_int());
  cm::MachineOptions m2;
  m2.seed = 8;
  auto r3 = run_uc(src, m2);
  EXPECT_TRUE(r1.global_scalar("a").as_int() !=
                  r3.global_scalar("a").as_int() ||
              r1.global_scalar("b").as_int() !=
                  r3.global_scalar("b").as_int());
}

TEST(InterpBasic, SrandReseeds) {
  auto r = run(
      "int a, b;\n"
      "void main() { srand(5); a = rand(); srand(5); b = rand(); }");
  EXPECT_EQ(r.global_scalar("a").as_int(), r.global_scalar("b").as_int());
}

TEST(InterpBasic, PrintOutput) {
  auto r = run(
      "void main() { print(\"hello\", 42, 1.5); print(\"bye\"); }");
  EXPECT_EQ(r.output(), "hello 42 1.5\nbye\n");
}

TEST(InterpBasic, GlobalInitializersRunInOrder) {
  auto r = run("int a = 3;\nint b = 4;\nint c;\nvoid main() { c = a + b; }");
  EXPECT_EQ(r.global_scalar("c").as_int(), 7);
}

TEST(InterpBasic, InfConstant) {
  auto r = run("int x;\nvoid main() { x = INF > 1000000000 ? 1 : 0; }");
  EXPECT_EQ(r.global_scalar("x").as_int(), 1);
}

TEST(InterpBasic, MissingMainReported) {
  EXPECT_THROW(run("int x;"), support::UcRuntimeError);
}

TEST(InterpBasic, CompileErrorThrows) {
  EXPECT_THROW(run("void main() { undefined_var = 1; }"),
               support::UcCompileError);
}

TEST(InterpBasic, FrontendWorkIsCharged) {
  auto r = run("int x;\nvoid main() { x = 1 + 2 + 3; }");
  EXPECT_GT(r.stats().frontend_ops, 0u);
  EXPECT_EQ(r.stats().vector_ops, 0u);  // no parallel work issued
}

TEST(InterpBasic, CharLiteralsAreInts) {
  auto r = run("int x;\nvoid main() { x = 'b' - 'a'; }");
  EXPECT_EQ(r.global_scalar("x").as_int(), 1);
}

}  // namespace
}  // namespace uc::vm
