// Extension coverage: the Paris-style trace back end (the retargeting the
// paper reports as in progress, §5), the dynamic-obstacle scenario (§5
// text) and the Jacobi stencil (the numerical workload class §5 lists as
// "experiments in progress").
#include <gtest/gtest.h>

#include "seqref/seqref.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"
#include "uclang/symbols.hpp"

namespace uc::vm {
namespace {

TEST(ParisTrace, DisabledByDefault) {
  cm::Machine machine;
  auto program = Program::compile(
      "t.uc", "index_set I:i = {0..7};\nint a[8];\n"
              "void main() { par (I) a[i] = i; }");
  program.run_on(machine);
  EXPECT_TRUE(machine.paris_trace().empty());
}

TEST(ParisTrace, RecordsIssuedInstructions) {
  cm::MachineOptions opts;
  opts.record_paris_trace = true;
  cm::Machine machine(opts);
  auto program = Program::compile(
      "t.uc",
      "index_set I:i = {0..7};\nint a[8], s;\n"
      "void main() {\n"
      "  par (I) a[i] = i;\n"
      "  par (I) st (i < 7) a[i] = a[i+1];\n"
      "  s = $+(I; a[i]);\n"
      "  *par (I) st (a[i] < 3) a[i] = a[i] + 1;\n"
      "}");
  program.run_on(machine);
  const auto& trace = machine.paris_trace();
  ASSERT_FALSE(trace.empty());
  auto contains = [&](const char* needle) {
    for (const auto& line : trace) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("cm:alu"));
  EXPECT_TRUE(contains("cm:get-news"));     // the a[i+1] shift
  EXPECT_TRUE(contains("cm:scan"));         // the reduction
  EXPECT_TRUE(contains("cm:global-logior"));  // the *par termination test
  EXPECT_TRUE(contains("vp-set=8"));
}

TEST(ParisTrace, ClearableAndAppending) {
  cm::MachineOptions opts;
  opts.record_paris_trace = true;
  cm::Machine machine(opts);
  machine.charge_global_or();
  EXPECT_EQ(machine.paris_trace().size(), 1u);
  machine.clear_paris_trace();
  EXPECT_TRUE(machine.paris_trace().empty());
  machine.charge_vector_op(64, 2);
  machine.charge_router(64, 10);
  ASSERT_EQ(machine.paris_trace().size(), 2u);
  EXPECT_NE(machine.paris_trace()[1].find("msgs=10"), std::string::npos);
}

TEST(DynamicObstacle, DistancesTrackTheMovedWall) {
  const std::int64_t rows = 12, cols = 12;
  auto program = Program::compile(
      "dyn.uc", papers::grid_dynamic_obstacle(rows, cols));
  auto result = program.run();

  // Final state must match BFS against the *moved* wall (band at i+j==R).
  std::vector<std::uint8_t> wall(static_cast<std::size_t>(rows * cols), 0);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      if (i + j == rows && std::abs(i - rows / 2) <= rows / 4 && j != 0) {
        wall[static_cast<std::size_t>(i * cols + j)] = 1;
      }
    }
  }
  auto expect = seqref::grid_bfs(rows, cols, wall, lang::kUcInf, nullptr);
  for (std::int64_t idx = 0; idx < rows * cols; ++idx) {
    const auto i = idx / cols;
    const auto j = idx % cols;
    const auto got = result.global_element("d", {i, j}).as_int();
    if (wall[static_cast<std::size_t>(idx)] != 0) {
      EXPECT_EQ(got, -2) << idx;
    } else {
      EXPECT_EQ(got, expect[static_cast<std::size_t>(idx)]) << idx;
    }
  }
}

TEST(DynamicObstacle, SecondRelaxationCostsShowUp) {
  auto one = Program::compile(
                 "g.uc", papers::grid_shortest_path(12, 12, true))
                 .run();
  auto two = Program::compile(
                 "dyn.uc", papers::grid_dynamic_obstacle(12, 12))
                 .run();
  EXPECT_GT(two.stats().cycles, one.stats().cycles);
}

TEST(Jacobi, MatchesSequentialReference) {
  const std::int64_t n = 10, iters = 12;
  auto program = Program::compile("jacobi.uc", papers::jacobi(n, iters));
  auto result = program.run();

  // Sequential reference with identical IEEE operation order.
  std::vector<double> u(static_cast<std::size_t>(n * n), 0.0);
  std::vector<double> v(u);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (i == 0 || i == n - 1 || j == 0 || j == n - 1) {
        u[static_cast<std::size_t>(i * n + j)] =
            (static_cast<double>(i) * 10.0 + static_cast<double>(j)) /
            static_cast<double>(n);
      }
    }
  }
  v = u;
  for (std::int64_t t = 0; t < iters; ++t) {
    for (std::int64_t i = 1; i < n - 1; ++i) {
      for (std::int64_t j = 1; j < n - 1; ++j) {
        v[static_cast<std::size_t>(i * n + j)] =
            0.25 * (u[static_cast<std::size_t>((i - 1) * n + j)] +
                    u[static_cast<std::size_t>((i + 1) * n + j)] +
                    u[static_cast<std::size_t>(i * n + j - 1)] +
                    u[static_cast<std::size_t>(i * n + j + 1)]);
      }
    }
    u = v;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(result.global_element("u", {i, j}).as_float(),
                       u[static_cast<std::size_t>(i * n + j)])
          << i << "," << j;
    }
  }
}

TEST(Jacobi, StencilTrafficIsNewsNotRouter) {
  auto result =
      Program::compile("jacobi.uc", papers::jacobi(16, 4)).run();
  EXPECT_GT(result.stats().news_ops, 0u);
  EXPECT_EQ(result.stats().router_messages, 0u);
}

}  // namespace
}  // namespace uc::vm
