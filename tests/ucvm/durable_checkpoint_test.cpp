// Durable-checkpoint suite (docs/ROBUSTNESS.md "Durable checkpoints &
// resume"): snapshots written to a checkpoint directory must restore
// bit-identically in a fresh process, corrupt or version-skewed
// generations must be skipped with a sourced diagnostic (falling back to
// the next older intact one), and a snapshot from a different program or
// option set must never be applied.  True process death is exercised by
// tools/soak.sh and the CLI tests; here the same machinery runs in-process
// through `resume` on a second run.
#include <gtest/gtest.h>

#include <stdlib.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cm/fault.hpp"
#include "support/error.hpp"
#include "uc/paper_programs.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

cm::MachineOptions with_faults(const std::string& spec) {
  cm::MachineOptions m;
  m.faults = cm::parse_fault_spec(spec);
  return m;
}

ExecOptions with_engine(ExecEngine engine, std::uint64_t checkpoint_every) {
  ExecOptions e;
  e.engine = engine;
  e.checkpoint_every = checkpoint_every;
  return e;
}

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/uc-durable-XXXXXX";
    path = ::mkdtemp(buf);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::vector<std::filesystem::path> generations(const std::string& dir) {
  std::vector<std::filesystem::path> out;
  for (const auto& ent : std::filesystem::directory_iterator(dir)) {
    if (ent.path().extension() == ".uck") out.push_back(ent.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void patch_byte(const std::filesystem::path& path, std::uint64_t offset,
                unsigned char value) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(value));
}

// Flips the final payload byte: the header parses, the CRC does not.
void corrupt_payload(const std::filesystem::path& path) {
  const auto size = std::filesystem::file_size(path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(size - 1));
  const int c = f.get();
  f.seekp(static_cast<std::streamoff>(size - 1));
  f.put(static_cast<char>(c ^ 0xff));
}

bool logged(const std::vector<std::string>& logs, const std::string& what) {
  for (const auto& line : logs) {
    if (line.find(what) != std::string::npos) return true;
  }
  return false;
}

class DurableP : public ::testing::TestWithParam<ExecEngine> {};

// A completed run leaves rotating generations behind; a second run with
// `resume` restores the newest one mid-program and must still finish with
// the same output and the same modeled cycles (the snapshot carries the
// machine statistics, so the forward jump is cycle-neutral).
TEST_P(DurableP, ResumeRoundTripBitIdentical) {
  const std::string src = papers::shortest_path_on2(8, 11);
  TempDir dir;
  ExecOptions base = with_engine(GetParam(), 4);
  base.checkpoint_dir = dir.path;
  const RunResult first = run_uc(src, {}, base);
  EXPECT_GT(first.stats().durable_checkpoints, 0u);
  EXPECT_EQ(first.stats().resumes, 0u);
  ASSERT_FALSE(generations(dir.path).empty());

  std::vector<std::string> logs;
  ExecOptions res = base;
  res.resume = true;
  res.log = [&](const std::string& line) { logs.push_back(line); };
  const RunResult second = run_uc(src, {}, res);
  EXPECT_EQ(second.stats().resumes, 1u);
  EXPECT_TRUE(logged(logs, "restoring generation")) << "no restore logged";
  EXPECT_EQ(first.output(), second.output());
  EXPECT_EQ(first.stats().cycles, second.stats().cycles);
}

// Rotation keeps only `checkpoint_keep` generations on disk.
TEST_P(DurableP, RotationBoundsTheDirectory) {
  const std::string src = papers::shortest_path_on2(8, 11);
  TempDir dir;
  ExecOptions e = with_engine(GetParam(), 2);
  e.checkpoint_dir = dir.path;
  e.checkpoint_keep = 2;
  const RunResult run = run_uc(src, {}, e);
  EXPECT_GT(run.stats().durable_checkpoints, 2u);
  EXPECT_EQ(generations(dir.path).size(), 2u);
}

// A bit flip in the newest generation's payload fails the CRC; resume must
// fall back to the next older intact generation with a diagnostic naming
// the skipped file, and still finish bit-identically.
TEST_P(DurableP, CorruptNewestGenerationFallsBack) {
  const std::string src = papers::shortest_path_on2(8, 11);
  TempDir dir;
  ExecOptions base = with_engine(GetParam(), 2);
  base.checkpoint_dir = dir.path;
  const RunResult first = run_uc(src, {}, base);
  auto gens = generations(dir.path);
  ASSERT_GE(gens.size(), 2u) << "need at least two generations to fall back";
  corrupt_payload(gens.back());

  std::vector<std::string> logs;
  ExecOptions res = base;
  res.resume = true;
  res.log = [&](const std::string& line) { logs.push_back(line); };
  const RunResult second = run_uc(src, {}, res);
  EXPECT_TRUE(logged(logs, "skipping")) << "corrupt generation not skipped";
  EXPECT_TRUE(logged(logs, "checksum mismatch"));
  EXPECT_TRUE(logged(logs, "restoring generation"));
  EXPECT_EQ(second.stats().resumes, 1u);
  EXPECT_EQ(first.output(), second.output());
  EXPECT_EQ(first.stats().cycles, second.stats().cycles);
}

// A torn write (truncated tail, as left by a crash mid-write without the
// atomic rename) is detected by the payload-size check, not the CRC.
TEST_P(DurableP, TornTailFallsBack) {
  const std::string src = papers::shortest_path_on2(8, 11);
  TempDir dir;
  ExecOptions base = with_engine(GetParam(), 2);
  base.checkpoint_dir = dir.path;
  const RunResult first = run_uc(src, {}, base);
  auto gens = generations(dir.path);
  ASSERT_GE(gens.size(), 2u);
  std::filesystem::resize_file(gens.back(),
                               std::filesystem::file_size(gens.back()) - 9);

  std::vector<std::string> logs;
  ExecOptions res = base;
  res.resume = true;
  res.log = [&](const std::string& line) { logs.push_back(line); };
  const RunResult second = run_uc(src, {}, res);
  EXPECT_TRUE(logged(logs, "torn write")) << "truncated tail not diagnosed";
  EXPECT_TRUE(logged(logs, "restoring generation"));
  EXPECT_EQ(first.output(), second.output());
  EXPECT_EQ(first.stats().cycles, second.stats().cycles);
}

// A future format version is refused outright rather than misparsed.  The
// version word sits at byte offset 8 of the header, outside the payload
// CRC, so a single-byte patch produces exactly a version-skewed file.
TEST(DurableCheckpoint, VersionSkewIsRefused) {
  const std::string src = papers::shortest_path_on2(8, 11);
  TempDir dir;
  ExecOptions base = with_engine(ExecEngine::kBytecode, 2);
  base.checkpoint_dir = dir.path;
  const RunResult first = run_uc(src, {}, base);
  auto gens = generations(dir.path);
  ASSERT_GE(gens.size(), 2u);
  patch_byte(gens.back(), 8, 2);

  std::vector<std::string> logs;
  ExecOptions res = base;
  res.resume = true;
  res.log = [&](const std::string& line) { logs.push_back(line); };
  const RunResult second = run_uc(src, {}, res);
  EXPECT_TRUE(logged(logs, "format version 2, expected 1")) << "bad skew msg";
  EXPECT_TRUE(logged(logs, "restoring generation"));
  EXPECT_EQ(first.output(), second.output());
}

// Snapshots are bound to the program text: a different program hash means
// every generation is rejected and the run completes from scratch.
TEST(DurableCheckpoint, WrongProgramHashRunsFromScratch) {
  const std::string src = papers::shortest_path_on2(8, 11);
  TempDir dir;
  ExecOptions base = with_engine(ExecEngine::kBytecode, 4);
  base.checkpoint_dir = dir.path;
  base.program_hash = 11;
  const RunResult first = run_uc(src, {}, base);
  ASSERT_FALSE(generations(dir.path).empty());

  std::vector<std::string> logs;
  ExecOptions res = base;
  res.resume = true;
  res.program_hash = 22;
  res.log = [&](const std::string& line) { logs.push_back(line); };
  const RunResult second = run_uc(src, {}, res);
  EXPECT_TRUE(logged(logs, "different program"));
  EXPECT_TRUE(logged(logs, "no intact checkpoint"));
  EXPECT_EQ(second.stats().resumes, 0u);
  EXPECT_EQ(first.output(), second.output());
}

// Same program, different execution options (here: the fusion flag, which
// changes what a mid-run snapshot means) — also rejected.
TEST(DurableCheckpoint, DifferentOptionsRunFromScratch) {
  const std::string src = papers::shortest_path_on2(8, 11);
  TempDir dir;
  ExecOptions base = with_engine(ExecEngine::kBytecode, 4);
  base.checkpoint_dir = dir.path;
  const RunResult first = run_uc(src, {}, base);
  ASSERT_FALSE(generations(dir.path).empty());

  std::vector<std::string> logs;
  ExecOptions res = base;
  res.resume = true;
  res.fuse = !res.fuse;
  res.log = [&](const std::string& line) { logs.push_back(line); };
  const RunResult second = run_uc(src, {}, res);
  EXPECT_TRUE(logged(logs, "different execution options"));
  EXPECT_EQ(second.stats().resumes, 0u);
  EXPECT_EQ(first.output(), second.output());
}

// Every generation corrupt: the fallback chain is exhausted, the run
// proceeds from scratch with a diagnostic, and the output is still right.
TEST(DurableCheckpoint, AllGenerationsCorruptRunsFromScratch) {
  const std::string src = papers::shortest_path_on2(8, 11);
  TempDir dir;
  ExecOptions base = with_engine(ExecEngine::kBytecode, 2);
  base.checkpoint_dir = dir.path;
  const RunResult first = run_uc(src, {}, base);
  auto gens = generations(dir.path);
  ASSERT_GE(gens.size(), 2u);
  for (const auto& g : gens) corrupt_payload(g);

  std::vector<std::string> logs;
  ExecOptions res = base;
  res.resume = true;
  res.log = [&](const std::string& line) { logs.push_back(line); };
  const RunResult second = run_uc(src, {}, res);
  EXPECT_TRUE(logged(logs, "no intact checkpoint"));
  EXPECT_EQ(second.stats().resumes, 0u);
  EXPECT_EQ(first.output(), second.output());
  EXPECT_EQ(first.stats().cycles, second.stats().cycles);
}

// Stray non-checkpoint files in the directory are ignored by the scan and
// never deleted by rotation.
TEST(DurableCheckpoint, StrayFilesSurviveAndAreIgnored) {
  const std::string src = papers::shortest_path_on2(8, 11);
  TempDir dir;
  const std::string stray = dir.path + "/notes.txt";
  { std::ofstream(stray) << "keep me\n"; }
  ExecOptions base = with_engine(ExecEngine::kBytecode, 2);
  base.checkpoint_dir = dir.path;
  base.checkpoint_keep = 1;
  run_uc(src, {}, base);
  EXPECT_TRUE(std::filesystem::exists(stray));
  ExecOptions res = base;
  res.resume = true;
  const RunResult second = run_uc(src, {}, res);
  EXPECT_EQ(second.stats().resumes, 1u);
  EXPECT_TRUE(std::filesystem::exists(stray));
}

// A checkpoint directory without a capture cadence can never write a
// snapshot; that is library misuse, reported eagerly.
TEST(DurableCheckpoint, DirWithoutCadenceIsApiError) {
  TempDir dir;
  ExecOptions e;
  e.checkpoint_dir = dir.path;
  e.checkpoint_every = 0;
  EXPECT_THROW(run_uc(papers::shortest_path_on2(6, 11), {}, e),
               support::ApiError);
}

// An exhausted in-memory replay budget escalates as EscalatedFault — a
// distinct type, so a driver can tell "retry from disk might help" apart
// from timeouts and caps — and the durable generations survive the throw.
TEST(DurableCheckpoint, EscalationLeavesSnapshotsBehind) {
  TempDir dir;
  ExecOptions e = with_engine(ExecEngine::kWalk, 4);
  e.checkpoint_dir = dir.path;
  e.max_replays = 2;
  EXPECT_THROW(run_uc(papers::shortest_path_on2(6, 11),
                      with_faults("memory:p=1,retries=2"), e),
               support::EscalatedFault);
  EXPECT_FALSE(generations(dir.path).empty());
}

// The ucc driver's recovery loop, in miniature: run with a tiny replay
// budget under injected faults; on escalation, resume from disk with a
// fresh budget (`fresh_replay_budget`).  Each attempt restarts from the
// newest snapshot, so the loop makes forward progress and must converge to
// the clean run's exact output.
TEST(DurableCheckpoint, RetryLoopWithFreshBudgetConverges) {
  const std::string src = papers::shortest_path_on2(8, 11);
  const RunResult clean =
      run_uc(src, {}, with_engine(ExecEngine::kWalk, 0));
  TempDir dir;
  // The schedule is deterministic, so this test either always passes or
  // always fails.  The tuning rule if a VM change ever shifts the fault
  // draws: the run needs >= 2 rollbacks in total (else the budget below is
  // never exhausted and the loop is vacuous), but no two faults inside one
  // capture window (one replay per attempt could then never reach the next
  // capture, and the loop would livelock — the situation the driver's
  // attempt cap exists for).  Adjust seed/p until both hold.
  const cm::MachineOptions faults =
      with_faults("memory:p=8e-3,retries=0,seed=1");
  ExecOptions e = with_engine(ExecEngine::kWalk, 1);
  e.checkpoint_dir = dir.path;
  e.max_replays = 1;
  bool done = false;
  int escalations = 0;
  std::string out;
  for (int attempt = 0; attempt < 30 && !done; ++attempt) {
    try {
      const RunResult r = run_uc(src, faults, e);
      out = r.output();
      done = true;
    } catch (const support::EscalatedFault&) {
      ++escalations;
      e.resume = true;
      e.fresh_replay_budget = true;
    }
  }
  ASSERT_TRUE(done) << "retry loop failed to converge in 30 attempts";
  EXPECT_GT(escalations, 0) << "budget was never exhausted; the loop is "
                               "vacuous — lower max_replays or raise p";
  EXPECT_EQ(clean.output(), out);
}

INSTANTIATE_TEST_SUITE_P(Engines, DurableP,
                         ::testing::Values(ExecEngine::kWalk,
                                           ExecEngine::kBytecode),
                         [](const auto& info) {
                           return info.param == ExecEngine::kWalk
                                      ? "walk"
                                      : "bytecode";
                         });

}  // namespace
}  // namespace uc::vm
