// Differential suite: the tree-walk, bytecode lane-kernel, and native
// compiled-kernel engines must be observationally identical (docs/VM.md).
// Every shipped paper program runs under four configurations on fresh
// machines:
//
//   walk            — the tree-walk reference
//   bytecode        — lane kernels with fusion/optimisation off; output,
//                     every cost-model counter, and named global arrays
//                     must match the walk exactly
//   bytecode-fused  — fusion, CSE, and plan caching on (the default);
//                     output and globals must still be bit-identical, and
//                     modeled cycles must never exceed the unfused run
//   native          — fused programs dispatched through emitted-and-
//                     dlopened C++ kernels (docs/VM.md "Native tier");
//                     output, globals, AND modeled cycles must be
//                     bit-identical to the fused bytecode run
//
// Statements the lowering rejects fall back to the walk inside the
// bytecode engine, and statements the native emitter declines fall back
// to bytecode, so these tests also cover both fallback seams (solve,
// print, user calls).  On a host without a working C++ toolchain the
// native run transparently degrades to bytecode and the assertions still
// hold.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/error.hpp"
#include "uc/paper_programs.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

RunResult run_with(const std::string& src, ExecEngine engine,
                   bool fuse = false) {
  ExecOptions eopts;
  eopts.engine = engine;
  eopts.fuse = fuse;
  return run_uc(src, {}, eopts);
}

// Field-by-field: CostStats has no operator==, and comparing each counter
// separately pinpoints which charge diverged.
void expect_stats_equal(const cm::CostStats& w, const cm::CostStats& b) {
  EXPECT_EQ(w.cycles, b.cycles);
  EXPECT_EQ(w.vector_ops, b.vector_ops);
  EXPECT_EQ(w.news_ops, b.news_ops);
  EXPECT_EQ(w.router_ops, b.router_ops);
  EXPECT_EQ(w.router_messages, b.router_messages);
  EXPECT_EQ(w.reductions, b.reductions);
  EXPECT_EQ(w.global_ors, b.global_ors);
  EXPECT_EQ(w.broadcasts, b.broadcasts);
  EXPECT_EQ(w.frontend_ops, b.frontend_ops);
}

void expect_globals_equal(const RunResult& a, const RunResult& b,
                          const std::vector<std::string>& globals,
                          const char* label) {
  for (const auto& name : globals) {
    const auto wa = a.global_array(name);
    const auto ba = b.global_array(name);
    ASSERT_EQ(wa.size(), ba.size()) << label << " " << name;
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_TRUE(wa[i] == ba[i]) << label << " " << name << "[" << i << "]";
    }
  }
}

void expect_parity(const std::string& src,
                   const std::vector<std::string>& globals = {}) {
  RunResult walk = run_with(src, ExecEngine::kWalk);
  RunResult byte = run_with(src, ExecEngine::kBytecode);
  EXPECT_EQ(walk.output(), byte.output());
  expect_stats_equal(walk.stats(), byte.stats());
  expect_globals_equal(walk, byte, globals, "walk/bytecode");

  RunResult fused = run_with(src, ExecEngine::kBytecode, /*fuse=*/true);
  EXPECT_EQ(walk.output(), fused.output());
  expect_globals_equal(walk, fused, globals, "walk/fused");
  EXPECT_LE(fused.stats().cycles, byte.stats().cycles);

  // The native tier replaces the interpreter only; everything the cost
  // model observes is identical, so cycles must equal the fused run's
  // exactly (not merely bound it).
  RunResult native = run_with(src, ExecEngine::kNative, /*fuse=*/true);
  EXPECT_EQ(walk.output(), native.output());
  expect_globals_equal(walk, native, globals, "walk/native");
  expect_stats_equal(fused.stats(), native.stats());
}

// Both engines must raise the same UcRuntimeError text (the bytecode
// executor reuses the walk's error sites and messages), fused or not.
void expect_error_parity(const std::string& src) {
  std::string walk_what, byte_what, fused_what;
  try {
    run_with(src, ExecEngine::kWalk);
    FAIL() << "walk engine did not throw";
  } catch (const support::UcRuntimeError& e) {
    walk_what = e.what();
  }
  try {
    run_with(src, ExecEngine::kBytecode);
    FAIL() << "bytecode engine did not throw";
  } catch (const support::UcRuntimeError& e) {
    byte_what = e.what();
  }
  try {
    run_with(src, ExecEngine::kBytecode, /*fuse=*/true);
    FAIL() << "fused bytecode engine did not throw";
  } catch (const support::UcRuntimeError& e) {
    fused_what = e.what();
  }
  // A native kernel that hits a runtime error discards its buffered
  // writes and reruns the statement on bytecode, which raises the
  // identical deterministic error with its full message.
  std::string native_what;
  try {
    run_with(src, ExecEngine::kNative, /*fuse=*/true);
    FAIL() << "native engine did not throw";
  } catch (const support::UcRuntimeError& e) {
    native_what = e.what();
  }
  EXPECT_EQ(walk_what, byte_what);
  EXPECT_EQ(walk_what, fused_what);
  EXPECT_EQ(walk_what, native_what);
}

TEST(EngineParity, Fig6ShortestPathOn2) {
  expect_parity(papers::shortest_path_on2(12), {"d"});
}

TEST(EngineParity, Fig7ShortestPathOn3) {
  expect_parity(papers::shortest_path_on3(10), {"d"});
}

TEST(EngineParity, ShortestPathStarSolve) {
  expect_parity(papers::shortest_path_star_solve(10), {"d"});
}

TEST(EngineParity, Fig8GridObstacle) {
  expect_parity(papers::grid_shortest_path(10, 10, true), {"d"});
}

TEST(EngineParity, Fig8GridNoObstacle) {
  expect_parity(papers::grid_shortest_path(9, 11, false), {"d"});
}

TEST(EngineParity, GridDynamicObstacle) {
  expect_parity(papers::grid_dynamic_obstacle(8, 8), {"d"});
}

TEST(EngineParity, PrefixSumsStarPar) {
  expect_parity(papers::prefix_sums_star_par(16), {"a"});
}

TEST(EngineParity, PrefixSumsSeqPar) {
  expect_parity(papers::prefix_sums_seq_par(16), {"a"});
}

TEST(EngineParity, Ranksort) { expect_parity(papers::ranksort(24)); }

TEST(EngineParity, OddEvenSort) { expect_parity(papers::odd_even_sort(24)); }

TEST(EngineParity, Wavefront) { expect_parity(papers::wavefront(12)); }

TEST(EngineParity, Histogram) { expect_parity(papers::histogram(64)); }

TEST(EngineParity, ShiftedSumMapped) {
  expect_parity(papers::shifted_sum(16, 4, true));
}

TEST(EngineParity, ShiftedSumUnmapped) {
  expect_parity(papers::shifted_sum(16, 4, false));
}

TEST(EngineParity, ReversalMapped) {
  expect_parity(papers::reversal(16, 4, true));
}

TEST(EngineParity, ReversalUnmapped) {
  expect_parity(papers::reversal(16, 4, false));
}

TEST(EngineParity, FoldCombineMapped) {
  expect_parity(papers::fold_combine(16, 4, true));
}

TEST(EngineParity, FoldCombineUnmapped) {
  expect_parity(papers::fold_combine(16, 4, false));
}

TEST(EngineParity, CopyBroadcastMapped) {
  expect_parity(papers::copy_broadcast(16, 4, true));
}

TEST(EngineParity, CopyBroadcastUnmapped) {
  expect_parity(papers::copy_broadcast(16, 4, false));
}

TEST(EngineParity, Jacobi) { expect_parity(papers::jacobi(12, 8)); }

// --- language-feature parity beyond the paper programs ---

TEST(EngineParity, FloatArithmeticAndCoercion) {
  expect_parity(
      "index_set I:i = {0..7};\n"
      "float a[8]; int b[8];\n"
      "void main() {\n"
      "  par (I) { a[i] = i * 1.5; b[i] = a[i] + 0.5; }\n"
      "  par (I) a[i] = a[i] / 2 + b[i] % 3;\n"
      "  print(\"sample\", a[3], b[5]);\n"
      "}\n",
      {"a", "b"});
}

TEST(EngineParity, TernaryShortCircuitAndBuiltins) {
  expect_parity(
      "index_set I:i = {0..15};\n"
      "int a[16];\n"
      "void main() {\n"
      "  par (I) {\n"
      "    a[i] = (i > 7 && i % 2 == 0) ? min(i, 10) : max(power2(3), i);\n"
      "    a[i] += abs(7 - i) || i;\n"
      "  }\n"
      "}\n",
      {"a"});
}

TEST(EngineParity, RandStreamsMatch) {
  // rand() draws a per-lane stream seeded from (statement, vp); both
  // engines must consume identical streams.
  expect_parity(
      "index_set I:i = {0..31};\n"
      "int a[32];\n"
      "void main() {\n"
      "  srand(7);\n"
      "  par (I) a[i] = rand() % 100;\n"
      "  par (I) a[i] += rand() % 10;\n"
      "}\n",
      {"a"});
}

TEST(EngineParity, ReduceWithPredAndOthers) {
  expect_parity(
      "index_set I:i = {0..7}, J:j = I;\n"
      "int a[8][8]; int r[8];\n"
      "void main() {\n"
      "  par (I, J) a[i][j] = (i * 31 + j * 17) % 23;\n"
      "  par (I) r[i] = $+(J st (a[i][j] > 10) a[i][j] others 1);\n"
      "}\n",
      {"r"});
}

TEST(EngineParity, IncDecOnArraysAndScalars) {
  expect_parity(
      "index_set I:i = {0..7};\n"
      "int a[8]; int k;\n"
      "void main() {\n"
      "  k = 0;\n"
      "  par (I) a[i] = i;\n"
      "  par (I) a[i]++;\n"
      "  seq (I) k += a[i];\n"
      "  print(\"sum\", k);\n"
      "}\n",
      {"a"});
}

// --- fusion safety ---

// Cross-lane RAW hazard: the second statement reads a[i+1], which the
// first statement writes from a *different* lane.  UC's synchronous
// semantics require the first statement to complete across all lanes
// before the second starts, so a fused per-lane kernel that ran both
// statements back-to-back in one lane would read the stale value.  The
// fusion gate must refuse to fuse this pair; the run must stay
// bit-identical to the walk.
TEST(EngineParity, FusionBlockedOnCrossLaneRaw) {
  expect_parity(
      "index_set I:i = {0..7};\n"
      "int a[9]; int b[8];\n"
      "void main() {\n"
      "  par (I) a[i] = i;\n"
      "  a[8] = 100;\n"
      "  par (I) {\n"
      "    a[i] = a[i] * 10;\n"
      "    b[i] = a[i + 1];\n"
      "  }\n"
      "}\n",
      {"a", "b"});
}

// Same-subscript RAW is the fusable case: b[i] reads exactly the a[i]
// the first member wrote in the same lane, so fusion may forward the
// stored value through a register.  Results must still match the walk.
TEST(EngineParity, FusionForwardsSameLaneRaw) {
  expect_parity(
      "index_set I:i = {0..7};\n"
      "int a[8]; int b[8]; int c[8];\n"
      "void main() {\n"
      "  par (I) {\n"
      "    a[i] = i * 3 + 1;\n"
      "    b[i] = a[i] * a[i];\n"
      "    c[i] = a[i] + b[i];\n"
      "  }\n"
      "}\n",
      {"a", "b", "c"});
}

// --- diagnostics parity: same text, same location, either engine ---

TEST(EngineParity, SubscriptErrorMatches) {
  expect_error_parity(
      "index_set I:i = {0..3};\n"
      "int d[4][4];\nvoid main() { par (I) d[i][i + 2] = 1; }");
}

TEST(EngineParity, DivisionByZeroErrorMatches) {
  expect_error_parity(
      "index_set I:i = {0..3};\n"
      "int a[4];\nvoid main() { par (I) a[i] = 8 / (i - 2); }");
}

TEST(EngineParity, WriteConflictErrorMatches) {
  expect_error_parity(
      "index_set I:i = {0..3};\n"
      "int a[4];\nvoid main() { par (I) a[0] = i; }");
}

TEST(EngineParity, Power2RangeErrorMatches) {
  expect_error_parity(
      "index_set I:i = {0..3};\n"
      "int a[4];\nvoid main() { par (I) a[i] = power2(63 + i); }");
}

}  // namespace
}  // namespace uc::vm
