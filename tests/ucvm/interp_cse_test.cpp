// The common-subexpression cost optimisation (paper §4): identical
// results, lower charge when subexpressions repeat.
#include <gtest/gtest.h>

#include "ucvm/interp.hpp"
#include "ucvm/interp_detail.hpp"
#include "uclang/frontend.hpp"

namespace uc::vm {
namespace {

const lang::Expr& rhs_of_first_par_assign(const lang::CompilationUnit& unit) {
  auto* fn = unit.program->find_function("main");
  auto& par = static_cast<lang::UcConstructStmt&>(*fn->body->body[0]);
  auto& es = static_cast<lang::ExprStmt&>(*par.blocks[0].body);
  return *static_cast<lang::AssignExpr&>(*es.expr).rhs;
}

TEST(Cse, RepeatedSubtreeCountsOnce) {
  auto unit = lang::compile(
      "t.uc",
      "index_set I:i = {0..3};\nint a[4], b[4];\n"
      "void main() { par (I) b[i] = a[i] * a[i]; }");
  ASSERT_TRUE(unit->ok());
  const auto& rhs = rhs_of_first_par_assign(*unit);
  auto plain = detail::Impl::expr_weight(rhs);
  auto cse = detail::Impl::expr_weight_cse(rhs);
  EXPECT_LT(cse, plain);
}

TEST(Cse, DistinctSubtreesNotDeduplicated) {
  // Every leaf occurs exactly once: nothing to share.
  auto unit = lang::compile(
      "t.uc",
      "index_set I:i = {0..3};\nint a[4], b[4], y, z;\n"
      "void main() { par (I) b[i] = a[i] * y - z; }");
  ASSERT_TRUE(unit->ok());
  const auto& rhs = rhs_of_first_par_assign(*unit);
  EXPECT_EQ(detail::Impl::expr_weight_cse(rhs),
            detail::Impl::expr_weight(rhs));
}

TEST(Cse, ImpureCallsNeverDeduplicated) {
  // The two rand() calls are textually identical but impure; with all
  // other leaves distinct, the CSE weight must equal the naive weight.
  auto unit = lang::compile(
      "t.uc",
      "index_set I:i = {0..3};\nint b[4];\n"
      "void main() { par (I) b[i] = rand()%4 + rand()%5; }");
  ASSERT_TRUE(unit->ok());
  const auto& rhs = rhs_of_first_par_assign(*unit);
  EXPECT_EQ(detail::Impl::expr_weight_cse(rhs),
            detail::Impl::expr_weight(rhs));
}

TEST(Cse, RepeatedLeafCountsOnce) {
  // `i` repeats across the two operands — register reuse.
  auto unit = lang::compile(
      "t.uc",
      "index_set I:i = {0..3};\nint a[4], b[4];\n"
      "void main() { par (I) b[i] = a[i] * a[(i+1)%4]; }");
  ASSERT_TRUE(unit->ok());
  const auto& rhs = rhs_of_first_par_assign(*unit);
  EXPECT_EQ(detail::Impl::expr_weight_cse(rhs),
            detail::Impl::expr_weight(rhs) - 1);
}

TEST(Cse, LowersChargedCyclesOnly) {
  const char* src =
      "index_set I:i = {1..62};\nint a[64], b[64];\n"
      "void main() {\n"
      "  par (I) a[i] = i;\n"
      "  par (I) b[i] = (a[i-1] + a[i+1]) * (a[i-1] + a[i+1])\n"
      "               + (a[i-1] + a[i+1]);\n"
      "}";
  ExecOptions with;
  ExecOptions without;
  without.common_subexpression_elimination = false;
  auto r_with = run_uc(src, {}, with);
  auto r_without = run_uc(src, {}, without);
  EXPECT_LT(r_with.stats().cycles, r_without.stats().cycles);
  for (int k = 1; k < 63; ++k) {
    EXPECT_EQ(r_with.global_element("b", {k}).as_int(),
              r_without.global_element("b", {k}).as_int());
  }
}

TEST(Cse, RandResultsUnaffectedByCseSetting) {
  // rand() is impure: CSE must not merge the two calls, so both settings
  // see the same two-draw stream.
  const char* src =
      "index_set I:i = {0..7};\nint b[8];\n"
      "void main() { par (I) b[i] = rand()%100 * 1000 + rand()%100; }";
  ExecOptions with;
  ExecOptions without;
  without.common_subexpression_elimination = false;
  auto a = run_uc(src, {}, with);
  auto b = run_uc(src, {}, without);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(a.global_element("b", {k}).as_int(),
              b.global_element("b", {k}).as_int());
  }
  // And the two draws differ somewhere (no accidental merging of the two
  // rand() calls into one).
  bool any_differ = false;
  for (int k = 0; k < 8; ++k) {
    auto v = a.global_element("b", {k}).as_int();
    any_differ = any_differ || (v / 1000 != v % 1000);
  }
  EXPECT_TRUE(any_differ);
}

}  // namespace
}  // namespace uc::vm
