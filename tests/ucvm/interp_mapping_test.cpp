// Map sections (paper §4): permute / fold / copy must leave program
// results unchanged while cutting communication cost.
#include <gtest/gtest.h>

#include "uc/paper_programs.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

std::vector<std::int64_t> ints(const std::vector<Value>& vs) {
  std::vector<std::int64_t> out;
  for (const auto& v : vs) out.push_back(v.as_int());
  return out;
}

RunResult run_opt(const std::string& src, bool apply_mappings) {
  ExecOptions opts;
  opts.apply_mappings = apply_mappings;
  return run_uc(src, {}, opts);
}

TEST(Mapping, PermuteDoesNotChangeResults) {
  auto with = run_uc(papers::shifted_sum(64, 4, true));
  auto without = run_uc(papers::shifted_sum(64, 4, false));
  EXPECT_EQ(ints(with.global_array("a")), ints(without.global_array("a")));
}

TEST(Mapping, PermuteEliminatesRemoteTraffic) {
  auto with = run_uc(papers::shifted_sum(64, 8, true));
  auto without = run_uc(papers::shifted_sum(64, 8, false));
  // Without the mapping every a[i] = a[i] + b[i+1] fetches b over the NEWS
  // grid / router; with it the access is local.  The mapping itself pays
  // one relocation sweep, so compare steady-state comm instructions.
  EXPECT_LT(with.stats().news_ops + with.stats().router_ops * 4,
            without.stats().news_ops + without.stats().router_ops * 4);
}

TEST(Mapping, PermuteReversalCutsCycles) {
  auto with = run_uc(papers::reversal(128, 8, true));
  auto without = run_uc(papers::reversal(128, 8, false));
  EXPECT_EQ(ints(with.global_array("a")), ints(without.global_array("a")));
  EXPECT_LT(with.stats().cycles, without.stats().cycles);
}

TEST(Mapping, FoldDoesNotChangeResults) {
  auto with = run_uc(papers::fold_combine(64, 6, true));
  auto without = run_uc(papers::fold_combine(64, 6, false));
  EXPECT_EQ(ints(with.global_array("out")), ints(without.global_array("out")));
}

TEST(Mapping, FoldReducesRemoteAccesses) {
  auto with = run_uc(papers::fold_combine(64, 8, true));
  auto without = run_uc(papers::fold_combine(64, 8, false));
  EXPECT_LT(with.stats().router_messages, without.stats().router_messages);
}

TEST(Mapping, CopyDoesNotChangeResults) {
  auto with = run_uc(papers::copy_broadcast(16, 3, true));
  auto without = run_uc(papers::copy_broadcast(16, 3, false));
  EXPECT_EQ(ints(with.global_array("m")), ints(without.global_array("m")));
}

TEST(Mapping, CopyEliminatesRepeatedRemoteReads) {
  auto with = run_uc(papers::copy_broadcast(16, 6, true));
  auto without = run_uc(papers::copy_broadcast(16, 6, false));
  EXPECT_LT(with.stats().router_messages, without.stats().router_messages);
}

TEST(Mapping, ApplyMappingsOptionDisablesSections) {
  // With apply_mappings=false the map section is parsed but ignored, so
  // both variants cost the same.
  auto ignored = run_opt(papers::shifted_sum(64, 8, true), false);
  auto plain = run_opt(papers::shifted_sum(64, 8, false), false);
  EXPECT_EQ(ignored.stats().cycles, plain.stats().cycles);
}

TEST(Mapping, MapSectionInsideFunctionBody) {
  // Mappings may appear as statements (the paper keeps them in a separate
  // section; we allow both placements — LANGUAGE.md).
  auto r = run_uc(
      "#define N 16\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], b[N];\n"
      "void main() {\n"
      "  map (I) { permute (I) b[i+1] :- a[i]; }\n"
      "  par (I) { a[i] = i; b[i] = 100 + i; }\n"
      "  par (I) st (i < N-1) a[i] = a[i] + b[i+1];\n"
      "}");
  EXPECT_EQ(r.global_element("a", {3}).as_int(), 3 + 104);
}

TEST(Mapping, OutOfRangeMappingSubscriptsAreSkipped) {
  // b[i+1] for i == N-1 falls outside b; the paper's transformation just
  // leaves that element on its default processor.
  auto r = run_uc(papers::shifted_sum(8, 1, true));
  EXPECT_EQ(r.global_element("a", {7}).as_int(), 7);  // untouched edge
}

TEST(Mapping, DefaultMappingAlignsConformingArrays) {
  // a[i] = b[i] must be fully local under default mappings.
  auto r = run_uc(
      "#define N 32\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], b[N];\n"
      "void main() {\n"
      "  par (I) b[i] = i;\n"
      "  par (I) a[i] = b[i];\n"
      "}");
  EXPECT_EQ(r.stats().router_messages, 0u);
  EXPECT_EQ(r.stats().news_ops, 0u);
}

TEST(Mapping, ShiftedAccessUsesNewsNotRouter) {
  auto r = run_uc(
      "#define N 32\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], b[N];\n"
      "void main() {\n"
      "  par (I) b[i] = i;\n"
      "  par (I) st (i < N-1) a[i] = b[i+1];\n"
      "}");
  EXPECT_GT(r.stats().news_ops, 0u);
  EXPECT_EQ(r.stats().router_messages, 0u);
}

TEST(Mapping, TransposedAccessUsesRouter) {
  auto r = run_uc(
      "#define N 8\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N][N], b[N][N];\n"
      "void main() {\n"
      "  par (I, J) b[i][j] = i * N + j;\n"
      "  par (I, J) a[i][j] = b[j][i];\n"
      "}");
  EXPECT_GT(r.stats().router_messages, 0u);
}

}  // namespace
}  // namespace uc::vm
