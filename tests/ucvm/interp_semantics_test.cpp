// Additional semantic coverage: float data-parallel arithmetic, deep
// construct nesting, multi-set seq, *seq, print ordering, replicated
// (copy-mapped) writes, index-set aliases and element shadowing.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

RunResult run(const std::string& src) { return run_uc(src); }

std::vector<std::int64_t> ints(const std::vector<Value>& vs) {
  std::vector<std::int64_t> out;
  for (const auto& v : vs) out.push_back(v.as_int());
  return out;
}

TEST(Semantics, FloatParallelArithmetic) {
  auto r = run(
      "index_set I:i = {0..7};\nfloat f[8];\n"
      "void main() { par (I) f[i] = i / 2.0 + 0.25; }");
  EXPECT_DOUBLE_EQ(r.global_element("f", {5}).as_float(), 2.75);
}

TEST(Semantics, FloatIntMixedStorageTruncation) {
  auto r = run(
      "index_set I:i = {0..3};\nint a[4];\nfloat f[4];\n"
      "void main() {\n"
      "  par (I) f[i] = i + 0.9;\n"
      "  par (I) a[i] = f[i];\n"  // store truncates toward zero
      "}");
  EXPECT_EQ(ints(r.global_array("a")), (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(Semantics, FloatReductionInsidePar) {
  auto r = run(
      "index_set I:i = {0..3}, J:j = I;\nfloat m[4][4], rowsum[4];\n"
      "void main() {\n"
      "  par (I, J) m[i][j] = i + j * 0.5;\n"
      "  par (I) rowsum[i] = $+(J; m[i][j]);\n"
      "}");
  EXPECT_DOUBLE_EQ(r.global_element("rowsum", {2}).as_float(),
                   4 * 2 + 0.5 * (0 + 1 + 2 + 3));
}

TEST(Semantics, ThreeLevelNesting) {
  // par over I, seq over J, par over K — all bindings visible inside.
  auto r = run(
      "index_set I:i = {0..2}, J:j = {0..2}, K:k = {0..2};\n"
      "int c[3][3][3];\n"
      "void main() {\n"
      "  par (I)\n"
      "    seq (J)\n"
      "      par (K)\n"
      "        c[i][j][k] = 100*i + 10*j + k;\n"
      "}");
  EXPECT_EQ(r.global_element("c", {2, 1, 0}).as_int(), 210);
  EXPECT_EQ(r.global_element("c", {0, 2, 2}).as_int(), 22);
}

TEST(Semantics, SeqOverTwoSetsOdometerOrder) {
  auto r = run(
      "index_set I:i = {0..1}, J:j = {0..2};\n"
      "int order[6], tick;\n"
      "void main() {\n"
      "  tick = 0;\n"
      "  seq (I, J) { order[tick] = 10*i + j; tick = tick + 1; }\n"
      "}");
  EXPECT_EQ(ints(r.global_array("order")),
            (std::vector<std::int64_t>{0, 1, 2, 10, 11, 12}));
}

TEST(Semantics, StarSeqIteratesUntilNoPredicateHolds) {
  // Each sweep decrements positive elements once per matching k.
  auto r = run(
      "index_set K:k = {0..3};\nint a[4], sweeps;\n"
      "void main() {\n"
      "  a[0]=0; a[1]=1; a[2]=2; a[3]=3;\n"
      "  sweeps = 0;\n"
      "  *seq (K) st (a[k] > 0) { a[k] = a[k] - 1; sweeps = sweeps + 1; }\n"
      "}");
  EXPECT_EQ(ints(r.global_array("a")), (std::vector<std::int64_t>{0, 0, 0, 0}));
  EXPECT_EQ(r.global_scalar("sweeps").as_int(), 1 + 2 + 3);
}

TEST(Semantics, PrintInsideParIsLaneOrdered) {
  auto r = run(
      "index_set I:i = {0..3};\nint a[4];\n"
      "void main() { par (I) { a[i] = i; print(\"lane\", i); } }");
  EXPECT_EQ(r.output(), "lane 0\nlane 1\nlane 2\nlane 3\n");
}

TEST(Semantics, PrintLaneOrderIndependentOfThreads) {
  const char* src =
      "index_set I:i = {0..31};\nint a[32];\n"
      "void main() { par (I) { a[i] = i; print(i); } }";
  cm::MachineOptions one;
  one.host_threads = 1;
  cm::MachineOptions four;
  four.host_threads = 4;
  EXPECT_EQ(run_uc(src, one).output(), run_uc(src, four).output());
}

TEST(Semantics, CopyMappedArrayWritesStayConsistent) {
  // Writing a replicated array updates every copy (modelled as the single
  // backing field plus a broadcast charge) — reads after writes see the
  // new values.
  auto r = run(
      "#define N 8\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int v[N], m[N][N];\n"
      "map (I) { copy (J) v; }\n"
      "void main() {\n"
      "  par (I) v[i] = i;\n"
      "  par (I) v[i] = v[i] * 10;\n"
      "  par (I, J) m[i][j] = v[j];\n"
      "}");
  EXPECT_EQ(r.global_element("m", {3, 5}).as_int(), 50);
  EXPECT_GT(r.stats().broadcasts, 0u);
}

TEST(Semantics, AliasSetsShareValuesButNotElements) {
  auto r = run(
      "index_set I:i = {2..4}, J:j = I;\n"
      "int a[5][5];\n"
      "void main() { par (I, J) a[i][j] = i * 10 + j; }");
  EXPECT_EQ(r.global_element("a", {2, 4}).as_int(), 24);
  EXPECT_EQ(r.global_element("a", {4, 2}).as_int(), 42);
  EXPECT_EQ(r.global_element("a", {0, 0}).as_int(), 0);  // untouched
}

TEST(Semantics, NonZeroBasedRangeSets) {
  auto r = run(
      "index_set I:i = {5..9};\nint a[10];\n"
      "void main() { par (I) a[i] = i * i; }");
  EXPECT_EQ(r.global_element("a", {7}).as_int(), 49);
  EXPECT_EQ(r.global_element("a", {4}).as_int(), 0);
}

TEST(Semantics, ElementShadowingInNestedConstructs) {
  // Inner par over the same set rebinds the element (paper §3.4).
  auto r = run(
      "index_set I:i = {0..3};\n"
      "int outer_seen[4], inner_sum[4];\n"
      "void main() {\n"
      "  par (I) {\n"
      "    outer_seen[i] = i;\n"
      "    inner_sum[i] = $+(I; i * i);\n"  // inner i sweeps 0..3
      "  }\n"
      "}");
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(r.global_element("outer_seen", {k}).as_int(), k);
    EXPECT_EQ(r.global_element("inner_sum", {k}).as_int(), 0 + 1 + 4 + 9);
  }
}

TEST(Semantics, ChainedAssignmentInPar) {
  auto r = run(
      "index_set I:i = {0..3};\nint a[4], b[4];\n"
      "void main() { par (I) a[i] = b[i] = i + 1; }");
  EXPECT_EQ(ints(r.global_array("a")), (std::vector<std::int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(ints(r.global_array("b")), (std::vector<std::int64_t>{1, 2, 3, 4}));
}

TEST(Semantics, ForLoopInsideParBody) {
  auto r = run(
      "index_set I:i = {0..3};\nint a[4];\n"
      "void main() {\n"
      "  par (I) {\n"
      "    int acc; acc = 0;\n"
      "    for (int k = 0; k <= i; k++) acc = acc + k;\n"
      "    a[i] = acc;\n"
      "  }\n"
      "}");
  EXPECT_EQ(ints(r.global_array("a")), (std::vector<std::int64_t>{0, 1, 3, 6}));
}

TEST(Semantics, FunctionWithArrayParamFromFrontendTouchesCmMemory) {
  auto r = run(
      "index_set I:i = {0..7};\n"
      "int a[8], s;\n"
      "int sum8(int v[]) {\n"
      "  int acc; acc = 0;\n"
      "  for (int k = 0; k < 8; k++) acc = acc + v[k];\n"
      "  return acc;\n"
      "}\n"
      "void main() { par (I) a[i] = i; s = sum8(a); }");
  EXPECT_EQ(r.global_scalar("s").as_int(), 28);
  EXPECT_GT(r.stats().frontend_ops, 0u);  // front end pulled CM data
}

TEST(Semantics, OneofIsSeededDeterministic) {
  const char* src =
      "index_set I:i = {0..3};\nint a[4], b[4];\n"
      "void main() { oneof (I) st (1) a[i] = 1; st (1) b[i] = 1; }";
  cm::MachineOptions m;
  m.seed = 42;
  auto r1 = run_uc(src, m);
  auto r2 = run_uc(src, m);
  EXPECT_EQ(ints(r1.global_array("a")), ints(r2.global_array("a")));
  EXPECT_EQ(ints(r1.global_array("b")), ints(r2.global_array("b")));
}

TEST(Semantics, WhileAtFrontendDrivingParallelSteps) {
  // A front-end loop issuing parallel steps (the dynamic-test driver
  // pattern): count rounds until all elements reach a threshold.
  auto r = run(
      "index_set I:i = {0..7};\nint a[8], rounds, done;\n"
      "void main() {\n"
      "  par (I) a[i] = i;\n"
      "  rounds = 0;\n"
      "  done = 0;\n"
      "  while (!done) {\n"
      "    par (I) st (a[i] < 7) a[i] = a[i] + 1;\n"
      "    done = $&&(I; a[i] >= 7);\n"
      "    rounds = rounds + 1;\n"
      "  }\n"
      "}");
  EXPECT_EQ(r.global_scalar("rounds").as_int(), 7);
  EXPECT_EQ(r.global_element("a", {0}).as_int(), 7);
}

TEST(Semantics, ParallelWriteToFrontEndLocalIsConflictChecked) {
  // Lanes writing different values into a front-end (main-frame) scalar
  // violate the single-value rule even though the target is not an array.
  EXPECT_THROW(run("index_set I:i = {0..3};\n"
                   "void main() { int s; par (I) s = i; }"),
               support::UcRuntimeError);
  // Same value from every lane is fine.
  auto r = run(
      "index_set I:i = {0..3};\nint out;\n"
      "void main() { int s; par (I) s = 7; out = s; }");
  EXPECT_EQ(r.global_scalar("out").as_int(), 7);
}

TEST(Semantics, FunctionLocalLoopStateIsPrivatePerLane) {
  // Regression: locals of a function called per lane update immediately
  // (they are private), while the caller-visible writes stay synchronous.
  auto r = run(
      "int count_bits(int v) {\n"
      "  int n; n = 0;\n"
      "  while (v > 0) { n = n + (v % 2); v = v / 2; }\n"
      "  return n;\n"
      "}\n"
      "index_set I:i = {0..7};\nint a[8];\n"
      "void main() { par (I) a[i] = count_bits(i); }");
  const std::int64_t expect[] = {0, 1, 1, 2, 1, 2, 2, 3};
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(r.global_element("a", {k}).as_int(), expect[k]) << k;
  }
}

}  // namespace
}  // namespace uc::vm
