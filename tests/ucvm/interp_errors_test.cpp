// Runtime error reporting: bounds, conflicts, iteration limits, misuse.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

void expect_error(const std::string& src, const std::string& needle,
                  ExecOptions opts = {}) {
  try {
    run_uc(src, {}, opts);
    FAIL() << "expected UcRuntimeError containing '" << needle << "'";
  } catch (const support::UcRuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(InterpErrors, SubscriptOutOfRange) {
  expect_error("int a[4];\nvoid main() { a[4] = 1; }", "out of range");
}

TEST(InterpErrors, SubscriptNegative) {
  expect_error("int a[4];\nvoid main() { int k; k = 0 - 1; a[k] = 1; }",
               "out of range");
}

TEST(InterpErrors, ErrorMessageNamesArrayAndIndices) {
  expect_error(
      "int d[4][4];\nvoid main() { int k; k = 7; d[2][k] = 1; }",
      "d[2][7]");
}

TEST(InterpErrors, ErrorMessageCarriesSourceLocation) {
  expect_error("int a[4];\nvoid main() { a[9] = 1; }", "program.uc:2:");
}

TEST(InterpErrors, DivisionByZero) {
  expect_error("int x;\nvoid main() { int z; z = 0; x = 1 / z; }",
               "division by zero");
}

TEST(InterpErrors, ModuloByZero) {
  expect_error("int x;\nvoid main() { int z; z = 0; x = 1 % z; }",
               "modulo by zero");
}

TEST(InterpErrors, ConflictNamesLocation) {
  expect_error(
      "index_set I:i = {0..3};\nint x[1];\n"
      "void main() { par (I) x[0] = i; }",
      "x[0]");
}

TEST(InterpErrors, Power2OutOfRange) {
  expect_error("int x;\nvoid main() { int k; k = 70; x = power2(k); }",
               "power2");
}

TEST(InterpErrors, StarParIterationLimit) {
  ExecOptions opts;
  opts.max_iterations = 8;
  expect_error(
      "index_set I:i = {0..3};\nint a[4];\n"
      "void main() { *par (I) st (1) a[i] = a[i] + 1; }",
      "iteration limit", opts);
}

TEST(InterpErrors, SolveCircularNamesProblem) {
  expect_error(
      "index_set I:i = {0..1};\nint a[2];\n"
      "void main() { solve (I) a[i] = a[1-i] + 1; }",
      "circular");
}

TEST(InterpErrors, TransitiveParallelCallCaughtAtRuntime) {
  // Sema catches direct calls; the f->g->par chain is caught by the VM.
  expect_error(
      "index_set I:i = {0..3};\nint a[4];\n"
      "void g() { par (I) a[i] = 0; }\n"
      "void f() { g(); }\n"
      "void main() { par (I) st (i==0) f(); }",
      "parallel");
}

TEST(InterpErrors, BreakInsideParBodyRejectedAtCompileTime) {
  // Sema's "break outside a loop" fires before the VM ever runs.
  EXPECT_THROW(run_uc("index_set I:i = {0..3};\nint a[4];\n"
                      "void main() { par (I) { a[i] = 1; break; } }"),
               support::UcCompileError);
}

TEST(InterpErrors, BreakInLoopInsideParBodyRejectedAtRuntime) {
  // Legal for sema (break sits in a while loop) but the data-parallel VM
  // does not support divergent early exit.
  expect_error(
      "index_set I:i = {0..3};\nint a[4];\n"
      "void main() { par (I) { while (a[i] < 3) { a[i] = a[i] + 1; break; } } }",
      "break");
}

TEST(InterpErrors, SrandInParallelContextRejected) {
  expect_error(
      "index_set I:i = {0..3};\nint a[4];\n"
      "void main() { par (I) { srand(i); a[i] = 0; } }",
      "front end");
}

TEST(InterpErrors, LocalArrayPassedAfterDeclarationWorks) {
  auto r = run_uc(
      "int probe(int v[]) { return v[0]; }\n"
      "int x;\n"
      "void pick(int flag) { int t[2]; t[0] = 42; if (flag) x = probe(t); }\n"
      "void main() { pick(1); }");
  EXPECT_EQ(r.global_scalar("x").as_int(), 42);
}

TEST(InterpErrors, WhileLimitInsideParBody) {
  ExecOptions opts;
  opts.max_iterations = 8;
  expect_error(
      "index_set I:i = {0..3};\nint a[4];\n"
      "void main() { par (I) { int c; c = 0; while (1) c = c + 1; } }",
      "iteration limit", opts);
}

}  // namespace
}  // namespace uc::vm
