// Array slices as function arguments (paper §3: pointers may pass "an
// array (or an array slice)").
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

RunResult run(const std::string& src) { return run_uc(src); }

TEST(Slices, RowOfMatrixReadThroughFunction) {
  auto r = run(
      "#define N 4\n"
      "int sum_row(int v[], int n) {\n"
      "  int acc; acc = 0;\n"
      "  for (int k = 0; k < n; k++) acc = acc + v[k];\n"
      "  return acc;\n"
      "}\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int m[N][N], s;\n"
      "void main() {\n"
      "  par (I, J) m[i][j] = 10*i + j;\n"
      "  s = sum_row(m[2], N);\n"
      "}");
  EXPECT_EQ(r.global_scalar("s").as_int(), 20 + 21 + 22 + 23);
}

TEST(Slices, WritesThroughSliceReachTheParent) {
  auto r = run(
      "#define N 4\n"
      "void fill(int v[], int n, int base) {\n"
      "  for (int k = 0; k < n; k++) v[k] = base + k;\n"
      "}\n"
      "int m[N][N];\n"
      "void main() {\n"
      "  fill(m[0], N, 100);\n"
      "  fill(m[3], N, 400);\n"
      "}");
  EXPECT_EQ(r.global_element("m", {0, 2}).as_int(), 102);
  EXPECT_EQ(r.global_element("m", {3, 3}).as_int(), 403);
  EXPECT_EQ(r.global_element("m", {1, 0}).as_int(), 0);  // untouched
}

TEST(Slices, SliceOf3DArrayIs2D) {
  auto r = run(
      "#define N 3\n"
      "int corner(int plane[][]) { return plane[0][0] + plane[N-1][N-1]; }\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "int c[N][N][N], s;\n"
      "void main() {\n"
      "  par (I, J, K) c[i][j][k] = 100*i + 10*j + k;\n"
      "  s = corner(c[1]);\n"
      "}");
  EXPECT_EQ(r.global_scalar("s").as_int(), 100 + 122);
}

TEST(Slices, DoublySubscriptedSliceIs1D) {
  auto r = run(
      "#define N 3\n"
      "int first(int v[]) { return v[0]; }\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "int c[N][N][N], s;\n"
      "void main() {\n"
      "  par (I, J, K) c[i][j][k] = 100*i + 10*j + k;\n"
      "  s = first(c[2][1]);\n"
      "}");
  EXPECT_EQ(r.global_scalar("s").as_int(), 210);
}

TEST(Slices, SliceIndexMayBeAnExpression) {
  auto r = run(
      "#define N 4\n"
      "int head(int v[]) { return v[0]; }\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int m[N][N], pick, s;\n"
      "void main() {\n"
      "  par (I, J) m[i][j] = 10*i + j;\n"
      "  pick = 1;\n"
      "  s = head(m[pick + 1]);\n"
      "}");
  EXPECT_EQ(r.global_scalar("s").as_int(), 20);
}

TEST(Slices, PerLaneSliceCallInsidePar) {
  // Every lane passes its own row to a scalar helper.
  auto r = run(
      "#define N 4\n"
      "int rowmax(int v[], int n) {\n"
      "  int best; best = v[0];\n"
      "  for (int k = 1; k < n; k++) best = max(best, v[k]);\n"
      "  return best;\n"
      "}\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int m[N][N], mx[N];\n"
      "void main() {\n"
      "  par (I, J) m[i][j] = (7 * i + 3 * j) % 11;\n"
      "  par (I) mx[i] = rowmax(m[i], N);\n"
      "}");
  for (int i = 0; i < 4; ++i) {
    std::int64_t best = 0;
    for (int j = 0; j < 4; ++j) {
      best = std::max<std::int64_t>(best, (7 * i + 3 * j) % 11);
    }
    EXPECT_EQ(r.global_element("mx", {i}).as_int(), best) << i;
  }
}

TEST(Slices, RankMismatchRejectedAtCompileTime) {
  EXPECT_THROW(run("int f(int v[]) { return v[0]; }\n"
                   "int m[4][4];\n"
                   "void main() { f(m); }"),
               support::UcCompileError);
  EXPECT_THROW(run("int f(int v[][]) { return v[0][0]; }\n"
                   "int m[4][4];\n"
                   "void main() { f(m[1]); }"),
               support::UcCompileError);
}

TEST(Slices, OutOfRangeSliceSubscriptIsRuntimeError) {
  EXPECT_THROW(run("int f(int v[]) { return v[0]; }\n"
                   "int m[4][4], k;\n"
                   "void main() { k = 5; f(m[k]); }"),
               support::UcRuntimeError);
}

TEST(Slices, ScalarExpressionStillRejectedForArrayParam) {
  EXPECT_THROW(run("int f(int v[]) { return v[0]; }\n"
                   "void main() { f(1 + 2); }"),
               support::UcCompileError);
}

}  // namespace
}  // namespace uc::vm
