// End-to-end validation of the paper's programs (src/uc/paper_programs)
// against the sequential references (src/seqref).
#include <gtest/gtest.h>

#include "seqref/seqref.hpp"
#include "uc/paper_programs.hpp"
#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

RunResult run(const std::string& src) { return run_uc(src); }

std::vector<std::int64_t> ints(const std::vector<Value>& vs) {
  std::vector<std::int64_t> out;
  for (const auto& v : vs) out.push_back(v.as_int());
  return out;
}

// Extracts the initial random graph by running a program that stops after
// init(); the deterministic per-lane RNG guarantees the full programs see
// the same matrix (identical prelude + statement structure).
std::vector<std::int64_t> initial_graph(std::int64_t n, std::uint64_t seed) {
  auto full = papers::shortest_path_on2(n, seed);
  auto pos = full.find("  seq (K)");
  EXPECT_NE(pos, std::string::npos);
  std::string init_only = full.substr(0, pos) + "}\n";
  return ints(run(init_only).global_array("d"));
}

class ShortestPathP : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ShortestPathP, On2MatchesFloydWarshall) {
  const auto n = GetParam();
  auto graph = initial_graph(n, 11);
  auto expect = graph;
  seqref::floyd_warshall(expect, n);
  auto got = ints(run(papers::shortest_path_on2(n, 11)).global_array("d"));
  EXPECT_EQ(got, expect);
}

TEST_P(ShortestPathP, On3MatchesFloydWarshall) {
  const auto n = GetParam();
  auto graph = initial_graph(n, 11);
  auto expect = graph;
  seqref::floyd_warshall(expect, n);
  auto got = ints(run(papers::shortest_path_on3(n, 11)).global_array("d"));
  EXPECT_EQ(got, expect);
}

TEST_P(ShortestPathP, StarSolveMatchesFloydWarshall) {
  const auto n = GetParam();
  auto graph = initial_graph(n, 11);
  auto expect = graph;
  seqref::floyd_warshall(expect, n);
  auto got =
      ints(run(papers::shortest_path_star_solve(n, 11)).global_array("d"));
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShortestPathP,
                         ::testing::Values(2, 3, 5, 8, 12));

TEST(PaperPrograms, PrefixSumsBothVariantsMatchReference) {
  for (std::int64_t n : {1, 2, 8, 16, 33}) {
    std::vector<std::int64_t> in(static_cast<std::size_t>(n));
    for (std::int64_t k = 0; k < n; ++k) in[static_cast<std::size_t>(k)] = k;
    auto expect = seqref::prefix_sums(in);
    auto star = ints(run(papers::prefix_sums_star_par(n)).global_array("a"));
    auto seqp = ints(run(papers::prefix_sums_seq_par(n)).global_array("a"));
    EXPECT_EQ(star, expect) << "n=" << n;
    EXPECT_EQ(seqp, expect) << "n=" << n;
  }
}

TEST(PaperPrograms, RanksortSorts) {
  for (std::int64_t n : {2, 7, 16, 31}) {
    auto got = ints(run(papers::ranksort(n)).global_array("a"));
    EXPECT_EQ(got, seqref::sorted(got)) << "n=" << n;
    // Distinctness of keys implies a strictly increasing result.
    for (std::size_t k = 1; k < got.size(); ++k) {
      EXPECT_LT(got[k - 1], got[k]);
    }
  }
}

TEST(PaperPrograms, OddEvenSortSorts) {
  for (std::int64_t n : {2, 5, 16}) {
    auto got = ints(run(papers::odd_even_sort(n)).global_array("x"));
    EXPECT_EQ(got, seqref::sorted(got)) << "n=" << n;
  }
}

TEST(PaperPrograms, WavefrontMatchesReference) {
  for (std::int64_t n : {1, 2, 5, 9}) {
    auto got = ints(run(papers::wavefront(n)).global_array("a"));
    EXPECT_EQ(got, seqref::wavefront(n)) << "n=" << n;
  }
}

TEST(PaperPrograms, HistogramCountsSumToN) {
  auto r = run(papers::histogram(64));
  auto counts = ints(r.global_array("count"));
  std::int64_t total = 0;
  for (auto c : counts) {
    EXPECT_GE(c, 0);
    total += c;
  }
  EXPECT_EQ(total, 64);
}

class GridP : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GridP, GridShortestPathMatchesBfsWithObstacle) {
  const auto rows = GetParam();
  const auto cols = rows;
  auto wall = seqref::paper_obstacle(rows, cols);
  auto expect = seqref::grid_bfs(rows, cols, wall, lang::kUcInf, nullptr);
  auto r = run(papers::grid_shortest_path(rows, cols, true));
  auto got = ints(r.global_array("d"));
  for (std::int64_t idx = 0; idx < rows * cols; ++idx) {
    const auto i = static_cast<std::size_t>(idx);
    if (wall[i] != 0) {
      EXPECT_EQ(got[i], -2) << "wall cell " << idx;  // WALL marker
    } else {
      EXPECT_EQ(got[i], expect[i]) << "cell " << idx;
    }
  }
}

TEST_P(GridP, GridShortestPathMatchesBfsNoObstacle) {
  const auto rows = GetParam();
  const auto cols = rows;
  std::vector<std::uint8_t> wall(static_cast<std::size_t>(rows * cols), 0);
  auto expect = seqref::grid_bfs(rows, cols, wall, lang::kUcInf, nullptr);
  auto got =
      ints(run(papers::grid_shortest_path(rows, cols, false)).global_array("d"));
  for (std::int64_t idx = 0; idx < rows * cols; ++idx) {
    EXPECT_EQ(got[static_cast<std::size_t>(idx)],
              expect[static_cast<std::size_t>(idx)])
        << "cell " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridP, ::testing::Values(4, 8, 12));

TEST(PaperPrograms, SequentialRelaxationAgreesWithBfs) {
  // The honest Fig 8 baseline (sequential sweeps) must compute the same
  // distances as BFS.
  const std::int64_t rows = 12, cols = 12;
  auto wall = seqref::paper_obstacle(rows, cols);
  auto bfs = seqref::grid_bfs(rows, cols, wall, lang::kUcInf, nullptr);
  auto relax =
      seqref::grid_relax_sequential(rows, cols, wall, lang::kUcInf, nullptr);
  for (std::size_t k = 0; k < bfs.size(); ++k) {
    if (wall[k] != 0) continue;
    EXPECT_EQ(relax[k], bfs[k]) << k;
  }
}

TEST(PaperPrograms, ObstacleDisconnectsBand) {
  // Sanity on the obstacle shape: it blocks the anti-diagonal except j=0.
  auto wall = seqref::paper_obstacle(8, 8);
  EXPECT_EQ(wall[static_cast<std::size_t>(3 * 8 + 4)], 1);  // i=3,j=4: band
  EXPECT_EQ(wall[static_cast<std::size_t>(7 * 8 + 0)], 0);  // j=0 gap
}

TEST(PaperPrograms, ShortestPathCostGrowsWithN) {
  auto small = run(papers::shortest_path_on2(4, 11));
  auto large = run(papers::shortest_path_on2(16, 11));
  EXPECT_GT(large.stats().cycles, small.stats().cycles);
}

}  // namespace
}  // namespace uc::vm
