// Native-tier backend suite (docs/VM.md "Native tier"): the on-disk
// compiled-kernel cache and its failure modes.  Engine-level output parity
// lives in engine_parity_test.cpp / shard_parity_test.cpp; here we pin the
// cache mechanics — a warm cache reuses the compiled .so without invoking
// the compiler, a corrupted or stale cached object is detected, discarded
// and rebuilt (never trusted), and a kernel the emitter declines runs on
// the bytecode tier with identical results and a visible fallback counter.
//
// Every test uses its own cache directory under the system temp path so
// runs start cold and cannot see another process's cache.  On a host
// without a working C++ toolchain the whole fixture skips: each scenario
// would degrade to bytecode and assert nothing about the cache.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ucvm/interp.hpp"

namespace uc::vm {
namespace {

namespace fs = std::filesystem;

RunResult run_engine(const std::string& src, ExecEngine engine,
                     const std::string& cache_dir) {
  ExecOptions eopts;
  eopts.engine = engine;
  eopts.fuse = true;
  eopts.native_cache_dir = cache_dir;
  return run_uc(src, {}, eopts);
}

class NativeBackend : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("uc-native-test-" + std::to_string(::getpid()) + "-" +
            info->name());
    std::error_code ec;
    fs::remove_all(dir_, ec);
    if (!toolchain_available()) {
      GTEST_SKIP() << "no working native toolchain on this host; the "
                      "native tier falls back to bytecode (covered by the "
                      "parity suites)";
    }
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  RunResult run_native(const std::string& src) {
    return run_engine(src, ExecEngine::kNative, dir_.string());
  }

  // Probed once per process: compile-and-dispatch a trivial kernel into a
  // scratch cache directory.
  static bool toolchain_available() {
    static const bool ok = [] {
      const fs::path probe =
          fs::temp_directory_path() /
          ("uc-native-probe-" + std::to_string(::getpid()));
      const RunResult r = run_engine(
          "index_set I:i = {0..63};\nint a[64];\n"
          "void main() { par (I) a[i] = i + 1; }",
          ExecEngine::kNative, probe.string());
      std::error_code ec;
      fs::remove_all(probe, ec);
      return r.native_dispatches() > 0;
    }();
    return ok;
  }

  std::vector<fs::path> cached_objects() const {
    std::vector<fs::path> sos;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(dir_, ec)) {
      if (e.path().extension() == ".so") sos.push_back(e.path());
    }
    std::sort(sos.begin(), sos.end());
    return sos;
  }

  static void expect_same_run(const RunResult& a, const RunResult& b) {
    EXPECT_EQ(a.output(), b.output());
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
  }

  fs::path dir_;
};

// One parallel statement per lane space; the two spaces have different
// geometries, so fusion cannot merge them and the run produces (at least)
// two distinct kernels — and therefore two distinct cached objects.
const char* kTwoKernelSrc =
    "index_set I:i = {0..63};\n"
    "index_set J:j = {0..31};\n"
    "int a[64];\n"
    "int b[32];\n"
    "void main() {\n"
    "  par (I) a[i] = i * 3 + 1;\n"
    "  par (J) b[j] = j * j;\n"
    "}\n";

void expect_arrays_ab(const RunResult& r) {
  const auto a = r.global_array("a");
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].as_int(), static_cast<std::int64_t>(i) * 3 + 1) << i;
  }
  const auto b = r.global_array("b");
  ASSERT_EQ(b.size(), 32u);
  for (std::size_t j = 0; j < b.size(); ++j) {
    EXPECT_EQ(b[j].as_int(), static_cast<std::int64_t>(j * j)) << j;
  }
}

TEST_F(NativeBackend, WarmCacheReusesCompiledObjects) {
  const RunResult cold = run_native(kTwoKernelSrc);
  expect_arrays_ab(cold);
  ASSERT_GT(cold.native_dispatches(), 0u);
  EXPECT_GT(cold.native_kernels_compiled(), 0u);
  EXPECT_EQ(cold.native_cache_hits(), 0u);  // directory started empty
  const auto sos = cached_objects();
  EXPECT_EQ(sos.size(), cold.native_kernels_compiled());

  // A second process-equivalent run (fresh Interp, same cache directory)
  // must load every kernel from disk without invoking the compiler.
  const RunResult warm = run_native(kTwoKernelSrc);
  expect_arrays_ab(warm);
  EXPECT_EQ(warm.native_kernels_compiled(), 0u);
  EXPECT_EQ(warm.native_cache_hits(), cold.native_kernels_compiled());
  EXPECT_GT(warm.native_dispatches(), 0u);
  expect_same_run(cold, warm);
}

TEST_F(NativeBackend, CorruptedCachedObjectIsRebuilt) {
  const RunResult cold = run_native(kTwoKernelSrc);
  ASSERT_GT(cold.native_kernels_compiled(), 0u);
  const auto sos = cached_objects();
  ASSERT_FALSE(sos.empty());

  // Clobber every cached object: one truncated to zero bytes (torn
  // write), the rest overwritten with non-ELF garbage.
  for (std::size_t i = 0; i < sos.size(); ++i) {
    std::ofstream out(sos[i], std::ios::binary | std::ios::trunc);
    if (i > 0) out << "this is not a shared object";
  }

  const RunResult again = run_native(kTwoKernelSrc);
  expect_arrays_ab(again);
  expect_same_run(cold, again);
  // dlopen rejects the garbage, the entry is deleted and recompiled.
  EXPECT_EQ(again.native_cache_hits(), 0u);
  EXPECT_EQ(again.native_kernels_compiled(), cold.native_kernels_compiled());
  EXPECT_GT(again.native_dispatches(), 0u);
}

TEST_F(NativeBackend, StaleCachedObjectIsDetectedAndRebuilt) {
  const RunResult cold = run_native(kTwoKernelSrc);
  const auto sos = cached_objects();
  ASSERT_GE(sos.size(), 2u) << "expected two kernels for two lane spaces";

  // Simulate a stale entry: a loadable, well-formed shared object sitting
  // under the wrong file name (as if the hash scheme or emitter changed
  // but the file survived).  dlopen succeeds; the uc_native_info identity
  // check — embedded source hash vs the hash the name promises — must
  // catch it and trigger a rebuild.
  std::error_code ec;
  fs::copy_file(sos[0], sos[1], fs::copy_options::overwrite_existing, ec);
  ASSERT_FALSE(ec) << ec.message();

  const RunResult again = run_native(kTwoKernelSrc);
  expect_arrays_ab(again);
  expect_same_run(cold, again);
  EXPECT_GE(again.native_kernels_compiled(), 1u);  // the swapped one
  EXPECT_GE(again.native_cache_hits(), 1u);        // the intact one
  EXPECT_GT(again.native_dispatches(), 0u);
}

TEST_F(NativeBackend, EmitterDeclineFallsBackToBytecode) {
  // A ternary whose arms disagree in representation assigns both an int
  // and a float to the same bytecode register; the emitter's static type
  // inference cannot pin the register down and declines the kernel, which
  // then runs (correctly) on the bytecode tier.
  const std::string src =
      "index_set I:i = {0..31};\n"
      "float a[32];\n"
      "void main() { par (I) a[i] = (i % 2 == 0) ? 1 : 2.5; }\n";

  const RunResult native = run_native(src);
  const RunResult reference =
      run_engine(src, ExecEngine::kBytecode, dir_.string());
  EXPECT_EQ(reference.output(), native.output());
  const auto want = reference.global_array("a");
  const auto got = native.global_array("a");
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(want[i] == got[i]) << "a[" << i << "]";
  }
  EXPECT_EQ(reference.stats().cycles, native.stats().cycles);

  EXPECT_GT(native.native_fallbacks(), 0u);
  EXPECT_EQ(native.native_dispatches(), 0u);
  EXPECT_EQ(native.native_kernels_compiled(), 0u);
  EXPECT_TRUE(cached_objects().empty());  // nothing was ever emitted
}

}  // namespace
}  // namespace uc::vm
