// Integration tests for the ucc command-line driver: they run the real
// binary against the sample programs shipped in programs/.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CommandResult run_command(const std::string& cmd) {
  CommandResult result;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string ucc() { return UCC_BINARY; }
std::string program(const char* name) {
  return std::string(PROGRAMS_DIR) + "/" + name;
}

TEST(UccCli, RunsHelloProgram) {
  auto r = run_command(ucc() + " run " + program("hello.uc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("sum of 1..100 = 5050"), std::string::npos)
      << r.output;
}

TEST(UccCli, StatsFlagPrintsMachineCounters) {
  auto r = run_command(ucc() + " run " + program("hello.uc") + " --stats");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("cycles="), std::string::npos) << r.output;
}

TEST(UccCli, CheckReportsOk) {
  auto r = run_command(ucc() + " check " + program("shortest_path.uc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find(": ok"), std::string::npos) << r.output;
}

TEST(UccCli, CheckReportsDiagnosticsAndFails) {
  // A temporary bad program.
  const std::string path = "/tmp/ucc_cli_bad.uc";
  {
    std::ofstream out(path);
    out << "void main() { goto done; }\n";
  }
  auto r = run_command(ucc() + " check " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("goto is not allowed"), std::string::npos)
      << r.output;
  std::remove(path.c_str());
}

TEST(UccCli, AnalyzeCleanProgramSummarizes) {
  auto r = run_command(ucc() + " analyze " + program("shortest_path.uc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("communication summary:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("0 warnings"), std::string::npos) << r.output;
}

TEST(UccCli, AnalyzeReportsWriteWriteConflict) {
  const std::string path = "/tmp/ucc_cli_racy.uc";
  {
    std::ofstream out(path);
    out << "const int N = 8;\n"
           "index_set I:i = {0..N-1};\n"
           "int a[N];\n"
           "void main() {\n"
           "  par (I) { a[i] = 1; a[i+1] = 2; }\n"
           "}\n";
  }
  auto r = run_command(ucc() + " analyze " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;  // warnings do not fail the exit
  EXPECT_NE(r.output.find("UC-A101"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("write-write conflict"), std::string::npos)
      << r.output;

  auto w = run_command(ucc() + " analyze " + path + " --werror");
  EXPECT_EQ(w.exit_code, 1) << w.output;
  std::remove(path.c_str());
}

TEST(UccCli, AnalyzeClassifiesNewsAndRouter) {
  const std::string path = "/tmp/ucc_cli_comm.uc";
  {
    std::ofstream out(path);
    out << "const int N = 8;\n"
           "index_set I:i = {0..N-1};\n"
           "int a[N], b[N], c[N], p[N];\n"
           "void main() {\n"
           "  par (I) b[i] = a[i+1];\n"
           "  par (I) c[i] = a[p[i]];\n"
           "}\n";
  }
  auto r = run_command(ucc() + " analyze " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("-> news"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("-> router"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

TEST(UccCli, AnalyzeFailsOnFrontEndErrors) {
  const std::string path = "/tmp/ucc_cli_analyze_bad.uc";
  {
    std::ofstream out(path);
    out << "void main() { undeclared = 1; }\n";
  }
  auto r = run_command(ucc() + " analyze " + path);
  EXPECT_EQ(r.exit_code, 1);
  std::remove(path.c_str());
}

TEST(UccCli, CheckStillOkOnProgramWithAnalysisNotes) {
  // ranksort triggers analysis notes; check must stay quiet and green.
  auto r = run_command(ucc() + " check " + program("ranksort.uc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find(": ok"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("UC-A1"), std::string::npos) << r.output;
}

TEST(UccCli, UsageListsAllSubcommands) {
  auto r = run_command(ucc());
  EXPECT_EQ(r.exit_code, 2);
  for (const char* cmd : {"run", "check", "analyze", "emit-cstar",
                          "emit-uc"}) {
    EXPECT_NE(r.output.find(cmd), std::string::npos) << cmd << "\n"
                                                     << r.output;
  }
}

TEST(UccCli, EmitCstarProducesDomains) {
  auto r = run_command(ucc() + " emit-cstar " + program("shortest_path.uc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("domain"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[domain"), std::string::npos) << r.output;
}

TEST(UccCli, EmitUcRoundTrips) {
  auto r = run_command(ucc() + " emit-uc " + program("wavefront.uc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("solve (I, J)"), std::string::npos) << r.output;
}

TEST(UccCli, NoMappingsChangesCostNotResults) {
  auto mapped =
      run_command(ucc() + " run " + program("mapping_demo.uc") + " --stats");
  auto unmapped = run_command(ucc() + " run " + program("mapping_demo.uc") +
                              " --no-mappings --stats");
  EXPECT_EQ(mapped.exit_code, 0);
  EXPECT_EQ(unmapped.exit_code, 0);
  // Same printed values...
  auto value_line = [](const std::string& s) {
    auto pos = s.find("a[0] =");
    return pos == std::string::npos ? std::string() : s.substr(pos);
  };
  auto a = value_line(mapped.output);
  auto b = value_line(unmapped.output);
  ASSERT_FALSE(a.empty());
  // Compare just the program output line (the stats lines differ).
  EXPECT_EQ(a.substr(0, a.find('\n')), b.substr(0, b.find('\n')));
  // ...different machine stats.
  EXPECT_NE(mapped.output.substr(mapped.output.find("cycles=")),
            unmapped.output.substr(unmapped.output.find("cycles=")));
}

TEST(UccCli, SeedChangesRandomGraph) {
  auto a = run_command(ucc() + " run " + program("shortest_path.uc") +
                       " --seed=1");
  auto b = run_command(ucc() + " run " + program("shortest_path.uc") +
                       " --seed=2");
  EXPECT_EQ(a.exit_code, 0);
  EXPECT_EQ(b.exit_code, 0);
  // srand(11) inside the program pins the graph, so seeds agree here —
  // the flag must at least not break anything and produce a value.
  EXPECT_NE(a.output.find("d[0][N-1] ="), std::string::npos);
  EXPECT_EQ(a.output, b.output);  // program-level srand wins
}

TEST(UccCli, TraceFlagPrintsParisInstructions) {
  auto r = run_command(ucc() + " run " + program("hello.uc") + " --trace");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("cm:alu"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("cm:scan"), std::string::npos) << r.output;
}

TEST(UccCli, UnknownOptionRejected) {
  auto r = run_command(ucc() + " run " + program("hello.uc") + " --bogus");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("unknown option"), std::string::npos);
}

TEST(UccCli, MissingFileRejected) {
  auto r = run_command(ucc() + " run /no/such/file.uc");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("cannot read"), std::string::npos);
}

TEST(UccCli, UsageOnBadCommand) {
  auto r = run_command(ucc() + " frobnicate " + program("hello.uc"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

}  // namespace
