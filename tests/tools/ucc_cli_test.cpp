// Integration tests for the ucc command-line driver: they run the real
// binary against the sample programs shipped in programs/.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CommandResult run_command(const std::string& cmd) {
  CommandResult result;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string ucc() { return UCC_BINARY; }
std::string program(const char* name) {
  return std::string(PROGRAMS_DIR) + "/" + name;
}

TEST(UccCli, RunsHelloProgram) {
  auto r = run_command(ucc() + " run " + program("hello.uc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("sum of 1..100 = 5050"), std::string::npos)
      << r.output;
}

TEST(UccCli, StatsFlagPrintsMachineCounters) {
  auto r = run_command(ucc() + " run " + program("hello.uc") + " --stats");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("cycles="), std::string::npos) << r.output;
}

TEST(UccCli, CheckReportsOk) {
  auto r = run_command(ucc() + " check " + program("shortest_path.uc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find(": ok"), std::string::npos) << r.output;
}

TEST(UccCli, CheckReportsDiagnosticsAndFails) {
  // A temporary bad program.
  const std::string path = "/tmp/ucc_cli_bad.uc";
  {
    std::ofstream out(path);
    out << "void main() { goto done; }\n";
  }
  auto r = run_command(ucc() + " check " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("goto is not allowed"), std::string::npos)
      << r.output;
  std::remove(path.c_str());
}

TEST(UccCli, AnalyzeCleanProgramSummarizes) {
  auto r = run_command(ucc() + " analyze " + program("shortest_path.uc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("communication summary:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("0 warnings"), std::string::npos) << r.output;
}

TEST(UccCli, AnalyzeReportsWriteWriteConflict) {
  const std::string path = "/tmp/ucc_cli_racy.uc";
  {
    std::ofstream out(path);
    out << "const int N = 8;\n"
           "index_set I:i = {0..N-1};\n"
           "int a[N];\n"
           "void main() {\n"
           "  par (I) { a[i] = 1; a[i+1] = 2; }\n"
           "}\n";
  }
  auto r = run_command(ucc() + " analyze " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;  // warnings do not fail the exit
  EXPECT_NE(r.output.find("UC-A101"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("write-write conflict"), std::string::npos)
      << r.output;

  auto w = run_command(ucc() + " analyze " + path + " --werror");
  EXPECT_EQ(w.exit_code, 1) << w.output;
  std::remove(path.c_str());
}

TEST(UccCli, AnalyzeClassifiesNewsAndRouter) {
  const std::string path = "/tmp/ucc_cli_comm.uc";
  {
    std::ofstream out(path);
    out << "const int N = 8;\n"
           "index_set I:i = {0..N-1};\n"
           "int a[N], b[N], c[N], p[N];\n"
           "void main() {\n"
           "  par (I) b[i] = a[i+1];\n"
           "  par (I) c[i] = a[p[i]];\n"
           "}\n";
  }
  auto r = run_command(ucc() + " analyze " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("-> news"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("-> router"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

TEST(UccCli, AnalyzeFailsOnFrontEndErrors) {
  const std::string path = "/tmp/ucc_cli_analyze_bad.uc";
  {
    std::ofstream out(path);
    out << "void main() { undeclared = 1; }\n";
  }
  auto r = run_command(ucc() + " analyze " + path);
  EXPECT_EQ(r.exit_code, 1);
  std::remove(path.c_str());
}

TEST(UccCli, CheckStillOkOnProgramWithAnalysisNotes) {
  // ranksort triggers analysis notes; check must stay quiet and green.
  auto r = run_command(ucc() + " check " + program("ranksort.uc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find(": ok"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("UC-A1"), std::string::npos) << r.output;
}

TEST(UccCli, UsageListsAllSubcommands) {
  auto r = run_command(ucc());
  EXPECT_EQ(r.exit_code, 2);
  for (const char* cmd : {"run", "check", "analyze", "emit-cstar",
                          "emit-uc"}) {
    EXPECT_NE(r.output.find(cmd), std::string::npos) << cmd << "\n"
                                                     << r.output;
  }
}

TEST(UccCli, EmitCstarProducesDomains) {
  auto r = run_command(ucc() + " emit-cstar " + program("shortest_path.uc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("domain"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[domain"), std::string::npos) << r.output;
}

TEST(UccCli, EmitUcRoundTrips) {
  auto r = run_command(ucc() + " emit-uc " + program("wavefront.uc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("solve (I, J)"), std::string::npos) << r.output;
}

TEST(UccCli, NoMappingsChangesCostNotResults) {
  auto mapped =
      run_command(ucc() + " run " + program("mapping_demo.uc") + " --stats");
  auto unmapped = run_command(ucc() + " run " + program("mapping_demo.uc") +
                              " --no-mappings --stats");
  EXPECT_EQ(mapped.exit_code, 0);
  EXPECT_EQ(unmapped.exit_code, 0);
  // Same printed values...
  auto value_line = [](const std::string& s) {
    auto pos = s.find("a[0] =");
    return pos == std::string::npos ? std::string() : s.substr(pos);
  };
  auto a = value_line(mapped.output);
  auto b = value_line(unmapped.output);
  ASSERT_FALSE(a.empty());
  // Compare just the program output line (the stats lines differ).
  EXPECT_EQ(a.substr(0, a.find('\n')), b.substr(0, b.find('\n')));
  // ...different machine stats.
  EXPECT_NE(mapped.output.substr(mapped.output.find("cycles=")),
            unmapped.output.substr(unmapped.output.find("cycles=")));
}

TEST(UccCli, SeedChangesRandomGraph) {
  auto a = run_command(ucc() + " run " + program("shortest_path.uc") +
                       " --seed=1");
  auto b = run_command(ucc() + " run " + program("shortest_path.uc") +
                       " --seed=2");
  EXPECT_EQ(a.exit_code, 0);
  EXPECT_EQ(b.exit_code, 0);
  // srand(11) inside the program pins the graph, so seeds agree here —
  // the flag must at least not break anything and produce a value.
  EXPECT_NE(a.output.find("d[0][N-1] ="), std::string::npos);
  EXPECT_EQ(a.output, b.output);  // program-level srand wins
}

TEST(UccCli, TraceFlagPrintsParisInstructions) {
  auto r = run_command(ucc() + " run " + program("hello.uc") + " --trace");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("cm:alu"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("cm:scan"), std::string::npos) << r.output;
}

TEST(UccCli, UnknownOptionRejected) {
  auto r = run_command(ucc() + " run " + program("hello.uc") + " --bogus");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("unknown option"), std::string::npos);
}

TEST(UccCli, MissingFileRejected) {
  auto r = run_command(ucc() + " run /no/such/file.uc");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("cannot read"), std::string::npos);
}

TEST(UccCli, UsageOnBadCommand) {
  auto r = run_command(ucc() + " frobnicate " + program("hello.uc"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(UccCli, NumericOptionsRejectGarbage) {
  for (const char* bad : {"--seed=12x", "--procs=abc", "--procs=0",
                          "--threads=0", "--threads=-2", "--top=0"}) {
    auto r = run_command(ucc() + " run " + program("hello.uc") + " " + bad);
    EXPECT_EQ(r.exit_code, 2) << bad;
    EXPECT_NE(r.output.find("invalid value"), std::string::npos)
        << bad << "\n" << r.output;
  }
  // Zero stays valid where it means something (seed 0 is a real seed).
  auto ok = run_command(ucc() + " run " + program("hello.uc") + " --seed=0");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
}

TEST(UccCli, IntLiteralOverflowIsACompileError) {
  const std::string path = "/tmp/ucc_cli_overflow.uc";
  {
    std::ofstream out(path);
    out << "int x;\nvoid main() { x = 99999999999999999999; }\n";
  }
  auto r = run_command(ucc() + " run " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("does not fit in a 64-bit int"), std::string::npos)
      << r.output;
  std::remove(path.c_str());
}

TEST(UccCli, UnexpectedExceptionsExitCleanly) {
  // Materializing this array throws std::length_error (N*N elements is
  // past vector::max_size, so the throw happens before any allocation —
  // deterministic under ASan too, whose operator new aborts instead of
  // throwing bad_alloc on a failed huge allocation).  The driver must
  // catch it and exit nonzero instead of aborting.
  const std::string path = "/tmp/ucc_cli_huge.uc";
  {
    std::ofstream out(path);
    out << "#define N 2000000000\nint a[N][N];\nvoid main() { print(1); }\n";
  }
  auto r = run_command(ucc() + " run " + path);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("ucc:"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

TEST(UccCli, ProfileCommandPrintsHotSiteTable) {
  auto r = run_command(ucc() + " profile " + program("shortest_path.uc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("d[0][N-1] ="), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("self-cycles"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("sum of sites"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("MISMATCH"), std::string::npos) << r.output;
  // The static-vs-dynamic join column from `ucc analyze`.
  EXPECT_NE(r.output.find("local"), std::string::npos) << r.output;
}

TEST(UccCli, ProfileTableIdenticalAcrossEngines) {
  auto strip_host_ms = [](std::string s) {
    // Column 3 (host-ms) and the pool line are host-timing noise.
    std::string out;
    std::istringstream in(s);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("host pool:", 0) == 0) continue;
      std::istringstream cols(line);
      std::string col;
      int k = 0;
      while (cols >> col) {
        if (++k == 3 && line.rfind("total:", 0) != 0) col = "-";
        out += col + " ";
      }
      out += "\n";
    }
    return out;
  };
  // Fusion/plan caching deliberately lowers bytecode front-end cost, so
  // exact table equality pins --fuse=off on the bytecode leg.
  auto walk = run_command(ucc() + " profile " + program("shortest_path.uc") +
                          " --engine=walk");
  auto bc = run_command(ucc() + " profile " + program("shortest_path.uc") +
                        " --engine=bytecode --fuse=off");
  EXPECT_EQ(walk.exit_code, 0);
  EXPECT_EQ(bc.exit_code, 0);
  auto w = strip_host_ms(walk.output);
  auto b = strip_host_ms(bc.output);
  // The engine column legitimately differs; neutralize it.
  auto neutral = [](std::string s) {
    for (const char* eng : {" bc ", " walk ", " mixed "}) {
      std::size_t pos = 0;
      while ((pos = s.find(eng, pos)) != std::string::npos) {
        s.replace(pos, std::strlen(eng), " ENG ");
      }
    }
    return s;
  };
  EXPECT_EQ(neutral(w), neutral(b));
}

TEST(UccCli, RunWithProfileKeepsStdoutIdentical) {
  // The subshell discards stderr (where the profile table goes), so this
  // compares the program's stdout byte for byte.
  auto plain = run_command("(" + ucc() + " run " +
                           program("shortest_path.uc") + " 2>/dev/null)");
  auto prof = run_command("(" + ucc() + " run " +
                          program("shortest_path.uc") +
                          " --profile 2>/dev/null)");
  EXPECT_EQ(plain.exit_code, 0);
  EXPECT_EQ(prof.exit_code, 0);
  EXPECT_EQ(plain.output, prof.output);
}

TEST(UccCli, ProfileWritesJsonAndTraceFiles) {
  const std::string json_path = "/tmp/ucc_cli_prof.json";
  const std::string trace_path = "/tmp/ucc_cli_prof_trace.json";
  auto r = run_command(ucc() + " profile " + program("shortest_path.uc") +
                       " --json=" + json_path +
                       " --trace-json=" + trace_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;

  std::ifstream json_in(json_path);
  std::stringstream json_buf;
  json_buf << json_in.rdbuf();
  EXPECT_NE(json_buf.str().find("\"total_cycles\""), std::string::npos);
  EXPECT_NE(json_buf.str().find("\"sites\""), std::string::npos);

  std::ifstream trace_in(trace_path);
  std::stringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  EXPECT_EQ(trace_buf.str().front(), '[');
  EXPECT_NE(trace_buf.str().find("\"ph\": \"X\""), std::string::npos);

  std::remove(json_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(UccCli, ProfileTopLimitsRows) {
  auto r = run_command(ucc() + " profile " + program("shortest_path.uc") +
                       " --top=2");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("cold sites hidden"), std::string::npos)
      << r.output;
}

// ---- durable checkpoints & resume (docs/ROBUSTNESS.md) ----

TEST(UccCli, ResumeRequiresCheckpointDir) {
  auto r = run_command(ucc() + " run " + program("hello.uc") + " --resume");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--resume needs a checkpoint directory"),
            std::string::npos)
      << r.output;
}

TEST(UccCli, CheckpointDirRequiresCadence) {
  auto r = run_command(ucc() + " run " + program("hello.uc") +
                       " --checkpoint-dir=/tmp/ucc_cli_nocadence");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--checkpoint-every"), std::string::npos)
      << r.output;
}

// The full crash story in one test: a run SIGKILLed mid-program (--die-at
// raises the signal at a deterministic statement) leaves durable
// generations behind; --resume restores the newest one and must finish
// with the same program output AND the same modeled cycle count as an
// uninterrupted run.  tools/soak.sh repeats this at randomized kill points
// across programs, engines and shard counts.
TEST(UccCli, DieAtKillsAndResumeReproducesBitIdentical) {
  const std::string dir = "/tmp/ucc_cli_ck";
  run_command("rm -rf " + dir + " " + dir + "_base");
  auto base = run_command(ucc() + " run " + program("shortest_path.uc") +
                          " --checkpoint-every=4 --checkpoint-dir=" + dir +
                          "_base --stats");
  EXPECT_EQ(base.exit_code, 0) << base.output;
  EXPECT_NE(base.output.find("durable_checkpoints="), std::string::npos)
      << base.output;

  auto kill = run_command(ucc() + " run " + program("shortest_path.uc") +
                          " --checkpoint-every=4 --checkpoint-dir=" + dir +
                          " --die-at=10");
  // SIGKILL: pclose reports a signal death, not a normal exit.
  EXPECT_NE(kill.exit_code, 0) << kill.output;

  auto res = run_command(ucc() + " run " + program("shortest_path.uc") +
                         " --checkpoint-every=4 --resume=" + dir +
                         " --stats");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("--resume: restoring generation"),
            std::string::npos)
      << res.output;

  auto value_line = [](const std::string& s) {
    auto pos = s.find("d[0][N-1] =");
    if (pos == std::string::npos) return std::string();
    return s.substr(pos, s.find('\n', pos) - pos);
  };
  ASSERT_FALSE(value_line(base.output).empty()) << base.output;
  EXPECT_EQ(value_line(base.output), value_line(res.output));
  auto cycles = [](const std::string& s) {
    auto pos = s.find("cycles=");
    if (pos == std::string::npos) return std::string();
    return s.substr(pos, s.find(' ', pos) - pos);
  };
  ASSERT_FALSE(cycles(base.output).empty());
  EXPECT_EQ(cycles(base.output), cycles(res.output));
  run_command("rm -rf " + dir + " " + dir + "_base");
}

// A profiled run that aborts (here: the wall-clock watchdog) must still
// flush the hot-site table and the partial machine statistics instead of
// dropping the attribution on the floor.
TEST(UccCli, AbortedProfiledRunStillFlushesTable) {
  const std::string path = "/tmp/ucc_cli_runaway.uc";
  {
    std::ofstream out(path);
    out << "void main() {\n"
           "  int i;\n"
           "  i = 0;\n"
           "  while (i < 2000000000) { i = i + 1; }\n"
           "}\n";
  }
  auto r = run_command(ucc() + " run " + path +
                       " --profile --stats --timeout=0.05");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("runtime error"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("self-cycles"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("partial statistics"), std::string::npos)
      << r.output;

  auto p = run_command(ucc() + " profile " + path + " --timeout=0.05");
  EXPECT_EQ(p.exit_code, 1) << p.output;
  EXPECT_NE(p.output.find("self-cycles"), std::string::npos) << p.output;
  std::remove(path.c_str());
}

}  // namespace
