// Golden tests over the shipped .uc sample programs: every program in
// programs/ must compile, and those with a sibling .expected file must
// print exactly that output.  The suite doubles as an end-user contract:
// anything in programs/ is guaranteed runnable.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "uc/uc.hpp"

namespace uc {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<fs::path> uc_programs() {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(PROGRAMS_DIR)) {
    if (entry.path().extension() == ".uc") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class GoldenP : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenP, CompilesAndMatchesExpectedOutput) {
  const fs::path path = GetParam();
  auto program = Program::compile(path.filename().string(), slurp(path));

  // Every program must also round-trip through the pretty printer.
  auto again = Program::compile("roundtrip.uc", program.to_uc_source());

  fs::path expected = path;
  expected.replace_extension(".expected");
  if (!fs::exists(expected)) {
    // No golden output: running without a crash is the contract.
    (void)program.run();
    return;
  }
  auto result = program.run();
  auto result2 = again.run();
  EXPECT_EQ(result.output(), slurp(expected)) << path;
  EXPECT_EQ(result2.output(), result.output()) << "round-trip divergence";
}

std::vector<std::string> program_names() {
  std::vector<std::string> names;
  for (const auto& p : uc_programs()) names.push_back(p.string());
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    All, GoldenP, ::testing::ValuesIn(program_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      auto name = fs::path(info.param).stem().string();
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Golden, SuiteIsNonEmpty) {
  EXPECT_GE(uc_programs().size(), 8u);
}

}  // namespace
}  // namespace uc
