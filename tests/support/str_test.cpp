#include "support/str.hpp"

#include <gtest/gtest.h>

namespace uc::support {
namespace {

TEST(Str, SplitLinesBasic) {
  auto v = split_lines("a\nb\nc");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "c");
}

TEST(Str, SplitLinesTrailingNewline) {
  auto v = split_lines("a\n");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], "");
}

TEST(Str, SplitLinesEmpty) {
  auto v = split_lines("");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "");
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("index_set", "index"));
  EXPECT_FALSE(starts_with("idx", "index"));
}

TEST(Str, Format) {
  EXPECT_EQ(format("N=%d f=%.1f", 3, 2.5), "N=3 f=2.5");
  EXPECT_EQ(format("%s", ""), "");
}

TEST(Str, CountCodeLinesSkipsBlanksAndComments) {
  const char* src =
      "int a;\n"
      "\n"
      "// comment only\n"
      "/* block\n"
      "   still block */\n"
      "int b; // trailing\n"
      "  /* inline */ int c;\n";
  EXPECT_EQ(count_code_lines(src), 3u);
}

TEST(Str, CountCodeLinesBlockCommentWithCodeBefore) {
  EXPECT_EQ(count_code_lines("int a; /* x\ny */ int b;\n"), 2u);
}

}  // namespace
}  // namespace uc::support
