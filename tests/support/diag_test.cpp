#include "support/diag.hpp"

#include <gtest/gtest.h>

namespace uc::support {
namespace {

TEST(Diag, CountsErrorsOnly) {
  DiagnosticEngine de;
  de.warning({}, "w");
  EXPECT_FALSE(de.has_errors());
  de.error({}, "e");
  de.note({}, "n");
  EXPECT_TRUE(de.has_errors());
  EXPECT_EQ(de.error_count(), 1u);
  EXPECT_EQ(de.diagnostics().size(), 3u);
}

TEST(Diag, RenderWithoutFile) {
  DiagnosticEngine de;
  de.error({}, "boom");
  EXPECT_EQ(de.render(de.diagnostics()[0]), "error: boom\n");
}

TEST(Diag, RenderWithCaretLine) {
  SourceFile f("x.uc", "int a;\nint b$;\n");
  DiagnosticEngine de(&f);
  // '$' is at offset 12 (line 2, col 6).
  de.error({SourceLoc{12}, SourceLoc{13}}, "stray '$'");
  auto out = de.render(de.diagnostics()[0]);
  EXPECT_NE(out.find("x.uc:2:6: error: stray '$'"), std::string::npos);
  EXPECT_NE(out.find("int b$;"), std::string::npos);
  EXPECT_NE(out.find("     ^"), std::string::npos);
}

TEST(Diag, RenderRangeExtendsTilde) {
  SourceFile f("x.uc", "goto done;\n");
  DiagnosticEngine de(&f);
  de.error({SourceLoc{0}, SourceLoc{4}}, "goto is not allowed in UC");
  auto out = de.render(de.diagnostics()[0]);
  EXPECT_NE(out.find("^~~~"), std::string::npos);
}

TEST(Diag, RenderAllConcatenates) {
  DiagnosticEngine de;
  de.error({}, "one");
  de.warning({}, "two");
  auto all = de.render_all();
  EXPECT_NE(all.find("one"), std::string::npos);
  EXPECT_NE(all.find("two"), std::string::npos);
}

TEST(Diag, ClearResets) {
  DiagnosticEngine de;
  de.error({}, "e");
  de.clear();
  EXPECT_FALSE(de.has_errors());
  EXPECT_TRUE(de.diagnostics().empty());
}

TEST(Diag, SeverityNames) {
  EXPECT_STREQ(severity_name(Severity::kError), "error");
  EXPECT_STREQ(severity_name(Severity::kWarning), "warning");
  EXPECT_STREQ(severity_name(Severity::kNote), "note");
}

}  // namespace
}  // namespace uc::support
