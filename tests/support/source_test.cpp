#include "support/source.hpp"

#include <gtest/gtest.h>

namespace uc::support {
namespace {

TEST(SourceFile, LineColOfFirstByte) {
  SourceFile f("t.uc", "abc\ndef\n");
  EXPECT_EQ(f.line_col({0}), (LineCol{1, 1}));
}

TEST(SourceFile, LineColMidLine) {
  SourceFile f("t.uc", "abc\ndef\n");
  EXPECT_EQ(f.line_col({2}), (LineCol{1, 3}));
}

TEST(SourceFile, LineColSecondLine) {
  SourceFile f("t.uc", "abc\ndef\n");
  EXPECT_EQ(f.line_col({4}), (LineCol{2, 1}));
  EXPECT_EQ(f.line_col({6}), (LineCol{2, 3}));
}

TEST(SourceFile, LineColAtNewline) {
  SourceFile f("t.uc", "abc\ndef\n");
  EXPECT_EQ(f.line_col({3}), (LineCol{1, 4}));
}

TEST(SourceFile, LineColPastEndClamps) {
  SourceFile f("t.uc", "abc");
  EXPECT_EQ(f.line_col({100}), (LineCol{1, 4}));
}

TEST(SourceFile, LineTextStripsNewline) {
  SourceFile f("t.uc", "abc\ndef\nghi");
  EXPECT_EQ(f.line_text(1), "abc");
  EXPECT_EQ(f.line_text(2), "def");
  EXPECT_EQ(f.line_text(3), "ghi");
}

TEST(SourceFile, LineTextOutOfRangeIsEmpty) {
  SourceFile f("t.uc", "abc");
  EXPECT_EQ(f.line_text(0), "");
  EXPECT_EQ(f.line_text(9), "");
}

TEST(SourceFile, EmptyFile) {
  SourceFile f("t.uc", "");
  EXPECT_EQ(f.line_count(), 1u);
  EXPECT_EQ(f.line_col({0}), (LineCol{1, 1}));
}

TEST(SourceFile, LineCountCountsTrailingNewlineLine) {
  SourceFile f("t.uc", "a\nb\n");
  EXPECT_EQ(f.line_count(), 3u);  // "a", "b", ""
}

TEST(SourceLoc, Ordering) {
  EXPECT_LT(SourceLoc{1}, SourceLoc{2});
  EXPECT_EQ(SourceLoc{3}, SourceLoc{3});
}

}  // namespace
}  // namespace uc::support
