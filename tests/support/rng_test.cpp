#include "support/rng.hpp"

#include <gtest/gtest.h>

namespace uc::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.next_below(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  SplitMix64 r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  SplitMix64 r(9);
  for (int i = 0; i < 1000; ++i) {
    auto d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  SplitMix64 r(123);
  int counts[4] = {0, 0, 0, 0};
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) counts[r.next_below(4)]++;
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 4 - kDraws / 20);
    EXPECT_LT(c, kDraws / 4 + kDraws / 20);
  }
}

}  // namespace
}  // namespace uc::support
