// Two parallel sorts from the paper — ranksort (3.4, one synchronous
// permutation step) and odd-even transposition sort (3.7, iterated
// non-deterministic *oneof) — plus a demonstration of the single-value
// rule that guards parallel assignment.
#include <cstdio>

#include "support/error.hpp"
#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

namespace {

void show(const char* label, const uc::vm::RunResult& result,
          const char* array) {
  std::printf("%-12s", label);
  auto values = result.global_array(array);
  for (std::size_t k = 0; k < values.size() && k < 16; ++k) {
    std::printf(" %3lld", static_cast<long long>(values[k].as_int()));
  }
  std::printf("   (cycles=%llu, global-ORs=%llu)\n",
              static_cast<unsigned long long>(result.stats().cycles),
              static_cast<unsigned long long>(result.stats().global_ors));
}

}  // namespace

int main() {
  const std::int64_t n = 16;

  auto ranksort = uc::Program::compile("rank.uc", uc::papers::ranksort(n));
  show("ranksort", ranksort.run(), "a");

  auto oddeven =
      uc::Program::compile("oe.uc", uc::papers::odd_even_sort(n));
  show("odd-even", oddeven.run(), "x");

  // The single-value rule (paper 3.4): assigning different values to one
  // variable from several processors is a runtime error.
  const char* bad =
      "index_set I:i = {0..3}, J:j = I;\n"
      "int a[4], b[4];\n"
      "void main() { par (I) b[i] = i; par (I, J) a[i] = b[j]; }";
  try {
    uc::Program::compile("bad.uc", bad).run();
    std::printf("\nunexpected: the illegal broadcast was not caught!\n");
  } catch (const uc::support::UcRuntimeError& e) {
    std::printf("\nillegal parallel assignment rejected as expected:\n  %s\n",
                e.what());
  }
  return 0;
}
