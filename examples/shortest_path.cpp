// The paper's flagship benchmark: all-pairs shortest path, three ways —
// Fig 4 (O(N^2) parallelism), Fig 5 (O(N^3) parallelism) and the *solve
// fixed-point form — all producing identical distances at different
// simulated costs.  Also shows the C* code the UC compiler would emit.
#include <cstdio>

#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

namespace {

void run_variant(const char* label, const std::string& source) {
  auto program = uc::Program::compile("sp.uc", source);
  auto result = program.run();
  const auto& st = result.stats();
  std::printf(
      "%-18s cycles=%-10llu vector_ops=%-6llu reductions=%-5llu "
      "d[0][%d]=%lld\n",
      label, static_cast<unsigned long long>(st.cycles),
      static_cast<unsigned long long>(st.vector_ops),
      static_cast<unsigned long long>(st.reductions), 7,
      static_cast<long long>(result.global_element("d", {0, 7}).as_int()));
}

}  // namespace

int main() {
  const std::int64_t n = 16;
  std::printf("All-pairs shortest path, N=%lld (same random graph, seed 11)\n\n",
              static_cast<long long>(n));

  run_variant("seq/par  (Fig 4)", uc::papers::shortest_path_on2(n));
  run_variant("log-round (Fig 5)", uc::papers::shortest_path_on3(n));
  run_variant("*solve   (3.6)", uc::papers::shortest_path_star_solve(n));

  std::printf("\n--- C* emission of the Fig 4 program (paper 5) ---\n");
  auto program = uc::Program::compile("sp.uc", uc::papers::shortest_path_on2(8));
  std::printf("%s", program.to_cstar_source().c_str());
  return 0;
}
