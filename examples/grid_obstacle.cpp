// Fig 11 / Fig 8: shortest distance from every grid cell to the goal at
// (0,0), around a diagonal wall, computed by the iterative *solve
// relaxation.  Renders the distance field as ASCII art.
#include <cstdio>

#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"
#include "uclang/symbols.hpp"

int main() {
  const std::int64_t rows = 16, cols = 16;
  auto program = uc::Program::compile(
      "grid.uc", uc::papers::grid_shortest_path(rows, cols, true));
  auto result = program.run();

  std::printf("distance to goal G at (0,0); ## = wall, .. = unreachable\n\n");
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      auto d = result.global_element("d", {i, j}).as_int();
      if (i == 0 && j == 0) {
        std::printf(" G ");
      } else if (d == -2) {
        std::printf(" ##");
      } else if (d >= uc::lang::kUcInf) {
        std::printf(" ..");
      } else {
        std::printf("%3lld", static_cast<long long>(d));
      }
    }
    std::printf("\n");
  }
  std::printf("\nsimulated machine: %s\n",
              result.stats().to_string(uc::cm::CostModel{}).c_str());
  return 0;
}
