// A tour of the compiler pipeline's artefacts for one small program:
// canonical UC after the optimisation passes, the C* translation (what
// the paper's prototype emitted, §5), and the Paris-style instruction
// trace (the direct-to-assembly retargeting §5 reports in progress).
#include <cstdio>

#include "uc/uc.hpp"

int main() {
  const char* source = R"uc(
    #define N 8
    index_set I:i = {0..N-1};
    int a[N], total;
    void main() {
      par (I) a[i] = i * (2 + 2);       /* constant-foldable */
      par (I) st (i > 0) a[i] = a[i] + a[i-1];
      total = $+(I; a[i]);
    }
  )uc";

  uc::CompileOptions opts;  // folding on by default
  auto program = uc::Program::compile("tour.uc", source, opts);

  std::printf("--- canonical UC (after constant folding) ---\n%s\n",
              program.to_uc_source().c_str());
  std::printf("--- C* translation ---\n%s\n",
              program.to_cstar_source().c_str());

  uc::cm::MachineOptions mopts;
  mopts.record_paris_trace = true;
  uc::cm::Machine machine(mopts);
  auto result = program.run_on(machine);

  std::printf("--- Paris-style instruction trace ---\n");
  for (const auto& line : machine.paris_trace()) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\ntotal = %lld, simulated cycles = %llu\n",
              static_cast<long long>(
                  result.global_scalar("total").as_int()),
              static_cast<unsigned long long>(result.stats().cycles));
  return 0;
}
