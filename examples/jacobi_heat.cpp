// Jacobi relaxation — the numerical workload class the paper's evaluation
// section reports as "experiments in progress" (CFD, SVD, Jacobi
// diagonalisation).  Shows float arrays, nested-predicate stencils and
// the NEWS grid carrying all of the communication.
#include <cstdio>

#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

int main() {
  const std::int64_t n = 12, iters = 50;
  auto program = uc::Program::compile("jacobi.uc", uc::papers::jacobi(n, iters));
  auto result = program.run();

  std::printf("temperature field after %lld Jacobi sweeps (boundary held):\n\n",
              static_cast<long long>(iters));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::printf("%6.2f", result.global_element("u", {i, j}).as_float());
    }
    std::printf("\n");
  }
  const auto& st = result.stats();
  std::printf(
      "\nsimulated: cycles=%llu news_ops=%llu router_msgs=%llu "
      "(stencils ride the NEWS grid: zero router traffic)\n",
      static_cast<unsigned long long>(st.cycles),
      static_cast<unsigned long long>(st.news_ops),
      static_cast<unsigned long long>(st.router_messages));
  return 0;
}
