// The solve construct (paper 3.6): the wavefront recurrence written as a
// declarative set of equations, plus a look at the compiler's general
// lowering to a guarded *par and the separable data-mapping story.
#include <cstdio>

#include "uc/paper_programs.hpp"
#include "uc/uc.hpp"

int main() {
  const auto source = uc::papers::wavefront(8);

  std::printf("--- UC source (declarative equations) ---\n%s\n",
              source.c_str());

  // 1. Run with the VM's built-in solve.
  auto builtin = uc::Program::compile("wave.uc", source);
  auto rb = builtin.run();

  // 2. Lower solve -> *par at the source level (what the UC compiler does,
  //    paper 3.6) and run the lowered program.
  uc::CompileOptions lower;
  lower.lower_solve = true;
  auto lowered = uc::Program::compile("wave.uc", source, lower);
  std::printf("--- after solve lowering ---\n%s\n",
              lowered.to_uc_source().c_str());
  auto rl = lowered.run();

  std::printf("a[7][7]: builtin=%lld lowered=%lld (must match)\n",
              static_cast<long long>(rb.global_element("a", {7, 7}).as_int()),
              static_cast<long long>(rl.global_element("a", {7, 7}).as_int()));
  std::printf("cycles:  builtin=%llu lowered=%llu\n",
              static_cast<unsigned long long>(rb.stats().cycles),
              static_cast<unsigned long long>(rl.stats().cycles));

  // 3. Mappings are separate from logic: the same shifted-access kernel
  //    with and without its permute map section (paper 4).
  auto unmapped = uc::Program::compile(
      "shift.uc", uc::papers::shifted_sum(64, 8, false)).run();
  auto mapped = uc::Program::compile(
      "shift.uc", uc::papers::shifted_sum(64, 8, true)).run();
  std::printf(
      "\nshifted-access kernel, 8 rounds over 64 elements:\n"
      "  default mapping: cycles=%llu news_ops=%llu\n"
      "  permute mapping: cycles=%llu news_ops=%llu\n",
      static_cast<unsigned long long>(unmapped.stats().cycles),
      static_cast<unsigned long long>(unmapped.stats().news_ops),
      static_cast<unsigned long long>(mapped.stats().cycles),
      static_cast<unsigned long long>(mapped.stats().news_ops));
  return 0;
}
