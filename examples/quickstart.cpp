// Quickstart: compile a UC program, run it on the simulated CM-2, inspect
// output, globals and machine statistics.
//
//   $ ./quickstart
#include <cstdio>

#include "uc/uc.hpp"

int main() {
  const char* source = R"uc(
    #define N 16
    index_set I:i = {0..N-1}, J:j = I;
    int a[N];
    int total, largest;

    void main() {
      /* Parallel initialisation: one virtual processor per element. */
      par (I) a[i] = (i * 7) % N;

      /* Reductions (paper 3.2): sum and maximum across the machine. */
      total   = $+(I; a[i]);
      largest = $>(I; a[i]);

      /* Ranksort (paper 3.4): each element counts the smaller ones in
         parallel, then moves itself to its final position. */
      par (I) {
        int rank;
        rank = $+(J st (a[j] < a[i]) 1);
        a[rank] = a[i];
      }

      print("total", total, "largest", largest);
      print("sorted first/last", a[0], a[N-1]);
    }
  )uc";

  auto program = uc::Program::compile("quickstart.uc", source);
  auto result = program.run();

  std::printf("--- program output ---\n%s", result.output().c_str());
  std::printf("--- machine ---\n%s\n",
              result.stats().to_string(uc::cm::CostModel{}).c_str());
  std::printf("total (via API) = %lld\n",
              static_cast<long long>(result.global_scalar("total").as_int()));
  return 0;
}
