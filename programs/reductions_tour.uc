/* Every reduction operator over one small array (paper Fig 1 extended). */
index_set I:i = {0..9}, J:j = I;
int a[10];
int s, p, mn, mx, alltrue, anybig, x, first, last;

void main() {
  a[0]=3; a[1]=1; a[2]=4; a[3]=1; a[4]=5;
  a[5]=9; a[6]=2; a[7]=6; a[8]=5; a[9]=3;

  s  = $+(I; a[i]);
  p  = $*(I st (a[i] <= 3) a[i]);
  mn = $<(I; a[i]);
  mx = $>(I; a[i]);
  alltrue = $&&(I; a[i] > 0);
  anybig  = $||(I; a[i] > 8);
  x  = $^(I; a[i]);
  first = $<(I st (a[i]==mn) i);
  last  = $>(I st (a[i] == $>(J; a[j])) i);

  print("sum", s, "prod<=3", p);
  print("min", mn, "max", mx);
  print("all>0", alltrue, "any>8", anybig, "xor", x);
  print("first-min", first, "last-max", last);
}
