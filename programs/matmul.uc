/* Matrix product via Cartesian par + reduction (paper 3.4). */
#define N 4
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int a[N][N], b[N][N], c[N][N];

void main() {
  par (I, J) { a[i][j] = i + j; b[i][j] = (i == j) ? 2 : 0; }
  par (I, J) c[i][j] = $+(K; a[i][k] * b[k][j]);
  print("c[1][2]", c[1][2], "c[3][3]", c[3][3]);
}
