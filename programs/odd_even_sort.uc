/* Paper 3.7 odd-even transposition sort via *oneof. */
#define N 8
int x[N];
index_set I:i = {0..N-2};

void main() {
  x[0]=8; x[1]=6; x[2]=7; x[3]=5; x[4]=3; x[5]=0; x[6]=9; x[7]=1;
  *oneof (I)
    st (i%2==0 && x[i]>x[i+1]) swap(x[i], x[i+1]);
    st (i%2!=0 && x[i]>x[i+1]) swap(x[i], x[i+1]);
  print(x[0], x[1], x[2], x[3], x[4], x[5], x[6], x[7]);
}
