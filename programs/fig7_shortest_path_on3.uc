/* Paper Fig 7 workload: shortest path with O(N^3) parallelism — each
 * round reduces over K in every (i, j) lane, so ceil(log2 N) rounds
 * suffice.  Smoke-test size; profiled by tools/ci.sh. */
#define N 8
index_set I:i = {0..N-1}, J:j = I, K:k = I;
index_set L:l = {0..2};
int d[N][N];

void init() {
  srand(11);
  par (I, J) st (i==j) d[i][j] = 0;
    others d[i][j] = rand() % N + 1;
}

void main() {
  init();
  seq (L)
    par (I, J)
      d[i][j] = $<(K; d[i][k] + d[k][j]);
  print("d[0][N-1] =", d[0][N-1]);
}
