/* Separable data mappings (paper 4): the map section changes placement,
   never results.  Run with and without --no-mappings and compare --stats. */
#define N 64
index_set I:i = {0..N-1};
index_set T:t = {1..16};
int a[N], b[N];

map (I) { permute (I) b[N-1-i] :- a[i]; }

void main() {
  par (I) { a[i] = 0; b[i] = i * i; }
  seq (T)
    par (I) a[i] = a[i] + b[N-1-i];
  print("a[0] =", a[0], " a[N-1] =", a[N-1]);
}
