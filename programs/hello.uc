/* The smallest interesting UC program: a parallel sum. */
index_set I:i = {0..99};
int a[100], total;

void main() {
  par (I) a[i] = i + 1;
  total = $+(I; a[i]);
  print("sum of 1..100 =", total);
}
