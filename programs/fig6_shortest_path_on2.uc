/* Paper Fig 6 workload: all-pairs shortest path with O(N^2) parallelism
 * (the Fig 4 program), at a smoke-test size.  tools/ci.sh profiles this
 * program and asserts profiling leaves the output bit-identical. */
#define N 8
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int d[N][N];

void init() {
  srand(11);
  par (I, J) st (i==j) d[i][j] = 0;
    others d[i][j] = rand() % N + 1;
}

void main() {
  init();
  seq (K)
    par (I, J)
      st (d[i][k] + d[k][j] < d[i][j])
        d[i][j] = d[i][k] + d[k][j];
  print("d[0][N-1] =", d[0][N-1]);
}
