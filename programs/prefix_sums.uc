/* Paper Fig 2: prefix sums via *par in log N iterations. */
#define N 16
index_set I:i = {0..N-1};
int a[N], cnt[N];

void main() {
  par (I) { a[i] = i; cnt[i] = 0; }
  *par (I) st (i >= power2(cnt[i]))
  { a[i] = a[i] + a[i - power2(cnt[i])];
    cnt[i] = cnt[i] + 1;
  }
  print("psum[5]", a[5], "psum[15]", a[15]);
}
