/* Paper 3.4 ranksort; distinct keys assumed. */
#define N 8
index_set I:i = {0..N-1}, J:j = I;
int a[N];

void main() {
  a[0]=50; a[1]=30; a[2]=90; a[3]=10;
  a[4]=70; a[5]=20; a[6]=80; a[7]=40;
  par (I)
  { int rank;
    rank = $+(J st (a[j] < a[i]) 1);
    a[rank] = a[i];
  }
  print(a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7]);
}
