/* The wavefront equations, solved declaratively (paper 3.6). */
#define N 8
index_set I:i = {0..N-1}, J:j = I;
int a[N][N];

void main() {
  solve (I, J)
    a[i][j] = (i==0 || j==0) ? 1
      : a[i-1][j] + a[i-1][j-1] + a[i][j-1];
  print("a[N-1][N-1] =", a[N-1][N-1]);
}
