/* Paper Fig 8 workload: shortest path to the corner of a grid with an
 * anti-diagonal obstacle (Fig 11), via *solve to a fixed point.  Smoke-
 * test size; profiled by tools/ci.sh. */
#define R 8
#define C 8
#define WALL (0 - 2)
index_set I:i = {0..R-1}, J:j = {0..C-1};
index_set D:dir = {0..3};
int d[R][C];

void init() {
  par (I, J)
    st (i+j == R-1 && abs(i - R/2) <= R/4 && j != 0)
      d[i][j] = WALL;
    others d[i][j] = INF;
  d[0][0] = 0;
}

void main() {
  init();
  *solve (I, J)
    st (d[i][j] != WALL && !(i==0 && j==0))
      d[i][j] = min(INF, 1 + $<(D
        st (i + (dir==0) - (dir==1) >= 0 &&
            i + (dir==0) - (dir==1) <= R-1 &&
            j + (dir==2) - (dir==3) >= 0 &&
            j + (dir==2) - (dir==3) <= C-1 &&
            d[i + (dir==0) - (dir==1)][j + (dir==2) - (dir==3)]
              != WALL)
          d[i + (dir==0) - (dir==1)][j + (dir==2) - (dir==3)]));
  print("d[R-1][C-1] =", d[R-1][C-1]);
}
