/* All-pairs shortest path with O(N^2) parallelism (paper Fig 4). */
#define N 8
index_set I:i = {0..N-1}, J:j = I, K:k = I;
int d[N][N];

void main() {
  srand(11);
  par (I, J) st (i==j) d[i][j] = 0;
    others d[i][j] = rand() % N + 1;

  seq (K)
    par (I, J)
      st (d[i][k] + d[k][j] < d[i][j])
        d[i][j] = d[i][k] + d[k][j];

  print("d[0][N-1] =", d[0][N-1]);
}
