/* Array slices as arguments (paper 3). */
#define N 4
int rowsum(int v[], int n) {
  int acc; acc = 0;
  for (int k = 0; k < n; k++) acc = acc + v[k];
  return acc;
}
index_set I:i = {0..N-1}, J:j = I;
int m[N][N];

void main() {
  par (I, J) m[i][j] = 10*i + j;
  print("row0", rowsum(m[0], N), "row3", rowsum(m[3], N));
}
