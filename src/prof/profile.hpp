// Execution profiler: per-source-site attribution of modeled machine
// cycles, communication operations, and host wall time (docs/PROFILING.md).
//
// The VM (both the tree-walk and the bytecode engine) maintains a stack of
// attribution scopes, one per executing source site — a par/seq/solve/oneof
// construct, a synchronous statement inside one, a front-end statement, a
// map section.  Entering a scope flushes the cost accrued so far to the
// site that was on top, so every charged cycle lands in exactly one site's
// *self* bucket: summing Site::self over all sites reproduces the
// machine's aggregate CostStats for the run.  Cost deltas are snapshots of
// the machine's CostStats counters, which are charged from the issuing
// thread only, so the profiler needs no synchronisation.
//
// When trace capture is on, every scope exit also records a Chrome
// trace-event (complete "X" event) so the scope stack can be loaded into
// chrome://tracing (see prof/report.hpp for the JSON export).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "cm/cost.hpp"

namespace uc::prof {

struct SiteId {
  std::int32_t index = -1;
  bool valid() const { return index >= 0; }
};

// One attributed source site.  `self` holds the exclusive cost deltas
// (time on top of the scope stack); entries counts scope activations.
struct Site {
  std::string kind;   // "par", "*par", "seq", "solve", "stmt", "fe", ...
  std::string file;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::uint32_t begin_offset = 0;  // source byte range, for static joins
  std::uint32_t end_offset = 0;
  std::string text;  // trimmed first source line of the site

  std::uint64_t entries = 0;
  cm::CostStats self;               // exclusive cost; sums to the aggregate
  std::uint64_t self_wall_ns = 0;   // exclusive host wall time
  std::uint64_t pool_chunks = 0;    // host-pool chunks while on top
  std::uint64_t bytecode_stmts = 0; // statements run on the bytecode engine
  std::uint64_t walk_stmts = 0;     // statements run on the tree walk
  std::uint64_t fused_stmts = 0;    // of bytecode_stmts: ran inside a fused
                                    // kernel group (docs/VM.md "Fusion")

  // Filled by the static-vs-dynamic join (uc::Program::profile): the
  // `ucc analyze` communication classes whose accesses fall inside this
  // site's source range, e.g. "local+news"; empty when not joined.
  std::string static_classes;
};

// One completed scope occurrence (Chrome "X" complete event).
struct TraceEvent {
  std::int32_t site = -1;
  std::uint64_t start_ns = 0;  // since profiler construction
  std::uint64_t dur_ns = 0;
  std::uint64_t cycles = 0;    // inclusive modeled-cycle delta
  std::int32_t depth = 0;      // stack depth at entry (0 = root)
};

class Profiler {
 public:
  explicit Profiler(bool capture_trace = false)
      : capture_trace_(capture_trace), t0_(Clock::now()) {}

  bool capture_trace() const { return capture_trace_; }

  // Interns a site; calling again with the same identity returns a new id
  // (callers cache ids per AST node, see vm::detail::Impl::prof_site).
  SiteId intern(std::string kind, std::string file, std::uint32_t line,
                std::uint32_t col, std::uint32_t begin_offset,
                std::uint32_t end_offset, std::string text);

  // Scope stack.  `now` is the machine's current aggregate CostStats and
  // `pool_chunks` the pool's total executed chunk count; both must be
  // sampled by the caller on the issuing thread.
  void enter(SiteId id, const cm::CostStats& now, std::uint64_t pool_chunks);
  void exit(const cm::CostStats& now, std::uint64_t pool_chunks);

  // Records which engine executed a synchronous statement for the site
  // currently on top of the scope stack (no-op when the stack is empty).
  void note_engine(bool bytecode);

  // Records that the statement on top of the scope stack executed as a
  // member of a fused kernel group (shows as "fused×N" in ucc profile).
  void note_fused();

  std::size_t depth() const { return stack_.size(); }
  const std::vector<Site>& sites() const { return sites_; }
  std::vector<Site>& sites() { return sites_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct ScopeFrame {
    std::int32_t site = -1;
    cm::CostStats resume;        // stats snapshot when (re)gaining the top
    std::uint64_t resume_ns = 0;
    std::uint64_t resume_chunks = 0;
    cm::CostStats at_entry;      // stats snapshot at scope entry (inclusive)
    std::uint64_t entry_ns = 0;
  };

  // Adds the delta since the top frame's resume point to its site.
  void flush_top(const cm::CostStats& now, std::uint64_t now_wall,
                 std::uint64_t pool_chunks);

  bool capture_trace_ = false;
  Clock::time_point t0_;
  std::vector<Site> sites_;
  std::vector<ScopeFrame> stack_;
  std::vector<TraceEvent> events_;
};

}  // namespace uc::prof
