#include "prof/profile.hpp"

namespace uc::prof {

SiteId Profiler::intern(std::string kind, std::string file,
                        std::uint32_t line, std::uint32_t col,
                        std::uint32_t begin_offset, std::uint32_t end_offset,
                        std::string text) {
  Site site;
  site.kind = std::move(kind);
  site.file = std::move(file);
  site.line = line;
  site.col = col;
  site.begin_offset = begin_offset;
  site.end_offset = end_offset;
  site.text = std::move(text);
  sites_.push_back(std::move(site));
  return SiteId{static_cast<std::int32_t>(sites_.size() - 1)};
}

void Profiler::flush_top(const cm::CostStats& now, std::uint64_t now_wall,
                         std::uint64_t pool_chunks) {
  ScopeFrame& top = stack_.back();
  Site& site = sites_[static_cast<std::size_t>(top.site)];
  site.self += now - top.resume;
  site.self_wall_ns += now_wall - top.resume_ns;
  site.pool_chunks += pool_chunks - top.resume_chunks;
}

void Profiler::enter(SiteId id, const cm::CostStats& now,
                     std::uint64_t pool_chunks) {
  if (!id.valid()) return;
  const std::uint64_t wall = now_ns();
  if (!stack_.empty()) flush_top(now, wall, pool_chunks);
  ScopeFrame frame;
  frame.site = id.index;
  frame.resume = now;
  frame.resume_ns = wall;
  frame.resume_chunks = pool_chunks;
  frame.at_entry = now;
  frame.entry_ns = wall;
  stack_.push_back(frame);
  sites_[static_cast<std::size_t>(id.index)].entries += 1;
}

void Profiler::exit(const cm::CostStats& now, std::uint64_t pool_chunks) {
  if (stack_.empty()) return;
  const std::uint64_t wall = now_ns();
  flush_top(now, wall, pool_chunks);
  const ScopeFrame top = stack_.back();
  stack_.pop_back();
  if (capture_trace_) {
    TraceEvent ev;
    ev.site = top.site;
    ev.start_ns = top.entry_ns;
    ev.dur_ns = wall - top.entry_ns;
    ev.cycles = now.cycles - top.at_entry.cycles;
    ev.depth = static_cast<std::int32_t>(stack_.size());
    events_.push_back(ev);
  }
  if (!stack_.empty()) {
    ScopeFrame& parent = stack_.back();
    parent.resume = now;
    parent.resume_ns = wall;
    parent.resume_chunks = pool_chunks;
  }
}

void Profiler::note_fused() {
  if (stack_.empty()) return;
  sites_[static_cast<std::size_t>(stack_.back().site)].fused_stmts += 1;
}

void Profiler::note_engine(bool bytecode) {
  if (stack_.empty()) return;
  Site& site = sites_[static_cast<std::size_t>(stack_.back().site)];
  if (bytecode) {
    site.bytecode_stmts += 1;
  } else {
    site.walk_stmts += 1;
  }
}

}  // namespace uc::prof
