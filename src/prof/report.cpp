#include "prof/report.hpp"

#include <algorithm>
#include <numeric>

#include "support/str.hpp"

namespace uc::prof {

using support::format;

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string engine_mark(const Site& s) {
  if (s.bytecode_stmts > 0 && s.walk_stmts > 0) return "mixed";
  if (s.bytecode_stmts > 0) return "bc";
  if (s.walk_stmts > 0) return "walk";
  return "-";
}

// Long directory prefixes crowd out the statement text; keep the tail of
// the string — the part that still identifies the site as file:line.
std::string left_truncate(const std::string& s, std::size_t width) {
  if (s.size() <= width) return s;
  return "..." + s.substr(s.size() - (width - 3));
}

// Indices of sites sorted hottest-first by self modeled cycles.  Ties keep
// interning (first-execution) order — never wall time, which would make
// the row order vary run to run and between engines.
std::vector<std::size_t> hot_order(const std::vector<Site>& sites) {
  std::vector<std::size_t> order(sites.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sites[a].self.cycles > sites[b].self.cycles;
                   });
  return order;
}

}  // namespace

std::string render_table(const std::vector<Site>& sites,
                         const cm::CostModel& model,
                         const cm::CostStats& total,
                         const PoolUtilization& pool,
                         const TableOptions& opts) {
  std::string out;
  // Fault/recovery columns appear only when fault injection or
  // checkpointing actually charged something, so fault-free profiles are
  // byte-identical to what they were before the fault subsystem existed.
  bool any_faults = false;
  // Same gating for the plan-cache column: it appears only when some site
  // actually issued from a cached communication plan, so plain profiles
  // keep their pre-fusion layout.  Both columns are fixed width, so
  // flt/rty/rb/ck and plan$ stay aligned whichever combination is shown.
  bool any_plans = false;
  // And for the durable-checkpoint column: only runs that persisted a
  // snapshot to disk or restored one (`--checkpoint-dir`/`--resume`,
  // docs/ROBUSTNESS.md) show dur/res.
  bool any_durable = false;
  for (const auto& s : sites) {
    if (s.self.faults != 0 || s.self.retries != 0 || s.self.rollbacks != 0 ||
        s.self.checkpoints != 0) {
      any_faults = true;
    }
    if (s.self.plan_hits != 0) any_plans = true;
    if (s.self.durable_checkpoints != 0 || s.self.resumes != 0) {
      any_durable = true;
    }
  }
  out += format(
      "%12s %6s %9s %8s  %-23s %s%s%s%-5s %-12s %s\n", "self-cycles", "%",
      "host-ms", "entries", "ops v/n/r/sc/go/bc/fe",
      any_plans ? "plan$    " : "", any_faults ? "flt/rty/rb/ck   " : "",
      any_durable ? "dur/res  " : "", "eng",
      opts.show_static ? "static" : "", "site");

  const auto order = hot_order(sites);
  std::uint64_t sum_cycles = 0;
  for (const auto& s : sites) sum_cycles += s.self.cycles;

  std::size_t rows = 0, hidden = 0;
  for (std::size_t idx : order) {
    const Site& s = sites[idx];
    if (s.entries == 0 || (s.self.cycles == 0 && s.self_wall_ns < 1000)) {
      ++hidden;
      continue;
    }
    if (opts.max_rows != 0 && rows >= opts.max_rows) {
      ++hidden;
      continue;
    }
    ++rows;
    const double pct =
        total.cycles > 0
            ? 100.0 * static_cast<double>(s.self.cycles) /
                  static_cast<double>(total.cycles)
            : 0.0;
    const std::string mix = format(
        "%llu/%llu/%llu/%llu/%llu/%llu/%llu",
        static_cast<unsigned long long>(s.self.vector_ops),
        static_cast<unsigned long long>(s.self.news_ops),
        static_cast<unsigned long long>(s.self.router_ops),
        static_cast<unsigned long long>(s.self.reductions),
        static_cast<unsigned long long>(s.self.global_ors),
        static_cast<unsigned long long>(s.self.broadcasts),
        static_cast<unsigned long long>(s.self.frontend_ops));
    // Truncate long paths from the LEFT so the file name and line — the
    // part that identifies the site — always stay visible.
    const std::string where = left_truncate(
        s.line > 0 ? format("%s:%u", s.file.c_str(), s.line) : s.file, 36);
    std::string plan_col;
    if (any_plans) {
      plan_col = format(
          "%-9s",
          format("%llu", static_cast<unsigned long long>(s.self.plan_hits))
              .c_str());
    }
    std::string fault_mix;
    if (any_faults) {
      fault_mix = format(
          "%-16s",
          format("%llu/%llu/%llu/%llu",
                 static_cast<unsigned long long>(s.self.faults),
                 static_cast<unsigned long long>(s.self.retries),
                 static_cast<unsigned long long>(s.self.rollbacks),
                 static_cast<unsigned long long>(s.self.checkpoints))
              .c_str());
    }
    std::string durable_mix;
    if (any_durable) {
      durable_mix = format(
          "%-9s",
          format("%llu/%llu",
                 static_cast<unsigned long long>(s.self.durable_checkpoints),
                 static_cast<unsigned long long>(s.self.resumes))
              .c_str());
    }
    // Sites whose statements ran inside a fused kernel group carry a
    // fused×N tag (N = member-statement executions, docs/VM.md "Fusion").
    std::string kind_tag = s.kind;
    if (s.fused_stmts > 0) {
      kind_tag += format(" fused\xc3\x97%llu",
                         static_cast<unsigned long long>(s.fused_stmts));
    }
    out += format(
        "%12llu %5.1f%% %9.3f %8llu  %-23s %s%s%s%-5s %-12s %s %s | %s\n",
        static_cast<unsigned long long>(s.self.cycles), pct,
        static_cast<double>(s.self_wall_ns) / 1e6,
        static_cast<unsigned long long>(s.entries), mix.c_str(),
        plan_col.c_str(), fault_mix.c_str(), durable_mix.c_str(),
        engine_mark(s).c_str(),
        opts.show_static
            ? (s.static_classes.empty() ? "-" : s.static_classes.c_str())
            : "",
        where.c_str(), kind_tag.c_str(), s.text.c_str());
  }
  if (hidden > 0) {
    out += format("  (%zu cold sites hidden)\n", hidden);
  }
  out += format(
      "total: %llu cycles (%.6f s @%.0fMHz), sum of sites = %llu%s\n",
      static_cast<unsigned long long>(total.cycles),
      model.cycles_to_seconds(total.cycles), model.clock_hz / 1e6,
      static_cast<unsigned long long>(sum_cycles),
      sum_cycles == total.cycles ? "" : "  ** MISMATCH **");

  out += format("host pool: %u thread%s, %llu parallel regions, "
                "chunks/worker:",
                pool.threads, pool.threads == 1 ? "" : "s",
                static_cast<unsigned long long>(pool.jobs));
  for (auto c : pool.chunks) {
    out += format(" %llu", static_cast<unsigned long long>(c));
  }
  const auto [mn, mx] =
      pool.chunks.empty()
          ? std::pair<std::uint64_t, std::uint64_t>{0, 0}
          : std::pair<std::uint64_t, std::uint64_t>{
                *std::min_element(pool.chunks.begin(), pool.chunks.end()),
                *std::max_element(pool.chunks.begin(), pool.chunks.end())};
  if (pool.chunks.size() > 1 && mn > 0) {
    out += format(" (imbalance %.2fx)", static_cast<double>(mx) /
                                            static_cast<double>(mn));
  }
  out += "\n";
  // Sharded runs get a per-shard section: instructions dispatched to the
  // shard, lanes served inside its block, lanes fed through an exchange
  // phase, and the lane imbalance across shards (host scheduling only —
  // modeled cycles are shard-count independent, docs/SHARDING.md).
  if (pool.shards.size() > 1) {
    out += format("shards: %zu\n", pool.shards.size());
    out += format("  %-6s %12s %14s %16s\n", "shard", "ops", "intra-lanes",
                  "exchange-lanes");
    std::uint64_t lane_min = ~0ull, lane_max = 0;
    for (std::size_t s = 0; s < pool.shards.size(); ++s) {
      const auto& st = pool.shards[s];
      const auto lanes = st.intra_lanes + st.exchange_lanes;
      lane_min = std::min(lane_min, lanes);
      lane_max = std::max(lane_max, lanes);
      out += format("  %-6zu %12llu %14llu %16llu\n", s,
                    static_cast<unsigned long long>(st.ops),
                    static_cast<unsigned long long>(st.intra_lanes),
                    static_cast<unsigned long long>(st.exchange_lanes));
    }
    if (lane_min > 0 && lane_max > 0) {
      out += format("  lane imbalance %.2fx\n",
                    static_cast<double>(lane_max) /
                        static_cast<double>(lane_min));
    }
  }
  return out;
}

std::string sites_json(const std::vector<Site>& sites,
                       const cm::CostStats& total,
                       const PoolUtilization& pool) {
  std::string out = "{\n";
  out += format("  \"total_cycles\": %llu,\n",
                static_cast<unsigned long long>(total.cycles));
  out += "  \"sites\": [\n";
  const auto order = hot_order(sites);
  bool first = true;
  for (std::size_t idx : order) {
    const Site& s = sites[idx];
    if (s.entries == 0) continue;
    if (!first) out += ",\n";
    first = false;
    out += format(
        "    {\"kind\": \"%s\", \"file\": \"%s\", \"line\": %u, "
        "\"col\": %u, \"text\": \"%s\", \"entries\": %llu, "
        "\"cycles\": %llu, \"host_ms\": %.3f, \"vector_ops\": %llu, "
        "\"news_ops\": %llu, \"router_ops\": %llu, "
        "\"router_messages\": %llu, \"reductions\": %llu, "
        "\"global_ors\": %llu, \"broadcasts\": %llu, "
        "\"frontend_ops\": %llu, \"faults\": %llu, \"retries\": %llu, "
        "\"rollbacks\": %llu, \"checkpoints\": %llu, "
        "\"durable_checkpoints\": %llu, \"resumes\": %llu, "
        "\"plan_hits\": %llu, \"pool_chunks\": %llu, "
        "\"bytecode_stmts\": %llu, \"walk_stmts\": %llu, "
        "\"fused_stmts\": %llu, \"static\": \"%s\"}",
        json_escape(s.kind).c_str(), json_escape(s.file).c_str(), s.line,
        s.col, json_escape(s.text).c_str(),
        static_cast<unsigned long long>(s.entries),
        static_cast<unsigned long long>(s.self.cycles),
        static_cast<double>(s.self_wall_ns) / 1e6,
        static_cast<unsigned long long>(s.self.vector_ops),
        static_cast<unsigned long long>(s.self.news_ops),
        static_cast<unsigned long long>(s.self.router_ops),
        static_cast<unsigned long long>(s.self.router_messages),
        static_cast<unsigned long long>(s.self.reductions),
        static_cast<unsigned long long>(s.self.global_ors),
        static_cast<unsigned long long>(s.self.broadcasts),
        static_cast<unsigned long long>(s.self.frontend_ops),
        static_cast<unsigned long long>(s.self.faults),
        static_cast<unsigned long long>(s.self.retries),
        static_cast<unsigned long long>(s.self.rollbacks),
        static_cast<unsigned long long>(s.self.checkpoints),
        static_cast<unsigned long long>(s.self.durable_checkpoints),
        static_cast<unsigned long long>(s.self.resumes),
        static_cast<unsigned long long>(s.self.plan_hits),
        static_cast<unsigned long long>(s.pool_chunks),
        static_cast<unsigned long long>(s.bytecode_stmts),
        static_cast<unsigned long long>(s.walk_stmts),
        static_cast<unsigned long long>(s.fused_stmts),
        json_escape(s.static_classes).c_str());
  }
  out += "\n  ],\n";
  out += format("  \"pool\": {\"threads\": %u, \"jobs\": %llu, \"chunks\": [",
                pool.threads, static_cast<unsigned long long>(pool.jobs));
  for (std::size_t k = 0; k < pool.chunks.size(); ++k) {
    out += format("%s%llu", k > 0 ? ", " : "",
                  static_cast<unsigned long long>(pool.chunks[k]));
  }
  out += "]}";
  if (!pool.shards.empty()) {
    out += ",\n  \"shards\": [";
    for (std::size_t s = 0; s < pool.shards.size(); ++s) {
      const auto& st = pool.shards[s];
      out += format(
          "%s{\"ops\": %llu, \"intra_lanes\": %llu, \"exchange_lanes\": "
          "%llu}",
          s > 0 ? ", " : "", static_cast<unsigned long long>(st.ops),
          static_cast<unsigned long long>(st.intra_lanes),
          static_cast<unsigned long long>(st.exchange_lanes));
    }
    out += "]";
  }
  out += "\n}\n";
  return out;
}

std::string trace_json(const std::vector<Site>& sites,
                       const std::vector<TraceEvent>& events) {
  // A bare array is a valid Chrome trace (the JSON Array Format); events
  // may appear in any order, chrome://tracing sorts by ts.
  std::string out = "[\n";
  for (std::size_t k = 0; k < events.size(); ++k) {
    const TraceEvent& ev = events[k];
    const Site& s = sites[static_cast<std::size_t>(ev.site)];
    const std::string name =
        s.line > 0 ? format("%s %s:%u", s.kind.c_str(), s.file.c_str(),
                            s.line)
                   : s.kind;
    out += format(
        "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": 1, "
        "\"args\": {\"cycles\": %llu, \"line\": %u, \"text\": \"%s\"}}%s\n",
        json_escape(name).c_str(), json_escape(s.kind).c_str(),
        static_cast<double>(ev.start_ns) / 1e3,
        static_cast<double>(ev.dur_ns) / 1e3,
        static_cast<unsigned long long>(ev.cycles), s.line,
        json_escape(s.text).c_str(), k + 1 < events.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

}  // namespace uc::prof
