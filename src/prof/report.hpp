// Rendering for profiler results: the hot-site table, the machine-readable
// site JSON, and the Chrome trace-event export (docs/PROFILING.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cm/cost.hpp"
#include "cm/shard.hpp"
#include "prof/profile.hpp"

namespace uc::prof {

// Host thread-pool utilization for one run (snapshot of the pool counters).
struct PoolUtilization {
  unsigned threads = 1;
  std::uint64_t jobs = 0;                  // parallel regions executed
  std::vector<std::uint64_t> chunks;       // chunks per worker id
  // Per-shard counters (docs/SHARDING.md); empty when the run was
  // unsharded.  Rendered as a per-shard section under the pool line.
  std::vector<cm::ShardStats> shards;
};

struct TableOptions {
  std::size_t max_rows = 0;   // 0 = all sites with nonzero self cost
  bool show_static = true;    // static-vs-dynamic join column
};

// The sorted hot-site table: one row per site, hottest (self modeled
// cycles) first, followed by a totals line and the pool utilization.
std::string render_table(const std::vector<Site>& sites,
                         const cm::CostModel& model,
                         const cm::CostStats& total,
                         const PoolUtilization& pool,
                         const TableOptions& opts = {});

// Machine-readable profile: {"total_cycles":..., "sites":[...], "pool":...}.
std::string sites_json(const std::vector<Site>& sites,
                       const cm::CostStats& total,
                       const PoolUtilization& pool);

// Chrome trace-event JSON (an array of complete "X" events, loadable by
// chrome://tracing and Perfetto).  Wall-clock timestamps in microseconds;
// each event carries the inclusive modeled-cycle delta in args.
std::string trace_json(const std::vector<Site>& sites,
                       const std::vector<TraceEvent>& events);

}  // namespace uc::prof
