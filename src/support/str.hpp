// Small string helpers used by the front end and the test suite.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace uc::support {

std::vector<std::string_view> split_lines(std::string_view text);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Counts non-blank, non-comment lines — used by the conciseness experiment
// (E9 in DESIGN.md) to compare UC and C* program sizes.
std::size_t count_code_lines(std::string_view source);

}  // namespace uc::support
