#include "support/source.hpp"

#include <algorithm>

namespace uc::support {

SourceFile::SourceFile(std::string name, std::string text)
    : name_(std::move(name)), text_(std::move(text)) {
  line_starts_.push_back(0);
  for (std::uint32_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n') line_starts_.push_back(i + 1);
  }
}

LineCol SourceFile::line_col(SourceLoc loc) const {
  auto off = std::min<std::uint32_t>(loc.offset,
                                     static_cast<std::uint32_t>(text_.size()));
  auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), off);
  auto line = static_cast<std::uint32_t>(it - line_starts_.begin());  // 1-based
  auto start = line_starts_[line - 1];
  return LineCol{line, off - start + 1};
}

std::string_view SourceFile::line_text(std::uint32_t line) const {
  if (line == 0 || line > line_starts_.size()) return {};
  auto start = line_starts_[line - 1];
  auto end = line < line_starts_.size()
                 ? line_starts_[line] - 1  // strip '\n'
                 : static_cast<std::uint32_t>(text_.size());
  if (end < start) end = start;
  return std::string_view(text_).substr(start, end - start);
}

std::uint32_t SourceFile::line_count() const {
  return static_cast<std::uint32_t>(line_starts_.size());
}

}  // namespace uc::support
