// Deterministic pseudo-random number generation.  The paper's programs call
// rand(); we substitute a seeded SplitMix64 so every experiment is exactly
// reproducible across runs and platforms (see DESIGN.md §2).
#pragma once

#include <cstdint>

namespace uc::support {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound) without modulo bias for small bounds; bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  void seed(std::uint64_t s) { state_ = s; }
  // The raw generator state, for checkpoint/restore (docs/ROBUSTNESS.md):
  // seed(state()) round-trips exactly.
  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

}  // namespace uc::support
