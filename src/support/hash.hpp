// Stable, seedless hashes for on-disk identity and integrity checks.
// Both functions are fully specified (no pointer or ASLR input), so the
// values they produce are comparable across processes and hosts — the
// property the durable-checkpoint header relies on
// (docs/ROBUSTNESS.md "Durable checkpoints & resume").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace uc::support {

// FNV-1a over arbitrary bytes: the program/options identity hash.
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t k = 0; k < n; ++k) {
    h ^= p[k];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a(const std::string& s,
                           std::uint64_t h = 0xcbf29ce484222325ull) {
  return fnv1a(s.data(), s.size(), h);
}

// Fold one integer into a running FNV-1a hash, byte by byte
// (little-endian, so the result is host-order independent in practice:
// every supported target is little-endian, and the value only ever
// compares against hashes produced the same way).
inline std::uint64_t fnv1a_u64(std::uint64_t v,
                               std::uint64_t h = 0xcbf29ce484222325ull) {
  unsigned char bytes[8];
  for (int k = 0; k < 8; ++k) bytes[k] = static_cast<unsigned char>(v >> (8 * k));
  return fnv1a(bytes, 8, h);
}

// CRC-32 (IEEE 802.3 polynomial, reflected) — the snapshot payload
// checksum.  Table built on first use; thread-safe under C++11 static
// initialization.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t crc = 0) {
  static const auto table = [] {
    struct Table { std::uint32_t e[256]; };
    Table t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      t.e[i] = c;
    }
    return t;
  }();
  crc ^= 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t k = 0; k < n; ++k) {
    crc = table.e[(crc ^ p[k]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace uc::support
