#include "support/diag.hpp"

#include <sstream>

namespace uc::support {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity sev, SourceRange range,
                              std::string message) {
  if (sev == Severity::kError) ++error_count_;
  diags_.push_back(Diagnostic{sev, range, std::move(message)});
}

std::string DiagnosticEngine::render(const Diagnostic& d) const {
  std::ostringstream os;
  if (file_ != nullptr) {
    auto lc = file_->line_col(d.range.begin);
    os << file_->name() << ':' << lc.line << ':' << lc.col << ": ";
    os << severity_name(d.severity) << ": " << d.message << '\n';
    auto line = file_->line_text(lc.line);
    os << "  " << line << '\n';
    os << "  ";
    for (std::uint32_t i = 1; i < lc.col; ++i) {
      os << (i - 1 < line.size() && line[i - 1] == '\t' ? '\t' : ' ');
    }
    os << '^';
    // Extend the caret across the range if it stays on one line.
    auto lc_end = file_->line_col(d.range.end);
    if (lc_end.line == lc.line && lc_end.col > lc.col + 1) {
      for (std::uint32_t i = lc.col + 1; i < lc_end.col; ++i) os << '~';
    }
    os << '\n';
  } else {
    os << severity_name(d.severity) << ": " << d.message << '\n';
  }
  return os.str();
}

std::string DiagnosticEngine::render_all() const {
  std::string out;
  for (const auto& d : diags_) out += render(d);
  return out;
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

}  // namespace uc::support
