#include "support/str.hpp"

#include <cstdarg>
#include <cstdio>

namespace uc::support {

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::size_t count_code_lines(std::string_view source) {
  std::size_t n = 0;
  bool in_block_comment = false;
  for (auto raw : split_lines(source)) {
    auto line = trim(raw);
    bool has_code = false;
    for (std::size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        auto end = line.find("*/", i);
        if (end == std::string_view::npos) {
          i = line.size();
        } else {
          in_block_comment = false;
          i = end + 2;
        }
        continue;
      }
      if (line.substr(i, 2) == "/*") {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (line.substr(i, 2) == "//") break;
      if (line[i] != ' ' && line[i] != '\t') has_code = true;
      ++i;
    }
    if (has_code) ++n;
  }
  return n;
}

}  // namespace uc::support
