// Source-location bookkeeping shared by the lexer, parser, semantic
// analysis and diagnostics.  A SourceLoc is a byte offset into a named
// buffer; SourceFile converts offsets to line/column on demand.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace uc::support {

struct SourceLoc {
  std::uint32_t offset = 0;  // byte offset into the owning buffer

  friend bool operator==(SourceLoc, SourceLoc) = default;
  friend auto operator<=>(SourceLoc, SourceLoc) = default;
};

struct SourceRange {
  SourceLoc begin;
  SourceLoc end;  // one past the last byte

  friend bool operator==(SourceRange, SourceRange) = default;
};

struct LineCol {
  std::uint32_t line = 1;  // 1-based
  std::uint32_t col = 1;   // 1-based, in bytes

  friend bool operator==(LineCol, LineCol) = default;
};

// An immutable named source buffer with lazy line-start indexing.
class SourceFile {
 public:
  SourceFile(std::string name, std::string text);

  const std::string& name() const { return name_; }
  std::string_view text() const { return text_; }

  LineCol line_col(SourceLoc loc) const;

  // The full text of the (1-based) line, without the trailing newline.
  std::string_view line_text(std::uint32_t line) const;

  std::uint32_t line_count() const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::uint32_t> line_starts_;  // offset of each line's first byte
};

}  // namespace uc::support
