// Diagnostic engine: collects errors/warnings/notes with source ranges and
// renders them with a caret line, clang-style.  Front-end phases share one
// engine so a driver can report everything found in a single run.
#pragma once

#include <string>
#include <vector>

#include "support/source.hpp"

namespace uc::support {

enum class Severity { kNote, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceRange range;
  std::string message;
};

class DiagnosticEngine {
 public:
  explicit DiagnosticEngine(const SourceFile* file = nullptr) : file_(file) {}

  void attach(const SourceFile* file) { file_ = file; }

  void report(Severity sev, SourceRange range, std::string message);
  void error(SourceRange range, std::string message) {
    report(Severity::kError, range, std::move(message));
  }
  void warning(SourceRange range, std::string message) {
    report(Severity::kWarning, range, std::move(message));
  }
  void note(SourceRange range, std::string message) {
    report(Severity::kNote, range, std::move(message));
  }

  bool has_errors() const { return error_count_ > 0; }
  std::size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  // Render one diagnostic (or all of them) as human-readable text.
  std::string render(const Diagnostic& d) const;
  std::string render_all() const;

  void clear();

 private:
  const SourceFile* file_;
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace uc::support
