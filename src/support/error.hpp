// Exception types used across the library.  Compile-time problems are
// reported through DiagnosticEngine; these exceptions cover programmer
// misuse of the C++ API and runtime failures of executing UC programs
// (e.g. the single-value rule for parallel assignment).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace uc::support {

// Misuse of the library API (bad geometry, field shape mismatch, ...).
class ApiError : public std::logic_error {
 public:
  explicit ApiError(const std::string& what) : std::logic_error(what) {}
};

// A UC program failed at runtime (conflicting parallel writes, bad
// subscripts, division by zero, ...).
class UcRuntimeError : public std::runtime_error {
 public:
  explicit UcRuntimeError(const std::string& what)
      : std::runtime_error(what) {}
};

// A simulated hardware fault (docs/ROBUSTNESS.md) that exhausted its
// instruction-level retry budget.  Recoverable: the VM's checkpoint layer
// catches it and replays from the last snapshot; without checkpointing it
// escalates into a fatal UcRuntimeError.
class TransientFault : public UcRuntimeError {
 public:
  TransientFault(std::string kind, std::uint64_t failed_attempts,
                 const std::string& what)
      : UcRuntimeError(what),
        kind_(std::move(kind)),
        failed_attempts_(failed_attempts) {}

  const std::string& kind() const { return kind_; }
  std::uint64_t failed_attempts() const { return failed_attempts_; }

 private:
  std::string kind_;
  std::uint64_t failed_attempts_ = 0;
};

// A TransientFault that exhausted the VM's in-memory recovery chain
// (replay budget spent, or checkpointing off).  Distinguished from plain
// UcRuntimeError so a driver holding durable on-disk snapshots
// (docs/ROBUSTNESS.md "Durable checkpoints & resume") can restore from
// disk and retry instead of aborting.
class EscalatedFault : public UcRuntimeError {
 public:
  explicit EscalatedFault(const std::string& what) : UcRuntimeError(what) {}
};

// A UC program failed to compile; carries the rendered diagnostics.
class UcCompileError : public std::runtime_error {
 public:
  explicit UcCompileError(const std::string& rendered)
      : std::runtime_error(rendered) {}
};

}  // namespace uc::support
