// The paper §4 communication optimisation as a source-to-source pass: a
// 1-D permute mapping of the shape
//
//   map (I) { permute (I) b[i + c] :- a[i]; }
//
// physically stores b shifted by c relative to a, so the compiler rewrites
// every subscript of b, e -> e - c, and drops the mapping.  After the
// rewrite the default (aligned) mapping already provides the locality the
// permute asked for.
//
// Validity caveat (as in the paper's own example): the rewrite is only
// meaningful when the program never touches elements that shift outside
// the array; the pass does not prove that, it is the programmer's mapping
// contract.
#pragma once

#include <cstddef>

#include "uclang/ast.hpp"

namespace uc::xform {

struct MapRewrite {
  std::size_t rewritten_mappings = 0;  // permutes applied and removed
  std::size_t rewritten_subscripts = 0;
};

// The program must have been through sema (symbols identify the arrays);
// re-run sema after.  Only affine 1-D permutes (`elem + const` / `elem -
// const` / bare `elem` on the target, bare `elem` on the source) are
// rewritten; other mappings are left for the runtime mapping engine.
MapRewrite rewrite_affine_permutes(lang::Program& program);

}  // namespace uc::xform
