// Affine (linear + constant) views of UC subscript expressions, shared by
// the map-rewrite transform and the static-analysis passes.
//
// A subscript like `i + 1`, `N - 1 - i` or `2*i + j` is decomposed into a
// LinearForm: a sum of (symbol, coefficient) terms plus an integer
// constant.  Symbols with known compile-time constant values (const
// globals) fold into the constant.  Anything the decomposition cannot
// express exactly — array reads, calls, ternaries, non-constant products —
// yields an inexact form, which consumers must treat conservatively.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "uclang/ast.hpp"

namespace uc::xform {

struct LinearTerm {
  const lang::Symbol* sym = nullptr;
  std::int64_t coeff = 0;
};

struct LinearForm {
  bool exact = false;
  std::int64_t constant = 0;
  std::vector<LinearTerm> terms;  // unique symbols, nonzero coefficients

  // The coefficient of `sym` (0 when absent).
  std::int64_t coeff_of(const lang::Symbol* sym) const;
  // True when the form is exact and mentions no symbol at all.
  bool is_constant() const { return exact && terms.empty(); }
  // True when the form is exact and is `1*sym + c` for the given symbol.
  bool is_unit_in(const lang::Symbol* sym) const;
};

// Decomposes an expression into a LinearForm.  Requires a sema'd tree
// (Ident nodes carry their Symbol annotations).
LinearForm linearize(const lang::Expr& e);

// Arithmetic on forms (inexact operands yield inexact results).
LinearForm linear_add(const LinearForm& a, const LinearForm& b);
LinearForm linear_sub(const LinearForm& a, const LinearForm& b);
LinearForm linear_scale(const LinearForm& a, std::int64_t k);

// Matches `elem + c` / `elem - c` / `c + elem` / bare `elem` (after
// folding const symbols); returns the constant offset c.  The expression
// must reference `elem` with coefficient exactly 1 and nothing else.
std::optional<std::int64_t> affine_offset(const lang::Expr& e,
                                          const lang::Symbol* elem);

}  // namespace uc::xform
