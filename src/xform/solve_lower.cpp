#include "xform/solve_lower.hpp"

#include <unordered_map>
#include <unordered_set>

#include "uclang/symbols.hpp"

namespace uc::xform {

using namespace lang;

namespace {

ExprPtr make_int(std::int64_t v) {
  auto e = std::make_unique<IntLitExpr>();
  e->value = v;
  return e;
}

ExprPtr make_ident(const std::string& name) {
  auto e = std::make_unique<IdentExpr>();
  e->name = name;
  return e;
}

ExprPtr make_not(ExprPtr operand) {
  auto e = std::make_unique<UnaryExpr>();
  e->op = UnaryOp::kNot;
  e->operand = std::move(operand);
  return e;
}

ExprPtr make_bin(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<BinaryExpr>();
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

bool is_true_literal(const Expr& e) {
  return e.kind == ExprKind::kIntLit &&
         static_cast<const IntLitExpr&>(e).value == 1;
}

// a && b, dropping literal-true operands.
ExprPtr make_and(ExprPtr a, ExprPtr b) {
  if (!a || is_true_literal(*a)) return b ? std::move(b) : make_int(1);
  if (!b || is_true_literal(*b)) return a;
  return make_bin(BinaryOp::kLogAnd, std::move(a), std::move(b));
}

ExprPtr make_subscript(const std::string& array,
                       std::vector<ExprPtr> indices) {
  auto e = std::make_unique<SubscriptExpr>();
  e->base = make_ident(array);
  e->indices = std::move(indices);
  return e;
}

// One assignment statement of the solve body with its block predicate.
struct SolveAssign {
  const Expr* pred = nullptr;
  const AssignExpr* assign = nullptr;
};

bool collect_assigns(const Stmt& stmt, const Expr* pred,
                     std::vector<SolveAssign>& out) {
  switch (stmt.kind) {
    case StmtKind::kExpr: {
      const auto& es = static_cast<const ExprStmt&>(stmt);
      if (es.expr->kind != ExprKind::kAssign) return false;
      out.push_back(
          SolveAssign{pred, static_cast<const AssignExpr*>(es.expr.get())});
      return true;
    }
    case StmtKind::kCompound: {
      for (const auto& s : static_cast<const CompoundStmt&>(stmt).body) {
        if (!collect_assigns(*s, pred, out)) return false;
      }
      return true;
    }
    case StmtKind::kEmpty:
      return true;
    default:
      return false;
  }
}

struct Lowerer {
  SolveLowering result;
  int counter = 0;

  // Names of the done-flag array for each target array symbol, for the
  // solve currently being lowered.
  std::unordered_map<const Symbol*, std::string> done_names;

  // Collects the target array symbols of the assignments; nullptr if any
  // lhs is not a plain array subscript.
  const Symbol* target_of(const AssignExpr& a) {
    if (a.lhs->kind != ExprKind::kSubscript) return nullptr;
    const auto& sub = static_cast<const SubscriptExpr&>(*a.lhs);
    if (sub.base->kind != ExprKind::kIdent) return nullptr;
    return static_cast<const IdentExpr&>(*sub.base).symbol;
  }

  // True when the expression contains a reduction reading a target, or a
  // target read inside another target's subscript — shapes the readiness
  // construction cannot express.
  bool reads_target_in_reduce(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kReduce: {
        const auto& r = static_cast<const ReduceExpr&>(e);
        for (const auto& arm : r.arms) {
          if (arm.pred && reads_any_target(*arm.pred)) return true;
          if (reads_any_target(*arm.value)) return true;
        }
        if (r.others && reads_any_target(*r.others)) return true;
        return false;
      }
      case ExprKind::kSubscript: {
        const auto& s = static_cast<const SubscriptExpr&>(e);
        for (const auto& idx : s.indices) {
          if (reads_target_in_reduce(*idx)) return true;
        }
        return false;
      }
      case ExprKind::kUnary:
        return reads_target_in_reduce(
            *static_cast<const UnaryExpr&>(e).operand);
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        return reads_target_in_reduce(*b.lhs) ||
               reads_target_in_reduce(*b.rhs);
      }
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        return reads_target_in_reduce(*t.cond) ||
               reads_target_in_reduce(*t.then_expr) ||
               reads_target_in_reduce(*t.else_expr);
      }
      case ExprKind::kCall: {
        const auto& c = static_cast<const CallExpr&>(e);
        for (const auto& a : c.args) {
          if (reads_target_in_reduce(*a)) return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  bool reads_any_target(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kSubscript: {
        const auto& s = static_cast<const SubscriptExpr&>(e);
        if (s.base->kind == ExprKind::kIdent) {
          const auto* sym = static_cast<const IdentExpr&>(*s.base).symbol;
          if (done_names.contains(sym)) return true;
        }
        for (const auto& idx : s.indices) {
          if (reads_any_target(*idx)) return true;
        }
        return false;
      }
      case ExprKind::kUnary:
        return reads_any_target(*static_cast<const UnaryExpr&>(e).operand);
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        return reads_any_target(*b.lhs) || reads_any_target(*b.rhs);
      }
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        return reads_any_target(*t.cond) || reads_any_target(*t.then_expr) ||
               reads_any_target(*t.else_expr);
      }
      case ExprKind::kCall: {
        const auto& c = static_cast<const CallExpr&>(e);
        for (const auto& a : c.args) {
          if (reads_any_target(*a)) return true;
        }
        return false;
      }
      case ExprKind::kReduce: {
        const auto& r = static_cast<const ReduceExpr&>(e);
        for (const auto& arm : r.arms) {
          if (arm.pred && reads_any_target(*arm.pred)) return true;
          if (reads_any_target(*arm.value)) return true;
        }
        return r.others != nullptr && reads_any_target(*r.others);
      }
      default:
        return false;
    }
  }

  // Builds the readiness expression of `e`: true iff evaluating `e` reads
  // no not-yet-assigned target element, mirroring C's short-circuiting so
  // guarded out-of-range reads stay guarded.
  ExprPtr ready(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kSubscript: {
        const auto& s = static_cast<const SubscriptExpr&>(e);
        ExprPtr acc = make_int(1);
        for (const auto& idx : s.indices) acc = make_and(std::move(acc), ready(*idx));
        if (s.base->kind == ExprKind::kIdent) {
          const auto* sym = static_cast<const IdentExpr&>(*s.base).symbol;
          auto it = done_names.find(sym);
          if (it != done_names.end()) {
            std::vector<ExprPtr> subs;
            for (const auto& idx : s.indices) subs.push_back(clone_expr(*idx));
            acc = make_and(std::move(acc),
                           make_subscript(it->second, std::move(subs)));
          }
        }
        return acc;
      }
      case ExprKind::kUnary:
        return ready(*static_cast<const UnaryExpr&>(e).operand);
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        if (b.op == BinaryOp::kLogAnd) {
          // ready(l) && (!l || ready(r))
          auto rhs_ready = make_bin(BinaryOp::kLogOr,
                                    make_not(clone_expr(*b.lhs)),
                                    ready(*b.rhs));
          return make_and(ready(*b.lhs), std::move(rhs_ready));
        }
        if (b.op == BinaryOp::kLogOr) {
          // ready(l) && (l || ready(r))
          auto rhs_ready = make_bin(BinaryOp::kLogOr, clone_expr(*b.lhs),
                                    ready(*b.rhs));
          return make_and(ready(*b.lhs), std::move(rhs_ready));
        }
        return make_and(ready(*b.lhs), ready(*b.rhs));
      }
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        auto branches = std::make_unique<TernaryExpr>();
        branches->cond = clone_expr(*t.cond);
        branches->then_expr = ready(*t.then_expr);
        branches->else_expr = ready(*t.else_expr);
        return make_and(ready(*t.cond), std::move(branches));
      }
      case ExprKind::kCall: {
        const auto& c = static_cast<const CallExpr&>(e);
        ExprPtr acc = make_int(1);
        for (const auto& a : c.args) acc = make_and(std::move(acc), ready(*a));
        return acc;
      }
      default:
        return make_int(1);
    }
  }

  // Attempts to lower one solve construct; returns the replacement or null.
  StmtPtr lower(const UcConstructStmt& solve) {
    std::vector<SolveAssign> assigns;
    for (const auto& block : solve.blocks) {
      if (!collect_assigns(*block.body, block.pred.get(), assigns)) {
        result.skip_reasons.push_back("body is not a set of assignments");
        return nullptr;
      }
    }
    if (solve.others != nullptr) {
      result.skip_reasons.push_back("others clause in solve");
      return nullptr;
    }
    if (assigns.empty()) return std::make_unique<EmptyStmt>();

    done_names.clear();
    const int id = counter++;
    // Discover targets and their dims.
    struct Target {
      const Symbol* sym;
      std::string done_name;
    };
    std::vector<Target> targets;
    for (const auto& a : assigns) {
      const Symbol* sym = target_of(*a.assign);
      if (sym == nullptr || !sym->type.is_array()) {
        result.skip_reasons.push_back("assignment target is not an array");
        return nullptr;
      }
      if (!done_names.contains(sym)) {
        std::string name = "__uc_done_" + sym->name + "_" +
                           std::to_string(id);
        done_names[sym] = name;
        targets.push_back(Target{sym, name});
      }
    }
    for (const auto& a : assigns) {
      if (reads_target_in_reduce(*a.assign->rhs) ||
          (a.pred != nullptr && reads_target_in_reduce(*a.pred))) {
        result.skip_reasons.push_back(
            "reduction reads a solve target (cannot build readiness)");
        return nullptr;
      }
    }

    auto block = std::make_unique<CompoundStmt>();

    // index sets covering every target array's full dimensions, and the
    // done-flag declarations.
    //   index_set __uc_dim<k>_<id>:__uc_e<k>_<id> = {0..dim-1};
    std::size_t max_rank = 0;
    std::vector<std::int64_t> dim_sizes;  // per axis k: max extent
    for (const auto& t : targets) {
      max_rank = std::max(max_rank, t.sym->type.dims.size());
      for (std::size_t k = 0; k < t.sym->type.dims.size(); ++k) {
        if (k >= dim_sizes.size()) dim_sizes.push_back(0);
        dim_sizes[k] = std::max(dim_sizes[k], t.sym->type.dims[k]);
      }
    }
    auto set_name = [&](std::size_t k) {
      return "__uc_dim" + std::to_string(k) + "_" + std::to_string(id);
    };
    auto elem_name = [&](std::size_t k) {
      return "__uc_e" + std::to_string(k) + "_" + std::to_string(id);
    };
    {
      auto decl = std::make_unique<IndexSetDeclStmt>();
      for (std::size_t k = 0; k < max_rank; ++k) {
        IndexSetDef def;
        def.set_name = set_name(k);
        def.elem_name = elem_name(k);
        def.range_lo = make_int(0);
        def.range_hi = make_int(dim_sizes[k] - 1);
        decl->defs.push_back(std::move(def));
      }
      block->body.push_back(std::move(decl));
    }
    for (const auto& t : targets) {
      auto decl = std::make_unique<VarDeclStmt>();
      decl->scalar = ScalarKind::kInt;
      VarDeclarator d;
      d.name = t.done_name;
      for (auto dim : t.sym->type.dims) d.dim_exprs.push_back(make_int(dim));
      decl->declarators.push_back(std::move(d));
      block->body.push_back(std::move(decl));

      // par (__dims...) __done[e0][e1] = 1;  (pre-solve values readable)
      auto init = std::make_unique<UcConstructStmt>();
      init->op = UcOp::kPar;
      for (std::size_t k = 0; k < t.sym->type.dims.size(); ++k) {
        init->index_sets.push_back(set_name(k));
      }
      std::vector<ExprPtr> subs;
      for (std::size_t k = 0; k < t.sym->type.dims.size(); ++k) {
        subs.push_back(make_ident(elem_name(k)));
      }
      auto assign = std::make_unique<AssignExpr>();
      assign->lhs = make_subscript(t.done_name, std::move(subs));
      assign->rhs = make_int(1);
      auto es = std::make_unique<ExprStmt>();
      es->expr = std::move(assign);
      ScBlock b;
      b.body = std::move(es);
      init->blocks.push_back(std::move(b));
      // Guard partial coverage: the shared dim sets use the max extent, so
      // restrict to this array's own extents when they differ.
      ExprPtr guard;
      for (std::size_t k = 0; k < t.sym->type.dims.size(); ++k) {
        if (dim_sizes[k] != t.sym->type.dims[k]) {
          guard = make_and(std::move(guard),
                           make_bin(BinaryOp::kLt, make_ident(elem_name(k)),
                                    make_int(t.sym->type.dims[k])));
        }
      }
      if (guard) init->blocks[0].pred = std::move(guard);
      block->body.push_back(std::move(init));
    }

    // par (SETS) [st pred] __done[lhs subs] = 0;  — one per assignment.
    for (const auto& a : assigns) {
      const Symbol* sym = target_of(*a.assign);
      const auto& lhs = static_cast<const SubscriptExpr&>(*a.assign->lhs);
      auto clear = std::make_unique<UcConstructStmt>();
      clear->op = UcOp::kPar;
      clear->index_sets = solve.index_sets;
      std::vector<ExprPtr> subs;
      for (const auto& idx : lhs.indices) subs.push_back(clone_expr(*idx));
      auto assign = std::make_unique<AssignExpr>();
      assign->lhs = make_subscript(done_names[sym], std::move(subs));
      assign->rhs = make_int(0);
      auto es = std::make_unique<ExprStmt>();
      es->expr = std::move(assign);
      ScBlock b;
      if (a.pred != nullptr) b.pred = clone_expr(*a.pred);
      b.body = std::move(es);
      clear->blocks.push_back(std::move(b));
      block->body.push_back(std::move(clear));
    }

    // *par (SETS)
    //   st (pred && !__done[lhs] && ready(rhs)) { lhs = rhs; done = 1; }
    auto star = std::make_unique<UcConstructStmt>();
    star->op = UcOp::kPar;
    star->starred = true;
    star->index_sets = solve.index_sets;
    for (const auto& a : assigns) {
      const Symbol* sym = target_of(*a.assign);
      const auto& lhs = static_cast<const SubscriptExpr&>(*a.assign->lhs);
      std::vector<ExprPtr> subs;
      for (const auto& idx : lhs.indices) subs.push_back(clone_expr(*idx));
      ExprPtr not_done =
          make_not(make_subscript(done_names[sym], std::move(subs)));
      ExprPtr pred = a.pred != nullptr ? clone_expr(*a.pred) : nullptr;
      pred = make_and(std::move(pred), std::move(not_done));
      pred = make_and(std::move(pred), ready(*a.assign->rhs));

      auto body = std::make_unique<CompoundStmt>();
      auto do_assign = std::make_unique<ExprStmt>();
      do_assign->expr = clone_expr(*a.assign);
      body->body.push_back(std::move(do_assign));
      std::vector<ExprPtr> subs2;
      for (const auto& idx : lhs.indices) subs2.push_back(clone_expr(*idx));
      auto mark = std::make_unique<AssignExpr>();
      mark->lhs = make_subscript(done_names[sym], std::move(subs2));
      mark->rhs = make_int(1);
      auto mark_stmt = std::make_unique<ExprStmt>();
      mark_stmt->expr = std::move(mark);
      body->body.push_back(std::move(mark_stmt));

      ScBlock b;
      b.pred = std::move(pred);
      b.body = std::move(body);
      star->blocks.push_back(std::move(b));
    }
    block->body.push_back(std::move(star));
    return block;
  }

  void walk(StmtPtr& stmt) {
    switch (stmt->kind) {
      case StmtKind::kUcConstruct: {
        auto& u = static_cast<UcConstructStmt&>(*stmt);
        if (u.op == UcOp::kSolve && !u.starred) {
          auto replacement = lower(u);
          if (replacement) {
            stmt = std::move(replacement);
            ++result.lowered;
          } else {
            ++result.skipped;
          }
          return;
        }
        for (auto& block : u.blocks) walk(block.body);
        if (u.others) walk(u.others);
        return;
      }
      case StmtKind::kCompound: {
        for (auto& child : static_cast<CompoundStmt&>(*stmt).body) {
          walk(child);
        }
        return;
      }
      case StmtKind::kIf: {
        auto& i = static_cast<IfStmt&>(*stmt);
        walk(i.then_stmt);
        if (i.else_stmt) walk(i.else_stmt);
        return;
      }
      case StmtKind::kWhile:
        walk(static_cast<WhileStmt&>(*stmt).body);
        return;
      case StmtKind::kFor:
        walk(static_cast<ForStmt&>(*stmt).body);
        return;
      default:
        return;
    }
  }
};

}  // namespace

SolveLowering lower_solves(Program& program) {
  Lowerer lowerer;
  for (auto& item : program.items) {
    if (item.func && item.func->body) {
      for (auto& stmt : item.func->body->body) lowerer.walk(stmt);
    }
  }
  return std::move(lowerer.result);
}

}  // namespace uc::xform
