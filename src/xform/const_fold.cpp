#include "xform/const_fold.hpp"

#include <optional>

#include "uclang/symbols.hpp"

namespace uc::xform {

using namespace lang;

namespace {

struct Folder {
  std::size_t replaced = 0;

  // A known scalar constant, either int or float.
  struct Const {
    bool is_float = false;
    std::int64_t i = 0;
    double f = 0.0;
    double as_f() const { return is_float ? f : static_cast<double>(i); }
  };

  std::optional<Const> constant_of(const Expr& e) {
    if (e.kind == ExprKind::kIntLit) {
      return Const{false, static_cast<const IntLitExpr&>(e).value, 0.0};
    }
    if (e.kind == ExprKind::kFloatLit) {
      return Const{true, 0, static_cast<const FloatLitExpr&>(e).value};
    }
    return std::nullopt;
  }

  void replace_with_int(ExprPtr& e, std::int64_t v) {
    auto lit = std::make_unique<IntLitExpr>();
    lit->value = v;
    lit->range = e->range;
    e = std::move(lit);
    ++replaced;
  }

  void replace_with_float(ExprPtr& e, double v) {
    auto lit = std::make_unique<FloatLitExpr>();
    lit->value = v;
    lit->range = e->range;
    e = std::move(lit);
    ++replaced;
  }

  void fold(ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kIdent: {
        auto& id = static_cast<IdentExpr&>(*e);
        if (id.symbol != nullptr && id.symbol->has_const_value) {
          replace_with_int(e, id.symbol->const_value);
        }
        return;
      }
      case ExprKind::kSubscript: {
        auto& s = static_cast<SubscriptExpr&>(*e);
        for (auto& idx : s.indices) fold(idx);
        return;
      }
      case ExprKind::kCall: {
        auto& c = static_cast<CallExpr&>(*e);
        for (auto& a : c.args) fold(a);
        return;
      }
      case ExprKind::kUnary: {
        auto& u = static_cast<UnaryExpr&>(*e);
        fold(u.operand);
        auto v = constant_of(*u.operand);
        if (!v) return;
        switch (u.op) {
          case UnaryOp::kNeg:
            if (v->is_float) {
              replace_with_float(e, -v->f);
            } else {
              replace_with_int(e, -v->i);
            }
            return;
          case UnaryOp::kNot:
            replace_with_int(e, v->as_f() == 0.0 ? 1 : 0);
            return;
          case UnaryOp::kBitNot:
            if (!v->is_float) replace_with_int(e, ~v->i);
            return;
          case UnaryOp::kPlus:
            if (v->is_float) {
              replace_with_float(e, v->f);
            } else {
              replace_with_int(e, v->i);
            }
            return;
        }
        return;
      }
      case ExprKind::kBinary: {
        auto& b = static_cast<BinaryExpr&>(*e);
        fold(b.lhs);
        fold(b.rhs);
        auto l = constant_of(*b.lhs);
        auto r = constant_of(*b.rhs);
        if (!l || !r) return;
        const bool flt = l->is_float || r->is_float;
        switch (b.op) {
          case BinaryOp::kAdd:
            flt ? replace_with_float(e, l->as_f() + r->as_f())
                : replace_with_int(e, l->i + r->i);
            return;
          case BinaryOp::kSub:
            flt ? replace_with_float(e, l->as_f() - r->as_f())
                : replace_with_int(e, l->i - r->i);
            return;
          case BinaryOp::kMul:
            flt ? replace_with_float(e, l->as_f() * r->as_f())
                : replace_with_int(e, l->i * r->i);
            return;
          case BinaryOp::kDiv:
            if (flt) {
              if (r->as_f() != 0.0) replace_with_float(e, l->as_f() / r->as_f());
            } else if (r->i != 0) {
              replace_with_int(e, l->i / r->i);
            }
            return;
          case BinaryOp::kMod:
            if (!flt && r->i != 0) replace_with_int(e, l->i % r->i);
            return;
          case BinaryOp::kEq:
            replace_with_int(e, l->as_f() == r->as_f() ? 1 : 0);
            return;
          case BinaryOp::kNe:
            replace_with_int(e, l->as_f() != r->as_f() ? 1 : 0);
            return;
          case BinaryOp::kLt:
            replace_with_int(e, l->as_f() < r->as_f() ? 1 : 0);
            return;
          case BinaryOp::kGt:
            replace_with_int(e, l->as_f() > r->as_f() ? 1 : 0);
            return;
          case BinaryOp::kLe:
            replace_with_int(e, l->as_f() <= r->as_f() ? 1 : 0);
            return;
          case BinaryOp::kGe:
            replace_with_int(e, l->as_f() >= r->as_f() ? 1 : 0);
            return;
          case BinaryOp::kLogAnd:
            replace_with_int(e, l->as_f() != 0.0 && r->as_f() != 0.0 ? 1 : 0);
            return;
          case BinaryOp::kLogOr:
            replace_with_int(e, l->as_f() != 0.0 || r->as_f() != 0.0 ? 1 : 0);
            return;
          case BinaryOp::kBitAnd:
            if (!flt) replace_with_int(e, l->i & r->i);
            return;
          case BinaryOp::kBitOr:
            if (!flt) replace_with_int(e, l->i | r->i);
            return;
          case BinaryOp::kBitXor:
            if (!flt) replace_with_int(e, l->i ^ r->i);
            return;
          case BinaryOp::kShl:
            if (!flt) replace_with_int(e, l->i << (r->i & 63));
            return;
          case BinaryOp::kShr:
            if (!flt) replace_with_int(e, l->i >> (r->i & 63));
            return;
        }
        return;
      }
      case ExprKind::kAssign: {
        auto& a = static_cast<AssignExpr&>(*e);
        // Fold subscripts on the left, the full right side.
        if (a.lhs->kind == ExprKind::kSubscript) fold(a.lhs);
        fold(a.rhs);
        return;
      }
      case ExprKind::kTernary: {
        auto& t = static_cast<TernaryExpr&>(*e);
        fold(t.cond);
        fold(t.then_expr);
        fold(t.else_expr);
        if (auto c = constant_of(*t.cond)) {
          // Detach the surviving branch before the ternary node (and with
          // it the other branch) is destroyed by the assignment to e.
          ExprPtr taken = c->as_f() != 0.0 ? std::move(t.then_expr)
                                           : std::move(t.else_expr);
          e = std::move(taken);
          ++replaced;
        }
        return;
      }
      case ExprKind::kReduce: {
        auto& r = static_cast<ReduceExpr&>(*e);
        for (auto& arm : r.arms) {
          if (arm.pred) fold(arm.pred);
          fold(arm.value);
        }
        if (r.others) fold(r.others);
        return;
      }
      case ExprKind::kIncDec:
        return;  // operand is an lvalue; nothing to fold
      default:
        return;
    }
  }

  void fold_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr:
        fold(static_cast<ExprStmt&>(s).expr);
        return;
      case StmtKind::kCompound:
        for (auto& child : static_cast<CompoundStmt&>(s).body) {
          fold_stmt(*child);
        }
        return;
      case StmtKind::kIf: {
        auto& i = static_cast<IfStmt&>(s);
        fold(i.cond);
        fold_stmt(*i.then_stmt);
        if (i.else_stmt) fold_stmt(*i.else_stmt);
        return;
      }
      case StmtKind::kWhile: {
        auto& w = static_cast<WhileStmt&>(s);
        fold(w.cond);
        fold_stmt(*w.body);
        return;
      }
      case StmtKind::kFor: {
        auto& f = static_cast<ForStmt&>(s);
        if (f.init) fold_stmt(*f.init);
        if (f.cond) fold(f.cond);
        if (f.step) fold(f.step);
        fold_stmt(*f.body);
        return;
      }
      case StmtKind::kReturn: {
        auto& r = static_cast<ReturnStmt&>(s);
        if (r.value) fold(r.value);
        return;
      }
      case StmtKind::kVarDecl: {
        auto& d = static_cast<VarDeclStmt&>(s);
        for (auto& dec : d.declarators) {
          for (auto& dim : dec.dim_exprs) fold(dim);
          if (dec.init) fold(dec.init);
        }
        return;
      }
      case StmtKind::kUcConstruct: {
        auto& u = static_cast<UcConstructStmt&>(s);
        for (auto& block : u.blocks) {
          if (block.pred) fold(block.pred);
          fold_stmt(*block.body);
        }
        if (u.others) fold_stmt(*u.others);
        return;
      }
      case StmtKind::kIndexSetDecl: {
        auto& d = static_cast<IndexSetDeclStmt&>(s);
        for (auto& def : d.defs) {
          if (def.range_lo) fold(def.range_lo);
          if (def.range_hi) fold(def.range_hi);
          for (auto& v : def.listed) fold(v);
        }
        return;
      }
      case StmtKind::kMapSection: {
        auto& m = static_cast<MapSectionStmt&>(s);
        for (auto& mapping : m.mappings) {
          for (auto& sub : mapping.target_subscripts) fold(sub);
          for (auto& sub : mapping.source_subscripts) fold(sub);
        }
        return;
      }
      default:
        return;
    }
  }
};

}  // namespace

std::size_t fold_expr(ExprPtr& e) {
  Folder folder;
  folder.fold(e);
  return folder.replaced;
}

std::size_t fold_constants(Program& program) {
  Folder folder;
  for (auto& item : program.items) {
    if (item.decl) folder.fold_stmt(*item.decl);
    if (item.func && item.func->body) folder.fold_stmt(*item.func->body);
  }
  return folder.replaced;
}

}  // namespace uc::xform
