// Lowers `solve` constructs to `*par` — the paper's general implementation
// method (§3.6): every target element is marked "not yet assigned" via a
// compiler-introduced done-flag array; the body iterates as a *par whose
// predicates fire an assignment only when it has not fired and every value
// it reads is ready.  The lowering is purely source-to-source: the result
// is ordinary UC that any UC implementation can run.
//
// Limitations (diagnosed, the construct is then left for the VM's built-in
// solve): reductions reading a target array, target arrays subscripted by
// other target arrays, and non-subscript lvalues.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "uclang/ast.hpp"

namespace uc::xform {

struct SolveLowering {
  std::size_t lowered = 0;    // solve constructs rewritten
  std::size_t skipped = 0;    // left intact (unsupported shape)
  std::vector<std::string> skip_reasons;
};

// Rewrites every non-starred `solve` in the program.  The program must
// have been through sema (array ranks/dims are needed); re-run sema after.
SolveLowering lower_solves(lang::Program& program);

}  // namespace uc::xform
