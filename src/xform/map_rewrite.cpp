#include "xform/map_rewrite.hpp"

#include <optional>
#include <unordered_map>

#include "uclang/symbols.hpp"
#include "xform/affine.hpp"

namespace uc::xform {

using namespace lang;

namespace {

struct Rewriter {
  MapRewrite result;
  // target array symbol -> shift to subtract from its subscripts
  std::unordered_map<const Symbol*, std::int64_t> shifts;

  void rewrite_expr(ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kSubscript: {
        auto& s = static_cast<SubscriptExpr&>(*e);
        for (auto& idx : s.indices) rewrite_expr(idx);
        if (s.base->kind == ExprKind::kIdent && s.indices.size() == 1) {
          const auto* sym = static_cast<const IdentExpr&>(*s.base).symbol;
          auto it = shifts.find(sym);
          if (it != shifts.end() && it->second != 0) {
            auto shifted = std::make_unique<BinaryExpr>();
            shifted->op = BinaryOp::kSub;
            shifted->lhs = std::move(s.indices[0]);
            auto c = std::make_unique<IntLitExpr>();
            c->value = it->second;
            shifted->rhs = std::move(c);
            s.indices[0] = std::move(shifted);
            ++result.rewritten_subscripts;
          }
        }
        return;
      }
      case ExprKind::kCall:
        for (auto& a : static_cast<CallExpr&>(*e).args) rewrite_expr(a);
        return;
      case ExprKind::kUnary:
        rewrite_expr(static_cast<UnaryExpr&>(*e).operand);
        return;
      case ExprKind::kBinary: {
        auto& b = static_cast<BinaryExpr&>(*e);
        rewrite_expr(b.lhs);
        rewrite_expr(b.rhs);
        return;
      }
      case ExprKind::kAssign: {
        auto& a = static_cast<AssignExpr&>(*e);
        rewrite_expr(a.lhs);
        rewrite_expr(a.rhs);
        return;
      }
      case ExprKind::kTernary: {
        auto& t = static_cast<TernaryExpr&>(*e);
        rewrite_expr(t.cond);
        rewrite_expr(t.then_expr);
        rewrite_expr(t.else_expr);
        return;
      }
      case ExprKind::kReduce: {
        auto& r = static_cast<ReduceExpr&>(*e);
        for (auto& arm : r.arms) {
          if (arm.pred) rewrite_expr(arm.pred);
          rewrite_expr(arm.value);
        }
        if (r.others) rewrite_expr(r.others);
        return;
      }
      case ExprKind::kIncDec:
        rewrite_expr(static_cast<IncDecExpr&>(*e).operand);
        return;
      default:
        return;
    }
  }

  void rewrite_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr:
        rewrite_expr(static_cast<ExprStmt&>(s).expr);
        return;
      case StmtKind::kCompound:
        for (auto& child : static_cast<CompoundStmt&>(s).body) {
          rewrite_stmt(*child);
        }
        return;
      case StmtKind::kIf: {
        auto& i = static_cast<IfStmt&>(s);
        rewrite_expr(i.cond);
        rewrite_stmt(*i.then_stmt);
        if (i.else_stmt) rewrite_stmt(*i.else_stmt);
        return;
      }
      case StmtKind::kWhile: {
        auto& w = static_cast<WhileStmt&>(s);
        rewrite_expr(w.cond);
        rewrite_stmt(*w.body);
        return;
      }
      case StmtKind::kFor: {
        auto& f = static_cast<ForStmt&>(s);
        if (f.init) rewrite_stmt(*f.init);
        if (f.cond) rewrite_expr(f.cond);
        if (f.step) rewrite_expr(f.step);
        rewrite_stmt(*f.body);
        return;
      }
      case StmtKind::kReturn: {
        auto& r = static_cast<ReturnStmt&>(s);
        if (r.value) rewrite_expr(r.value);
        return;
      }
      case StmtKind::kVarDecl: {
        auto& d = static_cast<VarDeclStmt&>(s);
        for (auto& dec : d.declarators) {
          if (dec.init) rewrite_expr(dec.init);
        }
        return;
      }
      case StmtKind::kUcConstruct: {
        auto& u = static_cast<UcConstructStmt&>(s);
        for (auto& block : u.blocks) {
          if (block.pred) rewrite_expr(block.pred);
          rewrite_stmt(*block.body);
        }
        if (u.others) rewrite_stmt(*u.others);
        return;
      }
      default:
        return;
    }
  }
};

}  // namespace

MapRewrite rewrite_affine_permutes(Program& program) {
  Rewriter rewriter;

  // Pass 1: find rewriteable permutes across all map sections and remove
  // them from their sections.
  auto scan_section = [&](MapSectionStmt& section) {
    auto& ms = section.mappings;
    for (auto it = ms.begin(); it != ms.end();) {
      bool take = false;
      if (it->kind == MapKind::kPermute && it->index_set_syms.size() == 1 &&
          it->target_symbol != nullptr && it->source_symbol != nullptr &&
          it->target_symbol != it->source_symbol &&
          it->target_subscripts.size() == 1 &&
          it->source_subscripts.size() == 1) {
        const Symbol* elem = it->index_set_syms[0]->index_set->elem;
        auto t_off = affine_offset(*it->target_subscripts[0], elem);
        auto s_off = affine_offset(*it->source_subscripts[0], elem);
        if (t_off && s_off) {
          rewriter.shifts[it->target_symbol] += *t_off - *s_off;
          take = true;
        }
      }
      if (take) {
        it = ms.erase(it);
        ++rewriter.result.rewritten_mappings;
      } else {
        ++it;
      }
    }
  };

  auto scan_stmt = [&](auto&& self, Stmt& s) -> void {
    if (s.kind == StmtKind::kMapSection) {
      scan_section(static_cast<MapSectionStmt&>(s));
      return;
    }
    if (s.kind == StmtKind::kCompound) {
      for (auto& child : static_cast<CompoundStmt&>(s).body) {
        self(self, *child);
      }
    }
  };

  for (auto& item : program.items) {
    if (item.decl) scan_stmt(scan_stmt, *item.decl);
    if (item.func && item.func->body) scan_stmt(scan_stmt, *item.func->body);
  }
  if (rewriter.shifts.empty()) return rewriter.result;

  // Pass 2: rewrite every subscript of the shifted arrays.
  for (auto& item : program.items) {
    if (item.decl && item.decl->kind != StmtKind::kMapSection) {
      rewriter.rewrite_stmt(*item.decl);
    }
    if (item.func && item.func->body) rewriter.rewrite_stmt(*item.func->body);
  }
  return rewriter.result;
}

}  // namespace uc::xform
