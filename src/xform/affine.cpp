#include "xform/affine.hpp"

#include "uclang/symbols.hpp"

namespace uc::xform {

using namespace lang;

namespace {

LinearForm inexact() { return LinearForm{}; }

LinearForm constant_form(std::int64_t c) {
  LinearForm f;
  f.exact = true;
  f.constant = c;
  return f;
}

void add_term(LinearForm& f, const Symbol* sym, std::int64_t coeff) {
  if (coeff == 0) return;
  for (auto& t : f.terms) {
    if (t.sym == sym) {
      t.coeff += coeff;
      if (t.coeff == 0) {
        t = f.terms.back();
        f.terms.pop_back();
      }
      return;
    }
  }
  f.terms.push_back(LinearTerm{sym, coeff});
}

LinearForm combine(const LinearForm& a, const LinearForm& b,
                   std::int64_t b_sign) {
  if (!a.exact || !b.exact) return inexact();
  LinearForm f = a;
  f.constant += b_sign * b.constant;
  for (const auto& t : b.terms) add_term(f, t.sym, b_sign * t.coeff);
  return f;
}

LinearForm scale(const LinearForm& a, std::int64_t k) {
  if (!a.exact) return inexact();
  LinearForm f;
  f.exact = true;
  f.constant = a.constant * k;
  for (const auto& t : a.terms) add_term(f, t.sym, t.coeff * k);
  return f;
}

}  // namespace

LinearForm linear_add(const LinearForm& a, const LinearForm& b) {
  return combine(a, b, 1);
}

LinearForm linear_sub(const LinearForm& a, const LinearForm& b) {
  return combine(a, b, -1);
}

LinearForm linear_scale(const LinearForm& a, std::int64_t k) {
  return scale(a, k);
}

std::int64_t LinearForm::coeff_of(const Symbol* sym) const {
  for (const auto& t : terms) {
    if (t.sym == sym) return t.coeff;
  }
  return 0;
}

bool LinearForm::is_unit_in(const Symbol* sym) const {
  return exact && terms.size() == 1 && terms[0].sym == sym &&
         terms[0].coeff == 1;
}

LinearForm linearize(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return constant_form(static_cast<const IntLitExpr&>(e).value);
    case ExprKind::kIdent: {
      const auto& id = static_cast<const IdentExpr&>(e);
      if (id.symbol == nullptr) return inexact();
      if (id.symbol->has_const_value) {
        return constant_form(id.symbol->const_value);
      }
      LinearForm f;
      f.exact = true;
      f.terms.push_back(LinearTerm{id.symbol, 1});
      return f;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      LinearForm v = linearize(*u.operand);
      switch (u.op) {
        case UnaryOp::kNeg:
          return scale(v, -1);
        case UnaryOp::kPlus:
          return v;
        default:
          return inexact();
      }
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      LinearForm l = linearize(*b.lhs);
      LinearForm r = linearize(*b.rhs);
      switch (b.op) {
        case BinaryOp::kAdd:
          return combine(l, r, 1);
        case BinaryOp::kSub:
          return combine(l, r, -1);
        case BinaryOp::kMul:
          if (l.is_constant()) return scale(r, l.constant);
          if (r.is_constant()) return scale(l, r.constant);
          return inexact();
        case BinaryOp::kDiv:
          if (l.is_constant() && r.is_constant() && r.constant != 0) {
            return constant_form(l.constant / r.constant);
          }
          return inexact();
        case BinaryOp::kMod:
          if (l.is_constant() && r.is_constant() && r.constant != 0) {
            return constant_form(l.constant % r.constant);
          }
          return inexact();
        default:
          return inexact();
      }
    }
    default:
      return inexact();
  }
}

std::optional<std::int64_t> affine_offset(const Expr& e, const Symbol* elem) {
  LinearForm f = linearize(e);
  if (f.is_unit_in(elem)) return f.constant;
  return std::nullopt;
}

}  // namespace uc::xform
