// Constant folding — one of the paper's §4 "standard peep-hole" code
// optimisations.  Folds integer and float constant subexpressions in
// place, including identifiers sema resolved to compile-time constants
// (const int N = 32, INF, #define-substituted literals).
#pragma once

#include <cstddef>

#include "uclang/ast.hpp"

namespace uc::xform {

// Folds every expression in the program; returns how many nodes were
// replaced by literals.  Run after sema (uses const-value annotations);
// re-run sema afterwards if you intend to execute the tree.
std::size_t fold_constants(lang::Program& program);

// Folds one expression tree (exposed for unit tests).
std::size_t fold_expr(lang::ExprPtr& e);

}  // namespace uc::xform
