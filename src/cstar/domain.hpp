// An embedded C*-flavoured data-parallel DSL over the CM simulator — the
// baseline the paper compares UC against (§5, Appendix).
//
// C* organises computation around `domain` types: a record instantiated
// once per virtual processor, with parallel member functions executed by
// every (active) instance in lockstep.  We mirror that:
//
//   cstar::Domain path(machine, "PATH", {N, N});
//   auto len = path.add_field("len");
//   path.parallel(3 /*op weight*/, [&](cstar::Elem& e) {
//     auto v = e.get(len, {e.at(0), k}) + e.get(len, {k, e.at(1)});
//     e.min_assign(len, v);                       // the C* <?= operator
//   });
//
// Every `parallel` call is one C* parallel statement: it charges one
// vector instruction over the domain's VP set, classifies each remote
// `get` as local / NEWS / router exactly like the UC VM does, and commits
// writes synchronously (reads see pre-statement state).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cm/context.hpp"
#include "cm/machine.hpp"
#include "cm/ops.hpp"

namespace uc::cstar {

class Domain;

struct FieldHandle {
  std::int32_t index = -1;
};

// Per-instance view handed to parallel member functions.
class Elem {
 public:
  cm::VpIndex vp() const { return vp_; }
  // Coordinate of this instance along axis k.
  std::int64_t at(std::size_t axis) const;

  // Reads a field of this instance (local memory).
  std::int64_t self(FieldHandle f) const;
  // Reads a field of the instance at `coords` (classified & charged).
  std::int64_t get(FieldHandle f, const std::vector<std::int64_t>& coords) const;

  // Writes to this instance's field (committed after the sweep).
  void set(FieldHandle f, std::int64_t v);
  // C* `<?=` / `>?=`: min/max-combine into this instance's field.
  void min_assign(FieldHandle f, std::int64_t v);
  void max_assign(FieldHandle f, std::int64_t v);
  // C* `+=` onto a *remote* instance (send with combine over the router).
  void send_add(FieldHandle f, const std::vector<std::int64_t>& coords,
                std::int64_t v);
  void send_min(FieldHandle f, const std::vector<std::int64_t>& coords,
                std::int64_t v);

  // Cross-domain access (the Fig 10 pattern: XMED instances read PATH and
  // min-combine back into it).  Reads see the other domain's state as of
  // the sweep start for fields the target domain snapshotted; sends commit
  // when this sweep ends.  Always router traffic.
  std::int64_t get_from(Domain& other, FieldHandle f,
                        const std::vector<std::int64_t>& coords) const;
  void send_min_to(Domain& other, FieldHandle f,
                   const std::vector<std::int64_t>& coords, std::int64_t v);
  void send_add_to(Domain& other, FieldHandle f,
                   const std::vector<std::int64_t>& coords, std::int64_t v);

 private:
  friend class Domain;
  Domain* domain_ = nullptr;
  cm::VpIndex vp_ = 0;
  // Per-sweep buffers (owned by Domain::parallel).
  struct Pending {
    Domain* domain;  // target domain (usually the sweeping one)
    std::int32_t field;
    cm::VpIndex vp;
    std::int64_t value;
    enum class Kind : std::uint8_t { kSet, kMin, kMax, kAdd } kind;
  };
  std::vector<Pending>* pending_ = nullptr;
  struct Access {
    std::uint64_t local = 0, news = 0, router = 0, max_hops = 0;
  };
  Access* access_ = nullptr;
};

class Domain {
 public:
  Domain(cm::Machine& machine, std::string name,
         std::vector<std::int64_t> shape);

  FieldHandle add_field(const std::string& name);

  std::int64_t size() const;
  const cm::Geometry& geometry() const;
  cm::Machine& machine() { return machine_; }

  // Executes `fn` for every instance active in the current context, as one
  // C* parallel statement of the given ALU weight.  Reads see the state
  // before the statement; writes/combines commit afterwards.
  void parallel(std::uint64_t op_weight, const std::function<void(Elem&)>& fn);

  // `where (pred) { ... }`: narrows the context for the duration of fn.
  void where(const std::function<bool(Elem&)>& pred,
             const std::function<void()>& body);

  // Front-end access (charged as front-end ops).
  std::int64_t read(FieldHandle f, const std::vector<std::int64_t>& coords);
  void write(FieldHandle f, const std::vector<std::int64_t>& coords,
             std::int64_t v);

  // Reduction of a field over active instances.
  std::int64_t reduce(FieldHandle f, cm::ReduceOp op);

 private:
  friend class Elem;
  cm::Field& field(FieldHandle f);
  const cm::Field& field(FieldHandle f) const;

  cm::Machine& machine_;
  std::string name_;
  cm::GeomId geom_;
  std::vector<cm::FieldId> fields_;
  cm::ContextStack context_;
  // Snapshot of all fields during a sweep (synchronous reads).
  std::vector<std::vector<cm::Bits>> snapshot_;
  bool in_sweep_ = false;
};

}  // namespace uc::cstar
