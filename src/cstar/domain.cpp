#include "cstar/domain.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace uc::cstar {

// ---------------------------------------------------------------------------
// Elem
// ---------------------------------------------------------------------------

std::int64_t Elem::at(std::size_t axis) const {
  return domain_->geometry().unflatten(vp_)[axis];
}

std::int64_t Elem::self(FieldHandle f) const {
  ++access_->local;
  return cm::as_int(domain_->snapshot_[static_cast<std::size_t>(f.index)]
                                      [static_cast<std::size_t>(vp_)]);
}

std::int64_t Elem::get(FieldHandle f,
                       const std::vector<std::int64_t>& coords) const {
  const auto& geom = domain_->geometry();
  if (!geom.contains(coords)) {
    throw support::ApiError("cstar::Elem::get: coordinates out of range");
  }
  const auto owner = geom.flatten(coords);
  if (owner == vp_) {
    ++access_->local;
  } else if (geom.is_news_neighbor(vp_, owner)) {
    ++access_->news;
    access_->max_hops = std::max<std::uint64_t>(access_->max_hops, 1);
  } else {
    // Single-axis strides could use multi-hop NEWS; classify like the VM.
    auto a = geom.unflatten(vp_);
    auto b = geom.unflatten(owner);
    int diff_axes = 0;
    std::int64_t hops = 0;
    for (std::size_t d = 0; d < a.size(); ++d) {
      if (a[d] != b[d]) {
        ++diff_axes;
        hops = std::abs(a[d] - b[d]);
      }
    }
    const auto& cost = domain_->machine_.cost_model();
    if (diff_axes == 1 &&
        static_cast<std::uint64_t>(hops) * cost.news_op <= cost.router_op) {
      ++access_->news;
      access_->max_hops =
          std::max(access_->max_hops, static_cast<std::uint64_t>(hops));
    } else {
      ++access_->router;
    }
  }
  return cm::as_int(domain_->snapshot_[static_cast<std::size_t>(f.index)]
                                      [static_cast<std::size_t>(owner)]);
}

void Elem::set(FieldHandle f, std::int64_t v) {
  pending_->push_back(Pending{domain_, f.index, vp_, v, Pending::Kind::kSet});
}

void Elem::min_assign(FieldHandle f, std::int64_t v) {
  pending_->push_back(Pending{domain_, f.index, vp_, v, Pending::Kind::kMin});
}

void Elem::max_assign(FieldHandle f, std::int64_t v) {
  pending_->push_back(Pending{domain_, f.index, vp_, v, Pending::Kind::kMax});
}

void Elem::send_add(FieldHandle f, const std::vector<std::int64_t>& coords,
                    std::int64_t v) {
  const auto owner = domain_->geometry().flatten(coords);
  if (owner != vp_) ++access_->router;
  pending_->push_back(Pending{domain_, f.index, owner, v,
                              Pending::Kind::kAdd});
}

void Elem::send_min(FieldHandle f, const std::vector<std::int64_t>& coords,
                    std::int64_t v) {
  const auto owner = domain_->geometry().flatten(coords);
  if (owner != vp_) ++access_->router;
  pending_->push_back(Pending{domain_, f.index, owner, v,
                              Pending::Kind::kMin});
}

std::int64_t Elem::get_from(Domain& other, FieldHandle f,
                            const std::vector<std::int64_t>& coords) const {
  const auto owner = other.geometry().flatten(coords);
  ++access_->router;  // cross-domain traffic always routes
  return cm::as_int(other.field(f).get(owner));
}

void Elem::send_min_to(Domain& other, FieldHandle f,
                       const std::vector<std::int64_t>& coords,
                       std::int64_t v) {
  const auto owner = other.geometry().flatten(coords);
  ++access_->router;
  pending_->push_back(Pending{&other, f.index, owner, v,
                              Pending::Kind::kMin});
}

void Elem::send_add_to(Domain& other, FieldHandle f,
                       const std::vector<std::int64_t>& coords,
                       std::int64_t v) {
  const auto owner = other.geometry().flatten(coords);
  ++access_->router;
  pending_->push_back(Pending{&other, f.index, owner, v,
                              Pending::Kind::kAdd});
}

// ---------------------------------------------------------------------------
// Domain
// ---------------------------------------------------------------------------

Domain::Domain(cm::Machine& machine, std::string name,
               std::vector<std::int64_t> shape)
    : machine_(machine),
      name_(std::move(name)),
      geom_(machine.create_geometry(std::move(shape))),
      context_(&machine.geometry(geom_)) {}

FieldHandle Domain::add_field(const std::string& field_name) {
  fields_.push_back(machine_.allocate_field(geom_, name_ + "." + field_name,
                                            cm::ElemType::kInt));
  return FieldHandle{static_cast<std::int32_t>(fields_.size() - 1)};
}

std::int64_t Domain::size() const { return machine_.geometry(geom_).size(); }

const cm::Geometry& Domain::geometry() const {
  return machine_.geometry(geom_);
}

cm::Field& Domain::field(FieldHandle f) {
  if (f.index < 0 || static_cast<std::size_t>(f.index) >= fields_.size()) {
    throw support::ApiError("cstar::Domain: bad field handle");
  }
  return machine_.field(fields_[static_cast<std::size_t>(f.index)]);
}

const cm::Field& Domain::field(FieldHandle f) const {
  return const_cast<Domain*>(this)->field(f);
}

void Domain::parallel(std::uint64_t op_weight,
                      const std::function<void(Elem&)>& fn) {
  if (in_sweep_) {
    throw support::ApiError("cstar::Domain::parallel: nested sweeps are not "
                            "allowed (C* statements are flat)");
  }
  in_sweep_ = true;
  // Snapshot all fields: parallel statements read pre-statement state.
  snapshot_.clear();
  snapshot_.reserve(fields_.size());
  for (auto id : fields_) snapshot_.push_back(machine_.field(id).raw());

  const auto n = size();
  machine_.charge_vector_op(n, op_weight);

  std::vector<std::vector<Elem::Pending>> pending(
      static_cast<std::size_t>(n));
  std::vector<Elem::Access> access(static_cast<std::size_t>(n));
  const auto& mask = context_.current();
  machine_.pool().parallel_for(
      0, n,
      [&](std::int64_t b, std::int64_t e) {
        for (cm::VpIndex vp = b; vp < e; ++vp) {
          if (mask[static_cast<std::size_t>(vp)] == 0) continue;
          Elem elem;
          elem.domain_ = this;
          elem.vp_ = vp;
          elem.pending_ = &pending[static_cast<std::size_t>(vp)];
          elem.access_ = &access[static_cast<std::size_t>(vp)];
          fn(elem);
        }
      },
      /*min_grain=*/256);

  Elem::Access total;
  for (const auto& a : access) {
    total.local += a.local;
    total.news += a.news;
    total.router += a.router;
    total.max_hops = std::max(total.max_hops, a.max_hops);
  }
  if (total.news > 0) machine_.charge_news(n, total.max_hops);
  if (total.router > 0) machine_.charge_router(n, total.router);

  // Commit: plain sets must be single-valued; combines fold in VP order.
  for (auto& per_vp : pending) {
    for (auto& p : per_vp) {
      auto& fld = machine_.field(
          p.domain->fields_[static_cast<std::size_t>(p.field)]);
      switch (p.kind) {
        case Elem::Pending::Kind::kSet:
          fld.set(p.vp, cm::from_int(p.value));
          break;
        case Elem::Pending::Kind::kMin:
          fld.set(p.vp, cm::from_int(std::min(cm::as_int(fld.get(p.vp)),
                                              p.value)));
          break;
        case Elem::Pending::Kind::kMax:
          fld.set(p.vp, cm::from_int(std::max(cm::as_int(fld.get(p.vp)),
                                              p.value)));
          break;
        case Elem::Pending::Kind::kAdd:
          fld.set(p.vp,
                  cm::from_int(cm::as_int(fld.get(p.vp)) + p.value));
          break;
      }
    }
  }
  in_sweep_ = false;
}

void Domain::where(const std::function<bool(Elem&)>& pred,
                   const std::function<void()>& body) {
  // Evaluating the condition is itself one parallel statement.
  machine_.charge_vector_op(size(), 1);
  snapshot_.clear();
  snapshot_.reserve(fields_.size());
  for (auto id : fields_) snapshot_.push_back(machine_.field(id).raw());
  std::vector<Elem::Pending> scratch;
  Elem::Access access;
  context_.where([&](cm::VpIndex vp) {
    Elem elem;
    elem.domain_ = this;
    elem.vp_ = vp;
    elem.pending_ = &scratch;
    elem.access_ = &access;
    return pred(elem);
  });
  body();
  context_.end();
}

std::int64_t Domain::read(FieldHandle f,
                          const std::vector<std::int64_t>& coords) {
  machine_.charge_frontend(2);
  return cm::as_int(field(f).get(geometry().flatten(coords)));
}

void Domain::write(FieldHandle f, const std::vector<std::int64_t>& coords,
                   std::int64_t v) {
  machine_.charge_frontend(2);
  field(f).set(geometry().flatten(coords), cm::from_int(v));
}

std::int64_t Domain::reduce(FieldHandle f, cm::ReduceOp op) {
  return cm::as_int(cm::reduce(machine_, context_, field(f), op));
}

}  // namespace uc::cstar
