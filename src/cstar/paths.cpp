#include "cstar/paths.hpp"

#include <bit>

#include "cstar/domain.hpp"

namespace uc::cstar {

namespace {

std::int64_t ceil_log2(std::int64_t n) {
  if (n <= 1) return 1;
  return static_cast<std::int64_t>(
      std::bit_width(static_cast<std::uint64_t>(n - 1)));
}

void load_matrix(Domain& path, FieldHandle len,
                 const std::vector<std::int64_t>& initial, std::int64_t n) {
  // The appendix's PATH::init() runs as one parallel statement; here the
  // values come from the caller instead of rand().
  path.parallel(2, [&](Elem& e) {
    e.set(len, initial[static_cast<std::size_t>(e.at(0) * n + e.at(1))]);
  });
}

std::vector<std::int64_t> dump_matrix(Domain& path, FieldHandle len,
                                      std::int64_t n) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out[static_cast<std::size_t>(i * n + j)] = path.read(len, {i, j});
    }
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> shortest_path_on2(
    cm::Machine& machine, std::int64_t n,
    const std::vector<std::int64_t>& initial) {
  Domain path(machine, "PATH", {n, n});
  auto len = path.add_field("len");
  load_matrix(path, len, initial, n);

  // void main() { [domain PATH].{ int k; for (k=0; k<N; k++)
  //   len <?= path[i][k].len + path[k][j].len; } }
  for (std::int64_t k = 0; k < n; ++k) {
    machine.charge_frontend(2);  // loop bookkeeping on the front end
    path.parallel(3, [&](Elem& e) {
      const auto i = e.at(0);
      const auto j = e.at(1);
      e.min_assign(len, e.get(len, {i, k}) + e.get(len, {k, j}));
    });
  }
  return dump_matrix(path, len, n);
}

std::vector<std::int64_t> shortest_path_on3(
    cm::Machine& machine, std::int64_t n,
    const std::vector<std::int64_t>& initial) {
  Domain path(machine, "PATH", {n, n});
  auto len = path.add_field("len");
  load_matrix(path, len, initial, n);

  // domain XMED[N][N][N]: instance (i,j,k) relaxes path (i,j) via k.  The
  // C* program must declare the full 3-D domain to get O(N^3) parallelism
  // (the §5 point about explicit, static parallelism declarations).
  Domain xmed(machine, "XMED", {n, n, n});
  (void)xmed.add_field("scratch");

  const auto rounds = ceil_log2(n);
  for (std::int64_t r = 0; r < rounds; ++r) {
    machine.charge_frontend(2);
    xmed.parallel(3, [&](Elem& e) {
      const auto i = e.at(0);
      const auto j = e.at(1);
      const auto k = e.at(2);
      const auto via =
          e.get_from(path, len, {i, k}) + e.get_from(path, len, {k, j});
      e.send_min_to(path, len, {i, j}, via);
    });
  }
  return dump_matrix(path, len, n);
}

}  // namespace uc::cstar
