// The paper's Appendix C* programs (Figs 9 and 10) expressed in the
// embedded C* DSL — the baselines for experiments E1/E2 (Figs 6-7).
#pragma once

#include <cstdint>
#include <vector>

#include "cm/machine.hpp"

namespace uc::cstar {

// Fig 9: domain PATH[N][N], N relaxation rounds of
//   path[i][j].len <?= path[i][k].len + path[k][j].len
// with the front end stepping k.  `initial` is the row-major N×N distance
// matrix.  Returns the final matrix; costs accrue on `machine`.
std::vector<std::int64_t> shortest_path_on2(
    cm::Machine& machine, std::int64_t n,
    const std::vector<std::int64_t>& initial);

// Fig 10: domain XMED[N][N][N] evaluates all intermediate nodes at once;
// ceil(log2 N) rounds of min-plus squaring (matching the UC Fig 5
// program), with XMED instances reading PATH and min-combining back.
std::vector<std::int64_t> shortest_path_on3(
    cm::Machine& machine, std::int64_t n,
    const std::vector<std::int64_t>& initial);

}  // namespace uc::cstar
