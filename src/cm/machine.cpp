#include "cm/machine.hpp"

#include <bit>

#include "cm/plan_cache.hpp"
#include "support/str.hpp"

namespace uc::cm {

std::int64_t MachineImage::words() const {
  std::int64_t total = 0;
  for (const auto& f : fields) {
    total += static_cast<std::int64_t>(f.data.size());
  }
  return total;
}

Machine::Machine(MachineOptions options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.host_threads)),
      exchange_cache_(std::make_unique<PlanCache>()),
      rng_(options.seed),
      injector_(options.faults) {
  shard_count_ =
      options_.shards == 0 ? pool_->thread_count() : options_.shards;
  if (shard_count_ < 1) shard_count_ = 1;
  shard_stats_.assign(shard_count_, ShardStats{});
}

Machine::~Machine() = default;  // here so PlanCache is complete

GeomId Machine::create_geometry(std::vector<std::int64_t> dims) {
  geometries_.push_back(std::make_unique<Geometry>(std::move(dims)));
  return GeomId{static_cast<std::int32_t>(geometries_.size() - 1)};
}

const Geometry& Machine::geometry(GeomId id) const {
  if (id.index < 0 || static_cast<std::size_t>(id.index) >= geometries_.size()) {
    throw support::ApiError("Machine::geometry: bad id");
  }
  return *geometries_[static_cast<std::size_t>(id.index)];
}

FieldId Machine::allocate_field(GeomId geom, std::string name, ElemType type) {
  const Geometry* g = &geometry(geom);
  // Memory cap: one payload word + one defined flag per VP.  Exceeding it
  // is a clean runtime error (the program asked for too much machine),
  // not an ApiError — the caller's code is fine, the request is not.
  const auto bytes =
      static_cast<std::uint64_t>(g->size()) * (sizeof(Bits) + 1);
  if (options_.max_field_bytes != 0 &&
      field_bytes_ + bytes > options_.max_field_bytes) {
    throw support::UcRuntimeError(support::format(
        "field '%s' (%lld VPs, %llu bytes) exceeds the field memory cap: "
        "%llu of %llu bytes already allocated (raise --max-field-mb)",
        name.c_str(), static_cast<long long>(g->size()),
        static_cast<unsigned long long>(bytes),
        static_cast<unsigned long long>(field_bytes_),
        static_cast<unsigned long long>(options_.max_field_bytes)));
  }
  field_bytes_ += bytes;
  auto field = std::make_unique<Field>(g, std::move(name), type);
  if (!free_field_slots_.empty()) {
    auto slot = free_field_slots_.back();
    free_field_slots_.pop_back();
    fields_[static_cast<std::size_t>(slot)] = std::move(field);
    return FieldId{slot};
  }
  fields_.push_back(std::move(field));
  return FieldId{static_cast<std::int32_t>(fields_.size() - 1)};
}

Field& Machine::field(FieldId id) {
  if (id.index < 0 || static_cast<std::size_t>(id.index) >= fields_.size() ||
      fields_[static_cast<std::size_t>(id.index)] == nullptr) {
    throw support::ApiError("Machine::field: bad id");
  }
  return *fields_[static_cast<std::size_t>(id.index)];
}

const Field& Machine::field(FieldId id) const {
  return const_cast<Machine*>(this)->field(id);
}

void Machine::free_field(FieldId id) {
  const Field& f = field(id);  // validate
  const auto bytes =
      static_cast<std::uint64_t>(f.size()) * (sizeof(Bits) + 1);
  field_bytes_ = field_bytes_ >= bytes ? field_bytes_ - bytes : 0;
  fields_[static_cast<std::size_t>(id.index)].reset();
  free_field_slots_.push_back(id.index);
}

void Machine::faultable(FaultKind k, std::uint64_t units,
                        std::uint64_t attempt_cycles) {
  if (!injector_.enabled(k)) return;
  // Detection (checksum/ack verification) is charged per protected
  // instruction whenever injection is on — turning the layer on costs
  // cycles even on a lucky run, turning it off costs nothing.
  stats_.cycles += options_.faults.detect_cycles;
  std::uint64_t failures = 0;
  while (injector_.draw_failure(k, units)) {
    ++failures;
    stats_.faults += 1;
    stats_.cycles += injector_.backoff(failures);
    if (failures > options_.faults.max_retries) {
      trace(support::format("cm:fault         kind=%s attempts=%llu "
                            "units=%llu UNRECOVERED",
                            fault_kind_name(k),
                            static_cast<unsigned long long>(failures),
                            static_cast<unsigned long long>(units)));
      throw support::TransientFault(
          fault_kind_name(k), failures,
          support::format(
              "transient %s fault: %llu consecutive attempts failed "
              "(p=%g over %llu units, retries=%llu)",
              fault_kind_name(k),
              static_cast<unsigned long long>(failures),
              injector_.spec().probability(k),
              static_cast<unsigned long long>(units),
              static_cast<unsigned long long>(
                  options_.faults.max_retries)));
    }
    // Re-issue: the instruction runs again in full, plus its checksum.
    stats_.retries += 1;
    stats_.cycles += attempt_cycles + options_.faults.detect_cycles;
    trace(support::format("cm:retry         kind=%s attempt=%llu units=%llu",
                          fault_kind_name(k),
                          static_cast<unsigned long long>(failures + 1),
                          static_cast<unsigned long long>(units)));
  }
}

void Machine::charge_checkpoint(std::int64_t words) {
  trace(support::format("cm:checkpoint    words=%lld",
                        static_cast<long long>(words)));
  stats_.checkpoints += 1;
  const auto slices =
      options_.cost.vp_ratio(static_cast<std::uint64_t>(words));
  stats_.cycles += options_.cost.issue_overhead +
                   options_.cost.mem_op * slices;
}

MachineImage Machine::snapshot_state() const {
  MachineImage image;
  image.rng_state = rng_.state();
  image.fields.reserve(fields_.size());
  for (std::size_t k = 0; k < fields_.size(); ++k) {
    const auto& f = fields_[k];
    if (f == nullptr) continue;
    MachineImage::FieldImage fi;
    fi.slot = static_cast<std::int32_t>(k);
    fi.data = f->raw();
    fi.defined = f->defined_raw();
    image.fields.push_back(std::move(fi));
  }
  return image;
}

void Machine::restore_state(const MachineImage& image) {
  for (const auto& fi : image.fields) {
    if (fi.slot < 0 ||
        static_cast<std::size_t>(fi.slot) >= fields_.size() ||
        fields_[static_cast<std::size_t>(fi.slot)] == nullptr) {
      throw support::ApiError(
          "Machine::restore_state: checkpointed field no longer exists");
    }
    Field& f = *fields_[static_cast<std::size_t>(fi.slot)];
    if (f.raw().size() != fi.data.size()) {
      throw support::ApiError(
          "Machine::restore_state: field size changed since capture");
    }
    f.raw() = fi.data;
    f.defined_raw() = fi.defined;
  }
  rng_.seed(image.rng_state);
}

void Machine::charge_frontend(std::uint64_t n_ops) {
  trace(support::format("fe-op            count=%llu",
                        static_cast<unsigned long long>(n_ops)));
  stats_.frontend_ops += n_ops;
  stats_.cycles += options_.cost.frontend_op * n_ops;
}

void Machine::charge_vector_op(std::int64_t vp_set_size, std::uint64_t n_ops,
                               bool planned) {
  trace(support::format("cm:alu           vp-set=%lld ops=%llu%s",
                        static_cast<long long>(vp_set_size),
                        static_cast<unsigned long long>(n_ops),
                        planned ? " plan$" : ""));
  const auto vpr = options_.cost.vp_ratio(static_cast<std::uint64_t>(vp_set_size));
  stats_.vector_ops += 1;
  const auto issue = planned ? options_.cost.plan_issue_overhead
                             : options_.cost.issue_overhead;
  const auto attempt = issue + options_.cost.alu_op * n_ops * vpr;
  stats_.cycles += attempt;
  // Memory faults: any of the VP words touched may take a bit flip.
  faultable(FaultKind::kMemory, static_cast<std::uint64_t>(vp_set_size),
            attempt);
}

void Machine::charge_news(std::int64_t vp_set_size, std::uint64_t hops) {
  trace(support::format("cm:get-news      vp-set=%lld hops=%llu",
                        static_cast<long long>(vp_set_size),
                        static_cast<unsigned long long>(hops)));
  const auto vpr = options_.cost.vp_ratio(static_cast<std::uint64_t>(vp_set_size));
  stats_.news_ops += 1;
  const auto attempt = options_.cost.news_op * (hops == 0 ? 1 : hops) * vpr;
  stats_.cycles += attempt;
  // NEWS faults: every hop of every time slice crosses a grid link.
  faultable(FaultKind::kNews, (hops == 0 ? 1 : hops) * vpr, attempt);
}

void Machine::charge_router(std::int64_t vp_set_size,
                            std::uint64_t n_messages) {
  trace(support::format("cm:send-general  vp-set=%lld msgs=%llu",
                        static_cast<long long>(vp_set_size),
                        static_cast<unsigned long long>(n_messages)));
  (void)vp_set_size;
  stats_.router_ops += 1;
  stats_.router_messages += n_messages;
  // Messages are delivered in waves of at most P; an instruction that
  // injects more than P messages takes proportionally longer.
  const auto waves =
      (n_messages + options_.cost.physical_processors - 1) /
      options_.cost.physical_processors;
  const auto attempt = options_.cost.router_op * (waves == 0 ? 1 : waves);
  stats_.cycles += attempt;
  // Router faults: each message is independently at risk of drop or
  // corruption; the ack/checksum pass detects a bad wave and re-sends.
  faultable(FaultKind::kRouter, n_messages, attempt);
}

void Machine::charge_reduce(std::int64_t vp_set_size, std::int64_t n_elems,
                            bool planned) {
  trace(support::format("cm:scan          vp-set=%lld elems=%lld%s",
                        static_cast<long long>(vp_set_size),
                        static_cast<long long>(n_elems),
                        planned ? " plan$" : ""));
  const auto vpr = options_.cost.vp_ratio(static_cast<std::uint64_t>(vp_set_size));
  stats_.reductions += 1;
  std::uint64_t depth = 1;
  if (n_elems > 1) {
    depth = static_cast<std::uint64_t>(
        std::bit_width(static_cast<std::uint64_t>(n_elems - 1)));
  }
  const auto issue = planned ? options_.cost.plan_issue_overhead
                             : options_.cost.issue_overhead;
  const auto attempt = issue + options_.cost.scan_step * depth * vpr;
  stats_.cycles += attempt;
  // Scan/reduce faults: any log-depth combine step of any slice can fail.
  faultable(FaultKind::kReduce, depth * vpr, attempt);
}

void Machine::charge_global_or() {
  trace("cm:global-logior");
  stats_.global_ors += 1;
  stats_.cycles += options_.cost.global_or_op;
}

void Machine::charge_broadcast(std::int64_t vp_set_size) {
  trace(support::format("cm:broadcast     vp-set=%lld",
                        static_cast<long long>(vp_set_size)));
  const auto vpr = options_.cost.vp_ratio(static_cast<std::uint64_t>(vp_set_size));
  stats_.broadcasts += 1;
  stats_.cycles += options_.cost.broadcast_op * vpr;
}

}  // namespace uc::cm
