#include "cm/machine.hpp"

#include <bit>

#include "support/str.hpp"

namespace uc::cm {

Machine::Machine(MachineOptions options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.host_threads)),
      rng_(options.seed) {}

GeomId Machine::create_geometry(std::vector<std::int64_t> dims) {
  geometries_.push_back(std::make_unique<Geometry>(std::move(dims)));
  return GeomId{static_cast<std::int32_t>(geometries_.size() - 1)};
}

const Geometry& Machine::geometry(GeomId id) const {
  if (id.index < 0 || static_cast<std::size_t>(id.index) >= geometries_.size()) {
    throw support::ApiError("Machine::geometry: bad id");
  }
  return *geometries_[static_cast<std::size_t>(id.index)];
}

FieldId Machine::allocate_field(GeomId geom, std::string name, ElemType type) {
  const Geometry* g = &geometry(geom);
  auto field = std::make_unique<Field>(g, std::move(name), type);
  if (!free_field_slots_.empty()) {
    auto slot = free_field_slots_.back();
    free_field_slots_.pop_back();
    fields_[static_cast<std::size_t>(slot)] = std::move(field);
    return FieldId{slot};
  }
  fields_.push_back(std::move(field));
  return FieldId{static_cast<std::int32_t>(fields_.size() - 1)};
}

Field& Machine::field(FieldId id) {
  if (id.index < 0 || static_cast<std::size_t>(id.index) >= fields_.size() ||
      fields_[static_cast<std::size_t>(id.index)] == nullptr) {
    throw support::ApiError("Machine::field: bad id");
  }
  return *fields_[static_cast<std::size_t>(id.index)];
}

const Field& Machine::field(FieldId id) const {
  return const_cast<Machine*>(this)->field(id);
}

void Machine::free_field(FieldId id) {
  field(id);  // validate
  fields_[static_cast<std::size_t>(id.index)].reset();
  free_field_slots_.push_back(id.index);
}

void Machine::charge_frontend(std::uint64_t n_ops) {
  trace(support::format("fe-op            count=%llu",
                        static_cast<unsigned long long>(n_ops)));
  stats_.frontend_ops += n_ops;
  stats_.cycles += options_.cost.frontend_op * n_ops;
}

void Machine::charge_vector_op(std::int64_t vp_set_size, std::uint64_t n_ops) {
  trace(support::format("cm:alu           vp-set=%lld ops=%llu",
                        static_cast<long long>(vp_set_size),
                        static_cast<unsigned long long>(n_ops)));
  const auto vpr = options_.cost.vp_ratio(static_cast<std::uint64_t>(vp_set_size));
  stats_.vector_ops += 1;
  stats_.cycles += options_.cost.issue_overhead +
                   options_.cost.alu_op * n_ops * vpr;
}

void Machine::charge_news(std::int64_t vp_set_size, std::uint64_t hops) {
  trace(support::format("cm:get-news      vp-set=%lld hops=%llu",
                        static_cast<long long>(vp_set_size),
                        static_cast<unsigned long long>(hops)));
  const auto vpr = options_.cost.vp_ratio(static_cast<std::uint64_t>(vp_set_size));
  stats_.news_ops += 1;
  stats_.cycles += options_.cost.news_op * (hops == 0 ? 1 : hops) * vpr;
}

void Machine::charge_router(std::int64_t vp_set_size,
                            std::uint64_t n_messages) {
  trace(support::format("cm:send-general  vp-set=%lld msgs=%llu",
                        static_cast<long long>(vp_set_size),
                        static_cast<unsigned long long>(n_messages)));
  (void)vp_set_size;
  stats_.router_ops += 1;
  stats_.router_messages += n_messages;
  // Messages are delivered in waves of at most P; an instruction that
  // injects more than P messages takes proportionally longer.
  const auto waves =
      (n_messages + options_.cost.physical_processors - 1) /
      options_.cost.physical_processors;
  stats_.cycles += options_.cost.router_op * (waves == 0 ? 1 : waves);
}

void Machine::charge_reduce(std::int64_t vp_set_size, std::int64_t n_elems) {
  trace(support::format("cm:scan          vp-set=%lld elems=%lld",
                        static_cast<long long>(vp_set_size),
                        static_cast<long long>(n_elems)));
  const auto vpr = options_.cost.vp_ratio(static_cast<std::uint64_t>(vp_set_size));
  stats_.reductions += 1;
  std::uint64_t depth = 1;
  if (n_elems > 1) {
    depth = static_cast<std::uint64_t>(
        std::bit_width(static_cast<std::uint64_t>(n_elems - 1)));
  }
  stats_.cycles += options_.cost.issue_overhead +
                   options_.cost.scan_step * depth * vpr;
}

void Machine::charge_global_or() {
  trace("cm:global-logior");
  stats_.global_ors += 1;
  stats_.cycles += options_.cost.global_or_op;
}

void Machine::charge_broadcast(std::int64_t vp_set_size) {
  trace(support::format("cm:broadcast     vp-set=%lld",
                        static_cast<long long>(vp_set_size)));
  const auto vpr = options_.cost.vp_ratio(static_cast<std::uint64_t>(vp_set_size));
  stats_.broadcasts += 1;
  stats_.cycles += options_.cost.broadcast_op * vpr;
}

}  // namespace uc::cm
