// Cost model for the simulated Connection Machine (CM-2 style).
//
// The paper's performance results hinge on *which* operations a program
// issues: front-end scalar work, SIMD vector instructions over a set of
// virtual processors (VPs), NEWS-grid neighbour communication, general
// router communication, log-depth scans/reductions, and global-OR.  We
// charge each category in machine cycles.  A VP set larger than the number
// of physical processors is time-sliced, multiplying per-VP work by the VP
// ratio — exactly the CM-2's virtual-processor mechanism.
#pragma once

#include <cstdint>
#include <string>

namespace uc::cm {

struct CostModel {
  // Machine configuration.
  std::uint64_t physical_processors = 16384;  // a 16K CM-2, as in the paper
  double clock_hz = 7.0e6;                    // CM-2 ran at ~7 MHz

  // Per-operation cycle costs.
  std::uint64_t issue_overhead = 30;  // front end -> sequencer -> broadcast
  std::uint64_t alu_op = 4;           // one elementwise op, per VP time-slice
  std::uint64_t mem_op = 4;           // local memory read/write, per slice
  std::uint64_t news_op = 12;         // NEWS-grid neighbour access, per slice
  std::uint64_t router_op = 600;      // general router delivery, per wave
  std::uint64_t scan_step = 20;       // one step of a log-depth scan/reduce
  std::uint64_t global_or_op = 12;    // wired global-OR (cheap hardware)
  std::uint64_t broadcast_op = 15;    // front end broadcast to all VPs
  std::uint64_t frontend_op = 2;      // scalar op on the front end (Sun-4)
  // Issue overhead when a cached communication/issue plan is replayed: the
  // front end skips address computation and plan construction and only
  // streams the pre-built instruction sequence to the sequencer.
  std::uint64_t plan_issue_overhead = 6;

  // Number of time slices needed to run one SIMD instruction on a VP set of
  // size n: ceil(n / physical_processors), at least 1.
  std::uint64_t vp_ratio(std::uint64_t n) const {
    if (n == 0) return 1;
    return (n + physical_processors - 1) / physical_processors;
  }

  double cycles_to_seconds(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / clock_hz;
  }
};

// Aggregate counters.  Charged once per issued instruction by the issuing
// thread (the data-parallel *host* execution inside an instruction is
// parallel, but instruction issue is serial, as on the real front end).
struct CostStats {
  std::uint64_t cycles = 0;

  std::uint64_t vector_ops = 0;     // SIMD elementwise instructions issued
  std::uint64_t news_ops = 0;       // instructions that used NEWS access
  std::uint64_t router_ops = 0;     // instructions that used the router
  std::uint64_t router_messages = 0;  // individual messages through the router
  std::uint64_t reductions = 0;     // reduce/scan instructions
  std::uint64_t global_ors = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t frontend_ops = 0;   // scalar front-end operations

  // Robustness layer (docs/ROBUSTNESS.md).  All zero unless fault
  // injection / checkpointing is enabled, so faults-off runs are
  // bit-identical to builds without the layer.
  std::uint64_t faults = 0;       // failed attempts detected (checksum/ack)
  std::uint64_t retries = 0;      // instruction re-issues after a fault
  std::uint64_t rollbacks = 0;    // VM statement/construct replays
  std::uint64_t checkpoints = 0;  // VM state snapshots captured

  // Communication-plan cache (src/cm/plan_cache.hpp).  Zero unless the
  // fused bytecode engine replays cached issue plans.
  std::uint64_t plan_hits = 0;    // statements issued from a cached plan

  // Durable checkpoints (docs/ROBUSTNESS.md "Durable checkpoints &
  // resume").  Host-side bookkeeping only — writing a snapshot to disk
  // and restoring one never charges modeled cycles beyond the in-memory
  // capture cost, so --checkpoint-dir is cycle-neutral.
  std::uint64_t durable_checkpoints = 0;  // snapshots persisted to disk
  std::uint64_t resumes = 0;              // restores from a durable snapshot

  CostStats& operator+=(const CostStats& o);
  // Counter-wise difference; well-defined only for b -= a where a is an
  // earlier snapshot of the same accumulator (counters never decrease).
  CostStats& operator-=(const CostStats& o);
  friend CostStats operator-(CostStats a, const CostStats& b) {
    a -= b;
    return a;
  }
  friend bool operator==(const CostStats&, const CostStats&) = default;
  std::string to_string(const CostModel& model) const;
};

}  // namespace uc::cm
