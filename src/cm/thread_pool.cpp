#include "cm/thread_pool.hpp"

#include <algorithm>

namespace uc::cm {

namespace {

// Per-thread region state.  tls_in_region marks "this thread is currently
// executing a chunk body"; tls_worker_id is the id that body runs under.
// Nested regions consult both: they execute inline on the current thread
// and keep reporting the outer worker id, so per-worker scratch (kernel
// arenas) stays exclusive to one thread even across nesting.
thread_local bool tls_in_region = false;
thread_local unsigned tls_worker_id = 0;

class RegionGuard {
 public:
  explicit RegionGuard(unsigned worker_id)
      : prev_in_(tls_in_region), prev_id_(tls_worker_id) {
    tls_in_region = true;
    tls_worker_id = worker_id;
  }
  ~RegionGuard() {
    tls_in_region = prev_in_;
    tls_worker_id = prev_id_;
  }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

 private:
  bool prev_in_;
  unsigned prev_id_;
};

}  // namespace

ThreadPool::ThreadPool(unsigned thread_count) {
  if (thread_count == 0) {
    thread_count = std::thread::hardware_concurrency();
    if (thread_count == 0) {
      // hardware_concurrency() may legally return 0 ("not computable");
      // fall back to a single-threaded pool rather than spawning a
      // 0-worker pool with an empty counter table.
      thread_count = 1;
    }
  }
  // The calling thread participates in parallel_for (as worker 0), so
  // spawn one fewer; pool workers take ids 1..thread_count-1.
  chunks_per_worker_.assign(thread_count, 0);
  for (unsigned i = 1; i < thread_count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    quit_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t min_grain) {
  parallel_for_indexed(
      begin, end,
      [&fn](unsigned, std::int64_t b, std::int64_t e) { fn(b, e); },
      min_grain);
}

void ThreadPool::parallel_for_indexed(
    std::int64_t begin, std::int64_t end,
    const std::function<void(unsigned, std::int64_t, std::int64_t)>& fn,
    std::int64_t min_grain) {
  if (begin >= end) return;
  if (tls_in_region) {
    // Nested region: the pool holds one job at a time, so posting from
    // inside a chunk body would clobber the outer job and deadlock its
    // join.  Run inline under the current worker id; counters are owned
    // by the top-level issuing thread and are left alone.
    fn(tls_worker_id, begin, end);
    return;
  }
  ++jobs_executed_;
  const std::int64_t n = end - begin;
  // Small-job fast path: below the cutoff the fork-join handshake costs
  // more than the body, so run the whole range inline as worker 0.
  if (workers_.empty() || n <= std::max(min_grain, kInlineCutoff)) {
    ++inline_jobs_;
    ++chunks_per_worker_[0];
    RegionGuard guard(0);
    fn(0, begin, end);
    return;
  }
  // Aim for a few chunks per worker so stragglers re-balance.
  const auto nthreads = static_cast<std::int64_t>(workers_.size()) + 1;
  const std::int64_t grain =
      std::max<std::int64_t>(min_grain, n / (nthreads * 4));
  run_pooled(begin, end, fn, grain);
}

void ThreadPool::for_shards(
    unsigned count, const std::function<void(unsigned, unsigned)>& fn) {
  if (count == 0) return;
  const std::function<void(unsigned, std::int64_t, std::int64_t)> body =
      [&fn](unsigned worker, std::int64_t b, std::int64_t e) {
        for (std::int64_t s = b; s < e; ++s) {
          fn(worker, static_cast<unsigned>(s));
        }
      };
  if (tls_in_region) {
    body(tls_worker_id, 0, count);
    return;
  }
  ++jobs_executed_;
  if (workers_.empty() || count == 1) {
    ++inline_jobs_;
    ++chunks_per_worker_[0];
    RegionGuard guard(0);
    body(0, 0, count);
    return;
  }
  // Grain 1: exactly one chunk per shard, deliberately skipping the
  // kInlineCutoff — shard counts are tiny, but each shard's chunk covers
  // a whole block of VPs and must land on its own worker.
  run_pooled(0, count, body, /*grain=*/1);
}

void ThreadPool::run_pooled(
    std::int64_t begin, std::int64_t end,
    const std::function<void(unsigned, std::int64_t, std::int64_t)>& fn,
    std::int64_t grain) {
  std::unique_lock<std::mutex> lock(mu_);
  job_.fn = &fn;
  job_.end = end;
  job_.grain = grain;
  job_.next = begin;
  job_.outstanding = 0;
  job_.error = nullptr;
  job_.error_begin = 0;
  ++job_.epoch;
  lock.unlock();
  work_cv_.notify_all();

  lock.lock();
  run_chunks(lock, /*worker_id=*/0);
  done_cv_.wait(lock, [this] {
    return job_.next >= job_.end && job_.outstanding == 0;
  });
  job_.fn = nullptr;
  auto error = job_.error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_chunks(std::unique_lock<std::mutex>& lock,
                            unsigned worker_id) {
  while (job_.fn != nullptr && job_.next < job_.end) {
    const std::int64_t chunk_begin = job_.next;
    const std::int64_t chunk_end =
        std::min(job_.end, chunk_begin + job_.grain);
    job_.next = chunk_end;
    ++job_.outstanding;
    const auto* fn = job_.fn;
    lock.unlock();
    std::exception_ptr error;
    try {
      RegionGuard guard(worker_id);
      (*fn)(worker_id, chunk_begin, chunk_end);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    ++chunks_per_worker_[worker_id];
    // Keep the error from the lowest-indexed failing chunk, not the first
    // to finish: chunk completion order is scheduling-dependent, and the
    // rethrown error should be the same on every run (it is also what a
    // serial left-to-right execution would have hit first).
    if (error && (!job_.error || chunk_begin < job_.error_begin)) {
      job_.error = error;
      job_.error_begin = chunk_begin;
    }
    --job_.outstanding;
    if (job_.next >= job_.end && job_.outstanding == 0) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(unsigned worker_id) {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return quit_ || (job_.fn != nullptr && job_.next < job_.end &&
                       job_.epoch != seen_epoch);
    });
    if (quit_) return;
    seen_epoch = job_.epoch;
    run_chunks(lock, worker_id);
  }
}

}  // namespace uc::cm
