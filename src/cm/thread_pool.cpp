#include "cm/thread_pool.hpp"

#include <algorithm>

namespace uc::cm {

ThreadPool::ThreadPool(unsigned thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for (as worker 0), so
  // spawn one fewer; pool workers take ids 1..thread_count-1.
  chunks_per_worker_.assign(thread_count, 0);
  for (unsigned i = 1; i < thread_count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    quit_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t min_grain) {
  parallel_for_indexed(
      begin, end,
      [&fn](unsigned, std::int64_t b, std::int64_t e) { fn(b, e); },
      min_grain);
}

void ThreadPool::parallel_for_indexed(
    std::int64_t begin, std::int64_t end,
    const std::function<void(unsigned, std::int64_t, std::int64_t)>& fn,
    std::int64_t min_grain) {
  if (begin >= end) return;
  ++jobs_executed_;
  const std::int64_t n = end - begin;
  // Small-job fast path: below the cutoff the fork-join handshake costs
  // more than the body, so run the whole range inline as worker 0.
  if (workers_.empty() || n <= std::max(min_grain, kInlineCutoff)) {
    ++inline_jobs_;
    ++chunks_per_worker_[0];
    fn(0, begin, end);
    return;
  }
  // Aim for a few chunks per worker so stragglers re-balance.
  const auto nthreads = static_cast<std::int64_t>(workers_.size()) + 1;
  std::int64_t grain = std::max<std::int64_t>(min_grain, n / (nthreads * 4));

  std::unique_lock<std::mutex> lock(mu_);
  job_.fn = &fn;
  job_.end = end;
  job_.grain = grain;
  job_.next = begin;
  job_.outstanding = 0;
  job_.error = nullptr;
  ++job_.epoch;
  lock.unlock();
  work_cv_.notify_all();

  lock.lock();
  run_chunks(lock, /*worker_id=*/0);
  done_cv_.wait(lock, [this] {
    return job_.next >= job_.end && job_.outstanding == 0;
  });
  job_.fn = nullptr;
  auto error = job_.error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_chunks(std::unique_lock<std::mutex>& lock,
                            unsigned worker_id) {
  while (job_.fn != nullptr && job_.next < job_.end) {
    const std::int64_t chunk_begin = job_.next;
    const std::int64_t chunk_end =
        std::min(job_.end, chunk_begin + job_.grain);
    job_.next = chunk_end;
    ++job_.outstanding;
    const auto* fn = job_.fn;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*fn)(worker_id, chunk_begin, chunk_end);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    ++chunks_per_worker_[worker_id];
    if (error && !job_.error) job_.error = error;
    --job_.outstanding;
    if (job_.next >= job_.end && job_.outstanding == 0) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(unsigned worker_id) {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return quit_ || (job_.fn != nullptr && job_.next < job_.end &&
                       job_.epoch != seen_epoch);
    });
    if (quit_) return;
    seen_epoch = job_.epoch;
    run_chunks(lock, worker_id);
  }
}

}  // namespace uc::cm
