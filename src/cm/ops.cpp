#include "cm/ops.hpp"

#include <algorithm>
#include <limits>

#include "support/str.hpp"

// Error taxonomy (docs/ROBUSTNESS.md): shape/geometry mismatches are the
// *caller's* bug and throw ApiError; failures that depend on runtime data
// (addresses computed from field contents) throw UcRuntimeError carrying
// the VP, its coordinates and the offending value, so a failing program
// points at the lane that misbehaved.  All throws happen on the issuing
// thread, before any parallel host work touches the destination.

namespace uc::cm {

namespace {

// UC's INF constant (paper §3.2): min/max identities.
constexpr std::int64_t kIntInf = std::numeric_limits<std::int64_t>::max();
constexpr double kFloatInf = std::numeric_limits<double>::infinity();

void check_same_geometry(const Field& a, const Field& b, const char* what) {
  if (!(a.geometry() == b.geometry())) {
    throw support::ApiError(
        support::format("%s: fields '%s' (%s) and '%s' (%s) live in "
                        "different geometries",
                        what, a.name().c_str(),
                        a.geometry().to_string().c_str(), b.name().c_str(),
                        b.geometry().to_string().c_str()));
  }
}

void check_context_geometry(const Geometry& geom, const ContextStack& ctx,
                            const char* what) {
  if (!(geom == ctx.geometry())) {
    throw support::ApiError(
        support::format("%s: context geometry %s does not match field "
                        "geometry %s",
                        what, ctx.geometry().to_string().c_str(),
                        geom.to_string().c_str()));
  }
}

// Renders a VP's coordinates in its geometry, for runtime error context.
std::string vp_coords(const Geometry& geom, VpIndex vp) {
  std::string out = "(";
  const auto coords = geom.unflatten(vp);
  for (std::size_t d = 0; d < coords.size(); ++d) {
    if (d > 0) out += ",";
    out += std::to_string(coords[d]);
  }
  out += ")";
  return out;
}

}  // namespace

void elementwise(Machine& m, const ContextStack& ctx, Field& dst,
                 const std::function<Bits(VpIndex)>& fn,
                 std::uint64_t n_ops) {
  const auto& geom = dst.geometry();
  check_context_geometry(geom, ctx, "elementwise");
  m.charge_vector_op(geom.size(), n_ops);
  auto& raw = dst.raw();
  const auto& mask = ctx.current();
  m.pool().parallel_for(0, geom.size(), [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t vp = b; vp < e; ++vp) {
      if (mask[static_cast<std::size_t>(vp)] != 0) {
        raw[static_cast<std::size_t>(vp)] = fn(vp);
      }
    }
  });
}

void news_shift(Machine& m, const ContextStack& ctx, Field& dst,
                const Field& src, std::size_t axis, std::int64_t delta) {
  check_same_geometry(dst, src, "news_shift");
  const auto& geom = dst.geometry();
  if (axis >= geom.rank()) {
    throw support::ApiError(support::format(
        "news_shift: axis %zu out of range for geometry %s", axis,
        geom.to_string().c_str()));
  }
  m.charge_news(geom.size(),
                static_cast<std::uint64_t>(delta < 0 ? -delta : delta));
  const auto& mask = ctx.current();
  const auto& src_raw = src.raw();
  // Snapshot only when dst aliases src (in-place shifts are legal); the
  // common distinct-field case reads the source directly.
  std::vector<Bits> snapshot;
  const Bits* in = src_raw.data();
  if (&dst == &src) {
    snapshot.assign(src_raw.begin(), src_raw.end());
    in = snapshot.data();
  }
  auto& out = dst.raw();
  m.pool().parallel_for(0, geom.size(), [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t vp = b; vp < e; ++vp) {
      if (mask[static_cast<std::size_t>(vp)] == 0) continue;
      auto nb = geom.neighbor(vp, axis, delta);
      if (nb) out[static_cast<std::size_t>(vp)] =
          in[static_cast<std::size_t>(*nb)];
    }
  });
}

void router_get(Machine& m, const ContextStack& ctx, Field& dst,
                const Field& src,
                const std::function<std::optional<VpIndex>(VpIndex)>& addr) {
  const auto& geom = dst.geometry();
  check_context_geometry(geom, ctx, "router_get");
  const auto& mask = ctx.current();
  const auto& src_raw = src.raw();
  // Snapshot only when dst aliases src; a get from a distinct field can
  // read the source in place.
  std::vector<Bits> snapshot;
  const Bits* in = src_raw.data();
  if (&dst == &src) {
    snapshot.assign(src_raw.begin(), src_raw.end());
    in = snapshot.data();
  }
  auto& out = dst.raw();
  std::int64_t messages = 0;
  // Count messages and validate addresses serially first: addresses are
  // data-dependent, so a bad one is the *program's* runtime error and must
  // carry lane context — and must fire before any charge or parallel
  // fetch touches the destination field.
  for (std::int64_t vp = 0; vp < geom.size(); ++vp) {
    if (mask[static_cast<std::size_t>(vp)] == 0) continue;
    auto a = addr(vp);
    if (!a) continue;
    if (*a < 0 || *a >= src.size()) {
      throw support::UcRuntimeError(support::format(
          "router_get: VP %lld at %s requests out-of-range source VP %lld "
          "(field '%s' has %lld VPs)",
          static_cast<long long>(vp),
          vp_coords(geom, vp).c_str(), static_cast<long long>(*a),
          src.name().c_str(), static_cast<long long>(src.size())));
    }
    ++messages;
  }
  m.charge_router(geom.size(), static_cast<std::uint64_t>(messages));
  m.pool().parallel_for(0, geom.size(), [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t vp = b; vp < e; ++vp) {
      if (mask[static_cast<std::size_t>(vp)] == 0) continue;
      auto a = addr(vp);
      if (!a) continue;
      out[static_cast<std::size_t>(vp)] = in[static_cast<std::size_t>(*a)];
    }
  });
}

Bits reduce_identity(ReduceOp op, ElemType type) {
  const bool f = type == ElemType::kFloat;
  switch (op) {
    case ReduceOp::kAdd:
      return f ? from_float(0.0) : from_int(0);
    case ReduceOp::kMul:
      return f ? from_float(1.0) : from_int(1);
    case ReduceOp::kMax:
      return f ? from_float(-kFloatInf) : from_int(-kIntInf);
    case ReduceOp::kMin:
      return f ? from_float(kFloatInf) : from_int(kIntInf);
    case ReduceOp::kAnd:
      return from_int(1);
    case ReduceOp::kOr:
      return from_int(0);
    case ReduceOp::kXor:
      return from_int(0);
  }
  return 0;
}

Bits apply_reduce_op(ReduceOp op, ElemType type, Bits a, Bits b) {
  if (type == ElemType::kFloat) {
    const double x = as_float(a);
    const double y = as_float(b);
    switch (op) {
      case ReduceOp::kAdd:
        return from_float(x + y);
      case ReduceOp::kMul:
        return from_float(x * y);
      case ReduceOp::kMax:
        return from_float(std::max(x, y));
      case ReduceOp::kMin:
        return from_float(std::min(x, y));
      case ReduceOp::kAnd:
        return from_int((x != 0.0 && y != 0.0) ? 1 : 0);
      case ReduceOp::kOr:
        return from_int((x != 0.0 || y != 0.0) ? 1 : 0);
      case ReduceOp::kXor:
        return from_int(((x != 0.0) != (y != 0.0)) ? 1 : 0);
    }
  } else {
    const std::int64_t x = as_int(a);
    const std::int64_t y = as_int(b);
    switch (op) {
      case ReduceOp::kAdd:
        return from_int(x + y);
      case ReduceOp::kMul:
        return from_int(x * y);
      case ReduceOp::kMax:
        return from_int(std::max(x, y));
      case ReduceOp::kMin:
        return from_int(std::min(x, y));
      case ReduceOp::kAnd:
        return from_int((x != 0 && y != 0) ? 1 : 0);
      case ReduceOp::kOr:
        return from_int((x != 0 || y != 0) ? 1 : 0);
      case ReduceOp::kXor:
        return from_int(x ^ y);
    }
  }
  return 0;
}

Bits reduce(Machine& m, const ContextStack& ctx, const Field& src,
            ReduceOp op) {
  const auto& geom = src.geometry();
  check_context_geometry(geom, ctx, "reduce");
  const auto& mask = ctx.current();
  const auto n_active = ctx.active_count();
  m.charge_reduce(geom.size(), n_active);
  Bits acc = reduce_identity(op, src.type());
  const auto& raw = src.raw();
  for (std::int64_t vp = 0; vp < geom.size(); ++vp) {
    if (mask[static_cast<std::size_t>(vp)] != 0) {
      acc = apply_reduce_op(op, src.type(), acc,
                            raw[static_cast<std::size_t>(vp)]);
    }
  }
  return acc;
}

void scan(Machine& m, const ContextStack& ctx, Field& dst, const Field& src,
          ReduceOp op) {
  check_same_geometry(dst, src, "scan");
  const auto& geom = src.geometry();
  const auto& mask = ctx.current();
  m.charge_reduce(geom.size(), ctx.active_count());
  Bits acc = reduce_identity(op, src.type());
  const auto& in = src.raw();
  auto& out = dst.raw();
  for (std::int64_t vp = 0; vp < geom.size(); ++vp) {
    if (mask[static_cast<std::size_t>(vp)] == 0) continue;
    acc = apply_reduce_op(op, src.type(), acc, in[static_cast<std::size_t>(vp)]);
    out[static_cast<std::size_t>(vp)] = acc;
  }
}

bool global_or(Machine& m, const ContextStack& ctx) {
  m.charge_global_or();
  return ctx.any_active();
}

void broadcast(Machine& m, const ContextStack& ctx, Field& dst, Bits value) {
  const auto& geom = dst.geometry();
  m.charge_broadcast(geom.size());
  const auto& mask = ctx.current();
  auto& out = dst.raw();
  for (std::int64_t vp = 0; vp < geom.size(); ++vp) {
    if (mask[static_cast<std::size_t>(vp)] != 0) {
      out[static_cast<std::size_t>(vp)] = value;
    }
  }
}

}  // namespace uc::cm
