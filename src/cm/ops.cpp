#include "cm/ops.hpp"

#include <algorithm>
#include <limits>

#include "cm/plan_cache.hpp"
#include "cm/shard.hpp"
#include "support/str.hpp"

// Error taxonomy (docs/ROBUSTNESS.md): shape/geometry mismatches are the
// *caller's* bug and throw ApiError; failures that depend on runtime data
// (addresses computed from field contents) throw UcRuntimeError carrying
// the VP, its coordinates and the offending value, so a failing program
// points at the lane that misbehaved.  All throws happen on the issuing
// thread, before any parallel host work touches the destination.
//
// Sharded execution (docs/SHARDING.md): with machine.shard_count() > 1
// every primitive decomposes into per-shard passes over contiguous VP
// blocks plus an explicit cross-shard exchange where sources cross a block
// boundary.  All cost charging happens first, on the issuing thread,
// exactly as in the unsharded path — sharding changes host scheduling
// only, never modeled cycles or outputs.

namespace uc::cm {

namespace {

// UC's INF constant (paper §3.2): min/max identities.
constexpr std::int64_t kIntInf = std::numeric_limits<std::int64_t>::max();
constexpr double kFloatInf = std::numeric_limits<double>::infinity();

void check_same_geometry(const Field& a, const Field& b, const char* what) {
  if (!(a.geometry() == b.geometry())) {
    throw support::ApiError(
        support::format("%s: fields '%s' (%s) and '%s' (%s) live in "
                        "different geometries",
                        what, a.name().c_str(),
                        a.geometry().to_string().c_str(), b.name().c_str(),
                        b.geometry().to_string().c_str()));
  }
}

void check_context_geometry(const Geometry& geom, const ContextStack& ctx,
                            const char* what) {
  if (!(geom == ctx.geometry())) {
    throw support::ApiError(
        support::format("%s: context geometry %s does not match field "
                        "geometry %s",
                        what, ctx.geometry().to_string().c_str(),
                        geom.to_string().c_str()));
  }
}

// Renders a VP's coordinates in its geometry, for runtime error context.
std::string vp_coords(const Geometry& geom, VpIndex vp) {
  std::string out = "(";
  const auto coords = geom.unflatten(vp);
  for (std::size_t d = 0; d < coords.size(); ++d) {
    if (d > 0) out += ",";
    out += std::to_string(coords[d]);
  }
  out += ")";
  return out;
}

// Whether a reduce/scan over this op/type regroups bitwise-exactly under
// shard decomposition.  Float add/mul are non-associative (rounding
// depends on grouping), so those stay on the serial path; everything else
// is exact: two's-complement add/mul wrap associatively, min/max pick an
// element of the multiset independent of grouping (the identity is in the
// multiset on both paths, and NaNs always appear as the losing second
// argument), and and/or/xor are Boolean algebra on {0,1} payloads.
bool shard_exact(ReduceOp op, ElemType type) {
  return !(type == ElemType::kFloat &&
           (op == ReduceOp::kAdd || op == ReduceOp::kMul));
}

// Exchange-cache key for a NEWS shift schedule: the schedule is a pure
// function of these inputs, and the layout epoch retires entries recorded
// under a superseded mapping (docs/SHARDING.md).
std::uint64_t shift_exchange_key(const Machine& m, const Geometry& geom,
                                 std::size_t axis, std::int64_t delta) {
  auto h = PlanCache::mix(0x5ca1ab1eu, m.layout_epoch());
  h = PlanCache::mix(h, m.shard_count());
  h = PlanCache::mix(h, static_cast<std::uint64_t>(axis));
  h = PlanCache::mix(h, static_cast<std::uint64_t>(delta));
  h = PlanCache::mix(h, geom.rank());
  for (std::size_t d = 0; d < geom.rank(); ++d) {
    h = PlanCache::mix(h, static_cast<std::uint64_t>(geom.dims()[d]));
  }
  return h;
}

}  // namespace

void elementwise(Machine& m, const ContextStack& ctx, Field& dst,
                 const std::function<Bits(VpIndex)>& fn,
                 std::uint64_t n_ops) {
  const auto& geom = dst.geometry();
  check_context_geometry(geom, ctx, "elementwise");
  m.charge_vector_op(geom.size(), n_ops);
  auto& raw = dst.raw();
  const auto& mask = ctx.current();
  const unsigned shards = m.shard_count();
  if (shards > 1) {
    // Sharded path: one block per shard, each processed end-to-end by one
    // worker.  Purely intra-shard — elementwise ops never read a foreign
    // lane.
    const ShardLayout layout = m.shard_layout(geom);
    auto& sstats = m.shard_stats();
    m.pool().for_shards(shards, [&](unsigned, unsigned s) {
      std::uint64_t lanes = 0;
      for (std::int64_t vp = layout.begin(s); vp < layout.end(s); ++vp) {
        if (mask[static_cast<std::size_t>(vp)] != 0) {
          raw[static_cast<std::size_t>(vp)] = fn(vp);
          ++lanes;
        }
      }
      sstats[s].ops += 1;
      sstats[s].intra_lanes += lanes;
    });
    return;
  }
  m.pool().parallel_for(0, geom.size(), [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t vp = b; vp < e; ++vp) {
      if (mask[static_cast<std::size_t>(vp)] != 0) {
        raw[static_cast<std::size_t>(vp)] = fn(vp);
      }
    }
  });
}

void news_shift(Machine& m, const ContextStack& ctx, Field& dst,
                const Field& src, std::size_t axis, std::int64_t delta) {
  check_same_geometry(dst, src, "news_shift");
  const auto& geom = dst.geometry();
  if (axis >= geom.rank()) {
    throw support::ApiError(support::format(
        "news_shift: axis %zu out of range for geometry %s", axis,
        geom.to_string().c_str()));
  }
  m.charge_news(geom.size(),
                static_cast<std::uint64_t>(delta < 0 ? -delta : delta));
  const auto& mask = ctx.current();
  const auto& src_raw = src.raw();
  // Snapshot only when dst aliases src (in-place shifts are legal); the
  // common distinct-field case reads the source directly.
  std::vector<Bits> snapshot;
  const Bits* in = src_raw.data();
  if (&dst == &src) {
    snapshot.assign(src_raw.begin(), src_raw.end());
    in = snapshot.data();
  }
  auto& out = dst.raw();
  const unsigned shards = m.shard_count();
  if (shards > 1) {
    // Sharded path (docs/SHARDING.md): the shift decomposes into an
    // intra-shard pass plus a cross-shard exchange over the boundary
    // lanes.  The lane list is static per (geometry, axis, delta, shard
    // count), so it is built once and cached in the exchange PlanCache.
    const ShardLayout layout = m.shard_layout(geom);
    const auto key = shift_exchange_key(m, geom, axis, delta);
    const ExchangeSchedule* sched = m.exchange_cache().find_exchange(key);
    if (sched == nullptr) {
      sched = &m.exchange_cache().insert_exchange(
          key, build_shift_exchange(geom, layout, axis, delta));
    }
    // Exchange phase A (gather): each shard copies its incoming remote
    // lanes into a private buffer.  The fork-join barrier between phases
    // guarantees every gather read sees pre-instruction values, even when
    // dst aliases src.
    std::vector<std::vector<Bits>> gathered(shards);
    auto& sstats = m.shard_stats();
    m.pool().for_shards(shards, [&](unsigned, unsigned s) {
      const auto& lanes = sched->per_shard[s];
      auto& buf = gathered[s];
      buf.resize(lanes.size());
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        buf[i] = in[static_cast<std::size_t>(lanes[i].src)];
      }
    });
    // Intra pass + exchange phase B (commit): each shard writes only its
    // own block, in ascending VP order — same-shard lanes read in place,
    // remote lanes come from the gather buffer in recorded lane order, so
    // every destination is written exactly once with the same value the
    // unsharded pass would produce.
    m.pool().for_shards(shards, [&](unsigned, unsigned s) {
      std::uint64_t intra = 0;
      std::uint64_t remote = 0;
      for (std::int64_t vp = layout.begin(s); vp < layout.end(s); ++vp) {
        if (mask[static_cast<std::size_t>(vp)] == 0) continue;
        auto nb = geom.neighbor(vp, axis, delta);
        if (nb && layout.same_shard(vp, *nb)) {
          out[static_cast<std::size_t>(vp)] =
              in[static_cast<std::size_t>(*nb)];
          ++intra;
        }
      }
      const auto& lanes = sched->per_shard[s];
      const auto& buf = gathered[s];
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        // The cached schedule is mask-independent; activity is checked
        // here, at commit time.
        if (mask[static_cast<std::size_t>(lanes[i].dst)] == 0) continue;
        out[static_cast<std::size_t>(lanes[i].dst)] = buf[i];
        ++remote;
      }
      sstats[s].ops += 1;
      sstats[s].intra_lanes += intra;
      sstats[s].exchange_lanes += remote;
    });
    return;
  }
  m.pool().parallel_for(0, geom.size(), [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t vp = b; vp < e; ++vp) {
      if (mask[static_cast<std::size_t>(vp)] == 0) continue;
      auto nb = geom.neighbor(vp, axis, delta);
      if (nb) out[static_cast<std::size_t>(vp)] =
          in[static_cast<std::size_t>(*nb)];
    }
  });
}

void router_get(Machine& m, const ContextStack& ctx, Field& dst,
                const Field& src,
                const std::function<std::optional<VpIndex>(VpIndex)>& addr) {
  const auto& geom = dst.geometry();
  check_context_geometry(geom, ctx, "router_get");
  const auto& mask = ctx.current();
  const auto& src_raw = src.raw();
  // Snapshot only when dst aliases src; a get from a distinct field can
  // read the source in place.
  std::vector<Bits> snapshot;
  const Bits* in = src_raw.data();
  if (&dst == &src) {
    snapshot.assign(src_raw.begin(), src_raw.end());
    in = snapshot.data();
  }
  auto& out = dst.raw();
  const unsigned shards = m.shard_count();
  const ShardLayout layout = m.shard_layout(geom);
  // Router addresses are data-dependent, so the exchange schedule is
  // transient — rebuilt per instruction during the validation loop below,
  // never cached.
  ExchangeSchedule transient;
  if (shards > 1) transient.per_shard.resize(shards);
  std::int64_t messages = 0;
  // Count messages and validate addresses serially first: addresses are
  // data-dependent, so a bad one is the *program's* runtime error and must
  // carry lane context — and must fire before any charge or parallel
  // fetch touches the destination field.
  for (std::int64_t vp = 0; vp < geom.size(); ++vp) {
    if (mask[static_cast<std::size_t>(vp)] == 0) continue;
    auto a = addr(vp);
    if (!a) continue;
    if (*a < 0 || *a >= src.size()) {
      throw support::UcRuntimeError(support::format(
          "router_get: VP %lld at %s requests out-of-range source VP %lld "
          "(field '%s' has %lld VPs)",
          static_cast<long long>(vp),
          vp_coords(geom, vp).c_str(), static_cast<long long>(*a),
          src.name().c_str(), static_cast<long long>(src.size())));
    }
    ++messages;
    if (shards > 1 && !layout.same_shard(vp, *a)) {
      transient.per_shard[layout.owner(vp)].push_back({vp, *a});
    }
  }
  m.charge_router(geom.size(), static_cast<std::uint64_t>(messages));
  if (shards > 1) {
    // Sharded path: gather the remote lanes first (phase barrier keeps
    // the reads pre-instruction), then each shard serves its own block —
    // same-shard fetches in place, remote fetches from the gather buffer.
    // Transient lanes were recorded under the active mask, so no recheck
    // at commit (the mask cannot change mid-instruction).
    std::vector<std::vector<Bits>> gathered(shards);
    auto& sstats = m.shard_stats();
    m.pool().for_shards(shards, [&](unsigned, unsigned s) {
      const auto& lanes = transient.per_shard[s];
      auto& buf = gathered[s];
      buf.resize(lanes.size());
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        buf[i] = in[static_cast<std::size_t>(lanes[i].src)];
      }
    });
    m.pool().for_shards(shards, [&](unsigned, unsigned s) {
      std::uint64_t intra = 0;
      for (std::int64_t vp = layout.begin(s); vp < layout.end(s); ++vp) {
        if (mask[static_cast<std::size_t>(vp)] == 0) continue;
        auto a = addr(vp);
        if (!a || !layout.same_shard(vp, *a)) continue;
        out[static_cast<std::size_t>(vp)] = in[static_cast<std::size_t>(*a)];
        ++intra;
      }
      const auto& lanes = transient.per_shard[s];
      const auto& buf = gathered[s];
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        out[static_cast<std::size_t>(lanes[i].dst)] = buf[i];
      }
      sstats[s].ops += 1;
      sstats[s].intra_lanes += intra;
      sstats[s].exchange_lanes += lanes.size();
    });
    return;
  }
  m.pool().parallel_for(0, geom.size(), [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t vp = b; vp < e; ++vp) {
      if (mask[static_cast<std::size_t>(vp)] == 0) continue;
      auto a = addr(vp);
      if (!a) continue;
      out[static_cast<std::size_t>(vp)] = in[static_cast<std::size_t>(*a)];
    }
  });
}

Bits reduce_identity(ReduceOp op, ElemType type) {
  const bool f = type == ElemType::kFloat;
  switch (op) {
    case ReduceOp::kAdd:
      return f ? from_float(0.0) : from_int(0);
    case ReduceOp::kMul:
      return f ? from_float(1.0) : from_int(1);
    case ReduceOp::kMax:
      return f ? from_float(-kFloatInf) : from_int(-kIntInf);
    case ReduceOp::kMin:
      return f ? from_float(kFloatInf) : from_int(kIntInf);
    case ReduceOp::kAnd:
      return from_int(1);
    case ReduceOp::kOr:
      return from_int(0);
    case ReduceOp::kXor:
      return from_int(0);
  }
  return 0;
}

Bits apply_reduce_op(ReduceOp op, ElemType type, Bits a, Bits b) {
  if (type == ElemType::kFloat) {
    const double x = as_float(a);
    const double y = as_float(b);
    switch (op) {
      case ReduceOp::kAdd:
        return from_float(x + y);
      case ReduceOp::kMul:
        return from_float(x * y);
      case ReduceOp::kMax:
        return from_float(std::max(x, y));
      case ReduceOp::kMin:
        return from_float(std::min(x, y));
      case ReduceOp::kAnd:
        return from_int((x != 0.0 && y != 0.0) ? 1 : 0);
      case ReduceOp::kOr:
        return from_int((x != 0.0 || y != 0.0) ? 1 : 0);
      case ReduceOp::kXor:
        return from_int(((x != 0.0) != (y != 0.0)) ? 1 : 0);
    }
  } else {
    const std::int64_t x = as_int(a);
    const std::int64_t y = as_int(b);
    switch (op) {
      case ReduceOp::kAdd:
        return from_int(x + y);
      case ReduceOp::kMul:
        return from_int(x * y);
      case ReduceOp::kMax:
        return from_int(std::max(x, y));
      case ReduceOp::kMin:
        return from_int(std::min(x, y));
      case ReduceOp::kAnd:
        return from_int((x != 0 && y != 0) ? 1 : 0);
      case ReduceOp::kOr:
        return from_int((x != 0 || y != 0) ? 1 : 0);
      case ReduceOp::kXor:
        return from_int(x ^ y);
    }
  }
  return 0;
}

Bits reduce(Machine& m, const ContextStack& ctx, const Field& src,
            ReduceOp op) {
  const auto& geom = src.geometry();
  check_context_geometry(geom, ctx, "reduce");
  const auto& mask = ctx.current();
  const auto n_active = ctx.active_count();
  m.charge_reduce(geom.size(), n_active);
  const auto& raw = src.raw();
  const unsigned shards = m.shard_count();
  if (shards > 1 && shard_exact(op, src.type())) {
    // Sharded path: per-shard partial folds, then an ordered combine on
    // the issuing thread (the shard analogue of the scan network's wired
    // combine).  Gated to op/type pairs that regroup bitwise-exactly —
    // float add/mul fall through to the serial fold below.
    const ShardLayout layout = m.shard_layout(geom);
    std::vector<Bits> partial(shards);
    auto& sstats = m.shard_stats();
    m.pool().for_shards(shards, [&](unsigned, unsigned s) {
      Bits local = reduce_identity(op, src.type());
      std::uint64_t lanes = 0;
      for (std::int64_t vp = layout.begin(s); vp < layout.end(s); ++vp) {
        if (mask[static_cast<std::size_t>(vp)] != 0) {
          local = apply_reduce_op(op, src.type(), local,
                                  raw[static_cast<std::size_t>(vp)]);
          ++lanes;
        }
      }
      partial[s] = local;
      sstats[s].ops += 1;
      sstats[s].intra_lanes += lanes;
      sstats[s].exchange_lanes += 1;  // the partial crosses to the combine
    });
    Bits acc = reduce_identity(op, src.type());
    for (unsigned s = 0; s < shards; ++s) {
      acc = apply_reduce_op(op, src.type(), acc, partial[s]);
    }
    return acc;
  }
  Bits acc = reduce_identity(op, src.type());
  for (std::int64_t vp = 0; vp < geom.size(); ++vp) {
    if (mask[static_cast<std::size_t>(vp)] != 0) {
      acc = apply_reduce_op(op, src.type(), acc,
                            raw[static_cast<std::size_t>(vp)]);
    }
  }
  return acc;
}

void scan(Machine& m, const ContextStack& ctx, Field& dst, const Field& src,
          ReduceOp op) {
  check_same_geometry(dst, src, "scan");
  const auto& geom = src.geometry();
  const auto& mask = ctx.current();
  m.charge_reduce(geom.size(), ctx.active_count());
  const auto& in = src.raw();
  auto& out = dst.raw();
  const unsigned shards = m.shard_count();
  if (shards > 1 && shard_exact(op, src.type())) {
    // Sharded path: classic block scan.  Phase 1 — each shard scans its
    // block locally and records its running total; phase 2 (serial) — an
    // exclusive prefix over the shard totals; phase 3 — each shard folds
    // its prefix into its local results.  Exact for the gated ops because
    // apply(prefix, fold(identity, xs)) regroups bitwise to the serial
    // left fold (float add/mul use the serial path below).
    const ShardLayout layout = m.shard_layout(geom);
    std::vector<Bits> partial(shards);
    auto& sstats = m.shard_stats();
    m.pool().for_shards(shards, [&](unsigned, unsigned s) {
      Bits local = reduce_identity(op, src.type());
      std::uint64_t lanes = 0;
      for (std::int64_t vp = layout.begin(s); vp < layout.end(s); ++vp) {
        if (mask[static_cast<std::size_t>(vp)] == 0) continue;
        local = apply_reduce_op(op, src.type(), local,
                                in[static_cast<std::size_t>(vp)]);
        out[static_cast<std::size_t>(vp)] = local;
        ++lanes;
      }
      partial[s] = local;
      sstats[s].ops += 1;
      sstats[s].intra_lanes += lanes;
      sstats[s].exchange_lanes += 1;  // the block total crosses shards
    });
    std::vector<Bits> prefix(shards);
    Bits acc = reduce_identity(op, src.type());
    for (unsigned s = 0; s < shards; ++s) {
      prefix[s] = acc;
      acc = apply_reduce_op(op, src.type(), acc, partial[s]);
    }
    m.pool().for_shards(shards, [&](unsigned, unsigned s) {
      if (s == 0) return;  // prefix is the identity: nothing to fold in
      const Bits p = prefix[s];
      for (std::int64_t vp = layout.begin(s); vp < layout.end(s); ++vp) {
        if (mask[static_cast<std::size_t>(vp)] == 0) continue;
        out[static_cast<std::size_t>(vp)] = apply_reduce_op(
            op, src.type(), p, out[static_cast<std::size_t>(vp)]);
      }
    });
    return;
  }
  Bits acc = reduce_identity(op, src.type());
  for (std::int64_t vp = 0; vp < geom.size(); ++vp) {
    if (mask[static_cast<std::size_t>(vp)] == 0) continue;
    acc = apply_reduce_op(op, src.type(), acc, in[static_cast<std::size_t>(vp)]);
    out[static_cast<std::size_t>(vp)] = acc;
  }
}

bool global_or(Machine& m, const ContextStack& ctx) {
  m.charge_global_or();
  return ctx.any_active();
}

void broadcast(Machine& m, const ContextStack& ctx, Field& dst, Bits value) {
  const auto& geom = dst.geometry();
  m.charge_broadcast(geom.size());
  const auto& mask = ctx.current();
  auto& out = dst.raw();
  const unsigned shards = m.shard_count();
  if (shards > 1) {
    const ShardLayout layout = m.shard_layout(geom);
    auto& sstats = m.shard_stats();
    m.pool().for_shards(shards, [&](unsigned, unsigned s) {
      std::uint64_t lanes = 0;
      for (std::int64_t vp = layout.begin(s); vp < layout.end(s); ++vp) {
        if (mask[static_cast<std::size_t>(vp)] != 0) {
          out[static_cast<std::size_t>(vp)] = value;
          ++lanes;
        }
      }
      sstats[s].ops += 1;
      sstats[s].intra_lanes += lanes;
    });
    return;
  }
  for (std::int64_t vp = 0; vp < geom.size(); ++vp) {
    if (mask[static_cast<std::size_t>(vp)] != 0) {
      out[static_cast<std::size_t>(vp)] = value;
    }
  }
}

}  // namespace uc::cm
