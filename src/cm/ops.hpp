// Functional vector primitives over fields: elementwise map, NEWS shift,
// router get/send, reduce and scan.  These both *do* the work (on the host,
// possibly via the thread pool) and *charge* the machine's cost model, so
// the same primitive serves correctness tests and the performance
// experiments.  The UC VM and the C* baseline DSL are built on these.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cm/context.hpp"
#include "cm/field.hpp"
#include "cm/machine.hpp"

namespace uc::cm {

// Typed views: the CM stores raw bits; these helpers bit-cast.
inline std::int64_t as_int(Bits b) { return std::bit_cast<std::int64_t>(b); }
inline double as_float(Bits b) { return std::bit_cast<double>(b); }
inline Bits from_int(std::int64_t v) { return std::bit_cast<Bits>(v); }
inline Bits from_float(double v) { return std::bit_cast<Bits>(v); }

// Elementwise: dst[vp] = fn(vp) for every VP active in ctx.  One SIMD
// instruction; host work parallelised on the machine's pool.
void elementwise(Machine& m, const ContextStack& ctx, Field& dst,
                 const std::function<Bits(VpIndex)>& fn,
                 std::uint64_t n_ops = 1);

// NEWS shift: dst[vp] = src[vp + delta along axis], for active VPs whose
// source exists; inactive/edge VPs keep their old dst value.  Charges one
// NEWS instruction with |delta| hops.
void news_shift(Machine& m, const ContextStack& ctx, Field& dst,
                const Field& src, std::size_t axis, std::int64_t delta);

// Router get: dst[vp] = src[addr(vp)] for active VPs (addr returns the
// source VP, nullopt to skip).  Charges one router instruction with one
// message per active fetch.
void router_get(Machine& m, const ContextStack& ctx, Field& dst,
                const Field& src, const std::function<std::optional<VpIndex>(VpIndex)>& addr);

// Reduction operators supported by the hardware scan network.
enum class ReduceOp : std::uint8_t { kAdd, kMul, kMax, kMin, kAnd, kOr, kXor };

// Reduce the active elements of src to a single value, returned to the
// front end.  `identity` is returned for an empty active set.  Charges one
// log-depth reduce.  Operates on the *typed* interpretation given by
// src.type().
Bits reduce(Machine& m, const ContextStack& ctx, const Field& src,
            ReduceOp op);

// Inclusive prefix scan along the (flattened) VP order of the active
// elements; inactive positions are left untouched in dst.
void scan(Machine& m, const ContextStack& ctx, Field& dst, const Field& src,
          ReduceOp op);

// Global-OR of the current context: "is any VP active?".
bool global_or(Machine& m, const ContextStack& ctx);

// Broadcast a scalar from the front end into dst for active VPs.
void broadcast(Machine& m, const ContextStack& ctx, Field& dst, Bits value);

// Identity element of op for the given element type (matches the table in
// paper §3.2; INF is modelled as int64/double max).
Bits reduce_identity(ReduceOp op, ElemType type);

// Apply op to two typed payloads.
Bits apply_reduce_op(ReduceOp op, ElemType type, Bits a, Bits b);

}  // namespace uc::cm
