#include "cm/context.hpp"

namespace uc::cm {

ContextStack::ContextStack(const Geometry* geom) : geom_(geom) {
  if (geom_ == nullptr) {
    throw support::ApiError("ContextStack requires a geometry");
  }
  stack_.emplace_back(static_cast<std::size_t>(geom_->size()), 1);
}

void ContextStack::where_else() {
  if (stack_.size() < 2) {
    throw support::ApiError("where_else: no enclosing where");
  }
  const auto& top = stack_.back();
  const auto& below = stack_[stack_.size() - 2];
  std::vector<std::uint8_t> next(top.size());
  for (std::size_t vp = 0; vp < top.size(); ++vp) {
    next[vp] = below[vp] != 0 && top[vp] == 0 ? 1 : 0;
  }
  stack_.pop_back();
  stack_.push_back(std::move(next));
}

void ContextStack::end() {
  if (stack_.size() <= 1) {
    throw support::ApiError("ContextStack::end: stack underflow");
  }
  stack_.pop_back();
}

std::int64_t ContextStack::active_count() const {
  std::int64_t n = 0;
  for (auto b : current()) n += b != 0 ? 1 : 0;
  return n;
}

}  // namespace uc::cm
