#include "cm/geometry.hpp"

#include <sstream>

namespace uc::cm {

Geometry::Geometry(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  if (dims_.empty()) {
    throw support::ApiError("Geometry requires at least one dimension");
  }
  for (auto d : dims_) {
    if (d <= 0) throw support::ApiError("Geometry dimensions must be > 0");
  }
  strides_.assign(dims_.size(), 1);
  for (std::size_t i = dims_.size(); i-- > 0;) {
    if (i + 1 < dims_.size()) strides_[i] = strides_[i + 1] * dims_[i + 1];
  }
  size_ = strides_[0] * dims_[0];
}

VpIndex Geometry::flatten(const std::vector<std::int64_t>& coords) const {
  if (coords.size() != dims_.size()) {
    throw support::ApiError("Geometry::flatten: wrong coordinate rank");
  }
  VpIndex flat = 0;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (coords[i] < 0 || coords[i] >= dims_[i]) {
      throw support::ApiError("Geometry::flatten: coordinate out of range");
    }
    flat += coords[i] * strides_[i];
  }
  return flat;
}

std::vector<std::int64_t> Geometry::unflatten(VpIndex vp) const {
  if (vp < 0 || vp >= size_) {
    throw support::ApiError("Geometry::unflatten: VP index out of range");
  }
  std::vector<std::int64_t> coords(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    coords[i] = vp / strides_[i];
    vp %= strides_[i];
  }
  return coords;
}

bool Geometry::contains(const std::vector<std::int64_t>& coords) const {
  if (coords.size() != dims_.size()) return false;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (coords[i] < 0 || coords[i] >= dims_[i]) return false;
  }
  return true;
}

std::optional<VpIndex> Geometry::neighbor(VpIndex vp, std::size_t axis,
                                          std::int64_t delta) const {
  if (axis >= dims_.size()) {
    throw support::ApiError("Geometry::neighbor: bad axis");
  }
  auto coords = unflatten(vp);
  coords[axis] += delta;
  if (coords[axis] < 0 || coords[axis] >= dims_[axis]) return std::nullopt;
  return flatten(coords);
}

bool Geometry::is_news_neighbor(VpIndex a, VpIndex b) const {
  if (a == b) return false;
  if (a < 0 || b < 0 || a >= size_ || b >= size_) return false;
  auto ca = unflatten(a);
  auto cb = unflatten(b);
  std::int64_t diff_axes = 0;
  bool unit_step = true;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (ca[i] != cb[i]) {
      ++diff_axes;
      if (ca[i] - cb[i] != 1 && cb[i] - ca[i] != 1) unit_step = false;
    }
  }
  return diff_axes == 1 && unit_step;
}

std::string Geometry::to_string() const {
  std::ostringstream os;
  os << "Geometry(";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << "x";
    os << dims_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace uc::cm
