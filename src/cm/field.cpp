#include "cm/field.hpp"

namespace uc::cm {

const char* elem_type_name(ElemType t) {
  switch (t) {
    case ElemType::kInt:
      return "int";
    case ElemType::kFloat:
      return "float";
  }
  return "?";
}

Field::Field(const Geometry* geom, std::string name, ElemType type)
    : geom_(geom), name_(std::move(name)), type_(type) {
  if (geom_ == nullptr) {
    throw support::ApiError("Field requires a geometry");
  }
  data_.assign(static_cast<std::size_t>(geom_->size()), 0);
  defined_.assign(static_cast<std::size_t>(geom_->size()), 0);
}

void Field::fill(Bits value) {
  data_.assign(data_.size(), value);
  defined_.assign(defined_.size(), 1);
}

}  // namespace uc::cm
