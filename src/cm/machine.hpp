// The simulated Connection Machine.  Owns geometries (VP sets), fields
// (per-VP memory), the host thread pool that stands in for the physical
// processor array, the deterministic RNG, and all cost accounting.
//
// Cost charging contract: charge_* methods are called once per issued
// instruction, from the issuing thread only (instruction issue is serial on
// the real front end too).  Elementwise host work *within* an instruction
// may run on the pool.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cm/cost.hpp"
#include "cm/fault.hpp"
#include "cm/field.hpp"
#include "cm/geometry.hpp"
#include "cm/shard.hpp"
#include "cm/thread_pool.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uc::cm {

class PlanCache;  // plan_cache.hpp includes this header

struct GeomId {
  std::int32_t index = -1;
  friend bool operator==(GeomId, GeomId) = default;
};
struct FieldId {
  std::int32_t index = -1;
  friend bool operator==(FieldId, FieldId) = default;
};

struct MachineOptions {
  CostModel cost;
  unsigned host_threads = 1;   // threads in the data-parallel host runtime
  // Shard count for the sharded execution path (docs/SHARDING.md): the VP
  // set is split into this many contiguous blocks, each processed by one
  // worker per instruction with explicit cross-shard exchange phases.
  // 1 = unsharded (the original single-region path); 0 = one shard per
  // host thread.  Purely a host-execution knob — outputs and modeled
  // cycles are bit-identical for every value.
  unsigned shards = 1;
  std::uint64_t seed = 1;      // RNG seed (rand() in UC programs, oneof picks)
  // Record a Paris-style instruction trace (the CM-2 assembly interface the
  // paper's compiler was being retargeted to, §5).  One line per issued
  // machine instruction; costs memory, off by default.
  bool record_paris_trace = false;
  // Fault injection (docs/ROBUSTNESS.md).  Default-constructed = disabled:
  // the charge_* fast paths are then byte-for-byte the pre-fault-layer
  // code, so cycles and outputs are unchanged.
  FaultSpec faults;
  // Field-allocation memory cap in bytes (payload + defined flag); 0 =
  // unlimited.  Exceeding it throws UcRuntimeError instead of OOM-killing
  // the host.
  std::uint64_t max_field_bytes = 0;
};

// A restorable snapshot of machine state: every live field's payload and
// defined flags, plus the machine RNG.  Cost stats and the fault injector
// are deliberately NOT captured — recovery costs real cycles, and
// restoring the fault schedule would replay the same fault forever.
struct MachineImage {
  struct FieldImage {
    std::int32_t slot = -1;
    std::vector<Bits> data;
    std::vector<std::uint8_t> defined;
  };
  std::vector<FieldImage> fields;
  std::uint64_t rng_state = 0;
  std::int64_t words() const;  // total payload words captured
};

class Machine {
 public:
  explicit Machine(MachineOptions options = {});
  ~Machine();

  const CostModel& cost_model() const { return options_.cost; }
  const MachineOptions& options() const { return options_; }

  GeomId create_geometry(std::vector<std::int64_t> dims);
  const Geometry& geometry(GeomId id) const;

  FieldId allocate_field(GeomId geom, std::string name, ElemType type);
  Field& field(FieldId id);
  const Field& field(FieldId id) const;
  void free_field(FieldId id);

  ThreadPool& pool() { return *pool_; }
  support::SplitMix64& rng() { return rng_; }

  // ---- Shard model (docs/SHARDING.md) ----

  // Resolved shard count: options.shards, with 0 meaning "one per host
  // thread"; never less than 1.
  unsigned shard_count() const { return shard_count_; }
  // The contiguous-block partition of a geometry's VP range.
  ShardLayout shard_layout(const Geometry& geom) const {
    return ShardLayout(geom.size(), shard_count_);
  }
  // Cache of cross-shard exchange schedules for static-source ops, keyed
  // over (geometry, axis, delta, shard count, layout epoch).
  PlanCache& exchange_cache() { return *exchange_cache_; }
  // Monotonic counter folded into every exchange key.  Bumped whenever
  // the VP↔data mapping may have changed under the cache's feet (array
  // (re)declaration, map-section remap, checkpoint restore), which retires
  // every previously recorded schedule without scanning the cache.
  std::uint64_t layout_epoch() const { return layout_epoch_; }
  void note_layout_change() { ++layout_epoch_; }
  // Per-shard host-observability counters.  Each slot is written only by
  // the worker processing that shard inside a fork-join region; read them
  // between instructions.  Empty until a sharded op runs.
  const std::vector<ShardStats>& shard_stats() const { return shard_stats_; }
  std::vector<ShardStats>& shard_stats() { return shard_stats_; }
  void reset_shard_stats() {
    shard_stats_.assign(shard_count_, ShardStats{});
  }

  const CostStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CostStats{}; }

  // The Paris-style trace (empty unless options.record_paris_trace).
  const std::vector<std::string>& paris_trace() const { return trace_; }
  void clear_paris_trace() { trace_.clear(); }

  // ---- Cost charging (once per issued instruction) ----

  // Scalar work on the front end.
  void charge_frontend(std::uint64_t n_ops = 1);
  // One SIMD elementwise instruction over a VP set of the given size;
  // n_ops elementary ALU/memory steps per VP.  `planned` means the front
  // end replayed a cached issue plan (src/cm/plan_cache.hpp): the per-VP
  // work is unchanged but issue overhead drops to plan_issue_overhead.
  void charge_vector_op(std::int64_t vp_set_size, std::uint64_t n_ops = 1,
                        bool planned = false);
  // One instruction whose operand arrives over the NEWS grid, `hops` grid
  // steps away (|delta| in the shifted-access pattern).
  void charge_news(std::int64_t vp_set_size, std::uint64_t hops = 1);
  // One instruction using the general router, delivering n_messages.
  // Delivery happens in waves of at most `physical_processors` messages.
  void charge_router(std::int64_t vp_set_size, std::uint64_t n_messages);
  // One log-depth reduce/scan instruction over n_elems operands living in a
  // VP set of the given size.  `planned` as for charge_vector_op: a cached
  // scan tree is replayed instead of rebuilt.
  void charge_reduce(std::int64_t vp_set_size, std::int64_t n_elems,
                     bool planned = false);
  // Global-OR over the current context (hardware wired-OR).
  void charge_global_or();
  // Front-end broadcast of a scalar to a VP set.
  void charge_broadcast(std::int64_t vp_set_size);

  // ---- Robustness layer (docs/ROBUSTNESS.md) ----

  const FaultInjector& fault_injector() const { return injector_; }
  // Mutable access, for durable-snapshot restore only: a resume sets the
  // injector RNG back to the captured schedule position so post-resume
  // fault draws — and therefore cycles — match the uninterrupted run.
  FaultInjector& fault_injector() { return injector_; }
  // One VM-level replay (statement retry or checkpoint restore).
  void note_rollback() { stats_.rollbacks += 1; }
  // One snapshot persisted to disk / one restore from disk
  // (docs/ROBUSTNESS.md "Durable checkpoints & resume").  Host-side
  // counters only: neither charges modeled cycles, so --checkpoint-dir
  // and --resume are cycle-neutral.
  void note_durable_checkpoint() { stats_.durable_checkpoints += 1; }
  void note_resume() { stats_.resumes += 1; }
  // One statement issued from a cached communication/issue plan
  // (src/cm/plan_cache.hpp).  Pure counter — the cycle savings land via
  // the `planned` flag on charge_vector_op / charge_reduce.
  void note_plan_hit() { stats_.plan_hits += 1; }
  // One checkpoint capture copying `words` field words: charged like a
  // streaming vector copy so the robustness overhead shows up in cycles.
  void charge_checkpoint(std::int64_t words);
  // Bytes currently allocated to fields (payload + defined flags).
  std::uint64_t field_bytes() const { return field_bytes_; }

  MachineImage snapshot_state() const;
  void restore_state(const MachineImage& image);

  // Durable-restore hooks: a resumed process re-executes the run prefix
  // deterministically, then jumps machine accounting forward to the
  // captured values (restored stats are always >= the prefix's — the
  // delta is the skipped window's charges) and pins the layout epoch to
  // the captured one so restored plan-cache entries stay valid.  Only the
  // durable-checkpoint layer calls these (docs/ROBUSTNESS.md).
  void set_stats(const CostStats& s) { stats_ = s; }
  void set_layout_epoch(std::uint64_t e) { layout_epoch_ = e; }

 private:
  // Runs the detection/retry protocol for one protected instruction whose
  // single attempt costs `attempt_cycles` and touches `units` failure
  // units.  Charges detection overhead, any backoff + re-issue cycles, and
  // throws support::TransientFault when max_retries consecutive attempts
  // fail.  No-op (zero cycles) when kind `k` is not under injection.
  void faultable(FaultKind k, std::uint64_t units,
                 std::uint64_t attempt_cycles);
  MachineOptions options_;
  std::vector<std::unique_ptr<Geometry>> geometries_;
  std::vector<std::unique_ptr<Field>> fields_;  // slot reuse after free
  std::vector<std::int32_t> free_field_slots_;
  std::unique_ptr<ThreadPool> pool_;
  unsigned shard_count_ = 1;
  std::unique_ptr<PlanCache> exchange_cache_;
  std::uint64_t layout_epoch_ = 0;
  std::vector<ShardStats> shard_stats_;
  support::SplitMix64 rng_;
  FaultInjector injector_;
  std::uint64_t field_bytes_ = 0;
  CostStats stats_;
  std::vector<std::string> trace_;
  void trace(std::string line) {
    if (options_.record_paris_trace) trace_.push_back(std::move(line));
  }
};

}  // namespace uc::cm
