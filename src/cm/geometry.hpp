// VP-set geometries: the shape of a set of virtual processors.  A geometry
// is a dense N-dimensional grid (N in 1..3 covers everything UC needs);
// VPs are identified by their row-major flat index.  NEWS neighbours are
// adjacent along one axis; everything else goes through the router.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace uc::cm {

using VpIndex = std::int64_t;  // flat VP id within a geometry

class Geometry {
 public:
  explicit Geometry(std::vector<std::int64_t> dims);

  std::size_t rank() const { return dims_.size(); }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t dim(std::size_t axis) const { return dims_.at(axis); }
  std::int64_t size() const { return size_; }

  // Row-major flattening; throws ApiError if out of range.
  VpIndex flatten(const std::vector<std::int64_t>& coords) const;
  std::vector<std::int64_t> unflatten(VpIndex vp) const;

  bool contains(const std::vector<std::int64_t>& coords) const;

  // The VP one step along `axis` (delta = +/-1 .. +/-k).  nullopt if the
  // step leaves the grid.  Steps of magnitude 1 are NEWS-neighbour cheap;
  // larger magnitudes still route over the grid but cost |delta| hops.
  std::optional<VpIndex> neighbor(VpIndex vp, std::size_t axis,
                                  std::int64_t delta) const;

  // True when two VPs are adjacent along exactly one axis (a single NEWS
  // hop); used by the machine to classify remote accesses.
  bool is_news_neighbor(VpIndex a, VpIndex b) const;

  std::string to_string() const;

  friend bool operator==(const Geometry& a, const Geometry& b) {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> strides_;  // row-major
  std::int64_t size_ = 1;
};

}  // namespace uc::cm
