// Shard decomposition of the simulated CM (docs/SHARDING.md).
//
// A ShardLayout partitions a geometry's flat VP order into S contiguous
// coordinate blocks, one per shard.  Each shard owns its block of every
// field allocated in that geometry (the per-shard storage slice) and is
// processed by one host worker per SIMD instruction, so shard-local work
// never shares cache lines with another shard's writes.
//
// Cross-shard data motion is explicit: an op that needs a value owned by
// another shard does not reach into the foreign block mid-pass.  Instead
// the op is decomposed into an intra-shard pass plus an exchange phase
// driven by an ExchangeSchedule — the list, per destination shard, of
// (dst, src) lanes whose source lives in a foreign block.  The schedule is
// built once per (geometry, axis, delta, shard count, layout epoch) and
// cached in the machine's exchange PlanCache; executing it is
// gather-then-commit in recorded (ascending dst) lane order, which is what
// keeps sharded outputs bit-identical to the unsharded machine.
//
// Sharding is a *host execution* concept, like the thread pool: it never
// changes what the modeled machine charges.  Outputs and modeled cycles
// are bit-identical for any shard count; only host wall time and the
// per-shard utilization counters (ShardStats) vary.
#pragma once

#include <cstdint>
#include <vector>

#include "cm/geometry.hpp"

namespace uc::cm {

// Contiguous-block partition of the flat VP range [0, size) into S shards.
// Blocks are ceil(size/S) wide; trailing shards may be empty when S exceeds
// the VP count.  Cheap to construct (two divisions), so layouts are built
// on demand rather than cached.
class ShardLayout {
 public:
  ShardLayout(std::int64_t size, unsigned shards);

  unsigned shard_count() const { return shards_; }
  std::int64_t size() const { return size_; }
  std::int64_t block() const { return block_; }

  // The half-open flat-VP block owned by shard s (empty when begin==end).
  std::int64_t begin(unsigned s) const {
    const auto b = static_cast<std::int64_t>(s) * block_;
    return b < size_ ? b : size_;
  }
  std::int64_t end(unsigned s) const {
    const auto e = (static_cast<std::int64_t>(s) + 1) * block_;
    return e < size_ ? e : size_;
  }

  // The shard owning a VP; vp must be in [0, size).
  unsigned owner(VpIndex vp) const {
    return static_cast<unsigned>(vp / block_);
  }

  // True when src lives in the same block as dst (no exchange needed).
  bool same_shard(VpIndex a, VpIndex b) const {
    return a / block_ == b / block_;
  }

 private:
  std::int64_t size_ = 0;
  std::int64_t block_ = 1;
  unsigned shards_ = 1;
};

// A cross-shard exchange schedule: for each destination shard, the lanes
// whose source VP is owned by a different shard, in ascending dst order.
// Built once (and cached) for shift-style ops whose source function is
// static; router ops with data-dependent addresses build a transient
// schedule per instruction.
struct ExchangeSchedule {
  struct Lane {
    VpIndex dst = 0;
    VpIndex src = 0;
  };
  std::vector<std::vector<Lane>> per_shard;  // indexed by owner(dst)

  std::uint64_t remote_lanes() const {
    std::uint64_t n = 0;
    for (const auto& v : per_shard) n += v.size();
    return n;
  }
};

// Builds the exchange schedule for a NEWS shift (dst[vp] = src[vp+delta
// along axis]): every in-grid source that crosses a shard boundary.  The
// schedule is mask-independent — activity is checked at execution time, so
// one schedule serves every context the statement runs under.
ExchangeSchedule build_shift_exchange(const Geometry& geom,
                                      const ShardLayout& layout,
                                      std::size_t axis, std::int64_t delta);

// Host-side observability counters for one shard (docs/SHARDING.md).
// Like the ThreadPool utilization counters these never affect results or
// modeled cycles; each shard's slot is written only by the worker
// processing that shard inside a fork-join region, so no synchronisation
// is needed beyond the pool's own join.
struct ShardStats {
  std::uint64_t ops = 0;             // sharded instructions touching this shard
  std::uint64_t intra_lanes = 0;     // lanes satisfied inside the block
  std::uint64_t exchange_lanes = 0;  // lanes fed through an exchange phase
};

}  // namespace uc::cm
