// Communication-plan cache for the simulated CM front end.
//
// On the real machine the front end spends significant time per statement
// computing router permutations, NEWS shift schedules and scan trees before
// it can stream microcode to the sequencer.  Inside a loop those plans are
// identical from one iteration to the next whenever the mapping, the
// geometry and the access signature of the statement have not changed — so
// we cache them.  A cache hit replays the recorded charge recipe with the
// reduced `plan_issue_overhead` instead of the full `issue_overhead`, which
// is exactly the saving a plan-reusing front end would see.
//
// The cache stores *charge recipes*, never data: dynamic communication
// statistics (which lanes actually went through the router this round) are
// always recomputed by the executing engine, so data-dependent behaviour
// stays honest.  Keys are caller-computed signatures covering (mapping
// epoch, geometry, access/structure signature); the VM builds them in
// interp_expr.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cm/machine.hpp"
#include "cm/shard.hpp"

namespace uc::cm {

// One front-end charge recorded while a statement was first issued.
struct PlanCharge {
  enum class Kind : std::uint8_t {
    kFrontend,  // charge_frontend(n)
    kVectorOp,  // charge_vector_op(n, m) — planned on replay
    kRouter,    // charge_router(n, m)
    kReduce,    // charge_reduce(n, m)   — planned on replay
  };
  Kind kind = Kind::kFrontend;
  std::int64_t n = 0;  // VP-set size (op count for kFrontend)
  std::int64_t m = 1;  // per-VP ops / router messages / reduce elems
};

// A processor-optimisation decision (paper §4) recorded on an AST node
// while charging; replays must re-apply it so the executing engine makes
// the same partitioning choice.  Opaque to the cm layer — the VM owns the
// node type and the cast back.
struct PlanAnnotation {
  const void* site = nullptr;
  bool optimized = false;
};

struct Plan {
  std::vector<PlanCharge> charges;
  std::vector<PlanAnnotation> annotations;
  std::uint64_t hits = 0;
};

class PlanCache {
 public:
  // nullptr on miss.
  Plan* find(std::uint64_t key);
  Plan& insert(std::uint64_t key, Plan plan);
  void clear() {
    plans_.clear();
    exchanges_.clear();
  }
  std::size_t size() const { return plans_.size(); }
  // Read-only view of the charge-recipe entries, for durable-snapshot
  // serialization (docs/ROBUSTNESS.md "Durable checkpoints & resume").
  // Exchange schedules are host-only derivations and deliberately stay
  // out: a resumed process rebuilds them on demand.
  const std::unordered_map<std::uint64_t, Plan>& entries() const {
    return plans_;
  }

  // ---- Cross-shard exchange schedules (docs/SHARDING.md) ----
  // Same idea as charge-recipe plans, different payload: the per-shard
  // remote-lane lists for a static-source op (NEWS shift) are a pure
  // function of (geometry, axis, delta, shard count, layout epoch), so
  // they are built once and replayed.  Keys are caller-built with mix()
  // over exactly those inputs; a layout epoch bump retires stale entries
  // by changing every key.  nullptr on miss; the returned schedule stays
  // valid until clear() (values are behind unique_ptr, so rehashing does
  // not move them while an op is mid-execution).
  const ExchangeSchedule* find_exchange(std::uint64_t key) const;
  const ExchangeSchedule& insert_exchange(std::uint64_t key,
                                          ExchangeSchedule sched);
  std::size_t exchange_size() const { return exchanges_.size(); }
  std::uint64_t exchange_hits() const { return exchange_hits_; }

  // Issue every recorded charge against `machine` with the reduced planned
  // issue overhead and count the hit.  Re-applying annotations is the
  // caller's job (the node type lives above this layer).
  static void replay(Machine& machine, Plan& plan);

  // Incremental key mixing (splitmix-style avalanche) for building
  // signatures out of dims, symbols and flags.
  static std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }

 private:
  std::unordered_map<std::uint64_t, Plan> plans_;
  std::unordered_map<std::uint64_t, std::unique_ptr<ExchangeSchedule>>
      exchanges_;
  mutable std::uint64_t exchange_hits_ = 0;
};

}  // namespace uc::cm
