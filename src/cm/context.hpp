// Context (activity) flags: the CM's mechanism for conditional execution.
// A ContextStack holds a stack of per-VP masks for one geometry; `where`
// pushes the conjunction of the current mask and a new condition, `end`
// pops.  Instructions executed under a context still occupy the whole VP
// set for a cycle (SIMD), which is why the Machine charges by set size, not
// by active count.
#pragma once

#include <cstdint>
#include <vector>

#include "cm/geometry.hpp"
#include "support/error.hpp"

namespace uc::cm {

class ContextStack {
 public:
  explicit ContextStack(const Geometry* geom);

  const Geometry& geometry() const { return *geom_; }

  // Push a mask equal to (current mask AND pred(vp)) for every VP.
  template <typename Pred>
  void where(Pred&& pred) {
    const auto& top = current();
    std::vector<std::uint8_t> next(top.size());
    for (std::size_t vp = 0; vp < top.size(); ++vp) {
      next[vp] = top[vp] != 0 && pred(static_cast<VpIndex>(vp)) ? 1 : 0;
    }
    stack_.push_back(std::move(next));
  }

  // Push the complement of the top mask relative to the one below it
  // (the `else` of the most recent where).
  void where_else();

  void end();

  bool is_active(VpIndex vp) const {
    return current()[static_cast<std::size_t>(vp)] != 0;
  }
  std::int64_t active_count() const;
  bool any_active() const { return active_count() > 0; }

  std::size_t depth() const { return stack_.size(); }

  const std::vector<std::uint8_t>& current() const { return stack_.back(); }

 private:
  const Geometry* geom_;
  std::vector<std::vector<std::uint8_t>> stack_;
};

}  // namespace uc::cm
