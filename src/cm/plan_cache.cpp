#include "cm/plan_cache.hpp"

namespace uc::cm {

Plan* PlanCache::find(std::uint64_t key) {
  auto it = plans_.find(key);
  return it == plans_.end() ? nullptr : &it->second;
}

Plan& PlanCache::insert(std::uint64_t key, Plan plan) {
  return plans_[key] = std::move(plan);
}

const ExchangeSchedule* PlanCache::find_exchange(std::uint64_t key) const {
  auto it = exchanges_.find(key);
  if (it == exchanges_.end()) return nullptr;
  ++exchange_hits_;
  return it->second.get();
}

const ExchangeSchedule& PlanCache::insert_exchange(std::uint64_t key,
                                                   ExchangeSchedule sched) {
  auto& slot = exchanges_[key];
  slot = std::make_unique<ExchangeSchedule>(std::move(sched));
  return *slot;
}

void PlanCache::replay(Machine& machine, Plan& plan) {
  plan.hits += 1;
  machine.note_plan_hit();
  for (const auto& c : plan.charges) {
    switch (c.kind) {
      case PlanCharge::Kind::kFrontend:
        machine.charge_frontend(static_cast<std::uint64_t>(c.n));
        break;
      case PlanCharge::Kind::kVectorOp:
        machine.charge_vector_op(c.n, static_cast<std::uint64_t>(c.m),
                                 /*planned=*/true);
        break;
      case PlanCharge::Kind::kRouter:
        machine.charge_router(c.n, static_cast<std::uint64_t>(c.m));
        break;
      case PlanCharge::Kind::kReduce:
        machine.charge_reduce(c.n, c.m, /*planned=*/true);
        break;
    }
  }
}

}  // namespace uc::cm
