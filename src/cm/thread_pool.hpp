// A small fixed-size thread pool with a chunked parallel_for.  This is the
// threaded data-parallel runtime that stands in for the CM-2's physical
// processor array: elementwise (per-VP) host work inside one simulated SIMD
// instruction is split into chunks and executed by the workers.
//
// Design notes (following the structured-parallelism idiom of the OpenMP
// examples and the C++ Core Guidelines CP rules):
//   * parallel_for is a fork-join region: it returns only when every chunk
//     has finished, so callers never see torn state;
//   * worker threads are joined in the destructor (RAII, no detached
//     threads);
//   * with thread_count <= 1 the loop runs inline, which keeps the pool
//     usable on single-core machines with zero overhead;
//   * exceptions thrown by chunk bodies are captured and rethrown on the
//     calling thread; when several chunks throw, the one covering the
//     lowest range wins, so the reported error is deterministic for any
//     chunk completion order;
//   * nested use is safe: a region body that issues pool work (shard
//     workers do, docs/SHARDING.md) runs the inner region inline on its
//     own worker — the pool holds one job at a time, and an inner posting
//     would otherwise clobber it and deadlock the outer join.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uc::cm {

class ThreadPool {
 public:
  // thread_count == 0 means "one per hardware thread"; when the platform
  // cannot report its concurrency (hardware_concurrency() == 0 is a legal
  // return) the pool falls back to a single thread explicitly.
  explicit ThreadPool(unsigned thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()) + 1; }

  // Jobs at or below this many elements run inline on the calling thread:
  // posting a job takes a mutex round-trip plus a condition-variable
  // broadcast (microseconds), which dwarfs the body work for tiny VP sets
  // and dominated per-statement cost on small-geometry programs.  The
  // cutoff applies on top of the caller's min_grain (whichever is larger).
  static constexpr std::int64_t kInlineCutoff = 256;

  // Calls fn(begin, end) on subranges covering [begin, end).  Blocks until
  // all subranges complete.  The caller's thread participates.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& fn,
                    std::int64_t min_grain = 1024);

  // Like parallel_for, but fn also receives a stable worker id in
  // [0, thread_count()): 0 is the calling thread, 1.. are pool workers.  At
  // most one chunk runs per worker id at a time, so callers can index
  // per-worker scratch state (arenas) without synchronisation.
  void parallel_for_indexed(
      std::int64_t begin, std::int64_t end,
      const std::function<void(unsigned, std::int64_t, std::int64_t)>& fn,
      std::int64_t min_grain = 1024);

  // Shard dispatch (docs/SHARDING.md): calls fn(worker, shard) once per
  // shard in [0, count), one chunk per shard so each shard's block is
  // processed by exactly one worker per region (worker affinity without
  // the inline cutoff folding all shards onto the caller).  `worker` is
  // the executing worker id, usable for per-worker arenas exactly as in
  // parallel_for_indexed.  Blocks until every shard completes.
  void for_shards(unsigned count,
                  const std::function<void(unsigned, unsigned)>& fn);

  // ---- Utilization counters (host-side observability, docs/PROFILING.md).
  // Counters only ever grow; they do not affect scheduling, results, or
  // modeled cycles.  Read them between parallel regions (the pool is
  // quiescent then, so no synchronisation is needed on the reader side).
  // Nested (inline) regions are not counted: their chunks already execute
  // inside an outer counted region, and the counters are written by the
  // top-level issuing thread only.

  // Number of parallel_for / parallel_for_indexed / for_shards regions
  // executed, including ones that ran inline on the calling thread.
  std::uint64_t jobs_executed() const { return jobs_executed_; }
  // Of jobs_executed(): regions that ran inline without posting to the
  // workers (single-threaded pool, or at most max(min_grain, kInlineCutoff)
  // elements).
  std::uint64_t inline_jobs() const { return inline_jobs_; }
  // Chunks executed by each worker id (0 = calling thread).  Imbalance
  // between entries is host-scheduling skew, invisible in modeled cycles.
  const std::vector<std::uint64_t>& chunks_per_worker() const {
    return chunks_per_worker_;
  }
  // Sum of chunks_per_worker() — cheap enough to snapshot per profile scope.
  std::uint64_t total_chunks() const {
    std::uint64_t sum = 0;
    for (auto c : chunks_per_worker_) sum += c;
    return sum;
  }

 private:
  struct Job {
    const std::function<void(unsigned, std::int64_t, std::int64_t)>* fn =
        nullptr;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::int64_t next = 0;        // next unclaimed chunk start
    std::int64_t outstanding = 0; // chunks claimed but not finished
    std::uint64_t epoch = 0;
    std::exception_ptr error;
    std::int64_t error_begin = 0; // chunk_begin of the captured error
  };

  void worker_loop(unsigned worker_id);
  // Claims and runs chunks of the current job until none remain.
  void run_chunks(std::unique_lock<std::mutex>& lock, unsigned worker_id);
  // Posts [begin, end) with the given grain, participates, waits for the
  // drain, and rethrows the winning error.  Caller has checked for nesting
  // and the inline fast path.
  void run_pooled(std::int64_t begin, std::int64_t end,
                  const std::function<void(unsigned, std::int64_t,
                                           std::int64_t)>& fn,
                  std::int64_t grain);

  std::mutex mu_;
  std::condition_variable work_cv_;  // signalled when a job is posted / quit
  std::condition_variable done_cv_;  // signalled when a job fully drains
  Job job_;
  bool quit_ = false;
  std::vector<std::thread> workers_;
  std::uint64_t jobs_executed_ = 0;  // issuing thread only
  std::uint64_t inline_jobs_ = 0;    // issuing thread only
  std::vector<std::uint64_t> chunks_per_worker_;  // slot per worker id
};

}  // namespace uc::cm
