#include "cm/cost.hpp"

#include <sstream>

namespace uc::cm {

CostStats& CostStats::operator+=(const CostStats& o) {
  cycles += o.cycles;
  vector_ops += o.vector_ops;
  news_ops += o.news_ops;
  router_ops += o.router_ops;
  router_messages += o.router_messages;
  reductions += o.reductions;
  global_ors += o.global_ors;
  broadcasts += o.broadcasts;
  frontend_ops += o.frontend_ops;
  faults += o.faults;
  retries += o.retries;
  rollbacks += o.rollbacks;
  checkpoints += o.checkpoints;
  plan_hits += o.plan_hits;
  return *this;
}

CostStats& CostStats::operator-=(const CostStats& o) {
  cycles -= o.cycles;
  vector_ops -= o.vector_ops;
  news_ops -= o.news_ops;
  router_ops -= o.router_ops;
  router_messages -= o.router_messages;
  reductions -= o.reductions;
  global_ors -= o.global_ors;
  broadcasts -= o.broadcasts;
  frontend_ops -= o.frontend_ops;
  faults -= o.faults;
  retries -= o.retries;
  rollbacks -= o.rollbacks;
  checkpoints -= o.checkpoints;
  plan_hits -= o.plan_hits;
  return *this;
}

std::string CostStats::to_string(const CostModel& model) const {
  std::ostringstream os;
  os << "cycles=" << cycles << " (" << model.cycles_to_seconds(cycles)
     << " s @" << model.clock_hz / 1e6 << "MHz)"
     << " vector_ops=" << vector_ops << " news_ops=" << news_ops
     << " router_ops=" << router_ops << " router_msgs=" << router_messages
     << " reductions=" << reductions << " global_ors=" << global_ors
     << " broadcasts=" << broadcasts << " frontend_ops=" << frontend_ops;
  // Robustness counters only when the layer did anything, so faults-off
  // stats render exactly as before the layer existed.
  if (faults != 0 || retries != 0 || rollbacks != 0 || checkpoints != 0) {
    os << " faults=" << faults << " retries=" << retries
       << " rollbacks=" << rollbacks << " checkpoints=" << checkpoints;
  }
  // Plan-cache counter only when the cache fired, so fuse=off stats render
  // exactly as before the cache existed.
  if (plan_hits != 0) {
    os << " plan_hits=" << plan_hits;
  }
  return os.str();
}

}  // namespace uc::cm
