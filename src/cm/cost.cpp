#include "cm/cost.hpp"

#include <sstream>

namespace uc::cm {

CostStats& CostStats::operator+=(const CostStats& o) {
  cycles += o.cycles;
  vector_ops += o.vector_ops;
  news_ops += o.news_ops;
  router_ops += o.router_ops;
  router_messages += o.router_messages;
  reductions += o.reductions;
  global_ors += o.global_ors;
  broadcasts += o.broadcasts;
  frontend_ops += o.frontend_ops;
  faults += o.faults;
  retries += o.retries;
  rollbacks += o.rollbacks;
  checkpoints += o.checkpoints;
  plan_hits += o.plan_hits;
  durable_checkpoints += o.durable_checkpoints;
  resumes += o.resumes;
  return *this;
}

CostStats& CostStats::operator-=(const CostStats& o) {
  cycles -= o.cycles;
  vector_ops -= o.vector_ops;
  news_ops -= o.news_ops;
  router_ops -= o.router_ops;
  router_messages -= o.router_messages;
  reductions -= o.reductions;
  global_ors -= o.global_ors;
  broadcasts -= o.broadcasts;
  frontend_ops -= o.frontend_ops;
  faults -= o.faults;
  retries -= o.retries;
  rollbacks -= o.rollbacks;
  checkpoints -= o.checkpoints;
  plan_hits -= o.plan_hits;
  durable_checkpoints -= o.durable_checkpoints;
  resumes -= o.resumes;
  return *this;
}

std::string CostStats::to_string(const CostModel& model) const {
  std::ostringstream os;
  os << "cycles=" << cycles << " (" << model.cycles_to_seconds(cycles)
     << " s @" << model.clock_hz / 1e6 << "MHz)"
     << " vector_ops=" << vector_ops << " news_ops=" << news_ops
     << " router_ops=" << router_ops << " router_msgs=" << router_messages
     << " reductions=" << reductions << " global_ors=" << global_ors
     << " broadcasts=" << broadcasts << " frontend_ops=" << frontend_ops;
  // Robustness counters only when the layer did anything, so faults-off
  // stats render exactly as before the layer existed.
  if (faults != 0 || retries != 0 || rollbacks != 0 || checkpoints != 0) {
    os << " faults=" << faults << " retries=" << retries
       << " rollbacks=" << rollbacks << " checkpoints=" << checkpoints;
  }
  // Plan-cache counter only when the cache fired, so fuse=off stats render
  // exactly as before the cache existed.
  if (plan_hits != 0) {
    os << " plan_hits=" << plan_hits;
  }
  // Durable-checkpoint counters, each gated on its own activity so a
  // resumed run's stats line differs from the uninterrupted baseline only
  // in the resume count itself (soak compares the cycles= field).
  if (durable_checkpoints != 0) {
    os << " durable_checkpoints=" << durable_checkpoints;
  }
  if (resumes != 0) {
    os << " resumes=" << resumes;
  }
  return os.str();
}

}  // namespace uc::cm
