#include "cm/fault.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "support/error.hpp"
#include "support/str.hpp"

namespace uc::cm {

using support::format;

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kRouter: return "router";
    case FaultKind::kNews: return "news";
    case FaultKind::kReduce: return "reduce";
    case FaultKind::kMemory: return "memory";
  }
  return "?";
}

double FaultSpec::probability(FaultKind k) const {
  switch (k) {
    case FaultKind::kRouter: return router_p;
    case FaultKind::kNews: return news_p;
    case FaultKind::kReduce: return reduce_p;
    case FaultKind::kMemory: return memory_p;
  }
  return 0.0;
}

std::string FaultSpec::to_string() const {
  std::string out;
  auto clause = [&](const char* kind, double p) {
    if (p <= 0) return;
    if (!out.empty()) out += ";";
    out += format("%s:p=%g", kind, p);
  };
  clause("router", router_p);
  clause("news", news_p);
  clause("reduce", reduce_p);
  clause("memory", memory_p);
  if (out.empty()) return "off";
  out += format(",seed=%llu,retries=%llu,backoff=%llu,detect=%llu",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(max_retries),
                static_cast<unsigned long long>(backoff_cycles),
                static_cast<unsigned long long>(detect_cycles));
  return out;
}

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw support::ApiError("bad fault spec '" + spec + "': " + why);
}

double parse_prob(const std::string& spec, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      std::isnan(p)) {
    bad_spec(spec, "'" + value + "' is not a probability");
  }
  if (p < 0.0 || p > 1.0) {
    bad_spec(spec, "probability " + value + " is outside [0,1]");
  }
  return p;
}

std::uint64_t parse_count(const std::string& spec, const std::string& key,
                          const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const std::uint64_t n = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      value[0] == '-') {
    bad_spec(spec, key + "= wants a non-negative integer, got '" + value +
                       "'");
  }
  return n;
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  if (spec.empty()) bad_spec(spec, "empty spec");

  // Duplicate entries are rejected, not last-writer-wins: a spec like
  // "router:p=0.1;router:p=0" almost certainly means the user edited one
  // clause and forgot the other, and silently keeping either value makes
  // the injection schedule differ from what they reviewed.
  bool seen_kind[4] = {false, false, false, false};
  bool seen_global[4] = {false, false, false, false};  // seed/retries/backoff/detect

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string clause =
        spec.substr(pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (clause.empty()) bad_spec(spec, "empty clause");

    // `kind:` prefix selects which probability `p=` applies to; a clause
    // without one may only carry global keys.
    double* p_slot = nullptr;
    std::string params = clause;
    const std::size_t colon = clause.find(':');
    if (colon != std::string::npos) {
      const std::string kind = clause.substr(0, colon);
      params = clause.substr(colon + 1);
      int kind_ix = -1;
      if (kind == "router") {
        p_slot = &out.router_p;
        kind_ix = 0;
      } else if (kind == "news") {
        p_slot = &out.news_p;
        kind_ix = 1;
      } else if (kind == "reduce" || kind == "scan") {
        p_slot = &out.reduce_p;
        kind_ix = 2;
      } else if (kind == "memory" || kind == "field") {
        p_slot = &out.memory_p;
        kind_ix = 3;
      } else {
        bad_spec(spec, "unknown fault kind '" + kind +
                           "' (want router, news, reduce or memory)");
      }
      if (seen_kind[kind_ix]) {
        bad_spec(spec, "duplicate clause for fault kind '" + kind + "'");
      }
      seen_kind[kind_ix] = true;
    }
    bool seen_p = false;

    std::size_t ppos = 0;
    while (ppos <= params.size()) {
      const std::size_t comma = params.find(',', ppos);
      const std::string param =
          params.substr(ppos, comma == std::string::npos ? std::string::npos
                                                         : comma - ppos);
      ppos = comma == std::string::npos ? params.size() + 1 : comma + 1;
      if (param.empty()) bad_spec(spec, "empty parameter");
      const std::size_t eq = param.find('=');
      if (eq == std::string::npos) {
        bad_spec(spec, "parameter '" + param + "' is not key=value");
      }
      const std::string key = param.substr(0, eq);
      const std::string value = param.substr(eq + 1);
      const auto check_global = [&](int ix) {
        if (seen_global[ix]) bad_spec(spec, "duplicate key '" + key + "'");
        seen_global[ix] = true;
      };
      if (key == "p") {
        if (p_slot == nullptr) {
          bad_spec(spec, "p= outside a kind clause (write e.g. router:p=" +
                             value + ")");
        }
        if (seen_p) bad_spec(spec, "duplicate p= in clause '" + clause + "'");
        seen_p = true;
        *p_slot = parse_prob(spec, value);
      } else if (key == "seed") {
        check_global(0);
        out.seed = parse_count(spec, key, value);
      } else if (key == "retries") {
        check_global(1);
        out.max_retries = parse_count(spec, key, value);
      } else if (key == "backoff") {
        check_global(2);
        out.backoff_cycles = parse_count(spec, key, value);
      } else if (key == "detect") {
        check_global(3);
        out.detect_cycles = parse_count(spec, key, value);
      } else {
        bad_spec(spec, "unknown key '" + key +
                           "' (want p, seed, retries, backoff or detect)");
      }
    }
  }
  return out;
}

FaultInjector::FaultInjector(const FaultSpec& spec)
    : spec_(spec), rng_(spec.seed) {}

bool FaultInjector::draw_failure(FaultKind k, std::uint64_t units) {
  const double p = spec_.probability(k);
  if (p <= 0.0 || units == 0) return false;
  if (p >= 1.0) return true;
  // P(attempt fails) = 1 - (1-p)^units, computed in log space so tiny
  // per-unit probabilities over huge unit counts stay exact.
  const double q =
      -std::expm1(static_cast<double>(units) * std::log1p(-p));
  return rng_.next_double() < q;
}

std::uint64_t FaultInjector::backoff(std::uint64_t consecutive) const {
  const std::uint64_t doublings =
      consecutive > 0 ? (consecutive - 1 > 10 ? 10 : consecutive - 1) : 0;
  return spec_.backoff_cycles << doublings;
}

}  // namespace uc::cm
