// A Field is one word of memory per virtual processor in a geometry — the
// CM analogue of an array distributed across the machine.  Storage is raw
// 64-bit payloads (the VM bit-casts int64 / double in and out) plus a
// per-element "defined" flag used by the solve construct's general
// lowering (undefined until first assignment).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cm/geometry.hpp"
#include "support/error.hpp"

namespace uc::cm {

using Bits = std::uint64_t;

enum class ElemType : std::uint8_t { kInt, kFloat };

const char* elem_type_name(ElemType t);

class Field {
 public:
  Field(const Geometry* geom, std::string name, ElemType type);

  const Geometry& geometry() const { return *geom_; }
  const std::string& name() const { return name_; }
  ElemType type() const { return type_; }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }

  Bits get(VpIndex vp) const {
    check(vp);
    return data_[static_cast<std::size_t>(vp)];
  }
  void set(VpIndex vp, Bits value) {
    check(vp);
    data_[static_cast<std::size_t>(vp)] = value;
    defined_[static_cast<std::size_t>(vp)] = 1;
  }

  bool is_defined(VpIndex vp) const {
    check(vp);
    return defined_[static_cast<std::size_t>(vp)] != 0;
  }
  void clear_defined() { defined_.assign(defined_.size(), 0); }
  void clear_defined_at(VpIndex vp) {
    check(vp);
    defined_[static_cast<std::size_t>(vp)] = 0;
  }
  void fill(Bits value);

  std::vector<Bits>& raw() { return data_; }
  const std::vector<Bits>& raw() const { return data_; }
  // Raw defined-flag storage, exposed for checkpoint capture/restore
  // (docs/ROBUSTNESS.md); everyone else goes through is_defined().
  std::vector<std::uint8_t>& defined_raw() { return defined_; }
  const std::vector<std::uint8_t>& defined_raw() const { return defined_; }

 private:
  void check(VpIndex vp) const {
    if (vp < 0 || vp >= size()) {
      throw support::ApiError("Field '" + name_ + "': VP index out of range");
    }
  }

  const Geometry* geom_;
  std::string name_;
  ElemType type_;
  std::vector<Bits> data_;
  std::vector<std::uint8_t> defined_;
};

}  // namespace uc::cm
