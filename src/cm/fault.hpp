// Deterministic fault injection for the simulated CM (docs/ROBUSTNESS.md).
//
// The paper's CM-2 was real hardware: routers dropped messages, NEWS links
// glitched, scans mis-accumulated, memory words took bit flips.  This layer
// simulates those transient failures with independent per-unit
// probabilities, a seeded RNG (same spec => same fault schedule), and the
// detection/recovery protocol every message-passing machine ends up with:
// per-transfer checksums and router acks detect a bad attempt, the
// instruction is re-issued after an exponential backoff, and a bounded
// number of consecutive failures escalates to a support::TransientFault
// that the VM's checkpoint layer can roll back across.
//
// Detection is modeled as perfect: a faulted attempt never silently
// corrupts data, it only costs cycles.  That is what makes outputs under
// injected faults bit-identical to fault-free runs — exactly the property
// the differential tests assert.
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.hpp"

namespace uc::cm {

// The fault domains, matching the charge_* entry points of Machine:
//   kRouter — general router message drop/corruption (per message)
//   kNews   — NEWS-grid link failure (per hop x time slice)
//   kReduce — transient scan/reduce step failure (per step x time slice)
//   kMemory — VP-field bit flip under an elementwise op (per VP word)
enum class FaultKind : std::uint8_t { kRouter, kNews, kReduce, kMemory };

const char* fault_kind_name(FaultKind k);

// Parsed form of a --faults= spec string.  Grammar (see parse_fault_spec):
//
//   spec    := clause (';' clause)*
//   clause  := kind ':' params | params
//   kind    := router | news | reduce | scan | memory | field
//   params  := param (',' param)*
//   param   := 'p=' PROB            per-unit fault probability (kind clause)
//            | 'seed=' N            fault-schedule RNG seed (global)
//            | 'retries=' N         max re-issues per instruction (global)
//            | 'backoff=' N         base backoff cycles, doubles per
//                                   consecutive failure (global)
//            | 'detect=' N          checksum/ack verification cycles charged
//                                   per protected instruction (global)
//
// e.g.  --faults=router:p=1e-4;news:p=1e-5,seed=42
struct FaultSpec {
  double router_p = 0.0;
  double news_p = 0.0;
  double reduce_p = 0.0;
  double memory_p = 0.0;

  std::uint64_t seed = 0xfa175eedull;  // default fault-schedule seed
  std::uint64_t max_retries = 8;     // re-issues before TransientFault
  std::uint64_t backoff_cycles = 8;  // base; doubles per consecutive failure
  std::uint64_t detect_cycles = 4;   // checksum/ack cost per instruction

  bool enabled() const {
    return router_p > 0 || news_p > 0 || reduce_p > 0 || memory_p > 0;
  }
  double probability(FaultKind k) const;
  std::string to_string() const;
};

// Parses the --faults= grammar above; throws support::ApiError with a
// message naming the offending clause on any syntax or range error.
FaultSpec parse_fault_spec(const std::string& spec);

// Draws the fault schedule.  One instance lives in each Machine; all draws
// happen on the issuing thread (instruction issue is serial), so the
// schedule is deterministic for any host thread count.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec);

  const FaultSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled(); }
  bool enabled(FaultKind k) const { return spec_.probability(k) > 0; }

  // One detection draw for an instruction attempt touching `units`
  // independent failure units (messages, hops, words, ...).  True = the
  // attempt failed its checksum/ack and must be re-issued.  The per-attempt
  // failure probability is 1 - (1-p)^units; `units == 0` never fails and
  // consumes no randomness.
  bool draw_failure(FaultKind k, std::uint64_t units);

  // Backoff charged before re-issue number `consecutive` (1-based):
  // backoff_cycles << (consecutive-1), capped at 10 doublings.
  std::uint64_t backoff(std::uint64_t consecutive) const;

  // Schedule state, for durable snapshots: restoring it makes the
  // post-resume fault schedule identical to the uninterrupted run's, so
  // cycle counts stay bit-identical under faults.  (In-memory rollback
  // deliberately does NOT restore it — rewinding the schedule would
  // replay the same fault forever; durable resume only ever continues
  // forward, so the hazard does not apply.)
  std::uint64_t rng_state() const { return rng_.state(); }
  void set_rng_state(std::uint64_t s) { rng_.seed(s); }

 private:
  FaultSpec spec_;
  support::SplitMix64 rng_;
};

}  // namespace uc::cm
