#include "cm/shard.hpp"

#include "support/error.hpp"

namespace uc::cm {

ShardLayout::ShardLayout(std::int64_t size, unsigned shards)
    : size_(size), shards_(shards == 0 ? 1 : shards) {
  if (size < 0) {
    throw support::ApiError("ShardLayout: negative VP-set size");
  }
  // ceil(size / shards), minimum 1 so owner() never divides by zero on an
  // empty geometry.
  block_ = size_ > 0
               ? (size_ + static_cast<std::int64_t>(shards_) - 1) /
                     static_cast<std::int64_t>(shards_)
               : 1;
  if (block_ < 1) block_ = 1;
}

ExchangeSchedule build_shift_exchange(const Geometry& geom,
                                      const ShardLayout& layout,
                                      std::size_t axis, std::int64_t delta) {
  ExchangeSchedule sched;
  sched.per_shard.resize(layout.shard_count());
  // A shift along the innermost axes moves sources by a bounded flat
  // offset, so only VPs within |offset| of a block edge can cross; scanning
  // the whole range keeps the code shape simple and is a one-time cost per
  // (geometry, axis, delta, shard count) thanks to the exchange cache.
  for (VpIndex vp = 0; vp < geom.size(); ++vp) {
    const auto src = geom.neighbor(vp, axis, delta);
    if (!src || layout.same_shard(vp, *src)) continue;
    sched.per_shard[layout.owner(vp)].push_back({vp, *src});
  }
  return sched;
}

}  // namespace uc::cm
