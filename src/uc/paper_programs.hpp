// The UC programs from the paper, parameterised by problem size.  These
// are shared by the test suite (correctness against sequential
// references), the examples and the benchmark harness (Figs 6-8).
//
// Sources follow the paper's figures:
//   Fig 1  — reductions showcase
//   Fig 2  — *par prefix sums          Fig 3 — seq/par partial sums
//   Fig 4  — shortest path, O(N^2) parallelism
//   Fig 5  — shortest path, O(N^3) parallelism
//   §3.6   — wavefront via solve; *solve shortest path
//   §3.7   — odd-even transposition sort via *oneof
//   Fig 11 — grid shortest path with an obstacle (goal at (0,0))
//   §4     — digit histogram (processor optimisation example)
#pragma once

#include <cstdint>
#include <string>

namespace uc::papers {

// Fig 4.  Random edge weights in 1..N (seeded via srand(seed)); d[i][i]=0.
std::string shortest_path_on2(std::int64_t n, std::uint64_t seed = 11);

// Fig 5.  Same initialisation; log2(n) rounds of min-plus squaring.
std::string shortest_path_on3(std::int64_t n, std::uint64_t seed = 11);

// §3.6.  Same problem expressed with *solve (fixed point).
std::string shortest_path_star_solve(std::int64_t n, std::uint64_t seed = 11);

// Fig 11.  rows×cols grid, goal at (0,0), diagonal wall with a gap; the
// iterative relaxation runs to a fixed point.  Unreachable cells keep INF.
std::string grid_shortest_path(std::int64_t rows, std::int64_t cols,
                               bool with_obstacle = true);

// Fig 2 (prefix sums via *par) over n elements, a[i] initialised to i.
std::string prefix_sums_star_par(std::int64_t n);

// Fig 3 (partial sums via seq nested in par).
std::string prefix_sums_seq_par(std::int64_t n);

// §3.4 ranksort of n distinct pseudo-random integers.
std::string ranksort(std::int64_t n, std::uint64_t seed = 13);

// §3.7 odd-even transposition sort.
std::string odd_even_sort(std::int64_t n, std::uint64_t seed = 13);

// §3.6 wavefront matrix (solve).
std::string wavefront(std::int64_t n);

// §4 digit histogram: count[j] = $+(I st (samples[i]==j) 1).
std::string histogram(std::int64_t n_samples);

// §4 mapping example: a[i] = a[i] + b[i+1] repeated `rounds` times, with
// or without the permute map section that co-locates b[i+1] with a[i].
std::string shifted_sum(std::int64_t n, std::int64_t rounds, bool with_map);

// Reversal kernel a[i] = b[N-1-i], with or without a permute mapping.
std::string reversal(std::int64_t n, std::int64_t rounds, bool with_map);

// fold demo: a[i] = a[i] + a[N-1-i], with or without the fold mapping.
std::string fold_combine(std::int64_t n, std::int64_t rounds, bool with_map);

// copy demo: every row sums a shared vector v (broadcast-heavy), with or
// without `copy (I) v;`.
std::string copy_broadcast(std::int64_t n, std::int64_t rounds,
                           bool with_map);

// §5 extension — "obstacles may also be moved dynamically": two-phase grid
// shortest path; the wall moves one diagonal down between phases and the
// distances are recomputed (the relaxation lives in a helper function,
// showing UC functions may contain parallel constructs when called from
// the front end).
std::string grid_dynamic_obstacle(std::int64_t rows, std::int64_t cols);

// §5 extension — the numerical workload class the paper reports as "in
// progress" (CFD/Jacobi): `iters` sweeps of 5-point Jacobi relaxation on
// an n×n float grid with fixed boundary u = (10 i + j) / n.
std::string jacobi(std::int64_t n, std::int64_t iters);

}  // namespace uc::papers
