#include "uc/uc.hpp"

#include "analysis/pass.hpp"
#include "codegen/cstar_emit.hpp"
#include "codegen/pretty.hpp"
#include "support/error.hpp"
#include "xform/const_fold.hpp"
#include "xform/map_rewrite.hpp"
#include "xform/solve_lower.hpp"

namespace uc {

Program::Program(std::unique_ptr<lang::CompilationUnit> unit)
    : unit_(std::move(unit)) {}

Program::Program(Program&&) noexcept = default;
Program& Program::operator=(Program&&) noexcept = default;
Program::~Program() = default;

Program Program::compile(std::string name, std::string source,
                         CompileOptions options) {
  auto unit = lang::compile(std::move(name), std::move(source));
  if (!unit->ok()) {
    throw support::UcCompileError(unit->diags.render_all());
  }
  bool changed = false;
  if (options.fold_constants) {
    changed |= xform::fold_constants(*unit->program) > 0;
  }
  if (options.rewrite_permutes) {
    changed |=
        xform::rewrite_affine_permutes(*unit->program).rewritten_mappings > 0;
  }
  if (options.lower_solve) {
    changed |= xform::lower_solves(*unit->program).lowered > 0;
  }
  if (changed) {
    lang::reanalyze(*unit);
    if (!unit->ok()) {
      throw support::UcCompileError(
          "internal error: transformed program fails semantic analysis:\n" +
          unit->diags.render_all());
    }
  }
  return Program(std::move(unit));
}

std::string Program::check(std::string name, std::string source) {
  auto unit = lang::compile(std::move(name), std::move(source));
  return unit->ok() ? std::string() : unit->diags.render_all();
}

AnalyzeResult analyze(std::string name, std::string source,
                      const AnalyzeOptions& options) {
  AnalyzeResult result;
  auto unit = lang::compile(std::move(name), std::move(source));
  if (!unit->ok()) {
    result.text = unit->diags.render_all();
    result.errors = unit->diags.error_count();
    return result;
  }
  result.compiled = true;

  analysis::AnalysisOptions opts;
  opts.cost = options.machine.cost;
  analysis::Report report = analysis::run_default_analysis(*unit, opts);

  analysis::RenderOptions render;
  render.include_notes = options.include_notes;
  render.include_summary = options.include_summary;
  result.text = report.render(unit->file.get(), render);
  result.json = report.json(unit->file.get());
  result.errors = report.error_count();
  result.warnings = report.warning_count();
  result.notes = report.note_count();
  return result;
}

vm::RunResult Program::run(cm::MachineOptions machine_options,
                           vm::ExecOptions exec_options) const {
  cm::Machine machine(machine_options);
  return run_on(machine, exec_options);
}

vm::RunResult Program::run_on(cm::Machine& machine,
                              vm::ExecOptions exec_options) const {
  vm::Interp interp(*unit_, machine, exec_options);
  return interp.run();
}

ProfileResult Program::profile(const ProfileOptions& options) const {
  prof::Profiler profiler(options.capture_trace);

  cm::Machine machine(options.machine);
  vm::ExecOptions exec = options.exec;
  exec.profiler = &profiler;

  ProfileResult result;
  try {
    result.run = run_on(machine, exec);
    result.stats = result.run.stats();
  } catch (const support::UcRuntimeError& e) {
    // A timeout, memory-cap hit or escalated fault mid-profile: keep the
    // attribution gathered so far so the caller can still print the table
    // alongside the machine's partial statistics (docs/ROBUSTNESS.md).
    result.aborted = true;
    result.error = e.what();
    result.stats = machine.stats();
  }
  result.model = machine.cost_model();

  result.pool.threads = machine.pool().thread_count();
  result.pool.jobs = machine.pool().jobs_executed();
  result.pool.chunks = machine.pool().chunks_per_worker();
  if (machine.shard_count() > 1) {
    result.pool.shards = machine.shard_stats();
  }

  if (options.join_static) {
    // Static-vs-dynamic join: classify every parallel access with the
    // `ucc analyze` passes and annotate each dynamic site whose source
    // range covers the access.  The analysis runs on the same (possibly
    // transformed) unit the VM executed, so offsets line up exactly.
    analysis::AnalysisOptions aopts;
    aopts.cost = options.machine.cost;
    analysis::Report report = analysis::run_default_analysis(*unit_, aopts);
    for (auto& site : profiler.sites()) {
      if (site.end_offset <= site.begin_offset) continue;
      bool seen[4] = {false, false, false, false};
      for (const auto& fn : report.functions) {
        for (const auto& access : fn.accesses) {
          const auto at = access.range.begin.offset;
          if (at < site.begin_offset || at >= site.end_offset) continue;
          seen[static_cast<std::size_t>(access.cls)] = true;
        }
      }
      std::string classes;
      for (std::size_t c = 0; c < 4; ++c) {
        if (!seen[c]) continue;
        if (!classes.empty()) classes += '+';
        classes += analysis::comm_class_name(static_cast<analysis::CommClass>(c));
      }
      site.static_classes = std::move(classes);
    }
  }

  result.sites = profiler.sites();
  result.events = profiler.events();
  return result;
}

std::string ProfileResult::table(const prof::TableOptions& opts) const {
  return prof::render_table(sites, model, stats, pool, opts);
}

std::string ProfileResult::json() const {
  return prof::sites_json(sites, stats, pool);
}

std::string ProfileResult::trace() const {
  return prof::trace_json(sites, events);
}

std::string Program::to_uc_source() const {
  return codegen::print_program(*unit_->program);
}

std::string Program::to_cstar_source() const {
  return codegen::emit_cstar(*unit_);
}

}  // namespace uc
