#include "uc/paper_programs.hpp"

#include <bit>

#include "support/str.hpp"

namespace uc::papers {

using support::format;

namespace {

// Initialisation shared by the shortest-path programs: d[i][i] = 0 and
// d[i][j] = rand()%N + 1 otherwise (paper Fig 4).
std::string sp_init(std::int64_t n, std::uint64_t seed) {
  return format(
      "#define N %lld\n"
      "index_set I:i = {0..N-1}, J:j = I, K:k = I;\n"
      "int d[N][N];\n"
      "void init() {\n"
      "  srand(%llu);\n"
      "  par (I, J) st (i==j) d[i][j] = 0;\n"
      "    others d[i][j] = rand() %% N + 1;\n"
      "}\n",
      static_cast<long long>(n), static_cast<unsigned long long>(seed));
}

std::int64_t ceil_log2(std::int64_t n) {
  if (n <= 1) return 1;
  return static_cast<std::int64_t>(
      std::bit_width(static_cast<std::uint64_t>(n - 1)));
}

}  // namespace

std::string shortest_path_on2(std::int64_t n, std::uint64_t seed) {
  return sp_init(n, seed) +
         "void main() {\n"
         "  init();\n"
         "  seq (K)\n"
         "    par (I, J)\n"
         "      st (d[i][k] + d[k][j] < d[i][j])\n"
         "        d[i][j] = d[i][k] + d[k][j];\n"
         "}\n";
}

std::string shortest_path_on3(std::int64_t n, std::uint64_t seed) {
  return sp_init(n, seed) +
         format("index_set L:l = {0..%lld};\n",
                static_cast<long long>(ceil_log2(n) - 1)) +
         "void main() {\n"
         "  init();\n"
         "  seq (L)\n"
         "    par (I, J)\n"
         "      d[i][j] = $<(K; d[i][k] + d[k][j]);\n"
         "}\n";
}

std::string shortest_path_star_solve(std::int64_t n, std::uint64_t seed) {
  return sp_init(n, seed) +
         "void main() {\n"
         "  init();\n"
         "  *solve (I, J)\n"
         "    d[i][j] = $<(K; d[i][k] + d[k][j]);\n"
         "}\n";
}

std::string grid_shortest_path(std::int64_t rows, std::int64_t cols,
                               bool with_obstacle) {
  // Cells hold the distance to the goal G at (0,0); obstacle cells hold
  // WALL and are disconnected.  The paper's obstacle (Fig 11) is the
  // anti-diagonal band |i - R/2| <= R/4 of i+j == R-1; we leave the j==0
  // column open so the far side stays reachable.
  std::string src = format(
      "#define R %lld\n"
      "#define C %lld\n"
      "#define WALL (0 - 2)\n"
      "index_set I:i = {0..R-1}, J:j = {0..C-1};\n"
      "index_set D:dir = {0..3};\n"
      "int d[R][C];\n",
      static_cast<long long>(rows), static_cast<long long>(cols));
  if (with_obstacle) {
    src +=
        "void init() {\n"
        "  par (I, J)\n"
        "    st (i+j == R-1 && abs(i - R/2) <= R/4 && j != 0)\n"
        "      d[i][j] = WALL;\n"
        "    others d[i][j] = INF;\n"
        "  d[0][0] = 0;\n"
        "}\n";
  } else {
    src +=
        "void init() {\n"
        "  par (I, J) d[i][j] = INF;\n"
        "  d[0][0] = 0;\n"
        "}\n";
  }
  // min(INF, 1 + ...) clamps unreachable cells at INF so the fixed point
  // exists even when the obstacle seals off part of the grid.
  src +=
      "void main() {\n"
      "  init();\n"
      "  *solve (I, J)\n"
      "    st (d[i][j] != WALL && !(i==0 && j==0))\n"
      "      d[i][j] = min(INF, 1 + $<(D\n"
      "        st (i + (dir==0) - (dir==1) >= 0 &&\n"
      "            i + (dir==0) - (dir==1) <= R-1 &&\n"
      "            j + (dir==2) - (dir==3) >= 0 &&\n"
      "            j + (dir==2) - (dir==3) <= C-1 &&\n"
      "            d[i + (dir==0) - (dir==1)][j + (dir==2) - (dir==3)]\n"
      "              != WALL)\n"
      "          d[i + (dir==0) - (dir==1)][j + (dir==2) - (dir==3)]));\n"
      "}\n";
  return src;
}

std::string prefix_sums_star_par(std::int64_t n) {
  return format(
      "#define N %lld\n"
      "index_set I:i = {0..N-1};\n"
      "int a[N], cnt[N];\n"
      "void main() {\n"
      "  par (I) { a[i] = i; cnt[i] = 0; }\n"
      "  *par (I) st (i >= power2(cnt[i]))\n"
      "  { a[i] = a[i] + a[i - power2(cnt[i])];\n"
      "    cnt[i] = cnt[i] + 1;\n"
      "  }\n"
      "}\n",
      static_cast<long long>(n));
}

std::string prefix_sums_seq_par(std::int64_t n) {
  return format(
      "#define N %lld\n"
      "#define LOGN %lld\n"
      "index_set I:i = {0..N-1}, J:j = {0..LOGN-1};\n"
      "int a[N];\n"
      "void main() {\n"
      "  par (I)\n"
      "  { a[i] = i;\n"
      "    seq (J) st (i - power2(j) >= 0)\n"
      "      a[i] = a[i] + a[i - power2(j)];\n"
      "  }\n"
      "}\n",
      static_cast<long long>(n), static_cast<long long>(ceil_log2(n)));
}

std::string ranksort(std::int64_t n, std::uint64_t seed) {
  return format(
      "#define N %lld\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N];\n"
      "void main() {\n"
      "  srand(%llu);\n"
      // Distinct keys (paper assumes distinctness): value = perm via
      // multiplicative hash of i over 2N then tie-broken by i.
      "  par (I) a[i] = (i * 2654435761) %% (8 * N) * N + i;\n"
      "  par (I)\n"
      "  { int rank;\n"
      "    rank = $+(J st (a[j] < a[i]) 1);\n"
      "    a[rank] = a[i];\n"
      "  }\n"
      "}\n",
      static_cast<long long>(n), static_cast<unsigned long long>(seed));
}

std::string odd_even_sort(std::int64_t n, std::uint64_t seed) {
  return format(
      "#define N %lld\n"
      "int x[N];\n"
      "index_set I:i = {0..N-2}, ALL:q = {0..N-1};\n"
      "void main() {\n"
      "  srand(%llu);\n"
      "  par (ALL) x[q] = (q * 2654435761) %% (8 * N);\n"
      "  *oneof (I)\n"
      "    st (i%%2==0 && x[i]>x[i+1]) swap(x[i], x[i+1]);\n"
      "    st (i%%2!=0 && x[i]>x[i+1]) swap(x[i], x[i+1]);\n"
      "}\n",
      static_cast<long long>(n), static_cast<unsigned long long>(seed));
}

std::string wavefront(std::int64_t n) {
  return format(
      "#define N %lld\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "int a[N][N];\n"
      "void main() {\n"
      "  solve (I, J)\n"
      "    a[i][j] = (i==0 || j==0) ? 1\n"
      "      : a[i-1][j] + a[i-1][j-1] + a[i][j-1];\n"
      "}\n",
      static_cast<long long>(n));
}

std::string histogram(std::int64_t n_samples) {
  return format(
      "#define N %lld\n"
      "int samples[N];\n"
      "int count[10];\n"
      "index_set I:i = {0..N-1}, J:j = {0..9};\n"
      "void main() {\n"
      "  par (I) samples[i] = rand() %% 10;\n"
      "  par (J)\n"
      "    count[j] = $+(I st (samples[i]==j) 1);\n"
      "}\n",
      static_cast<long long>(n_samples));
}

std::string shifted_sum(std::int64_t n, std::int64_t rounds, bool with_map) {
  std::string src = format(
      "#define N %lld\n"
      "index_set I:i = {0..N-1};\n"
      "index_set T:t = {0..%lld};\n"
      "int a[N], b[N];\n",
      static_cast<long long>(n), static_cast<long long>(rounds - 1));
  if (with_map) {
    // Paper §4: map the (i+1)-th element of b onto the processor holding
    // the i-th element of a, turning a[i] = a[i] + b[i+1] into a local op.
    src += "map (I) { permute (I) b[i+1] :- a[i]; }\n";
  }
  src +=
      "void main() {\n"
      "  par (I) { a[i] = i; b[i] = 2 * i; }\n"
      "  seq (T)\n"
      "    par (I) st (i < N-1) a[i] = a[i] + b[i+1];\n"
      "}\n";
  return src;
}

std::string reversal(std::int64_t n, std::int64_t rounds, bool with_map) {
  std::string src = format(
      "#define N %lld\n"
      "index_set I:i = {0..N-1};\n"
      "index_set T:t = {0..%lld};\n"
      "int a[N], b[N];\n",
      static_cast<long long>(n), static_cast<long long>(rounds - 1));
  if (with_map) {
    src += "map (I) { permute (I) b[N-1-i] :- a[i]; }\n";
  }
  src +=
      "void main() {\n"
      "  par (I) { a[i] = 0; b[i] = i * i; }\n"
      "  seq (T)\n"
      "    par (I) a[i] = a[i] + b[N-1-i];\n"
      "}\n";
  return src;
}

std::string fold_combine(std::int64_t n, std::int64_t rounds, bool with_map) {
  std::string src = format(
      "#define N %lld\n"
      "index_set I:i = {0..N-1}, H:h = {0..N/2-1};\n"
      "index_set T:t = {0..%lld};\n"
      "int a[N], out[N];\n",
      static_cast<long long>(n), static_cast<long long>(rounds - 1));
  if (with_map) {
    // Fold the upper half of `a` back onto the lower half's processors so
    // a[h] and a[N-1-h] are co-resident.
    src += "map (H) { fold (H) a[N-1-h] :- a[h]; }\n";
  }
  src +=
      "void main() {\n"
      "  par (I) a[i] = i + 1;\n"
      "  seq (T)\n"
      "    par (H) out[h] = a[h] + a[N-1-h];\n"
      "}\n";
  return src;
}

std::string copy_broadcast(std::int64_t n, std::int64_t rounds,
                           bool with_map) {
  std::string src = format(
      "#define N %lld\n"
      "index_set I:i = {0..N-1}, J:j = I;\n"
      "index_set T:t = {0..%lld};\n"
      "int v[N], m[N][N];\n",
      static_cast<long long>(n), static_cast<long long>(rounds - 1));
  if (with_map) {
    // Replicate v along J so every (i,j) reads v[j] locally.
    src += "map (I) { copy (J) v; }\n";
  }
  src +=
      "void main() {\n"
      "  par (I) v[i] = i * 3;\n"
      "  seq (T)\n"
      "    par (I, J) m[i][j] = m[i][j] + v[j];\n"
      "}\n";
  return src;
}

std::string grid_dynamic_obstacle(std::int64_t rows, std::int64_t cols) {
  // Two obstacle positions: the Fig 11 anti-diagonal band, then the same
  // band shifted one diagonal away from the goal.  relax() is an ordinary
  // UC function containing the parallel fixed-point computation.
  return format(
             "#define R %lld\n"
             "#define C %lld\n"
             "#define WALL (0 - 2)\n"
             "index_set I:i = {0..R-1}, J:j = {0..C-1};\n"
             "index_set D:dir = {0..3};\n"
             "int d[R][C];\n",
             static_cast<long long>(rows), static_cast<long long>(cols)) +
         "void relax() {\n"
         "  *solve (I, J)\n"
         "    st (d[i][j] != WALL && !(i==0 && j==0))\n"
         "      d[i][j] = min(INF, 1 + $<(D\n"
         "        st (i + (dir==0) - (dir==1) >= 0 &&\n"
         "            i + (dir==0) - (dir==1) <= R-1 &&\n"
         "            j + (dir==2) - (dir==3) >= 0 &&\n"
         "            j + (dir==2) - (dir==3) <= C-1 &&\n"
         "            d[i + (dir==0) - (dir==1)][j + (dir==2) - (dir==3)]\n"
         "              != WALL)\n"
         "          d[i + (dir==0) - (dir==1)][j + (dir==2) - (dir==3)]));\n"
         "}\n"
         "void place(int band) {\n"
         "  par (I, J)\n"
         "    st (i+j == band && abs(i - R/2) <= R/4 && j != 0)\n"
         "      d[i][j] = WALL;\n"
         "    others d[i][j] = INF;\n"
         "  d[0][0] = 0;\n"
         "}\n"
         "void main() {\n"
         "  place(R-1);\n"
         "  relax();\n"
         "  /* the obstacle moves; all non-wall distances are recomputed */\n"
         "  place(R);\n"
         "  relax();\n"
         "}\n";
}

std::string jacobi(std::int64_t n, std::int64_t iters) {
  return format(
             "#define N %lld\n"
             "index_set I:i = {0..N-1}, J:j = I;\n"
             "index_set T:t = {1..%lld};\n"
             "float u[N][N], v[N][N];\n",
             static_cast<long long>(n), static_cast<long long>(iters)) +
         "void main() {\n"
         "  par (I, J)\n"
         "    st (i==0 || i==N-1 || j==0 || j==N-1)\n"
         "      u[i][j] = (i * 10.0 + j) / N;\n"
         "    others u[i][j] = 0.0;\n"
         "  par (I, J) v[i][j] = u[i][j];\n"
         "  seq (T) {\n"
         "    par (I, J) st (i>0 && i<N-1 && j>0 && j<N-1)\n"
         "      v[i][j] = 0.25 * (u[i-1][j] + u[i+1][j]\n"
         "                        + u[i][j-1] + u[i][j+1]);\n"
         "    par (I, J) u[i][j] = v[i][j];\n"
         "  }\n"
         "}\n";
}

}  // namespace uc::papers
