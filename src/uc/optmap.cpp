// uc::optimize_map — the emitter + replay-validator over the static
// mapping optimiser (src/analysis/optmap.*, docs/MAPPING.md).
//
// The static layer ranks dependence-legal mapping assignments; this layer
// makes them real: it rewrites the program (dropping any existing `map`
// sections on the chosen arrays and appending the chosen one), re-runs
// semantic analysis, and replays both versions on the simulated machine.
// An assignment is accepted only when the replay is bit-identical in
// output and strictly cheaper in modeled cycles — otherwise the next
// ranked assignment is tried, and the original program wins by default.
#include <algorithm>
#include <set>

#include "analysis/optmap.hpp"
#include "codegen/pretty.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "uc/uc.hpp"

namespace uc {

namespace {

using analysis::Assignment;
using analysis::MapChoice;
using analysis::MapChoiceKind;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += support::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

lang::ExprPtr make_ident(const std::string& name) {
  auto e = std::make_unique<lang::IdentExpr>();
  e->name = name;
  return e;
}

lang::ExprPtr make_int(std::int64_t value) {
  auto e = std::make_unique<lang::IntLitExpr>();
  e->value = value;
  return e;
}

lang::ExprPtr make_binary(lang::BinaryOp op, lang::ExprPtr lhs,
                          lang::ExprPtr rhs) {
  auto e = std::make_unique<lang::BinaryExpr>();
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

std::string elem_name_of(const MapChoice& c) {
  if (c.set != nullptr && c.set->index_set != nullptr &&
      c.set->index_set->elem != nullptr) {
    return c.set->index_set->elem->name;
  }
  return "i";
}

// Target subscript of `permute (S) T[g(i)] :- T[i]` realising placement
// pos(v) = coeff*v + offset: g(i) = coeff*i - coeff*offset.
lang::ExprPtr permute_target_subscript(const MapChoice& c,
                                       const std::string& elem) {
  if (c.coeff == 1) {
    if (c.offset == 0) return make_ident(elem);
    if (c.offset > 0) {
      return make_binary(lang::BinaryOp::kSub, make_ident(elem),
                         make_int(c.offset));
    }
    return make_binary(lang::BinaryOp::kAdd, make_ident(elem),
                       make_int(-c.offset));
  }
  // coeff == -1: g(i) = offset - i.
  return make_binary(lang::BinaryOp::kSub, make_int(c.offset),
                     make_ident(elem));
}

// Builds the chosen `map` section as an AST statement (names only; sema
// re-resolves them in the rewritten unit).
std::unique_ptr<lang::MapSectionStmt> build_map_section(
    const std::vector<MapChoice>& choices) {
  auto section = std::make_unique<lang::MapSectionStmt>();
  std::set<std::string> header;
  for (const auto& c : choices) {
    if (c.kind == MapChoiceKind::kIdentity || c.array == nullptr ||
        c.set == nullptr) {
      continue;
    }
    const std::string elem = elem_name_of(c);
    lang::Mapping m;
    m.index_sets = {c.set->name};
    m.target_array = c.array->name;
    switch (c.kind) {
      case MapChoiceKind::kCopy:
        m.kind = lang::MapKind::kCopy;
        break;
      case MapChoiceKind::kPermute:
        m.kind = lang::MapKind::kPermute;
        m.target_subscripts.push_back(permute_target_subscript(c, elem));
        m.source_array = c.array->name;
        m.source_subscripts.push_back(make_ident(elem));
        break;
      case MapChoiceKind::kFold:
        m.kind = lang::MapKind::kFold;
        m.target_subscripts.push_back(make_binary(lang::BinaryOp::kSub,
                                                  make_int(c.extent - 1),
                                                  make_ident(elem)));
        m.source_array = c.array->name;
        m.source_subscripts.push_back(make_ident(elem));
        break;
      case MapChoiceKind::kIdentity:
        continue;
    }
    header.insert(c.set->name);
    section->mappings.push_back(std::move(m));
  }
  if (section->mappings.empty()) return nullptr;
  section->index_sets.assign(header.begin(), header.end());
  return section;
}

// Rewrites a freshly compiled unit to carry the assignment: existing
// top-level map sections lose every mapping that targets a chosen array
// (the assignment replaces them), and the chosen section is appended as
// the last top-level item so startup applies it after all declarations.
bool apply_assignment(lang::CompilationUnit& unit,
                      const std::vector<MapChoice>& choices) {
  std::set<std::string> chosen;
  for (const auto& c : choices) {
    if (c.array != nullptr) chosen.insert(c.array->name);
  }

  auto& items = unit.program->items;
  for (auto it = items.begin(); it != items.end();) {
    auto* section =
        it->decl != nullptr && it->decl->kind == lang::StmtKind::kMapSection
            ? static_cast<lang::MapSectionStmt*>(it->decl.get())
            : nullptr;
    if (section == nullptr) {
      ++it;
      continue;
    }
    auto& maps = section->mappings;
    maps.erase(std::remove_if(maps.begin(), maps.end(),
                              [&](const lang::Mapping& m) {
                                return chosen.count(m.target_array) != 0;
                              }),
               maps.end());
    it = maps.empty() ? items.erase(it) : it + 1;
  }

  auto section = build_map_section(choices);
  if (section != nullptr) {
    lang::TopLevel item;
    item.decl = std::move(section);
    items.push_back(std::move(item));
  }

  lang::reanalyze(unit);
  return unit.ok();
}

struct Replay {
  bool ok = false;
  std::string output;
  std::uint64_t cycles = 0;
};

Replay replay(const lang::CompilationUnit& unit,
              const OptimizeMapOptions& options) {
  Replay r;
  try {
    cm::Machine machine(options.machine);
    vm::Interp interp(unit, machine, options.exec);
    vm::RunResult run = interp.run();
    r.ok = true;
    r.output = run.output();
    r.cycles = run.stats().cycles;
  } catch (const std::exception&) {
    r.ok = false;
  }
  return r;
}

std::string describe_assignment(const Assignment& a) {
  std::string out;
  for (const auto& c : a.choices) {
    if (!out.empty()) out += "; ";
    out += c.text;
  }
  return out.empty() ? "keep current mappings" : out;
}

double percent_fewer(std::uint64_t baseline, std::uint64_t optimized) {
  if (baseline == 0) return 0.0;
  return 100.0 *
         (1.0 - static_cast<double>(optimized) /
                    static_cast<double>(baseline));
}

}  // namespace

OptimizeMapResult optimize_map(std::string name, std::string source,
                               const OptimizeMapOptions& options) {
  OptimizeMapResult result;

  auto unit = lang::compile(name, source);
  if (!unit->ok()) {
    result.text = unit->diags.render_all();
    return result;
  }
  result.compiled = true;

  analysis::ProgramModel model = analysis::build_model(*unit);
  analysis::OptimizeOptions opt;
  opt.cost = options.machine.cost;
  opt.beam_width = options.beam_width;
  analysis::OptimizePlan plan =
      analysis::plan_mappings(*unit, model, opt);

  result.predicted_baseline = plan.baseline_cycles;
  result.predicted_optimized = plan.baseline_cycles;
  result.candidates_considered = plan.candidates_considered;
  result.candidates_blocked = plan.candidates_blocked;

  std::string text = support::format(
      "optimize-map: %zu array(s), %zu candidate mapping(s), %zu blocked "
      "by dependences\n"
      "predicted communication cycles under current mappings: %llu\n",
      plan.arrays.size(), plan.candidates_considered,
      plan.candidates_blocked,
      static_cast<unsigned long long>(plan.baseline_cycles));

  text += "ranked assignments (beam search):\n";
  const std::size_t show = std::min<std::size_t>(plan.ranked.size(), 3);
  for (std::size_t i = 0; i < show; ++i) {
    const Assignment& a = plan.ranked[i];
    text += support::format(
        "  %zu. %s  [predicted %llu]\n", i + 1,
        describe_assignment(a).c_str(),
        static_cast<unsigned long long>(a.predicted_cycles));
  }

  // Candidate assignments worth emitting, best first.
  std::vector<const Assignment*> tries;
  for (const auto& a : plan.ranked) {
    if (!a.choices.empty() && a.predicted_cycles < plan.baseline_cycles) {
      tries.push_back(&a);
    }
  }
  if (options.validate && tries.size() > options.max_validation_tries) {
    tries.resize(options.max_validation_tries);
  }

  Replay base;
  if (options.validate && !tries.empty()) {
    base = replay(*unit, options);
    if (!base.ok) {
      text += "replay of the baseline program failed; keeping current "
              "mappings\n";
      tries.clear();
    } else {
      result.baseline_cycles = base.cycles;
    }
  }

  for (const Assignment* a : tries) {
    auto rewritten = lang::compile(name, source);
    if (!rewritten->ok() || !apply_assignment(*rewritten, a->choices)) {
      text += support::format(
          "  rejected '%s': rewritten program fails semantic analysis\n",
          describe_assignment(*a).c_str());
      continue;
    }

    if (options.validate) {
      Replay opt_run = replay(*rewritten, options);
      if (!opt_run.ok) {
        text += support::format("  rejected '%s': replay failed\n",
                                describe_assignment(*a).c_str());
        continue;
      }
      if (opt_run.output != base.output) {
        text += support::format(
            "  rejected '%s': replay output differs from the baseline\n",
            describe_assignment(*a).c_str());
        continue;
      }
      if (opt_run.cycles >= base.cycles) {
        text += support::format(
            "  rejected '%s': replay took %llu cycles (baseline %llu); no "
            "improvement\n",
            describe_assignment(*a).c_str(),
            static_cast<unsigned long long>(opt_run.cycles),
            static_cast<unsigned long long>(base.cycles));
        continue;
      }
      result.optimized_cycles = opt_run.cycles;
      result.validated = true;
    }

    result.improved = true;
    result.predicted_optimized = a->predicted_cycles;
    for (const auto& c : a->choices) {
      OptimizeMapChoice out;
      out.array = c.array != nullptr ? c.array->name : "";
      out.kind = analysis::map_choice_kind_name(c.kind);
      out.text = c.text;
      out.proof = c.proof;
      result.choices.push_back(std::move(out));
    }

    // The emitted section is the last top-level item of the rewrite.
    for (const auto& item : rewritten->program->items) {
      if (item.decl != nullptr &&
          item.decl->kind == lang::StmtKind::kMapSection) {
        result.map_section = codegen::print_stmt(*item.decl);
      }
    }
    result.optimized_source = codegen::print_program(*rewritten->program);

    text += support::format("chosen: %s\n",
                            describe_assignment(*a).c_str());
    for (const auto& c : a->choices) {
      text += support::format("  %s: %s\n    proof: %s\n",
                              c.array->name.c_str(), c.text.c_str(),
                              c.proof.c_str());
    }
    text += support::format(
        "predicted communication cycles: %llu -> %llu (%.1f%% fewer)\n",
        static_cast<unsigned long long>(plan.baseline_cycles),
        static_cast<unsigned long long>(a->predicted_cycles),
        percent_fewer(plan.baseline_cycles, a->predicted_cycles));
    if (result.validated) {
      text += support::format(
          "replay: %llu -> %llu modeled cycles (%.1f%% fewer), output "
          "bit-identical\n",
          static_cast<unsigned long long>(result.baseline_cycles),
          static_cast<unsigned long long>(result.optimized_cycles),
          percent_fewer(result.baseline_cycles, result.optimized_cycles));
    }
    break;
  }

  if (!result.improved) {
    text += "chosen: keep current mappings (no candidate beat the "
            "baseline)\n";
  }
  result.text = std::move(text);
  return result;
}

std::string OptimizeMapResult::json() const {
  std::string out = "{\n";
  out += support::format("  \"improved\": %s,\n",
                         improved ? "true" : "false");
  out += support::format("  \"validated\": %s,\n",
                         validated ? "true" : "false");
  out += support::format(
      "  \"predicted\": {\"baseline\": %llu, \"optimized\": %llu},\n",
      static_cast<unsigned long long>(predicted_baseline),
      static_cast<unsigned long long>(predicted_optimized));
  out += support::format(
      "  \"replay\": {\"baseline\": %llu, \"optimized\": %llu},\n",
      static_cast<unsigned long long>(baseline_cycles),
      static_cast<unsigned long long>(optimized_cycles));
  out += support::format(
      "  \"candidates\": {\"considered\": %zu, \"blocked\": %zu},\n",
      candidates_considered, candidates_blocked);
  out += "  \"choices\": [\n";
  for (std::size_t i = 0; i < choices.size(); ++i) {
    const auto& c = choices[i];
    out += support::format(
        "    {\"array\": \"%s\", \"kind\": \"%s\", \"text\": \"%s\", "
        "\"proof\": \"%s\"}%s\n",
        json_escape(c.array).c_str(), json_escape(c.kind).c_str(),
        json_escape(c.text).c_str(), json_escape(c.proof).c_str(),
        i + 1 < choices.size() ? "," : "");
  }
  out += "  ],\n";
  out += support::format("  \"map_section\": \"%s\"\n",
                         json_escape(map_section).c_str());
  out += "}\n";
  return out;
}

}  // namespace uc
