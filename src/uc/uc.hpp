// Public entry point of the UC-on-CM library.
//
//   #include "uc/uc.hpp"
//
//   auto program = uc::Program::compile("demo.uc", source);
//   auto result  = program.run();                 // fresh simulated CM-2
//   result.output();                              // print() output
//   result.global_scalar("s").as_int();           // inspect globals
//   result.stats().cycles;                        // simulated machine time
//
// Compilation runs the full front end (preprocess, lex, parse, sema) plus
// the optional optimisation passes of the paper's §4 (constant folding,
// affine permute rewriting) and the §3.6 solve lowering.  Execution runs
// the analysed program on the simulated Connection Machine (see
// cm::MachineOptions for machine size / seed / host threads and
// vm::ExecOptions for optimisation toggles).
#pragma once

#include <memory>
#include <string>

#include "cm/machine.hpp"
#include "uclang/frontend.hpp"
#include "ucvm/interp.hpp"

namespace uc {

struct CompileOptions {
  // §4 "code optimisations": fold constant subexpressions.
  bool fold_constants = true;
  // §3.6: lower non-starred `solve` to the guarded *par form at the source
  // level (constructs the lowering cannot express fall back to the VM's
  // built-in solve).
  bool lower_solve = false;
  // §4 "communication optimisations": rewrite affine 1-D permute mappings
  // into subscript shifts.
  bool rewrite_permutes = false;
};

// Options for the static-analysis passes (`ucc analyze`, docs/ANALYSIS.md).
struct AnalyzeOptions {
  bool include_notes = true;    // UC-Axxx notes in the rendered text
  bool include_summary = true;  // per-function communication summary
  cm::MachineOptions machine;   // cost model for the comm estimates
};

// Result of running the analysis passes over one source file.
struct AnalyzeResult {
  bool compiled = false;  // front end succeeded; analysis ran
  std::string text;       // rendered findings (+ summary), or front-end diags
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
};

// Compiles (front end only, no transforms) and runs the analysis passes:
// par-block interference detection and communication classification.
// When the front end fails, `compiled` is false and `text`/`errors` carry
// the front-end diagnostics instead.
AnalyzeResult analyze(std::string name, std::string source,
                      const AnalyzeOptions& options = {});

class Program {
 public:
  // Throws support::UcCompileError (message = rendered diagnostics) when
  // the source does not compile.
  static Program compile(std::string name, std::string source,
                         CompileOptions options = {});

  // Returns the rendered diagnostics for a source, empty when it is
  // error-free — for tooling that wants errors without exceptions.
  static std::string check(std::string name, std::string source);

  Program(Program&&) noexcept;
  Program& operator=(Program&&) noexcept;
  ~Program();

  // Runs main() on a fresh simulated machine.
  vm::RunResult run(cm::MachineOptions machine_options = {},
                    vm::ExecOptions exec_options = {}) const;
  // Runs on an existing machine (stats accumulate there).
  vm::RunResult run_on(cm::Machine& machine,
                       vm::ExecOptions exec_options = {}) const;

  // The canonical UC rendering of the (possibly transformed) program.
  std::string to_uc_source() const;
  // The C*-style emission (what the paper's compiler targeted, §5).
  std::string to_cstar_source() const;

  const lang::CompilationUnit& unit() const { return *unit_; }

 private:
  explicit Program(std::unique_ptr<lang::CompilationUnit> unit);
  std::unique_ptr<lang::CompilationUnit> unit_;
};

}  // namespace uc
