// Public entry point of the UC-on-CM library.
//
//   #include "uc/uc.hpp"
//
//   auto program = uc::Program::compile("demo.uc", source);
//   auto result  = program.run();                 // fresh simulated CM-2
//   result.output();                              // print() output
//   result.global_scalar("s").as_int();           // inspect globals
//   result.stats().cycles;                        // simulated machine time
//
// Compilation runs the full front end (preprocess, lex, parse, sema) plus
// the optional optimisation passes of the paper's §4 (constant folding,
// affine permute rewriting) and the §3.6 solve lowering.  Execution runs
// the analysed program on the simulated Connection Machine (see
// cm::MachineOptions for machine size / seed / host threads and
// vm::ExecOptions for optimisation toggles).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cm/machine.hpp"
#include "prof/profile.hpp"
#include "prof/report.hpp"
#include "uclang/frontend.hpp"
#include "ucvm/interp.hpp"

namespace uc {

struct CompileOptions {
  // §4 "code optimisations": fold constant subexpressions.
  bool fold_constants = true;
  // §3.6: lower non-starred `solve` to the guarded *par form at the source
  // level (constructs the lowering cannot express fall back to the VM's
  // built-in solve).
  bool lower_solve = false;
  // §4 "communication optimisations": rewrite affine 1-D permute mappings
  // into subscript shifts.
  bool rewrite_permutes = false;
};

// Options for the static-analysis passes (`ucc analyze`, docs/ANALYSIS.md).
struct AnalyzeOptions {
  bool include_notes = true;    // UC-Axxx notes in the rendered text
  bool include_summary = true;  // per-function communication summary
  cm::MachineOptions machine;   // cost model for the comm estimates
};

// Result of running the analysis passes over one source file.
struct AnalyzeResult {
  bool compiled = false;  // front end succeeded; analysis ran
  std::string text;       // rendered findings (+ summary), or front-end diags
  std::string json;       // machine-readable findings (`--json=`), or ""
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
};

// Compiles (front end only, no transforms) and runs the analysis passes:
// par-block interference detection and communication classification.
// When the front end fails, `compiled` is false and `text`/`errors` carry
// the front-end diagnostics instead.
AnalyzeResult analyze(std::string name, std::string source,
                      const AnalyzeOptions& options = {});

// Options for the static mapping optimiser (`ucc optimize-map`,
// docs/MAPPING.md): dependence-proved search over candidate `map`
// sections, cost-predicted with the communication classifier, validated
// by replay on the simulated machine.
struct OptimizeMapOptions {
  cm::MachineOptions machine;  // cost model + replay machine
  vm::ExecOptions exec;        // replay engine options
  std::size_t beam_width = 4;  // beam over interacting arrays
  // Replay-validate: the optimized program must produce bit-identical
  // output with strictly fewer modeled cycles, or the candidate is
  // rejected and the next ranked assignment is tried.
  bool validate = true;
  std::size_t max_validation_tries = 4;
};

// One accepted remapping decision, for reporting.
struct OptimizeMapChoice {
  std::string array;
  std::string kind;   // "permute" / "fold" / "copy" / "identity"
  std::string text;   // canonical mapping text, e.g. "copy (I) d"
  std::string proof;  // dependence-legality proof
};

struct OptimizeMapResult {
  bool compiled = false;   // front end succeeded; the search ran
  bool improved = false;   // an assignment was accepted
  bool validated = false;  // ...and replay confirmed it (when validating)
  std::string text;        // human-readable report, or front-end diags
  std::string map_section;      // chosen `map` section UC text ("" if none)
  std::string optimized_source; // full rewritten program ("" if none)
  std::vector<OptimizeMapChoice> choices;
  std::uint64_t predicted_baseline = 0;   // static estimate, current maps
  std::uint64_t predicted_optimized = 0;  // static estimate, chosen maps
  std::uint64_t baseline_cycles = 0;      // replay (when validating)
  std::uint64_t optimized_cycles = 0;     // replay (when validating)
  std::size_t candidates_considered = 0;
  std::size_t candidates_blocked = 0;  // rejected by the dependence pass

  // Machine-readable report (`--json=`), mirroring the profile JSON
  // conventions.
  std::string json() const;
};

// Runs the mapping optimiser: dependence pass, candidate generation, cost
// prediction, beam search, then emission + replay validation of the best
// assignment.  The input program is never modified; the rewritten source
// is returned in `optimized_source`.
OptimizeMapResult optimize_map(std::string name, std::string source,
                               const OptimizeMapOptions& options = {});

// Options for a profiled run (`ucc profile`, docs/PROFILING.md).
struct ProfileOptions {
  cm::MachineOptions machine;
  vm::ExecOptions exec;        // engine choice etc.; `profiler` is ignored
  bool capture_trace = false;  // record Chrome trace events per scope
  bool join_static = true;     // annotate sites with `ucc analyze` classes
};

// Result of a profiled run: the ordinary RunResult plus the per-site
// attribution.  The invariant checked by the test suite: the sum of
// Site::self.cycles over `sites` equals `stats.cycles`.
//
// A run that aborts mid-way (watchdog timeout, memory cap, escalated
// fault) still returns a result: `aborted` is set, `error` carries the
// runtime error text, `run` stays default-constructed, and `sites`/`stats`
// hold the attribution accumulated up to the abort so the hot-site table
// remains printable (docs/ROBUSTNESS.md).
struct ProfileResult {
  vm::RunResult run;
  bool aborted = false;    // the run threw before completing
  std::string error;       // runtime error text when aborted
  cm::CostStats stats;     // run.stats() on success, partial on abort
  std::vector<prof::Site> sites;
  std::vector<prof::TraceEvent> events;  // empty unless capture_trace
  prof::PoolUtilization pool;
  cm::CostModel model;

  // The sorted hot-site table (human-readable).
  std::string table(const prof::TableOptions& opts = {}) const;
  // Machine-readable per-site JSON.
  std::string json() const;
  // Chrome trace-event JSON (chrome://tracing); empty array w/o capture.
  std::string trace() const;
};

class Program {
 public:
  // Throws support::UcCompileError (message = rendered diagnostics) when
  // the source does not compile.
  static Program compile(std::string name, std::string source,
                         CompileOptions options = {});

  // Returns the rendered diagnostics for a source, empty when it is
  // error-free — for tooling that wants errors without exceptions.
  static std::string check(std::string name, std::string source);

  Program(Program&&) noexcept;
  Program& operator=(Program&&) noexcept;
  ~Program();

  // Runs main() on a fresh simulated machine.
  vm::RunResult run(cm::MachineOptions machine_options = {},
                    vm::ExecOptions exec_options = {}) const;
  // Runs on an existing machine (stats accumulate there).
  vm::RunResult run_on(cm::Machine& machine,
                       vm::ExecOptions exec_options = {}) const;

  // Runs main() on a fresh machine with per-site profiling enabled and
  // (optionally) joins the static `ucc analyze` communication classes onto
  // the dynamic sites.  Output and modeled cycles are identical to run().
  ProfileResult profile(const ProfileOptions& options = {}) const;

  // The canonical UC rendering of the (possibly transformed) program.
  std::string to_uc_source() const;
  // The C*-style emission (what the paper's compiler targeted, §5).
  std::string to_cstar_source() const;

  const lang::CompilationUnit& unit() const { return *unit_; }

 private:
  explicit Program(std::unique_ptr<lang::CompilationUnit> unit);
  std::unique_ptr<lang::CompilationUnit> unit_;
};

}  // namespace uc
