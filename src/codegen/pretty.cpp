#include "codegen/pretty.hpp"

#include <sstream>

#include "support/str.hpp"

namespace uc::codegen {

using namespace lang;

namespace {

// Operator precedence for minimal parenthesisation (mirrors the parser).
int prec_of(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLogOr: return 1;
    case BinaryOp::kLogAnd: return 2;
    case BinaryOp::kBitOr: return 3;
    case BinaryOp::kBitXor: return 4;
    case BinaryOp::kBitAnd: return 5;
    case BinaryOp::kEq:
    case BinaryOp::kNe: return 6;
    case BinaryOp::kLt:
    case BinaryOp::kGt:
    case BinaryOp::kLe:
    case BinaryOp::kGe: return 7;
    case BinaryOp::kShl:
    case BinaryOp::kShr: return 8;
    case BinaryOp::kAdd:
    case BinaryOp::kSub: return 9;
    default: return 10;
  }
}

class Printer {
 public:
  std::string expr(const Expr& e, int parent_prec = 0) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return std::to_string(static_cast<const IntLitExpr&>(e).value);
      case ExprKind::kFloatLit: {
        auto s = support::format(
            "%g", static_cast<const FloatLitExpr&>(e).value);
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos &&
            s.find("inf") == std::string::npos) {
          s += ".0";
        }
        return s;
      }
      case ExprKind::kStringLit: {
        std::string out = "\"";
        for (char c : static_cast<const StringLitExpr&>(e).value) {
          switch (c) {
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            default: out += c;
          }
        }
        return out + "\"";
      }
      case ExprKind::kIdent:
        return static_cast<const IdentExpr&>(e).name;
      case ExprKind::kSubscript: {
        const auto& s = static_cast<const SubscriptExpr&>(e);
        std::string out = expr(*s.base, 11);
        for (const auto& idx : s.indices) {
          out += "[" + expr(*idx) + "]";
        }
        return out;
      }
      case ExprKind::kCall: {
        const auto& c = static_cast<const CallExpr&>(e);
        std::string out = c.callee + "(";
        for (std::size_t k = 0; k < c.args.size(); ++k) {
          if (k != 0) out += ", ";
          out += expr(*c.args[k]);
        }
        return out + ")";
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        auto inner = expr(*u.operand, 11);
        const char* op = unary_op_spelling(u.op);
        // `-(-x)` must not print as `--x` (which lexes as decrement);
        // likewise `+(+x)`.
        if (!inner.empty() && inner[0] == op[0] &&
            (op[0] == '-' || op[0] == '+')) {
          return std::string(op) + "(" + inner + ")";
        }
        return std::string(op) + inner;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        const int p = prec_of(b.op);
        auto out = expr(*b.lhs, p) + " " + binary_op_spelling(b.op) + " " +
                   expr(*b.rhs, p + 1);
        if (p < parent_prec) return "(" + out + ")";
        return out;
      }
      case ExprKind::kAssign: {
        const auto& a = static_cast<const AssignExpr&>(e);
        auto out = expr(*a.lhs, 11) + " " + assign_op_spelling(a.op) + " " +
                   expr(*a.rhs);
        if (parent_prec > 0) return "(" + out + ")";
        return out;
      }
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        auto out = expr(*t.cond, 1) + " ? " + expr(*t.then_expr) + " : " +
                   expr(*t.else_expr);
        if (parent_prec > 0) return "(" + out + ")";
        return out;
      }
      case ExprKind::kReduce: {
        const auto& r = static_cast<const ReduceExpr&>(e);
        std::string out = reduce_kind_spelling(r.op);
        out += "(";
        for (std::size_t k = 0; k < r.index_sets.size(); ++k) {
          if (k != 0) out += ", ";
          out += r.index_sets[k];
        }
        if (r.arms.size() == 1 && !r.arms[0].pred) {
          out += "; " + expr(*r.arms[0].value);
        } else {
          for (const auto& arm : r.arms) {
            out += " st (" + expr(*arm.pred) + ") " + expr(*arm.value);
          }
          if (r.others) out += " others " + expr(*r.others);
        }
        return out + ")";
      }
      case ExprKind::kIncDec: {
        const auto& i = static_cast<const IncDecExpr&>(e);
        const char* op = i.is_increment ? "++" : "--";
        if (i.is_prefix) return op + expr(*i.operand, 11);
        return expr(*i.operand, 11) + op;
      }
    }
    return "?";
  }

  void stmt(const Stmt& s, int indent) {
    switch (s.kind) {
      case StmtKind::kEmpty:
        line(indent, ";");
        return;
      case StmtKind::kExpr:
        line(indent, expr(*static_cast<const ExprStmt&>(s).expr) + ";");
        return;
      case StmtKind::kCompound: {
        line(indent, "{");
        for (const auto& child : static_cast<const CompoundStmt&>(s).body) {
          stmt(*child, indent + 1);
        }
        line(indent, "}");
        return;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        line(indent, "if (" + expr(*i.cond) + ")");
        stmt(*i.then_stmt, indent + 1);
        if (i.else_stmt) {
          line(indent, "else");
          stmt(*i.else_stmt, indent + 1);
        }
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        line(indent, "while (" + expr(*w.cond) + ")");
        stmt(*w.body, indent + 1);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        std::string head = "for (";
        if (f.init) {
          if (f.init->kind == StmtKind::kExpr) {
            head += expr(*static_cast<const ExprStmt&>(*f.init).expr);
            head += "; ";
          } else {
            head += decl_text(static_cast<const VarDeclStmt&>(*f.init)) + " ";
          }
        } else {
          head += "; ";
        }
        if (f.cond) head += expr(*f.cond);
        head += "; ";
        if (f.step) head += expr(*f.step);
        head += ")";
        line(indent, head);
        stmt(*f.body, indent + 1);
        return;
      }
      case StmtKind::kReturn: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        line(indent,
             r.value ? "return " + expr(*r.value) + ";" : "return;");
        return;
      }
      case StmtKind::kBreak:
        line(indent, "break;");
        return;
      case StmtKind::kContinue:
        line(indent, "continue;");
        return;
      case StmtKind::kVarDecl:
        line(indent, decl_text(static_cast<const VarDeclStmt&>(s)));
        return;
      case StmtKind::kIndexSetDecl: {
        const auto& d = static_cast<const IndexSetDeclStmt&>(s);
        std::string out = "index_set ";
        for (std::size_t k = 0; k < d.defs.size(); ++k) {
          const auto& def = d.defs[k];
          if (k != 0) out += ", ";
          out += def.set_name + ":" + def.elem_name + " = ";
          if (!def.alias.empty()) {
            out += def.alias;
          } else if (def.range_lo) {
            out += "{" + expr(*def.range_lo) + ".." + expr(*def.range_hi) +
                   "}";
          } else {
            out += "{";
            for (std::size_t m = 0; m < def.listed.size(); ++m) {
              if (m != 0) out += ", ";
              out += expr(*def.listed[m]);
            }
            out += "}";
          }
        }
        line(indent, out + ";");
        return;
      }
      case StmtKind::kUcConstruct: {
        const auto& u = static_cast<const UcConstructStmt&>(s);
        std::string head = u.starred ? "*" : "";
        head += uc_op_spelling(u.op);
        head += " (";
        for (std::size_t k = 0; k < u.index_sets.size(); ++k) {
          if (k != 0) head += ", ";
          head += u.index_sets[k];
        }
        head += ")";
        line(indent, head);
        for (const auto& block : u.blocks) {
          if (block.pred) {
            line(indent + 1, "st (" + expr(*block.pred) + ")");
            stmt(*block.body, indent + 2);
          } else {
            stmt(*block.body, indent + 1);
          }
        }
        if (u.others) {
          line(indent + 1, "others");
          stmt(*u.others, indent + 2);
        }
        return;
      }
      case StmtKind::kMapSection: {
        const auto& m = static_cast<const MapSectionStmt&>(s);
        std::string head = "map (";
        for (std::size_t k = 0; k < m.index_sets.size(); ++k) {
          if (k != 0) head += ", ";
          head += m.index_sets[k];
        }
        line(indent, head + ") {");
        for (const auto& mapping : m.mappings) {
          std::string out = map_kind_spelling(mapping.kind);
          out += " (";
          for (std::size_t k = 0; k < mapping.index_sets.size(); ++k) {
            if (k != 0) out += ", ";
            out += mapping.index_sets[k];
          }
          out += ") " + mapping.target_array;
          for (const auto& sub : mapping.target_subscripts) {
            out += "[" + expr(*sub) + "]";
          }
          if (mapping.kind != MapKind::kCopy) {
            out += " :- " + mapping.source_array;
            for (const auto& sub : mapping.source_subscripts) {
              out += "[" + expr(*sub) + "]";
            }
          }
          line(indent + 1, out + ";");
        }
        line(indent, "}");
        return;
      }
    }
  }

  std::string decl_text(const VarDeclStmt& d) {
    std::string out = d.is_const ? "const " : "";
    out += scalar_kind_name(d.scalar);
    out += " ";
    for (std::size_t k = 0; k < d.declarators.size(); ++k) {
      const auto& dec = d.declarators[k];
      if (k != 0) out += ", ";
      out += dec.name;
      for (const auto& dim : dec.dim_exprs) {
        out += "[" + expr(*dim) + "]";
      }
      if (dec.init) out += " = " + expr(*dec.init);
    }
    return out + ";";
  }

  void line(int indent, const std::string& text) {
    for (int k = 0; k < indent; ++k) out_ << "  ";
    out_ << text << "\n";
  }

  std::string take() { return out_.str(); }

 private:
  std::ostringstream out_;
};

}  // namespace

std::string print_expr(const Expr& expr) { return Printer().expr(expr); }

std::string print_stmt(const Stmt& stmt, int indent) {
  Printer p;
  p.stmt(stmt, indent);
  return p.take();
}

std::string print_program(const Program& program) {
  Printer p;
  for (const auto& item : program.items) {
    if (item.decl) {
      p.stmt(*item.decl, 0);
    } else if (item.func) {
      const auto& fn = *item.func;
      std::string head = scalar_kind_name(fn.return_scalar);
      head += " " + fn.name + "(";
      for (std::size_t k = 0; k < fn.params.size(); ++k) {
        const auto& param = fn.params[k];
        if (k != 0) head += ", ";
        head += scalar_kind_name(param.scalar);
        head += " " + param.name;
        for (std::size_t d = 0; d < param.array_rank; ++d) head += "[]";
      }
      head += ")";
      p.line(0, head);
      p.stmt(*fn.body, 0);
    }
  }
  return p.take();
}

}  // namespace uc::codegen
