#include "codegen/cstar_emit.hpp"

#include <map>
#include <sstream>
#include <unordered_map>

#include "codegen/pretty.hpp"
#include "support/str.hpp"
#include "uclang/symbols.hpp"

namespace uc::codegen {

using namespace lang;

namespace {

// One C* domain per distinct array shape.
struct DomainInfo {
  std::string name;
  std::vector<std::int64_t> dims;
  std::vector<const Symbol*> members;  // UC arrays living in this domain
};

class Emitter {
 public:
  explicit Emitter(const CompilationUnit& unit) : unit_(unit) {}

  std::string run() {
    collect_domains();
    for (const auto& [dims, dom] : domains_) emit_domain(dom);
    for (const auto& item : unit_.program->items) {
      if (item.decl && item.decl->kind == StmtKind::kMapSection) {
        line(0, "/* data mappings have no C* equivalent; handled by "
                "compiler directives */");
      }
      if (item.func) emit_function(*item.func);
    }
    return out_.str();
  }

 private:
  void collect_domains() {
    for (const Symbol* g : unit_.sema.globals) {
      if (!g->type.is_array()) continue;
      auto& dom = domains_[g->type.dims];
      if (dom.name.empty()) {
        dom.name = "UC_DOM" + std::to_string(domains_.size());
        dom.dims = g->type.dims;
      }
      dom.members.push_back(g);
      array_domain_[g] = &dom;
    }
  }

  void emit_domain(const DomainInfo& dom) {
    line(0, "domain " + dom.name + " {");
    // Grid coordinates, as in the appendix's PATH { int i, j, ... }.
    std::string coords = "  int ";
    for (std::size_t k = 0; k < dom.dims.size(); ++k) {
      if (k != 0) coords += ", ";
      coords += coord_name(k);
    }
    line(0, coords + ";");
    for (const Symbol* m : dom.members) {
      line(0, "  " + std::string(scalar_kind_name(m->type.scalar)) + " " +
                  m->name + ";");
    }
    std::string shape;
    for (auto d : dom.dims) shape += "[" + std::to_string(d) + "]";
    line(0, "} " + instance_name(dom) + shape + ";");
    line(0, "");
    // The appendix's offset-decoding init().
    line(0, "void " + dom.name + "::init() {");
    line(0, "  int offset = (this - &" + instance_name(dom) + zero_index(dom) +
                ");");
    for (std::size_t k = dom.dims.size(); k-- > 0;) {
      std::string rhs = "offset";
      if (k + 1 < dom.dims.size()) {
        rhs = "(offset";
        for (std::size_t m = dom.dims.size() - 1; m > k; --m) {
          rhs += " / " + std::to_string(dom.dims[m]);
        }
        rhs += ")";
      }
      line(0, "  " + coord_name(k) + " = " + rhs + " % " +
                  std::to_string(dom.dims[k]) + ";");
    }
    line(0, "}");
    line(0, "");
  }

  static std::string coord_name(std::size_t axis) {
    static const char* names[] = {"i", "j", "k", "l"};
    if (axis < 4) return names[axis];
    return "c" + std::to_string(axis);
  }

  std::string instance_name(const DomainInfo& dom) {
    std::string n = dom.name;
    for (auto& c : n) c = static_cast<char>(std::tolower(c));
    return n;
  }

  static std::string zero_index(const DomainInfo& dom) {
    std::string out;
    for (std::size_t k = 0; k < dom.dims.size(); ++k) out += "[0]";
    return out;
  }

  void emit_function(const FuncDecl& fn) {
    std::string head = scalar_kind_name(fn.return_scalar);
    head += " " + fn.name + "(";
    for (std::size_t k = 0; k < fn.params.size(); ++k) {
      if (k != 0) head += ", ";
      head += scalar_kind_name(fn.params[k].scalar);
      head += " " + fn.params[k].name;
      for (std::size_t d = 0; d < fn.params[k].array_rank; ++d) head += "[]";
    }
    head += ") {";
    line(0, head);
    if (fn.body) {
      for (const auto& stmt : fn.body->body) emit_stmt(*stmt, 1);
    }
    line(0, "}");
    line(0, "");
  }

  // The domain a par construct runs over: the one whose members it writes.
  const DomainInfo* domain_of_construct(const UcConstructStmt& stmt) {
    const DomainInfo* found = nullptr;
    auto scan_expr = [&](auto&& self, const Expr& e) -> void {
      if (e.kind == ExprKind::kAssign) {
        const auto& a = static_cast<const AssignExpr&>(e);
        if (a.lhs->kind == ExprKind::kSubscript) {
          const auto& sub = static_cast<const SubscriptExpr&>(*a.lhs);
          if (sub.base->kind == ExprKind::kIdent) {
            auto it = array_domain_.find(
                static_cast<const IdentExpr&>(*sub.base).symbol);
            if (it != array_domain_.end() && found == nullptr) {
              found = it->second;
            }
          }
        }
        self(self, *a.rhs);
      }
    };
    auto scan_stmt = [&](auto&& self, const Stmt& s) -> void {
      if (s.kind == StmtKind::kExpr) {
        scan_expr(scan_expr, *static_cast<const ExprStmt&>(s).expr);
      } else if (s.kind == StmtKind::kCompound) {
        for (const auto& c : static_cast<const CompoundStmt&>(s).body) {
          self(self, *c);
        }
      }
    };
    for (const auto& block : stmt.blocks) scan_stmt(scan_stmt, *block.body);
    if (stmt.others) scan_stmt(scan_stmt, *stmt.others);
    return found;
  }

  void emit_stmt(const Stmt& stmt, int indent) {
    switch (stmt.kind) {
      case StmtKind::kUcConstruct: {
        const auto& u = static_cast<const UcConstructStmt&>(stmt);
        emit_construct(u, indent);
        return;
      }
      case StmtKind::kCompound:
        line(indent, "{");
        for (const auto& c : static_cast<const CompoundStmt&>(stmt).body) {
          emit_stmt(*c, indent + 1);
        }
        line(indent, "}");
        return;
      case StmtKind::kIndexSetDecl: {
        // Index sets vanish: C* parallelism is implicit in the domain.
        auto text = print_stmt(stmt);
        auto first_line = text.substr(0, text.find('\n'));
        line(indent, "/* " + std::string(support::trim(first_line)) + " */");
        return;
      }
      case StmtKind::kMapSection:
        line(indent, "/* data mappings have no C* equivalent; handled by "
                     "compiler directives */");
        return;
      default: {
        // Plain C statements survive verbatim.
        std::istringstream text(print_stmt(stmt));
        std::string l;
        while (std::getline(text, l)) line(indent, l);
        return;
      }
    }
  }

  void emit_construct(const UcConstructStmt& u, int indent) {
    const DomainInfo* dom = domain_of_construct(u);
    switch (u.op) {
      case UcOp::kSeq: {
        // seq -> front-end counting loop (one loop variable per set); the
        // body statements (often nested par constructs) follow inside.
        for (const auto& name : u.index_sets) {
          line(indent, "for (" + elem_of(name) + " = " + set_lo(name) +
                           "; " + elem_of(name) + " <= " + set_hi(name) +
                           "; " + elem_of(name) + "++)");
        }
        for (const auto& block : u.blocks) {
          if (block.pred) {
            line(indent + 1, "if (" + print_expr(*block.pred) + ")");
            emit_stmt(*block.body, indent + 2);
          } else {
            emit_stmt(*block.body, indent + 1);
          }
        }
        if (u.others) {
          line(indent + 1, "else  /* others */");
          emit_stmt(*u.others, indent + 2);
        }
        return;
      }
      case UcOp::kPar: {
        if (u.starred) {
          line(indent, "do {  /* *par: iterate while any instance active */");
          emit_parallel_block(u, dom, indent + 1);
          line(indent, "} while (|= (" + active_cond(u) + "));");
          return;
        }
        emit_parallel_block(u, dom, indent);
        return;
      }
      case UcOp::kOneof:
        line(indent, "/* oneof: pick one enabled branch, unfair */");
        emit_parallel_block(u, dom, indent);
        return;
      case UcOp::kSolve:
        line(indent,
             "/* solve: lowered to a guarded *par by the UC compiler "
             "(paper 3.6) before C* emission */");
        emit_parallel_block(u, dom, indent);
        return;
    }
  }

  std::string active_cond(const UcConstructStmt& u) {
    std::string out;
    for (const auto& block : u.blocks) {
      if (!block.pred) continue;
      if (!out.empty()) out += " || ";
      out += print_expr(*block.pred);
    }
    return out.empty() ? "0" : out;
  }

  void emit_parallel_block(const UcConstructStmt& u, const DomainInfo* dom,
                           int indent) {
    const std::string header =
        dom != nullptr ? "[domain " + dom->name + "].{"
                       : "[domain UC_SCALARS].{";
    line(indent, header);
    for (const auto& block : u.blocks) {
      if (block.pred) {
        line(indent + 1, "where (" + print_expr(*block.pred) + ") {");
        emit_member_stmt(*block.body, indent + 2);
        line(indent + 1, "}");
      } else {
        emit_member_stmt(*block.body, indent + 1);
      }
    }
    if (u.others) {
      line(indent + 1, "else {  /* others */");
      emit_member_stmt(*u.others, indent + 2);
      line(indent + 1, "}");
    }
    line(indent, "}");
  }

  // Parallel member statements: assignments whose min/max reduction RHS
  // becomes the C* combine operators, everything else printed as-is.
  void emit_member_stmt(const Stmt& s, int indent) {
    switch (s.kind) {
      case StmtKind::kCompound:
        for (const auto& c : static_cast<const CompoundStmt&>(s).body) {
          emit_member_stmt(*c, indent);
        }
        return;
      case StmtKind::kExpr: {
        const auto& e = *static_cast<const ExprStmt&>(s).expr;
        if (e.kind == ExprKind::kAssign) {
          const auto& a = static_cast<const AssignExpr&>(e);
          if (a.op == AssignOp::kAssign &&
              a.rhs->kind == ExprKind::kReduce) {
            const auto& r = static_cast<const ReduceExpr&>(*a.rhs);
            if ((r.op == ReduceKind::kMin || r.op == ReduceKind::kMax) &&
                r.arms.size() == 1 && !r.arms[0].pred && !r.others) {
              // lhs = $<(K; e)  ->  for (k...) lhs <?= e;
              const char* comb = r.op == ReduceKind::kMin ? "<?=" : ">?=";
              for (const auto& set : r.index_sets) {
                line(indent, "for (" + elem_of(set) + " = " + set_lo(set) +
                                 "; " + elem_of(set) + " <= " + set_hi(set) +
                                 "; " + elem_of(set) + "++)");
              }
              line(indent + 1, print_expr(*a.lhs) + " " + comb + " " +
                                   print_expr(*r.arms[0].value) + ";");
              return;
            }
          }
        }
        line(indent, print_expr(e) + ";");
        return;
      }
      default: {
        std::istringstream text(print_stmt(s));
        std::string l;
        while (std::getline(text, l)) line(indent, l);
        return;
      }
    }
  }

  std::string elem_of(const std::string& set_name) {
    if (auto* def = find_set(set_name)) return def->elem_name;
    return set_name + "_elem";
  }
  std::string set_lo(const std::string& set_name) {
    if (auto* def = find_set(set_name)) {
      if (def->symbol != nullptr && def->symbol->index_set != nullptr &&
          !def->symbol->index_set->values.empty()) {
        return std::to_string(def->symbol->index_set->values.front());
      }
    }
    return "0";
  }
  std::string set_hi(const std::string& set_name) {
    if (auto* def = find_set(set_name)) {
      if (def->symbol != nullptr && def->symbol->index_set != nullptr &&
          !def->symbol->index_set->values.empty()) {
        return std::to_string(def->symbol->index_set->values.back());
      }
    }
    return "0";
  }

  const IndexSetDef* find_set(const std::string& name) {
    for (const auto& item : unit_.program->items) {
      const IndexSetDef* found = find_set_in(item.decl.get(), name);
      if (found) return found;
      if (item.func && item.func->body) {
        for (const auto& s : item.func->body->body) {
          found = find_set_in(s.get(), name);
          if (found) return found;
        }
      }
    }
    return nullptr;
  }

  static const IndexSetDef* find_set_in(const Stmt* s,
                                        const std::string& name) {
    if (s == nullptr || s->kind != StmtKind::kIndexSetDecl) return nullptr;
    for (const auto& def : static_cast<const IndexSetDeclStmt*>(s)->defs) {
      if (def.set_name == name) return &def;
    }
    return nullptr;
  }

  void line(int indent, const std::string& text) {
    for (int k = 0; k < indent; ++k) out_ << "  ";
    out_ << text << "\n";
  }

  const CompilationUnit& unit_;
  std::map<std::vector<std::int64_t>, DomainInfo> domains_;
  std::unordered_map<const Symbol*, const DomainInfo*> array_domain_;
  std::ostringstream out_;
};

}  // namespace

std::string emit_cstar(const CompilationUnit& unit) {
  return Emitter(unit).run();
}

}  // namespace uc::codegen
