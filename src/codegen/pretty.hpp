// UC source printer: renders an AST back to UC source text.  Used to make
// transform passes observable (golden tests print the rewritten tree) and
// for round-trip testing of the parser.
#pragma once

#include <string>

#include "uclang/ast.hpp"

namespace uc::codegen {

std::string print_program(const lang::Program& program);
std::string print_stmt(const lang::Stmt& stmt, int indent = 0);
std::string print_expr(const lang::Expr& expr);

}  // namespace uc::codegen
