// C*-style code emission — the artefact the paper's prototype compiler
// produced (§5: "The UC compiler generates C* target code").
//
// The emitter performs the structural translation the paper describes:
//   * every distinct global-array shape becomes a C* `domain` whose
//     instances carry one member per UC array of that shape plus their
//     grid coordinates (compare Appendix Figs 9/10);
//   * `par` constructs become domain-parallel blocks (`[domain D].{...}`)
//     with `st` predicates as `where` conditions;
//   * `seq` becomes a front-end `for` loop;
//   * min/max reductions inside parallel assignments become the C* `<?=` /
//     `>?=` combine operators where the pattern allows, and explicit
//     accumulation loops otherwise;
//   * `*par` becomes a `do { ... } while (|| active)` loop.
//
// The output is documentation-faithful C* (golden-tested), not input to a
// real TMC compiler — DESIGN.md §2 records this substitution.
#pragma once

#include <string>

#include "uclang/frontend.hpp"

namespace uc::codegen {

std::string emit_cstar(const lang::CompilationUnit& unit);

}  // namespace uc::codegen
