// Recursive-descent parser for UC.  Produces a Program AST; errors are
// reported to the DiagnosticEngine with statement-level recovery, so one
// parse reports as many independent problems as possible.
#pragma once

#include <memory>
#include <vector>

#include "support/diag.hpp"
#include "uclang/ast.hpp"
#include "uclang/token.hpp"

namespace uc::lang {

class Parser {
 public:
  Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags);

  std::unique_ptr<Program> parse_program();

 private:
  struct ParseAbort {};  // thrown for recovery, caught at sync points

  // Recursion-depth guard shared by statement and expression descent:
  // pathological nesting (thousands of parentheses or braces) becomes a
  // clean diagnostic instead of a host stack overflow.
  static constexpr int kMaxDepth = 256;
  struct DepthGuard {
    explicit DepthGuard(Parser& p);
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  // --- token plumbing ---
  const Token& peek(std::size_t ahead = 0) const;
  const Token& previous() const { return tokens_[pos_ == 0 ? 0 : pos_ - 1]; }
  Token advance();
  bool check(TokenKind k) const { return peek().kind == k; }
  bool match(TokenKind k);
  Token expect(TokenKind k, const char* what);
  [[noreturn]] void fail(const Token& at, std::string message);
  void synchronize();

  // --- declarations ---
  void parse_top_level(Program& program);
  std::unique_ptr<FuncDecl> parse_function(ScalarKind ret,
                                           const Token& name_tok);
  StmtPtr parse_var_decl(bool is_const, ScalarKind scalar,
                         support::SourceLoc begin);
  StmtPtr parse_index_set_decl(support::SourceLoc begin);
  IndexSetDef parse_index_set_def();
  StmtPtr parse_map_section(support::SourceLoc begin);
  Mapping parse_mapping();

  // --- statements ---
  StmtPtr parse_statement();
  StmtPtr parse_compound();
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_for();
  StmtPtr parse_uc_construct(bool starred, support::SourceLoc begin);
  std::vector<std::string> parse_index_set_name_list();

  // --- expressions ---
  ExprPtr parse_expression();  // includes assignment
  ExprPtr parse_assignment();
  ExprPtr parse_ternary();
  ExprPtr parse_binary(int min_prec);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
  ExprPtr parse_reduction();

  std::vector<Token> tokens_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace uc::lang
