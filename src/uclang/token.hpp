// Token definitions for the UC language: C's lexicon plus `index_set`
// (also spelled `index-set`, as in the paper), the reduction operators
// `$+ $* $&& $|| $^ $> $< $,`, the range token `..`, the mapping arrow
// `:-`, and the UC keywords (par, seq, solve, oneof, st, others, map,
// permute, fold, copy).  `goto` is lexed as a keyword so the parser can
// reject it with a precise diagnostic (paper §3: UC disallows goto).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source.hpp"

namespace uc::lang {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,
  kCharLit,
  kStringLit,

  // Type / C keywords.
  kKwInt, kKwFloat, kKwDouble, kKwChar, kKwBool, kKwVoid, kKwConst,
  kKwIf, kKwElse, kKwWhile, kKwFor, kKwReturn, kKwBreak, kKwContinue,
  kKwGoto,    // recognised only to be rejected
  kKwTrue, kKwFalse,

  // UC keywords.
  kKwIndexSet, kKwPar, kKwSeq, kKwSolve, kKwOneof, kKwSt, kKwOthers,
  kKwMap, kKwPermute, kKwFold, kKwCopy, kKwInf,

  // Punctuation.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi, kColon, kQuestion, kDotDot,
  kMapsTo,  // :-

  // Operators.
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAssign, kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign,
  kPercentAssign,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kAmpAmp, kPipePipe, kBang,
  kAmp, kPipe, kCaret, kTilde, kShl, kShr,
  kPlusPlus, kMinusMinus,

  // Reduction operators ($ followed by a binary op).
  kRedAdd, kRedMul, kRedAnd, kRedOr, kRedXor, kRedMax, kRedMin, kRedArb,
};

const char* token_kind_name(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEof;
  support::SourceRange range;
  std::string text;        // identifier / literal spelling
  std::int64_t int_value = 0;
  double float_value = 0.0;

  bool is(TokenKind k) const { return kind == k; }
};

// Returns the keyword kind for an identifier spelling, or kIdent.
TokenKind classify_keyword(std::string_view spelling);

bool is_reduction_token(TokenKind k);
bool is_type_keyword(TokenKind k);

}  // namespace uc::lang
