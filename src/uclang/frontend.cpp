#include "uclang/frontend.hpp"

#include "uclang/lexer.hpp"
#include "uclang/parser.hpp"

namespace uc::lang {

std::unique_ptr<CompilationUnit> parse_only(std::string name,
                                            std::string source) {
  auto unit = std::make_unique<CompilationUnit>();
  unit->file = std::make_unique<support::SourceFile>(std::move(name),
                                                     std::move(source));
  unit->diags.attach(unit->file.get());
  Lexer lexer(*unit->file, unit->diags);
  Parser parser(lexer.lex_all(), unit->diags);
  unit->program = parser.parse_program();
  return unit;
}

std::unique_ptr<CompilationUnit> compile(std::string name,
                                         std::string source) {
  auto unit = parse_only(std::move(name), std::move(source));
  if (!unit->diags.has_errors()) {
    Sema sema(*unit->program, unit->diags);
    unit->sema = sema.run();
  }
  return unit;
}

void reanalyze(CompilationUnit& unit) {
  Sema sema(*unit.program, unit.diags);
  unit.sema = sema.run();
}

}  // namespace uc::lang
