#include "uclang/symbols.hpp"

namespace uc::lang {

const char* symbol_kind_name(SymbolKind k) {
  switch (k) {
    case SymbolKind::kGlobalVar: return "global variable";
    case SymbolKind::kLocalVar: return "variable";
    case SymbolKind::kParam: return "parameter";
    case SymbolKind::kIndexSet: return "index set";
    case SymbolKind::kIndexElem: return "index element";
    case SymbolKind::kFunc: return "function";
    case SymbolKind::kBuiltin: return "builtin";
  }
  return "?";
}

}  // namespace uc::lang
