// Read/write-set extraction over a sema'd AST.
//
// Walks expressions and statements collecting every variable and array
// access together with its direction (read, write, or both).  Assignment
// left-hand sides, ++/-- operands and the lvalue arguments of the swap
// builtin count as writes; compound assignments and swap count as
// read+write.  Subscript index expressions are always reads.
//
// The walker reports the reduce expression an access sits inside (if any)
// so clients can treat reduce-bound index elements specially, and does
// NOT descend into nested UC constructs when asked to stay shallow — the
// analysis passes visit each construct on its own.
#pragma once

#include <vector>

#include "uclang/ast.hpp"

namespace uc::lang {

struct Access {
  const Expr* site = nullptr;       // the IdentExpr or SubscriptExpr
  const Symbol* base = nullptr;     // resolved variable / array symbol
  const SubscriptExpr* subscript = nullptr;  // null for scalar accesses
  bool is_read = false;
  bool is_write = false;
  // Innermost reduce expression enclosing the access, when any.
  const ReduceExpr* reduce = nullptr;
};

// True when the statement (or an expression inside it) contains a call to
// a user-defined (non-builtin) function — such calls make read/write sets
// incomplete, so analyses must degrade gracefully.
struct AccessSet {
  std::vector<Access> accesses;
  bool has_user_call = false;
};

// Collects accesses from an expression tree.
void collect_accesses(const Expr& e, AccessSet& out);

// Collects accesses from a statement tree.  When `enter_constructs` is
// false the walk stops at nested UcConstructStmt nodes (their predicates
// and bodies are skipped).
void collect_accesses(const Stmt& s, AccessSet& out,
                      bool enter_constructs = true);

}  // namespace uc::lang
