// Symbols produced by semantic analysis.  Symbol objects are owned by the
// Sema that created them and live as long as the analysed Program; AST
// nodes hold non-owning Symbol* annotations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/source.hpp"
#include "uclang/ast.hpp"

namespace uc::lang {

enum class SymbolKind : std::uint8_t {
  kGlobalVar,
  kLocalVar,   // includes per-lane locals declared inside parallel bodies
  kParam,
  kIndexSet,
  kIndexElem,  // the `i` of `I:i`
  kFunc,
  kBuiltin,
};

const char* symbol_kind_name(SymbolKind k);

// Resolved contents of an index set (constant by definition, paper §3.1).
struct IndexSetInfo {
  std::vector<std::int64_t> values;  // in declaration order
  Symbol* elem = nullptr;            // the element symbol
};

struct Symbol {
  SymbolKind kind = SymbolKind::kGlobalVar;
  std::string name;
  Type type;            // vars/params; index elems are scalar int
  bool is_const = false;
  support::SourceRange def_range;

  // Storage assignment: index into the global frame (globals) or the
  // owning function's frame (locals/params).
  std::int32_t slot = -1;

  FuncDecl* func = nullptr;            // kFunc
  IndexSetInfo* index_set = nullptr;   // kIndexSet
  Symbol* elem_of_set = nullptr;       // kIndexElem: its set symbol
  std::int32_t builtin_id = -1;        // kBuiltin

  // Compile-time constant value, when known (const int N = 32; INF; ...).
  bool has_const_value = false;
  std::int64_t const_value = 0;
};

// UC's INF constant.  Chosen large but safe: INF + INF and INF * small do
// not overflow int64, so shortest-path relaxations through "infinite"
// edges behave (documented in docs/LANGUAGE.md).
inline constexpr std::int64_t kUcInf = std::int64_t{1} << 40;

// The well-known builtins (paper programs use power2, rand, swap, ...).
enum class BuiltinId : std::int32_t {
  kPower2,   // power2(k) = 2^k
  kRand,     // rand() — deterministic SplitMix64 stream
  kSrand,    // srand(seed)
  kAbs,      // abs(x)
  kMin2,     // min(a, b)
  kMax2,     // max(a, b)
  kSwap,     // swap(lval, lval) — exchanges two lvalues
  kPrint,    // print(fmt_or_values...) — appends to the run's output
};

}  // namespace uc::lang
