#include "uclang/sema.hpp"

#include <algorithm>
#include <unordered_set>

namespace uc::lang {

namespace {

bool is_scalar_numeric(const Type& t) { return t.is_numeric(); }

// Usual arithmetic promotion: float wins, otherwise int.
Type promote(const Type& a, const Type& b) {
  Type t;
  t.scalar = (a.is_float() || b.is_float()) ? ScalarKind::kFloat
                                            : ScalarKind::kInt;
  return t;
}

Type int_type() { return Type{ScalarKind::kInt, {}}; }
Type void_type() { return Type{ScalarKind::kVoid, {}}; }

}  // namespace

Sema::Sema(Program& program, support::DiagnosticEngine& diags)
    : program_(program), diags_(diags) {}

SemaResult Sema::run() {
  push_scope();  // global scope
  declare_builtins();
  analyze_top_level();
  pop_scope();

  // Direct check: a function whose body contains a parallel construct may
  // not be called from a parallel context.  (The transitive case — f calls
  // g, g contains par — is caught by the VM at execution time.)
  for (auto& pc : parallel_calls_) {
    if (pc.callee->func != nullptr &&
        pc.callee->func->has_parallel_construct) {
      diags_.error(pc.call->range,
                   "function '" + pc.callee->name +
                       "' contains a parallel construct and cannot be "
                       "called from inside a parallel context");
    }
  }
  return std::move(result_);
}

// ---------------------------------------------------------------------------
// Scope & symbols
// ---------------------------------------------------------------------------

void Sema::push_scope() { scopes_.emplace_back(); }

void Sema::pop_scope() { scopes_.pop_back(); }

Symbol* Sema::make_symbol(SymbolKind kind, const std::string& name,
                          support::SourceRange range) {
  auto sym = std::make_unique<Symbol>();
  sym->kind = kind;
  sym->name = name;
  sym->def_range = range;
  result_.symbols.push_back(std::move(sym));
  return result_.symbols.back().get();
}

Symbol* Sema::declare(SymbolKind kind, const std::string& name,
                      support::SourceRange range) {
  auto& scope = scopes_.back();
  auto it = scope.names.find(name);
  if (it != scope.names.end()) {
    diags_.error(range, "redeclaration of '" + name + "' (previously a " +
                            std::string(symbol_kind_name(it->second->kind)) +
                            ")");
    // Continue with a fresh symbol for error recovery.
  }
  Symbol* sym = make_symbol(kind, name, range);
  scope.names[name] = sym;
  return sym;
}

Symbol* Sema::lookup(const std::string& name) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->names.find(name);
    if (found != it->names.end()) return found->second;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Constant evaluation
// ---------------------------------------------------------------------------

std::optional<std::int64_t> Sema::const_eval_int(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return static_cast<const IntLitExpr&>(e).value;
    case ExprKind::kIdent: {
      const auto& id = static_cast<const IdentExpr&>(e);
      Symbol* sym = id.symbol != nullptr
                        ? id.symbol
                        : const_cast<Sema*>(this)->lookup(id.name);
      if (sym != nullptr && sym->has_const_value) return sym->const_value;
      return std::nullopt;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      auto v = const_eval_int(*u.operand);
      if (!v) return std::nullopt;
      switch (u.op) {
        case UnaryOp::kNeg: return -*v;
        case UnaryOp::kNot: return *v == 0 ? 1 : 0;
        case UnaryOp::kBitNot: return ~*v;
        case UnaryOp::kPlus: return *v;
      }
      return std::nullopt;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      auto l = const_eval_int(*b.lhs);
      auto r = const_eval_int(*b.rhs);
      if (!l || !r) return std::nullopt;
      switch (b.op) {
        case BinaryOp::kAdd: return *l + *r;
        case BinaryOp::kSub: return *l - *r;
        case BinaryOp::kMul: return *l * *r;
        case BinaryOp::kDiv:
          if (*r == 0) return std::nullopt;
          return *l / *r;
        case BinaryOp::kMod:
          if (*r == 0) return std::nullopt;
          return *l % *r;
        case BinaryOp::kEq: return *l == *r ? 1 : 0;
        case BinaryOp::kNe: return *l != *r ? 1 : 0;
        case BinaryOp::kLt: return *l < *r ? 1 : 0;
        case BinaryOp::kGt: return *l > *r ? 1 : 0;
        case BinaryOp::kLe: return *l <= *r ? 1 : 0;
        case BinaryOp::kGe: return *l >= *r ? 1 : 0;
        case BinaryOp::kLogAnd: return (*l != 0 && *r != 0) ? 1 : 0;
        case BinaryOp::kLogOr: return (*l != 0 || *r != 0) ? 1 : 0;
        case BinaryOp::kBitAnd: return *l & *r;
        case BinaryOp::kBitOr: return *l | *r;
        case BinaryOp::kBitXor: return *l ^ *r;
        case BinaryOp::kShl: return *l << (*r & 63);
        case BinaryOp::kShr: return *l >> (*r & 63);
      }
      return std::nullopt;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const TernaryExpr&>(e);
      auto c = const_eval_int(*t.cond);
      if (!c) return std::nullopt;
      return const_eval_int(*c != 0 ? *t.then_expr : *t.else_expr);
    }
    default:
      return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

void Sema::declare_builtins() {
  auto add = [&](const char* name, BuiltinId id) {
    Symbol* s = declare(SymbolKind::kBuiltin, name, {});
    s->builtin_id = static_cast<std::int32_t>(id);
  };
  add("power2", BuiltinId::kPower2);
  add("rand", BuiltinId::kRand);
  add("srand", BuiltinId::kSrand);
  add("abs", BuiltinId::kAbs);
  add("min", BuiltinId::kMin2);
  add("max", BuiltinId::kMax2);
  add("swap", BuiltinId::kSwap);
  add("print", BuiltinId::kPrint);

  Symbol* inf = declare(SymbolKind::kGlobalVar, "INF", {});
  inf->is_const = true;
  inf->has_const_value = true;
  inf->const_value = kUcInf;
  inf->type = int_type();
}

void Sema::analyze_top_level() {
  // Pass 1: declare all function signatures so call order doesn't matter.
  for (auto& item : program_.items) {
    if (!item.func) continue;
    FuncDecl& fn = *item.func;
    Symbol* sym = declare(SymbolKind::kFunc, fn.name, fn.range);
    sym->func = &fn;
    fn.symbol = sym;
  }
  // Pass 2: globals, index sets and map sections in order; then bodies.
  for (auto& item : program_.items) {
    if (item.decl) {
      switch (item.decl->kind) {
        case StmtKind::kVarDecl:
          analyze_var_decl(static_cast<VarDeclStmt&>(*item.decl),
                           /*is_global=*/true);
          break;
        case StmtKind::kIndexSetDecl:
          analyze_index_set_decl(static_cast<IndexSetDeclStmt&>(*item.decl));
          break;
        case StmtKind::kMapSection:
          analyze_map_section(static_cast<MapSectionStmt&>(*item.decl));
          break;
        default:
          diags_.error(item.decl->range, "unexpected top-level statement");
      }
    }
  }
  for (auto& item : program_.items) {
    if (item.func) analyze_function(*item.func);
  }
}

void Sema::analyze_function(FuncDecl& fn) {
  current_function_ = &fn;
  next_local_slot_ = 0;
  push_scope();
  for (auto& p : fn.params) {
    Symbol* sym = declare(SymbolKind::kParam, p.name, p.range);
    sym->type.scalar = p.scalar;
    if (p.is_array) {
      // Unknown extents: rank recorded via dims of -1 placeholders.
      sym->type.dims.assign(p.array_rank, -1);
    }
    sym->slot = next_local_slot_++;
    p.symbol = sym;
  }
  if (fn.body) {
    for (auto& stmt : fn.body->body) analyze_stmt(*stmt);
  }
  fn.frame_slots = static_cast<std::size_t>(next_local_slot_);
  pop_scope();
  current_function_ = nullptr;
}

void Sema::analyze_var_decl(VarDeclStmt& decl, bool is_global) {
  for (auto& d : decl.declarators) {
    Type t;
    t.scalar = decl.scalar;
    if (t.scalar == ScalarKind::kVoid) {
      diags_.error(d.range, "variables cannot have void type");
      t.scalar = ScalarKind::kInt;
    }
    for (auto& dim_expr : d.dim_exprs) {
      analyze_expr(*dim_expr);
      auto v = const_eval_int(*dim_expr);
      if (!v || *v <= 0) {
        diags_.error(dim_expr->range,
                     "array dimension must be a positive constant expression");
        t.dims.push_back(1);
      } else {
        t.dims.push_back(*v);
      }
    }
    Symbol* sym = declare(
        is_global ? SymbolKind::kGlobalVar : SymbolKind::kLocalVar, d.name,
        d.range);
    sym->type = t;
    sym->is_const = decl.is_const;
    if (t.is_array() && parallel_depth_ > 0) {
      diags_.error(d.range,
                   "array declarations inside parallel constructs are not "
                   "supported (declare the array outside the construct)");
    }
    if (is_global) {
      sym->slot = result_.global_slots++;
      result_.globals.push_back(sym);
    } else {
      sym->slot = next_local_slot_++;
    }
    if (d.init) {
      if (t.is_array()) {
        diags_.error(d.init->range,
                     "array initialisers are not supported; initialise with "
                     "a par statement");
      } else {
        Type init_t = analyze_expr(*d.init);
        if (!is_scalar_numeric(init_t)) {
          diags_.error(d.init->range, "initialiser must be a scalar value");
        }
        if (decl.is_const) {
          auto v = const_eval_int(*d.init);
          if (v) {
            sym->has_const_value = true;
            sym->const_value = *v;
          }
        }
      }
    }
    d.symbol = sym;
  }
}

void Sema::analyze_index_set_decl(IndexSetDeclStmt& decl) {
  for (auto& def : decl.defs) {
    auto info = std::make_unique<IndexSetInfo>();
    if (!def.alias.empty()) {
      Symbol* alias = lookup(def.alias);
      if (alias == nullptr || alias->kind != SymbolKind::kIndexSet) {
        diags_.error(def.range,
                     "'" + def.alias + "' does not name an index set");
      } else {
        info->values = alias->index_set->values;
      }
    } else if (def.range_lo) {
      analyze_expr(*def.range_lo);
      analyze_expr(*def.range_hi);
      auto lo = const_eval_int(*def.range_lo);
      auto hi = const_eval_int(*def.range_hi);
      if (!lo || !hi) {
        diags_.error(def.range,
                     "index set bounds must be constant expressions");
      } else {
        if (*lo > *hi) {
          diags_.warning(def.range, "index set '" + def.set_name +
                                        "' is empty (lower bound exceeds "
                                        "upper bound)");
        }
        for (std::int64_t v = *lo; v <= *hi; ++v) info->values.push_back(v);
      }
    } else {
      for (auto& e : def.listed) {
        analyze_expr(*e);
        auto v = const_eval_int(*e);
        if (!v) {
          diags_.error(e->range,
                       "index set members must be constant expressions");
        } else {
          info->values.push_back(*v);
        }
      }
    }

    Symbol* set_sym = declare(SymbolKind::kIndexSet, def.set_name, def.range);
    Symbol* elem_sym = declare(SymbolKind::kIndexElem, def.elem_name,
                               def.range);
    elem_sym->type = int_type();
    elem_sym->elem_of_set = set_sym;
    info->elem = elem_sym;
    set_sym->index_set = info.get();
    result_.index_sets.push_back(std::move(info));
    def.symbol = set_sym;
  }
}

void Sema::analyze_map_section(MapSectionStmt& section) {
  // The header's sets must exist; each mapping binds its own sets' elems.
  for (auto& name : section.index_sets) {
    Symbol* s = lookup(name);
    if (s == nullptr || s->kind != SymbolKind::kIndexSet) {
      diags_.error(section.range,
                   "'" + name + "' in map header does not name an index set");
    }
  }
  for (auto& m : section.mappings) {
    m.index_set_syms = bind_index_sets(m.index_sets, m.range);

    auto resolve_array = [&](const std::string& name) -> Symbol* {
      Symbol* s = lookup(name);
      if (s == nullptr) {
        diags_.error(m.range, "unknown array '" + name + "' in mapping");
        return nullptr;
      }
      if ((s->kind != SymbolKind::kGlobalVar &&
           s->kind != SymbolKind::kLocalVar &&
           s->kind != SymbolKind::kParam) ||
          !s->type.is_array()) {
        diags_.error(m.range, "'" + name + "' is not an array");
        return nullptr;
      }
      return s;
    };

    m.target_symbol = resolve_array(m.target_array);
    if (m.target_symbol != nullptr && m.kind != MapKind::kCopy &&
        m.target_subscripts.size() != m.target_symbol->type.dims.size()) {
      diags_.error(m.range, "mapping subscript count does not match the rank "
                            "of array '" + m.target_array + "'");
    }
    if (m.kind == MapKind::kCopy && !m.target_subscripts.empty()) {
      diags_.error(m.range,
                   "copy mapping takes a bare array name: copy (J) a;");
    }
    for (auto& e : m.target_subscripts) analyze_expr(*e);
    if (m.kind != MapKind::kCopy) {
      m.source_symbol = resolve_array(m.source_array);
      if (m.source_symbol != nullptr &&
          m.source_subscripts.size() != m.source_symbol->type.dims.size()) {
        diags_.error(m.range,
                     "mapping subscript count does not match the rank of "
                     "array '" + m.source_array + "'");
      }
      for (auto& e : m.source_subscripts) analyze_expr(*e);
      if (m.kind == MapKind::kFold && m.target_symbol != nullptr &&
          m.source_symbol != nullptr &&
          m.target_symbol != m.source_symbol) {
        diags_.error(m.range,
                     "fold maps an array relative to itself (paper §4); use "
                     "permute for distinct arrays");
      }
    }
    unbind_index_sets(m.index_set_syms);
  }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Sema::analyze_stmt(Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kExpr:
      analyze_expr(*static_cast<ExprStmt&>(stmt).expr);
      return;
    case StmtKind::kCompound: {
      push_scope();
      for (auto& s : static_cast<CompoundStmt&>(stmt).body) analyze_stmt(*s);
      pop_scope();
      return;
    }
    case StmtKind::kIf: {
      auto& s = static_cast<IfStmt&>(stmt);
      require_numeric(*s.cond, "if condition");
      analyze_stmt(*s.then_stmt);
      if (s.else_stmt) analyze_stmt(*s.else_stmt);
      return;
    }
    case StmtKind::kWhile: {
      auto& s = static_cast<WhileStmt&>(stmt);
      require_numeric(*s.cond, "while condition");
      ++loop_depth_;
      analyze_stmt(*s.body);
      --loop_depth_;
      return;
    }
    case StmtKind::kFor: {
      auto& s = static_cast<ForStmt&>(stmt);
      push_scope();
      if (s.init) analyze_stmt(*s.init);
      if (s.cond) require_numeric(*s.cond, "for condition");
      if (s.step) analyze_expr(*s.step);
      ++loop_depth_;
      analyze_stmt(*s.body);
      --loop_depth_;
      pop_scope();
      return;
    }
    case StmtKind::kReturn: {
      auto& s = static_cast<ReturnStmt&>(stmt);
      if (current_function_ == nullptr) {
        diags_.error(stmt.range, "return outside a function");
        return;
      }
      if (s.value) {
        Type t = analyze_expr(*s.value);
        if (current_function_->return_scalar == ScalarKind::kVoid) {
          diags_.error(stmt.range, "void function '" +
                                       current_function_->name +
                                       "' cannot return a value");
        } else if (!is_scalar_numeric(t)) {
          diags_.error(s.value->range, "return value must be scalar");
        }
      } else if (current_function_->return_scalar != ScalarKind::kVoid) {
        diags_.error(stmt.range, "non-void function '" +
                                     current_function_->name +
                                     "' must return a value");
      }
      return;
    }
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      if (loop_depth_ == 0) {
        diags_.error(stmt.range, "break/continue outside a loop");
      }
      return;
    case StmtKind::kVarDecl:
      analyze_var_decl(static_cast<VarDeclStmt&>(stmt), /*is_global=*/false);
      return;
    case StmtKind::kIndexSetDecl:
      analyze_index_set_decl(static_cast<IndexSetDeclStmt&>(stmt));
      return;
    case StmtKind::kUcConstruct:
      analyze_uc_construct(static_cast<UcConstructStmt&>(stmt));
      return;
    case StmtKind::kMapSection:
      analyze_map_section(static_cast<MapSectionStmt&>(stmt));
      return;
    case StmtKind::kEmpty:
      return;
  }
}

std::vector<Symbol*> Sema::bind_index_sets(
    const std::vector<std::string>& names, support::SourceRange range) {
  std::vector<Symbol*> sets;
  std::unordered_set<std::string> seen;
  for (const auto& name : names) {
    if (!seen.insert(name).second) {
      diags_.error(range,
                   "index set '" + name + "' listed more than once");
    }
    Symbol* s = lookup(name);
    if (s == nullptr || s->kind != SymbolKind::kIndexSet) {
      diags_.error(range, "'" + name + "' does not name an index set");
      continue;
    }
    sets.push_back(s);
    ++bound_elems_[s->index_set->elem];
  }
  return sets;
}

void Sema::unbind_index_sets(const std::vector<Symbol*>& sets) {
  for (Symbol* s : sets) {
    auto it = bound_elems_.find(s->index_set->elem);
    if (it != bound_elems_.end() && --it->second == 0) bound_elems_.erase(it);
  }
}

void Sema::analyze_uc_construct(UcConstructStmt& stmt) {
  stmt.index_set_syms = bind_index_sets(stmt.index_sets, stmt.range);
  if (current_function_ != nullptr) {
    current_function_->has_parallel_construct = true;
  }
  ++parallel_depth_;
  for (auto& block : stmt.blocks) {
    if (block.pred) require_numeric(*block.pred, "st predicate");
    push_scope();
    analyze_stmt(*block.body);
    pop_scope();
  }
  if (stmt.others) {
    push_scope();
    analyze_stmt(*stmt.others);
    pop_scope();
  }
  --parallel_depth_;
  if (stmt.op == UcOp::kSolve) check_solve_body(stmt);
  unbind_index_sets(stmt.index_set_syms);
}

// Collects the plain assignments in a (compound of) expression statements.
// Returns nullptr and pushes nothing on malformed bodies (diagnosed here).
const Expr* Sema::assignment_target_of(const Stmt& stmt,
                                       std::vector<const AssignExpr*>& out) {
  switch (stmt.kind) {
    case StmtKind::kExpr: {
      const auto& es = static_cast<const ExprStmt&>(stmt);
      if (es.expr->kind != ExprKind::kAssign) {
        diags_.error(es.expr->range,
                     "solve bodies may contain only assignment statements "
                     "(paper §3.6)");
        return nullptr;
      }
      const auto& a = static_cast<const AssignExpr&>(*es.expr);
      if (a.op != AssignOp::kAssign) {
        diags_.error(a.range,
                     "solve assignments must use plain '=' (compound "
                     "assignments read their own target)");
        return nullptr;
      }
      out.push_back(&a);
      return a.lhs.get();
    }
    case StmtKind::kCompound: {
      for (const auto& s : static_cast<const CompoundStmt&>(stmt).body) {
        assignment_target_of(*s, out);
      }
      return nullptr;
    }
    case StmtKind::kEmpty:
      return nullptr;
    default:
      diags_.error(stmt.range,
                   "solve bodies may contain only assignment statements "
                   "(paper §3.6)");
      return nullptr;
  }
}

void Sema::check_solve_body(UcConstructStmt& stmt) {
  // Non-starred solve: a proper set assigns each variable at most once.
  // Conservative syntactic check, per sc-block: within one block (whose
  // lanes all satisfy the same predicate) an array may be the target of at
  // most one assignment.  Across differently-predicated blocks the
  // equations may legitimately partition the same array, so overlap there
  // is checked element-wise at run time.  (*solve lifts the rule entirely,
  // paper §3.6.)
  auto check_block = [&](const Stmt& body) {
    std::vector<const AssignExpr*> assigns;
    assignment_target_of(body, assigns);
    if (stmt.starred) return;
    std::unordered_set<const Symbol*> targets;
    for (const auto* a : assigns) {
      const Symbol* target = nullptr;
      if (a->lhs->kind == ExprKind::kSubscript) {
        const auto& sub = static_cast<const SubscriptExpr&>(*a->lhs);
        if (sub.base->kind == ExprKind::kIdent) {
          target = static_cast<const IdentExpr&>(*sub.base).symbol;
        }
      } else if (a->lhs->kind == ExprKind::kIdent) {
        diags_.error(a->lhs->range,
                     "solve assignments must target array elements");
        continue;
      }
      if (target != nullptr && !targets.insert(target).second) {
        diags_.error(a->range,
                     "array '" + target->name +
                         "' is assigned by more than one statement in a "
                         "solve body (not a proper set, paper §3.6)");
      }
    }
  };
  for (auto& block : stmt.blocks) check_block(*block.body);
  if (stmt.others) check_block(*stmt.others);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

void Sema::require_numeric(const Expr& e_const, const char* what) {
  Expr& e = const_cast<Expr&>(e_const);
  Type t = analyze_expr(e);
  if (!is_scalar_numeric(t)) {
    diags_.error(e.range, std::string(what) + " must be a scalar value");
  }
}

void Sema::require_lvalue(const Expr& e) {
  if (e.kind == ExprKind::kSubscript) return;
  if (e.kind == ExprKind::kIdent) {
    const auto& id = static_cast<const IdentExpr&>(e);
    if (id.symbol == nullptr) return;  // already diagnosed
    switch (id.symbol->kind) {
      case SymbolKind::kGlobalVar:
      case SymbolKind::kLocalVar:
      case SymbolKind::kParam:
        if (id.symbol->is_const) {
          diags_.error(e.range,
                       "cannot assign to const '" + id.symbol->name + "'");
        } else if (id.symbol->type.is_array()) {
          diags_.error(e.range, "cannot assign to an array as a whole");
        }
        return;
      case SymbolKind::kIndexElem:
        diags_.error(e.range, "cannot assign to index element '" +
                                  id.symbol->name + "'");
        return;
      default:
        diags_.error(e.range, "cannot assign to " +
                                  std::string(symbol_kind_name(
                                      id.symbol->kind)) +
                                  " '" + id.symbol->name + "'");
        return;
    }
  }
  diags_.error(e.range, "expression is not assignable");
}

Type Sema::analyze_expr(Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      e.type = int_type();
      return e.type;
    case ExprKind::kFloatLit:
      e.type = Type{ScalarKind::kFloat, {}};
      return e.type;
    case ExprKind::kStringLit:
      e.type = void_type();  // only valid as a print() argument
      return e.type;
    case ExprKind::kIdent:
      return analyze_ident(static_cast<IdentExpr&>(e));
    case ExprKind::kSubscript:
      return analyze_subscript(static_cast<SubscriptExpr&>(e));
    case ExprKind::kCall:
      return analyze_call(static_cast<CallExpr&>(e));
    case ExprKind::kUnary: {
      auto& u = static_cast<UnaryExpr&>(e);
      Type t = analyze_expr(*u.operand);
      if (!is_scalar_numeric(t)) {
        diags_.error(u.operand->range, "operand must be a scalar value");
        t = int_type();
      }
      if (u.op == UnaryOp::kNot) {
        e.type = int_type();
      } else if (u.op == UnaryOp::kBitNot) {
        if (t.is_float()) {
          diags_.error(u.operand->range, "'~' requires an integer operand");
        }
        e.type = int_type();
      } else {
        e.type = t;
      }
      return e.type;
    }
    case ExprKind::kBinary: {
      auto& b = static_cast<BinaryExpr&>(e);
      Type lt = analyze_expr(*b.lhs);
      Type rt = analyze_expr(*b.rhs);
      if (!is_scalar_numeric(lt) || !is_scalar_numeric(rt)) {
        if (!is_scalar_numeric(lt)) {
          diags_.error(b.lhs->range, "operand must be a scalar value");
        }
        if (!is_scalar_numeric(rt)) {
          diags_.error(b.rhs->range, "operand must be a scalar value");
        }
        e.type = int_type();
        return e.type;
      }
      switch (b.op) {
        case BinaryOp::kMod:
        case BinaryOp::kBitAnd:
        case BinaryOp::kBitOr:
        case BinaryOp::kBitXor:
        case BinaryOp::kShl:
        case BinaryOp::kShr:
          if (lt.is_float() || rt.is_float()) {
            diags_.error(e.range, std::string("'") +
                                      binary_op_spelling(b.op) +
                                      "' requires integer operands");
          }
          e.type = int_type();
          return e.type;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kGt:
        case BinaryOp::kLe:
        case BinaryOp::kGe:
        case BinaryOp::kLogAnd:
        case BinaryOp::kLogOr:
          e.type = int_type();
          return e.type;
        default:
          e.type = promote(lt, rt);
          return e.type;
      }
    }
    case ExprKind::kAssign: {
      auto& a = static_cast<AssignExpr&>(e);
      Type lt = analyze_expr(*a.lhs);
      require_lvalue(*a.lhs);
      Type rt = analyze_expr(*a.rhs);
      if (!is_scalar_numeric(rt)) {
        diags_.error(a.rhs->range, "assigned value must be scalar");
      }
      if (a.op == AssignOp::kMod && (lt.is_float() || rt.is_float())) {
        diags_.error(e.range, "'%=' requires integer operands");
      }
      e.type = lt.dims.empty() ? lt : int_type();
      return e.type;
    }
    case ExprKind::kTernary: {
      auto& t = static_cast<TernaryExpr&>(e);
      require_numeric(*t.cond, "ternary condition");
      Type a = analyze_expr(*t.then_expr);
      Type b = analyze_expr(*t.else_expr);
      if (!is_scalar_numeric(a) || !is_scalar_numeric(b)) {
        if (!is_scalar_numeric(a)) {
          diags_.error(t.then_expr->range, "ternary arm must be scalar");
        }
        if (!is_scalar_numeric(b)) {
          diags_.error(t.else_expr->range, "ternary arm must be scalar");
        }
        e.type = int_type();
        return e.type;
      }
      e.type = promote(a, b);
      return e.type;
    }
    case ExprKind::kReduce:
      return analyze_reduce(static_cast<ReduceExpr&>(e));
    case ExprKind::kIncDec: {
      auto& i = static_cast<IncDecExpr&>(e);
      Type t = analyze_expr(*i.operand);
      require_lvalue(*i.operand);
      if (!is_scalar_numeric(t)) {
        diags_.error(i.operand->range, "++/-- operand must be scalar");
        t = int_type();
      }
      e.type = t;
      return e.type;
    }
  }
  e.type = int_type();
  return e.type;
}

Type Sema::analyze_ident(IdentExpr& e) {
  Symbol* sym = lookup(e.name);
  if (sym == nullptr) {
    diags_.error(e.range, "unknown identifier '" + e.name + "'");
    e.type = int_type();
    return e.type;
  }
  e.symbol = sym;
  switch (sym->kind) {
    case SymbolKind::kGlobalVar:
    case SymbolKind::kLocalVar:
    case SymbolKind::kParam:
      e.type = sym->type;
      return e.type;
    case SymbolKind::kIndexElem:
      if (!bound_elems_.contains(sym)) {
        diags_.error(e.range,
                     "index element '" + e.name +
                         "' used outside a construct over its index set");
      }
      e.type = int_type();
      return e.type;
    case SymbolKind::kIndexSet:
      diags_.error(e.range, "index set '" + e.name +
                                "' cannot be used as a value");
      e.type = int_type();
      return e.type;
    case SymbolKind::kFunc:
    case SymbolKind::kBuiltin:
      diags_.error(e.range,
                   "function '" + e.name + "' used without a call");
      e.type = int_type();
      return e.type;
  }
  e.type = int_type();
  return e.type;
}

Type Sema::analyze_subscript(SubscriptExpr& e) {
  if (e.base->kind != ExprKind::kIdent) {
    diags_.error(e.base->range, "only named arrays can be subscripted");
    e.type = int_type();
    return e.type;
  }
  Type base_t = analyze_expr(*e.base);
  auto& id = static_cast<IdentExpr&>(*e.base);
  if (id.symbol == nullptr) {
    e.type = int_type();
    return e.type;
  }
  if (!id.symbol->type.is_array()) {
    diags_.error(e.range, "'" + id.name + "' is not an array");
    e.type = int_type();
    return e.type;
  }
  if (e.indices.size() != base_t.dims.size()) {
    diags_.error(e.range,
                 "array '" + id.name + "' has rank " +
                     std::to_string(base_t.dims.size()) + " but " +
                     std::to_string(e.indices.size()) +
                     " subscripts were given");
  }
  for (auto& idx : e.indices) require_numeric(*idx, "array subscript");
  e.type = Type{base_t.scalar == ScalarKind::kVoid ? ScalarKind::kInt
                                                   : base_t.scalar,
                {}};
  return e.type;
}

Type Sema::analyze_call(CallExpr& e) {
  Symbol* sym = lookup(e.callee);
  if (sym == nullptr) {
    diags_.error(e.range, "unknown function '" + e.callee + "'");
    e.type = int_type();
    return e.type;
  }
  e.symbol = sym;

  auto check_argc = [&](std::size_t want) {
    if (e.args.size() != want) {
      diags_.error(e.range, "'" + e.callee + "' expects " +
                                std::to_string(want) + " argument(s), got " +
                                std::to_string(e.args.size()));
      return false;
    }
    return true;
  };

  if (sym->kind == SymbolKind::kBuiltin) {
    switch (static_cast<BuiltinId>(sym->builtin_id)) {
      case BuiltinId::kPower2:
        if (check_argc(1)) require_numeric(*e.args[0], "power2 argument");
        e.type = int_type();
        return e.type;
      case BuiltinId::kRand:
        check_argc(0);
        e.type = int_type();
        return e.type;
      case BuiltinId::kSrand:
        if (check_argc(1)) require_numeric(*e.args[0], "srand argument");
        e.type = void_type();
        return e.type;
      case BuiltinId::kAbs: {
        Type t = int_type();
        if (check_argc(1)) {
          t = analyze_expr(*e.args[0]);
          if (!is_scalar_numeric(t)) {
            diags_.error(e.args[0]->range, "abs argument must be scalar");
            t = int_type();
          }
        }
        e.type = t;
        return e.type;
      }
      case BuiltinId::kMin2:
      case BuiltinId::kMax2: {
        Type t = int_type();
        if (check_argc(2)) {
          Type a = analyze_expr(*e.args[0]);
          Type b = analyze_expr(*e.args[1]);
          if (!is_scalar_numeric(a) || !is_scalar_numeric(b)) {
            diags_.error(e.range, "min/max arguments must be scalar");
          } else {
            t = promote(a, b);
          }
        }
        e.type = t;
        return e.type;
      }
      case BuiltinId::kSwap:
        if (check_argc(2)) {
          for (auto& arg : e.args) {
            Type t = analyze_expr(*arg);
            require_lvalue(*arg);
            if (!is_scalar_numeric(t)) {
              diags_.error(arg->range,
                           "swap arguments must be scalar lvalues");
            }
          }
        }
        e.type = void_type();
        return e.type;
      case BuiltinId::kPrint:
        for (auto& arg : e.args) analyze_expr(*arg);
        e.type = void_type();
        return e.type;
    }
    e.type = int_type();
    return e.type;
  }

  if (sym->kind != SymbolKind::kFunc) {
    diags_.error(e.range, "'" + e.callee + "' is not a function");
    e.type = int_type();
    return e.type;
  }

  FuncDecl* fn = sym->func;
  if (e.args.size() != fn->params.size()) {
    diags_.error(e.range, "'" + e.callee + "' expects " +
                              std::to_string(fn->params.size()) +
                              " argument(s), got " +
                              std::to_string(e.args.size()));
  }
  for (std::size_t i = 0; i < e.args.size() && i < fn->params.size(); ++i) {
    const Param& p = fn->params[i];
    if (p.is_array) {
      // Whole array, or an array slice `m[k]...` fixing leading dimensions
      // (paper §3: pointers pass "an array (or an array slice)").
      Expr& arg = *e.args[i];
      const Symbol* base_sym = nullptr;
      std::size_t fixed = 0;
      if (arg.kind == ExprKind::kIdent) {
        analyze_expr(arg);
        base_sym = static_cast<IdentExpr&>(arg).symbol;
      } else if (arg.kind == ExprKind::kSubscript) {
        auto& sub = static_cast<SubscriptExpr&>(arg);
        if (sub.base->kind == ExprKind::kIdent) {
          analyze_expr(*sub.base);
          base_sym = static_cast<IdentExpr&>(*sub.base).symbol;
          fixed = sub.indices.size();
          for (auto& idx : sub.indices) {
            require_numeric(*idx, "slice subscript");
          }
        }
      }
      const bool ok = base_sym != nullptr && base_sym->type.is_array() &&
                      base_sym->type.dims.size() >= fixed &&
                      base_sym->type.dims.size() - fixed == p.array_rank &&
                      p.array_rank > 0;
      if (!ok) {
        diags_.error(e.args[i]->range,
                     "argument for array parameter '" + p.name +
                         "' must be an array or array slice of rank " +
                         std::to_string(p.array_rank));
      } else {
        // Annotate the argument with its view type.
        arg.type.scalar = base_sym->type.scalar;
        arg.type.dims.assign(base_sym->type.dims.begin() +
                                 static_cast<std::ptrdiff_t>(fixed),
                             base_sym->type.dims.end());
      }
    } else {
      Type t = analyze_expr(*e.args[i]);
      if (!is_scalar_numeric(t)) {
        diags_.error(e.args[i]->range,
                     "argument for parameter '" + p.name +
                         "' must be scalar");
      }
    }
  }
  if (parallel_depth_ > 0) {
    parallel_calls_.push_back(ParallelCall{&e, sym});
  }
  e.type = Type{fn->return_scalar, {}};
  return e.type;
}

Type Sema::analyze_reduce(ReduceExpr& e) {
  e.index_set_syms = bind_index_sets(e.index_sets, e.range);
  Type result = int_type();
  bool any_float = false;
  for (auto& arm : e.arms) {
    if (arm.pred) require_numeric(*arm.pred, "reduction predicate");
    Type t = analyze_expr(*arm.value);
    if (!is_scalar_numeric(t)) {
      diags_.error(arm.value->range, "reduction operand must be scalar");
    } else if (t.is_float()) {
      any_float = true;
    }
  }
  if (e.others) {
    Type t = analyze_expr(*e.others);
    if (!is_scalar_numeric(t)) {
      diags_.error(e.others->range, "reduction operand must be scalar");
    } else if (t.is_float()) {
      any_float = true;
    }
  }
  switch (e.op) {
    case ReduceKind::kAnd:
    case ReduceKind::kOr:
      result = int_type();
      break;
    case ReduceKind::kXor:
      if (any_float) {
        diags_.error(e.range, "'$^' requires integer operands");
      }
      result = int_type();
      break;
    default:
      result.scalar = any_float ? ScalarKind::kFloat : ScalarKind::kInt;
      break;
  }
  unbind_index_sets(e.index_set_syms);
  e.type = result;
  return e.type;
}

}  // namespace uc::lang
