// Semantic analysis for UC.  Resolves names (with index-set shadowing as in
// paper §3.4), constant-evaluates index-set definitions and array
// dimensions, type-checks expressions, enforces UC's restrictions (no
// goto — rejected by the parser —, pointers only as array parameters,
// solve bodies must be proper assignment sets), and assigns storage slots
// for the VM.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/diag.hpp"
#include "uclang/ast.hpp"
#include "uclang/symbols.hpp"

namespace uc::lang {

// Result of analysing a program: symbol storage plus layout info the VM
// needs.  Owns every Symbol referenced from the AST annotations.
struct SemaResult {
  std::vector<std::unique_ptr<Symbol>> symbols;
  std::vector<std::unique_ptr<IndexSetInfo>> index_sets;
  std::int32_t global_slots = 0;  // size of the global frame
  // Global variables in declaration order (the VM materialises them).
  std::vector<Symbol*> globals;
};

class Sema {
 public:
  Sema(Program& program, support::DiagnosticEngine& diags);

  // Runs the analysis; returns the result even when diagnostics were
  // produced (callers check diags.has_errors()).
  SemaResult run();

 private:
  struct Scope {
    std::unordered_map<std::string, Symbol*> names;
  };

  // Scope & symbol helpers.
  void push_scope();
  void pop_scope();
  Symbol* declare(SymbolKind kind, const std::string& name,
                  support::SourceRange range);
  Symbol* lookup(const std::string& name);
  Symbol* make_symbol(SymbolKind kind, const std::string& name,
                      support::SourceRange range);

  // Constant expression evaluation (index sets, array dims).
  std::optional<std::int64_t> const_eval_int(const Expr& e);

  // Declarations.
  void declare_builtins();
  void analyze_top_level();
  void analyze_function(FuncDecl& fn);
  void analyze_var_decl(VarDeclStmt& decl, bool is_global);
  void analyze_index_set_decl(IndexSetDeclStmt& decl);
  void analyze_map_section(MapSectionStmt& section);

  // Statements.
  void analyze_stmt(Stmt& stmt);
  void analyze_uc_construct(UcConstructStmt& stmt);
  void check_solve_body(UcConstructStmt& stmt);
  const Expr* assignment_target_of(const Stmt& stmt,
                                   std::vector<const AssignExpr*>& out);

  // Expressions.  Returns the expression's type (also annotated in place).
  Type analyze_expr(Expr& e);
  Type analyze_ident(IdentExpr& e);
  Type analyze_subscript(SubscriptExpr& e);
  Type analyze_call(CallExpr& e);
  Type analyze_reduce(ReduceExpr& e);
  void require_numeric(const Expr& e, const char* what);
  void require_lvalue(const Expr& e);
  // Binds the element symbols of the named sets; returns resolved set syms.
  std::vector<Symbol*> bind_index_sets(const std::vector<std::string>& names,
                                       support::SourceRange range);
  void unbind_index_sets(const std::vector<Symbol*>& sets);

  Program& program_;
  support::DiagnosticEngine& diags_;
  SemaResult result_;
  std::vector<Scope> scopes_;

  FuncDecl* current_function_ = nullptr;
  std::int32_t next_local_slot_ = 0;
  std::int32_t loop_depth_ = 0;
  std::int32_t parallel_depth_ = 0;  // nesting of par/seq/solve/oneof bodies
  // Element symbols currently bound (counts support nested rebinding).
  std::unordered_map<Symbol*, int> bound_elems_;
  // Deferred check: calls made from parallel context.
  struct ParallelCall {
    CallExpr* call;
    Symbol* callee;
  };
  std::vector<ParallelCall> parallel_calls_;
};

}  // namespace uc::lang
