#include "uclang/ast.hpp"

namespace uc::lang {

const char* scalar_kind_name(ScalarKind k) {
  switch (k) {
    case ScalarKind::kVoid: return "void";
    case ScalarKind::kInt: return "int";
    case ScalarKind::kFloat: return "float";
    case ScalarKind::kChar: return "char";
    case ScalarKind::kBool: return "bool";
  }
  return "?";
}

std::string Type::to_string() const {
  std::string s = scalar_kind_name(scalar);
  for (auto d : dims) {
    s += '[';
    s += std::to_string(d);
    s += ']';
  }
  return s;
}

const char* unary_op_spelling(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "!";
    case UnaryOp::kBitNot: return "~";
    case UnaryOp::kPlus: return "+";
  }
  return "?";
}

const char* binary_op_spelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kLogAnd: return "&&";
    case BinaryOp::kLogOr: return "||";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kBitXor: return "^";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
  }
  return "?";
}

const char* assign_op_spelling(AssignOp op) {
  switch (op) {
    case AssignOp::kAssign: return "=";
    case AssignOp::kAdd: return "+=";
    case AssignOp::kSub: return "-=";
    case AssignOp::kMul: return "*=";
    case AssignOp::kDiv: return "/=";
    case AssignOp::kMod: return "%=";
  }
  return "?";
}

const char* reduce_kind_spelling(ReduceKind k) {
  switch (k) {
    case ReduceKind::kAdd: return "$+";
    case ReduceKind::kMul: return "$*";
    case ReduceKind::kAnd: return "$&&";
    case ReduceKind::kOr: return "$||";
    case ReduceKind::kXor: return "$^";
    case ReduceKind::kMax: return "$>";
    case ReduceKind::kMin: return "$<";
    case ReduceKind::kArb: return "$,";
  }
  return "?";
}

const char* uc_op_spelling(UcOp op) {
  switch (op) {
    case UcOp::kPar: return "par";
    case UcOp::kSeq: return "seq";
    case UcOp::kSolve: return "solve";
    case UcOp::kOneof: return "oneof";
  }
  return "?";
}

const char* map_kind_spelling(MapKind k) {
  switch (k) {
    case MapKind::kPermute: return "permute";
    case MapKind::kFold: return "fold";
    case MapKind::kCopy: return "copy";
  }
  return "?";
}

FuncDecl* Program::find_function(std::string_view name) const {
  for (const auto& item : items) {
    if (item.func && item.func->name == name) return item.func.get();
  }
  return nullptr;
}

ExprPtr clone_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit: {
      auto out = std::make_unique<IntLitExpr>();
      out->value = static_cast<const IntLitExpr&>(e).value;
      out->range = e.range;
      return out;
    }
    case ExprKind::kFloatLit: {
      auto out = std::make_unique<FloatLitExpr>();
      out->value = static_cast<const FloatLitExpr&>(e).value;
      out->range = e.range;
      return out;
    }
    case ExprKind::kStringLit: {
      auto out = std::make_unique<StringLitExpr>();
      out->value = static_cast<const StringLitExpr&>(e).value;
      out->range = e.range;
      return out;
    }
    case ExprKind::kIdent: {
      auto out = std::make_unique<IdentExpr>();
      out->name = static_cast<const IdentExpr&>(e).name;
      out->range = e.range;
      return out;
    }
    case ExprKind::kSubscript: {
      const auto& s = static_cast<const SubscriptExpr&>(e);
      auto out = std::make_unique<SubscriptExpr>();
      out->base = clone_expr(*s.base);
      for (const auto& idx : s.indices) out->indices.push_back(clone_expr(*idx));
      out->range = e.range;
      return out;
    }
    case ExprKind::kCall: {
      const auto& c = static_cast<const CallExpr&>(e);
      auto out = std::make_unique<CallExpr>();
      out->callee = c.callee;
      for (const auto& a : c.args) out->args.push_back(clone_expr(*a));
      out->range = e.range;
      return out;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      auto out = std::make_unique<UnaryExpr>();
      out->op = u.op;
      out->operand = clone_expr(*u.operand);
      out->range = e.range;
      return out;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      auto out = std::make_unique<BinaryExpr>();
      out->op = b.op;
      out->lhs = clone_expr(*b.lhs);
      out->rhs = clone_expr(*b.rhs);
      out->range = e.range;
      return out;
    }
    case ExprKind::kAssign: {
      const auto& a = static_cast<const AssignExpr&>(e);
      auto out = std::make_unique<AssignExpr>();
      out->op = a.op;
      out->lhs = clone_expr(*a.lhs);
      out->rhs = clone_expr(*a.rhs);
      out->range = e.range;
      return out;
    }
    case ExprKind::kTernary: {
      const auto& t = static_cast<const TernaryExpr&>(e);
      auto out = std::make_unique<TernaryExpr>();
      out->cond = clone_expr(*t.cond);
      out->then_expr = clone_expr(*t.then_expr);
      out->else_expr = clone_expr(*t.else_expr);
      out->range = e.range;
      return out;
    }
    case ExprKind::kReduce: {
      const auto& r = static_cast<const ReduceExpr&>(e);
      auto out = std::make_unique<ReduceExpr>();
      out->op = r.op;
      out->index_sets = r.index_sets;
      for (const auto& arm : r.arms) {
        ReduceArm copy;
        if (arm.pred) copy.pred = clone_expr(*arm.pred);
        copy.value = clone_expr(*arm.value);
        out->arms.push_back(std::move(copy));
      }
      if (r.others) out->others = clone_expr(*r.others);
      out->range = e.range;
      return out;
    }
    case ExprKind::kIncDec: {
      const auto& i = static_cast<const IncDecExpr&>(e);
      auto out = std::make_unique<IncDecExpr>();
      out->is_increment = i.is_increment;
      out->is_prefix = i.is_prefix;
      out->operand = clone_expr(*i.operand);
      out->range = e.range;
      return out;
    }
  }
  return nullptr;
}

StmtPtr clone_stmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kEmpty: {
      auto out = std::make_unique<EmptyStmt>();
      out->range = s.range;
      return out;
    }
    case StmtKind::kExpr: {
      auto out = std::make_unique<ExprStmt>();
      out->expr = clone_expr(*static_cast<const ExprStmt&>(s).expr);
      out->range = s.range;
      return out;
    }
    case StmtKind::kCompound: {
      auto out = std::make_unique<CompoundStmt>();
      for (const auto& child : static_cast<const CompoundStmt&>(s).body) {
        out->body.push_back(clone_stmt(*child));
      }
      out->range = s.range;
      return out;
    }
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(s);
      auto out = std::make_unique<IfStmt>();
      out->cond = clone_expr(*i.cond);
      out->then_stmt = clone_stmt(*i.then_stmt);
      if (i.else_stmt) out->else_stmt = clone_stmt(*i.else_stmt);
      out->range = s.range;
      return out;
    }
    case StmtKind::kWhile: {
      const auto& w = static_cast<const WhileStmt&>(s);
      auto out = std::make_unique<WhileStmt>();
      out->cond = clone_expr(*w.cond);
      out->body = clone_stmt(*w.body);
      out->range = s.range;
      return out;
    }
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(s);
      auto out = std::make_unique<ForStmt>();
      if (f.init) out->init = clone_stmt(*f.init);
      if (f.cond) out->cond = clone_expr(*f.cond);
      if (f.step) out->step = clone_expr(*f.step);
      out->body = clone_stmt(*f.body);
      out->range = s.range;
      return out;
    }
    case StmtKind::kReturn: {
      const auto& r = static_cast<const ReturnStmt&>(s);
      auto out = std::make_unique<ReturnStmt>();
      if (r.value) out->value = clone_expr(*r.value);
      out->range = s.range;
      return out;
    }
    case StmtKind::kBreak: {
      auto out = std::make_unique<BreakStmt>();
      out->range = s.range;
      return out;
    }
    case StmtKind::kContinue: {
      auto out = std::make_unique<ContinueStmt>();
      out->range = s.range;
      return out;
    }
    case StmtKind::kVarDecl: {
      const auto& d = static_cast<const VarDeclStmt&>(s);
      auto out = std::make_unique<VarDeclStmt>();
      out->scalar = d.scalar;
      out->is_const = d.is_const;
      for (const auto& dec : d.declarators) {
        VarDeclarator copy;
        copy.name = dec.name;
        copy.range = dec.range;
        for (const auto& dim : dec.dim_exprs) {
          copy.dim_exprs.push_back(clone_expr(*dim));
        }
        if (dec.init) copy.init = clone_expr(*dec.init);
        out->declarators.push_back(std::move(copy));
      }
      out->range = s.range;
      return out;
    }
    case StmtKind::kIndexSetDecl: {
      const auto& d = static_cast<const IndexSetDeclStmt&>(s);
      auto out = std::make_unique<IndexSetDeclStmt>();
      for (const auto& def : d.defs) {
        IndexSetDef copy;
        copy.set_name = def.set_name;
        copy.elem_name = def.elem_name;
        copy.range = def.range;
        copy.alias = def.alias;
        if (def.range_lo) copy.range_lo = clone_expr(*def.range_lo);
        if (def.range_hi) copy.range_hi = clone_expr(*def.range_hi);
        for (const auto& v : def.listed) copy.listed.push_back(clone_expr(*v));
        out->defs.push_back(std::move(copy));
      }
      out->range = s.range;
      return out;
    }
    case StmtKind::kUcConstruct: {
      const auto& u = static_cast<const UcConstructStmt&>(s);
      auto out = std::make_unique<UcConstructStmt>();
      out->op = u.op;
      out->starred = u.starred;
      out->index_sets = u.index_sets;
      for (const auto& block : u.blocks) {
        ScBlock copy;
        if (block.pred) copy.pred = clone_expr(*block.pred);
        copy.body = clone_stmt(*block.body);
        out->blocks.push_back(std::move(copy));
      }
      if (u.others) out->others = clone_stmt(*u.others);
      out->range = s.range;
      return out;
    }
    case StmtKind::kMapSection: {
      const auto& m = static_cast<const MapSectionStmt&>(s);
      auto out = std::make_unique<MapSectionStmt>();
      out->index_sets = m.index_sets;
      for (const auto& mapping : m.mappings) {
        Mapping copy;
        copy.kind = mapping.kind;
        copy.range = mapping.range;
        copy.index_sets = mapping.index_sets;
        copy.target_array = mapping.target_array;
        copy.source_array = mapping.source_array;
        for (const auto& sub : mapping.target_subscripts) {
          copy.target_subscripts.push_back(clone_expr(*sub));
        }
        for (const auto& sub : mapping.source_subscripts) {
          copy.source_subscripts.push_back(clone_expr(*sub));
        }
        out->mappings.push_back(std::move(copy));
      }
      out->range = s.range;
      return out;
    }
  }
  return nullptr;
}

}  // namespace uc::lang
