// Abstract syntax tree for UC.  Nodes are owned via unique_ptr in a strict
// tree; semantic analysis annotates nodes in place (resolved symbols,
// types, evaluated constants).  Kind tags + static casts keep the tree
// cheap to walk in the interpreter's hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/source.hpp"

namespace uc::lang {

struct Symbol;  // defined in sema/symbols

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

enum class ScalarKind : std::uint8_t { kVoid, kInt, kFloat, kChar, kBool };

const char* scalar_kind_name(ScalarKind k);

// A value type: a scalar, or an array of scalars with rank dims.size().
// Dimensions are filled in by sema (constant-evaluated from the source
// dimension expressions).
struct Type {
  ScalarKind scalar = ScalarKind::kInt;
  std::vector<std::int64_t> dims;  // empty for scalars

  bool is_array() const { return !dims.empty(); }
  bool is_numeric() const {
    return scalar != ScalarKind::kVoid && dims.empty();
  }
  bool is_float() const { return scalar == ScalarKind::kFloat; }
  std::string to_string() const;

  friend bool operator==(const Type& a, const Type& b) = default;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  kIntLit, kFloatLit, kStringLit, kIdent, kSubscript, kCall,
  kUnary, kBinary, kAssign, kTernary, kReduce, kIncDec,
};

enum class UnaryOp : std::uint8_t { kNeg, kNot, kBitNot, kPlus };
enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kLogAnd, kLogOr,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};
enum class AssignOp : std::uint8_t { kAssign, kAdd, kSub, kMul, kDiv, kMod };

// The eight UC reduction operators (paper §3.2).
enum class ReduceKind : std::uint8_t {
  kAdd, kMul, kAnd, kOr, kXor, kMax, kMin, kArb,
};

const char* unary_op_spelling(UnaryOp op);
const char* binary_op_spelling(BinaryOp op);
const char* assign_op_spelling(AssignOp op);
const char* reduce_kind_spelling(ReduceKind k);

struct Expr {
  ExprKind kind;
  support::SourceRange range;
  // Sema annotations.
  Type type;

  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  std::int64_t value = 0;
  IntLitExpr() : Expr(ExprKind::kIntLit) {}
};

struct FloatLitExpr : Expr {
  double value = 0.0;
  FloatLitExpr() : Expr(ExprKind::kFloatLit) {}
};

struct StringLitExpr : Expr {
  std::string value;
  StringLitExpr() : Expr(ExprKind::kStringLit) {}
};

struct IdentExpr : Expr {
  std::string name;
  Symbol* symbol = nullptr;  // sema
  IdentExpr() : Expr(ExprKind::kIdent) {}
};

struct SubscriptExpr : Expr {
  ExprPtr base;  // IdentExpr naming an array (UC has no pointer arithmetic)
  std::vector<ExprPtr> indices;
  SubscriptExpr() : Expr(ExprKind::kSubscript) {}
};

struct CallExpr : Expr {
  std::string callee;
  std::vector<ExprPtr> args;
  Symbol* symbol = nullptr;  // sema: function or builtin
  CallExpr() : Expr(ExprKind::kCall) {}
};

struct UnaryExpr : Expr {
  UnaryOp op = UnaryOp::kNeg;
  ExprPtr operand;
  UnaryExpr() : Expr(ExprKind::kUnary) {}
};

struct BinaryExpr : Expr {
  BinaryOp op = BinaryOp::kAdd;
  ExprPtr lhs, rhs;
  BinaryExpr() : Expr(ExprKind::kBinary) {}
};

struct AssignExpr : Expr {
  AssignOp op = AssignOp::kAssign;
  ExprPtr lhs, rhs;
  AssignExpr() : Expr(ExprKind::kAssign) {}
};

struct TernaryExpr : Expr {
  ExprPtr cond, then_expr, else_expr;
  TernaryExpr() : Expr(ExprKind::kTernary) {}
};

struct IncDecExpr : Expr {
  bool is_increment = true;
  bool is_prefix = false;
  ExprPtr operand;
  IncDecExpr() : Expr(ExprKind::kIncDec) {}
};

// One `st (pred) expr` arm of a reduction (pred may be null for the plain
// `(I; expr)` form).
struct ReduceArm {
  ExprPtr pred;  // may be null
  ExprPtr value;
};

struct ReduceExpr : Expr {
  ReduceKind op = ReduceKind::kAdd;
  std::vector<std::string> index_sets;
  std::vector<Symbol*> index_set_syms;  // sema
  std::vector<ReduceArm> arms;          // at least one
  ExprPtr others;                       // may be null
  // VM annotation (written by the issuing thread before lane evaluation):
  // 1 when the §4 processor optimisation applies (send-with-combine keeps
  // the reduction at |sets| processors), 0 when not, -1 unknown.
  std::int8_t partition_optimized = -1;
  ReduceExpr() : Expr(ExprKind::kReduce) {}
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  kExpr, kCompound, kIf, kWhile, kFor, kReturn, kBreak, kContinue,
  kVarDecl, kIndexSetDecl, kUcConstruct, kMapSection, kEmpty,
};

struct Stmt {
  StmtKind kind;
  support::SourceRange range;
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct ExprStmt : Stmt {
  ExprPtr expr;
  ExprStmt() : Stmt(StmtKind::kExpr) {}
};

struct CompoundStmt : Stmt {
  std::vector<StmtPtr> body;
  CompoundStmt() : Stmt(StmtKind::kCompound) {}
};

struct IfStmt : Stmt {
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  // may be null
  IfStmt() : Stmt(StmtKind::kIf) {}
};

struct WhileStmt : Stmt {
  ExprPtr cond;
  StmtPtr body;
  WhileStmt() : Stmt(StmtKind::kWhile) {}
};

struct ForStmt : Stmt {
  StmtPtr init;   // ExprStmt, VarDecl, or null
  ExprPtr cond;   // may be null
  ExprPtr step;   // may be null
  StmtPtr body;
  ForStmt() : Stmt(StmtKind::kFor) {}
};

struct ReturnStmt : Stmt {
  ExprPtr value;  // may be null
  ReturnStmt() : Stmt(StmtKind::kReturn) {}
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::kBreak) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::kContinue) {}
};

// One declarator of a (possibly multi-declarator) variable declaration.
struct VarDeclarator {
  std::string name;
  support::SourceRange range;
  std::vector<ExprPtr> dim_exprs;  // one per array dimension
  ExprPtr init;                    // may be null
  Symbol* symbol = nullptr;        // sema
};

struct VarDeclStmt : Stmt {
  ScalarKind scalar = ScalarKind::kInt;
  bool is_const = false;
  std::vector<VarDeclarator> declarators;
  VarDeclStmt() : Stmt(StmtKind::kVarDecl) {}
};

// index_set I:i = {0..N-1} | {4,2,9} | J
struct IndexSetDef {
  std::string set_name;
  std::string elem_name;
  support::SourceRange range;
  // Exactly one of the following forms:
  ExprPtr range_lo, range_hi;    // {lo..hi}
  std::vector<ExprPtr> listed;   // {a, b, c}
  std::string alias;             // = J
  Symbol* symbol = nullptr;      // sema: the set symbol
};

struct IndexSetDeclStmt : Stmt {
  std::vector<IndexSetDef> defs;
  IndexSetDeclStmt() : Stmt(StmtKind::kIndexSetDecl) {}
};

// par / seq / solve / oneof, with optional leading '*'.
enum class UcOp : std::uint8_t { kPar, kSeq, kSolve, kOneof };

const char* uc_op_spelling(UcOp op);

// One `st (pred) stmt` arm (pred null for the bare-statement form).
struct ScBlock {
  ExprPtr pred;  // may be null
  StmtPtr body;
};

struct UcConstructStmt : Stmt {
  UcOp op = UcOp::kPar;
  bool starred = false;
  std::vector<std::string> index_sets;
  std::vector<Symbol*> index_set_syms;  // sema
  std::vector<ScBlock> blocks;          // at least one
  StmtPtr others;                       // may be null
  UcConstructStmt() : Stmt(StmtKind::kUcConstruct) {}
};

// ---------------------------------------------------------------------------
// Map sections (paper §4)
// ---------------------------------------------------------------------------

enum class MapKind : std::uint8_t { kPermute, kFold, kCopy };

const char* map_kind_spelling(MapKind k);

// permute (I) b[i+1] :- a[i];   fold (I) a[N-1-i] :- a[i];   copy (J) a;
struct Mapping {
  MapKind kind = MapKind::kPermute;
  support::SourceRange range;
  std::vector<std::string> index_sets;
  std::vector<Symbol*> index_set_syms;  // sema
  // Target side (the array being re-mapped) and source side.
  std::string target_array;
  std::vector<ExprPtr> target_subscripts;
  std::string source_array;             // empty for copy
  std::vector<ExprPtr> source_subscripts;
  Symbol* target_symbol = nullptr;  // sema
  Symbol* source_symbol = nullptr;  // sema
};

struct MapSectionStmt : Stmt {
  std::vector<std::string> index_sets;  // the map header's sets
  std::vector<Mapping> mappings;
  MapSectionStmt() : Stmt(StmtKind::kMapSection) {}
};

struct EmptyStmt : Stmt {
  EmptyStmt() : Stmt(StmtKind::kEmpty) {}
};

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

struct Param {
  ScalarKind scalar = ScalarKind::kInt;
  bool is_array = false;       // passed by reference, C-style decay
  std::size_t array_rank = 0;  // 0 for scalar
  std::string name;
  support::SourceRange range;
  Symbol* symbol = nullptr;  // sema
};

struct FuncDecl {
  ScalarKind return_scalar = ScalarKind::kVoid;
  std::string name;
  support::SourceRange range;
  std::vector<Param> params;
  std::unique_ptr<CompoundStmt> body;
  Symbol* symbol = nullptr;  // sema
  // Sema: number of local scalar slots this function's frame needs.
  std::size_t frame_slots = 0;
  // Sema: true if the body contains any UC parallel construct (such
  // functions cannot be called from inside a parallel context).
  bool has_parallel_construct = false;
};

// A top-level item: a global declaration statement (var / index_set / map)
// or a function definition.
struct TopLevel {
  StmtPtr decl;                    // non-null for declarations
  std::unique_ptr<FuncDecl> func;  // non-null for functions
};

struct Program {
  std::vector<TopLevel> items;

  FuncDecl* find_function(std::string_view name) const;
};

// Deep copies for the transform passes.  Sema annotations (symbols, types)
// are NOT copied — run sema again after transforming.
ExprPtr clone_expr(const Expr& e);
StmtPtr clone_stmt(const Stmt& s);

}  // namespace uc::lang
