// Convenience driver tying the front-end phases together: preprocess+lex,
// parse, analyse.  Used by the public uc:: API, the transform passes, the
// code generator and the test suite.
#pragma once

#include <memory>
#include <string>

#include "support/diag.hpp"
#include "support/source.hpp"
#include "uclang/ast.hpp"
#include "uclang/sema.hpp"

namespace uc::lang {

// A fully analysed compilation unit.  Owns the source buffer, diagnostics,
// AST and symbols; AST annotations point into `sema`.
struct CompilationUnit {
  std::unique_ptr<support::SourceFile> file;
  support::DiagnosticEngine diags;
  std::unique_ptr<Program> program;
  SemaResult sema;

  bool ok() const { return !diags.has_errors(); }
};

// Runs lex+parse only (no sema) — used by transform tests that want a raw
// tree.  `unit.sema` is left empty.
std::unique_ptr<CompilationUnit> parse_only(std::string name,
                                            std::string source);

// Runs the full front end.  Always returns a unit; check unit->ok().
std::unique_ptr<CompilationUnit> compile(std::string name,
                                         std::string source);

// Re-runs semantic analysis over an existing unit's program (after a
// source-to-source transform rewired the AST).  Clears old annotations'
// owners by replacing unit.sema wholesale.
void reanalyze(CompilationUnit& unit);

}  // namespace uc::lang
