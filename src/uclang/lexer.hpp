// Hand-written lexer for UC, including a miniature preprocessor that
// handles object-like `#define NAME replacement` macros (the paper's
// programs use `#define N 32`).  Macro substitution is token-based and
// recursive with cycle protection.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "support/diag.hpp"
#include "support/source.hpp"
#include "uclang/token.hpp"

namespace uc::lang {

class Lexer {
 public:
  Lexer(const support::SourceFile& file, support::DiagnosticEngine& diags);

  // Lexes the whole buffer, expanding #define macros; the result always
  // ends with an kEof token.  Lexical errors are reported to the
  // diagnostic engine and the offending characters skipped.
  std::vector<Token> lex_all();

 private:
  Token next_raw();  // one token, no macro handling
  void skip_whitespace_and_comments();
  Token make(TokenKind kind, support::SourceLoc begin);
  Token lex_number(support::SourceLoc begin);
  Token lex_ident_or_keyword(support::SourceLoc begin);
  Token lex_char_literal(support::SourceLoc begin);
  Token lex_string_literal(support::SourceLoc begin);
  Token lex_dollar(support::SourceLoc begin);
  void handle_directive();  // after a '#' at start of line

  char peek(std::size_t ahead = 0) const;
  char advance();
  bool match(char c);
  bool at_end() const { return pos_ >= text_.size(); }
  support::SourceLoc loc() const {
    return {static_cast<std::uint32_t>(pos_)};
  }

  const support::SourceFile& file_;
  support::DiagnosticEngine& diags_;
  std::string_view text_;
  std::size_t pos_ = 0;
  bool at_line_start_ = true;
  std::unordered_map<std::string, std::vector<Token>> macros_;
};

}  // namespace uc::lang
