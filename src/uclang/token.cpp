#include "uclang/token.hpp"

#include <unordered_map>

namespace uc::lang {

const char* token_kind_name(TokenKind k) {
  switch (k) {
    case TokenKind::kEof: return "end of file";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kFloatLit: return "float literal";
    case TokenKind::kCharLit: return "char literal";
    case TokenKind::kStringLit: return "string literal";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwFloat: return "'float'";
    case TokenKind::kKwDouble: return "'double'";
    case TokenKind::kKwChar: return "'char'";
    case TokenKind::kKwBool: return "'bool'";
    case TokenKind::kKwVoid: return "'void'";
    case TokenKind::kKwConst: return "'const'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kKwGoto: return "'goto'";
    case TokenKind::kKwTrue: return "'true'";
    case TokenKind::kKwFalse: return "'false'";
    case TokenKind::kKwIndexSet: return "'index_set'";
    case TokenKind::kKwPar: return "'par'";
    case TokenKind::kKwSeq: return "'seq'";
    case TokenKind::kKwSolve: return "'solve'";
    case TokenKind::kKwOneof: return "'oneof'";
    case TokenKind::kKwSt: return "'st'";
    case TokenKind::kKwOthers: return "'others'";
    case TokenKind::kKwMap: return "'map'";
    case TokenKind::kKwPermute: return "'permute'";
    case TokenKind::kKwFold: return "'fold'";
    case TokenKind::kKwCopy: return "'copy'";
    case TokenKind::kKwInf: return "'INF'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kMapsTo: return "':-'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kPercentAssign: return "'%='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kRedAdd: return "'$+'";
    case TokenKind::kRedMul: return "'$*'";
    case TokenKind::kRedAnd: return "'$&&'";
    case TokenKind::kRedOr: return "'$||'";
    case TokenKind::kRedXor: return "'$^'";
    case TokenKind::kRedMax: return "'$>'";
    case TokenKind::kRedMin: return "'$<'";
    case TokenKind::kRedArb: return "'$,'";
  }
  return "?";
}

TokenKind classify_keyword(std::string_view spelling) {
  static const std::unordered_map<std::string_view, TokenKind> kKeywords = {
      {"int", TokenKind::kKwInt},
      {"float", TokenKind::kKwFloat},
      {"double", TokenKind::kKwDouble},
      {"char", TokenKind::kKwChar},
      {"bool", TokenKind::kKwBool},
      {"void", TokenKind::kKwVoid},
      {"const", TokenKind::kKwConst},
      {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},
      {"while", TokenKind::kKwWhile},
      {"for", TokenKind::kKwFor},
      {"return", TokenKind::kKwReturn},
      {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue},
      {"goto", TokenKind::kKwGoto},
      {"true", TokenKind::kKwTrue},
      {"false", TokenKind::kKwFalse},
      {"index_set", TokenKind::kKwIndexSet},
      {"par", TokenKind::kKwPar},
      {"seq", TokenKind::kKwSeq},
      {"solve", TokenKind::kKwSolve},
      {"oneof", TokenKind::kKwOneof},
      {"st", TokenKind::kKwSt},
      {"others", TokenKind::kKwOthers},
      {"map", TokenKind::kKwMap},
      {"permute", TokenKind::kKwPermute},
      {"fold", TokenKind::kKwFold},
      {"copy", TokenKind::kKwCopy},
      {"INF", TokenKind::kKwInf},
  };
  auto it = kKeywords.find(spelling);
  return it == kKeywords.end() ? TokenKind::kIdent : it->second;
}

bool is_reduction_token(TokenKind k) {
  switch (k) {
    case TokenKind::kRedAdd:
    case TokenKind::kRedMul:
    case TokenKind::kRedAnd:
    case TokenKind::kRedOr:
    case TokenKind::kRedXor:
    case TokenKind::kRedMax:
    case TokenKind::kRedMin:
    case TokenKind::kRedArb:
      return true;
    default:
      return false;
  }
}

bool is_type_keyword(TokenKind k) {
  switch (k) {
    case TokenKind::kKwInt:
    case TokenKind::kKwFloat:
    case TokenKind::kKwDouble:
    case TokenKind::kKwChar:
    case TokenKind::kKwBool:
    case TokenKind::kKwVoid:
      return true;
    default:
      return false;
  }
}

}  // namespace uc::lang
