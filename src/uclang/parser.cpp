#include "uclang/parser.hpp"

#include <limits>

namespace uc::lang {

namespace {

ScalarKind scalar_kind_for(TokenKind k) {
  switch (k) {
    case TokenKind::kKwInt: return ScalarKind::kInt;
    case TokenKind::kKwFloat: return ScalarKind::kFloat;
    case TokenKind::kKwDouble: return ScalarKind::kFloat;  // one float type
    case TokenKind::kKwChar: return ScalarKind::kChar;
    case TokenKind::kKwBool: return ScalarKind::kBool;
    case TokenKind::kKwVoid: return ScalarKind::kVoid;
    default: return ScalarKind::kInt;
  }
}

ReduceKind reduce_kind_for(TokenKind k) {
  switch (k) {
    case TokenKind::kRedAdd: return ReduceKind::kAdd;
    case TokenKind::kRedMul: return ReduceKind::kMul;
    case TokenKind::kRedAnd: return ReduceKind::kAnd;
    case TokenKind::kRedOr: return ReduceKind::kOr;
    case TokenKind::kRedXor: return ReduceKind::kXor;
    case TokenKind::kRedMax: return ReduceKind::kMax;
    case TokenKind::kRedMin: return ReduceKind::kMin;
    case TokenKind::kRedArb: return ReduceKind::kArb;
    default: return ReduceKind::kAdd;
  }
}

// Binary operator precedence, higher binds tighter; -1 = not a binary op.
int binary_precedence(TokenKind k) {
  switch (k) {
    case TokenKind::kPipePipe: return 1;
    case TokenKind::kAmpAmp: return 2;
    case TokenKind::kPipe: return 3;
    case TokenKind::kCaret: return 4;
    case TokenKind::kAmp: return 5;
    case TokenKind::kEq:
    case TokenKind::kNe: return 6;
    case TokenKind::kLt:
    case TokenKind::kGt:
    case TokenKind::kLe:
    case TokenKind::kGe: return 7;
    case TokenKind::kShl:
    case TokenKind::kShr: return 8;
    case TokenKind::kPlus:
    case TokenKind::kMinus: return 9;
    case TokenKind::kStar:
    case TokenKind::kSlash:
    case TokenKind::kPercent: return 10;
    default: return -1;
  }
}

BinaryOp binary_op_for(TokenKind k) {
  switch (k) {
    case TokenKind::kPipePipe: return BinaryOp::kLogOr;
    case TokenKind::kAmpAmp: return BinaryOp::kLogAnd;
    case TokenKind::kPipe: return BinaryOp::kBitOr;
    case TokenKind::kCaret: return BinaryOp::kBitXor;
    case TokenKind::kAmp: return BinaryOp::kBitAnd;
    case TokenKind::kEq: return BinaryOp::kEq;
    case TokenKind::kNe: return BinaryOp::kNe;
    case TokenKind::kLt: return BinaryOp::kLt;
    case TokenKind::kGt: return BinaryOp::kGt;
    case TokenKind::kLe: return BinaryOp::kLe;
    case TokenKind::kGe: return BinaryOp::kGe;
    case TokenKind::kShl: return BinaryOp::kShl;
    case TokenKind::kShr: return BinaryOp::kShr;
    case TokenKind::kPlus: return BinaryOp::kAdd;
    case TokenKind::kMinus: return BinaryOp::kSub;
    case TokenKind::kStar: return BinaryOp::kMul;
    case TokenKind::kSlash: return BinaryOp::kDiv;
    case TokenKind::kPercent: return BinaryOp::kMod;
    default: return BinaryOp::kAdd;
  }
}

bool is_assign_token(TokenKind k) {
  switch (k) {
    case TokenKind::kAssign:
    case TokenKind::kPlusAssign:
    case TokenKind::kMinusAssign:
    case TokenKind::kStarAssign:
    case TokenKind::kSlashAssign:
    case TokenKind::kPercentAssign:
      return true;
    default:
      return false;
  }
}

AssignOp assign_op_for(TokenKind k) {
  switch (k) {
    case TokenKind::kPlusAssign: return AssignOp::kAdd;
    case TokenKind::kMinusAssign: return AssignOp::kSub;
    case TokenKind::kStarAssign: return AssignOp::kMul;
    case TokenKind::kSlashAssign: return AssignOp::kDiv;
    case TokenKind::kPercentAssign: return AssignOp::kMod;
    default: return AssignOp::kAssign;
  }
}

bool is_uc_construct_keyword(TokenKind k) {
  return k == TokenKind::kKwPar || k == TokenKind::kKwSeq ||
         k == TokenKind::kKwSolve || k == TokenKind::kKwOneof;
}

UcOp uc_op_for(TokenKind k) {
  switch (k) {
    case TokenKind::kKwPar: return UcOp::kPar;
    case TokenKind::kKwSeq: return UcOp::kSeq;
    case TokenKind::kKwSolve: return UcOp::kSolve;
    case TokenKind::kKwOneof: return UcOp::kOneof;
    default: return UcOp::kPar;
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  if (tokens_.empty() || tokens_.back().kind != TokenKind::kEof) {
    Token eof;
    eof.kind = TokenKind::kEof;
    tokens_.push_back(eof);
  }
}

const Token& Parser::peek(std::size_t ahead) const {
  auto i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;
  return tokens_[i];
}

Token Parser::advance() {
  Token t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(TokenKind k) {
  if (check(k)) {
    advance();
    return true;
  }
  return false;
}

Token Parser::expect(TokenKind k, const char* what) {
  if (check(k)) return advance();
  fail(peek(), std::string("expected ") + token_kind_name(k) + " " + what +
                   ", found " + token_kind_name(peek().kind));
}

void Parser::fail(const Token& at, std::string message) {
  diags_.error(at.range, std::move(message));
  throw ParseAbort{};
}

Parser::DepthGuard::DepthGuard(Parser& p) : parser(p) {
  if (++parser.depth_ > kMaxDepth) {
    // Keep the count balanced: a throwing constructor never destructs.
    --parser.depth_;
    parser.fail(parser.peek(),
                "expression or statement nesting exceeds the parser depth "
                "limit (" +
                    std::to_string(kMaxDepth) + ")");
  }
}

void Parser::synchronize() {
  while (!check(TokenKind::kEof)) {
    if (match(TokenKind::kSemi)) return;
    if (check(TokenKind::kRBrace)) return;
    advance();
  }
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

std::unique_ptr<Program> Parser::parse_program() {
  auto program = std::make_unique<Program>();
  while (!check(TokenKind::kEof)) {
    const std::size_t before = pos_;
    try {
      parse_top_level(*program);
    } catch (ParseAbort&) {
      synchronize();
      // synchronize() stops before '}' (for statement recovery inside
      // blocks); at top level that token belongs to nobody — consume it so
      // recovery always makes progress.
      if (pos_ == before && !check(TokenKind::kEof)) advance();
    }
  }
  return program;
}

void Parser::parse_top_level(Program& program) {
  auto begin = peek().range.begin;
  if (check(TokenKind::kKwIndexSet)) {
    advance();
    program.items.push_back(TopLevel{parse_index_set_decl(begin), nullptr});
    return;
  }
  if (check(TokenKind::kKwMap)) {
    advance();
    program.items.push_back(TopLevel{parse_map_section(begin), nullptr});
    return;
  }
  bool is_const = match(TokenKind::kKwConst);
  if (!is_type_keyword(peek().kind)) {
    fail(peek(), "expected a declaration or function at top level");
  }
  ScalarKind scalar = scalar_kind_for(advance().kind);
  if (check(TokenKind::kIdent) && peek(1).kind == TokenKind::kLParen) {
    if (is_const) fail(peek(), "functions cannot be declared const");
    Token name = advance();
    program.items.push_back(TopLevel{nullptr, parse_function(scalar, name)});
    return;
  }
  program.items.push_back(TopLevel{parse_var_decl(is_const, scalar, begin),
                                   nullptr});
}

std::unique_ptr<FuncDecl> Parser::parse_function(ScalarKind ret,
                                                 const Token& name_tok) {
  auto fn = std::make_unique<FuncDecl>();
  fn->return_scalar = ret;
  fn->name = name_tok.text;
  fn->range = name_tok.range;
  expect(TokenKind::kLParen, "after function name");
  if (!check(TokenKind::kRParen)) {
    do {
      Param p;
      if (!is_type_keyword(peek().kind)) {
        fail(peek(), "expected a parameter type");
      }
      p.scalar = scalar_kind_for(advance().kind);
      // Reject pointer syntax explicitly (paper §3: pointers only as array
      // parameters, which UC writes with [] syntax).
      if (check(TokenKind::kStar)) {
        fail(peek(),
             "pointer parameters are not allowed in UC; "
             "declare an array parameter with [] instead");
      }
      Token pname = expect(TokenKind::kIdent, "as parameter name");
      p.name = pname.text;
      p.range = pname.range;
      while (match(TokenKind::kLBracket)) {
        p.is_array = true;
        ++p.array_rank;
        // Dimensions in parameter arrays are ignored (C decay) but allowed.
        if (!check(TokenKind::kRBracket)) (void)parse_expression();
        expect(TokenKind::kRBracket, "to close array parameter");
      }
      fn->params.push_back(std::move(p));
    } while (match(TokenKind::kComma));
  }
  expect(TokenKind::kRParen, "to close parameter list");
  auto body = parse_compound();
  fn->body.reset(static_cast<CompoundStmt*>(body.release()));
  return fn;
}

StmtPtr Parser::parse_var_decl(bool is_const, ScalarKind scalar,
                               support::SourceLoc begin) {
  auto decl = std::make_unique<VarDeclStmt>();
  decl->scalar = scalar;
  decl->is_const = is_const;
  do {
    if (check(TokenKind::kStar)) {
      fail(peek(),
           "pointer declarations are not allowed in UC "
           "(paper §3: pointers may only pass arrays to functions)");
    }
    VarDeclarator d;
    Token name = expect(TokenKind::kIdent, "as variable name");
    d.name = name.text;
    d.range = name.range;
    while (match(TokenKind::kLBracket)) {
      d.dim_exprs.push_back(parse_expression());
      expect(TokenKind::kRBracket, "to close array dimension");
    }
    if (match(TokenKind::kAssign)) {
      d.init = parse_assignment();
    }
    decl->declarators.push_back(std::move(d));
  } while (match(TokenKind::kComma));
  expect(TokenKind::kSemi, "after declaration");
  decl->range = {begin, previous().range.end};
  return decl;
}

StmtPtr Parser::parse_index_set_decl(support::SourceLoc begin) {
  auto decl = std::make_unique<IndexSetDeclStmt>();
  do {
    decl->defs.push_back(parse_index_set_def());
  } while (match(TokenKind::kComma));
  expect(TokenKind::kSemi, "after index_set declaration");
  decl->range = {begin, previous().range.end};
  return decl;
}

IndexSetDef Parser::parse_index_set_def() {
  IndexSetDef def;
  Token set = expect(TokenKind::kIdent, "as index set name");
  def.set_name = set.text;
  def.range = set.range;
  expect(TokenKind::kColon, "between set name and element name");
  Token elem = expect(TokenKind::kIdent, "as index element name");
  def.elem_name = elem.text;
  expect(TokenKind::kAssign, "in index_set definition");
  if (match(TokenKind::kLBrace)) {
    auto first = parse_ternary();  // no assignment inside set definitions
    if (match(TokenKind::kDotDot)) {
      def.range_lo = std::move(first);
      def.range_hi = parse_ternary();
    } else {
      def.listed.push_back(std::move(first));
      while (match(TokenKind::kComma)) {
        def.listed.push_back(parse_ternary());
      }
    }
    expect(TokenKind::kRBrace, "to close index set definition");
  } else {
    Token alias = expect(TokenKind::kIdent, "naming an existing index set");
    def.alias = alias.text;
  }
  def.range.end = previous().range.end;
  return def;
}

StmtPtr Parser::parse_map_section(support::SourceLoc begin) {
  auto section = std::make_unique<MapSectionStmt>();
  expect(TokenKind::kLParen, "after 'map'");
  section->index_sets = parse_index_set_name_list();
  expect(TokenKind::kRParen, "to close map header");
  expect(TokenKind::kLBrace, "to open map section");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    section->mappings.push_back(parse_mapping());
  }
  expect(TokenKind::kRBrace, "to close map section");
  section->range = {begin, previous().range.end};
  return section;
}

Mapping Parser::parse_mapping() {
  Mapping m;
  auto begin = peek().range.begin;
  if (match(TokenKind::kKwPermute)) {
    m.kind = MapKind::kPermute;
  } else if (match(TokenKind::kKwFold)) {
    m.kind = MapKind::kFold;
  } else if (match(TokenKind::kKwCopy)) {
    m.kind = MapKind::kCopy;
  } else {
    fail(peek(), "expected 'permute', 'fold' or 'copy' in map section");
  }
  expect(TokenKind::kLParen, "after mapping keyword");
  m.index_sets = parse_index_set_name_list();
  expect(TokenKind::kRParen, "to close mapping index sets");

  // Target side: array [subscripts...]
  Token target = expect(TokenKind::kIdent, "naming the array to re-map");
  m.target_array = target.text;
  while (match(TokenKind::kLBracket)) {
    m.target_subscripts.push_back(parse_expression());
    expect(TokenKind::kRBracket, "to close mapping subscript");
  }
  if (m.kind == MapKind::kCopy) {
    // copy (J) a;  — replicate a along J (syntax defined by us, DESIGN.md §2)
    expect(TokenKind::kSemi, "after copy mapping");
  } else {
    expect(TokenKind::kMapsTo, "(':-') between mapping sides");
    Token source = expect(TokenKind::kIdent, "naming the reference array");
    m.source_array = source.text;
    while (match(TokenKind::kLBracket)) {
      m.source_subscripts.push_back(parse_expression());
      expect(TokenKind::kRBracket, "to close mapping subscript");
    }
    expect(TokenKind::kSemi, "after mapping");
  }
  m.range = {begin, previous().range.end};
  return m;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

std::vector<std::string> Parser::parse_index_set_name_list() {
  std::vector<std::string> names;
  do {
    Token t = expect(TokenKind::kIdent, "naming an index set");
    names.push_back(t.text);
  } while (match(TokenKind::kComma));
  return names;
}

StmtPtr Parser::parse_statement() {
  DepthGuard depth(*this);
  auto begin = peek().range.begin;
  switch (peek().kind) {
    case TokenKind::kLBrace:
      return parse_compound();
    case TokenKind::kSemi: {
      advance();
      auto s = std::make_unique<EmptyStmt>();
      s->range = {begin, previous().range.end};
      return s;
    }
    case TokenKind::kKwIf:
      return parse_if();
    case TokenKind::kKwWhile:
      return parse_while();
    case TokenKind::kKwFor:
      return parse_for();
    case TokenKind::kKwReturn: {
      advance();
      auto s = std::make_unique<ReturnStmt>();
      if (!check(TokenKind::kSemi)) s->value = parse_expression();
      expect(TokenKind::kSemi, "after return");
      s->range = {begin, previous().range.end};
      return s;
    }
    case TokenKind::kKwBreak: {
      advance();
      expect(TokenKind::kSemi, "after break");
      auto s = std::make_unique<BreakStmt>();
      s->range = {begin, previous().range.end};
      return s;
    }
    case TokenKind::kKwContinue: {
      advance();
      expect(TokenKind::kSemi, "after continue");
      auto s = std::make_unique<ContinueStmt>();
      s->range = {begin, previous().range.end};
      return s;
    }
    case TokenKind::kKwGoto:
      fail(peek(), "goto is not allowed in UC (paper §3)");
    case TokenKind::kKwIndexSet:
      advance();
      return parse_index_set_decl(begin);
    case TokenKind::kKwMap:
      advance();
      return parse_map_section(begin);
    case TokenKind::kKwConst: {
      advance();
      if (!is_type_keyword(peek().kind)) {
        fail(peek(), "expected a type after 'const'");
      }
      ScalarKind scalar = scalar_kind_for(advance().kind);
      return parse_var_decl(/*is_const=*/true, scalar, begin);
    }
    case TokenKind::kStar:
      // UC has no pointer dereference, so a statement-leading '*' must be
      // the iterate prefix of par/seq/oneof/solve.
      advance();
      if (!is_uc_construct_keyword(peek().kind)) {
        fail(peek(),
             "expected par, seq, oneof or solve after '*' "
             "(UC has no pointer dereference)");
      }
      return parse_uc_construct(/*starred=*/true, begin);
    default:
      break;
  }
  if (is_uc_construct_keyword(peek().kind)) {
    return parse_uc_construct(/*starred=*/false, begin);
  }
  if (is_type_keyword(peek().kind)) {
    ScalarKind scalar = scalar_kind_for(advance().kind);
    return parse_var_decl(/*is_const=*/false, scalar, begin);
  }
  auto s = std::make_unique<ExprStmt>();
  s->expr = parse_expression();
  expect(TokenKind::kSemi, "after expression statement");
  s->range = {begin, previous().range.end};
  return s;
}

StmtPtr Parser::parse_compound() {
  auto begin = peek().range.begin;
  expect(TokenKind::kLBrace, "to open block");
  auto block = std::make_unique<CompoundStmt>();
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    try {
      block->body.push_back(parse_statement());
    } catch (ParseAbort&) {
      synchronize();
    }
  }
  expect(TokenKind::kRBrace, "to close block");
  block->range = {begin, previous().range.end};
  return block;
}

StmtPtr Parser::parse_if() {
  auto begin = peek().range.begin;
  advance();  // if
  expect(TokenKind::kLParen, "after 'if'");
  auto s = std::make_unique<IfStmt>();
  s->cond = parse_expression();
  expect(TokenKind::kRParen, "to close if condition");
  s->then_stmt = parse_statement();
  if (match(TokenKind::kKwElse)) s->else_stmt = parse_statement();
  s->range = {begin, previous().range.end};
  return s;
}

StmtPtr Parser::parse_while() {
  auto begin = peek().range.begin;
  advance();  // while
  expect(TokenKind::kLParen, "after 'while'");
  auto s = std::make_unique<WhileStmt>();
  s->cond = parse_expression();
  expect(TokenKind::kRParen, "to close while condition");
  s->body = parse_statement();
  s->range = {begin, previous().range.end};
  return s;
}

StmtPtr Parser::parse_for() {
  auto begin = peek().range.begin;
  advance();  // for
  expect(TokenKind::kLParen, "after 'for'");
  auto s = std::make_unique<ForStmt>();
  if (match(TokenKind::kSemi)) {
    // no init
  } else if (is_type_keyword(peek().kind)) {
    ScalarKind scalar = scalar_kind_for(advance().kind);
    s->init = parse_var_decl(false, scalar, begin);  // consumes ';'
  } else {
    auto init = std::make_unique<ExprStmt>();
    init->expr = parse_expression();
    init->range = init->expr->range;
    s->init = std::move(init);
    expect(TokenKind::kSemi, "after for initializer");
  }
  if (!check(TokenKind::kSemi)) s->cond = parse_expression();
  expect(TokenKind::kSemi, "after for condition");
  if (!check(TokenKind::kRParen)) s->step = parse_expression();
  expect(TokenKind::kRParen, "to close for header");
  s->body = parse_statement();
  s->range = {begin, previous().range.end};
  return s;
}

StmtPtr Parser::parse_uc_construct(bool starred, support::SourceLoc begin) {
  auto s = std::make_unique<UcConstructStmt>();
  s->starred = starred;
  s->op = uc_op_for(advance().kind);
  if (starred && s->op == UcOp::kSolve) {
    // *solve is legal (paper §3.6) — nothing special at parse time.
  }
  expect(TokenKind::kLParen, "after UC construct keyword");
  s->index_sets = parse_index_set_name_list();
  expect(TokenKind::kRParen, "to close index set list");

  if (check(TokenKind::kKwSt)) {
    while (match(TokenKind::kKwSt)) {
      ScBlock block;
      expect(TokenKind::kLParen, "after 'st'");
      block.pred = parse_expression();
      expect(TokenKind::kRParen, "to close st predicate");
      block.body = parse_statement();
      s->blocks.push_back(std::move(block));
    }
    if (match(TokenKind::kKwOthers)) {
      s->others = parse_statement();
    }
  } else {
    ScBlock block;
    block.body = parse_statement();
    s->blocks.push_back(std::move(block));
    // Paper grammar: `others` follows sc-blocks only.  A bare-statement
    // body followed by `others` binds the others to an enclosing construct.
  }
  s->range = {begin, previous().range.end};
  return s;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expression() { return parse_assignment(); }

ExprPtr Parser::parse_assignment() {
  auto lhs = parse_ternary();
  if (is_assign_token(peek().kind)) {
    Token op = advance();
    auto e = std::make_unique<AssignExpr>();
    e->op = assign_op_for(op.kind);
    e->range = {lhs->range.begin, {0}};
    e->lhs = std::move(lhs);
    e->rhs = parse_assignment();  // right associative
    e->range.end = e->rhs->range.end;
    return e;
  }
  return lhs;
}

ExprPtr Parser::parse_ternary() {
  auto cond = parse_binary(1);
  if (match(TokenKind::kQuestion)) {
    auto e = std::make_unique<TernaryExpr>();
    e->range = {cond->range.begin, {0}};
    e->cond = std::move(cond);
    e->then_expr = parse_assignment();
    expect(TokenKind::kColon, "in ternary expression");
    e->else_expr = parse_assignment();
    e->range.end = e->else_expr->range.end;
    return e;
  }
  return cond;
}

ExprPtr Parser::parse_binary(int min_prec) {
  auto lhs = parse_unary();
  for (;;) {
    int prec = binary_precedence(peek().kind);
    if (prec < min_prec) return lhs;
    Token op = advance();
    auto rhs = parse_binary(prec + 1);
    auto e = std::make_unique<BinaryExpr>();
    e->op = binary_op_for(op.kind);
    e->range = {lhs->range.begin, rhs->range.end};
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    lhs = std::move(e);
  }
}

ExprPtr Parser::parse_unary() {
  DepthGuard depth(*this);
  auto begin = peek().range.begin;
  switch (peek().kind) {
    case TokenKind::kMinus:
    case TokenKind::kBang:
    case TokenKind::kTilde:
    case TokenKind::kPlus: {
      Token op = advance();
      auto e = std::make_unique<UnaryExpr>();
      switch (op.kind) {
        case TokenKind::kMinus: e->op = UnaryOp::kNeg; break;
        case TokenKind::kBang: e->op = UnaryOp::kNot; break;
        case TokenKind::kTilde: e->op = UnaryOp::kBitNot; break;
        default: e->op = UnaryOp::kPlus; break;
      }
      e->operand = parse_unary();
      e->range = {begin, e->operand->range.end};
      return e;
    }
    case TokenKind::kPlusPlus:
    case TokenKind::kMinusMinus: {
      Token op = advance();
      auto e = std::make_unique<IncDecExpr>();
      e->is_increment = op.kind == TokenKind::kPlusPlus;
      e->is_prefix = true;
      e->operand = parse_unary();
      e->range = {begin, e->operand->range.end};
      return e;
    }
    case TokenKind::kStar:
      fail(peek(), "pointer dereference is not allowed in UC");
    case TokenKind::kAmp:
      fail(peek(), "address-of is not allowed in UC");
    default:
      return parse_postfix();
  }
}

ExprPtr Parser::parse_postfix() {
  auto e = parse_primary();
  for (;;) {
    if (check(TokenKind::kLBracket)) {
      auto sub = std::make_unique<SubscriptExpr>();
      sub->range = {e->range.begin, {0}};
      sub->base = std::move(e);
      while (match(TokenKind::kLBracket)) {
        sub->indices.push_back(parse_expression());
        expect(TokenKind::kRBracket, "to close subscript");
      }
      sub->range.end = previous().range.end;
      e = std::move(sub);
    } else if (check(TokenKind::kPlusPlus) || check(TokenKind::kMinusMinus)) {
      Token op = advance();
      auto inc = std::make_unique<IncDecExpr>();
      inc->is_increment = op.kind == TokenKind::kPlusPlus;
      inc->is_prefix = false;
      inc->range = {e->range.begin, op.range.end};
      inc->operand = std::move(e);
      e = std::move(inc);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parse_primary() {
  auto begin = peek().range.begin;
  if (is_reduction_token(peek().kind)) return parse_reduction();
  switch (peek().kind) {
    case TokenKind::kIntLit: {
      Token t = advance();
      auto e = std::make_unique<IntLitExpr>();
      e->value = t.int_value;
      e->range = t.range;
      return e;
    }
    case TokenKind::kFloatLit: {
      Token t = advance();
      auto e = std::make_unique<FloatLitExpr>();
      e->value = t.float_value;
      e->range = t.range;
      return e;
    }
    case TokenKind::kCharLit: {
      Token t = advance();
      auto e = std::make_unique<IntLitExpr>();
      e->value = t.int_value;
      e->range = t.range;
      return e;
    }
    case TokenKind::kStringLit: {
      Token t = advance();
      auto e = std::make_unique<StringLitExpr>();
      e->value = t.text;
      e->range = t.range;
      return e;
    }
    case TokenKind::kKwTrue:
    case TokenKind::kKwFalse: {
      Token t = advance();
      auto e = std::make_unique<IntLitExpr>();
      e->value = t.kind == TokenKind::kKwTrue ? 1 : 0;
      e->range = t.range;
      return e;
    }
    case TokenKind::kKwInf: {
      Token t = advance();
      auto e = std::make_unique<IdentExpr>();
      e->name = "INF";
      e->range = t.range;
      return e;
    }
    case TokenKind::kIdent: {
      Token t = advance();
      if (check(TokenKind::kLParen)) {
        auto call = std::make_unique<CallExpr>();
        call->callee = t.text;
        advance();  // '('
        if (!check(TokenKind::kRParen)) {
          do {
            call->args.push_back(parse_assignment());
          } while (match(TokenKind::kComma));
        }
        expect(TokenKind::kRParen, "to close call");
        call->range = {begin, previous().range.end};
        return call;
      }
      auto e = std::make_unique<IdentExpr>();
      e->name = t.text;
      e->range = t.range;
      return e;
    }
    case TokenKind::kLParen: {
      advance();
      auto e = parse_expression();
      expect(TokenKind::kRParen, "to close parenthesised expression");
      return e;
    }
    default:
      fail(peek(), std::string("expected an expression, found ") +
                       token_kind_name(peek().kind));
  }
}

ExprPtr Parser::parse_reduction() {
  auto begin = peek().range.begin;
  Token op = advance();
  auto e = std::make_unique<ReduceExpr>();
  e->op = reduce_kind_for(op.kind);
  expect(TokenKind::kLParen, "after reduction operator");
  e->index_sets = parse_index_set_name_list();
  // Either `; expr` or (optionally after ';') `st (pred) expr ... [others e]`.
  bool had_semi = match(TokenKind::kSemi);
  if (check(TokenKind::kKwSt)) {
    while (match(TokenKind::kKwSt)) {
      ReduceArm arm;
      expect(TokenKind::kLParen, "after 'st'");
      arm.pred = parse_expression();
      expect(TokenKind::kRParen, "to close st predicate");
      arm.value = parse_assignment();
      e->arms.push_back(std::move(arm));
    }
    if (match(TokenKind::kKwOthers)) {
      e->others = parse_assignment();
    }
  } else {
    if (!had_semi) {
      fail(peek(),
           "expected ';' or 'st' after the index sets of a reduction");
    }
    ReduceArm arm;
    arm.value = parse_assignment();
    e->arms.push_back(std::move(arm));
  }
  expect(TokenKind::kRParen, "to close reduction");
  e->range = {begin, previous().range.end};
  return e;
}

}  // namespace uc::lang
