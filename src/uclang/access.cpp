#include "uclang/access.hpp"

#include "uclang/symbols.hpp"

namespace uc::lang {

namespace {

enum class Mode { kRead, kWrite, kReadWrite };

bool is_variable(const Symbol* sym) {
  if (sym == nullptr) return false;
  switch (sym->kind) {
    case SymbolKind::kGlobalVar:
    case SymbolKind::kLocalVar:
    case SymbolKind::kParam:
      return true;
    default:
      return false;
  }
}

struct Walker {
  AccessSet& out;
  const ReduceExpr* reduce = nullptr;

  void record(const Expr& site, const Symbol* base,
              const SubscriptExpr* subscript, Mode mode) {
    if (!is_variable(base)) return;
    Access a;
    a.site = &site;
    a.base = base;
    a.subscript = subscript;
    a.is_read = mode != Mode::kWrite;
    a.is_write = mode != Mode::kRead;
    a.reduce = reduce;
    out.accesses.push_back(a);
  }

  void expr(const Expr& e, Mode mode) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
        return;
      case ExprKind::kIdent: {
        const auto& id = static_cast<const IdentExpr&>(e);
        record(e, id.symbol, nullptr, mode);
        return;
      }
      case ExprKind::kSubscript: {
        const auto& s = static_cast<const SubscriptExpr&>(e);
        const Symbol* base = nullptr;
        if (s.base->kind == ExprKind::kIdent) {
          base = static_cast<const IdentExpr&>(*s.base).symbol;
        }
        record(e, base, &s, mode);
        for (const auto& idx : s.indices) expr(*idx, Mode::kRead);
        return;
      }
      case ExprKind::kCall: {
        const auto& c = static_cast<const CallExpr&>(e);
        bool is_swap =
            c.symbol != nullptr && c.symbol->kind == SymbolKind::kBuiltin &&
            c.symbol->builtin_id ==
                static_cast<std::int32_t>(BuiltinId::kSwap);
        bool is_builtin =
            c.symbol != nullptr && c.symbol->kind == SymbolKind::kBuiltin;
        if (!is_builtin) out.has_user_call = true;
        for (const auto& a : c.args) {
          expr(*a, is_swap ? Mode::kReadWrite : Mode::kRead);
        }
        return;
      }
      case ExprKind::kUnary:
        expr(*static_cast<const UnaryExpr&>(e).operand, Mode::kRead);
        return;
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        expr(*b.lhs, Mode::kRead);
        expr(*b.rhs, Mode::kRead);
        return;
      }
      case ExprKind::kAssign: {
        const auto& a = static_cast<const AssignExpr&>(e);
        expr(*a.lhs,
             a.op == AssignOp::kAssign ? Mode::kWrite : Mode::kReadWrite);
        expr(*a.rhs, Mode::kRead);
        return;
      }
      case ExprKind::kTernary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        expr(*t.cond, Mode::kRead);
        expr(*t.then_expr, Mode::kRead);
        expr(*t.else_expr, Mode::kRead);
        return;
      }
      case ExprKind::kReduce: {
        const auto& r = static_cast<const ReduceExpr&>(e);
        const ReduceExpr* saved = reduce;
        reduce = &r;
        for (const auto& arm : r.arms) {
          if (arm.pred) expr(*arm.pred, Mode::kRead);
          expr(*arm.value, Mode::kRead);
        }
        if (r.others) expr(*r.others, Mode::kRead);
        reduce = saved;
        return;
      }
      case ExprKind::kIncDec:
        expr(*static_cast<const IncDecExpr&>(e).operand, Mode::kReadWrite);
        return;
    }
  }

  void stmt(const Stmt& s, bool enter_constructs) {
    switch (s.kind) {
      case StmtKind::kExpr:
        expr(*static_cast<const ExprStmt&>(s).expr, Mode::kRead);
        return;
      case StmtKind::kCompound:
        for (const auto& child : static_cast<const CompoundStmt&>(s).body) {
          stmt(*child, enter_constructs);
        }
        return;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        expr(*i.cond, Mode::kRead);
        stmt(*i.then_stmt, enter_constructs);
        if (i.else_stmt) stmt(*i.else_stmt, enter_constructs);
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        expr(*w.cond, Mode::kRead);
        stmt(*w.body, enter_constructs);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) stmt(*f.init, enter_constructs);
        if (f.cond) expr(*f.cond, Mode::kRead);
        if (f.step) expr(*f.step, Mode::kRead);
        stmt(*f.body, enter_constructs);
        return;
      }
      case StmtKind::kReturn: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value) expr(*r.value, Mode::kRead);
        return;
      }
      case StmtKind::kVarDecl: {
        const auto& d = static_cast<const VarDeclStmt&>(s);
        for (const auto& dec : d.declarators) {
          if (dec.init) expr(*dec.init, Mode::kRead);
        }
        return;
      }
      case StmtKind::kUcConstruct: {
        if (!enter_constructs) return;
        const auto& u = static_cast<const UcConstructStmt&>(s);
        for (const auto& block : u.blocks) {
          if (block.pred) expr(*block.pred, Mode::kRead);
          stmt(*block.body, enter_constructs);
        }
        if (u.others) stmt(*u.others, enter_constructs);
        return;
      }
      case StmtKind::kIndexSetDecl:
      case StmtKind::kMapSection:
      case StmtKind::kBreak:
      case StmtKind::kContinue:
      case StmtKind::kEmpty:
        return;
    }
  }
};

}  // namespace

void collect_accesses(const Expr& e, AccessSet& out) {
  Walker w{out};
  w.expr(e, Mode::kRead);
}

void collect_accesses(const Stmt& s, AccessSet& out, bool enter_constructs) {
  Walker w{out};
  w.stmt(s, enter_constructs);
}

}  // namespace uc::lang
