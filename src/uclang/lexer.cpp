#include "uclang/lexer.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

namespace uc::lang {

Lexer::Lexer(const support::SourceFile& file, support::DiagnosticEngine& diags)
    : file_(file), diags_(diags), text_(file.text()) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = text_[pos_++];
  at_line_start_ = c == '\n';
  return c;
}

bool Lexer::match(char c) {
  if (peek() == c) {
    advance();
    return true;
  }
  return false;
}

void Lexer::skip_whitespace_and_comments() {
  for (;;) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      auto begin = loc();
      advance();
      advance();
      while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
      if (at_end()) {
        diags_.error({begin, loc()}, "unterminated block comment");
        return;
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::make(TokenKind kind, support::SourceLoc begin) {
  Token t;
  t.kind = kind;
  t.range = {begin, loc()};
  t.text = std::string(text_.substr(begin.offset, loc().offset - begin.offset));
  return t;
}

Token Lexer::lex_number(support::SourceLoc begin) {
  bool is_float = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  // '..' is the range token, so only treat '.' as a fraction when it is not
  // followed by another '.'.
  if (peek() == '.' && peek(1) != '.') {
    is_float = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    std::size_t save = pos_;
    advance();
    if (peek() == '+' || peek() == '-') advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      is_float = true;
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    } else {
      pos_ = save;  // not an exponent after all
    }
  }
  auto t = make(is_float ? TokenKind::kFloatLit : TokenKind::kIntLit, begin);
  if (is_float) {
    // strtod turns an overflowing exponent into ±inf, which would silently
    // poison every arithmetic result downstream; make it a compile error
    // like the integer case below.  (Underflow to 0.0 stays legal.)
    t.float_value = std::strtod(t.text.c_str(), nullptr);
    if (!std::isfinite(t.float_value)) {
      diags_.error(t.range, "float literal '" + t.text +
                                "' is out of range for a double");
      t.float_value = 0.0;
    }
  } else {
    // strtoll saturates to LLONG_MAX on overflow, which would silently
    // change the program's constants; make it a compile error instead.
    errno = 0;
    char* end = nullptr;
    t.int_value = std::strtoll(t.text.c_str(), &end, 10);
    if (errno == ERANGE || end == t.text.c_str() || *end != '\0') {
      diags_.error(t.range, "integer literal '" + t.text +
                                "' does not fit in a 64-bit int");
      t.int_value = 0;
    }
  }
  return t;
}

Token Lexer::lex_ident_or_keyword(support::SourceLoc begin) {
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    advance();
  }
  auto t = make(TokenKind::kIdent, begin);
  // The paper spells the keyword `index-set`; accept that exact spelling in
  // addition to the C-friendly `index_set`.
  if (t.text == "index" && peek() == '-' &&
      text_.substr(pos_ + 1, 3) == "set" &&
      !(std::isalnum(static_cast<unsigned char>(peek(4))) || peek(4) == '_')) {
    advance();  // '-'
    advance();  // 's'
    advance();  // 'e'
    advance();  // 't'
    t = make(TokenKind::kKwIndexSet, begin);
    return t;
  }
  t.kind = classify_keyword(t.text);
  return t;
}

Token Lexer::lex_char_literal(support::SourceLoc begin) {
  // Opening quote already consumed.
  std::int64_t value = 0;
  if (peek() == '\\') {
    advance();
    char esc = advance();
    switch (esc) {
      case 'n': value = '\n'; break;
      case 't': value = '\t'; break;
      case '0': value = '\0'; break;
      case '\\': value = '\\'; break;
      case '\'': value = '\''; break;
      default:
        diags_.error({begin, loc()}, "unknown escape in char literal");
        value = esc;
    }
  } else if (!at_end()) {
    value = advance();
  }
  if (!match('\'')) {
    diags_.error({begin, loc()}, "unterminated char literal");
  }
  auto t = make(TokenKind::kCharLit, begin);
  t.int_value = value;
  return t;
}

Token Lexer::lex_string_literal(support::SourceLoc begin) {
  std::string value;
  while (!at_end() && peek() != '"') {
    if (peek() == '\\') {
      advance();
      char esc = advance();
      switch (esc) {
        case 'n': value += '\n'; break;
        case 't': value += '\t'; break;
        case '\\': value += '\\'; break;
        case '"': value += '"'; break;
        default: value += esc;
      }
    } else {
      value += advance();
    }
  }
  if (!match('"')) {
    diags_.error({begin, loc()}, "unterminated string literal");
  }
  auto t = make(TokenKind::kStringLit, begin);
  t.text = value;  // payload, not spelling
  return t;
}

Token Lexer::lex_dollar(support::SourceLoc begin) {
  // $+ $* $&& (or $&) $|| (or $|) $^ $> $< $,
  switch (peek()) {
    case '+': advance(); return make(TokenKind::kRedAdd, begin);
    case '*': advance(); return make(TokenKind::kRedMul, begin);
    case '^': advance(); return make(TokenKind::kRedXor, begin);
    case '>': advance(); return make(TokenKind::kRedMax, begin);
    case '<': advance(); return make(TokenKind::kRedMin, begin);
    case ',': advance(); return make(TokenKind::kRedArb, begin);
    case '&':
      advance();
      match('&');
      return make(TokenKind::kRedAnd, begin);
    case '|':
      advance();
      match('|');
      return make(TokenKind::kRedOr, begin);
    default:
      diags_.error({begin, loc()},
                   "expected a reduction operator after '$' "
                   "(one of + * && || ^ > < ,)");
      return make(TokenKind::kRedAdd, begin);
  }
}

void Lexer::handle_directive() {
  // We are just past '#'.  Only `#define NAME tokens...` is supported.
  auto begin = loc();
  skip_whitespace_and_comments();
  std::string word;
  while (std::isalpha(static_cast<unsigned char>(peek()))) word += advance();
  if (word != "define") {
    diags_.error({begin, loc()},
                 "unsupported preprocessor directive '#" + word +
                     "' (only object-like #define is supported)");
    while (!at_end() && peek() != '\n') advance();
    return;
  }
  while (peek() == ' ' || peek() == '\t') advance();
  auto name_begin = loc();
  std::string name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    name += advance();
  }
  if (name.empty()) {
    diags_.error({name_begin, loc()}, "#define requires a macro name");
    while (!at_end() && peek() != '\n') advance();
    return;
  }
  if (peek() == '(') {
    diags_.error({name_begin, loc()},
                 "function-like macros are not supported");
    while (!at_end() && peek() != '\n') advance();
    return;
  }
  // Lex the replacement tokens up to end of line.
  std::vector<Token> replacement;
  for (;;) {
    while (peek() == ' ' || peek() == '\t') advance();
    if (at_end() || peek() == '\n') break;
    if (peek() == '/' && (peek(1) == '/' || peek(1) == '*')) {
      skip_whitespace_and_comments();
      // A block comment may run past the line; treat that as end of macro.
      continue;
    }
    replacement.push_back(next_raw());
    if (replacement.back().kind == TokenKind::kEof) {
      replacement.pop_back();
      break;
    }
  }
  macros_[name] = std::move(replacement);
}

Token Lexer::next_raw() {
  skip_whitespace_and_comments();
  auto begin = loc();
  if (at_end()) return make(TokenKind::kEof, begin);
  char c = advance();
  switch (c) {
    case '(': return make(TokenKind::kLParen, begin);
    case ')': return make(TokenKind::kRParen, begin);
    case '{': return make(TokenKind::kLBrace, begin);
    case '}': return make(TokenKind::kRBrace, begin);
    case '[': return make(TokenKind::kLBracket, begin);
    case ']': return make(TokenKind::kRBracket, begin);
    case ',': return make(TokenKind::kComma, begin);
    case ';': return make(TokenKind::kSemi, begin);
    case '?': return make(TokenKind::kQuestion, begin);
    case '~': return make(TokenKind::kTilde, begin);
    case ':':
      if (match('-')) return make(TokenKind::kMapsTo, begin);
      return make(TokenKind::kColon, begin);
    case '.':
      if (match('.')) return make(TokenKind::kDotDot, begin);
      diags_.error({begin, loc()}, "stray '.'");
      return next_raw();
    case '+':
      if (match('+')) return make(TokenKind::kPlusPlus, begin);
      if (match('=')) return make(TokenKind::kPlusAssign, begin);
      return make(TokenKind::kPlus, begin);
    case '-':
      if (match('-')) return make(TokenKind::kMinusMinus, begin);
      if (match('=')) return make(TokenKind::kMinusAssign, begin);
      return make(TokenKind::kMinus, begin);
    case '*':
      if (match('=')) return make(TokenKind::kStarAssign, begin);
      return make(TokenKind::kStar, begin);
    case '/':
      if (match('=')) return make(TokenKind::kSlashAssign, begin);
      return make(TokenKind::kSlash, begin);
    case '%':
      if (match('=')) return make(TokenKind::kPercentAssign, begin);
      return make(TokenKind::kPercent, begin);
    case '=':
      if (match('=')) return make(TokenKind::kEq, begin);
      return make(TokenKind::kAssign, begin);
    case '!':
      if (match('=')) return make(TokenKind::kNe, begin);
      return make(TokenKind::kBang, begin);
    case '<':
      if (match('=')) return make(TokenKind::kLe, begin);
      if (match('<')) return make(TokenKind::kShl, begin);
      return make(TokenKind::kLt, begin);
    case '>':
      if (match('=')) return make(TokenKind::kGe, begin);
      if (match('>')) return make(TokenKind::kShr, begin);
      return make(TokenKind::kGt, begin);
    case '&':
      if (match('&')) return make(TokenKind::kAmpAmp, begin);
      return make(TokenKind::kAmp, begin);
    case '|':
      if (match('|')) return make(TokenKind::kPipePipe, begin);
      return make(TokenKind::kPipe, begin);
    case '^': return make(TokenKind::kCaret, begin);
    case '$': return lex_dollar(begin);
    case '\'': return lex_char_literal(begin);
    case '"': return lex_string_literal(begin);
    default:
      if (std::isdigit(static_cast<unsigned char>(c))) {
        return lex_number(begin);
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        return lex_ident_or_keyword(begin);
      }
      diags_.error({begin, loc()},
                   std::string("unexpected character '") + c + "'");
      return next_raw();
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  std::unordered_set<std::string> expanding;  // macro recursion guard

  // Expands a token, substituting macros; appends to out.
  auto expand = [&](const Token& t, auto&& self) -> void {
    if (t.kind == TokenKind::kIdent) {
      auto it = macros_.find(t.text);
      if (it != macros_.end() && !expanding.contains(t.text)) {
        expanding.insert(t.text);
        for (const auto& rep : it->second) {
          Token r = rep;
          r.range = t.range;  // report at the use site
          self(r, self);
        }
        expanding.erase(t.text);
        return;
      }
    }
    out.push_back(t);
  };

  // True when only spaces/tabs separate pos_ from the previous newline.
  auto at_logical_line_start = [&] {
    std::size_t i = pos_;
    while (i > 0) {
      char c = text_[i - 1];
      if (c == '\n') return true;
      if (c != ' ' && c != '\t') return false;
      --i;
    }
    return true;  // beginning of file
  };

  for (;;) {
    // Preprocessor directives must start a line (possibly after spaces).
    for (;;) {
      skip_whitespace_and_comments();
      if (peek() == '#' && at_logical_line_start()) {
        advance();  // '#'
        handle_directive();
        continue;
      }
      break;
    }
    Token t = next_raw();
    if (t.kind == TokenKind::kEof) {
      out.push_back(t);
      return out;
    }
    expand(t, expand);
  }
}

}  // namespace uc::lang
