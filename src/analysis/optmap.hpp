// The static mapping optimiser (docs/MAPPING.md): enumerates candidate
// `map` sections (affine permutes, folds, copies), proves each legal with
// the dependence pass, predicts its cost by re-running the communication
// classifier under the candidate placement, and beam-searches assignments
// over interacting arrays.
//
// This layer is purely static: `uc::optimize_map` (the `ucc optimize-map`
// subcommand) sits above it and adds the emitter + replay validator.  The
// mapping-advice pass surfaces the same results as UC-A301/UC-A302 notes
// from `ucc analyze`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/depend.hpp"
#include "analysis/model.hpp"
#include "analysis/pass.hpp"

namespace uc::analysis {

enum class MapChoiceKind : std::uint8_t { kIdentity, kPermute, kFold, kCopy };

const char* map_choice_kind_name(MapChoiceKind k);

// One remapping decision for one array.  For permutes the placement is
// pos(v) = coeff*v + offset; folds pair v with extent-1-v; copies
// replicate once per element of `set`.
struct MapChoice {
  MapChoiceKind kind = MapChoiceKind::kIdentity;
  const lang::Symbol* array = nullptr;
  const lang::Symbol* set = nullptr;  // mapping index set (non-identity)
  std::int64_t coeff = 1;
  std::int64_t offset = 0;
  std::int64_t extent = 0;  // 1-D extent (permute / fold)
  std::string text;         // canonical mapping text, e.g. "copy (I) d"
  std::string proof;        // dependence-legality proof (legal choices)
};

struct Candidate {
  MapChoice choice;
  bool legal = false;
  std::string blocker;              // dependence that rejected it
  support::SourceRange blocked_at;  // interfering access, when known
  // Whole-program weighted communication estimate with only this array
  // remapped (relocation sweep included), for per-array comparisons.
  std::uint64_t predicted_cycles = 0;
  std::uint64_t relocation_cycles = 0;
};

struct ArrayPlan {
  const lang::Symbol* array = nullptr;
  std::vector<Candidate> candidates;  // identity first, then alternatives
};

// One beam-search state: the non-keep choices plus the whole-program
// prediction under them.
struct Assignment {
  std::vector<MapChoice> choices;
  std::uint64_t predicted_cycles = 0;
};

struct OptimizePlan {
  std::vector<ArrayPlan> arrays;      // sorted by array name
  std::uint64_t baseline_cycles = 0;  // prediction under current mappings
  std::vector<Assignment> ranked;     // beam results, best first
  std::size_t candidates_considered = 0;
  std::size_t candidates_blocked = 0;  // rejected by the dependence pass
};

struct OptimizeOptions {
  cm::CostModel cost;
  std::size_t beam_width = 4;
  // UC-A301 fires only when the best legal assignment improves the
  // predicted communication cycles by at least this fraction.
  double min_gain = 0.10;
};

OptimizePlan plan_mappings(const lang::CompilationUnit& unit,
                           const ProgramModel& model,
                           const OptimizeOptions& options);

// Whole-program weighted communication estimate with the given choices
// overriding the arrays' current placements (choices may be empty).
std::uint64_t predict_comm_cycles(const ProgramModel& model,
                                  const cm::CostModel& cost,
                                  const std::vector<MapChoice>& choices);

// The UC-A301 / UC-A302 advice pass (runs in the default pipeline).
std::unique_ptr<Pass> make_mapping_advice_pass();

}  // namespace uc::analysis
