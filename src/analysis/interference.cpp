// Par-block interference detection (UC-A1xx).
//
// For each parallel site, pairs of accesses to the same base are tested
// for lane overlap: can two *different* lanes touch the same storage
// location?  The test solves for the lane-index deltas forced by the
// affine subscripts, then checks them against the arms' `st` guard
// constraints (congruences, pins, element equalities) and the index
// sets' value ranges.  Anything the solver cannot decide degrades to
// "possible" (a note), never silence — and never a hard warning.
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/pass.hpp"

namespace uc::analysis {

namespace {

using lang::Symbol;

enum class Overlap : std::uint8_t { kNone, kPossible, kDefinite };

struct PairResult {
  Overlap overlap = Overlap::kNone;
  // True when some lane-index delta is forced nonzero or a free lane
  // dimension lets the two accesses come from different lanes.
  bool cross_lane = false;
};

std::int64_t floor_mod(std::int64_t a, std::int64_t m) {
  return ((a % m) + m) % m;
}

// Solves whether accesses A and B of one site can land on the same
// location from two different lanes.
PairResult lane_overlap(const ParSite& site, const SiteAccess& a,
                        const SiteAccess& b, const ProgramModel& model) {
  PairResult r;
  const Guard* ga =
      a.guard_index >= 0 ? &site.guards[a.guard_index] : nullptr;
  const Guard* gb =
      b.guard_index >= 0 ? &site.guards[b.guard_index] : nullptr;
  bool fuzzy = (ga != nullptr && (ga->data_dependent || ga->is_others)) ||
               (gb != nullptr && (gb->data_dependent || gb->is_others));

  // Scalar base: every lane hits the same storage.
  if (a.access.subscript == nullptr || b.access.subscript == nullptr) {
    bool all_pinned = !site.lanes.empty();
    for (const auto& le : site.lanes) {
      bool pinned = (ga != nullptr && ga->pins_elem(le.elem)) &&
                    (gb != nullptr && gb->pins_elem(le.elem));
      all_pinned = all_pinned && (pinned || le.size < 2);
    }
    if (site.lane_count() < 2 || all_pinned) return r;
    r.cross_lane = true;
    r.overlap = fuzzy ? Overlap::kPossible : Overlap::kDefinite;
    return r;
  }

  auto va = subscript_views(site, a, model, /*apply_placement=*/false);
  auto vb = subscript_views(site, b, model, /*apply_placement=*/false);

  // Forced per-element deltas (lane of B minus lane of A) implied by the
  // requirement that every dimension index matches.
  std::map<const Symbol*, std::int64_t> delta;
  bool freedom = false;  // some lane dimension can differ between A and B

  auto range_of = [](const Symbol* elem, std::int64_t& lo, std::int64_t& hi,
                     std::int64_t& n) {
    return elem_value_range(elem, lo, hi, n);
  };

  std::size_t common = std::min(va.size(), vb.size());
  if (va.size() != vb.size()) {
    // Rank mismatch (e.g. partial subscripting): be conservative.
    fuzzy = true;
    freedom = true;
  }

  for (std::size_t d = 0; d < common; ++d) {
    const DimView& da = va[d];
    const DimView& db = vb[d];

    auto is_elemish = [](const DimView& v) {
      return v.kind == DimKind::kIdent || v.kind == DimKind::kOffset ||
             v.kind == DimKind::kScaled || v.kind == DimKind::kScan;
    };

    if (da.kind == DimKind::kUnknown || db.kind == DimKind::kUnknown ||
        da.kind == DimKind::kMulti || db.kind == DimKind::kMulti) {
      fuzzy = true;
      freedom = true;
      continue;
    }

    if (da.kind == DimKind::kUniform && db.kind == DimKind::kUniform) {
      if (da.uniform_key == db.uniform_key) {
        if (da.offset != db.offset) return r;  // provably disjoint
        continue;                              // provably equal: neutral
      }
      fuzzy = true;  // two different runtime values: may or may not match
      continue;
    }

    if (is_elemish(da) && is_elemish(db) && da.elem == db.elem &&
        da.uniform_key == db.uniform_key && da.coeff == db.coeff &&
        da.coeff != 0) {
      // c*e_a + oa == c*e_b + ob  =>  e_b - e_a = (oa - ob) / c.
      std::int64_t num = da.offset - db.offset;
      if (num % da.coeff != 0) return r;  // no integer solution
      std::int64_t dd = num / da.coeff;
      auto [it, inserted] = delta.try_emplace(da.elem, dd);
      if (!inserted && it->second != dd) return r;  // inconsistent
      continue;
    }

    // Mixed shapes (uniform vs element, different elements, different
    // coefficients, scan vs lane): a match is possible whenever the value
    // ranges intersect; decide disjointness where we can.
    if (is_elemish(da) && db.kind == DimKind::kUniform &&
        da.uniform_key.empty() && db.uniform_key.empty()) {
      std::int64_t lo, hi, n;
      if (range_of(da.elem, lo, hi, n) && da.coeff != 0) {
        std::int64_t vlo = std::min(da.coeff * lo, da.coeff * hi) + da.offset;
        std::int64_t vhi = std::max(da.coeff * lo, da.coeff * hi) + da.offset;
        if (db.offset < vlo || db.offset > vhi) return r;
        if (n >= 2 && site.is_lane_elem(da.elem)) freedom = true;
        continue;
      }
    }
    if (is_elemish(db) && da.kind == DimKind::kUniform &&
        da.uniform_key.empty() && db.uniform_key.empty()) {
      std::int64_t lo, hi, n;
      if (range_of(db.elem, lo, hi, n) && db.coeff != 0) {
        std::int64_t vlo = std::min(db.coeff * lo, db.coeff * hi) + db.offset;
        std::int64_t vhi = std::max(db.coeff * lo, db.coeff * hi) + db.offset;
        if (da.offset < vlo || da.offset > vhi) return r;
        if (n >= 2 && site.is_lane_elem(db.elem)) freedom = true;
        continue;
      }
    }
    if (is_elemish(da) && is_elemish(db) && da.elem != db.elem &&
        da.uniform_key.empty() && db.uniform_key.empty()) {
      std::int64_t alo, ahi, an, blo, bhi, bn;
      if (range_of(da.elem, alo, ahi, an) && da.coeff != 0 &&
          range_of(db.elem, blo, bhi, bn) && db.coeff != 0) {
        std::int64_t valo = std::min(da.coeff * alo, da.coeff * ahi) + da.offset;
        std::int64_t vahi = std::max(da.coeff * alo, da.coeff * ahi) + da.offset;
        std::int64_t vblo = std::min(db.coeff * blo, db.coeff * bhi) + db.offset;
        std::int64_t vbhi = std::max(db.coeff * blo, db.coeff * bhi) + db.offset;
        if (vahi < vblo || vbhi < valo) return r;  // disjoint ranges
        if ((an >= 2 && site.is_lane_elem(da.elem)) ||
            (bn >= 2 && site.is_lane_elem(db.elem))) {
          freedom = true;
        }
        // An ElemEq guard (i == j + c) on both arms can still separate
        // the dimensions, but only equality of guarded elems is handled
        // below through deltas; stay conservative here.
        fuzzy = fuzzy || !(is_elemish(da) && is_elemish(db) &&
                           !site.is_lane_elem(da.elem) &&
                           !site.is_lane_elem(db.elem));
        continue;
      }
    }

    // Anything else: shapes we cannot relate.
    fuzzy = true;
    freedom = true;
  }

  // Check forced deltas against guards and ranges.
  for (const auto& [elem, dd] : delta) {
    const LaneElem* le = site.lane_of(elem);
    std::int64_t lo, hi, n;
    bool have_range = range_of(elem, lo, hi, n);
    if (le != nullptr) {
      lo = le->min_value;
      hi = le->max_value;
      n = le->size;
      have_range = n > 0;
    }
    if (have_range && std::abs(dd) > hi - lo) return r;  // delta too large

    // Congruence guards: lane of A satisfies ga's congruence, lane of B
    // satisfies gb's; e_b = e_a + dd must be consistent.
    const Congruence* ca = ga != nullptr ? ga->congruence_on(elem) : nullptr;
    const Congruence* cb = gb != nullptr ? gb->congruence_on(elem) : nullptr;
    if (ca != nullptr && cb != nullptr && ca->mod == cb->mod) {
      if (floor_mod(ca->rem + dd, ca->mod) != floor_mod(cb->rem, cb->mod)) {
        return r;  // guard congruences rule the collision out
      }
    }
    // Pinned on both arms: the element is a single uniform value, so a
    // nonzero delta is impossible.
    bool pinned = ga != nullptr && gb != nullptr && ga->pins_elem(elem) &&
                  gb->pins_elem(elem);
    if (pinned && dd != 0) return r;
    if (dd != 0 && le != nullptr && !pinned) freedom = true;
  }

  // Lane elements not mentioned (or pinned) anywhere: if such a dimension
  // has at least two values, two distinct lanes reach the same location.
  for (const auto& le : site.lanes) {
    if (le.size < 2) continue;
    if (delta.count(le.elem) != 0) continue;
    bool constrained_a = true, constrained_b = true;
    auto mentions = [&](const std::vector<DimView>& vs) {
      for (const auto& v : vs) {
        if (v.elem == le.elem && v.kind != DimKind::kUniform) return true;
      }
      return false;
    };
    constrained_a = mentions(va) || (ga != nullptr && ga->pins_elem(le.elem));
    constrained_b = mentions(vb) || (gb != nullptr && gb->pins_elem(le.elem));
    if (!constrained_a && !constrained_b) freedom = true;
    if (!constrained_a || !constrained_b) {
      // One side sweeps the dimension the other ignores.
      freedom = true;
    }
  }

  if (!freedom) return r;  // same lane touches it twice: not interference
  r.cross_lane = true;
  r.overlap = fuzzy ? Overlap::kPossible : Overlap::kDefinite;
  return r;
}

class InterferencePass : public Pass {
 public:
  const char* name() const override { return "interference"; }

  void run(PassContext& ctx) override {
    for (const auto& site : ctx.model.sites) {
      if (site.construct == nullptr) continue;  // reduce sites cannot race
      // oneof commits exactly one lane; solve arbitrates writes by design.
      if (site.op == lang::UcOp::kOneof || site.op == lang::UcOp::kSolve) {
        continue;
      }
      if (site.lane_count() < 2) continue;
      analyze_site(ctx, site);
    }
  }

 private:
  void analyze_site(PassContext& ctx, const ParSite& site) {
    if (site.has_user_call) {
      ctx.report.add(
          "UC-A105", support::Severity::kNote, site.construct->range,
          "call to a user function inside this parallel block limits "
          "interference analysis (its accesses are not tracked)");
    }

    // Group accesses by base symbol, skipping per-lane locals and index
    // elements (reads of `i` are lane-private by construction).
    std::map<const Symbol*, std::vector<const SiteAccess*>> by_base;
    for (const auto& sa : site.accesses) {
      const Symbol* base = sa.access.base;
      if (base == nullptr) continue;
      if (site.per_lane.count(base) != 0) continue;
      if (base->kind == lang::SymbolKind::kIndexElem) continue;
      by_base[base].push_back(&sa);
    }

    for (const auto& [base, accs] : by_base) {
      check_write_write(ctx, site, base, accs);
      check_read_after_write(ctx, site, base, accs);
      check_st_escape(ctx, site, base, accs);
    }
  }

  void check_write_write(PassContext& ctx, const ParSite& site,
                         const Symbol* base,
                         const std::vector<const SiteAccess*>& accs) {
    bool definite_reported = false;
    bool possible_reported = false;
    for (std::size_t i = 0; i < accs.size(); ++i) {
      if (!accs[i]->access.is_write) continue;
      for (std::size_t j = i; j < accs.size(); ++j) {
        if (!accs[j]->access.is_write) continue;
        // A single syntactic write conflicts with itself only across
        // lanes; the solver handles i == j correctly (delta freedom).
        PairResult pr = lane_overlap(site, *accs[i], *accs[j], ctx.model);
        if (pr.overlap == Overlap::kNone || !pr.cross_lane) continue;
        const auto& ra = accs[i]->access.site->range;
        const auto& rb = accs[j]->access.site->range;
        if (pr.overlap == Overlap::kDefinite && !definite_reported) {
          definite_reported = true;
          std::string msg =
              "write-write conflict on '" + base->name +
              "': two lanes of this par block store to the same "
              "location (writes at line " +
              std::to_string(ctx.line(ra.begin)) + " and line " +
              std::to_string(ctx.line(rb.begin)) +
              "); the stored value depends on lane scheduling";
          ctx.report.add("UC-A101", support::Severity::kWarning, ra,
                         std::move(msg));
        } else if (pr.overlap == Overlap::kPossible && !possible_reported &&
                   !definite_reported) {
          possible_reported = true;
          std::string msg =
              "possible write-write conflict on '" + base->name +
              "': writes at line " + std::to_string(ctx.line(ra.begin)) +
              " and line " + std::to_string(ctx.line(rb.begin)) +
              " may target the same location (subscripts or guards are "
              "not statically decidable)";
          ctx.report.add("UC-A102", support::Severity::kNote, ra,
                         std::move(msg));
        }
      }
      if (definite_reported) break;
    }
  }

  void check_read_after_write(PassContext& ctx, const ParSite& site,
                              const Symbol* base,
                              const std::vector<const SiteAccess*>& accs) {
    // Old-value semantics: reads inside a par block observe the values
    // from *before* the block (copy-in).  Flag read/write pairs that can
    // cross lanes so readers are not surprised.
    for (const auto* rd : accs) {
      if (!rd->access.is_read || rd->access.subscript == nullptr) continue;
      for (const auto* wr : accs) {
        if (!wr->access.is_write) continue;
        if (rd == wr && rd->access.is_write) continue;  // swap/compound
        PairResult pr = lane_overlap(site, *rd, *wr, ctx.model);
        if (pr.overlap == Overlap::kNone) continue;
        std::string msg =
            "reads of '" + base->name +
            "' in this par block observe its pre-block (copy-in) values; "
            "the write at line " +
            std::to_string(ctx.line(wr->access.site->range.begin)) +
            " becomes visible only after the block completes";
        ctx.report.add("UC-A103", support::Severity::kNote,
                       rd->access.site->range, std::move(msg));
        return;  // one note per (site, base)
      }
    }
  }

  void check_st_escape(PassContext& ctx, const ParSite& site,
                       const Symbol* base,
                       const std::vector<const SiteAccess*>& accs) {
    // A write like `st (i % 2 == 0) a[i+1] = ...` stores to elements the
    // predicate did not select.  Legal UC (the paper's odd-even sort
    // relies on it) but worth a note: the "selected subset" intuition
    // does not bound the write set.
    for (const auto* sa : accs) {
      if (!sa->access.is_write || sa->access.subscript == nullptr) continue;
      if (sa->guard_index < 0) continue;
      const Guard& g = site.guards[static_cast<std::size_t>(sa->guard_index)];
      if (g.is_others || !g.has_index_constraints()) continue;
      auto views =
          subscript_views(site, *sa, ctx.model, /*apply_placement=*/false);
      for (const auto& v : views) {
        bool escapes = false;
        if (v.kind == DimKind::kOffset && v.uniform_key.empty()) {
          const Congruence* c = g.congruence_on(v.elem);
          if (c != nullptr && floor_mod(v.offset, c->mod) != 0) {
            escapes = true;  // offset moves to the other residue class
          }
          if (g.pins_elem(v.elem)) escapes = true;
        }
        if (escapes) {
          std::string msg =
              "write to '" + base->name +
              "' stores outside the subset selected by the st predicate "
              "(subscript offsets the selected index)";
          ctx.report.add("UC-A104", support::Severity::kNote,
                         sa->access.site->range, std::move(msg));
          return;  // one note per (site, base)
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_interference_pass() {
  return std::make_unique<InterferencePass>();
}

}  // namespace uc::analysis
