// Array dependence summary and mapping-legality proofs (docs/MAPPING.md).
//
// The mapping optimiser may only emit a candidate `map` section when the
// dependence pass proves it semantics- and model-preserving:
//
//   permute  the placement pos(v) = coeff*v + offset must relocate the
//            array exactly as declared.  A non-bijective placement (a
//            shift) leaves boundary positions sharing a processor; that is
//            legal only when no parallel step writes two co-located
//            elements (write-write interference across the permute) —
//            otherwise the candidate is rejected fail-closed.
//   fold     pairs element v with extent-1-v on one processor.  Legal only
//            when every parallel access provably stays within one half
//            (the piecewise placement is then exact) and no parallel step
//            writes both members of a folded pair.
//   copy     replicates the array; every parallel write must then be
//            broadcast to all copies.  Legal only when each write's
//            element set is statically known (affine subscripts), so the
//            broadcast update is provable.
//
// All tests are conservative: anything the prover cannot express blocks
// the candidate (fail closed), never the other way around.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/model.hpp"

namespace uc::analysis {

// One parallel access to a 1-D array, reduced to the affine window of
// element values it can touch: value = coeff*elem + offset with elem in
// [elem_lo, elem_hi].  `exact` is false when the subscript defied affine
// analysis (the window then conservatively covers the whole array).
struct AccessWindow {
  const ParSite* site = nullptr;
  std::size_t site_index = 0;
  bool is_write = false;
  bool exact = false;
  // True when the access touches a single element per parallel step (a
  // uniform subscript): it can never collide with itself across lanes.
  bool single_per_step = false;
  std::int64_t coeff = 0;
  std::int64_t offset = 0;
  std::int64_t elem_lo = 0;
  std::int64_t elem_hi = -1;
  support::SourceRange range;
};

struct ArrayDep {
  const lang::Symbol* array = nullptr;
  std::vector<AccessWindow> windows;  // 1-D arrays only
  std::size_t parallel_reads = 0;
  std::size_t parallel_writes = 0;
  // A parallel write whose subscripts are not affine in statically known
  // symbols (e.g. a[p[i]]): blocks copy (the broadcast update set is not
  // provable) and makes every interference test conservative.
  bool any_nonaffine_write = false;
};

struct DependSummary {
  std::unordered_map<const lang::Symbol*, ArrayDep> arrays;

  const ArrayDep* of(const lang::Symbol* array) const;
};

DependSummary summarize_dependences(const ProgramModel& model);

// Outcome of one legality proof.  When `legal`, `proof` states why the
// candidate preserves the model; otherwise `blocker` names the dependence
// that rejected it (the UC-A302 message body).
struct Legality {
  bool legal = false;
  std::string proof;
  std::string blocker;
  support::SourceRange blocked_at;  // interfering access, when known
};

// Permute with placement pos(v) = coeff*v + offset over a 1-D array of
// `extent` elements (coeff must be +1 or -1).
Legality prove_permute(const ArrayDep& dep, std::int64_t extent,
                       std::int64_t coeff, std::int64_t offset);

// Fold pairing v with extent-1-v (extent must be even).
Legality prove_fold(const ArrayDep& dep, std::int64_t extent);

// Replication of a (any-rank) array.
Legality prove_copy(const ArrayDep& dep);

}  // namespace uc::analysis
