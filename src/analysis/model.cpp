#include "analysis/model.hpp"

#include <algorithm>
#include <sstream>

namespace uc::analysis {

using namespace lang;

// ---------------------------------------------------------------------------
// Guard helpers
// ---------------------------------------------------------------------------

const Congruence* Guard::congruence_on(const Symbol* elem) const {
  for (const auto& c : congruences) {
    if (c.elem == elem) return &c;
  }
  return nullptr;
}

bool Guard::pins_elem(const Symbol* elem) const {
  for (const auto* p : pins) {
    if (p == elem) return true;
  }
  return false;
}

std::uint64_t ParSite::lane_count() const {
  std::uint64_t n = 1;
  for (const auto& le : lanes) n *= static_cast<std::uint64_t>(le.size);
  return n;
}

bool ParSite::is_lane_elem(const Symbol* elem) const {
  return lane_of(elem) != nullptr;
}

const LaneElem* ParSite::lane_of(const Symbol* elem) const {
  for (const auto& le : lanes) {
    if (le.elem == elem) return &le;
  }
  return nullptr;
}

bool elem_value_range(const Symbol* elem, std::int64_t& min_v,
                      std::int64_t& max_v, std::int64_t& size) {
  if (elem == nullptr || elem->elem_of_set == nullptr ||
      elem->elem_of_set->index_set == nullptr) {
    return false;
  }
  const auto& values = elem->elem_of_set->index_set->values;
  if (values.empty()) return false;
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  min_v = *lo;
  max_v = *hi;
  size = static_cast<std::int64_t>(values.size());
  return true;
}

// ---------------------------------------------------------------------------
// Model builder
// ---------------------------------------------------------------------------

namespace {

std::int64_t norm_mod(std::int64_t r, std::int64_t m) {
  return ((r % m) + m) % m;
}

// Harvests index-pure constraints from an `st` predicate.
struct GuardParser {
  const ParSite& site;
  Guard g;

  void parse(const Expr& e) {
    if (e.kind == ExprKind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(e);
      if (b.op == BinaryOp::kLogAnd) {
        parse(*b.lhs);
        parse(*b.rhs);
        return;
      }
      if (b.op == BinaryOp::kEq || b.op == BinaryOp::kNe) {
        if (try_congruence(b)) return;
        if (b.op == BinaryOp::kEq && try_equality(b)) return;
      }
    }
    g.data_dependent = true;
  }

  // (elem % m) == r   /   (elem % 2) != r
  bool try_congruence(const BinaryExpr& b) {
    for (int flip = 0; flip < 2; ++flip) {
      const Expr& mod_side = flip ? *b.rhs : *b.lhs;
      const Expr& val_side = flip ? *b.lhs : *b.rhs;
      if (mod_side.kind != ExprKind::kBinary) continue;
      const auto& m = static_cast<const BinaryExpr&>(mod_side);
      if (m.op != BinaryOp::kMod) continue;
      auto base = xform::linearize(*m.lhs);
      auto mod = xform::linearize(*m.rhs);
      auto val = xform::linearize(val_side);
      if (!mod.is_constant() || mod.constant <= 0 || !val.is_constant()) {
        continue;
      }
      if (!(base.exact && base.terms.size() == 1 &&
            base.terms[0].coeff == 1 &&
            site.is_lane_elem(base.terms[0].sym))) {
        continue;
      }
      std::int64_t rem = norm_mod(val.constant - base.constant, mod.constant);
      if (b.op == BinaryOp::kEq) {
        g.congruences.push_back(
            Congruence{base.terms[0].sym, mod.constant, rem});
        return true;
      }
      if (mod.constant == 2) {  // i % 2 != r  <=>  i % 2 == 1 - r
        g.congruences.push_back(
            Congruence{base.terms[0].sym, 2, norm_mod(1 - rem, 2)});
        return true;
      }
    }
    return false;
  }

  // elem == <uniform>   or   elem == elem' + c
  bool try_equality(const BinaryExpr& b) {
    auto diff =
        xform::linear_sub(xform::linearize(*b.lhs), xform::linearize(*b.rhs));
    if (!diff.exact) return false;
    std::vector<xform::LinearTerm> lane_terms, other_terms;
    for (const auto& t : diff.terms) {
      (site.is_lane_elem(t.sym) ? lane_terms : other_terms).push_back(t);
    }
    if (lane_terms.empty()) return true;  // uniform condition: no lane info
    if (lane_terms.size() == 1 &&
        (lane_terms[0].coeff == 1 || lane_terms[0].coeff == -1)) {
      g.pins.push_back(lane_terms[0].sym);
      return true;
    }
    if (lane_terms.size() == 2 && other_terms.empty() &&
        lane_terms[0].coeff + lane_terms[1].coeff == 0 &&
        (lane_terms[0].coeff == 1 || lane_terms[0].coeff == -1)) {
      // a - b + c == 0  (orient so the +1 term is `a`): a == b - c.
      const auto& pos = lane_terms[0].coeff == 1 ? lane_terms[0]
                                                 : lane_terms[1];
      const auto& neg = lane_terms[0].coeff == 1 ? lane_terms[1]
                                                 : lane_terms[0];
      g.eqs.push_back(ElemEq{pos.sym, neg.sym, -diff.constant});
      return true;
    }
    return false;
  }
};

Guard parse_guard(const Expr* pred, const ParSite& site) {
  GuardParser p{site, {}};
  if (pred != nullptr) p.parse(*pred);
  return p.g;
}

class Builder {
 public:
  explicit Builder(const CompilationUnit& unit) : unit_(unit) {}

  ProgramModel build() {
    for (const auto& item : unit_.program->items) {
      if (item.decl) seq_stmt(*item.decl);
      if (item.func && item.func->body) {
        fn_ = item.func.get();
        seq_stmt(*item.func->body);
        fn_ = nullptr;
      }
    }
    return std::move(model_);
  }

 private:
  LaneElem lane_from(const Symbol* set_sym) {
    LaneElem le;
    le.set = set_sym;
    if (set_sym != nullptr && set_sym->index_set != nullptr) {
      const auto* info = set_sym->index_set;
      le.elem = info->elem;
      le.size = static_cast<std::int64_t>(info->values.size());
      if (!info->values.empty()) {
        auto [lo, hi] =
            std::minmax_element(info->values.begin(), info->values.end());
        le.min_value = *lo;
        le.max_value = *hi;
      }
    }
    return le;
  }

  // --- sequential context: find constructs, turn reduces into sites ------

  void seq_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr:
        seq_expr(*static_cast<const ExprStmt&>(s).expr);
        return;
      case StmtKind::kCompound:
        for (const auto& c : static_cast<const CompoundStmt&>(s).body) {
          seq_stmt(*c);
        }
        return;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        seq_expr(*i.cond);
        seq_stmt(*i.then_stmt);
        if (i.else_stmt) seq_stmt(*i.else_stmt);
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        seq_expr(*w.cond);
        repeat_ *= kLoopRepeatGuess;
        seq_stmt(*w.body);
        repeat_ /= kLoopRepeatGuess;
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) seq_stmt(*f.init);
        if (f.cond) seq_expr(*f.cond);
        if (f.step) seq_expr(*f.step);
        repeat_ *= kLoopRepeatGuess;
        seq_stmt(*f.body);
        repeat_ /= kLoopRepeatGuess;
        return;
      }
      case StmtKind::kReturn: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value) seq_expr(*r.value);
        return;
      }
      case StmtKind::kVarDecl:
        for (const auto& d :
             static_cast<const VarDeclStmt&>(s).declarators) {
          if (d.init) seq_expr(*d.init);
        }
        return;
      case StmtKind::kUcConstruct:
        construct(static_cast<const UcConstructStmt&>(s));
        return;
      case StmtKind::kMapSection:
        map_section(static_cast<const MapSectionStmt&>(s));
        return;
      default:
        return;
    }
  }

  // Reductions evaluated at a sequential position become their own sites.
  void seq_expr(const Expr& e) {
    AccessSet as;
    collect_accesses(e, as);
    std::unordered_map<const ReduceExpr*, std::size_t> index;
    for (const auto& a : as.accesses) {
      if (a.reduce == nullptr) continue;
      auto [it, inserted] = index.try_emplace(a.reduce, model_.sites.size());
      if (inserted) {
        ParSite site;
        site.reduce = a.reduce;
        site.function = fn_;
        site.lanes = lane_stack_;
        site.repeat = repeat_;
        site.guards.push_back(Guard{});
        model_.sites.push_back(std::move(site));
      }
      model_.sites[it->second].accesses.push_back(SiteAccess{a, -1});
    }
  }

  // Inside a parallel arm: only nested constructs start new work; plain
  // accesses (including reduce-bound ones) already belong to the arm.
  void nested_scan(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kCompound:
        for (const auto& c : static_cast<const CompoundStmt&>(s).body) {
          nested_scan(*c);
        }
        return;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        nested_scan(*i.then_stmt);
        if (i.else_stmt) nested_scan(*i.else_stmt);
        return;
      }
      case StmtKind::kWhile:
        repeat_ *= kLoopRepeatGuess;
        nested_scan(*static_cast<const WhileStmt&>(s).body);
        repeat_ /= kLoopRepeatGuess;
        return;
      case StmtKind::kFor:
        repeat_ *= kLoopRepeatGuess;
        nested_scan(*static_cast<const ForStmt&>(s).body);
        repeat_ /= kLoopRepeatGuess;
        return;
      case StmtKind::kUcConstruct:
        construct(static_cast<const UcConstructStmt&>(s));
        return;
      case StmtKind::kMapSection:
        map_section(static_cast<const MapSectionStmt&>(s));
        return;
      default:
        return;
    }
  }

  void collect_per_lane(const Stmt& s,
                       std::unordered_set<const Symbol*>& out) {
    switch (s.kind) {
      case StmtKind::kVarDecl:
        for (const auto& d :
             static_cast<const VarDeclStmt&>(s).declarators) {
          if (d.symbol != nullptr) out.insert(d.symbol);
        }
        return;
      case StmtKind::kCompound:
        for (const auto& c : static_cast<const CompoundStmt&>(s).body) {
          collect_per_lane(*c, out);
        }
        return;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        collect_per_lane(*i.then_stmt, out);
        if (i.else_stmt) collect_per_lane(*i.else_stmt, out);
        return;
      }
      case StmtKind::kWhile:
        collect_per_lane(*static_cast<const WhileStmt&>(s).body, out);
        return;
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) collect_per_lane(*f.init, out);
        collect_per_lane(*f.body, out);
        return;
      }
      default:
        return;
    }
  }

  void construct(const UcConstructStmt& u) {
    if (u.op == UcOp::kSeq && lane_stack_.empty()) {
      // Pure sequential iteration: the elements are uniform values, and
      // the body executes once per tuple of the seq sets.
      std::uint64_t iters = 1;
      for (const auto* set : u.index_set_syms) {
        if (set != nullptr && set->index_set != nullptr &&
            !set->index_set->values.empty()) {
          iters *= set->index_set->values.size();
        }
      }
      repeat_ *= iters;
      for (const auto& block : u.blocks) {
        if (block.pred) seq_expr(*block.pred);
        seq_stmt(*block.body);
      }
      if (u.others) seq_stmt(*u.others);
      repeat_ /= iters;
      return;
    }

    ParSite site;
    site.construct = &u;
    site.function = fn_;
    site.op = u.op;
    site.starred = u.starred;
    site.lanes = lane_stack_;
    site.repeat = repeat_;
    if (u.op != UcOp::kSeq) {
      for (const auto* set : u.index_set_syms) {
        site.lanes.push_back(lane_from(set));
      }
    }

    for (const auto& block : u.blocks) {
      int guard_index = static_cast<int>(site.guards.size());
      site.guards.push_back(parse_guard(block.pred.get(), site));
      if (block.pred) {
        AccessSet ps;
        collect_accesses(*block.pred, ps);
        site.has_user_call |= ps.has_user_call;
        for (const auto& a : ps.accesses) {
          site.accesses.push_back(SiteAccess{a, -1});
        }
      }
      AccessSet bs;
      collect_accesses(*block.body, bs, /*enter_constructs=*/false);
      site.has_user_call |= bs.has_user_call;
      for (const auto& a : bs.accesses) {
        site.accesses.push_back(SiteAccess{a, guard_index});
      }
      collect_per_lane(*block.body, site.per_lane);
    }
    if (u.others) {
      Guard og;
      og.is_others = true;
      for (const auto& g : site.guards) {
        og.data_dependent |= g.data_dependent;
      }
      int guard_index = static_cast<int>(site.guards.size());
      site.guards.push_back(og);
      AccessSet os;
      collect_accesses(*u.others, os, /*enter_constructs=*/false);
      site.has_user_call |= os.has_user_call;
      for (const auto& a : os.accesses) {
        site.accesses.push_back(SiteAccess{a, guard_index});
      }
      collect_per_lane(*u.others, site.per_lane);
    }

    std::vector<LaneElem> site_lanes = site.lanes;
    model_.sites.push_back(std::move(site));

    std::vector<LaneElem> saved = lane_stack_;
    lane_stack_ = std::move(site_lanes);
    for (const auto& block : u.blocks) nested_scan(*block.body);
    if (u.others) nested_scan(*u.others);
    lane_stack_ = std::move(saved);
  }

  void map_section(const MapSectionStmt& m) {
    for (const auto& mapping : m.mappings) {
      if (mapping.target_symbol != nullptr) {
        model_.mappings.push_back(
            MappingRef{&mapping, mapping.target_symbol});
      }
      if (mapping.kind != MapKind::kPermute ||
          mapping.target_symbol == nullptr ||
          mapping.source_symbol == nullptr ||
          mapping.index_set_syms.size() != 1 ||
          mapping.target_subscripts.size() != 1 ||
          mapping.source_subscripts.size() != 1) {
        continue;
      }
      const Symbol* set = mapping.index_set_syms[0];
      if (set == nullptr || set->index_set == nullptr) continue;
      const Symbol* elem = set->index_set->elem;

      Placement p;
      p.mapping = &mapping;
      auto g = xform::linearize(*mapping.target_subscripts[0]);
      auto f = xform::linearize(*mapping.source_subscripts[0]);
      bool g_ok = g.exact && g.terms.size() == 1 && g.terms[0].sym == elem &&
                  (g.terms[0].coeff == 1 || g.terms[0].coeff == -1);
      bool f_ok = f.exact &&
                  (f.terms.empty() ||
                   (f.terms.size() == 1 && f.terms[0].sym == elem));
      if (g_ok && f_ok && !f.terms.empty()) {
        // v = gc*u + g0  =>  u = gc*(v - g0);  pos = fc*u + f0.
        std::int64_t gc = g.terms[0].coeff;
        std::int64_t fc = f.terms[0].coeff;
        p.affine = true;
        p.coeff = fc * gc;
        p.offset = f.constant - fc * gc * g.constant;
      }
      auto [it, inserted] =
          model_.placements.try_emplace(mapping.target_symbol, p);
      if (!inserted) it->second.affine = false;  // ambiguous: two permutes
    }
  }

  // A for/while loop's trip count is not statically known; this nominal
  // factor just makes "inside a loop" outweigh "straight-line" when the
  // optimiser amortises relocation sweeps.
  static constexpr std::uint64_t kLoopRepeatGuess = 4;

  const CompilationUnit& unit_;
  ProgramModel model_;
  std::vector<LaneElem> lane_stack_;
  const FuncDecl* fn_ = nullptr;
  std::uint64_t repeat_ = 1;
};

std::string canonical_uniform_key(
    const std::vector<xform::LinearTerm>& terms) {
  std::vector<const xform::LinearTerm*> sorted;
  sorted.reserve(terms.size());
  for (const auto& t : terms) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(),
            [](const xform::LinearTerm* a, const xform::LinearTerm* b) {
              return a->sym < b->sym;
            });
  std::ostringstream os;
  for (const auto* t : sorted) {
    os << static_cast<const void*>(t->sym) << '*' << t->coeff << '+';
  }
  return os.str();
}

DimView view_from_form(const xform::LinearForm& form, const ParSite& site,
                       const std::unordered_set<const Symbol*>& scan_elems) {
  DimView v;
  if (!form.exact) return v;  // kUnknown

  std::vector<xform::LinearTerm> lane_terms, scan_terms, uniform_terms;
  for (const auto& t : form.terms) {
    if (site.per_lane.count(t.sym) != 0) return v;  // per-lane: kUnknown
    if (site.is_lane_elem(t.sym)) {
      lane_terms.push_back(t);
    } else if (scan_elems.count(t.sym) != 0) {
      scan_terms.push_back(t);
    } else if (t.sym->kind == SymbolKind::kIndexElem ||
               t.sym->kind == SymbolKind::kGlobalVar ||
               t.sym->kind == SymbolKind::kLocalVar ||
               t.sym->kind == SymbolKind::kParam) {
      // Outer (sequential / enclosing-reduce) elements and scalar
      // variables hold one value per statement execution: uniform.
      uniform_terms.push_back(t);
    } else {
      return v;  // kUnknown
    }
  }

  if (!scan_terms.empty()) {
    v.kind = DimKind::kScan;
    v.elem = scan_terms[0].sym;
    v.coeff = scan_terms[0].coeff;
    v.offset = form.constant;
    v.uniform_key = canonical_uniform_key(uniform_terms);
    return v;
  }
  if (lane_terms.empty()) {
    v.kind = DimKind::kUniform;
    v.offset = form.constant;
    v.uniform_key = canonical_uniform_key(uniform_terms);
    return v;
  }
  if (lane_terms.size() > 1) {
    v.kind = DimKind::kMulti;
    return v;
  }
  v.elem = lane_terms[0].sym;
  v.coeff = lane_terms[0].coeff;
  v.offset = form.constant;
  v.uniform_key = canonical_uniform_key(uniform_terms);
  if (v.coeff == 1 && v.uniform_key.empty()) {
    v.kind = v.offset == 0 ? DimKind::kIdent : DimKind::kOffset;
  } else {
    v.kind = DimKind::kScaled;
  }
  return v;
}

}  // namespace

ProgramModel build_model(const CompilationUnit& unit) {
  return Builder(unit).build();
}

std::vector<DimView> subscript_views(const ParSite& site, const SiteAccess& a,
                                     const ProgramModel& model,
                                     bool apply_placement) {
  std::vector<DimView> views;
  const SubscriptExpr* sub = a.access.subscript;
  if (sub == nullptr) return views;

  std::unordered_set<const Symbol*> scan_elems;
  const ReduceExpr* reduce = a.access.reduce;
  if (reduce == nullptr) reduce = site.reduce;
  if (reduce != nullptr) {
    for (const auto* set : reduce->index_set_syms) {
      if (set != nullptr && set->index_set != nullptr) {
        scan_elems.insert(set->index_set->elem);
      }
    }
  }

  const Placement* placement = nullptr;
  if (apply_placement) {
    auto it = model.placements.find(a.access.base);
    if (it != model.placements.end()) placement = &it->second;
  }

  for (const auto& idx : sub->indices) {
    auto form = xform::linearize(*idx);
    if (placement != nullptr && sub->indices.size() == 1) {
      if (placement->affine) {
        // Physical position of element v is coeff*v + offset.
        form = xform::linear_scale(form, placement->coeff);
        form.constant += placement->offset;
      } else {
        form.exact = false;  // scrambled placement: kUnknown -> router
      }
    }
    views.push_back(view_from_form(form, site, scan_elems));
  }
  return views;
}

}  // namespace uc::analysis
