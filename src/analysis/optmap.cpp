// Mapping optimiser: candidate generation, cost prediction under candidate
// placements (via the shared communication classifier), beam search, and
// the UC-A301/UC-A302 advice pass.  docs/MAPPING.md documents the search
// space and the legality proofs (src/analysis/depend.cpp).
#include "analysis/optmap.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "analysis/comm.hpp"
#include "support/str.hpp"

namespace uc::analysis {

namespace {

using lang::Symbol;

const MapChoice* choice_for(const std::vector<MapChoice>& choices,
                            const Symbol* array) {
  for (const auto& c : choices) {
    if (c.array == array) return &c;
  }
  return nullptr;
}

// Evaluation-space size of one access (lanes times any reduce sweep).
std::uint64_t access_space(const ParSite& site, const SiteAccess& sa) {
  std::uint64_t space = site.lane_count();
  const lang::ReduceExpr* reduce =
      sa.access.reduce != nullptr ? sa.access.reduce : site.reduce;
  if (reduce != nullptr) {
    for (const auto* set : reduce->index_set_syms) {
      if (set != nullptr && set->index_set != nullptr &&
          !set->index_set->values.empty()) {
        space *= set->index_set->values.size();
      }
    }
  }
  return space;
}

// Value range of one dimension view (elem range scaled by the view's
// affine form).  False when the view has no statically bounded range.
bool view_value_range(const ParSite& site, const DimView& v,
                      std::int64_t& lo, std::int64_t& hi) {
  if (!v.uniform_key.empty()) return false;
  if (v.kind == DimKind::kUniform) {
    lo = hi = v.offset;
    return true;
  }
  if (v.kind != DimKind::kIdent && v.kind != DimKind::kOffset &&
      v.kind != DimKind::kScaled && v.kind != DimKind::kScan) {
    return false;
  }
  std::int64_t elo = 0, ehi = -1, size = 0;
  const LaneElem* lane = site.lane_of(v.elem);
  if (lane != nullptr) {
    elo = lane->min_value;
    ehi = lane->max_value;
  } else if (!elem_value_range(v.elem, elo, ehi, size)) {
    return false;
  }
  const std::int64_t a = v.coeff * elo + v.offset;
  const std::int64_t b = v.coeff * ehi + v.offset;
  lo = std::min(a, b);
  hi = std::max(a, b);
  return true;
}

// Re-derives a view's kind after its affine form changed.
void rederive_kind(DimView& v) {
  if (v.kind == DimKind::kUniform || v.kind == DimKind::kScan ||
      v.kind == DimKind::kMulti || v.kind == DimKind::kUnknown) {
    return;
  }
  if (v.coeff == 1 && v.uniform_key.empty()) {
    v.kind = v.offset == 0 ? DimKind::kIdent : DimKind::kOffset;
  } else {
    v.kind = DimKind::kScaled;
  }
}

// Composes a candidate placement into a raw (element-space) view, exactly
// mirroring how subscript_views composes a map section's placement.
DimView compose_choice(const ParSite& site, const DimView& raw,
                       const MapChoice& choice) {
  DimView v = raw;
  switch (choice.kind) {
    case MapChoiceKind::kIdentity:
    case MapChoiceKind::kCopy:
      return v;
    case MapChoiceKind::kPermute:
      if (v.kind == DimKind::kUnknown || v.kind == DimKind::kMulti) return v;
      v.coeff = choice.coeff * v.coeff;
      v.offset = choice.coeff * v.offset + choice.offset;
      rederive_kind(v);
      return v;
    case MapChoiceKind::kFold: {
      // Piecewise placement: pos = w below the fold, extent-1-w above it.
      // Only exact when the access provably stays within one half.
      std::int64_t lo = 0, hi = 0;
      if (!view_value_range(site, raw, lo, hi)) {
        v.kind = DimKind::kUnknown;
        return v;
      }
      const std::int64_t half = choice.extent / 2;
      if (lo >= 0 && hi < half) return v;  // low half: position = element
      if (lo >= half && hi < choice.extent) {
        v.coeff = -v.coeff;
        v.offset = choice.extent - 1 - v.offset;
        rederive_kind(v);
        return v;
      }
      v.kind = DimKind::kUnknown;
      return v;
    }
  }
  return v;
}

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? a : (a + b - 1) / b;
}

std::uint64_t array_size(const Symbol* array) {
  std::uint64_t n = 1;
  for (const auto d : array->type.dims) {
    n *= static_cast<std::uint64_t>(d);
  }
  return n;
}

// One-time router sweep that applying a mapping costs at run time.
std::uint64_t relocation_cycles(const cm::CostModel& cost,
                                const MapChoice& choice) {
  if (choice.kind == MapChoiceKind::kIdentity || choice.array == nullptr) {
    return 0;
  }
  std::uint64_t msgs = array_size(choice.array);
  if (choice.kind == MapChoiceKind::kCopy && choice.set != nullptr &&
      choice.set->index_set != nullptr) {
    msgs *= choice.set->index_set->values.size();
  }
  return cost.router_op *
         std::max<std::uint64_t>(1,
                                 ceil_div(msgs, cost.physical_processors));
}

// Relocation already paid by the program's existing map sections, keyed by
// target array (dropping a mapping saves its sweep).
std::map<const Symbol*, std::uint64_t> existing_relocation(
    const ProgramModel& model, const cm::CostModel& cost) {
  std::map<const Symbol*, std::uint64_t> out;
  for (const auto& ref : model.mappings) {
    if (ref.target == nullptr) continue;
    std::uint64_t msgs = array_size(ref.target);
    if (ref.mapping->kind == lang::MapKind::kCopy) {
      for (const auto* set : ref.mapping->index_set_syms) {
        if (set != nullptr && set->index_set != nullptr) {
          msgs *= set->index_set->values.size();
        }
      }
    }
    out[ref.target] +=
        cost.router_op *
        std::max<std::uint64_t>(1,
                                ceil_div(msgs, cost.physical_processors));
  }
  return out;
}

// Index set whose values are exactly {0 .. n-1}.
bool covers_iota(const Symbol* set, std::int64_t n) {
  if (set == nullptr || set->index_set == nullptr) return false;
  const auto& values = set->index_set->values;
  if (static_cast<std::int64_t>(values.size()) != n) return false;
  std::vector<std::int64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::int64_t k = 0; k < n; ++k) {
    if (sorted[static_cast<std::size_t>(k)] != k) return false;
  }
  return true;
}

std::vector<const Symbol*> index_sets_of(const lang::CompilationUnit& unit) {
  std::vector<const Symbol*> sets;
  for (const auto& sym : unit.sema.symbols) {
    if (sym->kind == lang::SymbolKind::kIndexSet &&
        sym->index_set != nullptr && sym->index_set->elem != nullptr) {
      sets.push_back(sym.get());
    }
  }
  std::sort(sets.begin(), sets.end(),
            [](const Symbol* a, const Symbol* b) { return a->name < b->name; });
  return sets;
}

std::string render_choice_text(const MapChoice& c) {
  if (c.kind == MapChoiceKind::kIdentity || c.array == nullptr) {
    return "identity";
  }
  const std::string& t = c.array->name;
  const std::string s = c.set != nullptr ? c.set->name : "?";
  const std::string e =
      c.set != nullptr && c.set->index_set != nullptr &&
              c.set->index_set->elem != nullptr
          ? c.set->index_set->elem->name
          : "i";
  switch (c.kind) {
    case MapChoiceKind::kCopy:
      return "copy (" + s + ") " + t;
    case MapChoiceKind::kFold:
      return support::format("fold (%s) %s[%lld-%s] :- %s[%s]", s.c_str(),
                             t.c_str(),
                             static_cast<long long>(c.extent - 1), e.c_str(),
                             t.c_str(), e.c_str());
    case MapChoiceKind::kPermute: {
      // Mapping text for placement pos(v)=a*v+b: T[a*e - a*b] :- T[e].
      std::string g;
      if (c.coeff == 1) {
        if (c.offset == 0) {
          g = e;
        } else if (c.offset < 0) {
          g = support::format("%s+%lld", e.c_str(),
                              static_cast<long long>(-c.offset));
        } else {
          g = support::format("%s-%lld", e.c_str(),
                              static_cast<long long>(c.offset));
        }
      } else {
        g = support::format("%lld-%s", static_cast<long long>(c.offset),
                            e.c_str());
      }
      return "permute (" + s + ") " + t + "[" + g + "] :- " + t + "[" + e +
             "]";
    }
    case MapChoiceKind::kIdentity:
      break;
  }
  return "identity";
}

}  // namespace

const char* map_choice_kind_name(MapChoiceKind k) {
  switch (k) {
    case MapChoiceKind::kIdentity:
      return "identity";
    case MapChoiceKind::kPermute:
      return "permute";
    case MapChoiceKind::kFold:
      return "fold";
    case MapChoiceKind::kCopy:
      return "copy";
  }
  return "identity";
}

std::uint64_t predict_comm_cycles(const ProgramModel& model,
                                  const cm::CostModel& cost,
                                  const std::vector<MapChoice>& choices) {
  std::uint64_t total = 0;
  for (const auto& site : model.sites) {
    for (const auto& sa : site.accesses) {
      if (sa.access.subscript == nullptr) continue;
      const Symbol* base = sa.access.base;
      if (base == nullptr || site.per_lane.count(base) != 0) continue;

      const MapChoice* choice = choice_for(choices, base);
      const std::uint64_t space = access_space(site, sa);
      std::uint64_t est = 0;
      if (choice != nullptr && choice->kind == MapChoiceKind::kCopy) {
        // Replicated: reads are served locally; writes add a broadcast to
        // keep every copy coherent (the VM charges exactly this shape).
        est = cost.mem_op * cost.vp_ratio(space);
        if (sa.access.is_write) {
          est += cost.broadcast_op * cost.vp_ratio(space);
        }
      } else {
        std::vector<DimView> views;
        if (choice != nullptr) {
          views = subscript_views(site, sa, model,
                                  /*apply_placement=*/false);
          if (views.size() == 1) {
            views[0] = compose_choice(site, views[0], *choice);
          }
        } else {
          views = subscript_views(site, sa, model,
                                  /*apply_placement=*/true);
        }
        CommDecision d = classify_views(site, views);
        est = estimate_comm_cycles(cost, d.cls, space);
      }
      total += est * site.repeat;
    }
  }
  return total;
}

OptimizePlan plan_mappings(const lang::CompilationUnit& unit,
                           const ProgramModel& model,
                           const OptimizeOptions& options) {
  OptimizePlan plan;
  const DependSummary dep = summarize_dependences(model);
  const auto sets = index_sets_of(unit);
  const auto existing_reloc = existing_relocation(model, options.cost);

  std::uint64_t existing_reloc_total = 0;
  for (const auto& [sym, cycles] : existing_reloc) {
    (void)sym;
    existing_reloc_total += cycles;
  }
  plan.baseline_cycles =
      predict_comm_cycles(model, options.cost, {}) + existing_reloc_total;

  // Predicted total for a full assignment: comm estimate under the choices
  // plus their relocation sweeps, keeping the sweeps of mappings we leave
  // in place (a choice replaces the array's existing mapping).
  auto score = [&](const std::vector<MapChoice>& choices) {
    std::uint64_t total = predict_comm_cycles(model, options.cost, choices);
    for (const auto& c : choices) total += relocation_cycles(options.cost, c);
    for (const auto& [sym, cycles] : existing_reloc) {
      if (choice_for(choices, sym) == nullptr) total += cycles;
    }
    return total;
  };

  // Arrays with parallel accesses, in name order for determinism.
  std::vector<const ArrayDep*> arrays;
  for (const auto& [sym, d] : dep.arrays) {
    (void)sym;
    arrays.push_back(&d);
  }
  std::sort(arrays.begin(), arrays.end(),
            [](const ArrayDep* a, const ArrayDep* b) {
              return a->array->name < b->array->name;
            });

  for (const ArrayDep* d : arrays) {
    ArrayPlan ap;
    ap.array = d->array;
    const auto& dims = d->array->type.dims;

    auto add = [&](MapChoice choice, const Legality& legality) {
      Candidate cand;
      choice.text = render_choice_text(choice);
      choice.proof = legality.proof;
      cand.choice = std::move(choice);
      cand.legal = legality.legal;
      cand.blocker = legality.blocker;
      cand.blocked_at = legality.blocked_at;
      cand.relocation_cycles = relocation_cycles(options.cost, cand.choice);
      cand.predicted_cycles = score({cand.choice});
      ++plan.candidates_considered;
      if (!cand.legal) ++plan.candidates_blocked;
      ap.candidates.push_back(std::move(cand));
    };

    // Identity: drop any existing mapping, keep the default placement.
    {
      MapChoice id;
      id.kind = MapChoiceKind::kIdentity;
      id.array = d->array;
      Legality always;
      always.legal = true;
      always.proof = "default placement: one element per processor";
      add(std::move(id), always);
    }

    if (dims.size() == 1) {
      const std::int64_t extent = dims[0];
      const Symbol* full_set = nullptr;
      for (const auto* s : sets) {
        if (covers_iota(s, extent)) {
          full_set = s;
          break;
        }
      }

      // Permutes that make some access's physical position the lane index:
      // an access with element form c*e + o wants placement a=c, b=-c*o.
      if (full_set != nullptr) {
        std::vector<std::pair<std::int64_t, std::int64_t>> wanted;
        for (const auto& w : d->windows) {
          if (!w.exact || (w.coeff != 1 && w.coeff != -1)) continue;
          const std::int64_t a = w.coeff;
          const std::int64_t b = -w.coeff * w.offset;
          if (a == 1 && b == 0) continue;  // identity already present
          wanted.emplace_back(a, b);
        }
        std::sort(wanted.begin(), wanted.end());
        wanted.erase(std::unique(wanted.begin(), wanted.end()),
                     wanted.end());
        for (const auto& [a, b] : wanted) {
          MapChoice c;
          c.kind = MapChoiceKind::kPermute;
          c.array = d->array;
          c.set = full_set;
          c.coeff = a;
          c.offset = b;
          c.extent = extent;
          add(std::move(c), prove_permute(*d, extent, a, b));
        }
      }

      // Fold: pair v with extent-1-v when some access lives in the upper
      // half and a half-range index set exists to express the mapping.
      if (extent > 0 && extent % 2 == 0) {
        const Symbol* half_set = nullptr;
        for (const auto* s : sets) {
          if (covers_iota(s, extent / 2)) {
            half_set = s;
            break;
          }
        }
        bool upper = false;
        for (const auto& w : d->windows) {
          if (!w.exact) continue;
          const std::int64_t lo = std::min(w.coeff * w.elem_lo + w.offset,
                                           w.coeff * w.elem_hi + w.offset);
          if (lo >= extent / 2) upper = true;
        }
        if (half_set != nullptr && upper) {
          MapChoice c;
          c.kind = MapChoiceKind::kFold;
          c.array = d->array;
          c.set = half_set;
          c.extent = extent;
          add(std::move(c), prove_fold(*d, extent));
        }
      }
    }

    // Copy: replicate arrays that are read in parallel.  The smallest set
    // keeps the one-time replication sweep cheapest.
    if (d->parallel_reads > 0 && !sets.empty()) {
      const Symbol* smallest = sets.front();
      for (const auto* s : sets) {
        if (s->index_set->values.size() <
            smallest->index_set->values.size()) {
          smallest = s;
        }
      }
      MapChoice c;
      c.kind = MapChoiceKind::kCopy;
      c.array = d->array;
      c.set = smallest;
      add(std::move(c), prove_copy(*d));
    }

    plan.arrays.push_back(std::move(ap));
  }

  // Beam search over interacting arrays: each state is a partial
  // assignment; extending by an array either keeps its current mapping or
  // applies one of its legal candidates.
  std::vector<Assignment> beam;
  Assignment keep_all;
  keep_all.predicted_cycles = plan.baseline_cycles;
  beam.push_back(keep_all);
  for (const auto& ap : plan.arrays) {
    std::vector<Assignment> next;
    for (const auto& state : beam) {
      next.push_back(state);  // keep this array's current mapping
      for (const auto& cand : ap.candidates) {
        if (!cand.legal) continue;
        if (cand.choice.kind == MapChoiceKind::kIdentity &&
            existing_reloc.count(ap.array) == 0) {
          continue;  // no mapping to drop: identical to keeping
        }
        Assignment ext = state;
        ext.choices.push_back(cand.choice);
        ext.predicted_cycles = score(ext.choices);
        next.push_back(std::move(ext));
      }
    }
    std::stable_sort(next.begin(), next.end(),
                     [](const Assignment& a, const Assignment& b) {
                       if (a.predicted_cycles != b.predicted_cycles) {
                         return a.predicted_cycles < b.predicted_cycles;
                       }
                       return a.choices.size() < b.choices.size();
                     });
    if (next.size() > options.beam_width) next.resize(options.beam_width);
    beam = std::move(next);
  }

  bool has_keep = false;
  for (const auto& state : beam) {
    if (state.choices.empty()) has_keep = true;
  }
  if (!has_keep) beam.push_back(keep_all);
  plan.ranked = std::move(beam);
  return plan;
}

namespace {

class MappingAdvicePass : public Pass {
 public:
  const char* name() const override { return "mapping-advice"; }

  void run(PassContext& ctx) override {
    OptimizeOptions options;
    options.cost = ctx.options.cost;
    const OptimizePlan plan = plan_mappings(ctx.unit, ctx.model, options);

    // UC-A301: the beam found a dependence-legal assignment that beats the
    // program's current mappings by the reporting threshold.
    if (!plan.ranked.empty()) {
      const Assignment& best = plan.ranked.front();
      const double gain =
          plan.baseline_cycles > 0
              ? 1.0 - static_cast<double>(best.predicted_cycles) /
                          static_cast<double>(plan.baseline_cycles)
              : 0.0;
      if (!best.choices.empty() && gain >= options.min_gain) {
        for (const auto& choice : best.choices) {
          std::string msg = support::format(
              "mapping of '%s' is provably suboptimal: '%s' is "
              "dependence-legal and cuts the predicted communication "
              "cycles from %llu to %llu; run `ucc optimize-map` to apply "
              "and replay-validate it",
              choice.array->name.c_str(), choice.text.c_str(),
              static_cast<unsigned long long>(plan.baseline_cycles),
              static_cast<unsigned long long>(best.predicted_cycles));
          ctx.report.add("UC-A301", support::Severity::kNote,
                         choice.array->def_range, std::move(msg));
        }
      }
    }

    // UC-A302: a candidate that would beat every legal option for its
    // array was rejected by the dependence pass.
    for (const auto& ap : plan.arrays) {
      std::uint64_t legal_best = ~std::uint64_t{0};
      for (const auto& cand : ap.candidates) {
        if (cand.legal) {
          legal_best = std::min(legal_best, cand.predicted_cycles);
        }
      }
      const Candidate* blocked = nullptr;
      for (const auto& cand : ap.candidates) {
        if (cand.legal || cand.predicted_cycles >= legal_best) continue;
        if (blocked == nullptr ||
            cand.predicted_cycles < blocked->predicted_cycles) {
          blocked = &cand;
        }
      }
      if (blocked == nullptr) continue;
      std::string msg = support::format(
          "candidate remapping of '%s' ('%s') would cut the predicted "
          "communication cycles from %llu to %llu but is blocked by a "
          "dependence: %s",
          ap.array->name.c_str(), blocked->choice.text.c_str(),
          static_cast<unsigned long long>(legal_best),
          static_cast<unsigned long long>(blocked->predicted_cycles),
          blocked->blocker.c_str());
      const support::SourceRange at =
          blocked->blocked_at.begin.offset != 0 ||
                  blocked->blocked_at.end.offset != 0
              ? blocked->blocked_at
              : ap.array->def_range;
      ctx.report.add("UC-A302", support::Severity::kNote, at,
                     std::move(msg));
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_mapping_advice_pass() {
  return std::make_unique<MappingAdvicePass>();
}

}  // namespace uc::analysis
