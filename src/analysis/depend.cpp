#include "analysis/depend.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/str.hpp"

namespace uc::analysis {

namespace {

using lang::Symbol;

// Exhaustive owner-map simulation stays exact up to this extent; larger
// arrays fall back to rejecting any colliding candidate (fail closed).
constexpr std::int64_t kMaxExactExtent = 1 << 16;

AccessWindow window_from_view(const ParSite& site, const SiteAccess& sa,
                              std::size_t site_index, const DimView& v) {
  AccessWindow w;
  w.site = &site;
  w.site_index = site_index;
  w.is_write = sa.access.is_write;
  w.range = sa.access.site->range;
  switch (v.kind) {
    case DimKind::kIdent:
    case DimKind::kOffset:
    case DimKind::kScaled:
    case DimKind::kScan: {
      std::int64_t lo = 0, hi = -1, size = 0;
      const LaneElem* lane = site.lane_of(v.elem);
      if (lane != nullptr) {
        lo = lane->min_value;
        hi = lane->max_value;
      } else if (!elem_value_range(v.elem, lo, hi, size)) {
        return w;  // no range: stays inexact (covers everything)
      }
      w.exact = v.uniform_key.empty();
      w.coeff = v.coeff;
      w.offset = v.offset;
      w.elem_lo = lo;
      w.elem_hi = hi;
      return w;
    }
    case DimKind::kUniform:
      w.single_per_step = true;
      w.exact = v.uniform_key.empty();
      w.coeff = 0;
      w.offset = v.offset;
      return w;
    case DimKind::kMulti:
    case DimKind::kUnknown:
      return w;  // inexact
  }
  return w;
}

bool window_can_hit(const AccessWindow& w, std::int64_t e) {
  if (!w.exact) return true;
  if (w.coeff == 0) return w.offset == e;
  const std::int64_t d = e - w.offset;
  if (d % w.coeff != 0) return false;
  const std::int64_t v = d / w.coeff;
  return v >= w.elem_lo && v <= w.elem_hi;
}

// Finds a parallel step that can write both co-located elements e1 and e2
// (two lanes converging on one processor), or null when none can.
const AccessWindow* find_cowrite(const ArrayDep& dep, std::int64_t e1,
                                 std::int64_t e2) {
  for (const auto& w1 : dep.windows) {
    if (!w1.is_write) continue;
    // One lane-varying access covering both elements writes them from two
    // different lanes of the same step.
    if (!w1.single_per_step && window_can_hit(w1, e1) &&
        window_can_hit(w1, e2)) {
      return &w1;
    }
    // Two write accesses of the same statement, one per element.
    for (const auto& w2 : dep.windows) {
      if (&w1 == &w2 || !w2.is_write) continue;
      if (w1.site_index != w2.site_index) continue;
      if ((window_can_hit(w1, e1) && window_can_hit(w2, e2)) ||
          (window_can_hit(w1, e2) && window_can_hit(w2, e1))) {
        return &w1;
      }
    }
  }
  return nullptr;
}

std::pair<std::int64_t, std::int64_t> value_range(const AccessWindow& w) {
  const std::int64_t a = w.coeff * w.elem_lo + w.offset;
  const std::int64_t b = w.coeff * w.elem_hi + w.offset;
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

const ArrayDep* DependSummary::of(const Symbol* array) const {
  auto it = arrays.find(array);
  return it == arrays.end() ? nullptr : &it->second;
}

DependSummary summarize_dependences(const ProgramModel& model) {
  DependSummary out;
  for (std::size_t s = 0; s < model.sites.size(); ++s) {
    const ParSite& site = model.sites[s];
    for (const auto& sa : site.accesses) {
      if (sa.access.subscript == nullptr) continue;
      const Symbol* base = sa.access.base;
      if (base == nullptr || site.per_lane.count(base) != 0) continue;

      auto [it, inserted] = out.arrays.try_emplace(base);
      ArrayDep& dep = it->second;
      if (inserted) dep.array = base;
      if (sa.access.is_write) {
        ++dep.parallel_writes;
      }
      if (sa.access.is_read) {
        ++dep.parallel_reads;
      }

      // Element-space views: legality reasons about which elements a step
      // touches, so the current placement must NOT be composed in.
      auto views = subscript_views(site, sa, model,
                                   /*apply_placement=*/false);
      bool affine = true;
      for (const auto& v : views) {
        if (v.kind == DimKind::kUnknown) affine = false;
      }
      if (!affine && sa.access.is_write) dep.any_nonaffine_write = true;

      if (views.size() == 1 && base->type.dims.size() == 1) {
        dep.windows.push_back(window_from_view(site, sa, s, views[0]));
      }
    }
  }
  return out;
}

Legality prove_permute(const ArrayDep& dep, std::int64_t extent,
                       std::int64_t coeff, std::int64_t offset) {
  Legality r;
  if (coeff != 1 && coeff != -1) {
    r.blocker = "placement coefficient is not a unit (the permute would "
                "not be invertible)";
    return r;
  }

  // A unit-coefficient placement is a bijection of [0, extent) exactly for
  // the identity and the reversal; everything else collides at a boundary.
  const bool bijective = (coeff == 1 && offset == 0) ||
                         (coeff == -1 && offset == extent - 1);
  if (bijective) {
    r.legal = true;
    r.proof = support::format(
        "placement pos(v) = %s%lldv%+lld is a bijection of [0, %lld): every "
        "element keeps a private processor",
        coeff < 0 ? "-" : "", static_cast<long long>(std::abs(coeff)),
        static_cast<long long>(offset), static_cast<long long>(extent));
    return r;
  }

  if (extent > kMaxExactExtent) {
    r.blocker = "array too large for the exact owner-map simulation; the "
                "colliding placement cannot be proved safe";
    return r;
  }

  // Simulate the runtime owner table for `permute (S) T[g(i)] :- T[i]`
  // with g(i) = coeff*i - coeff*offset: element g(i) takes element i's
  // processor; unmapped elements keep their own.
  std::vector<std::int64_t> owner(static_cast<std::size_t>(extent));
  for (std::int64_t e = 0; e < extent; ++e) owner[e] = e;
  for (std::int64_t i = 0; i < extent; ++i) {
    const std::int64_t tgt = coeff * i - coeff * offset;
    if (tgt >= 0 && tgt < extent) owner[tgt] = i;
  }
  std::vector<std::vector<std::int64_t>> groups(
      static_cast<std::size_t>(extent));
  for (std::int64_t e = 0; e < extent; ++e) {
    groups[static_cast<std::size_t>(owner[e])].push_back(e);
  }

  std::size_t collisions = 0;
  for (const auto& g : groups) {
    if (g.size() < 2) continue;
    ++collisions;
    for (std::size_t a = 0; a < g.size(); ++a) {
      for (std::size_t b = a + 1; b < g.size(); ++b) {
        const AccessWindow* w = find_cowrite(dep, g[a], g[b]);
        if (w != nullptr) {
          r.blocker = support::format(
              "elements %lld and %lld share a processor under the permute "
              "but are written in the same parallel step (write-write "
              "interference across the permute)",
              static_cast<long long>(g[a]), static_cast<long long>(g[b]));
          r.blocked_at = w->range;
          return r;
        }
      }
    }
  }
  r.legal = true;
  r.proof = support::format(
      "placement collides on %zu processor(s) at the boundary, but no "
      "parallel step writes two co-located elements",
      collisions);
  return r;
}

Legality prove_fold(const ArrayDep& dep, std::int64_t extent) {
  Legality r;
  if (extent <= 0 || extent % 2 != 0) {
    r.blocker = "fold requires an even extent";
    return r;
  }
  if (extent > kMaxExactExtent) {
    r.blocker = "array too large for the exact folded-pair analysis";
    return r;
  }
  const std::int64_t half = extent / 2;

  // Every parallel access must provably stay within one half: only then is
  // the folded placement piecewise-affine on it (pos = v below the fold,
  // extent-1-v above it).
  for (const auto& w : dep.windows) {
    if (!w.exact) {
      r.blocker = "a parallel access has a subscript the fold analysis "
                  "cannot bound to one half";
      r.blocked_at = w.range;
      return r;
    }
    auto [lo, hi] = value_range(w);
    const bool low = lo >= 0 && hi < half;
    const bool high = lo >= half && hi < extent;
    if (!low && !high) {
      r.blocker = support::format(
          "a parallel access spans elements %lld..%lld, crossing the fold "
          "at %lld; the folded placement is not affine on it",
          static_cast<long long>(lo), static_cast<long long>(hi),
          static_cast<long long>(half));
      r.blocked_at = w.range;
      return r;
    }
  }

  // No parallel step may write both members of a folded pair (h and
  // extent-1-h land on one processor by construction).
  for (std::int64_t h = 0; h < half; ++h) {
    const AccessWindow* w = find_cowrite(dep, h, extent - 1 - h);
    if (w != nullptr) {
      r.blocker = support::format(
          "folded pair (%lld, %lld) is written in the same parallel step "
          "(write-write interference across the fold)",
          static_cast<long long>(h), static_cast<long long>(extent - 1 - h));
      r.blocked_at = w->range;
      return r;
    }
  }
  r.legal = true;
  r.proof = support::format(
      "every parallel access stays within one half of [0, %lld) and no "
      "folded pair is co-written in one step",
      static_cast<long long>(extent));
  return r;
}

Legality prove_copy(const ArrayDep& dep) {
  Legality r;
  if (dep.any_nonaffine_write) {
    r.blocker = "a parallel write has a data-dependent subscript; the "
                "broadcast update set for the copies cannot be proved";
    return r;
  }
  r.legal = true;
  if (dep.parallel_writes == 0) {
    r.proof = "array is never written in a parallel step; copies stay "
              "coherent for free";
  } else {
    r.proof = support::format(
        "all %zu parallel write(s) have statically known element sets; "
        "each update broadcasts to every copy",
        dep.parallel_writes);
  }
  return r;
}

}  // namespace uc::analysis
