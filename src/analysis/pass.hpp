// Pass manager for the static-analysis subsystem.
//
// Each pass sees the sema'd compilation unit plus a shared ProgramModel
// (parallel sites, guards, placements) and appends coded findings and
// communication data to the Report.  `run_default_analysis` is the one
// entry point the driver and the public API use: it builds the model once
// and runs the registered passes in order.
#pragma once

#include <memory>
#include <vector>

#include "analysis/model.hpp"
#include "analysis/report.hpp"
#include "cm/cost.hpp"
#include "uclang/frontend.hpp"

namespace uc::analysis {

struct AnalysisOptions {
  cm::CostModel cost;
};

struct PassContext {
  const lang::CompilationUnit& unit;
  const ProgramModel& model;
  const AnalysisOptions& options;
  Report& report;

  // Line number of a source location (0 when no file is attached).
  std::uint32_t line(support::SourceLoc loc) const;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual void run(PassContext& ctx) = 0;
};

class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass);
  // Builds the model from `unit` and runs every pass into `report`.
  void run(const lang::CompilationUnit& unit, const AnalysisOptions& options,
           Report& report) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Factories for the built-in passes.
std::unique_ptr<Pass> make_interference_pass();
std::unique_ptr<Pass> make_comm_pass();
std::unique_ptr<Pass> make_mapping_advice_pass();

// Runs the default pipeline (interference + communication classifier +
// mapping advice).
Report run_default_analysis(const lang::CompilationUnit& unit,
                            const AnalysisOptions& options = {});

}  // namespace uc::analysis
