#include "analysis/pass.hpp"

namespace uc::analysis {

std::uint32_t PassContext::line(support::SourceLoc loc) const {
  if (unit.file == nullptr) return 0;
  return unit.file->line_col(loc).line;
}

void PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

void PassManager::run(const lang::CompilationUnit& unit,
                      const AnalysisOptions& options, Report& report) const {
  ProgramModel model = build_model(unit);
  PassContext ctx{unit, model, options, report};
  for (const auto& pass : passes_) pass->run(ctx);
}

Report run_default_analysis(const lang::CompilationUnit& unit,
                            const AnalysisOptions& options) {
  PassManager pm;
  pm.add(make_interference_pass());
  pm.add(make_comm_pass());
  pm.add(make_mapping_advice_pass());
  Report report;
  pm.run(unit, options, report);
  return report;
}

}  // namespace uc::analysis
