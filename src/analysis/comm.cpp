// Communication-pattern classification (UC-A2xx + summary).
//
// Every array access inside a parallel site is classified by the machine
// communication it needs on a CM-2 style grid: local (subscripts align
// with the lane indices), news (constant-offset neighbour), scan
// (uniform spread / reduce-shaped), or router (everything else).  Permute
// placements from map sections are composed into the subscripts so the
// classification reflects *physical* positions; mappings that turn
// NEWS-servable access patterns into router traffic are flagged.
#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "analysis/comm.hpp"
#include "analysis/pass.hpp"

namespace uc::analysis {

namespace {

using lang::Symbol;

std::uint64_t ceil_log2(std::uint64_t n) {
  std::uint64_t bits = 0;
  while ((std::uint64_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace

CommDecision classify_views(const ParSite& site,
                            const std::vector<DimView>& views) {
  for (const auto& v : views) {
    if (v.kind == DimKind::kUnknown) {
      return {CommClass::kRouter, "subscript not affine in lane indices"};
    }
    if (v.kind == DimKind::kMulti) {
      return {CommClass::kRouter, "subscript mixes lane indices"};
    }
  }
  for (const auto& v : views) {
    if (v.kind == DimKind::kScaled) {
      return {CommClass::kRouter, "strided or permuted subscript"};
    }
  }
  for (const auto& v : views) {
    if (v.kind == DimKind::kScan) {
      return {CommClass::kScan, "reduce-bound subscript sweeps its set"};
    }
  }
  bool any_uniform = false;
  for (const auto& v : views) {
    if (v.kind == DimKind::kUniform) any_uniform = true;
  }
  if (any_uniform) {
    return {CommClass::kScan, "uniform subscript (spread/broadcast)"};
  }

  // All dims are kIdent / kOffset on distinct lane elements.  A repeated
  // element (a[i][i]) or a transposed order (a[j][i] under par (I,J))
  // needs general communication.
  std::vector<const Symbol*> order;
  for (const auto& v : views) {
    if (std::find(order.begin(), order.end(), v.elem) != order.end()) {
      return {CommClass::kRouter, "lane index repeated across dimensions"};
    }
    order.push_back(v.elem);
  }
  std::size_t lane_pos = 0;
  for (const auto* elem : order) {
    while (lane_pos < site.lanes.size() &&
           site.lanes[lane_pos].elem != elem) {
      ++lane_pos;
    }
    if (lane_pos == site.lanes.size()) {
      return {CommClass::kRouter, "lane indices used in transposed order"};
    }
    ++lane_pos;
  }

  std::int64_t max_off = 0;
  for (const auto& v : views) {
    max_off = std::max(max_off, std::abs(v.offset));
  }
  if (max_off != 0) {
    return {CommClass::kNews,
            "constant offset " + std::to_string(max_off) + " on the grid"};
  }
  return {CommClass::kLocal, ""};
}

std::uint64_t estimate_comm_cycles(const cm::CostModel& cost, CommClass cls,
                                   std::uint64_t space) {
  std::uint64_t vp = cost.vp_ratio(space);
  switch (cls) {
    case CommClass::kLocal:
      return cost.mem_op * vp;
    case CommClass::kNews:
      return cost.news_op * vp;
    case CommClass::kScan:
      return cost.scan_step * std::max<std::uint64_t>(1, ceil_log2(space)) *
             vp;
    case CommClass::kRouter:
      return cost.router_op * vp;
  }
  return cost.mem_op * vp;
}

namespace {

class CommPass : public Pass {
 public:
  const char* name() const override { return "comm"; }

  void run(PassContext& ctx) override {
    std::map<std::string, FunctionComm> by_fn;
    // Per-array classification with and without the permute placement,
    // for the mapping diagnostics.
    std::map<const Symbol*, bool> any_placed_router;
    std::map<const Symbol*, bool> all_identity_cheap;
    std::map<const Symbol*, std::size_t> access_count;

    for (const auto& site : ctx.model.sites) {
      for (const auto& sa : site.accesses) {
        if (sa.access.subscript == nullptr) continue;  // scalars are local
        const Symbol* base = sa.access.base;
        if (base == nullptr || site.per_lane.count(base) != 0) continue;

        auto placed = subscript_views(site, sa, ctx.model,
                                      /*apply_placement=*/true);
        CommDecision c = classify_views(site, placed);

        std::uint64_t space = site.lane_count();
        const lang::ReduceExpr* reduce =
            sa.access.reduce != nullptr ? sa.access.reduce : site.reduce;
        if (reduce != nullptr) {
          for (const auto* set : reduce->index_set_syms) {
            if (set != nullptr && set->index_set != nullptr &&
                !set->index_set->values.empty()) {
              space *= set->index_set->values.size();
            }
          }
        }

        CommAccess ca;
        ca.cls = c.cls;
        ca.is_write = sa.access.is_write;
        ca.array = base->name;
        ca.detail = c.detail;
        ca.range = sa.access.site->range;
        ca.lanes = space;
        ca.est_cycles = estimate_comm_cycles(ctx.options.cost, c.cls, space);

        std::string fn =
            site.function != nullptr ? site.function->name : "<global>";
        auto [it, inserted] = by_fn.try_emplace(fn);
        if (inserted) it->second.function = fn;
        it->second.accesses.push_back(std::move(ca));

        // Bookkeeping for UC-A201/A202.
        ++access_count[base];
        if (ctx.model.placements.count(base) != 0) {
          auto identity = subscript_views(site, sa, ctx.model,
                                          /*apply_placement=*/false);
          CommDecision ci = classify_views(site, identity);
          bool cheap = ci.cls == CommClass::kLocal ||
                       ci.cls == CommClass::kNews;
          auto [ai, ains] = all_identity_cheap.try_emplace(base, true);
          (void)ains;
          ai->second = ai->second && cheap;
          if (c.cls == CommClass::kRouter) any_placed_router[base] = true;
        }
      }
    }

    for (auto& [fn, comm] : by_fn) {
      ctx.report.functions.push_back(std::move(comm));
    }

    report_mapping_findings(ctx, any_placed_router, all_identity_cheap,
                            access_count);
  }

 private:
  void report_mapping_findings(
      PassContext& ctx,
      const std::map<const Symbol*, bool>& any_placed_router,
      const std::map<const Symbol*, bool>& all_identity_cheap,
      const std::map<const Symbol*, std::size_t>& access_count) {
    // UC-A201: a permute that turns otherwise NEWS/local traffic into
    // router traffic.  The default (identity) mapping would have served
    // every access from the grid.
    for (const auto& [target, placement] : ctx.model.placements) {
      auto routed = any_placed_router.find(target);
      auto cheap = all_identity_cheap.find(target);
      if (routed == any_placed_router.end() || !routed->second) continue;
      if (cheap == all_identity_cheap.end() || !cheap->second) continue;
      std::string msg =
          "permute mapping of '" + target->name +
          "' forces router traffic: without it every parallel access to "
          "this array is NEWS or local; consider dropping the permute or "
          "using a constant-offset mapping";
      ctx.report.add("UC-A201", support::Severity::kWarning,
                     placement.mapping->range, std::move(msg));
    }

    // UC-A202: mappings whose target has no parallel accesses at all.
    for (const auto& ref : ctx.model.mappings) {
      auto n = access_count.find(ref.target);
      if (n != access_count.end() && n->second > 0) continue;
      std::string msg =
          "mapping targets '" + ref.target->name +
          "' but no parallel access to it was found; the mapping has no "
          "effect on communication";
      ctx.report.add("UC-A202", support::Severity::kNote, ref.mapping->range,
                     std::move(msg));
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_comm_pass() {
  return std::make_unique<CommPass>();
}

}  // namespace uc::analysis
