// The analysis model: a flattened view of every parallel site in a sema'd
// program, with read/write sets, per-arm guard constraints, and affine
// views of array subscripts relative to the site's lane index elements.
//
// A "site" is either a UC construct that evaluates its body across lanes
// (par / *par / oneof / solve — seq iterates sequentially and is walked
// through, its elements becoming uniform values) or a reduction expression
// in sequential position.  Nested constructs get their own sites; the
// enclosing construct's elements stay bound as lane elements of the inner
// site.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "uclang/access.hpp"
#include "uclang/ast.hpp"
#include "uclang/frontend.hpp"
#include "uclang/symbols.hpp"
#include "xform/affine.hpp"

namespace uc::analysis {

struct LaneElem {
  const lang::Symbol* set = nullptr;
  const lang::Symbol* elem = nullptr;
  std::int64_t size = 0;
  std::int64_t min_value = 0;
  std::int64_t max_value = 0;
};

// Index-pure constraints harvested from an `st` predicate's conjuncts.
struct Congruence {
  const lang::Symbol* elem = nullptr;
  std::int64_t mod = 1;
  std::int64_t rem = 0;
};

struct ElemEq {  // a == b + diff
  const lang::Symbol* a = nullptr;
  const lang::Symbol* b = nullptr;
  std::int64_t diff = 0;
};

struct Guard {
  std::vector<Congruence> congruences;
  std::vector<const lang::Symbol*> pins;  // elem == <uniform expr>
  std::vector<ElemEq> eqs;
  // A conjunct the harvest could not express (array reads, calls, ||,
  // inequalities): the selected subset is then only over-approximated.
  bool data_dependent = false;
  bool is_others = false;

  const Congruence* congruence_on(const lang::Symbol* elem) const;
  bool pins_elem(const lang::Symbol* elem) const;
  bool has_index_constraints() const {
    return !congruences.empty() || !pins.empty() || !eqs.empty();
  }
};

struct SiteAccess {
  lang::Access access;
  // Index into ParSite::guards; -1 for accesses evaluated on every lane
  // (st predicates themselves).
  int guard_index = -1;
};

struct ParSite {
  const lang::UcConstructStmt* construct = nullptr;  // null for reduce sites
  const lang::ReduceExpr* reduce = nullptr;          // reduce-only sites
  const lang::FuncDecl* function = nullptr;          // null at global scope
  lang::UcOp op = lang::UcOp::kPar;
  bool starred = false;
  std::vector<LaneElem> lanes;  // enclosing parallel elems first, then own
  std::vector<Guard> guards;
  std::vector<SiteAccess> accesses;
  // Scalars declared inside the body: per-lane state, not shared.
  std::unordered_set<const lang::Symbol*> per_lane;
  bool has_user_call = false;
  // Static execution-count estimate: the product of enclosing sequential
  // `seq` set sizes, times a nominal factor per enclosing for/while loop.
  // The mapping optimiser uses it to amortise one-time relocation sweeps
  // against per-execution communication savings (docs/MAPPING.md).
  std::uint64_t repeat = 1;

  std::uint64_t lane_count() const;
  bool is_lane_elem(const lang::Symbol* elem) const;
  const LaneElem* lane_of(const lang::Symbol* elem) const;
};

// Placement of a permuted array: pos(T[v]) = coeff * v + offset when
// affine; a non-affine permute scrambles placement (general router).
struct Placement {
  const lang::Mapping* mapping = nullptr;
  bool affine = false;
  std::int64_t coeff = 1;
  std::int64_t offset = 0;
};

struct MappingRef {
  const lang::Mapping* mapping = nullptr;
  const lang::Symbol* target = nullptr;
};

struct ProgramModel {
  std::vector<ParSite> sites;
  std::unordered_map<const lang::Symbol*, Placement> placements;
  std::vector<MappingRef> mappings;
};

ProgramModel build_model(const lang::CompilationUnit& unit);

// ---------------------------------------------------------------------------
// Affine views of one subscript dimension relative to a site's lanes
// ---------------------------------------------------------------------------

enum class DimKind : std::uint8_t {
  kIdent,    // 1*elem + 0, no uniform part
  kOffset,   // 1*elem + c (constant c != 0)
  kScaled,   // k*elem + c with k != 1, or unit elem with a runtime-uniform
             // offset — injective per lane but not grid-aligned
  kUniform,  // no lane element: same index on every lane
  kScan,     // involves a reduce-bound element (sweeps its set)
  kMulti,    // more than one lane element
  kUnknown,  // not affine, or depends on per-lane locals
};

struct DimView {
  DimKind kind = DimKind::kUnknown;
  const lang::Symbol* elem = nullptr;  // kIdent/kOffset/kScaled/kScan
  std::int64_t coeff = 0;
  std::int64_t offset = 0;
  // Canonical rendering of the runtime-uniform symbolic part ("" when the
  // offset is a pure constant); two dims with equal keys share the value.
  std::string uniform_key;
};

// Views for every dimension of an array access.  `apply_placement` runs
// 1-D subscripts through the array's permute placement (communication
// classification wants physical positions; interference wants elements).
std::vector<DimView> subscript_views(const ParSite& site, const SiteAccess& a,
                                     const ProgramModel& model,
                                     bool apply_placement);

// Value range of an index element symbol (from its set), for overlap
// reasoning about reduce-bound elements that are not site lanes.
bool elem_value_range(const lang::Symbol* elem, std::int64_t& min_v,
                      std::int64_t& max_v, std::int64_t& size);

}  // namespace uc::analysis
