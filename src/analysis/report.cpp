#include "analysis/report.hpp"

#include <sstream>

namespace uc::analysis {

const char* comm_class_name(CommClass c) {
  switch (c) {
    case CommClass::kLocal:
      return "local";
    case CommClass::kNews:
      return "news";
    case CommClass::kScan:
      return "scan";
    case CommClass::kRouter:
      return "router";
  }
  return "unknown";
}

std::size_t FunctionComm::count(CommClass c) const {
  std::size_t n = 0;
  for (const auto& a : accesses) {
    if (a.cls == c) ++n;
  }
  return n;
}

std::uint64_t FunctionComm::est_cycles() const {
  std::uint64_t total = 0;
  for (const auto& a : accesses) total += a.est_cycles;
  return total;
}

std::size_t Report::error_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity == support::Severity::kError) ++n;
  }
  return n;
}

std::size_t Report::warning_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity == support::Severity::kWarning) ++n;
  }
  return n;
}

std::size_t Report::note_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity == support::Severity::kNote) ++n;
  }
  return n;
}

void Report::add(const char* code, support::Severity severity,
                 support::SourceRange range, std::string message) {
  findings.push_back(Finding{code, severity, range, std::move(message)});
}

std::string Report::render(const support::SourceFile* file,
                           const RenderOptions& opts) const {
  support::DiagnosticEngine engine(file);
  for (const auto& f : findings) {
    if (!opts.include_notes && f.severity == support::Severity::kNote) {
      continue;
    }
    engine.report(f.severity, f.range,
                  "[" + std::string(f.code) + "] " + f.message);
  }
  std::string out = engine.render_all();

  if (opts.include_summary && !functions.empty()) {
    std::ostringstream os;
    os << "communication summary:\n";
    for (const auto& fn : functions) {
      os << "  " << fn.function << "():"
         << " local=" << fn.count(CommClass::kLocal)
         << " news=" << fn.count(CommClass::kNews)
         << " scan=" << fn.count(CommClass::kScan)
         << " router=" << fn.count(CommClass::kRouter)
         << "  est_cycles=" << fn.est_cycles() << '\n';
      for (const auto& a : fn.accesses) {
        os << "    ";
        if (file != nullptr) {
          os << "line " << file->line_col(a.range.begin).line << ": ";
        }
        os << (a.is_write ? "write " : "read ") << a.array << " -> "
           << comm_class_name(a.cls);
        if (!a.detail.empty()) os << " (" << a.detail << ")";
        os << " [" << a.lanes << " lanes, ~" << a.est_cycles << " cycles]\n";
      }
    }
    out += os.str();
  }
  return out;
}

}  // namespace uc::analysis
