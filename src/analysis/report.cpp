#include "analysis/report.hpp"

#include <sstream>

#include "support/str.hpp"

namespace uc::analysis {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += support::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* comm_class_name(CommClass c) {
  switch (c) {
    case CommClass::kLocal:
      return "local";
    case CommClass::kNews:
      return "news";
    case CommClass::kScan:
      return "scan";
    case CommClass::kRouter:
      return "router";
  }
  return "unknown";
}

std::size_t FunctionComm::count(CommClass c) const {
  std::size_t n = 0;
  for (const auto& a : accesses) {
    if (a.cls == c) ++n;
  }
  return n;
}

std::uint64_t FunctionComm::est_cycles() const {
  std::uint64_t total = 0;
  for (const auto& a : accesses) total += a.est_cycles;
  return total;
}

std::size_t Report::error_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity == support::Severity::kError) ++n;
  }
  return n;
}

std::size_t Report::warning_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity == support::Severity::kWarning) ++n;
  }
  return n;
}

std::size_t Report::note_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity == support::Severity::kNote) ++n;
  }
  return n;
}

void Report::add(const char* code, support::Severity severity,
                 support::SourceRange range, std::string message) {
  findings.push_back(Finding{code, severity, range, std::move(message)});
}

std::string Report::render(const support::SourceFile* file,
                           const RenderOptions& opts) const {
  support::DiagnosticEngine engine(file);
  for (const auto& f : findings) {
    if (!opts.include_notes && f.severity == support::Severity::kNote) {
      continue;
    }
    engine.report(f.severity, f.range,
                  "[" + std::string(f.code) + "] " + f.message);
  }
  std::string out = engine.render_all();

  if (opts.include_summary && !functions.empty()) {
    std::ostringstream os;
    os << "communication summary:\n";
    for (const auto& fn : functions) {
      os << "  " << fn.function << "():"
         << " local=" << fn.count(CommClass::kLocal)
         << " news=" << fn.count(CommClass::kNews)
         << " scan=" << fn.count(CommClass::kScan)
         << " router=" << fn.count(CommClass::kRouter)
         << "  est_cycles=" << fn.est_cycles() << '\n';
      for (const auto& a : fn.accesses) {
        os << "    ";
        if (file != nullptr) {
          os << "line " << file->line_col(a.range.begin).line << ": ";
        }
        os << (a.is_write ? "write " : "read ") << a.array << " -> "
           << comm_class_name(a.cls);
        if (!a.detail.empty()) os << " (" << a.detail << ")";
        os << " [" << a.lanes << " lanes, ~" << a.est_cycles << " cycles]\n";
      }
    }
    out += os.str();
  }
  return out;
}

std::string Report::json(const support::SourceFile* file) const {
  auto line_of = [&](support::SourceLoc loc) -> std::uint32_t {
    return file != nullptr ? file->line_col(loc).line : 0;
  };
  auto col_of = [&](support::SourceLoc loc) -> std::uint32_t {
    return file != nullptr ? file->line_col(loc).col : 0;
  };

  std::string out = "{\n";
  out += support::format(
      "  \"errors\": %zu, \"warnings\": %zu, \"notes\": %zu,\n",
      error_count(), warning_count(), note_count());

  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += support::format(
        "    {\"code\": \"%s\", \"severity\": \"%s\", \"line\": %u, "
        "\"col\": %u, \"message\": \"%s\"}%s\n",
        f.code, support::severity_name(f.severity), line_of(f.range.begin),
        col_of(f.range.begin), json_escape(f.message).c_str(),
        i + 1 < findings.size() ? "," : "");
  }
  out += "  ],\n";

  out += "  \"functions\": [\n";
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionComm& fn = functions[i];
    out += support::format(
        "    {\"function\": \"%s\", \"local\": %zu, \"news\": %zu, "
        "\"scan\": %zu, \"router\": %zu, \"est_cycles\": %llu,\n",
        json_escape(fn.function).c_str(), fn.count(CommClass::kLocal),
        fn.count(CommClass::kNews), fn.count(CommClass::kScan),
        fn.count(CommClass::kRouter),
        static_cast<unsigned long long>(fn.est_cycles()));
    out += "     \"accesses\": [\n";
    for (std::size_t k = 0; k < fn.accesses.size(); ++k) {
      const CommAccess& a = fn.accesses[k];
      out += support::format(
          "       {\"array\": \"%s\", \"op\": \"%s\", \"class\": \"%s\", "
          "\"line\": %u, \"lanes\": %llu, \"est_cycles\": %llu, "
          "\"detail\": \"%s\"}%s\n",
          json_escape(a.array).c_str(), a.is_write ? "write" : "read",
          comm_class_name(a.cls), line_of(a.range.begin),
          static_cast<unsigned long long>(a.lanes),
          static_cast<unsigned long long>(a.est_cycles),
          json_escape(a.detail).c_str(),
          k + 1 < fn.accesses.size() ? "," : "");
    }
    out += support::format("     ]}%s\n",
                           i + 1 < functions.size() ? "," : "");
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace uc::analysis
