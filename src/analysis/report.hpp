// Structured results of the `ucc analyze` static-analysis passes.
//
// Findings carry stable UC-Axxx codes so tools (and tests) can match them
// without parsing prose:
//
//   UC-A101  warning  write-write conflict between lanes of a par block
//   UC-A102  note     possible write-write conflict (not statically decidable)
//   UC-A103  note     reads observe old (copy-in) values in a par block
//   UC-A104  note     write escapes the subset selected by an st predicate
//   UC-A105  note     user-function call limits interference analysis
//   UC-A201  warning  permute mapping forces router traffic where the
//                     default (or a NEWS) mapping would serve every access
//   UC-A202  note     mapping targets an array with no parallel accesses
//
// The communication summary classifies every parallel array access:
//
//   local   subscripts align with the lane indices (no communication)
//   news    constant-offset neighbour access on the NEWS grid
//   scan    spread / reduction shaped (uniform or reduce-bound subscripts)
//   router  general communication (non-affine, strided, or permuted)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cm/cost.hpp"
#include "support/diag.hpp"
#include "support/source.hpp"

namespace uc::analysis {

enum class CommClass : std::uint8_t { kLocal, kNews, kScan, kRouter };

const char* comm_class_name(CommClass c);

struct Finding {
  const char* code = "UC-A000";
  support::Severity severity = support::Severity::kNote;
  support::SourceRange range;
  std::string message;
};

// One classified array access inside a parallel construct or reduction.
struct CommAccess {
  CommClass cls = CommClass::kLocal;
  bool is_write = false;
  std::string array;
  std::string detail;  // why it landed in this class
  support::SourceRange range;
  std::uint64_t lanes = 1;       // evaluation-space size
  std::uint64_t est_cycles = 0;  // cost-model estimate for one execution
};

struct FunctionComm {
  std::string function;
  std::vector<CommAccess> accesses;

  std::size_t count(CommClass c) const;
  std::uint64_t est_cycles() const;
};

struct RenderOptions {
  bool include_notes = true;
  bool include_summary = true;
};

struct Report {
  std::vector<Finding> findings;
  std::vector<FunctionComm> functions;

  std::size_t error_count() const;
  std::size_t warning_count() const;
  std::size_t note_count() const;

  void add(const char* code, support::Severity severity,
           support::SourceRange range, std::string message);

  // Renders findings (via the shared diagnostic engine, carets and all)
  // followed by the per-function communication summary.
  std::string render(const support::SourceFile* file,
                     const RenderOptions& opts = {}) const;

  // Machine-readable findings + summary (`ucc analyze --json=`),
  // mirroring the profile JSON conventions (docs/ANALYSIS.md).
  std::string json(const support::SourceFile* file) const;
};

}  // namespace uc::analysis
