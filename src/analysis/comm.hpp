// The communication classifier's core decision, shared between the comm
// pass (UC-A2xx + summary) and the mapping optimiser (docs/MAPPING.md),
// which re-runs the same classification under candidate placements so a
// predicted win is a win of *this* model, not of a lookalike.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/model.hpp"
#include "analysis/report.hpp"
#include "cm/cost.hpp"

namespace uc::analysis {

struct CommDecision {
  CommClass cls = CommClass::kLocal;
  std::string detail;
};

// Classifies one access's per-dimension views against the site's lanes:
// local / news / scan / router exactly as `ucc analyze` reports it.
CommDecision classify_views(const ParSite& site,
                            const std::vector<DimView>& views);

// Cost-model estimate for one execution of an access of class `cls` over
// an evaluation space of `space` lanes.
std::uint64_t estimate_comm_cycles(const cm::CostModel& cost, CommClass cls,
                                   std::uint64_t space);

}  // namespace uc::analysis
