// Sequential reference implementations (DESIGN.md S8).  These play two
// roles: correctness oracles for the UC VM's parallel algorithms, and the
// "sequential C on the front end" baselines of the paper's Fig 8.
//
// For Fig 8's cost axis they also report a front-end operation count (one
// per elementary operation executed) so benches can express the baseline
// in the same cost units as the simulated CM.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace uc::seqref {

// All-pairs shortest path, Floyd–Warshall.  dist is row-major n×n,
// modified in place.  Returns the number of elementary operations.
std::uint64_t floyd_warshall(std::vector<std::int64_t>& dist, std::int64_t n);

// All-pairs shortest path by repeated min-plus squaring (the O(N^3)
// algorithm's sequential shape): ceil(log2 n) squarings.
std::uint64_t min_plus_closure(std::vector<std::int64_t>& dist,
                               std::int64_t n);

// The paper Fig 4 edge-weight initialisation: d[i][i]=0, d[i][j] in 1..n.
std::vector<std::int64_t> random_digraph(std::int64_t n,
                                         support::SplitMix64& rng);

// Grid shortest path with obstacles (Fig 8/11): BFS from (0,0) over a
// rows×cols grid; cells with wall=true are disconnected.  Unreachable
// cells get `inf`.  Returns elementary-operation count via out param.
std::vector<std::int64_t> grid_bfs(std::int64_t rows, std::int64_t cols,
                                   const std::vector<std::uint8_t>& wall,
                                   std::int64_t inf, std::uint64_t* ops);

// The iterative relaxation the paper's parallel program performs, executed
// sequentially (the honest "same algorithm, one CPU" baseline): each sweep
// updates every cell from its four neighbours until a fixed point.
std::vector<std::int64_t> grid_relax_sequential(
    std::int64_t rows, std::int64_t cols,
    const std::vector<std::uint8_t>& wall, std::int64_t inf,
    std::uint64_t* ops);

// Fig 11's obstacle: the anti-diagonal band i+j == rows-1 with
// |i - rows/2| <= rows/4, leaving column 0 open.
std::vector<std::uint8_t> paper_obstacle(std::int64_t rows,
                                         std::int64_t cols);

// Prefix sums and sorts (oracles for Figs 2/3 and §3.4/§3.7).
std::vector<std::int64_t> prefix_sums(const std::vector<std::int64_t>& in);
std::vector<std::int64_t> sorted(std::vector<std::int64_t> in);

// Wavefront matrix (oracle for the §3.6 solve example).
std::vector<std::int64_t> wavefront(std::int64_t n);

}  // namespace uc::seqref
