#include "seqref/seqref.hpp"

#include <algorithm>
#include <deque>

namespace uc::seqref {

std::uint64_t floyd_warshall(std::vector<std::int64_t>& dist,
                             std::int64_t n) {
  std::uint64_t ops = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const auto via = dist[static_cast<std::size_t>(i * n + k)] +
                         dist[static_cast<std::size_t>(k * n + j)];
        auto& d = dist[static_cast<std::size_t>(i * n + j)];
        if (via < d) d = via;
        ops += 3;  // add, compare, conditional store
      }
    }
  }
  return ops;
}

std::uint64_t min_plus_closure(std::vector<std::int64_t>& dist,
                               std::int64_t n) {
  std::uint64_t ops = 0;
  std::int64_t rounds = 1;
  while ((std::int64_t{1} << rounds) < n) ++rounds;
  std::vector<std::int64_t> next(dist.size());
  for (std::int64_t r = 0; r < rounds; ++r) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        std::int64_t best = dist[static_cast<std::size_t>(i * n + j)];
        for (std::int64_t k = 0; k < n; ++k) {
          best = std::min(best, dist[static_cast<std::size_t>(i * n + k)] +
                                    dist[static_cast<std::size_t>(k * n + j)]);
          ops += 2;
        }
        next[static_cast<std::size_t>(i * n + j)] = best;
      }
    }
    dist.swap(next);
  }
  return ops;
}

std::vector<std::int64_t> random_digraph(std::int64_t n,
                                         support::SplitMix64& rng) {
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      dist[static_cast<std::size_t>(i * n + j)] =
          i == j ? 0
                 : static_cast<std::int64_t>(
                       rng.next_below(static_cast<std::uint64_t>(n))) +
                       1;
    }
  }
  return dist;
}

std::vector<std::int64_t> grid_bfs(std::int64_t rows, std::int64_t cols,
                                   const std::vector<std::uint8_t>& wall,
                                   std::int64_t inf, std::uint64_t* ops) {
  std::vector<std::int64_t> dist(static_cast<std::size_t>(rows * cols), inf);
  std::uint64_t n_ops = 0;
  std::deque<std::int64_t> queue;
  if (!wall.empty() && wall[0] == 0) {
    dist[0] = 0;
    queue.push_back(0);
  }
  const std::int64_t dr[4] = {1, -1, 0, 0};
  const std::int64_t dc[4] = {0, 0, 1, -1};
  while (!queue.empty()) {
    const auto cur = queue.front();
    queue.pop_front();
    const auto r = cur / cols;
    const auto c = cur % cols;
    for (int k = 0; k < 4; ++k) {
      const auto nr = r + dr[k];
      const auto nc = c + dc[k];
      n_ops += 4;
      if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
      const auto ni = nr * cols + nc;
      if (wall[static_cast<std::size_t>(ni)] != 0) continue;
      if (dist[static_cast<std::size_t>(ni)] != inf) continue;
      dist[static_cast<std::size_t>(ni)] =
          dist[static_cast<std::size_t>(cur)] + 1;
      queue.push_back(ni);
    }
  }
  if (ops != nullptr) *ops = n_ops;
  return dist;
}

std::vector<std::int64_t> grid_relax_sequential(
    std::int64_t rows, std::int64_t cols,
    const std::vector<std::uint8_t>& wall, std::int64_t inf,
    std::uint64_t* ops) {
  std::vector<std::int64_t> dist(static_cast<std::size_t>(rows * cols), inf);
  dist[0] = 0;
  std::uint64_t n_ops = 0;
  bool changed = true;
  std::vector<std::int64_t> next(dist);
  while (changed) {
    changed = false;
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        const auto idx = static_cast<std::size_t>(r * cols + c);
        n_ops += 6;  // four neighbour reads, min chain, store
        if (idx == 0 || wall[idx] != 0) {
          next[idx] = wall[idx] != 0 ? inf : dist[idx];
          continue;
        }
        std::int64_t best = inf;
        auto consider = [&](std::int64_t rr, std::int64_t cc) {
          if (rr < 0 || rr >= rows || cc < 0 || cc >= cols) return;
          const auto ni = static_cast<std::size_t>(rr * cols + cc);
          if (wall[ni] != 0) return;
          best = std::min(best, dist[ni]);
        };
        consider(r - 1, c);
        consider(r + 1, c);
        consider(r, c - 1);
        consider(r, c + 1);
        const auto v = std::min(inf, best == inf ? inf : best + 1);
        next[idx] = v;
        if (v != dist[idx]) changed = true;
      }
    }
    dist.swap(next);
  }
  if (ops != nullptr) *ops = n_ops;
  return dist;
}

std::vector<std::uint8_t> paper_obstacle(std::int64_t rows,
                                         std::int64_t cols) {
  std::vector<std::uint8_t> wall(static_cast<std::size_t>(rows * cols), 0);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      const bool on_band = i + j == rows - 1 &&
                           std::abs(i - rows / 2) <= rows / 4 && j != 0;
      if (on_band) wall[static_cast<std::size_t>(i * cols + j)] = 1;
    }
  }
  return wall;
}

std::vector<std::int64_t> prefix_sums(const std::vector<std::int64_t>& in) {
  std::vector<std::int64_t> out(in.size());
  std::int64_t acc = 0;
  for (std::size_t k = 0; k < in.size(); ++k) {
    acc += in[k];
    out[k] = acc;
  }
  return out;
}

std::vector<std::int64_t> sorted(std::vector<std::int64_t> in) {
  std::sort(in.begin(), in.end());
  return in;
}

std::vector<std::int64_t> wavefront(std::int64_t n) {
  std::vector<std::int64_t> a(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i * n + j)] =
          (i == 0 || j == 0)
              ? 1
              : a[static_cast<std::size_t>((i - 1) * n + j)] +
                    a[static_cast<std::size_t>((i - 1) * n + j - 1)] +
                    a[static_cast<std::size_t>(i * n + j - 1)];
    }
  }
  return a;
}

}  // namespace uc::seqref
