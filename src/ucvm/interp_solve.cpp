// The solve construct (paper §3.6).
//
// `solve` executes a proper set of assignments in dependency order using
// the paper's general method: every target array starts "undefined"
// (the impossible value), and the body is iterated like a *par in which an
// assignment fires only when it has not fired yet and every value it reads
// is defined.  A fixed point with unfired assignments means the set was
// not proper (circular), which is reported.
//
// `*solve` repeats its body until no referenced variable changes value,
// paying the cost of saving and comparing the previous state each round —
// exactly why the paper calls hand-refined *par more efficient (E6).
#include <algorithm>

#include "support/error.hpp"
#include "support/str.hpp"
#include "ucvm/checkpoint.hpp"
#include "ucvm/interp_detail.hpp"

namespace uc::vm::detail {

using lang::ExprKind;
using lang::StmtKind;
using lang::UcConstructStmt;

namespace {

// Collects the assignment statements of a solve body in order, each with
// the predicate of the sc-block it came from.
struct SolveAssign {
  const Expr* pred = nullptr;  // block predicate (may be null)
  const lang::AssignExpr* assign = nullptr;
};

void collect_assigns(const Stmt& stmt, const Expr* pred,
                     std::vector<SolveAssign>& out) {
  switch (stmt.kind) {
    case StmtKind::kExpr: {
      const auto& es = static_cast<const lang::ExprStmt&>(stmt);
      if (es.expr->kind == ExprKind::kAssign) {
        out.push_back(SolveAssign{
            pred, static_cast<const lang::AssignExpr*>(es.expr.get())});
      }
      return;
    }
    case StmtKind::kCompound:
      for (const auto& s : static_cast<const lang::CompoundStmt&>(stmt).body) {
        collect_assigns(*s, pred, out);
      }
      return;
    default:
      return;
  }
}

}  // namespace

void Impl::exec_solve(const UcConstructStmt& stmt, LaneSpace& space,
                      Frame* frame) {
  std::vector<SolveAssign> assigns;
  for (const auto& block : stmt.blocks) {
    collect_assigns(*block.body, block.pred.get(), assigns);
  }
  if (stmt.others) collect_assigns(*stmt.others, nullptr, assigns);
  if (assigns.empty()) return;

  const auto lane_count = space.lane_count();

  // Pre-pass, against the pre-solve state: evaluate each block predicate
  // (solve predicates select which equations exist, so they see the state
  // as of entry — docs/LANGUAGE.md) and resolve each enabled lane's target
  // address.  Only those exact elements receive the paper's "impossible
  // value"; elements the solve never assigns (e.g. boundary cells written
  // before the solve) stay defined and readable.
  struct LaneTarget {
    std::int64_t lane;
    WriteTarget target;
  };
  std::vector<std::vector<LaneTarget>> enabled(assigns.size());
  std::unordered_set<ArrayObj*> targets;
  std::unordered_map<WriteTarget, const Expr*, WriteTargetHash> claimed;
  for (std::size_t a = 0; a < assigns.size(); ++a) {
    charge_expr(assigns[a].pred != nullptr ? *assigns[a].pred
                                           : *assigns[a].assign->lhs,
                space.geom_size, /*frontend=*/false, &space);
    for (std::int64_t l = 0; l < lane_count; ++l) {
      EvalCtx ctx;
      ctx.vm = this;
      ctx.space = &space;
      ctx.lane = l;
      ctx.frame = frame;
      ctx.statement_frame = frame;
      if (assigns[a].pred != nullptr &&
          !eval(*assigns[a].pred, ctx).truthy()) {
        continue;
      }
      auto target = resolve_lvalue(*assigns[a].assign->lhs, ctx);
      if (!target) continue;
      auto [it, inserted] =
          claimed.try_emplace(*target, assigns[a].assign);
      if (!inserted) {
        runtime_error(assigns[a].assign,
                      "solve assigns the same element from more than one "
                      "equation (not a proper set, paper §3.6)");
      }
      enabled[a].push_back(LaneTarget{l, *target});
      targets.insert(static_cast<ArrayObj*>(target->obj));
    }
  }
  for (const auto& [target, where] : claimed) {
    static_cast<ArrayObj*>(target.obj)->clear_defined_at(target.index);
  }

  // done[a][k]: entry k of enabled[a] has fired.
  std::vector<std::vector<std::uint8_t>> done(assigns.size());
  for (std::size_t a = 0; a < assigns.size(); ++a) {
    done[a].assign(enabled[a].size(), 0);
  }

  std::int64_t rounds = 0;
  for (;;) {
    check_deadline(&stmt);
    bool progress = false;
    bool all_done = true;
    for (std::size_t a = 0; a < assigns.size(); ++a) {
      ckpt->note_statement();
      maybe_die();  // deterministic pre-equation kill point (tools/soak.sh)
      ++stmt_counter;
      const std::uint64_t stmt_id = stmt_counter;
      const auto n = static_cast<std::int64_t>(enabled[a].size());
      if (n == 0) continue;
      // Attribute each equation's rounds to its own assignment site.
      ProfScope prof_scope(*this, assigns[a].assign, "solve-eq",
                           assigns[a].assign->range);
      std::vector<std::vector<Write>> writes(static_cast<std::size_t>(n));
      std::vector<AccessStats> stats(static_cast<std::size_t>(n));
      std::vector<std::uint8_t> fired(static_cast<std::size_t>(n), 0);
      machine.pool().parallel_for(
          0, n,
          [&](std::int64_t b, std::int64_t e_) {
            for (std::int64_t k = b; k < e_; ++k) {
              if (done[a][static_cast<std::size_t>(k)] != 0) continue;
              const auto& lt = enabled[a][static_cast<std::size_t>(k)];
              EvalCtx ctx;
              ctx.vm = this;
              ctx.space = &space;
              ctx.lane = lt.lane;
              ctx.frame = frame;
              ctx.statement_frame = frame;
              ctx.writes = &writes[static_cast<std::size_t>(k)];
              ctx.stats = &stats[static_cast<std::size_t>(k)];
              ctx.solve_mode = true;
              ctx.solve_targets = &targets;
              const auto vp = static_cast<std::uint64_t>(space.vps[lt.lane]);
              ctx.rng.seed(base_seed ^ (stmt_id * 0x9e3779b97f4a7c15ull) ^
                           (vp + 0x5851f42d4c957f2dull));
              ctx.rng_seeded = true;
              ctx.undef = false;
              Value v = eval(*assigns[a].assign->rhs, ctx);
              if (ctx.undef) {
                writes[static_cast<std::size_t>(k)].clear();  // not ready
              } else {
                writes[static_cast<std::size_t>(k)].push_back(Write{
                    lt.target, v.coerce(assigns[a].assign->lhs->type.scalar),
                    assigns[a].assign});
                fired[static_cast<std::size_t>(k)] = 1;
              }
            }
          },
          /*min_grain=*/64);

      // Charge one *par-style round for this assignment.
      charge_expr(*assigns[a].assign, space.geom_size, /*frontend=*/false,
                  &space);
      AccessStats total;
      for (const auto& s : stats) total.merge(s);
      if (total.news > 0) {
        machine.charge_news(space.geom_size, total.news_max_hops);
      }
      if (total.router > 0) {
        machine.charge_router(space.geom_size, total.router);
      }

      commit_writes(writes);
      for (std::int64_t k = 0; k < n; ++k) {
        if (fired[static_cast<std::size_t>(k)] != 0) {
          done[a][static_cast<std::size_t>(k)] = 1;
          progress = true;
        }
        all_done = all_done && done[a][static_cast<std::size_t>(k)] != 0;
      }
    }
    machine.charge_global_or();
    if (all_done) return;
    if (!progress) {
      runtime_error(&stmt,
                    "solve could not order its assignments: the equation "
                    "set is circular or reads values that are never "
                    "assigned (not a proper set, paper §3.6)");
    }
    if (opts.max_iterations > 0 && ++rounds > opts.max_iterations) {
      runtime_error(&stmt,
                    support::format("solve exceeded the iteration limit "
                                    "(%lld); raise or disable it with "
                                    "--max-iterations",
                                    static_cast<long long>(
                                        opts.max_iterations)));
    }
  }
}

void Impl::exec_star_solve(const UcConstructStmt& stmt, LaneSpace& space,
                           Frame* frame, RecoveryScope& rscope) {
  // Arrays written anywhere in the body are the fixed-point state.
  std::vector<SolveAssign> assigns;
  for (const auto& block : stmt.blocks) {
    collect_assigns(*block.body, block.pred.get(), assigns);
  }
  if (stmt.others) collect_assigns(*stmt.others, nullptr, assigns);

  std::vector<ArrayObj*> targets;
  {
    std::unordered_set<ArrayObj*> seen;
    for (const auto& a : assigns) {
      const auto& sub =
          static_cast<const lang::SubscriptExpr&>(*a.assign->lhs);
      const auto& id = static_cast<const lang::IdentExpr&>(*sub.base);
      EvalCtx tmp;
      tmp.vm = this;
      tmp.space = &space;
      tmp.lane = 0;
      tmp.frame = frame;
      ArrayObj* arr = array_of(*id.symbol, tmp).get();
      if (seen.insert(arr).second) targets.push_back(arr);
    }
  }

  std::int64_t rounds = 0;
  for (;;) {
    check_deadline(&stmt);
    // Round top: like *par's sweep top, the fixed-point round carries no
    // loop state, so it is a valid redo point for checkpoint recovery.
    rscope.safe_point(&space, frame);
    // Save the previous state (the compiler-inserted temporaries the paper
    // mentions) — one vector copy instruction per target array.
    std::vector<std::vector<cm::Bits>> snapshot;
    snapshot.reserve(targets.size());
    for (ArrayObj* arr : targets) {
      machine.charge_vector_op(arr->size(), 1);
      snapshot.push_back(arr->field().raw());
    }

    run_blocks(stmt, space, frame);

    bool changed = false;
    for (std::size_t t = 0; t < targets.size(); ++t) {
      machine.charge_vector_op(targets[t]->size(), 1);  // compare
      changed = changed || targets[t]->field().raw() != snapshot[t];
    }
    machine.charge_global_or();
    if (!changed) return;
    if (opts.max_iterations > 0 && ++rounds > opts.max_iterations) {
      runtime_error(&stmt,
                    support::format("*solve exceeded the iteration limit "
                                    "(%lld): the computation may not reach "
                                    "a fixed point (raise or disable the "
                                    "limit with --max-iterations)",
                                    static_cast<long long>(
                                        opts.max_iterations)));
    }
  }
}

void Impl::apply_map_section(const lang::MapSectionStmt& section,
                             EvalCtx& ctx) {
  ProfScope prof_scope(*this, &section, "map", section.range);
  ++plan_epoch_;  // remapping invalidates cached communication plans
  machine.note_layout_change();  // ...and cached cross-shard exchanges
  for (const auto& m : section.mappings) {
    if (m.target_symbol == nullptr) continue;
    ArrayPtr target = array_of(*m.target_symbol, ctx);

    if (m.kind == lang::MapKind::kCopy) {
      std::int64_t copies = 1;
      for (const Symbol* s : m.index_set_syms) {
        copies *= static_cast<std::int64_t>(s->index_set->values.size());
      }
      target->set_replicated(copies);
      // Replication moves size × copies words through the router once.
      machine.charge_router(
          target->size() * copies,
          static_cast<std::uint64_t>(target->size() * copies));
      continue;
    }

    ArrayPtr source = m.source_symbol != nullptr
                          ? array_of(*m.source_symbol, ctx)
                          : target;
    // Evaluate both subscript tuples over the mapping's index sets using a
    // one-lane-per-tuple expansion of the front end.
    std::vector<std::int64_t> fe_active{0};
    auto space = expand(root, fe_active, m.index_set_syms);
    // Snapshot the source owners first: fold maps an array relative to its
    // own (pre-fold) placement.
    std::vector<cm::VpIndex> source_owner(
        static_cast<std::size_t>(source->size()));
    for (std::int64_t e = 0; e < source->size(); ++e) {
      source_owner[static_cast<std::size_t>(e)] = source->owner(e);
    }

    for (std::int64_t lane = 0; lane < space->lane_count(); ++lane) {
      EvalCtx mctx;
      mctx.vm = this;
      mctx.space = space.get();
      mctx.lane = lane;
      mctx.frame = ctx.frame;
      mctx.statement_frame = ctx.frame;
      std::int64_t tgt_idx[8], src_idx[8];
      bool ok = true;
      for (std::size_t k = 0; k < m.target_subscripts.size() && k < 8; ++k) {
        tgt_idx[k] = eval(*m.target_subscripts[k], mctx).as_int();
      }
      for (std::size_t k = 0; k < m.source_subscripts.size() && k < 8; ++k) {
        src_idx[k] = eval(*m.source_subscripts[k], mctx).as_int();
      }
      auto tgt_flat =
          target->flatten(tgt_idx, m.target_subscripts.size());
      auto src_flat =
          source->flatten(src_idx, m.source_subscripts.size());
      ok = tgt_flat >= 0 && src_flat >= 0;
      if (!ok) continue;  // subscripts that fall outside are simply unmapped
      target->set_owner(tgt_flat,
                        source_owner[static_cast<std::size_t>(src_flat)]);
    }
    // Re-mapping physically relocates the array: one router sweep.
    machine.charge_router(target->size(),
                          static_cast<std::uint64_t>(target->size()));
  }
}

}  // namespace uc::vm::detail
