// Durable checkpoint serialization, atomic persistence and the resume
// scan (docs/ROBUSTNESS.md "Durable checkpoints & resume").
//
// File format, version 1.  Header (56 bytes, little-endian):
//
//   offset  size  field
//        0     8  magic "UCCKPT01"
//        8     4  format version (1)
//       12     8  program hash   (FNV-1a over source + compile flags)
//       20     8  options hash   (options_fingerprint)
//       28     8  capturing scope ordinal
//       36     8  generation number
//       44     8  payload size in bytes
//       52     4  payload CRC-32 (IEEE)
//
// followed by the payload (encode_payload below).  The directory itself is
// the manifest: generations are recovered by listing ckpt-NNNNNNNN.uck, so
// there is no separate index file that a crash could leave inconsistent.
#include "ucvm/durable.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/str.hpp"
#include "ucvm/interp_detail.hpp"

namespace uc::vm::detail {

namespace {

constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint64_t kMagic = [] {
  const char m[8] = {'U', 'C', 'C', 'K', 'P', 'T', '0', '1'};
  std::uint64_t v = 0;
  for (int k = 7; k >= 0; --k) {
    v = (v << 8) | static_cast<unsigned char>(m[k]);
  }
  return v;
}();
constexpr std::size_t kHeaderSize = 56;

// Validation failure of one snapshot file.  Caught by the resume scan,
// which logs the reason and falls back to the next-older generation.
struct SnapshotInvalid : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// ---------------------------------------------------------------------------
// Little-endian byte streams
// ---------------------------------------------------------------------------

struct ByteWriter {
  std::string buf;

  void bytes(const void* p, std::size_t n) {
    buf.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { buf.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int k = 0; k < 4; ++k) u8(static_cast<std::uint8_t>(v >> (8 * k)));
  }
  void u64(std::uint64_t v) {
    for (int k = 0; k < 8; ++k) u8(static_cast<std::uint8_t>(v >> (8 * k)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void value(const Value& v) {
    u8(v.is_float ? 1 : 0);
    i64(v.i);
    f64(v.f);
  }
};

struct ByteReader {
  const unsigned char* p = nullptr;
  std::size_t n = 0;
  std::size_t pos = 0;

  ByteReader(const void* data, std::size_t size)
      : p(static_cast<const unsigned char*>(data)), n(size) {}

  void need(std::size_t k) const {
    if (n - pos < k) {
      throw SnapshotInvalid("payload truncated mid-record");
    }
  }
  void bytes(void* out, std::size_t k) {
    need(k);
    std::memcpy(out, p + pos, k);
    pos += k;
  }
  std::uint8_t u8() {
    need(1);
    return p[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) v |= std::uint32_t{p[pos++]} << (8 * k);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) v |= std::uint64_t{p[pos++]} << (8 * k);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t k = u64();
    need(k);
    std::string s(reinterpret_cast<const char*>(p + pos),
                  static_cast<std::size_t>(k));
    pos += static_cast<std::size_t>(k);
    return s;
  }
  Value value() {
    Value v;
    v.is_float = u8() != 0;
    v.i = i64();
    v.f = f64();
    return v;
  }
  // Element count of a variable-length record: bounded by the remaining
  // bytes so a corrupt count cannot drive a multi-gigabyte reserve.
  std::uint64_t count(std::size_t min_elem_bytes) {
    const std::uint64_t c = u64();
    if (min_elem_bytes != 0 && c > (n - pos) / min_elem_bytes) {
      throw SnapshotInvalid("payload truncated mid-record");
    }
    return c;
  }
};

// ---------------------------------------------------------------------------
// Payload encode/decode
// ---------------------------------------------------------------------------

void encode_stats(ByteWriter& w, const cm::CostStats& s) {
  w.u64(s.cycles);
  w.u64(s.vector_ops);
  w.u64(s.news_ops);
  w.u64(s.router_ops);
  w.u64(s.router_messages);
  w.u64(s.reductions);
  w.u64(s.global_ors);
  w.u64(s.broadcasts);
  w.u64(s.frontend_ops);
  w.u64(s.faults);
  w.u64(s.retries);
  w.u64(s.rollbacks);
  w.u64(s.checkpoints);
  w.u64(s.plan_hits);
  w.u64(s.durable_checkpoints);
  w.u64(s.resumes);
}

cm::CostStats decode_stats(ByteReader& r) {
  cm::CostStats s;
  s.cycles = r.u64();
  s.vector_ops = r.u64();
  s.news_ops = r.u64();
  s.router_ops = r.u64();
  s.router_messages = r.u64();
  s.reductions = r.u64();
  s.global_ors = r.u64();
  s.broadcasts = r.u64();
  s.frontend_ops = r.u64();
  s.faults = r.u64();
  s.retries = r.u64();
  s.rollbacks = r.u64();
  s.checkpoints = r.u64();
  s.plan_hits = r.u64();
  s.durable_checkpoints = r.u64();
  s.resumes = r.u64();
  return s;
}

void encode_payload(const Impl& vm, const Checkpoint& c, ByteWriter& w) {
  // 1. Machine image.
  w.u64(c.machine.fields.size());
  for (const auto& f : c.machine.fields) {
    w.i64(f.slot);
    w.u64(f.data.size());
    w.bytes(f.data.data(), f.data.size() * sizeof(cm::Bits));
    w.u64(f.defined.size());
    w.bytes(f.defined.data(), f.defined.size());
  }
  w.u64(c.machine.rng_state);
  // 2. Epochs + fault schedule position.
  w.u64(vm.machine.layout_epoch());
  w.u64(vm.plan_epoch_);
  w.u64(vm.machine.fault_injector().rng_state());
  // 3. Cost stats (already include this capture's charge and this durable
  //    write's counter, so the snapshot is self-consistent).
  encode_stats(w, vm.machine.stats());
  // 4/5. Scalars.
  w.u64(c.global_scalars.size());
  for (const auto& [slot, v] : c.global_scalars) {
    w.u64(slot);
    w.value(v);
  }
  w.u64(c.frame_scalars.size());
  for (const auto& [slot, v] : c.frame_scalars) {
    w.u64(slot);
    w.value(v);
  }
  // 6. Lane-space chain, innermost first.
  w.u64(c.chain.size());
  for (const auto& level : c.chain) {
    w.i64(level.space->lane_count());
    w.u64(level.locals.size());
    for (const auto& [slot, vals] : level.locals) {
      w.i64(slot);
      w.u64(vals.size());
      for (const auto& v : vals) w.value(v);
    }
  }
  // 7. Output text — in full: the resumed process prints nothing during
  //    prefix re-execution would be wrong, so it replaces its (identical)
  //    prefix output wholesale with the captured text.
  w.str(vm.output.substr(0, c.output_size));
  // 8. Front-end counters.
  w.u64(c.stmt_counter);
  w.u64(c.fe_rng_state);
  // 9. Checkpoint cadence + replay budget.
  w.u64(vm.ckpt->statements());
  w.u64(vm.ckpt->last_capture());
  w.u64(vm.ckpt->replays());
  // 10. Communication-plan cache, annotation sites as stable node ids.
  w.u64(vm.plan_cache_.entries().size());
  for (const auto& [key, plan] : vm.plan_cache_.entries()) {
    w.u64(key);
    w.u64(plan.charges.size());
    for (const auto& ch : plan.charges) {
      w.u8(static_cast<std::uint8_t>(ch.kind));
      w.i64(ch.n);
      w.i64(ch.m);
    }
    w.u64(plan.annotations.size());
    for (const auto& a : plan.annotations) {
      w.u64(vm.node_id(a.site));
      w.u8(a.optimized ? 1 : 0);
    }
    w.u64(plan.hits);
  }
}

DecodedSnapshot decode_payload(ByteReader& r) {
  DecodedSnapshot s;
  const std::uint64_t n_fields = r.count(8);
  s.machine.fields.reserve(static_cast<std::size_t>(n_fields));
  for (std::uint64_t k = 0; k < n_fields; ++k) {
    cm::MachineImage::FieldImage f;
    f.slot = static_cast<std::int32_t>(r.i64());
    const std::uint64_t words = r.count(sizeof(cm::Bits));
    f.data.resize(static_cast<std::size_t>(words));
    r.bytes(f.data.data(), static_cast<std::size_t>(words) * sizeof(cm::Bits));
    const std::uint64_t flags = r.count(1);
    f.defined.resize(static_cast<std::size_t>(flags));
    r.bytes(f.defined.data(), static_cast<std::size_t>(flags));
    s.machine.fields.push_back(std::move(f));
  }
  s.machine.rng_state = r.u64();
  s.layout_epoch = r.u64();
  s.plan_epoch = r.u64();
  s.injector_rng = r.u64();
  s.stats = decode_stats(r);
  const std::uint64_t n_globals = r.count(25);
  for (std::uint64_t k = 0; k < n_globals; ++k) {
    const std::uint64_t slot = r.u64();
    s.global_scalars.emplace_back(slot, r.value());
  }
  const std::uint64_t n_frame = r.count(25);
  for (std::uint64_t k = 0; k < n_frame; ++k) {
    const std::uint64_t slot = r.u64();
    s.frame_scalars.emplace_back(slot, r.value());
  }
  const std::uint64_t n_levels = r.count(16);
  for (std::uint64_t k = 0; k < n_levels; ++k) {
    DecodedSnapshot::Level level;
    level.lanes = r.i64();
    const std::uint64_t n_locals = r.count(16);
    for (std::uint64_t j = 0; j < n_locals; ++j) {
      const auto slot = static_cast<std::int32_t>(r.i64());
      const std::uint64_t n_vals = r.count(17);
      std::vector<Value> vals;
      vals.reserve(static_cast<std::size_t>(n_vals));
      for (std::uint64_t v = 0; v < n_vals; ++v) vals.push_back(r.value());
      level.locals.emplace_back(slot, std::move(vals));
    }
    s.chain.push_back(std::move(level));
  }
  s.output = r.str();
  s.stmt_counter = r.u64();
  s.fe_rng_state = r.u64();
  s.ckpt_stmt_seq = r.u64();
  s.ckpt_last_capture = r.u64();
  s.ckpt_replays = r.u64();
  const std::uint64_t n_plans = r.count(32);
  for (std::uint64_t k = 0; k < n_plans; ++k) {
    DecodedSnapshot::PlanEntry e;
    e.key = r.u64();
    const std::uint64_t n_charges = r.count(17);
    for (std::uint64_t j = 0; j < n_charges; ++j) {
      cm::PlanCharge ch;
      ch.kind = static_cast<cm::PlanCharge::Kind>(r.u8());
      ch.n = r.i64();
      ch.m = r.i64();
      e.charges.push_back(ch);
    }
    const std::uint64_t n_annots = r.count(9);
    for (std::uint64_t j = 0; j < n_annots; ++j) {
      const std::uint64_t id = r.u64();
      e.annotations.emplace_back(id, r.u8());
    }
    e.hits = r.u64();
    s.plans.push_back(std::move(e));
  }
  if (r.pos != r.n) {
    throw SnapshotInvalid("payload has trailing bytes past the last record");
  }
  return s;
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotInvalid("cannot open file");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) throw SnapshotInvalid("read error");
  return bytes;
}

// Temp file + rename: after this returns the complete new file is in
// place under its final name, or (on a crash mid-call) the previous
// directory contents are intact.  A leftover .tmp is ignored by the
// generation scan.  Deliberately no fsync — durability is batched at
// rotation time (sync_file below), so the per-capture cost is one write
// and one rename; a crash before the next rotation can tear this file,
// which the CRC detects and the resume scan skips.
void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  auto fail = [&](const char* what) {
    throw support::UcRuntimeError(
        support::format("checkpoint-dir: cannot %s '%s': %s", what,
                        tmp.c_str(), std::strerror(errno)));
  };
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("create");
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("write");
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) fail("commit");
}

// Makes an already-renamed generation durable: file data first, then the
// directory entry.  Best-effort (like the directory fsync always was) —
// an fsync failure degrades durability, not correctness, because the
// resume scan CRC-validates every generation anyway.
void sync_file(const std::string& dir, const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// DurableCheckpoints
// ---------------------------------------------------------------------------

std::uint64_t DurableCheckpoints::options_fingerprint(const Impl& vm) {
  using support::fnv1a_u64;
  const auto& o = vm.opts;
  const auto& mo = vm.machine.options();
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto fold = [&h](std::uint64_t v) { h = fnv1a_u64(v, h); };
  auto fold_f = [&fold](double v) { fold(std::bit_cast<std::uint64_t>(v)); };
  fold(static_cast<std::uint64_t>(o.engine));
  fold((o.fuse ? 1u : 0u) | (o.common_subexpression_elimination ? 2u : 0u) |
       (o.processor_optimization ? 4u : 0u) | (o.apply_mappings ? 8u : 0u));
  fold(static_cast<std::uint64_t>(o.max_iterations));
  fold(o.checkpoint_every);
  fold(o.max_replays);
  fold(mo.seed);
  fold(mo.max_field_bytes);
  fold(mo.cost.physical_processors);
  fold_f(mo.cost.clock_hz);
  fold(mo.cost.issue_overhead);
  fold(mo.cost.alu_op);
  fold(mo.cost.mem_op);
  fold(mo.cost.news_op);
  fold(mo.cost.router_op);
  fold(mo.cost.scan_step);
  fold(mo.cost.global_or_op);
  fold(mo.cost.broadcast_op);
  fold(mo.cost.frontend_op);
  fold(mo.cost.plan_issue_overhead);
  fold_f(mo.faults.router_p);
  fold_f(mo.faults.news_p);
  fold_f(mo.faults.reduce_p);
  fold_f(mo.faults.memory_p);
  fold(mo.faults.seed);
  fold(mo.faults.max_retries);
  fold(mo.faults.backoff_cycles);
  fold(mo.faults.detect_cycles);
  return h;
}

void DurableCheckpoints::log(const std::string& msg) const {
  if (vm_.opts.log) vm_.opts.log(msg);
}

std::string DurableCheckpoints::generation_path(std::uint64_t gen) const {
  return dir_ + support::format("/ckpt-%08llu.uck",
                                static_cast<unsigned long long>(gen));
}

std::vector<std::uint64_t> DurableCheckpoints::list_generations() const {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 5 + 8 + 4 || name.rfind("ckpt-", 0) != 0 ||
        name.substr(13) != ".uck") {
      continue;
    }
    std::uint64_t gen = 0;
    bool digits = true;
    for (std::size_t k = 5; k < 13; ++k) {
      if (name[k] < '0' || name[k] > '9') {
        digits = false;
        break;
      }
      gen = gen * 10 + static_cast<std::uint64_t>(name[k] - '0');
    }
    if (digits) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

DurableCheckpoints::DurableCheckpoints(Impl& vm)
    : vm_(vm),
      dir_(vm.opts.checkpoint_dir),
      keep_(std::max<std::uint64_t>(vm.opts.checkpoint_keep, 1)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw support::UcRuntimeError("checkpoint-dir: cannot create '" + dir_ +
                                  "': " + ec.message());
  }
  const auto gens = list_generations();
  next_generation_ = gens.empty() ? 1 : gens.back() + 1;
  if (!vm_.opts.resume) {
    // A fresh (non-resume) run owns the directory: stale generations from
    // an earlier run would otherwise be offered to a later --resume as if
    // they belonged to this history.
    for (const auto g : gens) std::filesystem::remove(generation_path(g), ec);
    next_generation_ = 1;
    return;
  }
  // Newest-first scan, falling back generation by generation past anything
  // torn or corrupt.  Any intact generation yields the identical final
  // run: restore is a forward jump on a deterministic prefix, so only the
  // amount of re-executed work differs.
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const std::string path = generation_path(*it);
    try {
      const std::string bytes = read_file_bytes(path);
      if (bytes.size() < kHeaderSize) {
        throw SnapshotInvalid("truncated header (torn write)");
      }
      ByteReader head(bytes.data(), kHeaderSize);
      if (head.u64() != kMagic) {
        throw SnapshotInvalid("not a UC checkpoint (bad magic)");
      }
      const std::uint32_t version = head.u32();
      if (version != kFormatVersion) {
        throw SnapshotInvalid(
            support::format("format version %u, expected %u", version,
                            kFormatVersion));
      }
      if (head.u64() != vm_.opts.program_hash) {
        throw SnapshotInvalid(
            "written by a different program (source hash mismatch)");
      }
      if (head.u64() != options_fingerprint(vm_)) {
        throw SnapshotInvalid("written under different execution options");
      }
      const std::uint64_t ordinal = head.u64();
      (void)head.u64();  // generation (authoritative copy is the filename)
      const std::uint64_t payload_size = head.u64();
      const std::uint32_t payload_crc = head.u32();
      if (bytes.size() - kHeaderSize != payload_size) {
        throw SnapshotInvalid("truncated payload (torn write)");
      }
      if (support::crc32(bytes.data() + kHeaderSize, payload_size) !=
          payload_crc) {
        throw SnapshotInvalid("payload checksum mismatch (corrupt or torn "
                              "write)");
      }
      ByteReader body(bytes.data() + kHeaderSize, payload_size);
      DecodedSnapshot snap = decode_payload(body);
      snap.scope_ordinal = ordinal;
      snap.generation = *it;
      log(support::format("--resume: restoring generation %llu (scope "
                          "ordinal %llu) from %s",
                          static_cast<unsigned long long>(*it),
                          static_cast<unsigned long long>(ordinal),
                          path.c_str()));
      pending_ = std::move(snap);
      return;
    } catch (const SnapshotInvalid& e) {
      log("checkpoint-dir: skipping " + path + ": " + e.what());
    }
  }
  log("--resume: no intact checkpoint found in '" + dir_ +
      "'; running from scratch");
}

void DurableCheckpoints::write(const Checkpoint& c, std::uint64_t ordinal) {
  // Counted before encoding so the persisted stats already include this
  // write — a resumed run's durable_checkpoints then matches the
  // uninterrupted run's at every point.
  vm_.machine.note_durable_checkpoint();
  const std::uint64_t gen = next_generation_++;
  ByteWriter payload;
  encode_payload(vm_, c, payload);
  ByteWriter out;
  out.u64(kMagic);
  out.u32(kFormatVersion);
  out.u64(vm_.opts.program_hash);
  out.u64(options_fingerprint(vm_));
  out.u64(ordinal);
  out.u64(gen);
  out.u64(payload.buf.size());
  out.u32(support::crc32(payload.buf.data(), payload.buf.size()));
  out.buf += payload.buf;
  write_file_atomic(generation_path(gen), out.buf);
  wrote_any_ = true;
  // Batched rotation: let generations accumulate to twice the keep budget
  // and only then delete the surplus, so the fsync in trim() is amortized
  // over ~keep captures instead of being paid on every one.  The
  // destructor performs a final trim down to exactly `keep_`.
  auto gens = list_generations();
  if (gens.size() > 2 * keep_) trim(gens);
}

void DurableCheckpoints::trim(std::vector<std::uint64_t>& gens) {
  if (gens.size() <= keep_) return;
  // Deletions happen only after the newest generation is durably on disk,
  // so a crash anywhere in this sequence never reduces the set of intact
  // fallbacks below one.
  sync_file(dir_, generation_path(gens.back()));
  std::error_code ec;
  while (gens.size() > keep_) {
    std::filesystem::remove(generation_path(gens.front()), ec);
    gens.erase(gens.begin());
  }
}

DurableCheckpoints::~DurableCheckpoints() {
  if (!wrote_any_) return;
  auto gens = list_generations();
  trim(gens);
}

bool DurableCheckpoints::apply_resume(LaneSpace* space, Frame* frame) {
  DecodedSnapshot snap = std::move(*pending_);
  pending_.reset();  // one shot: success or scratch, never retried
  // Cheap shape pre-validation before mutating anything, so a mismatch
  // (identity-hash collision, or a nondeterministic program) degrades to a
  // from-scratch run instead of corrupting live state.
  std::size_t depth = 0;
  for (const LaneSpace* s = space; s != nullptr; s = s->parent) ++depth;
  if (depth != snap.chain.size()) {
    log(support::format("--resume: snapshot lane-space depth %llu does not "
                        "match the re-executed program (%llu); running from "
                        "scratch",
                        static_cast<unsigned long long>(snap.chain.size()),
                        static_cast<unsigned long long>(depth)));
    return false;
  }
  std::size_t k = 0;
  for (const LaneSpace* s = space; s != nullptr; s = s->parent, ++k) {
    if (s->lane_count() != snap.chain[k].lanes) {
      log("--resume: snapshot lane counts do not match the re-executed "
          "program; running from scratch");
      return false;
    }
  }
  for (const auto& [slot, v] : snap.global_scalars) {
    (void)v;
    if (slot >= vm_.globals.size()) {
      log("--resume: snapshot global slots do not match the re-executed "
          "program; running from scratch");
      return false;
    }
  }
  for (const auto& [slot, v] : snap.frame_scalars) {
    (void)v;
    if (frame == nullptr || slot >= frame->slots.size()) {
      log("--resume: snapshot frame slots do not match the re-executed "
          "program; running from scratch");
      return false;
    }
  }
  try {
    vm_.machine.restore_state(snap.machine);
  } catch (const support::ApiError& e) {
    // Field layout diverged under matching identity hashes: live state may
    // be partially overwritten, so aborting beats silently running on.
    throw support::UcRuntimeError(
        std::string("--resume: snapshot no longer matches the machine "
                    "state rebuilt by prefix re-execution: ") +
        e.what());
  }
  for (const auto& [slot, v] : snap.global_scalars) {
    vm_.globals[slot].scalar = v;
  }
  for (const auto& [slot, v] : snap.frame_scalars) {
    frame->slots[slot].scalar = v;
  }
  k = 0;
  for (LaneSpace* s = space; s != nullptr; s = s->parent, ++k) {
    s->locals.clear();
    for (auto& [slot, vals] : snap.chain[k].locals) {
      s->locals[slot] = std::move(vals);
    }
  }
  vm_.output = std::move(snap.output);
  vm_.stmt_counter = snap.stmt_counter;
  vm_.fe_rng.seed(snap.fe_rng_state);
  vm_.machine.set_stats(snap.stats);
  // Epochs are SET (not bumped): the prefix evolved them identically to
  // the original run, and restored plan-cache entries are keyed under the
  // captured values.
  vm_.machine.set_layout_epoch(snap.layout_epoch);
  vm_.machine.fault_injector().set_rng_state(snap.injector_rng);
  vm_.plan_epoch_ = snap.plan_epoch;
  vm_.plan_cache_.clear();
  for (auto& pe : snap.plans) {
    cm::Plan plan;
    plan.charges = std::move(pe.charges);
    plan.hits = pe.hits;
    bool sites_ok = true;
    for (const auto& [id, optimized] : pe.annotations) {
      const void* site = vm_.node_by_id(id);
      if (site == nullptr) {
        sites_ok = false;
        break;
      }
      plan.annotations.push_back({site, optimized != 0});
    }
    // An unresolvable annotation site drops just that entry: the statement
    // re-records its plan on next execution, costing cycles-neutral extra
    // bookkeeping but never a wrong annotation.
    if (sites_ok) {
      vm_.plan_cache_.insert(pe.key, std::move(plan));
    } else {
      log(support::format("--resume: dropping one cached plan with an "
                          "unresolvable annotation site (key %llu)",
                          static_cast<unsigned long long>(pe.key)));
    }
  }
  vm_.ckpt->restore_durable_counters(
      snap.ckpt_stmt_seq, snap.ckpt_last_capture,
      vm_.opts.fresh_replay_budget ? 0 : snap.ckpt_replays);
  vm_.machine.note_resume();
  return true;
}

}  // namespace uc::vm::detail
