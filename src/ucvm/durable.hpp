// Durable on-disk checkpoints with crash recovery
// (docs/ROBUSTNESS.md "Durable checkpoints & resume").
//
// The in-memory checkpoint layer (checkpoint.hpp) survives transient
// machine faults; it does not survive the *process*.  This layer persists
// every in-memory capture as a versioned, CRC-checksummed snapshot file in
// ExecOptions::checkpoint_dir, rotating the last `checkpoint_keep`
// generations.  Every generation is written atomically (temp file +
// rename) so a kill mid-write can tear at most the generation being
// written — never a previously completed one.  fsyncs are batched per
// rotation rather than paid per capture: generations accumulate to twice
// `checkpoint_keep` before old ones are deleted, and the newest file (plus
// the directory) is fsynced once immediately before each deletion batch,
// so the set of durably intact fallbacks never shrinks.  Captures between
// rotations ride the page cache — they survive a process kill always, and
// an OS crash merely falls back to the last fsynced (or otherwise intact)
// generation, which resumes to the identical final state.
//
// Resume model: a snapshot cannot name live pointers, so --resume does not
// deserialize into a cold VM.  Instead the fresh process re-executes the
// run prefix deterministically (same program, same seeds, same fault
// schedule) until it constructs the recovery scope whose construction
// ordinal the snapshot recorded; that scope's first safe point applies the
// snapshot — machine image, scalars, lane locals, output text, RNG and
// cadence counters, cost stats, plan cache — instead of capturing, and the
// run continues exactly where the dead process left off.  Final output and
// modeled cycles are bit-identical to an uninterrupted run.
//
// Fallback: generations are validated newest-first (magic, version,
// program/options identity hashes, payload CRC); a corrupt or torn file is
// skipped with a diagnostic and the next-older one is tried.  Any intact
// generation yields the identical final state, because restore is a pure
// forward jump on a deterministic prefix.  No intact generation = the run
// executes from scratch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cm/cost.hpp"
#include "cm/machine.hpp"
#include "cm/plan_cache.hpp"
#include "ucvm/value.hpp"

namespace uc::vm::detail {

struct Impl;
struct Frame;
struct LaneSpace;
struct Checkpoint;

// A fully decoded snapshot, pointer-free: chain levels are keyed by depth
// and validated against the live lane-space chain at apply time.
struct DecodedSnapshot {
  cm::MachineImage machine;
  std::uint64_t layout_epoch = 0;
  std::uint64_t plan_epoch = 0;
  std::uint64_t injector_rng = 0;
  cm::CostStats stats;
  std::vector<std::pair<std::uint64_t, Value>> global_scalars;
  std::vector<std::pair<std::uint64_t, Value>> frame_scalars;
  struct Level {
    std::int64_t lanes = 0;  // validation only
    std::vector<std::pair<std::int32_t, std::vector<Value>>> locals;
  };
  std::vector<Level> chain;  // innermost first, like Checkpoint::chain
  std::string output;        // full text: a fresh process has no prefix
  std::uint64_t stmt_counter = 0;
  std::uint64_t fe_rng_state = 0;
  std::uint64_t ckpt_stmt_seq = 0;
  std::uint64_t ckpt_last_capture = 0;
  std::uint64_t ckpt_replays = 0;
  struct PlanEntry {
    std::uint64_t key = 0;
    std::vector<cm::PlanCharge> charges;
    // Annotation sites as stable AST node ids (Impl::node_id), resolved
    // back to pointers at apply time.
    std::vector<std::pair<std::uint64_t, std::uint8_t>> annotations;
    std::uint64_t hits = 0;
  };
  std::vector<PlanEntry> plans;
  std::uint64_t scope_ordinal = 0;
  std::uint64_t generation = 0;
};

class DurableCheckpoints {
 public:
  // Prepares the directory.  With ExecOptions::resume set, scans existing
  // generations newest-first, decodes the first intact one as the pending
  // resume, and logs a sourced diagnostic for every skipped file; without
  // it, deletes stale snapshot files (they belong to a finished or
  // unrelated run).
  explicit DurableCheckpoints(Impl& vm);

  // Final rotation: trims the directory down to `checkpoint_keep`
  // generations (fsyncing the newest first) so a completed run leaves
  // exactly the configured fallback set behind.  A killed process skips
  // this; the resume scan simply sees a few extra generations.
  ~DurableCheckpoints();

  bool resume_pending() const { return pending_.has_value(); }
  std::uint64_t resume_ordinal() const { return pending_->scope_ordinal; }

  // Persists one captured checkpoint as the next generation (atomic write,
  // rotation).  Called from RecoveryScope::safe_point at every in-memory
  // capture once no resume is pending.
  void write(const Checkpoint& c, std::uint64_t ordinal);

  // Applies (and consumes) the pending snapshot into the live VM at the
  // matching scope.  False = the decoded chain shape does not match the
  // re-executed state (identity hashes collided, or the program is
  // nondeterministic); the run then continues from scratch.  Throws
  // UcRuntimeError if the machine image itself no longer fits — state is
  // unusable at that point, so continuing silently would be wrong.
  bool apply_resume(LaneSpace* space, Frame* frame);

  // Fingerprint of every option that steers execution semantics (engine,
  // optimisation toggles, seeds, cost model, fault spec).  Host-only knobs
  // (shards, host threads, timeout, tracing) are excluded: they never
  // change outputs or modeled cycles, so a snapshot stays resumable across
  // them.
  static std::uint64_t options_fingerprint(const Impl& vm);

 private:
  void log(const std::string& msg) const;
  std::string generation_path(std::uint64_t gen) const;
  // Sorted ascending list of the generation numbers present on disk.
  std::vector<std::uint64_t> list_generations() const;
  // Deletes all but the newest `keep_` generations, after making the
  // newest one durable (file fsync + directory fsync) so the deletions
  // never reduce the set of durably intact fallbacks.
  void trim(std::vector<std::uint64_t>& gens);

  Impl& vm_;
  std::string dir_;
  std::uint64_t keep_ = 1;  // checkpoint_keep, clamped to >= 1
  std::uint64_t next_generation_ = 1;
  bool wrote_any_ = false;
  std::optional<DecodedSnapshot> pending_;
};

}  // namespace uc::vm::detail
