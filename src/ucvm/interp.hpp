// The UC virtual machine: a lane-based synchronous interpreter that
// executes an analysed Program against the simulated Connection Machine.
//
// Execution model (paper §3, DESIGN.md §6):
//   * The front end runs scalar code; a par/solve/oneof construct expands
//     the current lane set by the Cartesian product of its index sets and
//     executes each statement of its body synchronously across lanes
//     (all reads, then a conflict-checked commit of all writes).
//   * seq binds its element to successive values without expanding the VP
//     set; starred constructs iterate with a global-OR test per round.
//   * Arrays live in CM fields; a per-array mapping table assigns each
//     element an owning VP.  An access from lane VP v to owner VP w is
//     classified local / NEWS / router and charged accordingly.
//   * Host-side lane loops run on the machine's thread pool; cost charging
//     and commits happen once per statement on the issuing thread, so
//     results and charges are deterministic for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cm/machine.hpp"
#include "support/rng.hpp"
#include "uclang/frontend.hpp"
#include "ucvm/arrays.hpp"
#include "ucvm/value.hpp"

namespace uc::prof {
class Profiler;
}

namespace uc::vm {

namespace detail {
struct Impl;
}

// How eval_lanes executes a synchronous statement over its lanes:
//   * kWalk      — re-walk the sema'd expression tree per lane (reference).
//   * kBytecode  — compile the statement once into lane-kernel bytecode and
//     run a switch-dispatch loop per lane (docs/VM.md).  Statements the
//     lowering does not cover transparently fall back to the walk, so the
//     two engines are observationally identical.
//   * kNative    — lower the bytecode further to C++ source, compile it with
//     the host toolchain into a cached shared object, and dispatch lanes
//     through the loaded entry point (docs/VM.md "Native tier").  Statements
//     the emitter does not cover — or hosts without a working toolchain —
//     transparently fall back to the bytecode tier.
enum class ExecEngine : std::uint8_t { kWalk, kBytecode, kNative };

struct ExecOptions {
  // Processor optimisation (paper §4): partitionable reductions are charged
  // at the reduced VP allocation (send-with-add) instead of lanes × set.
  bool processor_optimization = true;
  // Code optimisation (paper §4, "common sub-expression detection"):
  // repeated pure subexpressions within one statement are computed once.
  bool common_subexpression_elimination = true;
  // Apply map sections (communication optimisation).  Off = compiler
  // default mappings only; map sections are parsed but ignored.
  bool apply_mappings = true;
  // Safety valve for *par / *oneof / *solve: abort after this many
  // iterations (0 = unlimited).
  std::int64_t max_iterations = 1u << 20;
  // Checkpoint/rollback (docs/ROBUSTNESS.md): capture a recovery snapshot
  // at construct safe points at least every N synchronous statements
  // (0 = checkpointing off; unrecovered transient faults are then fatal).
  std::uint64_t checkpoint_every = 0;
  // Total checkpoint replays allowed per run before a transient fault is
  // escalated to a fatal UcRuntimeError (guards against fault rates so
  // high that replays never make progress).
  std::uint64_t max_replays = 64;
  // Wall-clock watchdog: abort with a UcRuntimeError once execution has
  // taken this many host seconds (0 = no timeout).  Checked at statement
  // and loop boundaries, so runaway programs stop near — not exactly at —
  // the deadline.
  double timeout_seconds = 0.0;
  // Lane execution engine (identical results either way; kBytecode is the
  // fast path, kWalk the reference interpreter).
  ExecEngine engine = ExecEngine::kBytecode;
  // Statement fusion (docs/VM.md "Fusion"; bytecode engine only, kWalk
  // ignores it).  Consecutive provably-independent elementwise statements
  // in a par body compile into one fused kernel (single front-end issue,
  // single pool dispatch, registers carrying values between statements),
  // with cross-statement CSE + dead-temporary elimination and cached
  // communication plans.  Program outputs are bit-identical with fusion on
  // or off; modeled cycles with fusion on are never higher.
  bool fuse = true;
  // Per-site execution profiler (docs/PROFILING.md).  When non-null, both
  // engines attribute CostStats deltas and host wall time to source-site
  // scopes on this profiler.  Profiling never changes program output or
  // modeled cycles; null (the default) adds no overhead.
  prof::Profiler* profiler = nullptr;
  // Durable checkpoints (docs/ROBUSTNESS.md "Durable checkpoints &
  // resume").  When non-empty, every in-memory capture is also persisted
  // to this directory as a rotating generation of checksummed snapshot
  // files written atomically, so a killed process can continue with
  // `resume`.  Requires checkpoint_every > 0 (the durable path piggybacks
  // on in-memory captures; ApiError otherwise).  Cycle-neutral: no extra
  // capture cadence, and disk writes charge nothing.
  std::string checkpoint_dir;
  // Snapshot generations kept on disk; older ones are deleted only after
  // a newer one is durably in place.  Clamped to at least 1.
  std::uint64_t checkpoint_keep = 3;
  // Restore the newest intact snapshot from checkpoint_dir.  The run
  // re-executes its prefix deterministically, then jumps to the captured
  // state at the matching recovery scope; corrupt or torn generations are
  // skipped (with a `log` diagnostic) in favour of older ones, and with no
  // intact generation the run simply executes from scratch.
  bool resume = false;
  // Identity of the compiled program (hash of source + compile flags),
  // stamped into snapshot headers so a resume never restores a different
  // program's state.  0 = unchecked (single-process library use).
  std::uint64_t program_hash = 0;
  // On resume, reset the replay budget to zero used instead of restoring
  // the captured count.  The escalated-fault retry path sets this so a
  // budget-exhausted run restored from disk does not re-escalate on its
  // first post-resume fault.
  bool fresh_replay_budget = false;
  // Crash-testing hook (tools/soak.sh): raise SIGKILL before synchronous
  // statement N (1-based) executes; 0 = never.  Deterministic, so a kill
  // point found once reproduces exactly.
  std::uint64_t die_at_statement = 0;
  // Diagnostic sink for the durable-checkpoint layer (skipped-generation
  // and resume notes).  Null = silent.
  std::function<void(const std::string&)> log;
  // Native tier (engine == kNative; docs/VM.md "Native tier"): directory
  // holding the content-hashed compiled .so cache.  Empty: the
  // UC_NATIVE_CACHE_DIR environment variable, else a per-user directory
  // under the system temp path.
  std::string native_cache_dir;
  // Compiler driver used to build emitted lane kernels.  Empty: the
  // UC_NATIVE_CC environment variable, else "c++".
  std::string native_cc;
};

// Everything a run produces: program output, final machine stats, and a
// window onto global variables for tests/benches.  Array contents are
// materialised snapshots, so a RunResult stays valid after the machine
// that produced it is gone.
class Interp;

struct ArraySnapshot {
  std::vector<std::int64_t> dims;
  std::vector<Value> data;  // row-major
};

class RunResult {
 public:
  const std::string& output() const { return output_; }
  const cm::CostStats& stats() const { return stats_; }

  // Read a global scalar / array element by name (throws ApiError if the
  // name is unknown or the shape mismatches).
  Value global_scalar(const std::string& name) const;
  Value global_element(const std::string& name,
                       std::initializer_list<std::int64_t> indices) const;
  std::vector<Value> global_array(const std::string& name) const;

  // Native-tier introspection (all zero unless engine == kNative): how many
  // kernels were compiled this run vs loaded from the on-disk cache, how
  // many chunk dispatches went through native entry points, and how many
  // statements fell back to the bytecode tier (emitter declined, toolchain
  // missing, or a per-dispatch assumption failed).
  std::uint64_t native_kernels_compiled() const {
    return native_kernels_compiled_;
  }
  std::uint64_t native_cache_hits() const { return native_cache_hits_; }
  std::uint64_t native_dispatches() const { return native_dispatches_; }
  std::uint64_t native_fallbacks() const { return native_fallbacks_; }

 private:
  friend class Interp;
  friend struct detail::Impl;
  std::string output_;
  cm::CostStats stats_;
  std::unordered_map<std::string, Value> scalars_;
  std::unordered_map<std::string, ArraySnapshot> arrays_;
  std::uint64_t native_kernels_compiled_ = 0;
  std::uint64_t native_cache_hits_ = 0;
  std::uint64_t native_dispatches_ = 0;
  std::uint64_t native_fallbacks_ = 0;
};

class Interp {
 public:
  Interp(const lang::CompilationUnit& unit, cm::Machine& machine,
         ExecOptions options = {});

  // Executes main().  Throws UcRuntimeError on runtime failures
  // (conflicting parallel writes, subscripts out of range, solve cycles,
  // iteration-limit overruns).
  RunResult run();

 private:
  std::unique_ptr<detail::Impl> impl_;

 public:
  ~Interp();
};

// Convenience: compile and run a source string on a fresh machine.
RunResult run_uc(const std::string& source, cm::MachineOptions mopts = {},
                 ExecOptions eopts = {});

}  // namespace uc::vm
