#include "ucvm/arrays.hpp"

namespace uc::vm {

ArrayObj::ArrayObj(cm::Machine& machine, std::string name,
                   lang::ScalarKind scalar, std::vector<std::int64_t> dims)
    : machine_(machine),
      name_(std::move(name)),
      scalar_(scalar),
      dims_(std::move(dims)) {
  if (dims_.empty()) {
    throw support::ApiError("ArrayObj requires at least one dimension");
  }
  strides_.assign(dims_.size(), 1);
  for (std::size_t k = dims_.size(); k-- > 0;) {
    if (k + 1 < dims_.size()) strides_[k] = strides_[k + 1] * dims_[k + 1];
  }
  size_ = strides_[0] * dims_[0];
  geom_ = machine_.create_geometry(dims_);
  field_ = machine_.allocate_field(
      geom_, name_,
      is_float() ? cm::ElemType::kFloat : cm::ElemType::kInt);
  owner_.resize(static_cast<std::size_t>(size_));
  for (std::int64_t e = 0; e < size_; ++e) {
    owner_[static_cast<std::size_t>(e)] = e;  // compiler default mapping
  }
}

ArrayObj::~ArrayObj() {
  if (parent_) return;  // slices do not own the field
  try {
    machine_.free_field(field_);
  } catch (...) {
    // Machine outlived by array during teardown races are benign here.
  }
}

ArrayPtr ArrayObj::make_slice(const ArrayPtr& parent, std::int64_t offset,
                              std::vector<std::int64_t> dims) {
  if (parent == nullptr || dims.empty()) {
    throw support::ApiError("make_slice: bad arguments");
  }
  // shared_ptr with private ctor access via new.
  ArrayPtr slice(new ArrayObj(parent->machine_));
  slice->name_ = parent->name_ + "[slice]";
  slice->scalar_ = parent->scalar_;
  slice->dims_ = std::move(dims);
  slice->strides_.assign(slice->dims_.size(), 1);
  for (std::size_t k = slice->dims_.size(); k-- > 0;) {
    if (k + 1 < slice->dims_.size()) {
      slice->strides_[k] = slice->strides_[k + 1] * slice->dims_[k + 1];
    }
  }
  slice->size_ = slice->strides_[0] * slice->dims_[0];
  if (offset < 0 || offset + slice->size_ > parent->size()) {
    throw support::ApiError("make_slice: slice exceeds the parent array");
  }
  // Collapse nested slices: parent_ always names the owning root.
  slice->parent_ = parent->parent_ ? parent->parent_ : parent;
  slice->offset_ = parent->offset_ + offset;
  return slice;
}

std::int64_t ArrayObj::flatten(const std::int64_t* indices,
                               std::size_t count) const {
  if (count != dims_.size()) return -1;
  std::int64_t flat = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (indices[k] < 0 || indices[k] >= dims_[k]) return -1;
    flat += indices[k] * strides_[k];
  }
  return flat;
}

void ArrayObj::unflatten(std::int64_t flat, std::int64_t* out) const {
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    out[k] = flat / strides_[k];
    flat %= strides_[k];
  }
}

const std::int64_t* ArrayObj::coord_table() const {
  if (coord_table_.empty()) {
    const std::size_t rank = dims_.size();
    coord_table_.resize(static_cast<std::size_t>(size_) * rank);
    std::vector<std::int64_t> cur(rank, 0);
    for (std::int64_t e = 0; e < size_; ++e) {
      for (std::size_t r = 0; r < rank; ++r) {
        coord_table_[static_cast<std::size_t>(e) * rank + r] = cur[r];
      }
      for (std::size_t r = rank; r-- > 0;) {
        if (++cur[r] < dims_[r]) break;
        cur[r] = 0;
      }
    }
  }
  return coord_table_.data();
}

Value ArrayObj::load(std::int64_t flat) const {
  return Value::from_bits(field().get(offset_ + flat), is_float());
}

void ArrayObj::store(std::int64_t flat, Value v) {
  field().set(offset_ + flat, v.coerce(scalar_).to_bits());
}

bool ArrayObj::is_defined(std::int64_t flat) const {
  return field().is_defined(offset_ + flat);
}

void ArrayObj::clear_defined() {
  if (parent_) {
    for (std::int64_t e = 0; e < size_; ++e) clear_defined_at(e);
    return;
  }
  field().clear_defined();
}

void ArrayObj::clear_defined_at(std::int64_t flat) {
  field().clear_defined_at(offset_ + flat);
}

}  // namespace uc::vm
