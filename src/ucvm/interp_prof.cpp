// Profiling hooks of the VM (docs/PROFILING.md): lazy site interning per
// AST node and the RAII attribution scope both engines run under.  All
// hooks are called on the issuing thread only (the same contract as cost
// charging), so the profiler needs no synchronisation.
#include "support/str.hpp"
#include "ucvm/interp_detail.hpp"

namespace uc::vm::detail {

prof::SiteId Impl::prof_site(const void* key, const char* kind,
                             support::SourceRange range) {
  auto it = prof_sites_.find(key);
  if (it != prof_sites_.end()) return it->second;

  std::uint32_t line = 0, col = 0;
  std::string text;
  if (unit.file != nullptr && range.end.offset > range.begin.offset) {
    const auto lc = unit.file->line_col(range.begin);
    line = lc.line;
    col = lc.col;
    text = std::string(support::trim(unit.file->line_text(lc.line)));
    if (text.size() > 60) text = text.substr(0, 57) + "...";
  }
  const std::string file =
      unit.file != nullptr ? unit.file->name() : std::string("<source>");
  auto id = prof->intern(kind, file, line, col, range.begin.offset,
                         range.end.offset, std::move(text));
  prof_sites_.emplace(key, id);
  return id;
}

ProfScope::ProfScope(Impl& vm, const void* key, const char* kind,
                     support::SourceRange range) {
  if (vm.prof == nullptr) return;
  vm_ = &vm;
  vm.prof->enter(vm.prof_site(key, kind, range), vm.machine.stats(),
                 vm.machine.pool().total_chunks());
}

ProfScope::~ProfScope() {
  if (vm_ == nullptr) return;
  vm_->prof->exit(vm_->machine.stats(), vm_->machine.pool().total_chunks());
}

}  // namespace uc::vm::detail
