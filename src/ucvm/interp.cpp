// VM driver: run(), globals materialisation, scalar statement execution
// (front end + function bodies) and function calls.
#include "ucvm/interp.hpp"

#include <algorithm>
#include <csignal>

#include "support/error.hpp"
#include "support/str.hpp"
#include "ucvm/checkpoint.hpp"
#include "ucvm/durable.hpp"
#include "ucvm/interp_detail.hpp"
#include "ucvm/kernel/kernel.hpp"

namespace uc::vm {

using namespace detail;
using lang::ScalarKind;
using lang::StmtKind;
using lang::SymbolKind;

namespace detail {

std::optional<std::int64_t> LaneSpace::elem_value(const Symbol* elem,
                                                  std::int64_t lane) const {
  const LaneSpace* s = this;
  std::int64_t l = lane;
  while (s != nullptr) {
    // Innermost binding wins: scan this space's own elems (reverse, so a
    // duplicate binding in one space resolves to the later set).
    for (std::size_t k = s->elems.size(); k-- > 0;) {
      if (s->elems[k] == elem) {
        return s->elem_vals[static_cast<std::size_t>(l) * s->elems.size() + k];
      }
    }
    if (s->parent == nullptr) return std::nullopt;
    l = s->parent_lane[static_cast<std::size_t>(l)];
    s = s->parent;
  }
  return std::nullopt;
}

LaneSpace* LaneSpace::find_local(std::int32_t slot, std::int64_t lane,
                                 std::int64_t* out_lane) {
  LaneSpace* s = this;
  std::int64_t l = lane;
  while (s != nullptr) {
    if (s->locals.contains(slot)) {
      *out_lane = l;
      return s;
    }
    if (s->parent == nullptr) return nullptr;
    l = s->parent_lane[static_cast<std::size_t>(l)];
    s = s->parent;
  }
  return nullptr;
}

Impl::Impl(const lang::CompilationUnit& u, cm::Machine& m, ExecOptions o)
    : unit(u), machine(m), opts(o), prof(o.profiler) {
  base_seed = machine.options().seed;
  fe_rng.seed(base_seed);
  root.frontend = true;
  root.vps = {0};
  root.parent_lane = {0};
  root.geom_size = 1;
  ckpt = std::make_unique<CheckpointManager>(*this);
  build_node_ids();
  if (!opts.checkpoint_dir.empty()) {
    if (opts.checkpoint_every == 0) {
      throw support::ApiError(
          "ExecOptions: checkpoint_dir requires checkpoint_every > 0 "
          "(durable snapshots are persisted at in-memory captures, "
          "docs/ROBUSTNESS.md)");
    }
    durable = std::make_unique<DurableCheckpoints>(*this);
  }
}

void Impl::maybe_die() {
  if (opts.die_at_statement == 0) return;
  if (ckpt->statements() >= opts.die_at_statement) {
    // SIGKILL, not exit(): the point is to model a process that gets no
    // chance to flush or unwind — exactly what the durable layer's atomic
    // writes must survive (tools/soak.sh).
    std::raise(SIGKILL);
  }
}

void Impl::build_node_ids() {
  // Deterministic pre-order walk over the analysed program, numbering
  // every expression and resolved symbol.  The order depends only on the
  // AST, so two processes compiling the same source agree on every id.
  struct Walker {
    std::unordered_map<const void*, std::uint64_t>& ids;
    std::vector<const void*>& by_id;

    void reg(const void* node) {
      if (node == nullptr) return;
      auto [it, inserted] = ids.try_emplace(node, by_id.size());
      if (inserted) by_id.push_back(node);
    }
    void reg_symbol(const Symbol* s) {
      if (s == nullptr) return;
      reg(s);
      if (s->index_set != nullptr) reg(s->index_set->elem);
    }
    void walk(const Expr* e) {
      if (e == nullptr) return;
      reg(e);
      switch (e->kind) {
        case lang::ExprKind::kIntLit:
        case lang::ExprKind::kFloatLit:
        case lang::ExprKind::kStringLit:
          return;
        case lang::ExprKind::kIdent:
          reg_symbol(static_cast<const lang::IdentExpr*>(e)->symbol);
          return;
        case lang::ExprKind::kSubscript: {
          const auto* s = static_cast<const lang::SubscriptExpr*>(e);
          walk(s->base.get());
          for (const auto& i : s->indices) walk(i.get());
          return;
        }
        case lang::ExprKind::kCall: {
          const auto* c = static_cast<const lang::CallExpr*>(e);
          reg_symbol(c->symbol);
          for (const auto& a : c->args) walk(a.get());
          return;
        }
        case lang::ExprKind::kUnary:
          walk(static_cast<const lang::UnaryExpr*>(e)->operand.get());
          return;
        case lang::ExprKind::kBinary: {
          const auto* b = static_cast<const lang::BinaryExpr*>(e);
          walk(b->lhs.get());
          walk(b->rhs.get());
          return;
        }
        case lang::ExprKind::kAssign: {
          const auto* a = static_cast<const lang::AssignExpr*>(e);
          walk(a->lhs.get());
          walk(a->rhs.get());
          return;
        }
        case lang::ExprKind::kTernary: {
          const auto* t = static_cast<const lang::TernaryExpr*>(e);
          walk(t->cond.get());
          walk(t->then_expr.get());
          walk(t->else_expr.get());
          return;
        }
        case lang::ExprKind::kReduce: {
          const auto* r = static_cast<const lang::ReduceExpr*>(e);
          for (const Symbol* s : r->index_set_syms) reg_symbol(s);
          for (const auto& arm : r->arms) {
            walk(arm.pred.get());
            walk(arm.value.get());
          }
          walk(r->others.get());
          return;
        }
        case lang::ExprKind::kIncDec:
          walk(static_cast<const lang::IncDecExpr*>(e)->operand.get());
          return;
      }
    }
    void walk(const Stmt* s) {
      if (s == nullptr) return;
      switch (s->kind) {
        case StmtKind::kExpr:
          walk(static_cast<const lang::ExprStmt*>(s)->expr.get());
          return;
        case StmtKind::kCompound:
          for (const auto& c : static_cast<const lang::CompoundStmt*>(s)->body) {
            walk(c.get());
          }
          return;
        case StmtKind::kIf: {
          const auto* i = static_cast<const lang::IfStmt*>(s);
          walk(i->cond.get());
          walk(i->then_stmt.get());
          walk(i->else_stmt.get());
          return;
        }
        case StmtKind::kWhile: {
          const auto* w = static_cast<const lang::WhileStmt*>(s);
          walk(w->cond.get());
          walk(w->body.get());
          return;
        }
        case StmtKind::kFor: {
          const auto* f = static_cast<const lang::ForStmt*>(s);
          walk(f->init.get());
          walk(f->cond.get());
          walk(f->step.get());
          walk(f->body.get());
          return;
        }
        case StmtKind::kReturn:
          walk(static_cast<const lang::ReturnStmt*>(s)->value.get());
          return;
        case StmtKind::kBreak:
        case StmtKind::kContinue:
        case StmtKind::kEmpty:
          return;
        case StmtKind::kVarDecl:
          for (const auto& d :
               static_cast<const lang::VarDeclStmt*>(s)->declarators) {
            reg_symbol(d.symbol);
            for (const auto& dim : d.dim_exprs) walk(dim.get());
            walk(d.init.get());
          }
          return;
        case StmtKind::kIndexSetDecl:
          for (const auto& def :
               static_cast<const lang::IndexSetDeclStmt*>(s)->defs) {
            reg_symbol(def.symbol);
            walk(def.range_lo.get());
            walk(def.range_hi.get());
            for (const auto& l : def.listed) walk(l.get());
          }
          return;
        case StmtKind::kUcConstruct: {
          const auto* u = static_cast<const lang::UcConstructStmt*>(s);
          for (const Symbol* sym : u->index_set_syms) reg_symbol(sym);
          for (const auto& block : u->blocks) {
            walk(block.pred.get());
            walk(block.body.get());
          }
          walk(u->others.get());
          return;
        }
        case StmtKind::kMapSection:
          for (const auto& m :
               static_cast<const lang::MapSectionStmt*>(s)->mappings) {
            for (const Symbol* sym : m.index_set_syms) reg_symbol(sym);
            reg_symbol(m.target_symbol);
            reg_symbol(m.source_symbol);
            for (const auto& t : m.target_subscripts) walk(t.get());
            for (const auto& src : m.source_subscripts) walk(src.get());
          }
          return;
      }
    }
  };
  Walker w{node_ids_, node_by_id_};
  for (const auto& item : unit.program->items) {
    if (item.decl) w.walk(item.decl.get());
    if (item.func) {
      w.reg_symbol(item.func->symbol);
      for (const auto& p : item.func->params) w.reg_symbol(p.symbol);
      w.walk(item.func->body.get());
    }
  }
}

void Impl::check_deadline(const Stmt* where) {
  if (!has_deadline) return;
  if (std::chrono::steady_clock::now() < deadline) return;
  // Plain UcRuntimeError, never TransientFault: recovery must not catch a
  // timeout and retry its way past the watchdog.
  runtime_error(where,
                support::format("execution exceeded the %.3gs wall-clock "
                                "timeout (--timeout)",
                                opts.timeout_seconds));
}

void Impl::fatal_fault(const support::TransientFault& tf, const Stmt* where) {
  std::string msg = tf.what();
  if (opts.checkpoint_every == 0) {
    msg += "; checkpointing is off (enable recovery with --checkpoint-every)";
  } else {
    msg += support::format(
        "; replay budget exhausted after %llu checkpoint replays "
        "(--max-replays)",
        static_cast<unsigned long long>(ckpt->replays()));
  }
  // EscalatedFault (a UcRuntimeError) rather than runtime_error: a driver
  // holding durable on-disk snapshots can tell this apart from ordinary
  // failures and restore-and-retry instead of aborting.
  const std::string at = where != nullptr ? locate(where->range) + ": " : "";
  throw support::EscalatedFault(at + msg);
}

std::string Impl::locate(support::SourceRange range) const {
  auto lc = unit.file->line_col(range.begin);
  return unit.file->name() + ":" + std::to_string(lc.line) + ":" +
         std::to_string(lc.col);
}

void Impl::runtime_error(const Expr* where, const std::string& msg) {
  std::string at = where != nullptr ? locate(where->range) + ": " : "";
  throw support::UcRuntimeError(at + msg);
}

void Impl::runtime_error(const Stmt* where, const std::string& msg) {
  std::string at = where != nullptr ? locate(where->range) + ": " : "";
  throw support::UcRuntimeError(at + msg);
}

support::SplitMix64& Impl::lane_rng(EvalCtx& ctx) {
  if (ctx.is_frontend()) return fe_rng;
  if (!ctx.rng_seeded) {
    // Deterministic for any host thread count: depends only on the base
    // seed, the statement instance and the lane's VP.
    const auto vp = static_cast<std::uint64_t>(ctx.space->vps[ctx.lane]);
    ctx.rng.seed(base_seed ^ (stmt_counter * 0x9e3779b97f4a7c15ull) ^
                 (vp + 0x5851f42d4c957f2dull));
    ctx.rng_seeded = true;
  }
  return ctx.rng;
}

RunResult Impl::run() {
  // Stats accumulate on the machine (callers wanting a clean slate use a
  // fresh machine or reset_stats()); the result snapshots the total.
  // Root attribution scope: cost not claimed by a narrower site (global
  // initialisers, front-end control flow) lands on the program itself, so
  // per-site self cycles always sum to the aggregate.
  ProfScope prof_scope(*this, unit.program.get(), "program",
                       support::SourceRange{});
  if (opts.timeout_seconds > 0.0) {
    has_deadline = true;
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(opts.timeout_seconds));
  }
  // Materialise globals and run top-level declarations in program order.
  globals.assign(static_cast<std::size_t>(unit.sema.global_slots) + 1,
                 FrameSlot{});
  Frame dummy_frame;
  EvalCtx fe;
  fe.vm = this;
  fe.space = &root;
  fe.lane = 0;
  fe.frame = &dummy_frame;
  fe.statement_frame = &dummy_frame;

  for (const auto& item : unit.program->items) {
    if (!item.decl) continue;
    switch (item.decl->kind) {
      case StmtKind::kVarDecl: {
        const auto& decl = static_cast<const lang::VarDeclStmt&>(*item.decl);
        for (const auto& d : decl.declarators) {
          if (d.symbol == nullptr || d.symbol->slot < 0) continue;
          auto& slot = globals[static_cast<std::size_t>(d.symbol->slot)];
          if (d.symbol->type.is_array()) {
            slot.kind = FrameSlot::Kind::kArray;
            slot.array = std::make_shared<ArrayObj>(
                machine, d.name, d.symbol->type.scalar, d.symbol->type.dims);
            ++plan_epoch_;  // new layout: cached plans must not match
            machine.note_layout_change();
          } else {
            slot.kind = FrameSlot::Kind::kScalar;
            slot.scalar = Value::of_int(0).coerce(d.symbol->type.scalar);
            if (d.init) {
              slot.scalar = eval(*d.init, fe).coerce(d.symbol->type.scalar);
            }
          }
        }
        break;
      }
      case StmtKind::kIndexSetDecl:
        break;  // fully resolved by sema
      case StmtKind::kMapSection:
        if (opts.apply_mappings) {
          apply_map_section(static_cast<const lang::MapSectionStmt&>(
                                *item.decl),
                            fe);
        }
        break;
      default:
        break;
    }
  }

  const FuncDecl* main_fn = unit.program->find_function("main");
  if (main_fn == nullptr) {
    throw support::UcRuntimeError("program has no main() function");
  }
  if (!main_fn->params.empty()) {
    throw support::UcRuntimeError("main() must take no parameters");
  }
  // Outermost recovery net: snapshot after global initialisation so a
  // transient fault that unwinds past every construct can still replay
  // main() from the top instead of aborting the run.
  RecoveryScope top(*this, nullptr);
  top.safe_point(&root, &dummy_frame);
  for (;;) {
    try {
      call_function(*main_fn, {}, {}, {}, fe);
      break;
    } catch (const support::TransientFault& tf) {
      if (!top.try_recover()) fatal_fault(tf, nullptr);
    }
  }

  if (durable != nullptr && durable->resume_pending() && opts.log) {
    opts.log("--resume: the snapshot's recovery scope was never reached; "
             "the run completed from scratch");
  }

  RunResult result;
  result.output_ = output;
  result.stats_ = machine.stats();
  if (kernel_engine_ != nullptr) {
    if (const auto* nb = kernel_engine_->native_backend()) {
      result.native_kernels_compiled_ = nb->kernels_compiled();
      result.native_cache_hits_ = nb->cache_hits();
      result.native_dispatches_ = nb->dispatches();
    }
    result.native_fallbacks_ = kernel_engine_->native_fallbacks();
  }
  for (const Symbol* g : unit.sema.globals) {
    const auto& slot = globals[static_cast<std::size_t>(g->slot)];
    if (slot.kind == FrameSlot::Kind::kScalar) {
      result.scalars_[g->name] = slot.scalar;
    } else if (slot.kind == FrameSlot::Kind::kArray) {
      ArraySnapshot snap;
      snap.dims = slot.array->dims();
      snap.data.reserve(static_cast<std::size_t>(slot.array->size()));
      for (std::int64_t e = 0; e < slot.array->size(); ++e) {
        snap.data.push_back(slot.array->load(e));
      }
      result.arrays_[g->name] = std::move(snap);
    }
  }
  return result;
}

Value Impl::call_function(const FuncDecl& fn, std::vector<Value> scalar_args,
                          std::vector<ArrayPtr> array_args,
                          const std::vector<bool>& is_array_arg,
                          EvalCtx& caller) {
  if (!caller.is_frontend() && fn.has_parallel_construct) {
    runtime_error(static_cast<const Stmt*>(nullptr),
                  "function '" + fn.name +
                      "' contains a parallel construct and was called from "
                      "a parallel context");
  }
  Frame frame;
  frame.fn = &fn;
  frame.slots.assign(fn.frame_slots + 1, FrameSlot{});
  std::size_t si = 0, ai = 0;
  for (std::size_t k = 0; k < fn.params.size(); ++k) {
    const auto& p = fn.params[k];
    auto& slot = frame.slots[static_cast<std::size_t>(p.symbol->slot)];
    if (k < is_array_arg.size() && is_array_arg[k]) {
      slot.kind = FrameSlot::Kind::kArray;
      slot.array = array_args[ai++];
    } else {
      slot.kind = FrameSlot::Kind::kScalar;
      slot.scalar = scalar_args[si++].coerce(p.scalar);
    }
  }

  EvalCtx ctx = caller;       // same lane/space/stats/writes context
  ctx.frame = &frame;
  return_value = Value::of_int(0);
  if (fn.body != nullptr) {
    for (const auto& stmt : fn.body->body) {
      if (exec_scalar_stmt(*stmt, ctx) == Flow::kReturn) break;
    }
  }
  return return_value.coerce(fn.return_scalar == ScalarKind::kVoid
                                 ? ScalarKind::kInt
                                 : fn.return_scalar);
}

Flow Impl::exec_scalar_stmt(const Stmt& stmt, EvalCtx& ctx) {
  switch (stmt.kind) {
    case StmtKind::kEmpty:
      return Flow::kNormal;
    case StmtKind::kExpr: {
      const auto& s = static_cast<const lang::ExprStmt&>(stmt);
      if (ctx.is_frontend()) {
        // Scoped on the front end only: inside a parallel context this
        // path runs on pool workers, where profiling hooks must not fire
        // (charging happens via merged AccessStats on the issuing thread).
        ProfScope prof_scope(*this, &stmt, "fe", stmt.range);
        ++stmt_counter;
        charge_expr(*s.expr, 1, /*frontend=*/true);
        (void)eval(*s.expr, ctx);
        return Flow::kNormal;
      }
      (void)eval(*s.expr, ctx);
      return Flow::kNormal;
    }
    case StmtKind::kCompound: {
      const auto& s = static_cast<const lang::CompoundStmt&>(stmt);
      for (const auto& child : s.body) {
        Flow f = exec_scalar_stmt(*child, ctx);
        if (f != Flow::kNormal) return f;
      }
      return Flow::kNormal;
    }
    case StmtKind::kIf: {
      const auto& s = static_cast<const lang::IfStmt&>(stmt);
      if (ctx.is_frontend()) charge_expr(*s.cond, 1, true);
      if (eval(*s.cond, ctx).truthy()) {
        return exec_scalar_stmt(*s.then_stmt, ctx);
      }
      if (s.else_stmt) return exec_scalar_stmt(*s.else_stmt, ctx);
      return Flow::kNormal;
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const lang::WhileStmt&>(stmt);
      for (;;) {
        check_deadline(&stmt);
        if (ctx.is_frontend()) charge_expr(*s.cond, 1, true);
        if (!eval(*s.cond, ctx).truthy()) return Flow::kNormal;
        Flow f = exec_scalar_stmt(*s.body, ctx);
        if (f == Flow::kReturn) return f;
        if (f == Flow::kBreak) return Flow::kNormal;
      }
    }
    case StmtKind::kFor: {
      const auto& s = static_cast<const lang::ForStmt&>(stmt);
      if (s.init) {
        Flow f = exec_scalar_stmt(*s.init, ctx);
        if (f != Flow::kNormal) return f;
      }
      for (;;) {
        check_deadline(&stmt);
        if (s.cond) {
          if (ctx.is_frontend()) charge_expr(*s.cond, 1, true);
          if (!eval(*s.cond, ctx).truthy()) return Flow::kNormal;
        }
        Flow f = exec_scalar_stmt(*s.body, ctx);
        if (f == Flow::kReturn) return f;
        if (f == Flow::kBreak) return Flow::kNormal;
        if (s.step) {
          if (ctx.is_frontend()) charge_expr(*s.step, 1, true);
          (void)eval(*s.step, ctx);
        }
      }
    }
    case StmtKind::kReturn: {
      const auto& s = static_cast<const lang::ReturnStmt&>(stmt);
      return_value = s.value ? eval(*s.value, ctx) : Value::of_int(0);
      return Flow::kReturn;
    }
    case StmtKind::kBreak:
      return Flow::kBreak;
    case StmtKind::kContinue:
      return Flow::kContinue;
    case StmtKind::kVarDecl: {
      const auto& s = static_cast<const lang::VarDeclStmt&>(stmt);
      for (const auto& d : s.declarators) {
        if (d.symbol == nullptr || d.symbol->slot < 0 ||
            ctx.frame == nullptr) {
          continue;
        }
        auto& slot =
            ctx.frame->slots[static_cast<std::size_t>(d.symbol->slot)];
        if (d.symbol->type.is_array()) {
          slot.kind = FrameSlot::Kind::kArray;
          slot.array = std::make_shared<ArrayObj>(
              machine, d.name, d.symbol->type.scalar, d.symbol->type.dims);
          ++plan_epoch_;  // new layout: cached plans must not match
          machine.note_layout_change();
        } else {
          slot.kind = FrameSlot::Kind::kScalar;
          slot.scalar = Value::of_int(0).coerce(d.symbol->type.scalar);
          if (d.init) {
            slot.scalar = eval(*d.init, ctx).coerce(d.symbol->type.scalar);
          }
        }
      }
      return Flow::kNormal;
    }
    case StmtKind::kIndexSetDecl:
      return Flow::kNormal;  // resolved at compile time
    case StmtKind::kMapSection:
      if (!ctx.is_frontend()) {
        runtime_error(&stmt, "map sections cannot run in a parallel context");
      }
      if (opts.apply_mappings) {
        apply_map_section(static_cast<const lang::MapSectionStmt&>(stmt),
                          ctx);
      }
      return Flow::kNormal;
    case StmtKind::kUcConstruct: {
      const auto& s = static_cast<const lang::UcConstructStmt&>(stmt);
      if (!ctx.is_frontend()) {
        runtime_error(&stmt,
                      "parallel construct executed while already inside a "
                      "parallel context via a function call");
      }
      exec_construct(s, ctx);
      return Flow::kNormal;
    }
  }
  return Flow::kNormal;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Public wrappers
// ---------------------------------------------------------------------------

Interp::Interp(const lang::CompilationUnit& unit, cm::Machine& machine,
               ExecOptions options) {
  if (!unit.ok()) {
    throw support::UcCompileError(unit.diags.render_all());
  }
  impl_ = std::make_unique<detail::Impl>(unit, machine, options);
}

Interp::~Interp() = default;

RunResult Interp::run() { return impl_->run(); }

Value RunResult::global_scalar(const std::string& name) const {
  auto it = scalars_.find(name);
  if (it == scalars_.end()) {
    throw support::ApiError("no global scalar named '" + name + "'");
  }
  return it->second;
}

Value RunResult::global_element(
    const std::string& name,
    std::initializer_list<std::int64_t> indices) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    throw support::ApiError("no global array named '" + name + "'");
  }
  const auto& snap = it->second;
  if (indices.size() != snap.dims.size()) {
    throw support::ApiError("wrong index count for array '" + name + "'");
  }
  std::int64_t flat = 0;
  std::size_t k = 0;
  for (auto idx : indices) {
    if (idx < 0 || idx >= snap.dims[k]) {
      throw support::ApiError("indices out of range for array '" + name +
                              "'");
    }
    flat = flat * snap.dims[k] + idx;
    ++k;
  }
  return snap.data[static_cast<std::size_t>(flat)];
}

std::vector<Value> RunResult::global_array(const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    throw support::ApiError("no global array named '" + name + "'");
  }
  return it->second.data;
}

RunResult run_uc(const std::string& source, cm::MachineOptions mopts,
                 ExecOptions eopts) {
  auto unit = lang::compile("program.uc", source);
  if (!unit->ok()) {
    throw support::UcCompileError(unit->diags.render_all());
  }
  cm::Machine machine(mopts);
  Interp interp(*unit, machine, eopts);
  return interp.run();
}

}  // namespace uc::vm
